#include <gtest/gtest.h>

#include "stats/connectivity.hpp"
#include "stats/metrics.hpp"
#include "stats/summary.hpp"

namespace manet::stats {
namespace {

using geom::Vec2;

// ----------------------------------------------------------- connectivity

TEST(Connectivity, SingleHostReachesNothing) {
  EXPECT_EQ(reachableCount({{0, 0}}, 500.0, 0), 0);
}

TEST(Connectivity, LineTopologyIsFullyReachable) {
  std::vector<Vec2> line;
  for (int i = 0; i < 6; ++i) line.push_back({i * 400.0, 0});
  EXPECT_EQ(reachableCount(line, 500.0, 0), 5);
  EXPECT_EQ(reachableCount(line, 500.0, 3), 5);  // from the middle too
}

TEST(Connectivity, PartitionIsRespected) {
  const std::vector<Vec2> pos{{0, 0}, {400, 0}, {5000, 0}, {5400, 0}};
  EXPECT_EQ(reachableCount(pos, 500.0, 0), 1);
  EXPECT_EQ(reachableCount(pos, 500.0, 2), 1);
}

TEST(Connectivity, ReachableSetContents) {
  const std::vector<Vec2> pos{{0, 0}, {400, 0}, {5000, 0}};
  EXPECT_EQ(reachableSet(pos, 500.0, 0), (std::vector<std::size_t>{1}));
  EXPECT_EQ(reachableSet(pos, 500.0, 2), (std::vector<std::size_t>{}));
}

TEST(Connectivity, RangeBoundaryInclusive) {
  const std::vector<Vec2> pos{{0, 0}, {500, 0}};
  EXPECT_EQ(reachableCount(pos, 500.0, 0), 1);
  const std::vector<Vec2> pos2{{0, 0}, {500.01, 0}};
  EXPECT_EQ(reachableCount(pos2, 500.0, 0), 0);
}

TEST(Connectivity, ComponentLabels) {
  const std::vector<Vec2> pos{{0, 0}, {400, 0}, {5000, 0}, {5400, 0}, {9999, 9999}};
  const auto labels = componentLabels(pos, 500.0);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[2], labels[3]);
  EXPECT_NE(labels[0], labels[2]);
  EXPECT_NE(labels[4], labels[0]);
  EXPECT_NE(labels[4], labels[2]);
}

TEST(Connectivity, IsConnected) {
  EXPECT_TRUE(isConnected({{0, 0}, {400, 0}, {800, 0}}, 500.0));
  EXPECT_FALSE(isConnected({{0, 0}, {400, 0}, {2000, 0}}, 500.0));
  EXPECT_TRUE(isConnected({}, 500.0));
  EXPECT_TRUE(isConnected({{1, 1}}, 500.0));
}

TEST(Connectivity, AverageDegree) {
  // Triangle with all pairs in range: every host has degree 2.
  EXPECT_DOUBLE_EQ(averageDegree({{0, 0}, {300, 0}, {0, 300}}, 500.0), 2.0);
  EXPECT_DOUBLE_EQ(averageDegree({{0, 0}, {5000, 0}}, 500.0), 0.0);
}

// ---------------------------------------------------------------- metrics

constexpr net::HostId H(std::uint32_t id) { return net::HostId{id}; }

net::BroadcastId bid(std::uint32_t origin, std::uint32_t seq = 0) {
  return net::BroadcastId{H(origin), net::BroadcastSeq{seq}};
}

TEST(Metrics, ReachabilityDefinition) {
  MetricsCollector m(10);
  m.onBroadcastStart(bid(0), H(0), sim::TimePoint{1000}, /*reachable=*/4);
  m.onDelivered(bid(0), H(1), sim::TimePoint{2000});
  m.onDelivered(bid(0), H(2), sim::TimePoint{2500});
  const auto& pb = m.broadcasts().at(0);
  EXPECT_EQ(pb.received, 2);
  EXPECT_DOUBLE_EQ(pb.reachability(), 0.5);
}

TEST(Metrics, DuplicateDeliveriesCountOnce) {
  MetricsCollector m(10);
  m.onBroadcastStart(bid(0), H(0), sim::TimePoint{1000}, 4);
  m.onDelivered(bid(0), H(1), sim::TimePoint{2000});
  m.onDelivered(bid(0), H(1), sim::TimePoint{3000});
  EXPECT_EQ(m.broadcasts().at(0).received, 1);
}

TEST(Metrics, SourceDeliveryDoesNotCount) {
  MetricsCollector m(10);
  m.onBroadcastStart(bid(3), H(3), sim::TimePoint{1000}, 4);
  m.onDelivered(bid(3), H(3), sim::TimePoint{2000});  // echo back to the source
  EXPECT_EQ(m.broadcasts().at(0).received, 0);
}

TEST(Metrics, SavedRebroadcastDefinition) {
  MetricsCollector m(10);
  m.onBroadcastStart(bid(0), H(0), sim::TimePoint{1000}, 9);
  for (std::uint32_t h = 1; h <= 4; ++h) {
    m.onDelivered(bid(0), H(h), sim::TimePoint{2000});
  }
  m.onRebroadcast(bid(0), H(1), sim::TimePoint{2500});
  // r = 4, t = 1: SRB = 3/4.
  EXPECT_DOUBLE_EQ(m.broadcasts().at(0).savedRebroadcast(), 0.75);
}

TEST(Metrics, SrbZeroWhenNothingReceived) {
  MetricsCollector m(10);
  m.onBroadcastStart(bid(0), H(0), sim::TimePoint{1000}, 9);
  EXPECT_DOUBLE_EQ(m.broadcasts().at(0).savedRebroadcast(), 0.0);
}

TEST(Metrics, LatencyIsLastFinalization) {
  MetricsCollector m(10);
  m.onBroadcastStart(bid(0), H(0), sim::TimePoint{1'000'000}, 9);
  m.onDelivered(bid(0), H(1), sim::TimePoint{1'100'000});
  m.onFinalized(bid(0), H(1), sim::TimePoint{1'500'000});   // host 1 inhibited at +0.5 s
  m.onRebroadcast(bid(0), H(2), sim::TimePoint{1'200'000});
  m.onFinalized(bid(0), H(2), sim::TimePoint{1'300'000});   // host 2 finished tx at +0.3 s
  EXPECT_DOUBLE_EQ(m.broadcasts().at(0).latencySeconds(), 0.5);
}

TEST(Metrics, ReachabilityClampedToOne) {
  // Mobility can bring extra hosts into the flood after the snapshot.
  MetricsCollector m(10);
  m.onBroadcastStart(bid(0), H(0), sim::TimePoint{0}, /*reachable=*/1);
  m.onDelivered(bid(0), H(1), sim::TimePoint{1});
  m.onDelivered(bid(0), H(2), sim::TimePoint{2});
  EXPECT_DOUBLE_EQ(m.broadcasts().at(0).reachability(), 1.0);
}

TEST(Metrics, IsolatedSourceCountsAsFullyReached) {
  MetricsCollector m(10);
  m.onBroadcastStart(bid(0), H(0), sim::TimePoint{0}, /*reachable=*/0);
  EXPECT_DOUBLE_EQ(m.broadcasts().at(0).reachability(), 1.0);
}

TEST(Metrics, SummaryAveragesAcrossBroadcasts) {
  MetricsCollector m(10);
  m.onBroadcastStart(bid(0, 0), H(0), sim::TimePoint{0}, 2);
  m.onDelivered(bid(0, 0), H(1), sim::TimePoint{10});
  m.onDelivered(bid(0, 0), H(2), sim::TimePoint{20});   // RE 1.0
  m.onBroadcastStart(bid(0, 1), H(0), sim::TimePoint{100}, 2);
  m.onDelivered(bid(0, 1), H(1), sim::TimePoint{110});  // RE 0.5
  const RunSummary s = m.summarize();
  EXPECT_EQ(s.broadcasts, 2u);
  EXPECT_DOUBLE_EQ(s.meanRe, 0.75);
}

TEST(Metrics, IsolatedBroadcastExcludedFromReMean) {
  MetricsCollector m(10);
  m.onBroadcastStart(bid(0, 0), H(0), sim::TimePoint{0}, 0);   // e = 0: excluded
  m.onBroadcastStart(bid(0, 1), H(0), sim::TimePoint{100}, 2);
  m.onDelivered(bid(0, 1), H(1), sim::TimePoint{110});
  EXPECT_DOUBLE_EQ(m.summarize().meanRe, 0.5);
}

TEST(Metrics, HelloCounter) {
  MetricsCollector m(4);
  m.onHelloSent(H(0));
  m.onHelloSent(H(1));
  m.onHelloSent(H(0));
  EXPECT_EQ(m.hellosSent(), 3u);
  EXPECT_EQ(m.summarize().hellosSent, 3u);
}

TEST(Metrics, DataFrameAccounting) {
  MetricsCollector m(4);
  m.onBroadcastStart(bid(0), H(0), sim::TimePoint{0}, 3);
  m.onDelivered(bid(0), H(1), sim::TimePoint{10});
  m.onRebroadcast(bid(0), H(1), sim::TimePoint{20});
  EXPECT_EQ(m.summarize().dataFramesSent, 2u);  // source + 1 relay
}

TEST(MetricsDeath, UnknownBroadcastRejected) {
  MetricsCollector m(4);
  EXPECT_DEATH(m.onDelivered(bid(9), H(1), sim::TimePoint{0}), "Precondition");
}

// ---------------------------------------------------------------- summary

TEST(RunningStat, BasicMoments) {
  RunningStat s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStat, EmptyAndSingle) {
  RunningStat s;
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.ci95(), 0.0);
}

TEST(RunningStat, CiShrinksWithSamples) {
  RunningStat small;
  RunningStat large;
  for (int i = 0; i < 10; ++i) small.add(i % 2);
  for (int i = 0; i < 1000; ++i) large.add(i % 2);
  EXPECT_GT(small.ci95(), large.ci95());
}

}  // namespace
}  // namespace manet::stats
