#include <gtest/gtest.h>

#include <map>

#include "cluster/assignment.hpp"
#include "cluster/policy.hpp"
#include "experiment/runner.hpp"

namespace manet::cluster {
namespace {

using Adjacency = std::vector<std::vector<net::HostId>>;

constexpr net::HostId H(std::uint32_t id) { return net::HostId{id}; }

Adjacency fromEdges(std::size_t n,
                    const std::vector<std::pair<std::uint32_t, std::uint32_t>>&
                        edges) {
  Adjacency adj(n);
  for (auto [a, b] : edges) {
    adj[a].push_back(H(b));
    adj[b].push_back(H(a));
  }
  return adj;
}

std::map<net::HostId, std::vector<net::HostId>> graph(
    std::initializer_list<std::pair<std::uint32_t, std::vector<std::uint32_t>>>
        rows) {
  std::map<net::HostId, std::vector<net::HostId>> adj;
  for (const auto& [node, neighbors] : rows) {
    auto& out = adj[H(node)];
    for (std::uint32_t nb : neighbors) out.push_back(H(nb));
  }
  return adj;
}

// ------------------------------------------------------------ assignRoles

TEST(AssignRoles, SingletonIsItsOwnHead) {
  const auto roles = assignRoles(Adjacency(1));
  ASSERT_EQ(roles.size(), 1u);
  EXPECT_EQ(roles[0].role, Role::kHead);
  EXPECT_EQ(roles[0].head, H(0));
}

TEST(AssignRoles, PairLowestIdLeads) {
  const auto roles = assignRoles(fromEdges(2, {{0, 1}}));
  EXPECT_EQ(roles[0].role, Role::kHead);
  EXPECT_EQ(roles[1].role, Role::kMember);
  EXPECT_EQ(roles[1].head, H(0));
}

TEST(AssignRoles, ChainAlternates) {
  // 0-1-2: 0 head, 1 member of 0, 2 head (no head neighbor).
  const auto roles = assignRoles(fromEdges(3, {{0, 1}, {1, 2}}));
  EXPECT_EQ(roles[0].role, Role::kHead);
  EXPECT_EQ(roles[2].role, Role::kHead);
  // 1 touches both clusters: it is the gateway between heads 0 and 2.
  EXPECT_EQ(roles[1].role, Role::kGateway);
  EXPECT_EQ(roles[1].head, H(0));
}

TEST(AssignRoles, CliqueHasOneHeadNoGateways) {
  const auto roles = assignRoles(
      fromEdges(4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}));
  EXPECT_EQ(roles[0].role, Role::kHead);
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_EQ(roles[i].role, Role::kMember) << i;
    EXPECT_EQ(roles[i].head, H(0));
  }
}

TEST(AssignRoles, HeadsFormIndependentSet) {
  // Random-ish graph; verify no two heads are adjacent and every member/
  // gateway has a head neighbor.
  const auto adj = fromEdges(
      8, {{0, 3}, {3, 4}, {4, 1}, {1, 5}, {5, 2}, {2, 6}, {6, 7}, {7, 0},
          {3, 5}});
  const auto roles = assignRoles(adj);
  for (std::size_t i = 0; i < adj.size(); ++i) {
    if (roles[i].role == Role::kHead) {
      for (net::HostId nb : adj[i]) {
        EXPECT_NE(roles[nb.value()].role, Role::kHead)
            << "adjacent heads " << i << " and " << nb.value();
      }
    } else {
      bool hasHeadNeighbor = false;
      for (net::HostId nb : adj[i]) {
        hasHeadNeighbor |= roles[nb.value()].role == Role::kHead;
      }
      EXPECT_TRUE(hasHeadNeighbor) << "uncovered node " << i;
      EXPECT_NE(roles[i].head, net::kInvalidHost);
    }
  }
}

TEST(AssignRoles, GatewayBetweenTwoHeads) {
  // Star-of-two-clusters: 0 and 1 are heads (not adjacent), 2 hears both.
  const auto roles = assignRoles(fromEdges(3, {{0, 2}, {1, 2}}));
  EXPECT_EQ(roles[0].role, Role::kHead);
  EXPECT_EQ(roles[1].role, Role::kHead);
  EXPECT_EQ(roles[2].role, Role::kGateway);
}

TEST(AssignRoles, GatewayViaForeignClusterNeighbor) {
  // 0(head)-2(member of 0)-3(member of... 3's neighbors: 2 only; no head
  // neighbor => 3 becomes head). 2 then bridges clusters 0 and 3.
  const auto roles = assignRoles(fromEdges(4, {{0, 1}, {0, 2}, {2, 3}}));
  EXPECT_EQ(roles[0].role, Role::kHead);
  EXPECT_EQ(roles[1].role, Role::kMember);
  EXPECT_EQ(roles[3].role, Role::kHead);
  EXPECT_EQ(roles[2].role, Role::kGateway);
}

TEST(AssignRoles, DisconnectedComponentsIndependent) {
  const auto roles = assignRoles(fromEdges(4, {{0, 1}, {2, 3}}));
  EXPECT_EQ(roles[0].role, Role::kHead);
  EXPECT_EQ(roles[1].role, Role::kMember);
  EXPECT_EQ(roles[2].role, Role::kHead);
  EXPECT_EQ(roles[3].role, Role::kMember);
  EXPECT_EQ(roles[3].head, H(2));
}

TEST(RoleNames, Distinct) {
  EXPECT_STRNE(roleName(Role::kHead), roleName(Role::kMember));
  EXPECT_STRNE(roleName(Role::kHead), roleName(Role::kGateway));
}

// ---------------------------------------------------------------- egoRole

/// HostView over an explicit global adjacency (ids need not be dense).
class GraphHost : public core::HostView {
 public:
  GraphHost(std::uint32_t self,
            std::map<net::HostId, std::vector<net::HostId>> adj)
      : self_(H(self)), adj_(std::move(adj)) {}

  net::HostId id() const override { return self_; }
  int neighborCount() const override {
    return static_cast<int>(adj_.at(self_).size());
  }
  std::vector<net::HostId> neighborIds() const override {
    return adj_.at(self_);
  }
  std::optional<std::vector<net::HostId>> neighborsOf(
      net::HostId h) const override {
    auto it = adj_.find(h);
    if (it == adj_.end()) return std::nullopt;
    return it->second;
  }
  geom::Vec2 position() const override { return {}; }
  double radius() const override { return 500.0; }
  sim::Rng& rng() override { return rng_; }
  sim::TimePoint now() const override { return sim::kTimeZero; }

 private:
  net::HostId self_;
  std::map<net::HostId, std::vector<net::HostId>> adj_;
  sim::Rng rng_{1};
};

TEST(EgoRole, MatchesGlobalOnChain) {
  const auto adj = graph({{0, {1}}, {1, {0, 2}}, {2, {1}}});
  EXPECT_EQ(GraphHost(0, adj).id(), H(0));
  EXPECT_EQ(egoRole(GraphHost(0, adj)).role, Role::kHead);
  EXPECT_EQ(egoRole(GraphHost(1, adj)).role, Role::kGateway);
  EXPECT_EQ(egoRole(GraphHost(2, adj)).role, Role::kHead);
}

TEST(EgoRole, SparseGlobalIdsRemapCorrectly) {
  // Same chain with non-dense ids 10-57-99.
  const auto adj = graph({{10, {57}}, {57, {10, 99}}, {99, {57}}});
  const RoleInfo r10 = egoRole(GraphHost(10, adj));
  EXPECT_EQ(r10.role, Role::kHead);
  EXPECT_EQ(r10.head, H(10));
  const RoleInfo r57 = egoRole(GraphHost(57, adj));
  EXPECT_EQ(r57.role, Role::kGateway);
  EXPECT_EQ(r57.head, H(10));
  EXPECT_EQ(egoRole(GraphHost(99, adj)).role, Role::kHead);
}

TEST(EgoRole, IsolatedHostIsHead) {
  const auto adj = graph({{5, {}}});
  EXPECT_EQ(egoRole(GraphHost(5, adj)).role, Role::kHead);
}

TEST(EgoRole, MemberInsideClique) {
  const auto adj = graph({{0, {1, 2, 3}}, {1, {0, 2, 3}}, {2, {0, 1, 3}}, {3, {0, 1, 2}}});
  EXPECT_EQ(egoRole(GraphHost(3, adj)).role, Role::kMember);
  EXPECT_EQ(egoRole(GraphHost(3, adj)).head, H(0));
}

// ----------------------------------------------------------- ClusterPolicy

TEST(ClusterPolicy, MemberNeverRelays) {
  const auto adj = graph({{0, {1, 2}}, {1, {0, 2}}, {2, {0, 1}}});
  GraphHost host(2, adj);  // member of head 0, no bridging
  ClusterPolicy policy(3);
  auto d = policy.makeDecider(host, core::Reception{H(0), {100, 0}, sim::TimePoint{0}});
  EXPECT_FALSE(d->shouldProceed(host));
}

TEST(ClusterPolicy, HeadRelaysUnderInnerCounter) {
  const auto adj = graph({{0, {1}}, {1, {0}}});
  GraphHost host(0, adj);
  ClusterPolicy policy(3);
  auto d = policy.makeDecider(host, core::Reception{H(1), {100, 0}, sim::TimePoint{0}});
  EXPECT_TRUE(d->shouldProceed(host));
  EXPECT_TRUE(d->onDuplicate(host, core::Reception{H(1), {0, 100}, sim::TimePoint{1}}));
  EXPECT_FALSE(d->onDuplicate(host, core::Reception{H(1), {50, 50}, sim::TimePoint{2}}));
}

TEST(ClusterPolicy, GatewayRelays) {
  const auto adj = graph({{0, {2}}, {1, {2}}, {2, {0, 1}}});
  GraphHost host(2, adj);  // gateway between heads 0 and 1
  ClusterPolicy policy(3);
  auto d = policy.makeDecider(host, core::Reception{H(0), {100, 0}, sim::TimePoint{0}});
  EXPECT_TRUE(d->shouldProceed(host));
}

TEST(ClusterPolicy, Name) {
  EXPECT_EQ(ClusterPolicy(4).name(), "cluster(C=4)");
}

TEST(ClusterPolicyDeath, RejectsTrivialInnerCounter) {
  EXPECT_DEATH(ClusterPolicy{1}, "Precondition");
}

// ------------------------------------------------------------ integration

TEST(ClusterIntegration, RunsOnPaperWorkload) {
  experiment::ScenarioConfig config;
  config.mapUnits = 3;
  config.numHosts = 60;
  config.numBroadcasts = 15;
  config.scheme = experiment::SchemeSpec::clusterBased();
  config.seed = 17;
  const auto r = experiment::runScenario(config);
  EXPECT_GT(r.re(), 0.9);   // backbone still covers the network
  EXPECT_GT(r.srb(), 0.3);  // plain members stayed silent
}

TEST(ClusterIntegration, SavesMoreThanFloodingEverywhere) {
  for (int units : {1, 5}) {
    experiment::ScenarioConfig config;
    config.mapUnits = units;
    config.numHosts = 50;
    config.numBroadcasts = 10;
    config.seed = 23;
    config.scheme = experiment::SchemeSpec::clusterBased();
    const auto clusterRun = experiment::runScenario(config);
    EXPECT_GT(clusterRun.srb(), 0.0) << units;
  }
}

}  // namespace
}  // namespace manet::cluster
