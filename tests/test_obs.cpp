// Observability-layer tests (DESIGN.md §10): the metrics registry must be
// invisible to the simulation (metrics-on results identical to metrics-off),
// thread-count-invariant when repetitions merge, and the JSON report must
// round-trip against its own parser and schema.
#include <gtest/gtest.h>

#include <cstdlib>
#include <limits>
#include <set>
#include <sstream>
#include <string>

#include "experiment/runner.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/report.hpp"
#include "stats/histogram.hpp"

namespace manet {
namespace {

/// RAII guard: forces metrics collection for one test and always restores
/// the off state (collection is a process-global toggle).
class ForcedCollection {
 public:
  ForcedCollection() { obs::forceCollection(true); }
  ~ForcedCollection() { obs::forceCollection(false); }
};

experiment::ScenarioConfig tinyScenario() {
  experiment::ScenarioConfig c;
  c.numHosts = 20;
  c.numBroadcasts = 3;
  c.seed = 11;
  return c;
}

experiment::ScenarioConfig helloScenario() {
  experiment::ScenarioConfig c = tinyScenario();
  c.scheme = experiment::SchemeSpec::neighborCoverage();
  c.neighborSource = experiment::NeighborSource::kHello;
  c.hello.enabled = true;
  c.hello.dynamic = true;
  return c;
}

// --- stats::Histogram ---

TEST(Histogram, BucketEdgesArePowersOfTwo) {
  using stats::Histogram;
  EXPECT_EQ(Histogram::bucketOf(0.0), 0U);
  EXPECT_EQ(Histogram::bucketOf(-5.0), 0U);
  EXPECT_EQ(Histogram::bucketOf(0.999), 0U);
  EXPECT_EQ(Histogram::bucketOf(1.0), 1U);
  EXPECT_EQ(Histogram::bucketOf(1.5), 1U);
  EXPECT_EQ(Histogram::bucketOf(2.0), 2U);
  EXPECT_EQ(Histogram::bucketOf(3.9), 2U);
  EXPECT_EQ(Histogram::bucketOf(4.0), 3U);
  EXPECT_EQ(Histogram::bucketOf(1e30), Histogram::kBuckets - 1);
  // Samples land strictly below their bucket's exclusive upper edge.
  for (double v : {0.3, 1.0, 7.0, 100.0, 12345.6}) {
    const std::size_t b = Histogram::bucketOf(v);
    EXPECT_LT(v, Histogram::bucketUpper(b)) << v;
  }
}

TEST(Histogram, ObserveTracksCountSumMinMax) {
  stats::Histogram h;
  EXPECT_EQ(h.count(), 0U);
  h.observe(3.0);
  h.observe(1.0);
  h.observe(10.0);
  EXPECT_EQ(h.count(), 3U);
  EXPECT_DOUBLE_EQ(h.sum(), 14.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 10.0);
  EXPECT_DOUBLE_EQ(h.mean(), 14.0 / 3.0);
}

TEST(Histogram, OrderedMergeEqualsSequentialObservation) {
  stats::Histogram first;
  stats::Histogram second;
  stats::Histogram sequential;
  for (double v : {0.5, 2.0, 9.0}) {
    first.observe(v);
    sequential.observe(v);
  }
  for (double v : {4.0, 0.25, 700.0}) {
    second.observe(v);
    sequential.observe(v);
  }
  stats::Histogram merged;
  merged.merge(first);
  merged.merge(second);
  EXPECT_EQ(merged.count(), sequential.count());
  EXPECT_EQ(merged.sum(), sequential.sum());  // bitwise: same add order
  EXPECT_EQ(merged.min(), sequential.min());
  EXPECT_EQ(merged.max(), sequential.max());
  for (std::size_t b = 0; b < stats::Histogram::kBuckets; ++b) {
    EXPECT_EQ(merged.bucketCount(b), sequential.bucketCount(b)) << b;
  }
}

// --- registry plumbing ---

TEST(Registry, ScopedInstallAndRestore) {
  EXPECT_EQ(obs::current(), nullptr);
  obs::Registry outer;
  {
    obs::ScopedRegistry s1(&outer);
    EXPECT_EQ(obs::current(), &outer);
    obs::Registry inner;
    {
      obs::ScopedRegistry s2(&inner);
      EXPECT_EQ(obs::current(), &inner);
      obs::add(obs::Counter::kHelloTx);
    }
    EXPECT_EQ(obs::current(), &outer);
    EXPECT_EQ(inner.counter(obs::Counter::kHelloTx), 1U);
    EXPECT_EQ(outer.counter(obs::Counter::kHelloTx), 0U);
  }
  EXPECT_EQ(obs::current(), nullptr);
  // With no registry installed the helpers are no-ops, not crashes.
  obs::add(obs::Counter::kHelloTx);
  obs::gaugeMax(obs::Gauge::kSchedulerQueueDepth, 99);
  obs::observe(obs::Hist::kMacBackoffSlots, 1.0);
}

TEST(Registry, MergeAddsCountersMaxesGaugesAccumulatesScopes) {
  obs::Registry a;
  obs::Registry b;
  a.add(obs::Counter::kChannelTx, 5);
  b.add(obs::Counter::kChannelTx, 7);
  a.gaugeMax(obs::Gauge::kSchedulerQueueDepth, 10);
  b.gaugeMax(obs::Gauge::kSchedulerQueueDepth, 4);
  a.recordScope("scenario.run", 100);
  b.recordScope("scenario.run", 50);
  b.recordScope("scenario.build", 25);
  a.merge(b);
  EXPECT_EQ(a.counter(obs::Counter::kChannelTx), 12U);
  EXPECT_EQ(a.gauge(obs::Gauge::kSchedulerQueueDepth), 10U);
  EXPECT_EQ(a.scopes().at("scenario.run").calls, 2U);
  EXPECT_EQ(a.scopes().at("scenario.run").totalNanos, 150U);
  EXPECT_EQ(a.scopes().at("scenario.build").calls, 1U);
}

TEST(Profile, ScopeRecordsOnlyWhenRegistryInstalled) {
  {
    obs::ProfileScope idle("no.registry");  // must not crash
  }
  obs::Registry r;
  {
    obs::ScopedRegistry s(&r);
    obs::ProfileScope scope("unit.test");
  }
  ASSERT_EQ(r.scopes().count("unit.test"), 1U);
  EXPECT_EQ(r.scopes().at("unit.test").calls, 1U);
}

// --- metric names are a stable, collision-free catalogue ---

TEST(MetricNames, UniqueAndDotted) {
  std::set<std::string> seen;
  for (std::size_t i = 0; i < static_cast<std::size_t>(obs::Counter::kCount);
       ++i) {
    const std::string n = obs::name(static_cast<obs::Counter>(i));
    EXPECT_NE(n, "?");
    EXPECT_NE(n.find('.'), std::string::npos) << n;
    EXPECT_TRUE(seen.insert(n).second) << "duplicate " << n;
  }
  for (std::size_t i = 0; i < static_cast<std::size_t>(obs::Gauge::kCount);
       ++i) {
    EXPECT_TRUE(seen.insert(obs::name(static_cast<obs::Gauge>(i))).second);
  }
  for (std::size_t i = 0; i < static_cast<std::size_t>(obs::Hist::kCount);
       ++i) {
    EXPECT_TRUE(seen.insert(obs::name(static_cast<obs::Hist>(i))).second);
  }
}

// --- JSON writer/parser round trip ---

TEST(Json, WriterEscapesAndParserRoundTrips) {
  std::ostringstream out;
  obs::json::Writer w(out);
  w.beginObject();
  w.field("plain", "value");
  w.field("escaped", "a\"b\\c\nd\te");
  w.field("integer", std::uint64_t{18446744073709551615ULL});
  w.field("negative", std::int64_t{-42});
  w.field("fraction", 0.1);
  w.field("flag", true);
  w.key("nested");
  w.beginArray();
  w.value(1.5);
  w.beginObject();
  w.field("k", "v");
  w.endObject();
  w.endArray();
  w.endObject();

  const auto doc = obs::json::parse(out.str());
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->isObject());
  EXPECT_EQ(doc->find("plain")->str, "value");
  EXPECT_EQ(doc->find("escaped")->str, "a\"b\\c\nd\te");
  EXPECT_EQ(doc->find("negative")->num, -42.0);
  EXPECT_DOUBLE_EQ(doc->find("fraction")->num, 0.1);
  EXPECT_TRUE(doc->find("flag")->boolean);
  const obs::json::Value* nested = doc->find("nested");
  ASSERT_TRUE(nested != nullptr && nested->isArray());
  ASSERT_EQ(nested->array.size(), 2U);
  EXPECT_DOUBLE_EQ(nested->array[0].num, 1.5);
  EXPECT_EQ(nested->array[1].find("k")->str, "v");
}

TEST(Json, ParserRejectsGarbage) {
  EXPECT_FALSE(obs::json::parse("").has_value());
  EXPECT_FALSE(obs::json::parse("{").has_value());
  EXPECT_FALSE(obs::json::parse("{}extra").has_value());
  EXPECT_FALSE(obs::json::parse("{'single':1}").has_value());
  EXPECT_FALSE(obs::json::parse("[1,]").has_value());
}

TEST(Json, NonFiniteNumbersSerializeAsNull) {
  EXPECT_EQ(obs::json::number(std::numeric_limits<double>::infinity()),
            "null");
  EXPECT_EQ(obs::json::number(std::numeric_limits<double>::quiet_NaN()),
            "null");
}

// --- report schema round trip ---

TEST(Report, RoundTripsAgainstSchema) {
  ::setenv("REPRO_OBS_TEST_KNOB", "17", 1);
  obs::Registry reg;
  reg.add(obs::Counter::kChannelTx, 123);
  reg.gaugeMax(obs::Gauge::kSchedulerQueueDepth, 9);
  reg.observe(obs::Hist::kMacBackoffSlots, 3.0);
  reg.observe(obs::Hist::kMacBackoffSlots, 900.0);
  reg.recordScope("scenario.run", 1000);

  obs::RunSample sample;
  sample.label = "unit/row";
  sample.scheme = "flooding";
  sample.seed = 77;
  sample.re = 0.875;
  sample.framesTransmitted = 123;
  sample.metrics = std::make_shared<obs::Registry>(reg);

  std::ostringstream out;
  obs::writeReport(out, "unit_bench", {sample});
  ::unsetenv("REPRO_OBS_TEST_KNOB");

  const auto doc = obs::json::parse(out.str());
  ASSERT_TRUE(doc.has_value()) << out.str();
  EXPECT_EQ(doc->find("schema")->str, obs::kSchema);
  EXPECT_EQ(doc->find("schemaVersion")->num, obs::kSchemaVersion);
  EXPECT_EQ(doc->find("bench")->str, "unit_bench");

  const obs::json::Value* env = doc->find("environment");
  ASSERT_NE(env, nullptr);
  ASSERT_NE(env->find("gitSha"), nullptr);
  ASSERT_NE(env->find("buildType"), nullptr);
  const obs::json::Value* knobs = env->find("env");
  ASSERT_NE(knobs, nullptr);
  ASSERT_NE(knobs->find("REPRO_OBS_TEST_KNOB"), nullptr);
  EXPECT_EQ(knobs->find("REPRO_OBS_TEST_KNOB")->str, "17");

  const obs::json::Value* results = doc->find("results");
  ASSERT_TRUE(results != nullptr && results->isArray());
  ASSERT_EQ(results->array.size(), 1U);
  const obs::json::Value& row = results->array[0];
  EXPECT_EQ(row.find("label")->str, "unit/row");
  EXPECT_EQ(row.find("seed")->num, 77.0);
  EXPECT_DOUBLE_EQ(row.find("re")->num, 0.875);

  const obs::json::Value* metrics = row.find("metrics");
  ASSERT_NE(metrics, nullptr);
  const obs::json::Value* counters = metrics->find("counters");
  ASSERT_NE(counters, nullptr);
  // Every catalogued counter appears by its dotted name, in enum order.
  ASSERT_EQ(counters->object.size(),
            static_cast<std::size_t>(obs::Counter::kCount));
  EXPECT_EQ(counters->object[0].first,
            obs::name(static_cast<obs::Counter>(0)));
  EXPECT_EQ(counters->find("phy.channel.tx")->num, 123.0);
  const obs::json::Value* hist =
      metrics->find("histograms")->find("mac.backoff.slots");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->find("count")->num, 2.0);
  // Sparse [upper, count] bucket pairs: two distinct buckets here.
  EXPECT_EQ(hist->find("buckets")->array.size(), 2U);
  ASSERT_NE(metrics->find("profile"), nullptr);
  EXPECT_EQ(metrics->find("profile")->find("scenario.run")->find("calls")
                ->num,
            1.0);
}

TEST(Report, MetricsJsonWithoutTimingOmitsProfile) {
  obs::Registry reg;
  reg.recordScope("scenario.run", 1000);
  const std::string with = obs::metricsJson(reg, /*includeTiming=*/true);
  const std::string without = obs::metricsJson(reg, /*includeTiming=*/false);
  EXPECT_NE(with.find("profile"), std::string::npos);
  EXPECT_EQ(without.find("profile"), std::string::npos);
}

// --- the differential guarantee: metrics collection changes nothing ---

TEST(Differential, MetricsOnRunMatchesMetricsOffRun) {
  const experiment::ScenarioConfig config = helloScenario();
  const experiment::RunResult off = experiment::runScenario(config);
  ASSERT_EQ(off.metrics, nullptr);

  experiment::RunResult on;
  {
    ForcedCollection forced;
    on = experiment::runScenario(config);
  }
  ASSERT_NE(on.metrics, nullptr);

  // Everything the simulation can observe must be bit-identical.
  EXPECT_EQ(off.re(), on.re());
  EXPECT_EQ(off.srb(), on.srb());
  EXPECT_EQ(off.latency(), on.latency());
  EXPECT_EQ(off.hellosPerHostPerSecond, on.hellosPerHostPerSecond);
  EXPECT_EQ(off.framesTransmitted, on.framesTransmitted);
  EXPECT_EQ(off.framesDelivered, on.framesDelivered);
  EXPECT_EQ(off.framesCorrupted, on.framesCorrupted);
  EXPECT_EQ(off.simulatedSeconds, on.simulatedSeconds);
  EXPECT_EQ(off.summary.broadcasts, on.summary.broadcasts);
  EXPECT_EQ(off.summary.totalReceived, on.summary.totalReceived);
  EXPECT_EQ(off.summary.totalRebroadcast, on.summary.totalRebroadcast);
  EXPECT_EQ(off.summary.hellosSent, on.summary.hellosSent);
}

TEST(Differential, CollectedCountersAgreeWithChannelAccounting) {
  ForcedCollection forced;
  const experiment::RunResult r = experiment::runScenario(helloScenario());
  ASSERT_NE(r.metrics, nullptr);
  const obs::Registry& m = *r.metrics;
  EXPECT_EQ(m.counter(obs::Counter::kChannelTx), r.framesTransmitted);
  EXPECT_EQ(m.counter(obs::Counter::kChannelDelivered), r.framesDelivered);
  EXPECT_EQ(m.counter(obs::Counter::kChannelDropCollision) +
                m.counter(obs::Counter::kChannelDropHalfDuplex) +
                m.counter(obs::Counter::kChannelDropHostDown),
            r.framesCorrupted);
  EXPECT_EQ(m.counter(obs::Counter::kHelloTx), r.summary.hellosSent);
  EXPECT_GT(m.counter(obs::Counter::kHelloRx), 0U);
  EXPECT_GT(m.counter(obs::Counter::kNeighborJoins), 0U);
  EXPECT_GT(m.gauge(obs::Gauge::kNeighborTableSize), 0U);
  EXPECT_GT(m.histogram(obs::Hist::kMacBackoffSlots).count(), 0U);
  // Scheduler conservation: everything scheduled was executed, cancelled,
  // or still pending at shutdown.
  EXPECT_GE(m.counter(obs::Counter::kSchedulerScheduled),
            m.counter(obs::Counter::kSchedulerExecuted) +
                m.counter(obs::Counter::kSchedulerCancelled));
  // Profiling scopes from runScenario itself.
  EXPECT_EQ(m.scopes().at("scenario.run").calls, 1U);
}

TEST(Differential, EngineAllocCountersShowSteadyStateReuse) {
  // The engine.alloc.* family (DESIGN.md §11): a hello-driven run must reuse
  // event slots (slab count stays tiny), keep every hot-path callback inside
  // InlineFn's buffer, and recycle packet blocks through the world's arena.
  ForcedCollection forced;
  const experiment::RunResult r = experiment::runScenario(helloScenario());
  ASSERT_NE(r.metrics, nullptr);
  const obs::Registry& m = *r.metrics;

  const auto slabs = m.counter(obs::Counter::kEngineAllocEventSlabs);
  const auto reused = m.counter(obs::Counter::kEngineAllocEventReused);
  EXPECT_GT(slabs, 0U);
  EXPECT_GT(reused, 100U * slabs) << "event slots are not being recycled";

  // The capture-size audit in MAC/PHY/net holds at runtime too: no callback
  // scheduled by the engine's hot paths spilled to the heap.
  EXPECT_GT(m.counter(obs::Counter::kEngineAllocCallbackInline), 0U);
  EXPECT_EQ(m.counter(obs::Counter::kEngineAllocCallbackHeap), 0U);

  // HELLO beacons die after their table update, so their blocks recycle.
  EXPECT_GT(m.counter(obs::Counter::kEngineAllocPacketFresh), 0U);
  EXPECT_GT(m.counter(obs::Counter::kEngineAllocPacketReused), 0U);
}

// --- thread-count invariance of the merged registry ---

TEST(ThreadInvariance, MergedRegistryJsonIsByteIdenticalAcrossThreadCounts) {
  ForcedCollection forced;
  const experiment::ScenarioConfig config = helloScenario();
  const experiment::RunResult serial =
      experiment::runScenarioAveraged(config, 4, /*threads=*/1);
  const experiment::RunResult parallel =
      experiment::runScenarioAveraged(config, 4, /*threads=*/4);
  ASSERT_NE(serial.metrics, nullptr);
  ASSERT_NE(parallel.metrics, nullptr);
  // The deterministic registry content (wall-clock profile excluded) must
  // serialize to the same bytes: counters, gauges, and histogram float sums
  // merged in repetition order.
  EXPECT_EQ(obs::metricsJson(*serial.metrics, /*includeTiming=*/false),
            obs::metricsJson(*parallel.metrics, /*includeTiming=*/false));
  EXPECT_EQ(serial.seed, parallel.seed);
}

TEST(RunSample, FlattensRunResult) {
  ForcedCollection forced;
  const experiment::RunResult r = experiment::runScenario(tinyScenario());
  const obs::RunSample s = experiment::toRunSample("row/1", r);
  EXPECT_EQ(s.label, "row/1");
  EXPECT_EQ(s.scheme, r.schemeName);
  EXPECT_EQ(s.seed, r.seed);
  EXPECT_EQ(s.re, r.re());
  EXPECT_EQ(s.framesTransmitted, r.framesTransmitted);
  EXPECT_EQ(s.framesPerWallSecond, r.framesPerWallSecond());
  EXPECT_EQ(s.metrics, r.metrics);
}

}  // namespace
}  // namespace manet
