#include "routing/route_discovery.hpp"

#include <gtest/gtest.h>

#include "experiment/world.hpp"

namespace manet::routing {
namespace {

using experiment::ScenarioConfig;
using experiment::SchemeSpec;
using experiment::World;
using sim::kSecond;

constexpr net::HostId H(std::uint32_t id) { return net::HostId{id}; }
constexpr sim::TimePoint T(sim::Duration sinceStart) {
  return sim::kTimeZero + sinceStart;
}

ScenarioConfig staticWorld(std::vector<geom::Vec2> positions,
                           SchemeSpec scheme = SchemeSpec::flooding()) {
  ScenarioConfig c;
  c.fixedPositions = std::move(positions);
  c.scheme = std::move(scheme);
  c.mapUnits = 11;
  c.numBroadcasts = 0;
  c.seed = 31;
  return c;
}

TEST(RouteDiscovery, SingleHopRoute) {
  World w(staticWorld({{0, 0}, {400, 0}}));
  RoutingHarness routing(w);
  routing.discover(H(0), H(1));
  w.scheduler().runUntil(T(2 * kSecond));
  ASSERT_EQ(routing.records().size(), 1u);
  const DiscoveryRecord& r = routing.records()[0];
  EXPECT_TRUE(r.succeeded);
  EXPECT_EQ(r.path, (std::vector<net::HostId>{H(0), H(1)}));
  EXPECT_EQ(r.hops(), 1);
  EXPECT_GT(r.latencySeconds(), 0.0);
}

TEST(RouteDiscovery, MultiHopChainCollectsFullPath) {
  World w(staticWorld({{0, 0}, {400, 0}, {800, 0}, {1200, 0}}));
  RoutingHarness routing(w);
  routing.discover(H(0), H(3));
  w.scheduler().runUntil(T(3 * kSecond));
  const DiscoveryRecord& r = routing.records()[0];
  ASSERT_TRUE(r.succeeded);
  EXPECT_EQ(r.path, (std::vector<net::HostId>{H(0), H(1), H(2), H(3)}));
  EXPECT_EQ(r.hops(), 3);
}

TEST(RouteDiscovery, ReverseDirectionWorksToo) {
  World w(staticWorld({{0, 0}, {400, 0}, {800, 0}}));
  RoutingHarness routing(w);
  routing.discover(H(2), H(0));
  w.scheduler().runUntil(T(3 * kSecond));
  const DiscoveryRecord& r = routing.records()[0];
  ASSERT_TRUE(r.succeeded);
  EXPECT_EQ(r.path, (std::vector<net::HostId>{H(2), H(1), H(0)}));
}

TEST(RouteDiscovery, UnreachableTargetFails) {
  World w(staticWorld({{0, 0}, {400, 0}, {9000, 9000}}));
  RoutingHarness routing(w);
  routing.discover(H(0), H(2));
  w.scheduler().runUntil(T(3 * kSecond));
  EXPECT_FALSE(routing.records()[0].succeeded);
  EXPECT_DOUBLE_EQ(routing.successRate(), 0.0);
}

TEST(RouteDiscovery, LatencyCoversRequestAndReply) {
  // One hop: RREQ (>= 2 airtimes incl. source tx) + RREP unicast + ACK.
  World w(staticWorld({{0, 0}, {400, 0}}));
  RoutingHarness routing(w);
  routing.discover(H(0), H(1));
  w.scheduler().runUntil(T(2 * kSecond));
  const DiscoveryRecord& r = routing.records()[0];
  ASSERT_TRUE(r.succeeded);
  EXPECT_GT(r.latencySeconds(), 0.0025);  // at least one data airtime + reply
  EXPECT_LT(r.latencySeconds(), 0.1);
}

TEST(RouteDiscovery, MultipleStaggeredDiscoveries) {
  World w(staticWorld({{0, 0}, {400, 0}, {800, 0}, {400, 300}}));
  RoutingHarness routing(w);
  // Staggered, as real route requests are; issuing several broadcasts in
  // the very same microsecond from long-idle stations is a guaranteed
  // collision (that scenario is tested by the storm benches).
  routing.discover(H(0), H(2));
  w.scheduler().schedule(T(100 * sim::kMillisecond),
                         [&routing] { routing.discover(H(3), H(0)); });
  w.scheduler().schedule(T(200 * sim::kMillisecond),
                         [&routing] { routing.discover(H(2), H(3)); });
  w.scheduler().runUntil(T(5 * kSecond));
  ASSERT_EQ(routing.records().size(), 3u);
  for (const auto& r : routing.records()) {
    EXPECT_TRUE(r.succeeded) << r.source.value() << "->" << r.target.value();
    ASSERT_GE(r.path.size(), 2u);
    EXPECT_EQ(r.path.front(), r.source);
    EXPECT_EQ(r.path.back(), r.target);
  }
  EXPECT_DOUBLE_EQ(routing.successRate(), 1.0);
  EXPECT_GT(routing.meanHops(), 0.9);
}

TEST(RouteDiscovery, DiamondRoutesThroughEitherRelay) {
  // Two alternative 2-hop routes whose relays can hear each other (carrier
  // sense serializes their rebroadcasts); the first path to reach the
  // target wins.
  World w(staticWorld({{0, 0}, {400, 150}, {400, -150}, {800, 0}}));
  RoutingHarness routing(w);
  routing.discover(H(0), H(3));
  w.scheduler().runUntil(T(3 * kSecond));
  const DiscoveryRecord& r = routing.records()[0];
  ASSERT_TRUE(r.succeeded);
  EXPECT_EQ(r.hops(), 2);
  EXPECT_TRUE(r.path[1] == H(1) || r.path[1] == H(2));
}

TEST(RouteDiscovery, HiddenRelaysCanKillARequest) {
  // The broadcast-storm failure mode, reproduced deliberately: the only two
  // relays are hidden from each other, rebroadcast into the target
  // simultaneously, and the request dies (broadcasts are never retried).
  World w(staticWorld({{0, 0}, {400, 300}, {400, -300}, {800, 0}}));
  RoutingHarness routing(w);
  routing.discover(H(0), H(3));
  w.scheduler().runUntil(T(3 * kSecond));
  // With this seed the two relays' jittered rebroadcasts overlap at the
  // target; the discovery fails even though a route physically exists.
  EXPECT_FALSE(routing.records()[0].succeeded);
}

TEST(RouteDiscovery, SuppressionSchemeStillFindsRoutes) {
  // Adaptive counter instead of flooding: discovery must still succeed on a
  // well-connected topology.
  std::vector<geom::Vec2> grid;
  for (int x = 0; x < 4; ++x) {
    for (int y = 0; y < 3; ++y) {
      grid.push_back({x * 350.0, y * 350.0});
    }
  }
  World w(staticWorld(grid, SchemeSpec::adaptiveCounter()));
  RoutingHarness routing(w);
  routing.discover(H(0), H(11));
  w.scheduler().runUntil(T(5 * kSecond));
  EXPECT_TRUE(routing.records()[0].succeeded);
}

TEST(RouteDiscovery, RouteRequestsCountAsBroadcastWorkload) {
  World w(staticWorld({{0, 0}, {400, 0}}));
  RoutingHarness routing(w);
  routing.discover(H(0), H(1));
  w.scheduler().runUntil(T(2 * kSecond));
  // The RREQ flood is a broadcast like any other: metrics recorded it.
  EXPECT_EQ(w.metrics().broadcasts().size(), 1u);
  EXPECT_EQ(w.metrics().broadcasts()[0].received, 1);
}

TEST(RouteDiscovery, ReplyBytesGrowWithPath) {
  EXPECT_GT(RoutingHarness::replyBytes(10), RoutingHarness::replyBytes(2));
}

TEST(RouteDiscoveryDeath, RejectsSelfDiscovery) {
  World w(staticWorld({{0, 0}, {400, 0}}));
  RoutingHarness routing(w);
  EXPECT_DEATH(routing.discover(H(1), H(1)), "Precondition");
}

TEST(RouteDiscovery, MobileScenarioEndToEnd) {
  ScenarioConfig c;
  c.mapUnits = 5;
  c.numHosts = 60;
  c.numBroadcasts = 0;
  c.scheme = SchemeSpec::adaptiveCounter();
  c.seed = 37;
  World w(c);
  w.startAgents();
  RoutingHarness routing(w);
  sim::Rng rng(7);
  sim::TimePoint at = T(100 * sim::kMillisecond);
  for (int i = 0; i < 10; ++i) {
    const auto src = H(static_cast<std::uint32_t>(rng.uniformInt(0, 59)));
    auto dst = H(static_cast<std::uint32_t>(rng.uniformInt(0, 59)));
    if (dst == src) dst = H((dst.value() + 1) % 60);
    w.scheduler().schedule(at, [&routing, src, dst] {
      routing.discover(src, dst);
    });
    at += 500 * sim::kMillisecond;
  }
  w.scheduler().runUntil(at + 5 * kSecond);
  // A dense connected 5x5 map: most discoveries succeed.
  EXPECT_GT(routing.successRate(), 0.7);
  EXPECT_GT(routing.meanHops(), 0.9);
}

}  // namespace
}  // namespace manet::routing
