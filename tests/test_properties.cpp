// Property-style sweeps (parameterized gtest): invariants that must hold for
// EVERY scheme on EVERY map density, and metric sanity across seeds.
#include <gtest/gtest.h>

#include <tuple>

#include "experiment/runner.hpp"
#include "experiment/world.hpp"

namespace manet::experiment {
namespace {

enum class SchemeKind {
  kFlooding,
  kProb05,
  kCounter2,
  kCounter4,
  kDistance,
  kLocation,
  kAdaptiveCounter,
  kAdaptiveLocation,
  kNeighborCoverage,
  kNeighborCoverageDhi,
  kCluster,
  kClusterHello,
};

const char* kindName(SchemeKind k) {
  switch (k) {
    case SchemeKind::kFlooding: return "flooding";
    case SchemeKind::kProb05: return "prob05";
    case SchemeKind::kCounter2: return "counter2";
    case SchemeKind::kCounter4: return "counter4";
    case SchemeKind::kDistance: return "distance";
    case SchemeKind::kLocation: return "location";
    case SchemeKind::kAdaptiveCounter: return "adaptiveCounter";
    case SchemeKind::kAdaptiveLocation: return "adaptiveLocation";
    case SchemeKind::kNeighborCoverage: return "neighborCoverage";
    case SchemeKind::kNeighborCoverageDhi: return "neighborCoverageDhi";
    case SchemeKind::kCluster: return "cluster";
    case SchemeKind::kClusterHello: return "clusterHello";
  }
  return "?";
}

ScenarioConfig configFor(SchemeKind kind, int mapUnits) {
  ScenarioConfig c;
  c.mapUnits = mapUnits;
  c.numHosts = 50;
  c.numBroadcasts = 10;
  c.seed = 21;
  switch (kind) {
    case SchemeKind::kFlooding:
      c.scheme = SchemeSpec::flooding();
      break;
    case SchemeKind::kProb05:
      c.scheme = SchemeSpec::probabilistic(0.5);
      break;
    case SchemeKind::kCounter2:
      c.scheme = SchemeSpec::counter(2);
      break;
    case SchemeKind::kCounter4:
      c.scheme = SchemeSpec::counter(4);
      break;
    case SchemeKind::kDistance:
      c.scheme = SchemeSpec::distance(100.0);
      break;
    case SchemeKind::kLocation:
      c.scheme = SchemeSpec::location(0.0469);
      break;
    case SchemeKind::kAdaptiveCounter:
      c.scheme = SchemeSpec::adaptiveCounter();
      break;
    case SchemeKind::kAdaptiveLocation:
      c.scheme = SchemeSpec::adaptiveLocation();
      break;
    case SchemeKind::kNeighborCoverage:
      c.scheme = SchemeSpec::neighborCoverage();
      c.neighborSource = NeighborSource::kHello;
      break;
    case SchemeKind::kNeighborCoverageDhi:
      c.scheme = SchemeSpec::neighborCoverage();
      c.neighborSource = NeighborSource::kHello;
      c.hello.dynamic = true;
      break;
    case SchemeKind::kCluster:
      c.scheme = SchemeSpec::clusterBased();
      break;
    case SchemeKind::kClusterHello:
      c.scheme = SchemeSpec::clusterBased();
      c.neighborSource = NeighborSource::kHello;
      break;
  }
  return c;
}

class SchemeMapSweep
    : public ::testing::TestWithParam<std::tuple<SchemeKind, int>> {};

TEST_P(SchemeMapSweep, MetricInvariantsHold) {
  const auto [kind, mapUnits] = GetParam();
  const ScenarioConfig config = configFor(kind, mapUnits);
  World world(config);
  world.run();

  const auto& records = world.metrics().broadcasts();
  ASSERT_EQ(records.size(), static_cast<size_t>(config.numBroadcasts));
  for (const auto& pb : records) {
    // Counts are consistent.
    EXPECT_GE(pb.reachable, 0);
    EXPECT_LT(pb.reachable, config.numHosts);
    EXPECT_GE(pb.received, 0);
    EXPECT_LT(pb.received, config.numHosts);
    // A host only rebroadcasts what it received, and at most once (§2.1).
    EXPECT_LE(pb.rebroadcast, pb.received);
    // Metrics are in range by construction.
    EXPECT_GE(pb.reachability(), 0.0);
    EXPECT_LE(pb.reachability(), 1.0);
    EXPECT_GE(pb.savedRebroadcast(), 0.0);
    EXPECT_LE(pb.savedRebroadcast(), 1.0);
    // Latency is non-negative and bounded by the drain window plus queueing.
    EXPECT_GE(pb.latencySeconds(), 0.0);
    EXPECT_LT(pb.latencySeconds(), sim::toSeconds(config.drain) + 60.0);
  }

  const stats::RunSummary s = world.metrics().summarize();
  EXPECT_GE(s.meanRe, 0.0);
  EXPECT_LE(s.meanRe, 1.0);
  EXPECT_GE(s.meanSrb, 0.0);
  EXPECT_LE(s.meanSrb, 1.0);
  // Frame accounting: every data frame the channel saw was ours.
  EXPECT_GE(world.channel().framesTransmitted(),
            s.dataFramesSent);  // hellos included on the left
}

TEST_P(SchemeMapSweep, FloodingDominatesRebroadcastCount) {
  // No suppression scheme may relay more than flooding does on the same
  // workload; flooding's t equals its r by definition.
  const auto [kind, mapUnits] = GetParam();
  if (kind == SchemeKind::kFlooding) GTEST_SKIP();
  const RunResult scheme = runScenario(configFor(kind, mapUnits));
  const RunResult flooding =
      runScenario(configFor(SchemeKind::kFlooding, mapUnits));
  // SRB >= 0 already checks t <= r per broadcast; here check the aggregate
  // data-frame volume is no worse than flooding's on the same seed.
  EXPECT_LE(scheme.summary.dataFramesSent,
            flooding.summary.dataFramesSent * 2);
  (void)scheme;
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemesAllDensities, SchemeMapSweep,
    ::testing::Combine(::testing::Values(SchemeKind::kFlooding,
                                         SchemeKind::kProb05,
                                         SchemeKind::kCounter2,
                                         SchemeKind::kCounter4,
                                         SchemeKind::kDistance,
                                         SchemeKind::kLocation,
                                         SchemeKind::kAdaptiveCounter,
                                         SchemeKind::kAdaptiveLocation,
                                         SchemeKind::kNeighborCoverage,
                                         SchemeKind::kNeighborCoverageDhi,
                                         SchemeKind::kCluster,
                                         SchemeKind::kClusterHello),
                       ::testing::Values(1, 5, 11)),
    [](const ::testing::TestParamInfo<std::tuple<SchemeKind, int>>& info) {
      return std::string(kindName(std::get<0>(info.param))) + "_map" +
             std::to_string(std::get<1>(info.param));
    });

// ------------------------- seed sweep: determinism as a property ---------

class SeedSweep : public ::testing::TestWithParam<int> {};

TEST_P(SeedSweep, RunsAreReproducible) {
  ScenarioConfig c = configFor(SchemeKind::kAdaptiveLocation, 5);
  c.numBroadcasts = 6;
  c.seed = static_cast<std::uint64_t>(GetParam());
  const RunResult a = runScenario(c);
  const RunResult b = runScenario(c);
  EXPECT_EQ(a.framesTransmitted, b.framesTransmitted);
  EXPECT_DOUBLE_EQ(a.re(), b.re());
  EXPECT_DOUBLE_EQ(a.latency(), b.latency());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep, ::testing::Range(1, 6));

// ------------------------- mobility-model sweep ---------------------------

enum class MobKind { kRoam, kWaypoint, kGroup };

class MobilitySweep
    : public ::testing::TestWithParam<std::tuple<MobKind, int>> {};

TEST_P(MobilitySweep, InvariantsHoldUnderEveryMobilityModel) {
  const auto [mob, mapUnits] = GetParam();
  ScenarioConfig c = configFor(SchemeKind::kAdaptiveCounter, mapUnits);
  switch (mob) {
    case MobKind::kRoam:
      c.mobility = ScenarioConfig::Mobility::kRandomRoam;
      break;
    case MobKind::kWaypoint:
      c.mobility = ScenarioConfig::Mobility::kWaypoint;
      break;
    case MobKind::kGroup:
      c.mobility = ScenarioConfig::Mobility::kGroup;
      break;
  }
  const RunResult r = runScenario(c);
  EXPECT_GE(r.re(), 0.0);
  EXPECT_LE(r.re(), 1.0);
  EXPECT_GE(r.srb(), 0.0);
  EXPECT_LE(r.srb(), 1.0);
  EXPECT_EQ(r.summary.broadcasts, 10u);
  // Determinism holds regardless of mobility model.
  const RunResult again = runScenario(c);
  EXPECT_DOUBLE_EQ(r.re(), again.re());
}

const char* mobName(MobKind kind) {
  switch (kind) {
    case MobKind::kRoam: return "roam";
    case MobKind::kWaypoint: return "waypoint";
    case MobKind::kGroup: return "group";
  }
  return "?";
}

INSTANTIATE_TEST_SUITE_P(
    Models, MobilitySweep,
    ::testing::Combine(::testing::Values(MobKind::kRoam, MobKind::kWaypoint,
                                         MobKind::kGroup),
                       ::testing::Values(3, 9)),
    [](const ::testing::TestParamInfo<std::tuple<MobKind, int>>& info) {
      return std::string(mobName(std::get<0>(info.param))) + "_map" +
             std::to_string(std::get<1>(info.param));
    });

// ------------------------- jitter-window property ------------------------

class JitterSweep : public ::testing::TestWithParam<int> {};

TEST_P(JitterSweep, WiderJitterNeverBreaksInvariants) {
  ScenarioConfig c = configFor(SchemeKind::kCounter2, 3);
  c.jitterSlots = GetParam();
  c.numBroadcasts = 8;
  const RunResult r = runScenario(c);
  EXPECT_GE(r.re(), 0.0);
  EXPECT_LE(r.re(), 1.0);
  EXPECT_GE(r.srb(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(JitterWindows, JitterSweep,
                         ::testing::Values(0, 8, 31, 127));

}  // namespace
}  // namespace manet::experiment
