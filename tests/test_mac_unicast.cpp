// Unicast DCF: ACK, retries with contention-window escalation, RTS/CTS, NAV.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mac/dcf.hpp"
#include "net/packet.hpp"
#include "phy/channel.hpp"
#include "sim/scheduler.hpp"

namespace manet::mac {
namespace {

using net::HostId;

net::PacketPtr payload(std::uint32_t origin, std::uint32_t seq = 0) {
  const HostId src{origin};
  return net::makeDataPacket(net::BroadcastId{src, net::BroadcastSeq{seq}},
                             src);
}

class RecordingUpper : public DcfMac::Upper {
 public:
  explicit RecordingUpper(sim::Scheduler& s) : scheduler_(s) {}
  void onTxStarted(DcfMac::TxId id, const net::Packet&) override {
    txStarts.push_back({id, scheduler_.now()});
  }
  void onTxFinished(DcfMac::TxId, const net::Packet&) override {}
  void onReceive(const phy::Frame& frame) override {
    received.push_back(*frame.packet);
  }
  void onUnicastOutcome(DcfMac::TxId id, const net::Packet&,
                        bool delivered) override {
    outcomes.push_back({id, delivered, scheduler_.now()});
  }

  struct Start {
    DcfMac::TxId id;
    sim::TimePoint at;
  };
  struct Outcome {
    DcfMac::TxId id;
    bool delivered;
    sim::TimePoint at;
  };
  std::vector<Start> txStarts;
  std::vector<net::Packet> received;
  std::vector<Outcome> outcomes;

 private:
  sim::Scheduler& scheduler_;
};

class UnicastTest : public ::testing::Test {
 protected:
  UnicastTest() : channel_(scheduler_, phy::PhyParams{}) {}

  DcfMac& addStation(geom::Vec2 pos, std::uint64_t seed = 1,
                     MacParams params = {}) {
    const HostId id{static_cast<std::uint32_t>(macs_.size())};
    uppers_.push_back(std::make_unique<RecordingUpper>(scheduler_));
    macs_.push_back(std::make_unique<DcfMac>(
        scheduler_, channel_, id, [pos] { return pos; }, sim::Rng(seed),
        params, uppers_.back().get()));
    return *macs_.back();
  }

  RecordingUpper& upper(std::uint32_t id) { return *uppers_[id]; }

  sim::Scheduler scheduler_;
  phy::Channel channel_;
  std::vector<std::unique_ptr<RecordingUpper>> uppers_;
  std::vector<std::unique_ptr<DcfMac>> macs_;
};

TEST_F(UnicastTest, DataIsAcknowledgedAndDelivered) {
  DcfMac& a = addStation({0, 0}, 1);
  addStation({300, 0}, 2);
  scheduler_.runUntil(sim::TimePoint{10'000});
  const auto id = a.enqueueUnicast(HostId{1}, payload(0), 280);
  scheduler_.runAll();
  ASSERT_EQ(upper(0).outcomes.size(), 1u);
  EXPECT_EQ(upper(0).outcomes[0].id, id);
  EXPECT_TRUE(upper(0).outcomes[0].delivered);
  ASSERT_EQ(upper(1).received.size(), 1u);
  EXPECT_EQ(upper(1).received[0].dest, HostId{1});
  EXPECT_EQ(macs_[1]->acksSent(), 1u);
  EXPECT_EQ(a.unicastRetries(), 0u);
}

TEST_F(UnicastTest, AckArrivesOneSifsAfterData) {
  DcfMac& a = addStation({0, 0}, 1);
  addStation({300, 0}, 2);
  scheduler_.runUntil(sim::TimePoint{10'000});
  a.enqueueUnicast(HostId{1}, payload(0), 280);
  scheduler_.runAll();
  // DATA: 10'000..12'432; ACK: SIFS(10) later, 14 B + PLCP = 304 us.
  ASSERT_EQ(upper(0).outcomes.size(), 1u);
  EXPECT_EQ(upper(0).outcomes[0].at, sim::TimePoint{10'000 + 2432 + 10 + 304});
}

TEST_F(UnicastTest, NoReceiverMeansRetriesThenDrop) {
  MacParams params;
  params.retryLimit = 3;
  DcfMac& a = addStation({0, 0}, 1, params);
  scheduler_.runUntil(sim::TimePoint{10'000});
  const auto id = a.enqueueUnicast(HostId{42}, payload(0), 280);  // 42 doesn't exist
  scheduler_.runAll();
  ASSERT_EQ(upper(0).outcomes.size(), 1u);
  EXPECT_EQ(upper(0).outcomes[0].id, id);
  EXPECT_FALSE(upper(0).outcomes[0].delivered);
  EXPECT_EQ(a.unicastRetries(), 3u);
  EXPECT_EQ(a.unicastDrops(), 1u);
  EXPECT_EQ(a.framesSent(), 4u);  // initial + 3 retries
}

TEST_F(UnicastTest, RetransmissionsAreDeduplicatedAtReceiver) {
  // Receiver hears the DATA but the sender misses the ACK: we emulate by
  // placing the receiver exactly in range for DATA... instead, force
  // duplicates by letting the MAC retry after an ACK collision. Simpler
  // deterministic emulation: two back-to-back unicast sends of the SAME
  // payload use different macSeq, so both deliver; dedup only filters the
  // same macSeq. Verify via direct duplicate injection.
  DcfMac& a = addStation({0, 0}, 1);
  addStation({300, 0}, 2);
  scheduler_.runUntil(sim::TimePoint{10'000});
  a.enqueueUnicast(HostId{1}, payload(0, 7), 280);
  scheduler_.runAll();
  ASSERT_EQ(upper(1).received.size(), 1u);
  // Re-send the identical application payload: new macSeq, delivers again.
  a.enqueueUnicast(HostId{1}, payload(0, 7), 280);
  scheduler_.runAll();
  EXPECT_EQ(upper(1).received.size(), 2u);
}

TEST_F(UnicastTest, RtsCtsExchangeDeliversData) {
  MacParams params;
  params.rtsThresholdBytes = 0;  // RTS for everything
  DcfMac& a = addStation({0, 0}, 1, params);
  addStation({300, 0}, 2, params);
  scheduler_.runUntil(sim::TimePoint{10'000});
  a.enqueueUnicast(HostId{1}, payload(0), 280);
  scheduler_.runAll();
  ASSERT_EQ(upper(0).outcomes.size(), 1u);
  EXPECT_TRUE(upper(0).outcomes[0].delivered);
  ASSERT_EQ(upper(1).received.size(), 1u);
  // Frames on air: RTS, CTS, DATA, ACK.
  EXPECT_EQ(a.framesSent(), 2u);          // RTS + DATA
  EXPECT_EQ(macs_[1]->framesSent(), 2u);  // CTS + ACK
}

TEST_F(UnicastTest, RtsTimelineMatches80211) {
  MacParams params;
  params.rtsThresholdBytes = 0;
  DcfMac& a = addStation({0, 0}, 1, params);
  addStation({300, 0}, 2, params);
  scheduler_.runUntil(sim::TimePoint{10'000});
  a.enqueueUnicast(HostId{1}, payload(0), 280);
  scheduler_.runAll();
  // RTS 20B = 160+192 = 352 us; CTS/ACK 14B = 304 us; DATA = 2432 us.
  // DATA starts at 10'000 + 352 + SIFS + 304 + SIFS = 10'676.
  ASSERT_EQ(upper(0).txStarts.size(), 1u);  // onTxStarted fires at DATA
  EXPECT_EQ(upper(0).txStarts[0].at, sim::TimePoint{10'000 + 352 + 10 + 304 + 10});
  ASSERT_EQ(upper(0).outcomes.size(), 1u);
  EXPECT_EQ(upper(0).outcomes[0].at, sim::TimePoint{10'676 + 2432 + 10 + 304});
}

TEST_F(UnicastTest, MissingCtsTriggersRetry) {
  MacParams params;
  params.rtsThresholdBytes = 0;
  params.retryLimit = 2;
  DcfMac& a = addStation({0, 0}, 1, params);
  scheduler_.runUntil(sim::TimePoint{10'000});
  a.enqueueUnicast(HostId{9}, payload(0), 280);  // nobody answers the RTS
  scheduler_.runAll();
  ASSERT_EQ(upper(0).outcomes.size(), 1u);
  EXPECT_FALSE(upper(0).outcomes[0].delivered);
  EXPECT_EQ(a.unicastRetries(), 2u);
  EXPECT_EQ(a.framesSent(), 3u);  // three RTS attempts, DATA never sent
  EXPECT_TRUE(upper(0).txStarts.empty());
}

TEST_F(UnicastTest, NavDefersThirdParty) {
  // b overhears a's DATA to c and must not transmit until the ACK is done,
  // even though the physical medium is idle during the SIFS gaps.
  DcfMac& a = addStation({0, 0}, 1);
  DcfMac& b = addStation({100, 0}, 2);
  addStation({200, 0}, 3);  // c
  scheduler_.runUntil(sim::TimePoint{10'000});
  a.enqueueUnicast(HostId{2}, payload(0), 280);  // a -> c... dest id 2 is c
  scheduler_.runUntil(sim::TimePoint{12'500});  // DATA done at 12'432; ACK under way
  b.enqueue(payload(1), 280);   // b wants to broadcast now
  scheduler_.runAll();
  // b's frame must start after the ACK completes (12'432+10+304 = 12'746)
  // plus DIFS at least.
  ASSERT_EQ(upper(1).txStarts.size(), 1u);
  EXPECT_GE(upper(1).txStarts[0].at, sim::TimePoint{12'746 + 50});
  // And the exchange itself succeeded despite b's pressure.
  ASSERT_EQ(upper(0).outcomes.size(), 1u);
  EXPECT_TRUE(upper(0).outcomes[0].delivered);
}

TEST_F(UnicastTest, CtsClearsHiddenTerminal) {
  // Classic: a and c are hidden from each other; both can reach b. With
  // RTS/CTS, c overhears b's CTS and defers for the whole exchange.
  MacParams params;
  params.rtsThresholdBytes = 0;
  DcfMac& a = addStation({0, 0}, 1, params);
  addStation({450, 0}, 2, params);            // b
  DcfMac& c = addStation({900, 0}, 3, params);  // hidden from a
  scheduler_.runUntil(sim::TimePoint{10'000});
  a.enqueueUnicast(HostId{1}, payload(0), 280);
  // c tries to broadcast right after the CTS went out.
  scheduler_.runUntil(sim::TimePoint{10'700});
  c.enqueue(payload(2), 280);
  scheduler_.runAll();
  // a's exchange completes successfully: c deferred on NAV.
  ASSERT_EQ(upper(0).outcomes.size(), 1u);
  EXPECT_TRUE(upper(0).outcomes[0].delivered);
  // b got a's unicast data AND (later) c's deferred broadcast.
  ASSERT_EQ(upper(1).received.size(), 2u);
  EXPECT_EQ(upper(1).received[0].dest, HostId{1});
  // c's broadcast happened strictly after the ACK finished.
  const sim::TimePoint ackEnd{10'676 + 2432 + 10 + 304};
  ASSERT_EQ(upper(2).txStarts.size(), 1u);
  EXPECT_GE(upper(2).txStarts[0].at, ackEnd);
}

TEST_F(UnicastTest, WithoutRtsHiddenTerminalCorruptsData) {
  // Same topology, RTS disabled: c cannot sense a's DATA and transmits
  // into b, corrupting the unicast; a must retry.
  DcfMac& a = addStation({0, 0}, 1);
  addStation({450, 0}, 2);
  DcfMac& c = addStation({900, 0}, 3);
  scheduler_.runUntil(sim::TimePoint{10'000});
  a.enqueueUnicast(HostId{1}, payload(0), 280);
  scheduler_.runUntil(sim::TimePoint{10'700});  // a's DATA is mid-air; c senses idle
  c.enqueue(payload(2), 280);
  scheduler_.runAll();
  EXPECT_GE(a.unicastRetries(), 1u);
  // The exchange still completes eventually thanks to retransmission.
  ASSERT_EQ(upper(0).outcomes.size(), 1u);
  EXPECT_TRUE(upper(0).outcomes[0].delivered);
  EXPECT_EQ(upper(1).received.size(), 1u);  // dedup across retries
}

TEST_F(UnicastTest, ContentionWindowEscalates) {
  // With nobody answering, inter-attempt gaps should (stochastically) grow;
  // verify via the retry counters and that all gaps are slot-aligned after
  // DIFS. Run multiple seeds for the alignment property.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    sim::Scheduler scheduler;
    phy::Channel channel(scheduler, phy::PhyParams{});
    RecordingUpper up(scheduler);
    MacParams params;
    params.retryLimit = 4;
    DcfMac mac(scheduler, channel, HostId{0}, [] { return geom::Vec2{}; },
               sim::Rng(seed), params, &up);
    scheduler.runUntil(sim::TimePoint{10'000});
    mac.enqueueUnicast(HostId{9}, payload(0), 280);
    scheduler.runAll();
    EXPECT_EQ(mac.unicastRetries(), 4u) << seed;
    EXPECT_EQ(mac.unicastDrops(), 1u) << seed;
  }
}

TEST_F(UnicastTest, BroadcastAndUnicastShareTheQueue) {
  DcfMac& a = addStation({0, 0}, 1);
  addStation({300, 0}, 2);
  scheduler_.runUntil(sim::TimePoint{10'000});
  a.enqueue(payload(0, 1), 280);           // broadcast first
  a.enqueueUnicast(HostId{1}, payload(0, 2), 280); // then unicast
  scheduler_.runAll();
  // Receiver got both: the broadcast and the unicast data.
  EXPECT_EQ(upper(1).received.size(), 2u);
  EXPECT_EQ(upper(0).outcomes.size(), 1u);
  EXPECT_TRUE(a.quiescent());
}

TEST_F(UnicastTest, CancelQueuedUnicast) {
  DcfMac& a = addStation({0, 0}, 1);
  addStation({300, 0}, 2);
  const auto id = a.enqueueUnicast(HostId{1}, payload(0), 280);
  EXPECT_TRUE(a.cancel(id));
  scheduler_.runAll();
  EXPECT_TRUE(upper(0).outcomes.empty());
  EXPECT_TRUE(upper(1).received.empty());
}

TEST_F(UnicastTest, EnqueueUnicastRejectsSelfAndBroadcast) {
  DcfMac& a = addStation({0, 0}, 1);
  EXPECT_DEATH(a.enqueueUnicast(HostId{0}, payload(0), 280), "Precondition");
  EXPECT_DEATH(a.enqueueUnicast(net::kInvalidHost, payload(0), 280),
               "Precondition");
}

TEST_F(UnicastTest, OverheardUnicastIsNotDeliveredUp) {
  DcfMac& a = addStation({0, 0}, 1);
  addStation({300, 0}, 2);
  addStation({150, 100}, 3);  // overhears everything
  scheduler_.runUntil(sim::TimePoint{10'000});
  a.enqueueUnicast(HostId{1}, payload(0), 280);
  scheduler_.runAll();
  EXPECT_EQ(upper(1).received.size(), 1u);
  EXPECT_TRUE(upper(2).received.empty());
}

}  // namespace
}  // namespace manet::mac
