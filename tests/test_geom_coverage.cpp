#include "geom/coverage.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "geom/circle.hpp"
#include "sim/random.hpp"

namespace manet::geom {
namespace {

constexpr double kR = 500.0;

TEST(UncoveredFraction, NoCoveringDisksMeansFullyUncovered) {
  sim::Rng rng(1);
  EXPECT_DOUBLE_EQ(uncoveredFraction({0, 0}, {}, kR, rng), 1.0);
}

TEST(UncoveredFraction, CoincidentDiskCoversEverything) {
  sim::Rng rng(2);
  const std::vector<Vec2> covered{{0, 0}};
  EXPECT_DOUBLE_EQ(uncoveredFraction({0, 0}, covered, kR, rng, 4096), 0.0);
}

TEST(UncoveredFraction, FarDiskCoversNothing) {
  sim::Rng rng(3);
  const std::vector<Vec2> covered{{10.0 * kR, 0}};
  EXPECT_DOUBLE_EQ(uncoveredFraction({0, 0}, covered, kR, rng, 4096), 1.0);
}

TEST(UncoveredFraction, MatchesClosedFormForOneDisk) {
  sim::Rng rng(4);
  for (double d : {100.0, 250.0, 400.0, 500.0}) {
    const std::vector<Vec2> covered{{d, 0}};
    const double mc = uncoveredFraction({0, 0}, covered, kR, rng, 200000);
    EXPECT_NEAR(mc, additionalCoverageFraction(kR, d), 0.01) << "d=" << d;
  }
}

TEST(UncoveredFraction, MoreDisksNeverIncreaseCoverageGap) {
  sim::Rng rng(5);
  std::vector<Vec2> covered;
  double prev = 1.0;
  for (int i = 0; i < 6; ++i) {
    covered.push_back({100.0 * (i + 1), 50.0 * i});
    sim::Rng fresh(77);  // same sample points each round
    const double cur = uncoveredFraction({0, 0}, covered, kR, fresh, 8192);
    EXPECT_LE(cur, prev + 1e-12);
    prev = cur;
  }
}

TEST(EacTrial, WithinUnitInterval) {
  sim::Rng rng(6);
  for (int k = 1; k <= 6; ++k) {
    const double v = eacTrial(k, kR, rng);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(ExpectedAdditionalCoverage, FirstHearingMatchesAnalyticAverage) {
  // EAC(1)/pi r^2 must equal the analytic ~0.41 of §2.2.1.
  sim::Rng rng(7);
  EXPECT_NEAR(expectedAdditionalCoverage(1, kR, rng, 3000, 512), 0.41, 0.02);
}

TEST(ExpectedAdditionalCoverage, SecondHearingIsAboutPaperConstant) {
  // EAC(2)/pi r^2 ~= 0.187, the constant A(n) saturates at (§3.2).
  sim::Rng rng(8);
  EXPECT_NEAR(expectedAdditionalCoverage(2, kR, rng, 4000, 512),
              kEac2Fraction, 0.02);
}

TEST(EacSeries, StrictlyDecreasingInK) {
  // Fig. 1: the expected additional coverage decays as k grows.
  sim::Rng rng(9);
  const auto series = eacSeries(8, kR, rng, 1500, 256);
  ASSERT_EQ(series.size(), 8u);
  for (size_t k = 1; k < series.size(); ++k) {
    EXPECT_LT(series[k], series[k - 1]) << "k=" << k + 1;
  }
}

TEST(EacSeries, BelowFivePercentAfterFourHearings) {
  // The paper's headline observation from Fig. 1: k >= 4 => EAC < 5%.
  sim::Rng rng(10);
  const auto series = eacSeries(5, kR, rng, 3000, 512);
  EXPECT_LT(series[3], 0.05);  // k = 4
  EXPECT_LT(series[4], 0.05);  // k = 5
}

TEST(EacSeries, ScaleInvariantInRadius) {
  sim::Rng rngA(11);
  sim::Rng rngB(11);
  const auto a = eacSeries(3, 1.0, rngA, 800, 256);
  const auto b = eacSeries(3, 500.0, rngB, 800, 256);
  for (size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-12);
}

TEST(UncoveredFractionDeath, RejectsBadArguments) {
  sim::Rng rng(12);
  EXPECT_DEATH((void)uncoveredFraction({0, 0}, {}, -1.0, rng), "Precondition");
  EXPECT_DEATH((void)uncoveredFraction({0, 0}, {}, kR, rng, 0),
               "Precondition");
}

}  // namespace
}  // namespace manet::geom
