// Host-level tests of the S1-S5 skeleton on controlled (fixed-position,
// stationary) topologies.
#include "experiment/host.hpp"

#include <gtest/gtest.h>

#include "experiment/world.hpp"
#include "sim/time.hpp"

namespace manet::experiment {
namespace {

using sim::kSecond;

constexpr net::BroadcastId B(std::uint32_t origin, std::uint32_t seq) {
  return net::BroadcastId{net::HostId{origin}, net::BroadcastSeq{seq}};
}

ScenarioConfig staticConfig(std::vector<geom::Vec2> positions,
                            SchemeSpec scheme) {
  ScenarioConfig c;
  c.fixedPositions = std::move(positions);
  c.scheme = std::move(scheme);
  c.mapUnits = 11;  // irrelevant with fixed positions, but keep them inside
  c.numBroadcasts = 0;
  c.seed = 5;
  return c;
}

TEST(Host, SourcePhaseAfterOriginate) {
  World w(staticConfig({{0, 0}, {400, 0}}, SchemeSpec::flooding()));
  w.host(net::HostId{0}).originateBroadcast();
  EXPECT_EQ(w.host(net::HostId{0}).phaseOf(B(0, 0)), Host::PacketPhase::kSource);
  EXPECT_EQ(w.host(net::HostId{1}).phaseOf(B(0, 0)), Host::PacketPhase::kUnseen);
}

TEST(Host, FloodingReceiverRelaysExactlyOnce) {
  World w(staticConfig({{0, 0}, {400, 0}}, SchemeSpec::flooding()));
  w.host(net::HostId{0}).originateBroadcast();
  w.scheduler().runUntil(sim::kTimeZero + 1 * kSecond);
  EXPECT_EQ(w.host(net::HostId{1}).phaseOf(B(0, 0)), Host::PacketPhase::kSent);
  // 2 data frames total: source + one relay (host 0 ignores the echo).
  EXPECT_EQ(w.channel().framesTransmitted(), 2u);
}

TEST(Host, ReceptionAndRebroadcastRecorded) {
  World w(staticConfig({{0, 0}, {400, 0}, {800, 0}}, SchemeSpec::flooding()));
  w.host(net::HostId{0}).originateBroadcast();
  w.scheduler().runUntil(sim::kTimeZero + 1 * kSecond);
  const auto& pb = w.metrics().broadcasts().at(0);
  EXPECT_EQ(pb.reachable, 2);
  EXPECT_EQ(pb.received, 2);
  EXPECT_EQ(pb.rebroadcast, 2);
  EXPECT_GT(pb.latencySeconds(), 0.0);
}

TEST(Host, CounterSchemeInhibitsCrowdedRelay) {
  // A clique: everyone hears everyone. With C=2 the first relay's frame is
  // the second hearing for all others, inhibiting them.
  std::vector<geom::Vec2> clique{{0, 0}, {100, 0}, {0, 100}, {100, 100},
                                 {50, 50}};
  World w(staticConfig(clique, SchemeSpec::counter(2)));
  w.host(net::HostId{0}).originateBroadcast();
  w.scheduler().runUntil(sim::kTimeZero + 1 * kSecond);
  const auto& pb = w.metrics().broadcasts().at(0);
  EXPECT_EQ(pb.received, 4);
  // Everyone heard the source; at least one relays, and the relays are few.
  EXPECT_GE(pb.rebroadcast, 1);
  EXPECT_LE(pb.rebroadcast, 2);
  // Hosts that did not relay ended Inhibited.
  int inhibited = 0;
  for (std::uint32_t h = 1; h <= 4; ++h) {
    const auto phase = w.host(net::HostId{h}).phaseOf(B(0, 0));
    EXPECT_TRUE(phase == Host::PacketPhase::kSent ||
                phase == Host::PacketPhase::kInhibited);
    inhibited += phase == Host::PacketPhase::kInhibited ? 1 : 0;
  }
  EXPECT_EQ(inhibited, 4 - pb.rebroadcast);
}

TEST(Host, IsolatedSourceFinishesCleanly) {
  World w(staticConfig({{0, 0}, {5000, 5000}}, SchemeSpec::flooding()));
  w.host(net::HostId{0}).originateBroadcast();
  w.scheduler().runUntil(sim::kTimeZero + 1 * kSecond);
  const auto& pb = w.metrics().broadcasts().at(0);
  EXPECT_EQ(pb.reachable, 0);
  EXPECT_EQ(pb.received, 0);
  EXPECT_DOUBLE_EQ(pb.reachability(), 1.0);
}

TEST(Host, SourceIgnoresEchoesOfItsOwnBroadcast) {
  World w(staticConfig({{0, 0}, {400, 0}}, SchemeSpec::flooding()));
  w.host(net::HostId{0}).originateBroadcast();
  w.scheduler().runUntil(sim::kTimeZero + 1 * kSecond);
  EXPECT_EQ(w.host(net::HostId{0}).phaseOf(B(0, 0)), Host::PacketPhase::kSource);
  EXPECT_EQ(w.metrics().broadcasts().at(0).received, 1);  // only host 1
}

TEST(Host, LocationSchemeInhibitsImmediatelyOnZeroCoverage) {
  // Receiver colocated with the source: additional coverage ~ 0 < A.
  World w(staticConfig({{0, 0}, {0, 0}, {5000, 5000}},
                       SchemeSpec::location(0.05)));
  w.host(net::HostId{0}).originateBroadcast();
  w.scheduler().runUntil(sim::kTimeZero + 1 * kSecond);
  EXPECT_EQ(w.host(net::HostId{1}).phaseOf(B(0, 0)), Host::PacketPhase::kInhibited);
  EXPECT_EQ(w.metrics().broadcasts().at(0).rebroadcast, 0);
}

TEST(Host, TwoBroadcastsTrackedIndependently) {
  World w(staticConfig({{0, 0}, {400, 0}}, SchemeSpec::flooding()));
  w.host(net::HostId{0}).originateBroadcast();
  w.scheduler().runUntil(sim::kTimeZero + 1 * kSecond);
  w.host(net::HostId{1}).originateBroadcast();
  w.scheduler().runUntil(sim::kTimeZero + 2 * kSecond);
  ASSERT_EQ(w.metrics().broadcasts().size(), 2u);
  EXPECT_EQ(w.metrics().broadcasts()[0].received, 1);
  EXPECT_EQ(w.metrics().broadcasts()[1].received, 1);
  EXPECT_EQ(w.host(net::HostId{0}).phaseOf(B(1, 0)), Host::PacketPhase::kSent);
  EXPECT_EQ(w.host(net::HostId{1}).phaseOf(B(0, 0)), Host::PacketPhase::kSent);
}

TEST(Host, SequenceNumbersDistinguishBroadcastsFromSameSource) {
  World w(staticConfig({{0, 0}, {400, 0}}, SchemeSpec::flooding()));
  w.host(net::HostId{0}).originateBroadcast();
  w.scheduler().runUntil(sim::kTimeZero + 1 * kSecond);
  w.host(net::HostId{0}).originateBroadcast();
  w.scheduler().runUntil(sim::kTimeZero + 2 * kSecond);
  EXPECT_EQ(w.host(net::HostId{1}).phaseOf(B(0, 0)), Host::PacketPhase::kSent);
  EXPECT_EQ(w.host(net::HostId{1}).phaseOf(B(0, 1)), Host::PacketPhase::kSent);
  EXPECT_EQ(w.metrics().broadcasts().size(), 2u);
}

TEST(Host, OracleNeighborQueries) {
  World w(staticConfig({{0, 0}, {400, 0}, {5000, 5000}},
                       SchemeSpec::adaptiveCounter()));
  EXPECT_EQ(w.host(net::HostId{0}).neighborCount(), 1);
  EXPECT_EQ(w.host(net::HostId{0}).neighborIds(), (std::vector<net::HostId>{net::HostId{1}}));
  EXPECT_EQ(w.host(net::HostId{2}).neighborCount(), 0);
  // Oracle two-hop: neighbors of host 1 as seen from host 0.
  const auto n1 = w.host(net::HostId{0}).neighborsOf(net::HostId{1});
  ASSERT_TRUE(n1.has_value());
  EXPECT_EQ(*n1, (std::vector<net::HostId>{net::HostId{0}}));
}

TEST(Host, HelloTablesPopulateUnderHelloSource) {
  ScenarioConfig c = staticConfig({{0, 0}, {400, 0}},
                                  SchemeSpec::neighborCoverage());
  c.neighborSource = NeighborSource::kHello;
  c.hello.enabled = true;
  World w(c);
  w.startAgents();
  w.scheduler().runUntil(sim::kTimeZero + 5 * kSecond);
  EXPECT_EQ(w.host(net::HostId{0}).neighborCount(), 1);
  EXPECT_EQ(w.host(net::HostId{1}).neighborCount(), 1);
  const auto twoHop = w.host(net::HostId{0}).neighborsOf(net::HostId{1});
  ASSERT_TRUE(twoHop.has_value());
  EXPECT_EQ(*twoHop, (std::vector<net::HostId>{net::HostId{0}}));
}

TEST(Host, NeighborCoverageLeafDoesNotRelay) {
  // Chain 0 - 1 - 2 with full hello knowledge: when 2 receives from 1, its
  // only neighbor (1) is the sender: T empty, inhibited. Host 1 must relay
  // (it knows 2 is uncovered by 0's transmission).
  ScenarioConfig c = staticConfig({{0, 0}, {400, 0}, {800, 0}},
                                  SchemeSpec::neighborCoverage());
  c.neighborSource = NeighborSource::kHello;
  c.hello.enabled = true;
  World w(c);
  w.startAgents();
  w.scheduler().runUntil(sim::kTimeZero + 5 * kSecond);  // let tables converge
  w.host(net::HostId{0}).originateBroadcast();
  w.scheduler().runUntil(sim::kTimeZero + 6 * kSecond);
  EXPECT_EQ(w.host(net::HostId{1}).phaseOf(B(0, 0)), Host::PacketPhase::kSent);
  EXPECT_EQ(w.host(net::HostId{2}).phaseOf(B(0, 0)), Host::PacketPhase::kInhibited);
  const auto& pb = w.metrics().broadcasts().at(0);
  EXPECT_EQ(pb.received, 2);
  EXPECT_EQ(pb.rebroadcast, 1);
}

TEST(Host, JitterDelaysMacSubmission) {
  // With flooding on a 2-host link the relay's tx start must lag the
  // reception by 0..31 slots plus MAC access time.
  World w(staticConfig({{0, 0}, {400, 0}}, SchemeSpec::flooding()));
  w.host(net::HostId{0}).originateBroadcast();
  w.scheduler().runUntil(sim::kTimeZero + 1 * kSecond);
  const auto& pb = w.metrics().broadcasts().at(0);
  // Source tx: DIFS (50) + airtime (2432) = reception at 2482. Relay ends
  // by 2482 + jitter(<=620) + DIFS + airtime.
  EXPECT_GT(pb.latencySeconds(), 0.0049);  // at least two airtimes
  EXPECT_LT(pb.latencySeconds(), 0.0061);
}

}  // namespace
}  // namespace manet::experiment
