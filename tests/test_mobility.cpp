#include <gtest/gtest.h>

#include "mobility/map.hpp"
#include "mobility/model.hpp"
#include "mobility/random_roam.hpp"
#include "mobility/waypoint.hpp"
#include "sim/random.hpp"

namespace manet::mobility {
namespace {

using geom::Vec2;
using sim::kSecond;

constexpr sim::TimePoint T(sim::Duration sinceStart) {
  return sim::kTimeZero + sinceStart;
}

TEST(MapSpec, SquareBuilder) {
  const MapSpec m = MapSpec::square(5);
  EXPECT_DOUBLE_EQ(m.width, 2500.0);
  EXPECT_DOUBLE_EQ(m.height, 2500.0);
}

TEST(MapSpec, ContainsAndClamp) {
  const MapSpec m = MapSpec::square(1);
  EXPECT_TRUE(m.contains({0, 0}));
  EXPECT_TRUE(m.contains({500, 500}));
  EXPECT_FALSE(m.contains({501, 0}));
  EXPECT_FALSE(m.contains({0, -1}));
  EXPECT_EQ(m.clamp({600, -50}), (Vec2{500, 0}));
}

TEST(MapSpec, UniformPointsStayInside) {
  const MapSpec m = MapSpec::square(3);
  sim::Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(m.contains(m.uniformPoint(rng)));
  }
}

TEST(SpeedConversion, KmhToMps) {
  EXPECT_DOUBLE_EQ(kmhToMps(36.0), 10.0);
  EXPECT_DOUBLE_EQ(kmhToMps(0.0), 0.0);
}

TEST(Stationary, NeverMoves) {
  Stationary s({100, 200});
  EXPECT_EQ(s.positionAt(sim::kTimeZero), (Vec2{100, 200}));
  EXPECT_EQ(s.positionAt(T(1000 * kSecond)), (Vec2{100, 200}));
}

TEST(RandomRoam, StaysWithinMap) {
  const MapSpec map = MapSpec::square(3);
  RoamParams params;
  params.maxSpeedMps = kmhToMps(110.0);
  RandomRoam roam(map, {750, 750}, params, sim::Rng(5));
  for (sim::TimePoint t = sim::kTimeZero; t <= T(600 * kSecond); t += kSecond) {
    const Vec2 p = roam.positionAt(t);
    EXPECT_TRUE(map.contains(p)) << "t=" << t.ticks() << " p=(" << p.x << "," << p.y
                                 << ")";
  }
}

TEST(RandomRoam, RespectsMaxSpeedBetweenQueries) {
  const MapSpec map = MapSpec::square(11);
  RoamParams params;
  params.maxSpeedMps = kmhToMps(50.0);
  RandomRoam roam(map, {2750, 2750}, params, sim::Rng(6));
  Vec2 prev = roam.positionAt(sim::kTimeZero);
  for (sim::TimePoint t = T(kSecond); t <= T(300 * kSecond); t += kSecond) {
    const Vec2 cur = roam.positionAt(t);
    // One second apart: displacement can never exceed maxSpeed * 1 s (a
    // reflection only folds the path, it cannot lengthen it... but it can
    // shorten the net displacement).
    EXPECT_LE(geom::distance(prev, cur), params.maxSpeedMps + 1e-9);
    prev = cur;
  }
}

TEST(RandomRoam, ZeroMaxSpeedMeansStationary) {
  const MapSpec map = MapSpec::square(3);
  RoamParams params;
  params.maxSpeedMps = 0.0;
  RandomRoam roam(map, {100, 900}, params, sim::Rng(7));
  const Vec2 start = roam.positionAt(sim::kTimeZero);
  EXPECT_EQ(roam.positionAt(T(500 * kSecond)), start);
}

TEST(RandomRoam, DeterministicForSameSeed) {
  const MapSpec map = MapSpec::square(5);
  RoamParams params;
  params.maxSpeedMps = kmhToMps(50.0);
  RandomRoam a(map, {1000, 1000}, params, sim::Rng(8));
  RandomRoam b(map, {1000, 1000}, params, sim::Rng(8));
  for (sim::TimePoint t = sim::kTimeZero; t <= T(200 * kSecond); t += 7 * kSecond) {
    EXPECT_EQ(a.positionAt(t), b.positionAt(t));
  }
}

TEST(RandomRoam, MovesEventually) {
  const MapSpec map = MapSpec::square(5);
  RoamParams params;
  params.maxSpeedMps = kmhToMps(50.0);
  RandomRoam roam(map, {1000, 1000}, params, sim::Rng(9));
  const Vec2 start = roam.positionAt(sim::kTimeZero);
  double maxDisplacement = 0.0;
  for (sim::TimePoint t = sim::kTimeZero; t <= T(300 * kSecond); t += 10 * kSecond) {
    maxDisplacement =
        std::max(maxDisplacement, geom::distance(start, roam.positionAt(t)));
  }
  EXPECT_GT(maxDisplacement, 10.0);
}

TEST(RandomRoam, QueriesAtSameTimeAreStable) {
  const MapSpec map = MapSpec::square(3);
  RoamParams params;
  params.maxSpeedMps = kmhToMps(30.0);
  RandomRoam roam(map, {500, 500}, params, sim::Rng(10));
  const Vec2 a = roam.positionAt(T(17 * kSecond));
  const Vec2 b = roam.positionAt(T(17 * kSecond));
  EXPECT_EQ(a, b);
}

TEST(RandomRoamDeath, RejectsBackwardQueries) {
  const MapSpec map = MapSpec::square(3);
  RandomRoam roam(map, {500, 500}, RoamParams{}, sim::Rng(11));
  (void)roam.positionAt(T(10 * kSecond));
  EXPECT_DEATH((void)roam.positionAt(T(5 * kSecond)), "Precondition");
}

TEST(RandomRoam, TurnDurationsWithinConfiguredRange) {
  // A turn lasts 1..100 s; with a tight window the velocity must be
  // re-drawn frequently. We only verify the model doesn't get stuck.
  const MapSpec map = MapSpec::square(3);
  RoamParams params;
  params.maxSpeedMps = kmhToMps(30.0);
  params.minTurnDuration = 1 * kSecond;
  params.maxTurnDuration = 2 * kSecond;
  RandomRoam roam(map, {750, 750}, params, sim::Rng(12));
  Vec2 prevVelocity = roam.currentVelocity();
  int changes = 0;
  for (sim::TimePoint t = sim::kTimeZero; t <= T(60 * kSecond); t += kSecond) {
    (void)roam.positionAt(t);
    if (!(roam.currentVelocity() == prevVelocity)) {
      ++changes;
      prevVelocity = roam.currentVelocity();
    }
  }
  EXPECT_GT(changes, 20);  // ~40 turns expected in 60 s
}

TEST(Waypoint, StaysWithinMapAndReachesDestinations) {
  const MapSpec map = MapSpec::square(5);
  WaypointParams params;
  params.minSpeedMps = 1.0;
  params.maxSpeedMps = 20.0;
  params.pause = 2 * kSecond;
  RandomWaypoint wp(map, {0, 0}, params, sim::Rng(13));
  for (sim::TimePoint t = sim::kTimeZero; t <= T(500 * kSecond); t += kSecond) {
    EXPECT_TRUE(map.contains(wp.positionAt(t)));
  }
}

TEST(Waypoint, DeterministicForSameSeed) {
  const MapSpec map = MapSpec::square(5);
  WaypointParams params;
  RandomWaypoint a(map, {100, 100}, params, sim::Rng(14));
  RandomWaypoint b(map, {100, 100}, params, sim::Rng(14));
  for (sim::TimePoint t = sim::kTimeZero; t <= T(100 * kSecond); t += 3 * kSecond) {
    EXPECT_EQ(a.positionAt(t), b.positionAt(t));
  }
}

TEST(Waypoint, PausesAtDestination) {
  const MapSpec map = MapSpec::square(1);
  WaypointParams params;
  params.minSpeedMps = 100.0;  // fast legs, long pauses
  params.maxSpeedMps = 100.0;
  params.pause = 50 * kSecond;
  RandomWaypoint wp(map, {0, 0}, params, sim::Rng(15));
  // Sample densely; during pauses consecutive samples must coincide.
  int stationarySamples = 0;
  Vec2 prev = wp.positionAt(sim::kTimeZero);
  for (sim::TimePoint t = T(kSecond); t <= T(200 * kSecond); t += kSecond) {
    const Vec2 cur = wp.positionAt(t);
    if (cur == prev) ++stationarySamples;
    prev = cur;
  }
  EXPECT_GT(stationarySamples, 100);
}

}  // namespace
}  // namespace manet::mobility
