#include "net/neighbor_table.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "net/packet.hpp"

namespace manet::net {
namespace {

using sim::kSecond;

constexpr HostId H(std::uint32_t id) { return HostId{id}; }
constexpr sim::TimePoint T(std::int64_t ticks) { return sim::TimePoint{ticks}; }
constexpr sim::TimePoint T(sim::Duration sinceStart) {
  return sim::kTimeZero + sinceStart;
}

std::vector<HostId> ids(std::initializer_list<std::uint32_t> vs) {
  std::vector<HostId> out;
  for (std::uint32_t v : vs) out.push_back(HostId{v});
  return out;
}

Packet hello(std::uint32_t sender, std::vector<HostId> neighbors = {},
             sim::Duration interval = 1 * kSecond) {
  Packet p;
  p.type = PacketType::kHello;
  p.sender = HostId{sender};
  p.helloNeighbors = std::move(neighbors);
  p.helloInterval = interval;
  return p;
}

TEST(NeighborTable, StartsEmpty) {
  NeighborTable t;
  EXPECT_EQ(t.neighborCount(T(0)), 0);
  EXPECT_TRUE(t.neighborIds(T(0)).empty());
}

TEST(NeighborTable, HelloInsertsNeighbor) {
  NeighborTable t;
  t.onHello(H(7), hello(7), T(1 * kSecond));
  EXPECT_EQ(t.neighborCount(T(1 * kSecond)), 1);
  EXPECT_TRUE(t.contains(H(7), T(1 * kSecond)));
}

TEST(NeighborTable, EntryExpiresAfterTwoIntervals) {
  NeighborTable t;
  t.onHello(H(7), hello(7, {}, 1 * kSecond), T(0));
  EXPECT_TRUE(t.contains(H(7), T(2 * kSecond)));          // exactly 2 intervals: kept
  EXPECT_FALSE(t.contains(H(7), T(2 * kSecond + sim::kMicrosecond)));     // just past: dropped
}

TEST(NeighborTable, FreshHelloRefreshesExpiry) {
  NeighborTable t;
  t.onHello(H(7), hello(7), T(0));
  t.onHello(H(7), hello(7), T(1 * kSecond));
  EXPECT_TRUE(t.contains(H(7), T(3 * kSecond)));
  EXPECT_FALSE(t.contains(H(7), T(3 * kSecond + sim::kMicrosecond)));
}

TEST(NeighborTable, ExpiryUsesSenderAnnouncedInterval) {
  NeighborTable t;
  t.onHello(H(7), hello(7, {}, 10 * kSecond), T(0));  // DHI host with long interval
  EXPECT_TRUE(t.contains(H(7), T(19 * kSecond)));
  EXPECT_FALSE(t.contains(H(7), T(21 * kSecond)));
}

TEST(NeighborTable, FallbackIntervalWhenNotAnnounced) {
  NeighborTable t(10 * kSecond, /*fallbackInterval=*/2 * kSecond);
  t.onHello(H(7), hello(7, {}, sim::Duration{}), T(0));  // interval 0 = not announced
  EXPECT_TRUE(t.contains(H(7), T(4 * kSecond)));
  EXPECT_FALSE(t.contains(H(7), T(4 * kSecond + sim::kMicrosecond)));
}

TEST(NeighborTable, TwoHopSetsStored) {
  NeighborTable t;
  t.onHello(H(7), hello(7, ids({1, 2, 3})), T(0));
  const auto n = t.neighborsOf(H(7), T(kSecond));
  ASSERT_TRUE(n.has_value());
  EXPECT_EQ(*n, ids({1, 2, 3}));
}

TEST(NeighborTable, TwoHopSetsUpdatedByNewerHello) {
  NeighborTable t;
  t.onHello(H(7), hello(7, ids({1, 2})), T(0));
  t.onHello(H(7), hello(7, ids({3})), T(kSecond));
  EXPECT_EQ(*t.neighborsOf(H(7), T(kSecond)), ids({3}));
}

TEST(NeighborTable, UnknownNeighborHasNoTwoHopSet) {
  NeighborTable t;
  EXPECT_FALSE(t.neighborsOf(H(9), T(0)).has_value());
}

TEST(NeighborTable, NeighborIdsListsCurrentNeighbors) {
  NeighborTable t;
  t.onHello(H(1), hello(1), T(0));
  t.onHello(H(2), hello(2), T(0));
  t.onHello(H(3), hello(3, {}, 10 * kSecond), T(0));
  auto got = t.neighborIds(T(3 * kSecond));  // 1 and 2 expired, 3 remains
  EXPECT_EQ(got, ids({3}));
}

TEST(NeighborTable, JoinRecordsChangeEvent) {
  NeighborTable t;
  t.onHello(H(1), hello(1), T(0));
  EXPECT_EQ(t.changeEventsInWindow(T(0)), 1);
  t.onHello(H(1), hello(1), T(kSecond));  // refresh, not a join
  EXPECT_EQ(t.changeEventsInWindow(T(kSecond)), 1);
}

TEST(NeighborTable, LeaveRecordsChangeEvent) {
  NeighborTable t;
  t.onHello(H(1), hello(1), T(0));
  t.purge(T(5 * kSecond));  // expired at 2 s; purged now
  EXPECT_EQ(t.changeEventsInWindow(T(5 * kSecond)), 2);  // join + leave
}

TEST(NeighborTable, ChangeEventsAgeOutOfWindow) {
  NeighborTable t(10 * kSecond);
  t.onHello(H(1), hello(1, {}, 30 * kSecond), T(0));  // long-lived entry
  EXPECT_EQ(t.changeEventsInWindow(T(0)), 1);
  EXPECT_EQ(t.changeEventsInWindow(T(10 * kSecond)), 1);  // still inside window
  EXPECT_EQ(t.changeEventsInWindow(T(10 * kSecond + sim::kMicrosecond)), 0);
}

TEST(NeighborTable, NeighborhoodVariationFormula) {
  // nv = changes / (|N| * 10 s): 2 neighbors, 2 join events => 2/(2*10)=0.1.
  NeighborTable t;
  t.onHello(H(1), hello(1, {}, 30 * kSecond), T(0));
  t.onHello(H(2), hello(2, {}, 30 * kSecond), T(0));
  EXPECT_DOUBLE_EQ(t.neighborhoodVariation(T(kSecond)), 2.0 / (2.0 * 10.0));
}

TEST(NeighborTable, VariationZeroWhenStable) {
  NeighborTable t;
  t.onHello(H(1), hello(1, {}, 30 * kSecond), T(0));
  // 11 s later the join event left the window; the entry is still alive.
  EXPECT_DOUBLE_EQ(t.neighborhoodVariation(T(11 * kSecond)), 0.0);
}

TEST(NeighborTable, VariationWithEmptyNeighborhoodUsesUnitDenominator) {
  NeighborTable t;
  t.onHello(H(1), hello(1), T(0));
  t.purge(T(5 * kSecond));  // join+leave, table now empty
  EXPECT_DOUBLE_EQ(t.neighborhoodVariation(T(5 * kSecond)), 2.0 / 10.0);
}

TEST(NeighborTable, PurgeIsStableUnderRepetition) {
  NeighborTable t;
  t.onHello(H(1), hello(1), T(0));
  t.purge(T(5 * kSecond));
  const int events = t.changeEventsInWindow(T(5 * kSecond));
  t.purge(T(5 * kSecond));
  t.purge(T(5 * kSecond));
  EXPECT_EQ(t.changeEventsInWindow(T(5 * kSecond)), events);
}

}  // namespace
}  // namespace manet::net
