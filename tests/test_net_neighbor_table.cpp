#include "net/neighbor_table.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "net/packet.hpp"

namespace manet::net {
namespace {

using sim::kSecond;
using sim::Time;

Packet hello(NodeId sender, std::vector<NodeId> neighbors = {},
             Time interval = 1 * kSecond) {
  Packet p;
  p.type = PacketType::kHello;
  p.sender = sender;
  p.helloNeighbors = std::move(neighbors);
  p.helloInterval = interval;
  return p;
}

TEST(NeighborTable, StartsEmpty) {
  NeighborTable t;
  EXPECT_EQ(t.neighborCount(0), 0);
  EXPECT_TRUE(t.neighborIds(0).empty());
}

TEST(NeighborTable, HelloInsertsNeighbor) {
  NeighborTable t;
  t.onHello(7, hello(7), 1 * kSecond);
  EXPECT_EQ(t.neighborCount(1 * kSecond), 1);
  EXPECT_TRUE(t.contains(7, 1 * kSecond));
}

TEST(NeighborTable, EntryExpiresAfterTwoIntervals) {
  NeighborTable t;
  t.onHello(7, hello(7, {}, 1 * kSecond), 0);
  EXPECT_TRUE(t.contains(7, 2 * kSecond));          // exactly 2 intervals: kept
  EXPECT_FALSE(t.contains(7, 2 * kSecond + 1));     // just past: dropped
}

TEST(NeighborTable, FreshHelloRefreshesExpiry) {
  NeighborTable t;
  t.onHello(7, hello(7), 0);
  t.onHello(7, hello(7), 1 * kSecond);
  EXPECT_TRUE(t.contains(7, 3 * kSecond));
  EXPECT_FALSE(t.contains(7, 3 * kSecond + 1));
}

TEST(NeighborTable, ExpiryUsesSenderAnnouncedInterval) {
  NeighborTable t;
  t.onHello(7, hello(7, {}, 10 * kSecond), 0);  // DHI host with long interval
  EXPECT_TRUE(t.contains(7, 19 * kSecond));
  EXPECT_FALSE(t.contains(7, 21 * kSecond));
}

TEST(NeighborTable, FallbackIntervalWhenNotAnnounced) {
  NeighborTable t(10 * kSecond, /*fallbackInterval=*/2 * kSecond);
  t.onHello(7, hello(7, {}, 0), 0);  // interval 0 = not announced
  EXPECT_TRUE(t.contains(7, 4 * kSecond));
  EXPECT_FALSE(t.contains(7, 4 * kSecond + 1));
}

TEST(NeighborTable, TwoHopSetsStored) {
  NeighborTable t;
  t.onHello(7, hello(7, {1, 2, 3}), 0);
  const auto n = t.neighborsOf(7, kSecond);
  ASSERT_TRUE(n.has_value());
  EXPECT_EQ(*n, (std::vector<NodeId>{1, 2, 3}));
}

TEST(NeighborTable, TwoHopSetsUpdatedByNewerHello) {
  NeighborTable t;
  t.onHello(7, hello(7, {1, 2}), 0);
  t.onHello(7, hello(7, {3}), kSecond);
  EXPECT_EQ(*t.neighborsOf(7, kSecond), (std::vector<NodeId>{3}));
}

TEST(NeighborTable, UnknownNeighborHasNoTwoHopSet) {
  NeighborTable t;
  EXPECT_FALSE(t.neighborsOf(9, 0).has_value());
}

TEST(NeighborTable, NeighborIdsListsCurrentNeighbors) {
  NeighborTable t;
  t.onHello(1, hello(1), 0);
  t.onHello(2, hello(2), 0);
  t.onHello(3, hello(3, {}, 10 * kSecond), 0);
  auto ids = t.neighborIds(3 * kSecond);  // 1 and 2 expired, 3 remains
  EXPECT_EQ(ids, (std::vector<NodeId>{3}));
}

TEST(NeighborTable, JoinRecordsChangeEvent) {
  NeighborTable t;
  t.onHello(1, hello(1), 0);
  EXPECT_EQ(t.changeEventsInWindow(0), 1);
  t.onHello(1, hello(1), kSecond);  // refresh, not a join
  EXPECT_EQ(t.changeEventsInWindow(kSecond), 1);
}

TEST(NeighborTable, LeaveRecordsChangeEvent) {
  NeighborTable t;
  t.onHello(1, hello(1), 0);
  t.purge(5 * kSecond);  // expired at 2 s; purged now
  EXPECT_EQ(t.changeEventsInWindow(5 * kSecond), 2);  // join + leave
}

TEST(NeighborTable, ChangeEventsAgeOutOfWindow) {
  NeighborTable t(10 * kSecond);
  t.onHello(1, hello(1, {}, 30 * kSecond), 0);  // long-lived entry
  EXPECT_EQ(t.changeEventsInWindow(0), 1);
  EXPECT_EQ(t.changeEventsInWindow(10 * kSecond), 1);  // still inside window
  EXPECT_EQ(t.changeEventsInWindow(10 * kSecond + 1), 0);
}

TEST(NeighborTable, NeighborhoodVariationFormula) {
  // nv = changes / (|N| * 10 s): 2 neighbors, 2 join events => 2/(2*10)=0.1.
  NeighborTable t;
  t.onHello(1, hello(1, {}, 30 * kSecond), 0);
  t.onHello(2, hello(2, {}, 30 * kSecond), 0);
  EXPECT_DOUBLE_EQ(t.neighborhoodVariation(kSecond), 2.0 / (2.0 * 10.0));
}

TEST(NeighborTable, VariationZeroWhenStable) {
  NeighborTable t;
  t.onHello(1, hello(1, {}, 30 * kSecond), 0);
  // 11 s later the join event left the window; the entry is still alive.
  EXPECT_DOUBLE_EQ(t.neighborhoodVariation(11 * kSecond), 0.0);
}

TEST(NeighborTable, VariationWithEmptyNeighborhoodUsesUnitDenominator) {
  NeighborTable t;
  t.onHello(1, hello(1), 0);
  t.purge(5 * kSecond);  // join+leave, table now empty
  EXPECT_DOUBLE_EQ(t.neighborhoodVariation(5 * kSecond), 2.0 / 10.0);
}

TEST(NeighborTable, PurgeIsStableUnderRepetition) {
  NeighborTable t;
  t.onHello(1, hello(1), 0);
  t.purge(5 * kSecond);
  const int events = t.changeEventsInWindow(5 * kSecond);
  t.purge(5 * kSecond);
  t.purge(5 * kSecond);
  EXPECT_EQ(t.changeEventsInWindow(5 * kSecond), events);
}

}  // namespace
}  // namespace manet::net
