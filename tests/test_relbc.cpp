#include "relbc/reliable.hpp"

#include <gtest/gtest.h>

#include "experiment/world.hpp"

namespace manet::relbc {
namespace {

using experiment::ScenarioConfig;
using experiment::SchemeSpec;
using experiment::World;
using sim::kSecond;

constexpr sim::TimePoint T(sim::Duration sinceStart) {
  return sim::kTimeZero + sinceStart;
}

ScenarioConfig staticWorld(std::vector<geom::Vec2> positions) {
  ScenarioConfig c;
  c.fixedPositions = std::move(positions);
  c.scheme = SchemeSpec::flooding();
  c.mapUnits = 11;
  c.numBroadcasts = 0;
  c.seed = 41;
  return c;
}

TEST(Relbc, TracksReceivedBroadcasts) {
  World w(staticWorld({{0, 0}, {400, 0}}));
  RelbcHarness relbc(w);
  const auto bid = w.host(net::HostId{0}).originateBroadcast();
  w.scheduler().runUntil(T(1 * kSecond));
  EXPECT_TRUE(relbc.agent(net::HostId{1}).hasBroadcast(bid));
  EXPECT_FALSE(relbc.agent(net::HostId{1}).hasBroadcast({net::HostId{0}, net::BroadcastSeq{99}}));
  EXPECT_EQ(relbc.totalRecovered(), 0u);
  EXPECT_EQ(relbc.repairRequestsSent(), 0u);
}

TEST(Relbc, NoGapNoRepairTraffic) {
  World w(staticWorld({{0, 0}, {400, 0}, {800, 0}}));
  RelbcHarness relbc(w);
  for (int i = 0; i < 3; ++i) {
    w.host(net::HostId{0}).originateBroadcast();
    w.scheduler().runUntil(T((i + 1) * kSecond));
  }
  EXPECT_EQ(relbc.repairRequestsSent(), 0u);
}

TEST(Relbc, GapIsDetectedAndRepaired) {
  // Host 2 joins the chain "late": we emulate a missed broadcast by
  // disabling collisions but having host 2 out of range for seq 0, then in
  // range for seq 1 (via a scripted mobility stand-in: simplest is to make
  // seq 0 und seq 1 come from different sources... Instead: seq 0 is
  // transmitted while host 2's only link (host 1) is still unaware).
  //
  // Cleanest deterministic construction: chain 0-1-2 where host 1 is the
  // only relay; we inject the gap by delivering seq 1 before... since the
  // simulator is faithful, we create the gap with a genuine collision:
  // hosts 0 and 3 transmit simultaneously into 1 -- but then 1 has nothing
  // to relay. Simpler and fully deterministic: start host 2's agent with a
  // fabricated "have seq 1" state by sending TWO broadcasts while 2 is
  // isolated... Fixed positions are static, so instead we test the repair
  // machinery directly through its public behaviour: host 2 receives seq 1
  // only (seq 0's flood never reaches it because host 1's relay of seq 0
  // collides with a simultaneous transmission from host 3).
  //
  // Topology: 0 -- 1 -- 2, and 3 placed to be hidden from 1's neighbors
  // except 2 (3 only reaches 2).
  //   0=(0,0), 1=(400,0), 2=(800,0), 3=(1200,0) (reaches only 2).
  World w(staticWorld({{0, 0}, {400, 0}, {800, 0}, {1200, 0}}));
  RelbcHarness relbc(w);

  // seq 0: host 3 jams host 2 exactly while host 1 relays. Host 1's relay
  // happens ~jitter+DIFS after it hears the source; we have host 3 transmit
  // its own (unrelated) broadcast so the two overlap at host 2.
  const auto bid0 = w.host(net::HostId{0}).originateBroadcast();
  // Host 1 hears seq 0 at 2482 us; its relay starts within ~[2532, 3152].
  // Blanket the whole window from the hidden side:
  w.scheduler().schedule(sim::TimePoint{2'500}, [&w] { w.host(net::HostId{3}).originateBroadcast(); });
  w.scheduler().runUntil(T(1 * kSecond));
  ASSERT_FALSE(relbc.agent(net::HostId{2}).hasBroadcast(bid0)) << "setup failed";

  // seq 1 from host 0 flows through cleanly; host 2 sees the gap and asks
  // host 1 for the repair.
  w.host(net::HostId{0}).originateBroadcast();
  w.scheduler().runUntil(T(3 * kSecond));
  EXPECT_TRUE(relbc.agent(net::HostId{2}).hasBroadcast(bid0));
  // Host 3 (the jammer) overhears host 2's relay of seq 1, detects its own
  // gap, and repairs it too — recoveries cascade outward.
  EXPECT_GE(relbc.totalRecovered(), 1u);
  EXPECT_GE(relbc.repairRequestsSent(), 1u);
  EXPECT_GE(relbc.repairsServed(), 1u);
}

TEST(Relbc, ReachabilityAfterRepairAtLeastPlain) {
  ScenarioConfig c;
  c.mapUnits = 3;
  c.numHosts = 50;
  c.numBroadcasts = 0;
  c.scheme = SchemeSpec::counter(2);
  c.seed = 43;
  World w(c);
  w.startAgents();
  RelbcHarness relbc(w);
  sim::TimePoint at = T(100 * sim::kMillisecond);
  sim::Rng pick(3);
  for (int i = 0; i < 12; ++i) {
    const net::HostId src{static_cast<std::uint32_t>(pick.uniformInt(0, 49))};
    w.scheduler().schedule(at, [&w, src] { w.host(src).originateBroadcast(); });
    at += 500 * sim::kMillisecond;
  }
  w.scheduler().runUntil(at + 5 * kSecond);
  const double plain = w.metrics().summarize().meanRe;
  const double repaired = relbc.reachabilityAfterRepair();
  EXPECT_GE(repaired, plain - 1e-12);
  EXPECT_LE(repaired, 1.0);
}

TEST(Relbc, RepairGivesUpAfterMaxAttempts) {
  // Host 1 is host 2's only neighbor but (by construction) never holds the
  // missing broadcast: the missing bid was never transmitted at all. We
  // fabricate that by having host 9... simplest: a gap that nobody can
  // serve, created by an origin whose seq-0 broadcast collided everywhere.
  // Emulate directly: host 2 hears seq 1 from origin 0 only (host 1 also
  // missed seq 0 because host 0 never sent it -- we skip seq 0 by burning
  // one sequence number with an isolated self-broadcast while 0 is out of
  // everyone's range... not possible with static positions).
  //
  // Instead verify give-up accounting with an isolated pair: host 2's
  // repair target (host 1) doesn't have the packet either.
  // Topology: 0=(0,0) unreachable island; 1=(5000,0), 2=(5400,0).
  // Host 1 fabricates a gap at host 2 by broadcasting seq 1 as its SECOND
  // broadcast while its first happened before host 2 could hear... with
  // static positions both arrive. Accept the simpler property: requesting a
  // repair from a neighbor that lacks the packet yields no repair_data and
  // the agent stops after maxAttempts.
  RelbcConfig config;
  config.maxAttempts = 2;
  config.repairDelay = 10 * sim::kMillisecond;
  config.repairTimeout = 50 * sim::kMillisecond;

  // Build the gap deterministically via the jamming construction again, but
  // jam BOTH relays of seq 0 so nobody in 2's reach holds it... chain
  // 0-1-2 with jammer 3 at (1200,0) hits only host 2. Host 1 DOES hold
  // seq 0, so the repair succeeds -- covered above. For the give-up path,
  // remove host 1's copy by jamming host 1 instead: jammer at (-400,0)
  // cannot... a jammer at (800,0) IS host 2's spot.
  //
  // Pragmatic construction: host 2's only neighbor is host 3 (the jammer),
  // which never received anything from origin 0.
  //   0=(0,0), 1=(400,0), 2=(1700,0), 3=(1300,0).
  // Links: 0-1, 2-3, 1..3 distance 900 (none). Host 3 jams nothing; host 2
  // never hears origin 0 at all => no gap detected => no requests. So the
  // give-up path needs an actual unanswerable request: have origin 0 reach
  // host 2 exactly once (seq 1) through a TEMPORARY bridge... impossible
  // statically.
  //
  // Final approach: drive the agent API directly -- deliver seq 1 to the
  // agent by broadcasting from a bridge host 1 that relays seq 1 but whose
  // own copy of seq 0 is then "forgotten" because host 1 never had it:
  // host 1 only joined for seq 1. We get that by originating seq 0 from
  // host 0 while host 1 is jammed by host 4 (at (800,0)? that's in range
  // of 2...). Use 4=(100,300): reaches 0 and 1 but not 2 (dist >500).
  //   0=(0,0), 1=(400,0), 2=(800,0), 4=(100,300): d(4,2)=761 OK  d(4,1)=424.
  World w(staticWorld({{0, 0}, {400, 0}, {800, 0}, {100, 300}}));
  RelbcHarness relbc(w, config);
  const auto bid0 = w.host(net::HostId{0}).originateBroadcast();
  // Jam host 1 during host 0's transmission so host 1 misses seq 0: host 3
  // (at index 3) transmits simultaneously (both start at t=50 after boot).
  w.host(net::HostId{3}).originateBroadcast();
  w.scheduler().runUntil(T(1 * kSecond));
  ASSERT_FALSE(relbc.agent(net::HostId{1}).hasBroadcast(bid0)) << "setup failed";
  ASSERT_FALSE(relbc.agent(net::HostId{2}).hasBroadcast(bid0));

  // seq 1 now propagates cleanly 0 -> 1 -> 2; both 1 and 2 detect the gap;
  // host 1 repairs from host 0, but host 2's repairs can only reach hosts
  // 1... which (briefly) lacks the packet. Depending on timing host 2 may
  // still recover it after host 1 does. The hard guarantee: the system
  // settles with no pending timers and bounded request counts.
  w.host(net::HostId{0}).originateBroadcast();
  w.scheduler().runUntil(T(5 * kSecond));
  EXPECT_LE(relbc.repairRequestsSent(),
            static_cast<std::uint64_t>(2 * config.maxAttempts + 2));
  // Host 1 definitely recovered (host 0 holds seq 0).
  EXPECT_TRUE(relbc.agent(net::HostId{1}).hasBroadcast(bid0));
}

}  // namespace
}  // namespace manet::relbc
