#include "geom/circle.hpp"

#include <gtest/gtest.h>

#include "geom/vec2.hpp"

namespace manet::geom {
namespace {

constexpr double kR = 500.0;
const double kArea = kPi * kR * kR;

TEST(Vec2, Arithmetic) {
  Vec2 a{1.0, 2.0};
  Vec2 b{3.0, -1.0};
  EXPECT_EQ(a + b, (Vec2{4.0, 1.0}));
  EXPECT_EQ(a - b, (Vec2{-2.0, 3.0}));
  EXPECT_EQ(a * 2.0, (Vec2{2.0, 4.0}));
  EXPECT_EQ(2.0 * a, (Vec2{2.0, 4.0}));
}

TEST(Vec2, NormAndDistance) {
  EXPECT_DOUBLE_EQ((Vec2{3.0, 4.0}).norm(), 5.0);
  EXPECT_DOUBLE_EQ((Vec2{3.0, 4.0}).normSquared(), 25.0);
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distanceSquared({1, 1}, {4, 5}), 25.0);
}

TEST(Vec2, UnitVector) {
  const Vec2 u = unitVector(0.0);
  EXPECT_NEAR(u.x, 1.0, 1e-12);
  EXPECT_NEAR(u.y, 0.0, 1e-12);
  const Vec2 v = unitVector(kPi / 2.0);
  EXPECT_NEAR(v.x, 0.0, 1e-12);
  EXPECT_NEAR(v.y, 1.0, 1e-12);
}

TEST(IntersectionArea, CoincidentCirclesOverlapFully) {
  EXPECT_DOUBLE_EQ(intersectionArea(kR, 0.0), kArea);
}

TEST(IntersectionArea, DisjointCirclesOverlapNothing) {
  EXPECT_DOUBLE_EQ(intersectionArea(kR, 2.0 * kR), 0.0);
  EXPECT_DOUBLE_EQ(intersectionArea(kR, 3.0 * kR), 0.0);
}

TEST(IntersectionArea, MonotonicallyDecreasingInDistance) {
  double prev = intersectionArea(kR, 0.0);
  for (double d = 50.0; d <= 2.0 * kR; d += 50.0) {
    const double cur = intersectionArea(kR, d);
    EXPECT_LT(cur, prev) << "at d=" << d;
    prev = cur;
  }
}

TEST(IntersectionArea, HalfOverlapKnownValue) {
  // d = r: INTC(r) = (2*pi/3 - sqrt(3)/2) r^2 ~= 1.2284 r^2.
  const double expected = (2.0 * kPi / 3.0 - std::sqrt(3.0) / 2.0) * kR * kR;
  EXPECT_NEAR(intersectionArea(kR, kR), expected, 1e-6 * kArea);
}

TEST(AdditionalCoverage, MaximumIsAboutSixtyOnePercentAtDEqualsR) {
  // The paper: "a rebroadcast can provide at most ~61% additional coverage".
  EXPECT_NEAR(additionalCoverageFraction(kR, kR), 0.609, 0.002);
}

TEST(AdditionalCoverage, ZeroWhenColocated) {
  EXPECT_DOUBLE_EQ(additionalCoverageFraction(kR, 0.0), 0.0);
}

TEST(AdditionalCoverage, FullWhenOutOfRange) {
  EXPECT_DOUBLE_EQ(additionalCoverageFraction(kR, 2.0 * kR), 1.0);
}

TEST(AdditionalCoverage, AreaAndFractionAgree) {
  for (double d : {100.0, 250.0, 400.0}) {
    EXPECT_NEAR(additionalCoverageArea(kR, d) / kArea,
                additionalCoverageFraction(kR, d), 1e-12);
  }
}

TEST(AverageAdditionalCoverage, PaperQuotesAboutFortyOnePercent) {
  // §2.2.1: integrating over a random receiver position gives ~0.41 pi r^2.
  EXPECT_NEAR(averageAdditionalCoverageFraction(kR), 0.41, 0.005);
}

TEST(AverageAdditionalCoverage, IndependentOfRadius) {
  EXPECT_NEAR(averageAdditionalCoverageFraction(1.0),
              averageAdditionalCoverageFraction(500.0), 1e-9);
}

TEST(PairContention, PaperQuotesAboutFiftyNinePercent) {
  // §2.2.2: expected probability that two receivers contend ~= 59%.
  EXPECT_NEAR(expectedPairContentionProbability(kR), 0.59, 0.005);
}

TEST(IntersectionAreaDeath, RejectsNonPositiveRadius) {
  EXPECT_DEATH((void)intersectionArea(0.0, 1.0), "Precondition");
}

TEST(IntersectionAreaDeath, RejectsNegativeDistance) {
  EXPECT_DEATH((void)intersectionArea(1.0, -1.0), "Precondition");
}

}  // namespace
}  // namespace manet::geom
