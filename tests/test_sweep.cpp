#include "experiment/sweep.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace manet::experiment {
namespace {

ScenarioConfig tinyBase() {
  ScenarioConfig c;
  c.numHosts = 25;
  c.numBroadcasts = 3;
  c.seed = 4;
  return c;
}

TEST(Sweep, CartesianProductSize) {
  const auto cells = runSweep(
      tinyBase(),
      {schemeAxis({SchemeSpec::flooding(), SchemeSpec::counter(2)}),
       mapAxis({1, 5, 11})});
  EXPECT_EQ(cells.size(), 6u);
}

TEST(Sweep, CoordinatesMatchAxisOrder) {
  const auto cells = runSweep(
      tinyBase(), {schemeAxis({SchemeSpec::flooding()}), mapAxis({3})});
  ASSERT_EQ(cells.size(), 1u);
  ASSERT_EQ(cells[0].coordinates.size(), 2u);
  EXPECT_EQ(cells[0].coordinates[0], "flooding");
  EXPECT_EQ(cells[0].coordinates[1], "3x3");
}

TEST(Sweep, InnerAxisVariesFastest) {
  const auto cells = runSweep(
      tinyBase(),
      {schemeAxis({SchemeSpec::flooding(), SchemeSpec::counter(2)}),
       mapAxis({1, 5})});
  ASSERT_EQ(cells.size(), 4u);
  EXPECT_EQ(cells[0].coordinates, (std::vector<std::string>{"flooding", "1x1"}));
  EXPECT_EQ(cells[1].coordinates, (std::vector<std::string>{"flooding", "5x5"}));
  EXPECT_EQ(cells[2].coordinates, (std::vector<std::string>{"C=2", "1x1"}));
}

TEST(Sweep, ResultsArePopulated) {
  const auto cells =
      runSweep(tinyBase(), {schemeAxis({SchemeSpec::flooding()})});
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].result.summary.broadcasts, 3u);
  EXPECT_GE(cells[0].result.re(), 0.0);
}

TEST(Sweep, SpeedAndSeedAxes) {
  const auto cells = runSweep(
      tinyBase(), {speedAxis({10.0, 50.0}), seedAxis({1, 2, 3})});
  EXPECT_EQ(cells.size(), 6u);
  EXPECT_EQ(cells[0].coordinates[0], "10");
  EXPECT_EQ(cells[0].coordinates[1], "1");
}

TEST(Sweep, SeedAxisChangesOutcomes) {
  const auto cells =
      runSweep(tinyBase(), {seedAxis({1, 2})});
  ASSERT_EQ(cells.size(), 2u);
  // Different seeds give different topologies/timings; latency is a
  // continuous quantity, so equality would be a one-in-2^53 coincidence.
  EXPECT_NE(cells[0].result.latency(), cells[1].result.latency());
}

TEST(Sweep, TableRendersAllCells) {
  const auto axes = std::vector<SweepAxis>{
      schemeAxis({SchemeSpec::flooding()}), mapAxis({1, 3})};
  const auto cells = runSweep(tinyBase(), axes);
  const util::Table table = sweepTable(axes, cells);
  EXPECT_EQ(table.rowCount(), 2u);
  std::ostringstream os;
  table.print(os);
  EXPECT_NE(os.str().find("flooding"), std::string::npos);
  EXPECT_NE(os.str().find("3x3"), std::string::npos);
  std::ostringstream csv;
  table.printCsv(csv);
  EXPECT_NE(csv.str().find("scheme,map,RE,SRB"), std::string::npos);
}

TEST(SweepDeath, RejectsEmptyAxis) {
  SweepAxis empty;
  empty.name = "empty";
  EXPECT_DEATH(runSweep(tinyBase(), {empty}), "Precondition");
}

}  // namespace
}  // namespace manet::experiment
