// Checkpoint/replay subsystem (DESIGN.md §14): container framing, image
// round-trips, corruption rejection, and the resume-equivalence guarantee
// that backs the CI gate.
#include "ckpt/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "ckpt/config_io.hpp"
#include "ckpt/image.hpp"
#include "ckpt/io.hpp"
#include "ckpt/state_access.hpp"
#include "experiment/runner.hpp"
#include "experiment/world.hpp"
#include "sim/time.hpp"

namespace manet::ckpt {
namespace {

using experiment::ScenarioConfig;
using experiment::SchemeSpec;
using experiment::World;

// A small but fully-featured scenario: HELLO-fed adaptive counter, bursty
// link loss, and random churn, so a capture exercises every image section.
ScenarioConfig smallConfig() {
  ScenarioConfig c;
  c.mapUnits = 3;
  c.numHosts = 30;
  c.numBroadcasts = 10;
  c.neighborSource = experiment::NeighborSource::kHello;
  c.hello.enabled = true;
  c.scheme = SchemeSpec::adaptiveCounter();
  c.fault.loss = fault::FaultConfig::Loss::kGilbertElliott;
  c.fault.churn = true;
  c.fault.churnFraction = 0.2;
  c.seed = 42;
  return c;
}

sim::TimePoint tp(double seconds) {
  return sim::kTimeZero + sim::fromSeconds(seconds);
}

sim::TimePoint midpointOf(const World& world) {
  return tp(sim::toSeconds(world.horizonTime()) * 0.5);
}

// ------------------------------------------------------------ container io

TEST(CkptIo, WriterReaderRoundTripPrimitives) {
  Writer w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.i64(-42);
  w.f64(-1.5e-12);
  w.boolean(true);
  w.time(tp(1.25));
  w.duration(2 * sim::kSecond);
  w.str("hello\0world");

  Reader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_EQ(r.f64(), -1.5e-12);
  EXPECT_TRUE(r.boolean());
  EXPECT_EQ(r.time(), tp(1.25));
  EXPECT_EQ(r.duration(), 2 * sim::kSecond);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_TRUE(r.atEnd());
}

TEST(CkptIo, ReaderThrowsOnTruncation) {
  Writer w;
  w.u64(7);
  std::vector<std::uint8_t> bytes = w.take();
  bytes.pop_back();
  Reader r(bytes);
  EXPECT_THROW(r.u64(), Error);
}

TEST(CkptIo, ContainerRoundTrip) {
  std::vector<Section> sections;
  sections.push_back({"ABCD", {1, 2, 3}});
  sections.push_back({"EFGH", {}});
  const auto framed = frameContainer(sections);
  const auto parsed = parseContainer(framed);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].tag, "ABCD");
  EXPECT_EQ(parsed[0].payload, (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(parsed[1].tag, "EFGH");
  EXPECT_TRUE(parsed[1].payload.empty());
}

TEST(CkptIo, ContainerRejectsBadMagic) {
  auto framed = frameContainer({{"ABCD", {1}}});
  framed[0] ^= 0xFF;
  EXPECT_THROW(parseContainer(framed), Error);
}

TEST(CkptIo, ContainerRejectsVersionMismatch) {
  auto framed = frameContainer({{"ABCD", {1}}});
  framed[kMagicLen] ^= 0xFF;  // version u32 sits right after the magic
  try {
    parseContainer(framed);
    FAIL() << "version mismatch accepted";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }
}

TEST(CkptIo, ContainerDetectsPayloadBitFlip) {
  auto framed = frameContainer({{"ABCD", {1, 2, 3, 4}}});
  framed[framed.size() - 9] ^= 0x01;  // last payload byte (digest trails it)
  EXPECT_THROW(parseContainer(framed), Error);
}

TEST(CkptIo, ContainerDetectsTruncation) {
  auto framed = frameContainer({{"ABCD", {1, 2, 3, 4}}});
  framed.resize(framed.size() - 3);
  EXPECT_THROW(parseContainer(framed), Error);
}

// ------------------------------------------------------- image round-trips

TEST(CkptImage, RngRoundTrip) {
  RngImage v{{1, 0xFFFFFFFFFFFFFFFFull, 3, 4}};
  Writer w;
  encode(w, v);
  Reader r(w.bytes());
  EXPECT_EQ(decodeRng(r), v);
}

TEST(CkptImage, SchedulerRoundTrip) {
  SchedulerImage v;
  v.now = tp(3.5);
  v.nextSeq = 99;
  v.liveCount = 2;
  v.slotCount = 64;
  v.pending = {{tp(3.5), 7}, {tp(4.0), 8}};
  Writer w;
  encode(w, v);
  Reader r(w.bytes());
  EXPECT_EQ(decodeScheduler(r), v);
}

TEST(CkptImage, NeighborTableRoundTrip) {
  NeighborTableImage v;
  v.entries = {{3, tp(1.0), sim::kSecond, {1, 9}},
               {8, tp(2.0), 2 * sim::kSecond, {}}};
  v.changes = {tp(0.5), tp(1.5)};
  Writer w;
  encode(w, v);
  Reader r(w.bytes());
  EXPECT_EQ(decodeNeighborTable(r), v);
}

TEST(CkptImage, HostRoundTripWithDuplicateState) {
  HostImage v;
  v.id = 17;
  v.up = false;
  v.nextSeq = 5;
  v.schemeRng = {{1, 2, 3, 4}};
  v.jitterRng = {{5, 6, 7, 8}};
  v.macDigest = 0x1111;
  v.helloDigest = 0x2222;
  v.mobilityDigest = 0x3333;
  v.table.entries = {{2, tp(1.0), sim::kSecond, {17}}};
  BroadcastStateImage b;
  b.origin = 4;
  b.seq = 9;
  b.phase = 2;
  b.jitterPending = true;
  b.txId = 77;
  b.hasDecider = true;
  b.deciderDigest = 0xABCD;
  b.hasPacket = true;
  b.packetDigest = 0xEF01;
  v.broadcasts = {b};
  Writer w;
  encode(w, v);
  Reader r(w.bytes());
  EXPECT_EQ(decodeHost(r), v);
}

TEST(CkptImage, FaultRoundTripWithGilbertElliottChains) {
  FaultImage v;
  v.lossKind = 2;
  v.lossRng = {{9, 8, 7, 6}};
  v.links = {{(1ull << 32) | 2, true, {{1, 1, 1, 1}}},
             {(3ull << 32) | 4, false, {{2, 2, 2, 2}}}};
  Writer w;
  encode(w, v);
  Reader r(w.bytes());
  EXPECT_EQ(decodeFault(r), v);
}

TEST(CkptImage, WorldImageContainerRoundTripAndDiff) {
  // Capture a real mid-run world rather than hand-building every field.
  World world(smallConfig());
  world.beginRun();
  world.continueUntil(midpointOf(world));
  const WorldImage image = StateAccess::captureWorld(world);
  EXPECT_FALSE(image.hosts.empty());
  EXPECT_FALSE(image.scheduler.pending.empty());
  EXPECT_EQ(image.fault.lossKind, 2);  // Gilbert-Elliott chains captured
  EXPECT_FALSE(image.traffic.schedule.empty());

  WorldImage decoded = decodeWorldImage(encodeWorldImage(image));
  EXPECT_EQ(decoded, image);
  EXPECT_TRUE(diffWorldImages(image, decoded).empty());

  decoded.hosts[0].nextSeq ^= 1;
  decoded.scheduler.nextSeq ^= 1;
  const auto diffs = diffWorldImages(image, decoded);
  ASSERT_GE(diffs.size(), 2u);  // one line per mismatched subsystem
}

TEST(CkptConfig, ResolvedConfigRoundTripsByteExact) {
  ScenarioConfig c = smallConfig();
  c.fixedPositions = {{0, 0}, {100, 50}, {200, 0}};
  c.scheme = SchemeSpec::counter(3);
  const ScenarioConfig resolved = c.resolved();
  const auto blob = encodeConfig(resolved);
  // No operator== on ScenarioConfig: byte-stability of a re-encode is the
  // equality oracle (and what resume relies on).
  EXPECT_EQ(encodeConfig(decodeConfig(blob)), blob);
}

// ------------------------------------------------- resume equivalence core

TEST(Ckpt, CaptureIsSideEffectFreeAndSplitRunMatchesStraight) {
  const ScenarioConfig config = smallConfig();
  World straight(config);
  straight.run();

  World split(config);
  split.beginRun();
  split.continueUntil(midpointOf(split));
  const auto blob = capture(split);  // mid-run capture must perturb nothing
  EXPECT_FALSE(blob.empty());
  split.runToEnd();

  EXPECT_EQ(StateAccess::captureWorld(split),
            StateAccess::captureWorld(straight));
}

TEST(Ckpt, ResumedTailMatchesStraightThrough) {
  const ScenarioConfig config = smallConfig();
  World straight(config);
  straight.run();

  World prefix(config);
  prefix.beginRun();
  prefix.continueUntil(midpointOf(prefix));
  const auto blob = capture(prefix);

  Resumed resumed = resume(blob);
  ASSERT_NE(resumed.world, nullptr);
  EXPECT_EQ(resumed.image.anchor, midpointOf(prefix));
  resumed.world->runToEnd();

  const auto diffs = diffWorldImages(StateAccess::captureWorld(*resumed.world),
                                     StateAccess::captureWorld(straight));
  EXPECT_TRUE(diffs.empty()) << diffs.size() << " subsystem(s) diverged, e.g. "
                             << diffs.front();
}

TEST(Ckpt, ResumeRejectsCorruptedBlob) {
  World prefix(smallConfig());
  prefix.beginRun();
  prefix.continueUntil(midpointOf(prefix));
  auto blob = capture(prefix);
  blob[blob.size() / 2] ^= 0x10;
  EXPECT_THROW(resume(blob), Error);
}

TEST(Ckpt, ResumeRejectsVersionMismatch) {
  World prefix(smallConfig());
  prefix.beginRun();
  prefix.continueUntil(midpointOf(prefix));
  auto blob = capture(prefix);
  blob[kMagicLen] += 1;  // pretend a future format version
  try {
    resume(blob);
    FAIL() << "future-version blob accepted";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }
}

TEST(Ckpt, WorldCheckpointFileRoundTrip) {
  const std::string path = testing::TempDir() + "/ckpt_roundtrip.mckpt";
  const ScenarioConfig config = smallConfig();

  World straight(config);
  straight.run();

  World prefix(config);
  prefix.beginRun();
  prefix.continueUntil(midpointOf(prefix));
  prefix.checkpoint(path);

  std::unique_ptr<World> resumed = World::resume(path);
  ASSERT_NE(resumed, nullptr);
  resumed->runToEnd();
  EXPECT_EQ(StateAccess::captureWorld(*resumed),
            StateAccess::captureWorld(straight));
  std::remove(path.c_str());
}

TEST(Ckpt, ReadBlobFileRejectsMissingAndTruncatedFiles) {
  EXPECT_THROW(readBlobFile(testing::TempDir() + "/no_such_blob.mckpt"),
               Error);

  World prefix(smallConfig());
  prefix.beginRun();
  prefix.continueUntil(midpointOf(prefix));
  auto blob = capture(prefix);
  blob.resize(blob.size() - 7);
  const std::string path = testing::TempDir() + "/ckpt_truncated.mckpt";
  writeBlobFile(path, blob);
  EXPECT_THROW(resume(readBlobFile(path)), Error);
  std::remove(path.c_str());
}

TEST(Ckpt, RunCheckpointCycleMatchesStraightWorld) {
  const ScenarioConfig config = smallConfig();
  AnchorSpec anchor;
  anchor.fraction = 0.5;
  std::unique_ptr<World> cycled =
      runCheckpointCycle(config, anchor, /*blobDir=*/"", "test");
  ASSERT_NE(cycled, nullptr);

  World reference(config);
  reference.run();
  EXPECT_EQ(StateAccess::captureWorld(*cycled),
            StateAccess::captureWorld(reference));
}

TEST(Ckpt, AveragedSweepIdenticalUnderCycleOverrideAcrossThreads) {
  const ScenarioConfig config = smallConfig();
  const experiment::RunResult straight =
      experiment::runScenarioAveraged(config, 2, /*threads=*/1);

  experiment::setWorldRunOverride([](const ScenarioConfig& c) {
    AnchorSpec anchor;
    anchor.fraction = 0.5;
    return runCheckpointCycle(c, anchor, "", "test");
  });
  const experiment::RunResult cycled1 =
      experiment::runScenarioAveraged(config, 2, /*threads=*/1);
  const experiment::RunResult cycled2 =
      experiment::runScenarioAveraged(config, 2, /*threads=*/2);
  experiment::setWorldRunOverride(nullptr);

  for (const experiment::RunResult* r : {&cycled1, &cycled2}) {
    EXPECT_EQ(r->re(), straight.re());
    EXPECT_EQ(r->srb(), straight.srb());
    EXPECT_EQ(r->latency(), straight.latency());
    EXPECT_EQ(r->summary.broadcasts, straight.summary.broadcasts);
    EXPECT_EQ(r->framesTransmitted, straight.framesTransmitted);
    EXPECT_EQ(r->framesDelivered, straight.framesDelivered);
    EXPECT_EQ(r->framesCorrupted, straight.framesCorrupted);
    EXPECT_EQ(r->framesLostToFault, straight.framesLostToFault);
    EXPECT_EQ(r->offeredBroadcasts, straight.offeredBroadcasts);
    EXPECT_EQ(r->hellosPerHostPerSecond, straight.hellosPerHostPerSecond);
  }
}

TEST(Ckpt, SchemeOverrideTailRunsToHorizon) {
  World prefix(smallConfig());
  prefix.beginRun();
  prefix.continueUntil(midpointOf(prefix));
  const auto blob = capture(prefix);

  Resumed resumed = resume(blob);
  resumed.world->overrideScheme(SchemeSpec::flooding());
  resumed.world->runToEnd();
  const WorldImage end = StateAccess::captureWorld(*resumed.world);
  EXPECT_EQ(end.anchor, resumed.world->horizonTime());
  // The tail ran under the new policy without disturbing in-flight
  // broadcasts; the run still completes every scheduled request.
  EXPECT_EQ(end.traffic.schedule.size(), 10u);
}

// ---------------------------------------------------------- CLI spec parsing

TEST(CkptSpec, ParseAnchorSpec) {
  const AnchorSpec secs = parseAnchorSpec("12.5");
  EXPECT_DOUBLE_EQ(secs.seconds, 12.5);
  EXPECT_LT(secs.fraction, 0.0);
  EXPECT_TRUE(secs.active());

  const AnchorSpec frac = parseAnchorSpec("50%");
  EXPECT_DOUBLE_EQ(frac.fraction, 0.5);
  EXPECT_LT(frac.seconds, 0.0);

  EXPECT_THROW(parseAnchorSpec(""), Error);
  EXPECT_THROW(parseAnchorSpec("abc"), Error);
  EXPECT_THROW(parseAnchorSpec("150%"), Error);
  EXPECT_THROW(parseAnchorSpec("-3"), Error);
}

TEST(CkptSpec, ParseSchemeOverride) {
  EXPECT_EQ(parseSchemeOverride("flooding").name(), "flooding");
  EXPECT_EQ(parseSchemeOverride("c=3").name(), SchemeSpec::counter(3).name());
  EXPECT_EQ(parseSchemeOverride("p=0.5").name(),
            SchemeSpec::probabilistic(0.5).name());
  EXPECT_THROW(parseSchemeOverride("bogus"), Error);
  EXPECT_THROW(parseSchemeOverride("c=zero"), Error);
}

}  // namespace
}  // namespace manet::ckpt
