// Invariant auditor: every checker class fires on a corrupted event
// sequence and stays silent on legal ones (DESIGN.md §9). Checkers are
// always compiled, so these tests run in every build configuration; only
// the engine hooks are gated behind -DMANET_AUDIT=ON.
#include "audit/invariants.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "audit/audit.hpp"
#include "experiment/world.hpp"

namespace manet::audit {
namespace {

// Shorthand constructors for the strong types (the hooks are exercised with
// bare literals throughout).
constexpr sim::TimePoint T(std::int64_t ticks) { return sim::TimePoint{ticks}; }
constexpr net::HostId N(std::uint32_t id) { return net::HostId{id}; }

// --- sink machinery ---------------------------------------------------------

TEST(AuditSink, CountingSinkCapturesAndRestores) {
  Sink* before = currentSink();
  {
    ScopedCountingSink sink;
    EXPECT_EQ(currentSink(), &sink);
    report({"test.synthetic", T(7), N(3), "detail"});
    EXPECT_EQ(sink.count(), 1u);
    EXPECT_STREQ(sink.last().invariant, "test.synthetic");
    EXPECT_EQ(sink.last().at, T(7));
    EXPECT_EQ(sink.last().node, N(3));
    EXPECT_EQ(sink.last().detail, "detail");
  }
  EXPECT_EQ(currentSink(), before);
}

TEST(AuditSink, ThreadCounterTracksReports) {
  ScopedCountingSink sink;
  resetViolationCount();
  report({"test.synthetic", T(0), net::kInvalidHost, ""});
  report({"test.synthetic", T(0), net::kInvalidHost, ""});
  EXPECT_EQ(violationCount(), 2u);
  resetViolationCount();
  EXPECT_EQ(violationCount(), 0u);
}

// --- scheduler --------------------------------------------------------------

TEST(SchedulerAuditTest, LegalSequenceIsSilent) {
  ScopedCountingSink sink;
  SchedulerAudit audit;
  audit.onSchedule(T(10), T(0));
  audit.onSchedule(T(10), T(10));  // zero-delay self-schedule is legal
  audit.onPop(T(10));
  audit.onPop(T(10));  // FIFO ties pop at the same timestamp
  audit.onPop(T(25));
  audit.onCancel(T(30), T(25));
  audit.onCancel(T(25), T(25));  // same-timestamp inhibition (paper step S5)
  EXPECT_EQ(sink.count(), 0u);
}

TEST(SchedulerAuditTest, ScheduleInPastFires) {
  ScopedCountingSink sink;
  SchedulerAudit audit;
  audit.onSchedule(T(99), T(100));
  ASSERT_EQ(sink.count(), 1u);
  EXPECT_STREQ(sink.last().invariant, "scheduler.schedule-in-past");
  EXPECT_EQ(sink.last().at, T(100));
}

TEST(SchedulerAuditTest, NonMonotonicPopFires) {
  ScopedCountingSink sink;
  SchedulerAudit audit;
  audit.onPop(T(50));
  audit.onPop(T(49));
  ASSERT_EQ(sink.count(), 1u);
  EXPECT_STREQ(sink.last().invariant, "scheduler.monotonic-pop");
}

TEST(SchedulerAuditTest, CancelOfPastEventFires) {
  ScopedCountingSink sink;
  SchedulerAudit audit;
  audit.onCancel(T(10), T(20));
  ASSERT_EQ(sink.count(), 1u);
  EXPECT_STREQ(sink.last().invariant, "scheduler.cancel-past-event");
}

TEST(SchedulerAuditTest, MatchingLiveAndResidentCountsAreSilent) {
  ScopedCountingSink sink;
  SchedulerAudit audit;
  audit.onCount(0, 0, T(10));
  audit.onCount(17, 17, T(20));
  EXPECT_EQ(sink.count(), 0u);
}

TEST(SchedulerAuditTest, CountDriftFires) {
  // The slab scheduler's cross-check: the redundant live counter must equal
  // the heap-resident count after every pop and cancel. Drift means a dead
  // entry survived in the heap (or a live one was dropped).
  ScopedCountingSink sink;
  SchedulerAudit audit;
  audit.onCount(3, 4, T(55));
  ASSERT_EQ(sink.count(), 1u);
  EXPECT_STREQ(sink.last().invariant, "scheduler.count-drift");
  EXPECT_EQ(sink.last().at, T(55));
}

// --- channel ----------------------------------------------------------------

TEST(ChannelAuditTest, BalancedTrafficIsSilent) {
  ScopedCountingSink sink;
  ChannelAudit audit;
  audit.onBeginReception(N(1), T(0));
  audit.onBeginReception(N(1), T(5));  // overlapping receptions are normal
  audit.onEnergyRaise(N(1), T(0));
  audit.onEndReception(N(1), T(40));
  audit.onEndReception(N(1), T(45));
  audit.onEnergyLower(N(1), T(40));
  audit.atTeardown(0, T(100));
  EXPECT_EQ(sink.count(), 0u);
  EXPECT_EQ(audit.begins(), 2u);
  EXPECT_EQ(audit.ends(), 2u);
}

TEST(ChannelAuditTest, ReceptionUnderflowFires) {
  ScopedCountingSink sink;
  ChannelAudit audit;
  audit.onEndReception(N(4), T(10));
  ASSERT_EQ(sink.count(), 1u);
  EXPECT_STREQ(sink.last().invariant, "channel.reception-underflow");
  EXPECT_EQ(sink.last().node, N(4));
}

TEST(ChannelAuditTest, EnergyUnderflowFires) {
  ScopedCountingSink sink;
  ChannelAudit audit;
  audit.onEnergyRaise(N(2), T(0));
  audit.onEnergyLower(N(2), T(10));
  audit.onEnergyLower(N(2), T(11));
  ASSERT_EQ(sink.count(), 1u);
  EXPECT_STREQ(sink.last().invariant, "channel.energy-underflow");
}

TEST(ChannelAuditTest, HostDownFlushMatchingInFlightIsSilent) {
  ScopedCountingSink sink;
  ChannelAudit audit;
  audit.onBeginReception(N(3), T(0));
  audit.onBeginReception(N(3), T(1));
  audit.onHostDown(N(3), 2, T(50));  // both in-flight receptions flushed
  audit.atTeardown(0, T(100));    // begins(2) == ends(0) + flushes(2)
  EXPECT_EQ(sink.count(), 0u);
}

TEST(ChannelAuditTest, HostDownFlushMismatchFires) {
  ScopedCountingSink sink;
  ChannelAudit audit;
  audit.onBeginReception(N(3), T(0));
  audit.onHostDown(N(3), 2, T(50));  // claims two flushed, only one in flight
  ASSERT_EQ(sink.count(), 1u);
  EXPECT_STREQ(sink.last().invariant, "channel.flush-mismatch");
}

TEST(ChannelAuditTest, DeliveryWhileDownFires) {
  ScopedCountingSink sink;
  ChannelAudit audit;
  audit.onDeliveryWhileDown(N(9), T(33));
  ASSERT_EQ(sink.count(), 1u);
  EXPECT_STREQ(sink.last().invariant, "channel.down-node-delivery");
}

TEST(ChannelAuditTest, TeardownImbalanceFires) {
  ScopedCountingSink sink;
  ChannelAudit audit;
  audit.onBeginReception(N(0), T(0));
  audit.atTeardown(0, T(100));  // one begin never ended, flushed, or in flight
  ASSERT_EQ(sink.count(), 1u);
  EXPECT_STREQ(sink.last().invariant, "channel.teardown-balance");
}

TEST(ChannelAuditTest, TeardownMidFrameIsLegal) {
  ScopedCountingSink sink;
  ChannelAudit audit;
  audit.onBeginReception(N(0), T(0));
  audit.atTeardown(1, T(100));  // run stopped with the frame still on the air
  EXPECT_EQ(sink.count(), 0u);
}

// --- DCF MAC ----------------------------------------------------------------

TEST(DcfAuditTest, LegalBroadcastAndUnicastFlowIsSilent) {
  ScopedCountingSink sink;
  DcfAudit audit(N(7));
  // Broadcast: one frame on the air, then idle.
  audit.onAirTransition(DcfAudit::Air::kBroadcast, T(10));
  audit.onAirTransition(DcfAudit::Air::kNone, T(20));
  // Unicast initiator: RTS -> await CTS -> DATA -> await ACK -> done.
  audit.onAirTransition(DcfAudit::Air::kRts, T(30));
  audit.onAirTransition(DcfAudit::Air::kNone, T(35));
  audit.onExchangeTransition(DcfAudit::Exchange::kAwaitCts, T(35));
  audit.onExchangeTransition(DcfAudit::Exchange::kNone, T(40));
  audit.onAirTransition(DcfAudit::Air::kData, T(41));
  audit.onAirTransition(DcfAudit::Air::kNone, T(50));
  audit.onExchangeTransition(DcfAudit::Exchange::kAwaitAck, T(50));
  audit.onExchangeTransition(DcfAudit::Exchange::kNone, T(55));
  EXPECT_EQ(sink.count(), 0u);
}

TEST(DcfAuditTest, OverlappingTransmissionsFire) {
  ScopedCountingSink sink;
  DcfAudit audit(N(7));
  audit.onAirTransition(DcfAudit::Air::kBroadcast, T(10));
  audit.onAirTransition(DcfAudit::Air::kRts, T(12));
  ASSERT_EQ(sink.count(), 1u);
  EXPECT_STREQ(sink.last().invariant, "mac.onair-overlap");
  EXPECT_EQ(sink.last().node, N(7));
}

TEST(DcfAuditTest, EndWithNothingOnAirFires) {
  ScopedCountingSink sink;
  DcfAudit audit(N(7));
  audit.onAirTransition(DcfAudit::Air::kNone, T(10));
  ASSERT_EQ(sink.count(), 1u);
  EXPECT_STREQ(sink.last().invariant, "mac.onair-underflow");
}

TEST(DcfAuditTest, NestedExchangeWaitFires) {
  ScopedCountingSink sink;
  DcfAudit audit(N(7));
  audit.onExchangeTransition(DcfAudit::Exchange::kAwaitCts, T(10));
  audit.onExchangeTransition(DcfAudit::Exchange::kAwaitAck, T(12));
  ASSERT_EQ(sink.count(), 1u);
  EXPECT_STREQ(sink.last().invariant, "mac.exchange-illegal");
}

TEST(DcfAuditTest, ResetForcesIdleLegally) {
  ScopedCountingSink sink;
  DcfAudit audit(N(7));
  audit.onAirTransition(DcfAudit::Air::kData, T(10));
  audit.onExchangeTransition(DcfAudit::Exchange::kAwaitAck, T(10));
  audit.onReset();  // crash mid-exchange: both machines forced idle
  audit.onAirTransition(DcfAudit::Air::kBroadcast, T(20));
  audit.onAirTransition(DcfAudit::Air::kNone, T(25));
  EXPECT_EQ(sink.count(), 0u);
  EXPECT_EQ(audit.air(), DcfAudit::Air::kNone);
  EXPECT_EQ(audit.exchange(), DcfAudit::Exchange::kNone);
}

// --- neighbor table ---------------------------------------------------------

TEST(NeighborAuditTest, OrderedPurgesAndTrueExpiriesAreSilent) {
  ScopedCountingSink sink;
  NeighborAudit audit(N(5));
  audit.onPurge(T(100));
  audit.onPurge(T(100));  // same-time re-purge is legal
  audit.onPurge(T(200));
  audit.onExpire(T(150), T(200));  // deadline strictly past
  EXPECT_EQ(sink.count(), 0u);
}

TEST(NeighborAuditTest, PurgeTimeGoingBackwardsFires) {
  ScopedCountingSink sink;
  NeighborAudit audit(N(5));
  audit.onPurge(T(200));
  audit.onPurge(T(199));
  ASSERT_EQ(sink.count(), 1u);
  EXPECT_STREQ(sink.last().invariant, "neighbor.purge-order");
}

TEST(NeighborAuditTest, PrematureExpiryFires) {
  ScopedCountingSink sink;
  NeighborAudit audit(N(5));
  audit.onExpire(T(200), T(200));  // deadline not yet strictly past
  ASSERT_EQ(sink.count(), 1u);
  EXPECT_STREQ(sink.last().invariant, "neighbor.premature-expiry");
}

TEST(NeighborAuditTest, ClearForgetsThePurgeClock) {
  ScopedCountingSink sink;
  NeighborAudit audit(N(5));
  audit.onPurge(T(500));
  audit.onClear();    // crash reset
  audit.onPurge(T(10));  // a recovered host restarts from an earlier clock? No —
                      // sim time never rewinds, but a *fresh table object*
                      // (new run on this thread) legitimately starts over.
  EXPECT_EQ(sink.count(), 0u);
}

// --- churn ------------------------------------------------------------------

TEST(ChurnAuditTest, CompleteResetIsSilent) {
  ScopedCountingSink sink;
  ChurnAudit{}.onCrashReset(N(3), true, true, true, T(40));
  EXPECT_EQ(sink.count(), 0u);
}

TEST(ChurnAuditTest, AnyResidueFires) {
  ScopedCountingSink sink;
  ChurnAudit{}.onCrashReset(N(3), false, true, true, T(40));
  ChurnAudit{}.onCrashReset(N(3), true, false, true, T(41));
  ChurnAudit{}.onCrashReset(N(3), true, true, false, T(42));
  ASSERT_EQ(sink.count(), 3u);
  EXPECT_STREQ(sink.last().invariant, "churn.crash-reset-incomplete");
  EXPECT_NE(sink.last().detail.find("neighbor-table"), std::string::npos);
}

// --- end to end -------------------------------------------------------------

// A healthy run reports nothing: with -DMANET_AUDIT=ON every engine hook is
// live and must stay silent; with auditing off the hooks compile away and
// silence is trivial. Either way the golden scenario must not trip the sink.
TEST(AuditEndToEnd, SeedScenarioRunsWithoutViolations) {
  ScopedCountingSink sink;
  resetViolationCount();
  {
    experiment::ScenarioConfig c;
    c.numHosts = 20;
    c.numBroadcasts = 10;
    c.seed = 42;
    experiment::World w(c);
    w.run();
  }  // world teardown runs the channel ledger check under MANET_AUDIT
  EXPECT_EQ(sink.count(), 0u);
  EXPECT_EQ(violationCount(), 0u);
}

TEST(AuditEndToEnd, ChurnScenarioRunsWithoutViolations) {
  ScopedCountingSink sink;
  {
    experiment::ScenarioConfig c;
    c.numHosts = 20;
    c.numBroadcasts = 10;
    c.seed = 7;
    c.fault.churn = true;
    c.fault.churnFraction = 0.4;
    experiment::World w(c);
    w.run();
  }
  EXPECT_EQ(sink.count(), 0u);
}

}  // namespace
}  // namespace manet::audit
