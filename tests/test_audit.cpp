// Invariant auditor: every checker class fires on a corrupted event
// sequence and stays silent on legal ones (DESIGN.md §9). Checkers are
// always compiled, so these tests run in every build configuration; only
// the engine hooks are gated behind -DMANET_AUDIT=ON.
#include "audit/invariants.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "audit/audit.hpp"
#include "experiment/world.hpp"

namespace manet::audit {
namespace {

// --- sink machinery ---------------------------------------------------------

TEST(AuditSink, CountingSinkCapturesAndRestores) {
  Sink* before = currentSink();
  {
    ScopedCountingSink sink;
    EXPECT_EQ(currentSink(), &sink);
    report({"test.synthetic", 7, 3, "detail"});
    EXPECT_EQ(sink.count(), 1u);
    EXPECT_STREQ(sink.last().invariant, "test.synthetic");
    EXPECT_EQ(sink.last().at, 7);
    EXPECT_EQ(sink.last().node, 3u);
    EXPECT_EQ(sink.last().detail, "detail");
  }
  EXPECT_EQ(currentSink(), before);
}

TEST(AuditSink, ThreadCounterTracksReports) {
  ScopedCountingSink sink;
  resetViolationCount();
  report({"test.synthetic", 0, net::kInvalidNode, ""});
  report({"test.synthetic", 0, net::kInvalidNode, ""});
  EXPECT_EQ(violationCount(), 2u);
  resetViolationCount();
  EXPECT_EQ(violationCount(), 0u);
}

// --- scheduler --------------------------------------------------------------

TEST(SchedulerAuditTest, LegalSequenceIsSilent) {
  ScopedCountingSink sink;
  SchedulerAudit audit;
  audit.onSchedule(10, 0);
  audit.onSchedule(10, 10);  // zero-delay self-schedule is legal
  audit.onPop(10);
  audit.onPop(10);  // FIFO ties pop at the same timestamp
  audit.onPop(25);
  audit.onCancel(30, 25);
  audit.onCancel(25, 25);  // same-timestamp inhibition (paper step S5)
  EXPECT_EQ(sink.count(), 0u);
}

TEST(SchedulerAuditTest, ScheduleInPastFires) {
  ScopedCountingSink sink;
  SchedulerAudit audit;
  audit.onSchedule(99, 100);
  ASSERT_EQ(sink.count(), 1u);
  EXPECT_STREQ(sink.last().invariant, "scheduler.schedule-in-past");
  EXPECT_EQ(sink.last().at, 100);
}

TEST(SchedulerAuditTest, NonMonotonicPopFires) {
  ScopedCountingSink sink;
  SchedulerAudit audit;
  audit.onPop(50);
  audit.onPop(49);
  ASSERT_EQ(sink.count(), 1u);
  EXPECT_STREQ(sink.last().invariant, "scheduler.monotonic-pop");
}

TEST(SchedulerAuditTest, CancelOfPastEventFires) {
  ScopedCountingSink sink;
  SchedulerAudit audit;
  audit.onCancel(10, 20);
  ASSERT_EQ(sink.count(), 1u);
  EXPECT_STREQ(sink.last().invariant, "scheduler.cancel-past-event");
}

TEST(SchedulerAuditTest, MatchingLiveAndResidentCountsAreSilent) {
  ScopedCountingSink sink;
  SchedulerAudit audit;
  audit.onCount(0, 0, 10);
  audit.onCount(17, 17, 20);
  EXPECT_EQ(sink.count(), 0u);
}

TEST(SchedulerAuditTest, CountDriftFires) {
  // The slab scheduler's cross-check: the redundant live counter must equal
  // the heap-resident count after every pop and cancel. Drift means a dead
  // entry survived in the heap (or a live one was dropped).
  ScopedCountingSink sink;
  SchedulerAudit audit;
  audit.onCount(3, 4, 55);
  ASSERT_EQ(sink.count(), 1u);
  EXPECT_STREQ(sink.last().invariant, "scheduler.count-drift");
  EXPECT_EQ(sink.last().at, 55);
}

// --- channel ----------------------------------------------------------------

TEST(ChannelAuditTest, BalancedTrafficIsSilent) {
  ScopedCountingSink sink;
  ChannelAudit audit;
  audit.onBeginReception(1, 0);
  audit.onBeginReception(1, 5);  // overlapping receptions are normal
  audit.onEnergyRaise(1, 0);
  audit.onEndReception(1, 40);
  audit.onEndReception(1, 45);
  audit.onEnergyLower(1, 40);
  audit.atTeardown(0, 100);
  EXPECT_EQ(sink.count(), 0u);
  EXPECT_EQ(audit.begins(), 2u);
  EXPECT_EQ(audit.ends(), 2u);
}

TEST(ChannelAuditTest, ReceptionUnderflowFires) {
  ScopedCountingSink sink;
  ChannelAudit audit;
  audit.onEndReception(4, 10);
  ASSERT_EQ(sink.count(), 1u);
  EXPECT_STREQ(sink.last().invariant, "channel.reception-underflow");
  EXPECT_EQ(sink.last().node, 4u);
}

TEST(ChannelAuditTest, EnergyUnderflowFires) {
  ScopedCountingSink sink;
  ChannelAudit audit;
  audit.onEnergyRaise(2, 0);
  audit.onEnergyLower(2, 10);
  audit.onEnergyLower(2, 11);
  ASSERT_EQ(sink.count(), 1u);
  EXPECT_STREQ(sink.last().invariant, "channel.energy-underflow");
}

TEST(ChannelAuditTest, HostDownFlushMatchingInFlightIsSilent) {
  ScopedCountingSink sink;
  ChannelAudit audit;
  audit.onBeginReception(3, 0);
  audit.onBeginReception(3, 1);
  audit.onHostDown(3, 2, 50);  // both in-flight receptions flushed
  audit.atTeardown(0, 100);    // begins(2) == ends(0) + flushes(2)
  EXPECT_EQ(sink.count(), 0u);
}

TEST(ChannelAuditTest, HostDownFlushMismatchFires) {
  ScopedCountingSink sink;
  ChannelAudit audit;
  audit.onBeginReception(3, 0);
  audit.onHostDown(3, 2, 50);  // claims two flushed, only one in flight
  ASSERT_EQ(sink.count(), 1u);
  EXPECT_STREQ(sink.last().invariant, "channel.flush-mismatch");
}

TEST(ChannelAuditTest, DeliveryWhileDownFires) {
  ScopedCountingSink sink;
  ChannelAudit audit;
  audit.onDeliveryWhileDown(9, 33);
  ASSERT_EQ(sink.count(), 1u);
  EXPECT_STREQ(sink.last().invariant, "channel.down-node-delivery");
}

TEST(ChannelAuditTest, TeardownImbalanceFires) {
  ScopedCountingSink sink;
  ChannelAudit audit;
  audit.onBeginReception(0, 0);
  audit.atTeardown(0, 100);  // one begin never ended, flushed, or in flight
  ASSERT_EQ(sink.count(), 1u);
  EXPECT_STREQ(sink.last().invariant, "channel.teardown-balance");
}

TEST(ChannelAuditTest, TeardownMidFrameIsLegal) {
  ScopedCountingSink sink;
  ChannelAudit audit;
  audit.onBeginReception(0, 0);
  audit.atTeardown(1, 100);  // run stopped with the frame still on the air
  EXPECT_EQ(sink.count(), 0u);
}

// --- DCF MAC ----------------------------------------------------------------

TEST(DcfAuditTest, LegalBroadcastAndUnicastFlowIsSilent) {
  ScopedCountingSink sink;
  DcfAudit audit(7);
  // Broadcast: one frame on the air, then idle.
  audit.onAirTransition(DcfAudit::Air::kBroadcast, 10);
  audit.onAirTransition(DcfAudit::Air::kNone, 20);
  // Unicast initiator: RTS -> await CTS -> DATA -> await ACK -> done.
  audit.onAirTransition(DcfAudit::Air::kRts, 30);
  audit.onAirTransition(DcfAudit::Air::kNone, 35);
  audit.onExchangeTransition(DcfAudit::Exchange::kAwaitCts, 35);
  audit.onExchangeTransition(DcfAudit::Exchange::kNone, 40);
  audit.onAirTransition(DcfAudit::Air::kData, 41);
  audit.onAirTransition(DcfAudit::Air::kNone, 50);
  audit.onExchangeTransition(DcfAudit::Exchange::kAwaitAck, 50);
  audit.onExchangeTransition(DcfAudit::Exchange::kNone, 55);
  EXPECT_EQ(sink.count(), 0u);
}

TEST(DcfAuditTest, OverlappingTransmissionsFire) {
  ScopedCountingSink sink;
  DcfAudit audit(7);
  audit.onAirTransition(DcfAudit::Air::kBroadcast, 10);
  audit.onAirTransition(DcfAudit::Air::kRts, 12);
  ASSERT_EQ(sink.count(), 1u);
  EXPECT_STREQ(sink.last().invariant, "mac.onair-overlap");
  EXPECT_EQ(sink.last().node, 7u);
}

TEST(DcfAuditTest, EndWithNothingOnAirFires) {
  ScopedCountingSink sink;
  DcfAudit audit(7);
  audit.onAirTransition(DcfAudit::Air::kNone, 10);
  ASSERT_EQ(sink.count(), 1u);
  EXPECT_STREQ(sink.last().invariant, "mac.onair-underflow");
}

TEST(DcfAuditTest, NestedExchangeWaitFires) {
  ScopedCountingSink sink;
  DcfAudit audit(7);
  audit.onExchangeTransition(DcfAudit::Exchange::kAwaitCts, 10);
  audit.onExchangeTransition(DcfAudit::Exchange::kAwaitAck, 12);
  ASSERT_EQ(sink.count(), 1u);
  EXPECT_STREQ(sink.last().invariant, "mac.exchange-illegal");
}

TEST(DcfAuditTest, ResetForcesIdleLegally) {
  ScopedCountingSink sink;
  DcfAudit audit(7);
  audit.onAirTransition(DcfAudit::Air::kData, 10);
  audit.onExchangeTransition(DcfAudit::Exchange::kAwaitAck, 10);
  audit.onReset();  // crash mid-exchange: both machines forced idle
  audit.onAirTransition(DcfAudit::Air::kBroadcast, 20);
  audit.onAirTransition(DcfAudit::Air::kNone, 25);
  EXPECT_EQ(sink.count(), 0u);
  EXPECT_EQ(audit.air(), DcfAudit::Air::kNone);
  EXPECT_EQ(audit.exchange(), DcfAudit::Exchange::kNone);
}

// --- neighbor table ---------------------------------------------------------

TEST(NeighborAuditTest, OrderedPurgesAndTrueExpiriesAreSilent) {
  ScopedCountingSink sink;
  NeighborAudit audit(5);
  audit.onPurge(100);
  audit.onPurge(100);  // same-time re-purge is legal
  audit.onPurge(200);
  audit.onExpire(150, 200);  // deadline strictly past
  EXPECT_EQ(sink.count(), 0u);
}

TEST(NeighborAuditTest, PurgeTimeGoingBackwardsFires) {
  ScopedCountingSink sink;
  NeighborAudit audit(5);
  audit.onPurge(200);
  audit.onPurge(199);
  ASSERT_EQ(sink.count(), 1u);
  EXPECT_STREQ(sink.last().invariant, "neighbor.purge-order");
}

TEST(NeighborAuditTest, PrematureExpiryFires) {
  ScopedCountingSink sink;
  NeighborAudit audit(5);
  audit.onExpire(200, 200);  // deadline not yet strictly past
  ASSERT_EQ(sink.count(), 1u);
  EXPECT_STREQ(sink.last().invariant, "neighbor.premature-expiry");
}

TEST(NeighborAuditTest, ClearForgetsThePurgeClock) {
  ScopedCountingSink sink;
  NeighborAudit audit(5);
  audit.onPurge(500);
  audit.onClear();    // crash reset
  audit.onPurge(10);  // a recovered host restarts from an earlier clock? No —
                      // sim time never rewinds, but a *fresh table object*
                      // (new run on this thread) legitimately starts over.
  EXPECT_EQ(sink.count(), 0u);
}

// --- churn ------------------------------------------------------------------

TEST(ChurnAuditTest, CompleteResetIsSilent) {
  ScopedCountingSink sink;
  ChurnAudit{}.onCrashReset(3, true, true, true, 40);
  EXPECT_EQ(sink.count(), 0u);
}

TEST(ChurnAuditTest, AnyResidueFires) {
  ScopedCountingSink sink;
  ChurnAudit{}.onCrashReset(3, false, true, true, 40);
  ChurnAudit{}.onCrashReset(3, true, false, true, 41);
  ChurnAudit{}.onCrashReset(3, true, true, false, 42);
  ASSERT_EQ(sink.count(), 3u);
  EXPECT_STREQ(sink.last().invariant, "churn.crash-reset-incomplete");
  EXPECT_NE(sink.last().detail.find("neighbor-table"), std::string::npos);
}

// --- end to end -------------------------------------------------------------

// A healthy run reports nothing: with -DMANET_AUDIT=ON every engine hook is
// live and must stay silent; with auditing off the hooks compile away and
// silence is trivial. Either way the golden scenario must not trip the sink.
TEST(AuditEndToEnd, SeedScenarioRunsWithoutViolations) {
  ScopedCountingSink sink;
  resetViolationCount();
  {
    experiment::ScenarioConfig c;
    c.numHosts = 20;
    c.numBroadcasts = 10;
    c.seed = 42;
    experiment::World w(c);
    w.run();
  }  // world teardown runs the channel ledger check under MANET_AUDIT
  EXPECT_EQ(sink.count(), 0u);
  EXPECT_EQ(violationCount(), 0u);
}

TEST(AuditEndToEnd, ChurnScenarioRunsWithoutViolations) {
  ScopedCountingSink sink;
  {
    experiment::ScenarioConfig c;
    c.numHosts = 20;
    c.numBroadcasts = 10;
    c.seed = 7;
    c.fault.churn = true;
    c.fault.churnFraction = 0.4;
    experiment::World w(c);
    w.run();
  }
  EXPECT_EQ(sink.count(), 0u);
}

}  // namespace
}  // namespace manet::audit
