// Sharded execution (DESIGN.md §15): strip topology, the conservative
// lookahead bound, mailbox ordering, the coordinator's window protocol and
// worker pool, and the headline guarantee — byte-identical simulation state
// for every shard count, straight or checkpoint-split.
#include "sim/shard/coordinator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "ckpt/image.hpp"
#include "ckpt/state_access.hpp"
#include "experiment/runner.hpp"
#include "experiment/world.hpp"
#include "obs/metrics.hpp"
#include "phy/params.hpp"
#include "sim/scheduler.hpp"
#include "sim/shard/mailbox.hpp"
#include "sim/shard/topology.hpp"

namespace manet::sim::shard {
namespace {

using experiment::ScenarioConfig;
using experiment::SchemeSpec;
using experiment::World;

/// Scoped environment override (POSIX setenv/unsetenv).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    ::setenv(name, value, /*overwrite=*/1);
  }
  ~ScopedEnv() { ::unsetenv(name_); }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  const char* name_;
};

Rng testRng() { return Rng(7).fork(0x5A4D); }

// ------------------------------------------------------------- topology

TEST(ShardTopology, PartitionsTheMapIntoEqualStrips) {
  const Topology topo(4, 2000.0, 500.0);
  EXPECT_EQ(topo.shardCount(), 4);
  EXPECT_DOUBLE_EQ(topo.stripWidthMeters(), 500.0);
  EXPECT_EQ(topo.shardOf(0.0), ShardId{0});
  EXPECT_EQ(topo.shardOf(499.9), ShardId{0});
  EXPECT_EQ(topo.shardOf(500.0), ShardId{1});  // boundary goes right
  EXPECT_EQ(topo.shardOf(1999.0), ShardId{3});
  EXPECT_EQ(topo.shardOf(2000.0), ShardId{3});  // map edge clamps
  EXPECT_EQ(topo.shardOf(-0.0), ShardId{0});
}

TEST(ShardTopology, ClampsRequestsToTheRadioRadius) {
  // A strip narrower than the radius would let a transmission skip over a
  // whole shard; requests clamp to floor(width / radius).
  EXPECT_EQ(Topology(8, 2500.0, 500.0).shardCount(), 5);
  EXPECT_EQ(Topology(3, 1000.0, 500.0).shardCount(), 2);
  EXPECT_EQ(Topology(4, 400.0, 500.0).shardCount(), 1);  // 1x1-ish map
  EXPECT_EQ(Topology(1, 5500.0, 500.0).shardCount(), 1);
}

TEST(ShardTopology, AdjacencyIsStripDistanceAtMostOne) {
  const Topology topo(4, 2000.0, 500.0);
  EXPECT_TRUE(topo.adjacent(ShardId{1}, ShardId{2}));
  EXPECT_TRUE(topo.adjacent(ShardId{2}, ShardId{1}));
  EXPECT_TRUE(topo.adjacent(ShardId{3}, ShardId{3}));
  EXPECT_FALSE(topo.adjacent(ShardId{0}, ShardId{2}));
}

// ------------------------------------------------------------ lookahead

TEST(ShardLookahead, IsZeroPropagationPlusShortestAirtime) {
  const phy::PhyParams params;
  EXPECT_EQ(params.minInteractionDelay(),
            params.plcpPreamble + params.plcpHeader);
  EXPECT_EQ(params.minInteractionDelay(), params.frameAirtime(0));
  // The bound must dominate the carrier-sense crossing (DESIGN.md §15
  // explains why the commit loop stays serial because of it).
  EXPECT_GT(params.minInteractionDelay(), params.carrierSenseDelay);
}

// -------------------------------------------------------------- mailbox

TEST(ShardMailbox, DrainsInAtSeqFromOrderAndResets) {
  Mailbox box;
  const TimePoint t0 = kTimeZero;
  box.post(t0 + Duration{50}, ShardId{2}, ShardId{1}, 4);  // seq 0
  box.post(t0 + Duration{10}, ShardId{0}, ShardId{1}, 1);  // seq 1
  box.post(t0 + Duration{10}, ShardId{1}, ShardId{0}, 2);  // seq 2
  EXPECT_EQ(box.pendingCount(), 3u);

  std::vector<CrossMsg> out;
  box.drain(out);
  ASSERT_EQ(out.size(), 3u);
  // Same `at` resolves by commit-order seq; earlier `at` wins outright.
  EXPECT_EQ(out[0].at, t0 + Duration{10});
  EXPECT_EQ(out[0].from, ShardId{0});
  EXPECT_EQ(out[1].at, t0 + Duration{10});
  EXPECT_EQ(out[1].from, ShardId{1});
  EXPECT_EQ(out[2].at, t0 + Duration{50});
  EXPECT_EQ(out[2].copies, 4u);
  EXPECT_EQ(box.pendingCount(), 0u);

  // seq restarts per window, so the next window's order is self-contained.
  box.post(t0 + Duration{99}, ShardId{0}, ShardId{1}, 1);
  std::vector<CrossMsg> next;
  box.drain(next);
  ASSERT_EQ(next.size(), 1u);
  EXPECT_EQ(next[0].seq, 0u);
}

// ---------------------------------------------------------- coordinator

TEST(ShardCoordinator, WindowEndsAtLookaheadOrHorizon) {
  const Topology topo(2, 1000.0, 500.0);
  Coordinator coord(topo, Duration{192}, testRng());
  const TimePoint horizon = kTimeZero + Duration{1000};

  EXPECT_EQ(coord.beginWindow(kTimeZero, horizon), kTimeZero + Duration{192});
  coord.endWindow();
  // The last slice is cut short by the horizon.
  EXPECT_EQ(coord.beginWindow(kTimeZero + Duration{960}, horizon), horizon);
  coord.endWindow();
  EXPECT_EQ(coord.stats().windows, 2u);
}

TEST(ShardCoordinator, BarrierAccountsExchangedMessages) {
  const Topology topo(2, 1000.0, 500.0);
  Coordinator coord(topo, Duration{192}, testRng());
  coord.beginWindow(kTimeZero, kTimeZero + Duration{192});
  coord.postCross(kTimeZero + Duration{100}, ShardId{0}, ShardId{1}, 3);
  coord.postCross(kTimeZero + Duration{20}, ShardId{1}, ShardId{0}, 1);
  coord.endWindow();

  EXPECT_EQ(coord.stats().windows, 1u);
  EXPECT_EQ(coord.stats().barrierEvents, 2u);
  EXPECT_EQ(coord.stats().crossCopies, 4u);
  ASSERT_EQ(coord.lastExchange().size(), 2u);
  EXPECT_EQ(coord.lastExchange()[0].at, kTimeZero + Duration{20});
}

TEST(ShardCoordinator, ShardRngStreamsAreDistinct) {
  const Topology topo(4, 2000.0, 500.0);
  Coordinator coord(topo, Duration{192}, testRng());
  const double a = coord.shardRng(ShardId{0}).uniform();
  const double b = coord.shardRng(ShardId{1}).uniform();
  EXPECT_NE(a, b);
}

TEST(ShardCoordinator, RangeExecutorPartitionIsContiguousAndComplete) {
  // Force a real worker pool even on a single-core host.
  ScopedEnv lanes("MANET_SHARD_LANES", "3");
  const Topology topo(4, 2000.0, 500.0);
  Coordinator coord(topo, Duration{192}, testRng());
  EXPECT_EQ(coord.lanes(), 3);

  std::mutex mutex;
  std::vector<std::tuple<int, std::size_t, std::size_t>> chunks;
  coord.run(10, [&](int lane, std::size_t begin, std::size_t end) {
    std::lock_guard<std::mutex> lock(mutex);
    chunks.emplace_back(lane, begin, end);
  });
  ASSERT_EQ(chunks.size(), 3u);
  std::sort(chunks.begin(), chunks.end());
  std::size_t covered = 0;
  for (int lane = 0; lane < 3; ++lane) {
    EXPECT_EQ(std::get<0>(chunks[lane]), lane);
    EXPECT_EQ(std::get<1>(chunks[lane]), covered);  // contiguous, in order
    covered = std::get<2>(chunks[lane]);
  }
  EXPECT_EQ(covered, 10u);
}

// ------------------------------------------------- window-boundary clock

/// An event landing exactly on a window barrier must fire in the window it
/// closes (runUntil is inclusive), and the windowed clock must replay the
/// exact event sequence of a straight run.
TEST(ShardWindows, EventsOnTheBarrierMatchAStraightRun) {
  const Duration lookahead{192};
  const TimePoint horizon = kTimeZero + Duration{1000};
  const std::vector<Duration> offsets = {
      Duration{0},   Duration{191}, Duration{192},  // exactly on barrier 1
      Duration{193}, Duration{384},                 // exactly on barrier 2
      Duration{575}, Duration{1000},                // exactly on the horizon
  };

  auto record = [&](Scheduler& s, std::vector<TimePoint>& log) {
    for (const Duration& offset : offsets) {
      s.schedule(kTimeZero + offset, [&log, &s] { log.push_back(s.now()); });
    }
  };

  Scheduler straight;
  std::vector<TimePoint> straightLog;
  record(straight, straightLog);
  straight.runUntil(horizon);

  Scheduler windowed;
  std::vector<TimePoint> windowedLog;
  record(windowed, windowedLog);
  const Topology topo(2, 1000.0, 500.0);
  Coordinator coord(topo, lookahead, testRng());
  TimePoint cursor = kTimeZero;
  while (cursor < horizon) {
    const TimePoint windowEnd = coord.beginWindow(cursor, horizon);
    windowed.runUntil(windowEnd);
    coord.endWindow();
    cursor = windowEnd;
  }

  EXPECT_EQ(windowedLog, straightLog);
  EXPECT_EQ(windowed.now(), straight.now());
  EXPECT_EQ(coord.stats().windows, 6u);  // ceil(1000 / 192)
}

// ------------------------------------------- cross-shard TX equivalence

TEST(ShardWorld, CrossShardTransmissionsAreCountedAndDeliveredIdentically) {
  ScenarioConfig config;
  config.mapUnits = 2;  // 1000 m across: two 500 m strips
  config.fixedPositions = {{450.0, 500.0}, {550.0, 500.0}};
  config.scheme = SchemeSpec::flooding();
  config.numBroadcasts = 2;
  config.seed = 11;

  obs::forceCollection(true);
  config.shards = 1;
  const experiment::RunResult serial = experiment::runScenario(config);
  config.shards = 2;
  const experiment::RunResult sharded = experiment::runScenario(config);
  obs::forceCollection(false);

  // The hosts sit 100 m apart straddling the strip boundary, so every
  // transmission is a cross-shard delivery for the sharded run...
  ASSERT_NE(sharded.metrics, nullptr);
  EXPECT_GT(sharded.metrics->counter(obs::Counter::kShardCrossMsgs), 0u);
  EXPECT_GT(sharded.metrics->counter(obs::Counter::kShardWindows), 0u);
  ASSERT_NE(serial.metrics, nullptr);
  EXPECT_EQ(serial.metrics->counter(obs::Counter::kShardCrossMsgs), 0u);

  // ...and the simulation outcome is bit-identical anyway.
  EXPECT_EQ(sharded.re(), serial.re());
  EXPECT_EQ(sharded.framesTransmitted, serial.framesTransmitted);
  EXPECT_EQ(sharded.framesDelivered, serial.framesDelivered);
  EXPECT_EQ(sharded.framesCorrupted, serial.framesCorrupted);
  EXPECT_EQ(sharded.summary.broadcasts, serial.summary.broadcasts);
}

// -------------------------------------------------- byte-identity sweep

/// Fully-featured scenario, large enough (>= 256 hosts) to drive the
/// parallel grid-rebuild and BFS phases once MANET_SHARD_LANES forces a
/// pool on a single-core runner.
ScenarioConfig denseConfig() {
  ScenarioConfig config;
  config.mapUnits = 4;
  config.numHosts = 300;
  config.numBroadcasts = 3;
  config.scheme = SchemeSpec::adaptiveCounter();
  config.fault.loss = fault::FaultConfig::Loss::kGilbertElliott;
  config.fault.churn = true;
  config.fault.churnFraction = 0.2;
  config.seed = 42;
  return config;
}

TEST(ShardWorld, WorldStateIsByteIdenticalForEveryShardCount) {
  ScopedEnv lanes("MANET_SHARD_LANES", "4");
  ScenarioConfig config = denseConfig();

  config.shards = 1;
  World serial(config);
  serial.run();
  EXPECT_EQ(serial.shardCoordinator(), nullptr);
  const ckpt::WorldImage reference = ckpt::StateAccess::captureWorld(serial);

  for (int shards : {2, 4}) {
    config.shards = shards;
    World sharded(config);
    ASSERT_NE(sharded.shardCoordinator(), nullptr);
    EXPECT_EQ(sharded.shardCoordinator()->topology().shardCount(), shards);
    sharded.run();
    const auto diffs = ckpt::diffWorldImages(
        ckpt::StateAccess::captureWorld(sharded), reference);
    EXPECT_TRUE(diffs.empty())
        << "shards=" << shards << ": " << diffs.size()
        << " subsystem(s) diverged, e.g. " << diffs.front();
  }
}

TEST(ShardWorld, EnvironmentDefaultSelectsShardCount) {
  ScopedEnv env("MANET_SHARDS", "2");
  ScenarioConfig config = denseConfig();
  config.numHosts = 20;  // construction-only check, keep it cheap
  config.numBroadcasts = 0;
  ASSERT_EQ(config.shards, 0);  // auto: defer to the environment
  World world(config);
  ASSERT_NE(world.shardCoordinator(), nullptr);
  EXPECT_EQ(world.shardCoordinator()->topology().shardCount(), 2);
}

TEST(ShardWorld, OversizedRequestClampsToTheMap) {
  ScenarioConfig config = denseConfig();
  config.numHosts = 20;
  config.numBroadcasts = 0;
  config.shards = 64;  // 4x4 map supports at most 4 strips
  World world(config);
  ASSERT_NE(world.shardCoordinator(), nullptr);
  EXPECT_EQ(world.shardCoordinator()->topology().shardCount(), 4);
}

// --------------------------------------------------- checkpoint interop

TEST(ShardCkpt, SplitAndResumedShardedRunsMatchStraight) {
  ScenarioConfig config = denseConfig();
  config.numHosts = 60;  // windows x checkpoint interplay, not bulk
  config.numBroadcasts = 8;
  config.shards = 2;

  World straight(config);
  straight.run();
  const ckpt::WorldImage reference =
      ckpt::StateAccess::captureWorld(straight);

  // Split run: the checkpoint anchor lands mid-window, so the window loop
  // re-phases at the anchor — simulation state must not notice.
  World split(config);
  split.beginRun();
  const TimePoint anchor =
      kTimeZero + scaleTrunc(split.horizonTime() - kTimeZero, 0.5);
  split.continueUntil(anchor);
  const auto blob = ckpt::capture(split);
  split.runToEnd();
  EXPECT_TRUE(
      ckpt::diffWorldImages(ckpt::StateAccess::captureWorld(split), reference)
          .empty());

  // Resume from the blob (replays to the anchor and verifies) and run the
  // tail under the same shard mode.
  ckpt::Resumed resumed = ckpt::resume(blob);
  ASSERT_NE(resumed.world, nullptr);
  resumed.world->runToEnd();
  EXPECT_TRUE(ckpt::diffWorldImages(
                  ckpt::StateAccess::captureWorld(*resumed.world), reference)
                  .empty());
}

TEST(ShardCkpt, CapturedImagesAreShardModeAgnosticWithMetricsOn) {
  // engine.shard.* counters are execution-phasing accounting; captures must
  // zero them so images compare equal across execution modes even with a
  // live obs registry (DESIGN.md §15).
  ScenarioConfig config = denseConfig();
  config.numHosts = 60;
  config.numBroadcasts = 8;

  config.shards = 1;
  std::vector<std::uint8_t> serialBlob;
  {
    obs::Registry registry;
    obs::ScopedRegistry scoped(&registry);
    World world(config);
    world.run();
    serialBlob = ckpt::capture(world);
    EXPECT_EQ(registry.counter(obs::Counter::kShardWindows), 0u);
  }
  config.shards = 2;
  std::vector<std::uint8_t> shardedBlob;
  {
    obs::Registry registry;
    obs::ScopedRegistry scoped(&registry);
    World world(config);
    world.run();
    shardedBlob = ckpt::capture(world);
    // The sharded run really did count windows — the capture zeroes them.
    EXPECT_GT(registry.counter(obs::Counter::kShardWindows), 0u);
  }
  EXPECT_EQ(serialBlob, shardedBlob);
}

}  // namespace
}  // namespace manet::sim::shard
