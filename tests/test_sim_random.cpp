#include "sim/random.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace manet::sim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ZeroSeedIsUsable) {
  Rng r(0);
  std::set<std::uint64_t> values;
  for (int i = 0; i < 50; ++i) values.insert(r.next());
  EXPECT_GT(values.size(), 45u);  // not stuck
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsOneHalf) {
  Rng r(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(13);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng r(17);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(r.uniformInt(0, 9));
  EXPECT_EQ(seen.size(), 10u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 9);
}

TEST(Rng, UniformIntSingletonRange) {
  Rng r(19);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.uniformInt(5, 5), 5);
}

TEST(Rng, UniformIntNegativeRange) {
  Rng r(23);
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniformInt(-10, -1);
    EXPECT_GE(v, -10);
    EXPECT_LE(v, -1);
  }
}

TEST(Rng, UniformIntIsApproximatelyUniform) {
  Rng r(29);
  std::vector<int> histogram(8, 0);
  const int n = 80000;
  for (int i = 0; i < n; ++i) ++histogram[static_cast<size_t>(r.uniformInt(0, 7))];
  for (int count : histogram) {
    EXPECT_NEAR(count, n / 8, n / 8 * 0.1);
  }
}

TEST(Rng, BernoulliEdgeCases) {
  Rng r(31);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng r(37);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ForkedStreamsAreIndependentAndReproducible) {
  Rng parent(42);
  Rng a = parent.fork(1);
  Rng b = parent.fork(2);
  Rng a2 = parent.fork(1);
  int equalAb = 0;
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t va = a.next();
    EXPECT_EQ(va, a2.next());  // same stream id -> same sequence
    if (va == b.next()) ++equalAb;
  }
  EXPECT_LT(equalAb, 3);
}

TEST(Rng, ForkDoesNotPerturbParent) {
  Rng a(99);
  Rng b(99);
  (void)a.fork(1);
  (void)a.fork(2);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, UniformDurationWithinBounds) {
  Rng r(43);
  for (int i = 0; i < 1000; ++i) {
    const Duration t = r.uniformDuration(Duration{}, 2 * kSecond);
    EXPECT_GE(t, Duration{});
    EXPECT_LE(t, 2 * kSecond);
  }
}

TEST(Rng, CopiesEvolveIndependently) {
  Rng a(5);
  Rng b = a;  // value semantics
  EXPECT_EQ(a.next(), b.next());
  (void)a.next();
  // b is now one draw behind a; sequences differ at the same call index but
  // remain individually deterministic.
  Rng c(5);
  (void)c.next();
  (void)c.next();
  EXPECT_EQ(a.next(), c.next());
}

TEST(SplitMix, KnownGoldenValues) {
  // Reference values from the public-domain splitmix64 implementation.
  std::uint64_t state = 0;
  const std::uint64_t v1 = splitmix64(state);
  const std::uint64_t v2 = splitmix64(state);
  EXPECT_EQ(v1, 0xE220A8397B1DCDAFULL);
  EXPECT_EQ(v2, 0x6E789E6AA1B965F4ULL);
}

}  // namespace
}  // namespace manet::sim
