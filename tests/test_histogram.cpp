#include "stats/histogram.hpp"

#include <gtest/gtest.h>

#include "experiment/runner.hpp"
#include "experiment/world.hpp"

namespace manet::stats {
namespace {

TEST(QuantileEstimator, EmptyReturnsZero) {
  QuantileEstimator q;
  EXPECT_DOUBLE_EQ(q.quantile(0.5), 0.0);
  EXPECT_EQ(q.count(), 0u);
}

TEST(QuantileEstimator, SingleSample) {
  QuantileEstimator q;
  q.add(7.5);
  EXPECT_DOUBLE_EQ(q.quantile(0.0), 7.5);
  EXPECT_DOUBLE_EQ(q.median(), 7.5);
  EXPECT_DOUBLE_EQ(q.quantile(1.0), 7.5);
}

TEST(QuantileEstimator, ExactQuantilesOnSmallSets) {
  QuantileEstimator q;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) q.add(v);
  EXPECT_DOUBLE_EQ(q.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(q.median(), 3.0);
  EXPECT_DOUBLE_EQ(q.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(q.quantile(0.25), 2.0);
}

TEST(QuantileEstimator, InterpolatesBetweenOrderStatistics) {
  QuantileEstimator q;
  q.add(0.0);
  q.add(10.0);
  EXPECT_DOUBLE_EQ(q.median(), 5.0);
  EXPECT_DOUBLE_EQ(q.quantile(0.9), 9.0);
}

TEST(QuantileEstimator, InsertionOrderIrrelevant) {
  QuantileEstimator a;
  QuantileEstimator b;
  for (int i = 0; i < 100; ++i) a.add(i);
  for (int i = 99; i >= 0; --i) b.add(i);
  EXPECT_DOUBLE_EQ(a.median(), b.median());
  EXPECT_DOUBLE_EQ(a.p95(), b.p95());
}

TEST(QuantileEstimator, ReservoirApproximatesLargeStream) {
  QuantileEstimator q(512, 7);
  // Uniform 0..9999: median ~5000, p95 ~9500.
  sim::Rng rng(13);
  for (int i = 0; i < 100000; ++i) q.add(rng.uniform(0.0, 10000.0));
  EXPECT_EQ(q.count(), 100000u);
  EXPECT_NEAR(q.median(), 5000.0, 600.0);
  EXPECT_NEAR(q.p95(), 9500.0, 400.0);
}

TEST(QuantileEstimator, QueryDoesNotDisturbStream) {
  QuantileEstimator q;
  q.add(3.0);
  q.add(1.0);
  (void)q.median();  // triggers the sort
  q.add(2.0);
  EXPECT_DOUBLE_EQ(q.median(), 2.0);
}

TEST(QuantileEstimatorDeath, RejectsBadArguments) {
  EXPECT_DEATH(QuantileEstimator(0), "Precondition");
  QuantileEstimator q;
  q.add(1.0);
  EXPECT_DEATH((void)q.quantile(1.5), "Precondition");
  EXPECT_DEATH((void)q.quantile(-0.1), "Precondition");
}

// ------------------------------- hop counting through the full stack

TEST(HopTracking, MetricsAccumulateHops) {
  MetricsCollector m(8);
  const net::BroadcastId bid{net::HostId{0}, net::BroadcastSeq{0}};
  m.onBroadcastStart(bid, net::HostId{0}, sim::TimePoint{0}, 5);
  m.onDelivered(bid, net::HostId{1}, sim::TimePoint{10}, 1);
  m.onDelivered(bid, net::HostId{2}, sim::TimePoint{20}, 2);
  m.onDelivered(bid, net::HostId{3}, sim::TimePoint{30}, 3);
  const auto& pb = m.broadcasts().at(0);
  EXPECT_DOUBLE_EQ(pb.meanHops(), 2.0);
  EXPECT_EQ(pb.maxHops, 3);
}

TEST(HopTracking, ChainTopologyCountsHopsExactly) {
  experiment::ScenarioConfig c;
  c.fixedPositions = {{0, 0}, {400, 0}, {800, 0}, {1200, 0}};
  c.scheme = experiment::SchemeSpec::flooding();
  c.mapUnits = 11;
  c.numBroadcasts = 0;
  c.seed = 3;
  experiment::World w(c);
  w.host(net::HostId{0}).originateBroadcast();
  w.scheduler().runUntil(sim::kTimeZero + 1 * sim::kSecond);
  const auto& pb = w.metrics().broadcasts().at(0);
  EXPECT_EQ(pb.received, 3);
  // Hops: host1 = 1, host2 = 2, host3 = 3.
  EXPECT_DOUBLE_EQ(pb.meanHops(), 2.0);
  EXPECT_EQ(pb.maxHops, 3);
}

TEST(HopTracking, SummaryExposesLatencyPercentilesAndHops) {
  experiment::ScenarioConfig c;
  c.mapUnits = 5;
  c.numHosts = 40;
  c.numBroadcasts = 12;
  c.scheme = experiment::SchemeSpec::flooding();
  c.seed = 9;
  const auto r = experiment::runScenario(c);
  EXPECT_GT(r.summary.meanHops, 1.0);
  EXPECT_GT(r.summary.latencyP50Seconds, 0.0);
  EXPECT_GE(r.summary.latencyP95Seconds, r.summary.latencyP50Seconds);
}

}  // namespace
}  // namespace manet::stats
