// End-to-end runs of full scenarios: determinism, workload accounting,
// scheme-level behaviour on the paper's maps (scaled down).
#include <gtest/gtest.h>

#include "experiment/bench_util.hpp"
#include "experiment/runner.hpp"
#include "experiment/world.hpp"
#include "stats/connectivity.hpp"

namespace manet::experiment {
namespace {

ScenarioConfig smallScenario(int mapUnits, SchemeSpec scheme,
                             int broadcasts = 20) {
  ScenarioConfig c;
  c.mapUnits = mapUnits;
  c.numHosts = 60;
  c.numBroadcasts = broadcasts;
  c.scheme = std::move(scheme);
  c.seed = 11;
  return c;
}

TEST(Integration, RunProducesOneRecordPerRequest) {
  const RunResult r = runScenario(smallScenario(5, SchemeSpec::flooding(), 15));
  EXPECT_EQ(r.summary.broadcasts, 15u);
}

TEST(Integration, SameSeedSameResult) {
  const ScenarioConfig c = smallScenario(5, SchemeSpec::adaptiveCounter(), 10);
  const RunResult a = runScenario(c);
  const RunResult b = runScenario(c);
  EXPECT_DOUBLE_EQ(a.re(), b.re());
  EXPECT_DOUBLE_EQ(a.srb(), b.srb());
  EXPECT_DOUBLE_EQ(a.latency(), b.latency());
  EXPECT_EQ(a.framesTransmitted, b.framesTransmitted);
}

TEST(Integration, DifferentSeedsDiffer) {
  ScenarioConfig c = smallScenario(5, SchemeSpec::flooding(), 10);
  const RunResult a = runScenario(c);
  c.seed = 12;
  const RunResult b = runScenario(c);
  EXPECT_NE(a.framesTransmitted, b.framesTransmitted);
}

TEST(Integration, FloodingOnDenseConnectedMapReachesAlmostEveryone) {
  const RunResult r = runScenario(smallScenario(1, SchemeSpec::flooding(), 15));
  EXPECT_GT(r.re(), 0.95);
  EXPECT_DOUBLE_EQ(r.srb(), 0.0);  // flooding never saves anything
}

TEST(Integration, CounterTwoSavesALotOnDenseMap) {
  const RunResult r = runScenario(smallScenario(1, SchemeSpec::counter(2), 15));
  EXPECT_GT(r.srb(), 0.7);
  EXPECT_GT(r.re(), 0.9);
}

TEST(Integration, CounterTwoLosesReachabilityOnSparseMap) {
  // The dilemma the paper's adaptive schemes resolve: small C hurts RE when
  // the network is sparse.
  const RunResult c2 =
      runScenario(smallScenario(11, SchemeSpec::counter(2), 30));
  const RunResult c6 =
      runScenario(smallScenario(11, SchemeSpec::counter(6), 30));
  EXPECT_LT(c2.re(), c6.re());
}

TEST(Integration, AdaptiveCounterBeatsFixedSmallThresholdOnSparseMap) {
  const RunResult ac =
      runScenario(smallScenario(9, SchemeSpec::adaptiveCounter(), 30));
  const RunResult c2 =
      runScenario(smallScenario(9, SchemeSpec::counter(2), 30));
  EXPECT_GT(ac.re(), c2.re());
}

TEST(Integration, AdaptiveCounterSavesMoreThanLargeFixedOnDenseMap) {
  const RunResult ac =
      runScenario(smallScenario(1, SchemeSpec::adaptiveCounter(), 15));
  const RunResult c6 =
      runScenario(smallScenario(1, SchemeSpec::counter(6), 15));
  EXPECT_GT(ac.srb(), c6.srb());
}

TEST(Integration, ProbabilisticHalvesRebroadcasts) {
  const RunResult r =
      runScenario(smallScenario(5, SchemeSpec::probabilistic(0.5), 20));
  EXPECT_NEAR(r.srb(), 0.5, 0.1);
}

TEST(Integration, CollisionAblationImprovesFloodingOnDenseMap) {
  // §4.4: "The main reason for a lot of hosts missing the broadcast message
  // is collision." With a perfect PHY, flooding reaches everyone.
  ScenarioConfig with = smallScenario(1, SchemeSpec::flooding(), 15);
  with.numHosts = 80;
  ScenarioConfig without = with;
  without.collisions = false;
  const RunResult rWith = runScenario(with);
  const RunResult rWithout = runScenario(without);
  EXPECT_GE(rWithout.re(), rWith.re());
  EXPECT_GT(rWithout.re(), 0.999);
}

TEST(Integration, HelloTrafficCountedOnlyWhenEnabled) {
  ScenarioConfig oracle = smallScenario(5, SchemeSpec::adaptiveCounter(), 5);
  EXPECT_EQ(runScenario(oracle).summary.hellosSent, 0u);

  ScenarioConfig hello = smallScenario(5, SchemeSpec::neighborCoverage(), 5);
  hello.neighborSource = NeighborSource::kHello;
  const RunResult r = runScenario(hello);
  EXPECT_GT(r.summary.hellosSent, 0u);
  EXPECT_GT(r.hellosPerHostPerSecond, 0.0);
}

TEST(Integration, DynamicHelloIntervalSendsFewerHellosWhenStatic) {
  // Stationary hosts => nv ~ 0 => interval ~ hi_max, so the dynamic agent
  // beacons far less than a fixed hi_min-interval agent once the initial
  // table-convergence churn (which legitimately counts as variation) ends.
  ScenarioConfig fixed = smallScenario(3, SchemeSpec::neighborCoverage(), 40);
  fixed.neighborSource = NeighborSource::kHello;
  fixed.maxSpeedKmh = 0.0;
  fixed.hello.interval = 1 * sim::kSecond;

  ScenarioConfig dynamic = fixed;
  dynamic.hello.dynamic = true;

  const RunResult rFixed = runScenario(fixed);
  const RunResult rDynamic = runScenario(dynamic);
  EXPECT_LT(rDynamic.hellosPerHostPerSecond,
            rFixed.hellosPerHostPerSecond / 2.0);
}

TEST(Integration, DynamicHelloKeepsReachabilityUnderMobility) {
  ScenarioConfig c = smallScenario(5, SchemeSpec::neighborCoverage(), 25);
  c.neighborSource = NeighborSource::kHello;
  c.maxSpeedKmh = 60.0;
  c.hello.dynamic = true;
  const RunResult r = runScenario(c);
  EXPECT_GT(r.re(), 0.8);
}

TEST(Integration, StaleHelloTablesHurtNeighborCoverage) {
  // Fig. 11's message: long hello intervals + fast hosts => lower RE.
  ScenarioConfig fresh = smallScenario(9, SchemeSpec::neighborCoverage(), 25);
  fresh.neighborSource = NeighborSource::kHello;
  fresh.maxSpeedKmh = 80.0;
  fresh.hello.interval = 1 * sim::kSecond;

  ScenarioConfig stale = fresh;
  stale.hello.interval = 30 * sim::kSecond;

  const RunResult rFresh = runScenario(fresh);
  const RunResult rStale = runScenario(stale);
  EXPECT_GT(rFresh.re(), rStale.re());
}

TEST(Integration, AveragedRunsPoolAcrossSeeds) {
  const ScenarioConfig c = smallScenario(5, SchemeSpec::flooding(), 8);
  const RunResult r = runScenarioAveraged(c, 3);
  EXPECT_EQ(r.summary.broadcasts, 24u);
  EXPECT_GT(r.re(), 0.5);
}

TEST(Integration, ResolvedConfigAppliesPaperSpeedRule) {
  ScenarioConfig c;
  c.mapUnits = 7;
  EXPECT_DOUBLE_EQ(c.resolved().maxSpeedKmh, 70.0);
  c.maxSpeedKmh = 25.0;
  EXPECT_DOUBLE_EQ(c.resolved().maxSpeedKmh, 25.0);
}

TEST(Integration, ResolvedConfigEnablesHelloForNcUnderHelloSource) {
  ScenarioConfig c;
  c.scheme = SchemeSpec::neighborCoverage();
  c.neighborSource = NeighborSource::kHello;
  c.hello.enabled = false;
  const ScenarioConfig r = c.resolved();
  EXPECT_TRUE(r.hello.enabled);
  EXPECT_TRUE(r.hello.piggybackNeighbors);
  EXPECT_GT(r.warmup, 2 * sim::kSecond);
}

TEST(Integration, BenchScaleReadsEnvironment) {
  // Without env vars set, defaults flow through.
  const BenchScale s = benchScale(33, 2, 50);
  EXPECT_GE(s.broadcasts, 1);
  EXPECT_GE(s.repetitions, 1);
  EXPECT_GE(s.numHosts, 1);
  ScenarioConfig c;
  applyScale(c, s);
  EXPECT_EQ(c.numBroadcasts, s.broadcasts);
  EXPECT_EQ(c.numHosts, s.numHosts);
}

TEST(Integration, PaperMapSizes) {
  EXPECT_EQ(paperMapSizes(), (std::vector<int>{1, 3, 5, 7, 9, 11}));
}

}  // namespace
}  // namespace manet::experiment
