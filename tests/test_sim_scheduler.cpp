#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "sim/inline_fn.hpp"
#include "sim/time.hpp"

namespace manet::sim {
namespace {

TEST(Scheduler, StartsAtTimeZero) {
  Scheduler s;
  EXPECT_EQ(s.now(), TimePoint{0});
  EXPECT_EQ(s.pendingCount(), 0u);
}

TEST(Scheduler, RunsEventsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule(TimePoint{30}, [&] { order.push_back(3); });
  s.schedule(TimePoint{10}, [&] { order.push_back(1); });
  s.schedule(TimePoint{20}, [&] { order.push_back(2); });
  s.runAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), TimePoint{30});
}

TEST(Scheduler, EqualTimesRunFifo) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    s.schedule(TimePoint{5}, [&order, i] { order.push_back(i); });
  }
  s.runAll();
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Scheduler, NowAdvancesToEventTime) {
  Scheduler s;
  TimePoint seen = kNever;
  s.schedule(TimePoint{42}, [&] { seen = s.now(); });
  s.runAll();
  EXPECT_EQ(seen, TimePoint{42});
}

TEST(Scheduler, ScheduleAfterUsesCurrentTime) {
  Scheduler s;
  TimePoint seen = kNever;
  s.schedule(TimePoint{100}, [&] {
    s.scheduleAfter(Duration{50}, [&] { seen = s.now(); });
  });
  s.runAll();
  EXPECT_EQ(seen, TimePoint{150});
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler s;
  bool fired = false;
  auto h = s.schedule(TimePoint{10}, [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  s.runAll();
  EXPECT_FALSE(fired);
}

TEST(Scheduler, CancelIsIdempotent) {
  Scheduler s;
  auto h = s.schedule(TimePoint{10}, [] {});
  h.cancel();
  h.cancel();
  EXPECT_EQ(s.pendingCount(), 0u);
}

TEST(Scheduler, CancelAfterFireIsHarmless) {
  Scheduler s;
  int count = 0;
  auto h = s.schedule(TimePoint{10}, [&] { ++count; });
  s.runAll();
  h.cancel();
  EXPECT_EQ(count, 1);
}

TEST(Scheduler, DefaultHandleIsInert) {
  Scheduler::Handle h;
  EXPECT_FALSE(h.pending());
  h.cancel();  // must not crash
}

TEST(Scheduler, PendingCountTracksLiveEvents) {
  Scheduler s;
  auto a = s.schedule(TimePoint{10}, [] {});
  auto b = s.schedule(TimePoint{20}, [] {});
  EXPECT_EQ(s.pendingCount(), 2u);
  a.cancel();
  EXPECT_EQ(s.pendingCount(), 1u);
  s.runAll();
  EXPECT_EQ(s.pendingCount(), 0u);
  (void)b;
}

TEST(Scheduler, RunUntilExecutesInclusiveBoundary) {
  Scheduler s;
  int count = 0;
  s.schedule(TimePoint{10}, [&] { ++count; });
  s.schedule(TimePoint{20}, [&] { ++count; });
  s.schedule(TimePoint{21}, [&] { ++count; });
  EXPECT_EQ(s.runUntil(TimePoint{20}), 2u);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(s.now(), TimePoint{20});
  EXPECT_EQ(s.pendingCount(), 1u);
}

TEST(Scheduler, RunUntilAdvancesClockWhenQueueDrains) {
  Scheduler s;
  s.runUntil(TimePoint{500});
  EXPECT_EQ(s.now(), TimePoint{500});
}

TEST(Scheduler, EventsMayScheduleMoreEvents) {
  Scheduler s;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) s.scheduleAfter(Duration{10}, chain);
  };
  s.schedule(TimePoint{0}, chain);
  s.runAll();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(s.now(), TimePoint{40});
}

TEST(Scheduler, CancelFromInsideAnEarlierEvent) {
  Scheduler s;
  bool fired = false;
  auto victim = s.schedule(TimePoint{20}, [&] { fired = true; });
  s.schedule(TimePoint{10}, [&] { victim.cancel(); });
  s.runAll();
  EXPECT_FALSE(fired);
}

TEST(Scheduler, RunOneReturnsFalseWhenEmpty) {
  Scheduler s;
  EXPECT_FALSE(s.runOne());
  auto h = s.schedule(TimePoint{10}, [] {});
  h.cancel();
  EXPECT_FALSE(s.runOne());  // skips the dead event
}

TEST(Scheduler, RunAllHonorsMaxEvents) {
  Scheduler s;
  int count = 0;
  for (int i = 0; i < 10; ++i) s.schedule(TimePoint{i}, [&] { ++count; });
  EXPECT_EQ(s.runAll(3), 3u);
  EXPECT_EQ(count, 3);
}

TEST(SchedulerDeath, RejectsSchedulingInThePast) {
  Scheduler s;
  s.schedule(TimePoint{10}, [] {});
  s.runAll();
  EXPECT_DEATH(s.schedule(TimePoint{5}, [] {}), "Precondition");
}

// --- slot recycling and generation counters (DESIGN.md §11) ---

TEST(Scheduler, StaleHandleOnRecycledSlotIsNoOp) {
  Scheduler s;
  int firstFired = 0;
  int secondFired = 0;
  auto stale = s.schedule(TimePoint{10}, [&] { ++firstFired; });
  s.runAll();  // fires and releases the slot
  // The freed slot is recycled immediately for the next event.
  auto fresh = s.schedule(TimePoint{20}, [&] { ++secondFired; });
  EXPECT_FALSE(stale.pending());
  EXPECT_TRUE(fresh.pending());
  stale.cancel();  // generation mismatch: must not kill the new occupant
  EXPECT_TRUE(fresh.pending());
  s.runAll();
  EXPECT_EQ(firstFired, 1);
  EXPECT_EQ(secondFired, 1);
}

TEST(Scheduler, StaleHandleAfterCancelOnRecycledSlotIsNoOp) {
  Scheduler s;
  bool fired = false;
  auto stale = s.schedule(TimePoint{10}, [] {});
  stale.cancel();  // releases the slot
  auto fresh = s.schedule(TimePoint{10}, [&] { fired = true; });
  stale.cancel();  // stale: slot recycled, generation differs
  EXPECT_FALSE(stale.pending());
  EXPECT_TRUE(fresh.pending());
  s.runAll();
  EXPECT_TRUE(fired);
}

TEST(Scheduler, SlotReuseSurvivesHeavyChurn) {
  // Thousands of schedule/cancel/fire rounds across a handful of slots:
  // every event must fire exactly once, stale handles never interfere.
  Scheduler s;
  int fired = 0;
  std::vector<Scheduler::Handle> old;
  for (int round = 0; round < 1000; ++round) {
    auto keep = s.scheduleAfter(Duration{1}, [&] { ++fired; });
    auto kill = s.scheduleAfter(Duration{2}, [&] { ++fired; });
    kill.cancel();
    for (auto& h : old) h.cancel();  // all stale: no effect
    old.push_back(keep);
    s.runUntil(s.now() + Duration{3});
  }
  EXPECT_EQ(fired, 1000);
  EXPECT_EQ(s.pendingCount(), 0u);
}

TEST(Scheduler, FifoTieOrderSurvivesInterleavedCancels) {
  // Golden tie-order: equal-timestamp events fire in scheduling order even
  // when cancels punch holes in the middle of the tie group (eager heap
  // removal must not disturb the (at, seq) order of the survivors).
  Scheduler s;
  std::vector<int> order;
  std::vector<Scheduler::Handle> handles;
  for (int i = 0; i < 16; ++i) {
    handles.push_back(s.schedule(TimePoint{5}, [&order, i] { order.push_back(i); }));
  }
  for (int i : {1, 2, 5, 7, 11, 13, 14}) {
    handles[static_cast<std::size_t>(i)].cancel();
  }
  s.runAll();
  EXPECT_EQ(order, (std::vector<int>{0, 3, 4, 6, 8, 9, 10, 12, 15}));
}

TEST(Scheduler, TieOrderSpansMixedTimestamps) {
  Scheduler s;
  std::vector<int> order;
  s.schedule(TimePoint{20}, [&] { order.push_back(20); });
  s.schedule(TimePoint{10}, [&] { order.push_back(101); });
  s.schedule(TimePoint{10}, [&] { order.push_back(102); });
  auto h = s.schedule(TimePoint{10}, [&] { order.push_back(103); });
  s.schedule(TimePoint{10}, [&] { order.push_back(104); });
  h.cancel();
  s.schedule(TimePoint{10}, [&] { order.push_back(105); });
  s.runAll();
  EXPECT_EQ(order, (std::vector<int>{101, 102, 104, 105, 20}));
}

TEST(Scheduler, CallbackDestroyedPromptlyOnCancel) {
  // Cancelling must release captured state immediately (not at slot reuse):
  // the MAC parks packets in timer captures and the arena wants them back.
  Scheduler s;
  auto token = std::make_shared<int>(7);
  auto h = s.schedule(TimePoint{10}, [token] { (void)*token; });
  EXPECT_EQ(token.use_count(), 2);
  h.cancel();
  EXPECT_EQ(token.use_count(), 1);
}

TEST(Scheduler, CallbackDestroyedAfterFire) {
  Scheduler s;
  auto token = std::make_shared<int>(7);
  s.schedule(TimePoint{10}, [token] { (void)*token; });
  EXPECT_EQ(token.use_count(), 2);
  s.runAll();
  EXPECT_EQ(token.use_count(), 1);
}

// --- InlineFn small-buffer behaviour ---

TEST(InlineFn, SmallCaptureStoresInline) {
  int x = 0;
  auto small = [&x] { ++x; };
  static_assert(InlineFn::storesInline<decltype(small)>());
  InlineFn fn(small);
  EXPECT_FALSE(fn.heapAllocated());
  fn();
  EXPECT_EQ(x, 1);
}

TEST(InlineFn, OversizedCaptureFallsBackToHeap) {
  std::array<long, 16> big{};  // 128 bytes: over kInlineCapacity
  big[3] = 42;
  long out = 0;
  auto fat = [big, &out] { out = big[3]; };
  static_assert(!InlineFn::storesInline<decltype(fat)>());
  InlineFn fn(std::move(fat));
  EXPECT_TRUE(fn.heapAllocated());
  fn();
  EXPECT_EQ(out, 42);
}

TEST(InlineFn, InlineAndHeapBehaveIdentically) {
  // Differential: the same logic through both storage paths.
  int inlineHits = 0;
  int heapHits = 0;
  std::array<char, InlineFn::kInlineCapacity + 1> pad{};
  InlineFn small([&inlineHits] { ++inlineHits; });
  InlineFn large([&heapHits, pad] {
    ++heapHits;
    (void)pad;
  });
  ASSERT_FALSE(small.heapAllocated());
  ASSERT_TRUE(large.heapAllocated());
  for (int i = 0; i < 3; ++i) {
    small();
    large();
  }
  EXPECT_EQ(inlineHits, 3);
  EXPECT_EQ(heapHits, 3);
}

TEST(InlineFn, MovePreservesCallableBothPaths) {
  int hits = 0;
  std::array<char, 64> pad{};
  InlineFn small([&hits] { ++hits; });
  InlineFn large([&hits, pad] {
    ++hits;
    (void)pad;
  });
  InlineFn small2(std::move(small));
  InlineFn large2(std::move(large));
  EXPECT_FALSE(static_cast<bool>(small));  // NOLINT(bugprone-use-after-move)
  EXPECT_FALSE(static_cast<bool>(large));  // NOLINT(bugprone-use-after-move)
  small2();
  large2();
  EXPECT_EQ(hits, 2);
}

TEST(InlineFn, MoveOnlyCapturesWork) {
  // std::function could not hold this capture at all.
  auto owned = std::make_unique<int>(9);
  int out = 0;
  InlineFn fn([p = std::move(owned), &out] { out = *p; });
  fn();
  EXPECT_EQ(out, 9);
}

TEST(InlineFn, ResetReleasesCapturedState) {
  auto token = std::make_shared<int>(1);
  InlineFn fn([token] { (void)*token; });
  EXPECT_EQ(token.use_count(), 2);
  fn.reset();
  EXPECT_EQ(token.use_count(), 1);
  EXPECT_FALSE(static_cast<bool>(fn));
}

TEST(InlineFn, HotPathCapturesFitTheBuffer) {
  // The audit the engine relies on: this + refcounted packet + a size —
  // the largest capture the MAC/PHY/net hot paths schedule — stays inline.
  struct Host;
  [[maybe_unused]] auto macLike = [](Host* self, std::shared_ptr<int> pkt,
                                     std::size_t bytes) {
    return [self, pkt, bytes] { (void)self; (void)bytes; };
  };
  using MacCapture = decltype(macLike(nullptr, nullptr, 0));
  static_assert(InlineFn::storesInline<MacCapture>());
  static_assert(sizeof(MacCapture) <= InlineFn::kInlineCapacity);
}

}  // namespace
}  // namespace manet::sim
