#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/time.hpp"

namespace manet::sim {
namespace {

TEST(Scheduler, StartsAtTimeZero) {
  Scheduler s;
  EXPECT_EQ(s.now(), 0);
  EXPECT_EQ(s.pendingCount(), 0u);
}

TEST(Scheduler, RunsEventsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule(30, [&] { order.push_back(3); });
  s.schedule(10, [&] { order.push_back(1); });
  s.schedule(20, [&] { order.push_back(2); });
  s.runAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30);
}

TEST(Scheduler, EqualTimesRunFifo) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    s.schedule(5, [&order, i] { order.push_back(i); });
  }
  s.runAll();
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Scheduler, NowAdvancesToEventTime) {
  Scheduler s;
  Time seen = -1;
  s.schedule(42, [&] { seen = s.now(); });
  s.runAll();
  EXPECT_EQ(seen, 42);
}

TEST(Scheduler, ScheduleAfterUsesCurrentTime) {
  Scheduler s;
  Time seen = -1;
  s.schedule(100, [&] {
    s.scheduleAfter(50, [&] { seen = s.now(); });
  });
  s.runAll();
  EXPECT_EQ(seen, 150);
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler s;
  bool fired = false;
  auto h = s.schedule(10, [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  s.runAll();
  EXPECT_FALSE(fired);
}

TEST(Scheduler, CancelIsIdempotent) {
  Scheduler s;
  auto h = s.schedule(10, [] {});
  h.cancel();
  h.cancel();
  EXPECT_EQ(s.pendingCount(), 0u);
}

TEST(Scheduler, CancelAfterFireIsHarmless) {
  Scheduler s;
  int count = 0;
  auto h = s.schedule(10, [&] { ++count; });
  s.runAll();
  h.cancel();
  EXPECT_EQ(count, 1);
}

TEST(Scheduler, DefaultHandleIsInert) {
  Scheduler::Handle h;
  EXPECT_FALSE(h.pending());
  h.cancel();  // must not crash
}

TEST(Scheduler, PendingCountTracksLiveEvents) {
  Scheduler s;
  auto a = s.schedule(10, [] {});
  auto b = s.schedule(20, [] {});
  EXPECT_EQ(s.pendingCount(), 2u);
  a.cancel();
  EXPECT_EQ(s.pendingCount(), 1u);
  s.runAll();
  EXPECT_EQ(s.pendingCount(), 0u);
  (void)b;
}

TEST(Scheduler, RunUntilExecutesInclusiveBoundary) {
  Scheduler s;
  int count = 0;
  s.schedule(10, [&] { ++count; });
  s.schedule(20, [&] { ++count; });
  s.schedule(21, [&] { ++count; });
  EXPECT_EQ(s.runUntil(20), 2u);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(s.now(), 20);
  EXPECT_EQ(s.pendingCount(), 1u);
}

TEST(Scheduler, RunUntilAdvancesClockWhenQueueDrains) {
  Scheduler s;
  s.runUntil(500);
  EXPECT_EQ(s.now(), 500);
}

TEST(Scheduler, EventsMayScheduleMoreEvents) {
  Scheduler s;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) s.scheduleAfter(10, chain);
  };
  s.schedule(0, chain);
  s.runAll();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(s.now(), 40);
}

TEST(Scheduler, CancelFromInsideAnEarlierEvent) {
  Scheduler s;
  bool fired = false;
  auto victim = s.schedule(20, [&] { fired = true; });
  s.schedule(10, [&] { victim.cancel(); });
  s.runAll();
  EXPECT_FALSE(fired);
}

TEST(Scheduler, RunOneReturnsFalseWhenEmpty) {
  Scheduler s;
  EXPECT_FALSE(s.runOne());
  auto h = s.schedule(10, [] {});
  h.cancel();
  EXPECT_FALSE(s.runOne());  // skips the dead event
}

TEST(Scheduler, RunAllHonorsMaxEvents) {
  Scheduler s;
  int count = 0;
  for (int i = 0; i < 10; ++i) s.schedule(i, [&] { ++count; });
  EXPECT_EQ(s.runAll(3), 3u);
  EXPECT_EQ(count, 3);
}

TEST(SchedulerDeath, RejectsSchedulingInThePast) {
  Scheduler s;
  s.schedule(10, [] {});
  s.runAll();
  EXPECT_DEATH(s.schedule(5, [] {}), "Precondition");
}

}  // namespace
}  // namespace manet::sim
