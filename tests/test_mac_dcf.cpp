#include "mac/dcf.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/packet.hpp"
#include "phy/channel.hpp"
#include "sim/scheduler.hpp"

namespace manet::mac {
namespace {

using net::HostId;

net::PacketPtr dataPacket(std::uint32_t sender, std::uint32_t seq = 0) {
  const HostId src{sender};
  return net::makeDataPacket(net::BroadcastId{src, net::BroadcastSeq{seq}},
                             src);
}

class FakeUpper : public DcfMac::Upper {
 public:
  struct Event {
    enum Kind { kTxStart, kTxFinish, kRx } kind;
    DcfMac::TxId id;
    sim::TimePoint at;
    HostId from;
  };
  explicit FakeUpper(sim::Scheduler& s) : scheduler_(s) {}
  void onTxStarted(DcfMac::TxId id, const net::Packet&) override {
    events.push_back({Event::kTxStart, id, scheduler_.now(), HostId{}});
  }
  void onTxFinished(DcfMac::TxId id, const net::Packet&) override {
    events.push_back({Event::kTxFinish, id, scheduler_.now(), HostId{}});
  }
  void onReceive(const phy::Frame& frame) override {
    events.push_back({Event::kRx, 0, scheduler_.now(), frame.src});
  }

  std::vector<Event> ofKind(Event::Kind kind) const {
    std::vector<Event> out;
    for (const auto& e : events) {
      if (e.kind == kind) out.push_back(e);
    }
    return out;
  }

  std::vector<Event> events;

 private:
  sim::Scheduler& scheduler_;
};

class DcfTest : public ::testing::Test {
 protected:
  DcfTest() : channel_(scheduler_, phy::PhyParams{}) {}

  DcfMac& addStation(geom::Vec2 pos, std::uint64_t seed = 1) {
    const HostId id{static_cast<std::uint32_t>(macs_.size())};
    uppers_.push_back(std::make_unique<FakeUpper>(scheduler_));
    macs_.push_back(std::make_unique<DcfMac>(
        scheduler_, channel_, id, [pos] { return pos; }, sim::Rng(seed),
        MacParams{}, uppers_.back().get()));
    return *macs_.back();
  }

  FakeUpper& upper(std::uint32_t id) { return *uppers_[id]; }

  sim::Scheduler scheduler_;
  phy::Channel channel_;
  std::vector<std::unique_ptr<FakeUpper>> uppers_;
  std::vector<std::unique_ptr<DcfMac>> macs_;
};

constexpr sim::Duration kDifs{50};
constexpr sim::Duration kSlot{20};
constexpr sim::Duration kAirtime280{2432};

TEST_F(DcfTest, FirstFrameWaitsDifsFromBoot) {
  DcfMac& a = addStation({0, 0});
  a.enqueue(dataPacket(0), 280);
  scheduler_.runAll();
  const auto starts = upper(0).ofKind(FakeUpper::Event::kTxStart);
  ASSERT_EQ(starts.size(), 1u);
  EXPECT_EQ(starts[0].at, sim::kTimeZero + kDifs);
}

TEST_F(DcfTest, LongIdleMeansImmediateTransmit) {
  DcfMac& a = addStation({0, 0});
  scheduler_.runUntil(sim::TimePoint{10'000});
  a.enqueue(dataPacket(0), 280);
  scheduler_.runAll();
  const auto starts = upper(0).ofKind(FakeUpper::Event::kTxStart);
  ASSERT_EQ(starts.size(), 1u);
  EXPECT_EQ(starts[0].at, sim::TimePoint{10'000});  // idle >= DIFS: no extra wait
}

TEST_F(DcfTest, TxFinishedAfterAirtime) {
  DcfMac& a = addStation({0, 0});
  scheduler_.runUntil(sim::TimePoint{1'000});
  a.enqueue(dataPacket(0), 280);
  scheduler_.runAll();
  const auto finishes = upper(0).ofKind(FakeUpper::Event::kTxFinish);
  ASSERT_EQ(finishes.size(), 1u);
  EXPECT_EQ(finishes[0].at, sim::TimePoint{1'000} + kAirtime280);
}

TEST_F(DcfTest, IntactFrameIsDeliveredUp) {
  DcfMac& a = addStation({0, 0});
  addStation({300, 0}, 2);
  scheduler_.runUntil(sim::TimePoint{1'000});
  a.enqueue(dataPacket(0), 280);
  scheduler_.runAll();
  const auto rx = upper(1).ofKind(FakeUpper::Event::kRx);
  ASSERT_EQ(rx.size(), 1u);
  EXPECT_EQ(rx[0].from, HostId{0});
}

TEST_F(DcfTest, CorruptedFrameIsDroppedByFcs) {
  // Two hidden stations transmit into a common receiver simultaneously.
  DcfMac& a = addStation({0, 0}, 1);
  DcfMac& b = addStation({900, 0}, 2);
  addStation({450, 0}, 3);
  scheduler_.runUntil(sim::TimePoint{10'000});
  a.enqueue(dataPacket(0), 280);
  b.enqueue(dataPacket(1), 280);
  scheduler_.runAll();
  EXPECT_TRUE(upper(2).ofKind(FakeUpper::Event::kRx).empty());
  EXPECT_EQ(macs_[2]->framesDroppedCorrupt(), 2u);
}

TEST_F(DcfTest, DeferUntilMediumIdlePlusDifs) {
  DcfMac& a = addStation({0, 0}, 1);
  DcfMac& b = addStation({300, 0}, 2);
  scheduler_.runUntil(sim::TimePoint{10'000});
  a.enqueue(dataPacket(0), 280);  // starts at 10'000, ends 12'432
  scheduler_.runUntil(sim::TimePoint{10'100});
  b.enqueue(dataPacket(1), 280);  // medium busy: defer + draw a backoff
  scheduler_.runAll();
  const auto starts = upper(1).ofKind(FakeUpper::Event::kTxStart);
  ASSERT_EQ(starts.size(), 1u);
  // DCF: busy at access attempt => backoff. b starts at idle-end + DIFS +
  // k slots, k in [0, 31].
  const sim::TimePoint idleEnd = sim::TimePoint{10'000} + kAirtime280;
  const sim::Duration gap = starts[0].at - (idleEnd + kDifs);
  EXPECT_GE(gap, sim::Duration{});
  EXPECT_LE(gap, 31 * kSlot);
  EXPECT_EQ(gap % kSlot, sim::Duration{});
}

TEST_F(DcfTest, PostBackoffDelaysSecondFrame) {
  DcfMac& a = addStation({0, 0}, 7);
  scheduler_.runUntil(sim::TimePoint{10'000});
  a.enqueue(dataPacket(0, 0), 280);
  a.enqueue(dataPacket(0, 1), 280);
  scheduler_.runAll();
  const auto starts = upper(0).ofKind(FakeUpper::Event::kTxStart);
  ASSERT_EQ(starts.size(), 2u);
  const sim::Duration gap = starts[1].at - (starts[0].at + kAirtime280);
  // Post-backoff: DIFS plus 0..31 whole slots.
  EXPECT_GE(gap, kDifs);
  EXPECT_LE(gap, kDifs + 31 * kSlot);
  EXPECT_EQ((gap - kDifs) % kSlot, sim::Duration{});
}

TEST_F(DcfTest, PostBackoffExpiresWhileIdle) {
  // After a transmission and a long idle gap, the next frame goes out
  // immediately: the owed backoff already counted down.
  DcfMac& a = addStation({0, 0}, 7);
  scheduler_.runUntil(sim::TimePoint{10'000});
  a.enqueue(dataPacket(0, 0), 280);
  scheduler_.runUntil(sim::TimePoint{50'000});  // plenty of idle time
  a.enqueue(dataPacket(0, 1), 280);
  scheduler_.runAll();
  const auto starts = upper(0).ofKind(FakeUpper::Event::kTxStart);
  ASSERT_EQ(starts.size(), 2u);
  EXPECT_EQ(starts[1].at, sim::TimePoint{50'000});
}

TEST_F(DcfTest, CancelBeforeStartSuppressesTransmission) {
  DcfMac& a = addStation({0, 0});
  const auto id = a.enqueue(dataPacket(0), 280);
  EXPECT_TRUE(a.cancel(id));
  scheduler_.runAll();
  EXPECT_TRUE(upper(0).ofKind(FakeUpper::Event::kTxStart).empty());
  EXPECT_TRUE(a.quiescent());
}

TEST_F(DcfTest, CancelAfterStartFails) {
  DcfMac& a = addStation({0, 0});
  const auto id = a.enqueue(dataPacket(0), 280);
  scheduler_.runUntil(sim::kTimeZero + kDifs);  // transmission started exactly at DIFS
  EXPECT_FALSE(a.cancel(id));
}

TEST_F(DcfTest, CancelUnknownIdFails) {
  DcfMac& a = addStation({0, 0});
  EXPECT_FALSE(a.cancel(12345));
}

TEST_F(DcfTest, CancelMiddleOfQueuePreservesOthers) {
  DcfMac& a = addStation({0, 0});
  scheduler_.runUntil(sim::TimePoint{10'000});
  const auto id1 = a.enqueue(dataPacket(0, 1), 280);
  const auto id2 = a.enqueue(dataPacket(0, 2), 280);
  const auto id3 = a.enqueue(dataPacket(0, 3), 280);
  EXPECT_TRUE(a.cancel(id2));
  scheduler_.runAll();
  const auto starts = upper(0).ofKind(FakeUpper::Event::kTxStart);
  ASSERT_EQ(starts.size(), 2u);
  EXPECT_EQ(starts[0].id, id1);
  EXPECT_EQ(starts[1].id, id3);
}

TEST_F(DcfTest, FifoOrderAcrossQueue) {
  DcfMac& a = addStation({0, 0});
  scheduler_.runUntil(sim::TimePoint{10'000});
  std::vector<DcfMac::TxId> ids;
  for (std::uint32_t i = 0; i < 4; ++i) {
    ids.push_back(a.enqueue(dataPacket(0, i), 280));
  }
  scheduler_.runAll();
  const auto starts = upper(0).ofKind(FakeUpper::Event::kTxStart);
  ASSERT_EQ(starts.size(), 4u);
  for (size_t i = 0; i < 4; ++i) EXPECT_EQ(starts[i].id, ids[i]);
}

TEST_F(DcfTest, TwoContendersSerializeViaCarrierSense) {
  // Both stations in range of each other; whoever wins, frames must not
  // overlap, so the common receiver decodes both.
  DcfMac& a = addStation({0, 0}, 11);
  DcfMac& b = addStation({100, 0}, 22);
  addStation({200, 0}, 33);
  scheduler_.runUntil(sim::TimePoint{10'000});
  a.enqueue(dataPacket(0), 280);
  scheduler_.runUntil(sim::TimePoint{10'500});  // a is now on the air; b defers
  b.enqueue(dataPacket(1), 280);
  scheduler_.runAll();
  EXPECT_EQ(upper(2).ofKind(FakeUpper::Event::kRx).size(), 2u);
  EXPECT_EQ(macs_[2]->framesDroppedCorrupt(), 0u);
}

TEST_F(DcfTest, BackoffFreezesDuringBusyMedium) {
  // Station b owes a post-backoff and a long frame occupies the medium;
  // b's counter must not decrement during that time.
  DcfMac& a = addStation({0, 0}, 11);
  DcfMac& b = addStation({100, 0}, 22);
  scheduler_.runUntil(sim::TimePoint{10'000});
  b.enqueue(dataPacket(1, 0), 280);  // b transmits at 10'000..12'432
  scheduler_.runUntil(sim::TimePoint{12'432});
  // b now owes a post-backoff. Occupy the medium with a's frame.
  a.enqueue(dataPacket(0), 280);  // a waits DIFS (12'482) then transmits
  b.enqueue(dataPacket(1, 1), 280);
  scheduler_.runAll();
  const auto bStarts = upper(1).ofKind(FakeUpper::Event::kTxStart);
  ASSERT_EQ(bStarts.size(), 2u);
  // b's second frame can only start after a's frame ended plus DIFS.
  const sim::TimePoint aEnd =
      upper(0).ofKind(FakeUpper::Event::kTxFinish)[0].at;
  EXPECT_GE(bStarts[1].at, aEnd + kDifs);
}

TEST_F(DcfTest, QueueDepthAndQuiescent) {
  DcfMac& a = addStation({0, 0});
  EXPECT_TRUE(a.quiescent());
  a.enqueue(dataPacket(0, 0), 280);
  a.enqueue(dataPacket(0, 1), 280);
  EXPECT_EQ(a.queueDepth(), 2u);
  EXPECT_FALSE(a.quiescent());
  scheduler_.runAll();
  EXPECT_TRUE(a.quiescent());
  EXPECT_EQ(a.framesSent(), 2u);
}

TEST_F(DcfTest, SlotBoundaryAccounting) {
  // A deterministic check that backoff consumes whole slots: run many
  // two-frame sequences across seeds and verify every gap is DIFS+k*slot.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    sim::Scheduler scheduler;
    phy::Channel channel(scheduler, phy::PhyParams{});
    FakeUpper up(scheduler);
    DcfMac mac(scheduler, channel, HostId{0}, [] { return geom::Vec2{}; },
               sim::Rng(seed), MacParams{}, &up);
    scheduler.runUntil(sim::TimePoint{10'000});
    mac.enqueue(dataPacket(0, 0), 280);
    mac.enqueue(dataPacket(0, 1), 280);
    scheduler.runAll();
    const auto starts = up.ofKind(FakeUpper::Event::kTxStart);
    ASSERT_EQ(starts.size(), 2u);
    const sim::Duration gap = starts[1].at - (starts[0].at + kAirtime280);
    EXPECT_EQ((gap - kDifs) % kSlot, sim::Duration{}) << "seed=" << seed;
    EXPECT_GE((gap - kDifs) / kSlot, 0);
    EXPECT_LE((gap - kDifs) / kSlot, 31);
  }
}

}  // namespace
}  // namespace manet::mac
