#include "core/policies.hpp"

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "core/policy.hpp"
#include "core/threshold.hpp"

namespace manet::core {
namespace {

/// Scriptable host stand-in: the tests place the host, set its neighbor
/// tables, and drive the decider directly — no simulator involved.
class FakeHost : public HostView {
 public:
  net::HostId id() const override { return id_; }
  int neighborCount() const override { return static_cast<int>(nx_.size()); }
  std::vector<net::HostId> neighborIds() const override { return nx_; }
  std::optional<std::vector<net::HostId>> neighborsOf(
      net::HostId h) const override {
    auto it = twoHop_.find(h);
    if (it == twoHop_.end()) return std::nullopt;
    return it->second;
  }
  geom::Vec2 position() const override { return pos_; }
  double radius() const override { return 500.0; }
  sim::Rng& rng() override { return rng_; }
  sim::TimePoint now() const override { return now_; }

  net::HostId id_{};
  std::vector<net::HostId> nx_;
  std::map<net::HostId, std::vector<net::HostId>> twoHop_;
  geom::Vec2 pos_{0, 0};
  sim::Rng rng_{12345};
  sim::TimePoint now_{};
};

net::HostId H(std::uint32_t v) { return net::HostId{v}; }

std::vector<net::HostId> ids(std::initializer_list<std::uint32_t> vs) {
  std::vector<net::HostId> out;
  for (std::uint32_t v : vs) out.push_back(net::HostId{v});
  return out;
}

Reception from(std::uint32_t h, geom::Vec2 pos) {
  return Reception{net::HostId{h}, pos, {}};
}

// ------------------------------------------------------------- flooding

TEST(Flooding, AlwaysProceedsAndNeverCancels) {
  FakeHost host;
  FloodingPolicy policy;
  auto d = policy.makeDecider(host, from(1, {100, 0}));
  EXPECT_TRUE(d->shouldProceed(host));
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(d->onDuplicate(host, from(2, {0, 100})));
  }
}

TEST(Flooding, Name) { EXPECT_EQ(FloodingPolicy{}.name(), "flooding"); }

// -------------------------------------------------------- probabilistic

TEST(Probabilistic, ZeroNeverProceeds) {
  FakeHost host;
  ProbabilisticPolicy policy(0.0);
  for (int i = 0; i < 20; ++i) {
    auto d = policy.makeDecider(host, from(1, {100, 0}));
    EXPECT_FALSE(d->shouldProceed(host));
  }
}

TEST(Probabilistic, OneAlwaysProceeds) {
  FakeHost host;
  ProbabilisticPolicy policy(1.0);
  for (int i = 0; i < 20; ++i) {
    auto d = policy.makeDecider(host, from(1, {100, 0}));
    EXPECT_TRUE(d->shouldProceed(host));
  }
}

TEST(Probabilistic, FrequencyTracksP) {
  FakeHost host;
  ProbabilisticPolicy policy(0.25);
  int proceeded = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    auto d = policy.makeDecider(host, from(1, {100, 0}));
    proceeded += d->shouldProceed(host) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(proceeded) / n, 0.25, 0.03);
}

TEST(Probabilistic, DuplicatesDoNotRevokeTheGamble) {
  FakeHost host;
  ProbabilisticPolicy policy(1.0);
  auto d = policy.makeDecider(host, from(1, {100, 0}));
  ASSERT_TRUE(d->shouldProceed(host));
  EXPECT_TRUE(d->onDuplicate(host, from(2, {0, 100})));
}

TEST(ProbabilisticDeath, RejectsOutOfRangeP) {
  EXPECT_DEATH(ProbabilisticPolicy{-0.1}, "Precondition");
  EXPECT_DEATH(ProbabilisticPolicy{1.1}, "Precondition");
}

// --------------------------------------------------------------- counter

TEST(Counter, ProceedsWhileUnderThreshold) {
  FakeHost host;
  CounterPolicy policy(3);  // inhibit at c >= 3
  auto d = policy.makeDecider(host, from(1, {100, 0}));
  EXPECT_TRUE(d->shouldProceed(host));                    // c = 1
  EXPECT_TRUE(d->onDuplicate(host, from(2, {0, 100})));   // c = 2
  EXPECT_FALSE(d->onDuplicate(host, from(3, {50, 50})));  // c = 3: cancel
}

TEST(Counter, ThresholdTwoCancelsOnFirstDuplicate) {
  FakeHost host;
  CounterPolicy policy(2);
  auto d = policy.makeDecider(host, from(1, {100, 0}));
  EXPECT_TRUE(d->shouldProceed(host));
  EXPECT_FALSE(d->onDuplicate(host, from(2, {0, 100})));
}

TEST(Counter, ThresholdOneInhibitsImmediately) {
  // Degenerate but legal: C = 1 means the first hearing already reached
  // the threshold.
  FakeHost host;
  CounterPolicy policy(1);
  auto d = policy.makeDecider(host, from(1, {100, 0}));
  EXPECT_FALSE(d->shouldProceed(host));
}

TEST(Counter, Name) { EXPECT_EQ(CounterPolicy{4}.name(), "C=4"); }

// ------------------------------------------------------ adaptive counter

TEST(AdaptiveCounter, UsesNeighborCountForThreshold) {
  FakeHost host;
  AdaptiveCounterPolicy policy(CounterThreshold::fromDigits("29"));
  // n = 1 -> C = 2: first duplicate cancels.
  host.nx_ = ids({10});
  auto d1 = policy.makeDecider(host, from(1, {100, 0}));
  EXPECT_TRUE(d1->shouldProceed(host));
  EXPECT_FALSE(d1->onDuplicate(host, from(2, {0, 100})));
  // n = 2 -> C = 9: many duplicates tolerated.
  host.nx_ = ids({10, 11});
  auto d2 = policy.makeDecider(host, from(1, {100, 0}));
  EXPECT_TRUE(d2->shouldProceed(host));
  for (int i = 0; i < 7; ++i) {
    EXPECT_TRUE(d2->onDuplicate(host, from(2, {0, 100}))) << i;  // c = 2..8
  }
  EXPECT_FALSE(d2->onDuplicate(host, from(3, {9, 9})));  // c = 9: cancel
}

TEST(AdaptiveCounter, ReactsToNeighborhoodChangesMidPacket) {
  // The threshold is re-evaluated against the *current* n on every
  // duplicate: if neighbors vanish, the host becomes more eager to relay.
  FakeHost host;
  host.nx_ = ids({10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21});  // n = 12
  AdaptiveCounterPolicy policy(CounterThreshold::suggested());  // C(12) = 2
  auto d = policy.makeDecider(host, from(1, {100, 0}));
  EXPECT_TRUE(d->shouldProceed(host));
  host.nx_ = ids({10});  // suddenly sparse: C(1) = 2 still, counter 2 => cancel
  EXPECT_FALSE(d->onDuplicate(host, from(2, {0, 100})));
}

TEST(AdaptiveCounter, SuggestedFunctionForcedRelayInSparseness) {
  // n = 3 -> C(3) = 4: the host survives two duplicates (c=3 < 4).
  FakeHost host;
  host.nx_ = ids({10, 11, 12});
  AdaptiveCounterPolicy policy(CounterThreshold::suggested());
  auto d = policy.makeDecider(host, from(1, {100, 0}));
  EXPECT_TRUE(d->shouldProceed(host));
  EXPECT_TRUE(d->onDuplicate(host, from(2, {0, 100})));
  EXPECT_TRUE(d->onDuplicate(host, from(3, {50, 50})));
  EXPECT_FALSE(d->onDuplicate(host, from(4, {70, 20})));
}

TEST(AdaptiveCounter, DefaultLabel) {
  EXPECT_EQ(AdaptiveCounterPolicy(CounterThreshold::suggested()).name(), "AC");
}

// --------------------------------------------------------------- distance

TEST(Distance, NearbySenderInhibitsImmediately) {
  FakeHost host;  // at origin
  DistancePolicy policy(100.0);
  auto d = policy.makeDecider(host, from(1, {30, 0}));  // 30 m away
  EXPECT_FALSE(d->shouldProceed(host));
}

TEST(Distance, FarSenderAllowsRelay) {
  FakeHost host;
  DistancePolicy policy(100.0);
  auto d = policy.makeDecider(host, from(1, {400, 0}));
  EXPECT_TRUE(d->shouldProceed(host));
}

TEST(Distance, TracksMinimumOverDuplicates) {
  FakeHost host;
  DistancePolicy policy(100.0);
  auto d = policy.makeDecider(host, from(1, {400, 0}));
  EXPECT_TRUE(d->shouldProceed(host));
  EXPECT_TRUE(d->onDuplicate(host, from(2, {0, 200})));   // still >= 100
  EXPECT_FALSE(d->onDuplicate(host, from(3, {50, 0})));   // 50 < 100: cancel
}

TEST(Distance, ZeroThresholdNeverInhibits) {
  FakeHost host;
  DistancePolicy policy(0.0);
  auto d = policy.makeDecider(host, from(1, {0, 0}));  // same position!
  EXPECT_TRUE(d->shouldProceed(host));
}

// --------------------------------------------------------------- location

TEST(Location, ColocatedSenderLeavesNoAdditionalCoverage) {
  FakeHost host;
  LocationPolicy policy(0.01);
  auto d = policy.makeDecider(host, from(1, {0, 0}));
  EXPECT_FALSE(d->shouldProceed(host));
}

TEST(Location, BorderSenderLeavesMuchCoverage) {
  FakeHost host;
  LocationPolicy policy(0.1871);
  auto d = policy.makeDecider(host, from(1, {500, 0}));  // ~61% uncovered
  EXPECT_TRUE(d->shouldProceed(host));
}

TEST(Location, AccumulatedSendersEventuallyInhibit) {
  FakeHost host;
  LocationPolicy policy(0.1871);
  auto d = policy.makeDecider(host, from(1, {500, 0}));
  ASSERT_TRUE(d->shouldProceed(host));
  // Surround the host: residual uncovered area collapses.
  EXPECT_FALSE(d->onDuplicate(host, from(2, {-500, 0})) &&
               d->onDuplicate(host, from(3, {0, 500})) &&
               d->onDuplicate(host, from(4, {0, -500})) &&
               d->onDuplicate(host, from(5, {0, 0})));
}

TEST(Location, ZeroThresholdAlwaysProceeds) {
  FakeHost host;
  LocationPolicy policy(0.0);
  auto d = policy.makeDecider(host, from(1, {0, 0}));
  EXPECT_TRUE(d->shouldProceed(host));
}

// ------------------------------------------------------ adaptive location

TEST(AdaptiveLocation, SparseNeighborhoodForcesRelay) {
  FakeHost host;
  host.nx_ = ids({10, 11});  // n = 2 <= n1 = 6 -> A(n) = 0
  AdaptiveLocationPolicy policy(AreaThreshold::suggested());
  auto d = policy.makeDecider(host, from(1, {0, 0}));  // zero new coverage!
  EXPECT_TRUE(d->shouldProceed(host));
  EXPECT_TRUE(d->onDuplicate(host, from(2, {0, 0})));
}

TEST(AdaptiveLocation, CrowdedNeighborhoodInhibitsLowCoverage) {
  FakeHost host;
  for (std::uint32_t i = 0; i < 15; ++i) host.nx_.push_back(H(100 + i));  // n = 15
  AdaptiveLocationPolicy policy(AreaThreshold::suggested());  // A = 0.187
  auto d = policy.makeDecider(host, from(1, {100, 0}));  // ~10% uncovered
  EXPECT_FALSE(d->shouldProceed(host));
}

TEST(AdaptiveLocation, CrowdedButUsefulRelayProceeds) {
  FakeHost host;
  for (std::uint32_t i = 0; i < 15; ++i) host.nx_.push_back(H(100 + i));
  AdaptiveLocationPolicy policy(AreaThreshold::suggested());
  auto d = policy.makeDecider(host, from(1, {500, 0}));  // ~61% > 0.187
  EXPECT_TRUE(d->shouldProceed(host));
}

TEST(AdaptiveLocation, DefaultLabel) {
  EXPECT_EQ(AdaptiveLocationPolicy(AreaThreshold::suggested()).name(), "AL");
}

// ------------------------------------------------------ neighbor coverage

TEST(NeighborCoverage, InhibitsWhenSenderCoversEverything) {
  FakeHost host;
  host.nx_ = ids({1, 2, 3});
  host.twoHop_[H(1)] = ids({2, 3, 99});  // sender 1 already covers 2 and 3
  NeighborCoveragePolicy policy;
  auto d = policy.makeDecider(host, from(1, {100, 0}));
  EXPECT_FALSE(d->shouldProceed(host));  // T = {2,3} - {2,3,99} - {1} = {}
}

TEST(NeighborCoverage, ProceedsWhileSomeNeighborUncovered) {
  FakeHost host;
  host.nx_ = ids({1, 2, 3});
  host.twoHop_[H(1)] = ids({2});  // 3 not covered by sender 1
  NeighborCoveragePolicy policy;
  auto d = policy.makeDecider(host, from(1, {100, 0}));
  EXPECT_TRUE(d->shouldProceed(host));
}

TEST(NeighborCoverage, DuplicatesErodePendingSet) {
  FakeHost host;
  host.nx_ = ids({1, 2, 3, 4});
  host.twoHop_[H(1)] = ids({2});
  host.twoHop_[H(3)] = ids({4});
  NeighborCoveragePolicy policy;
  auto d = policy.makeDecider(host, from(1, {100, 0}));
  ASSERT_TRUE(d->shouldProceed(host));  // T = {3, 4}
  EXPECT_FALSE(d->onDuplicate(host, from(3, {0, 100})));  // covers 3 and 4
}

TEST(NeighborCoverage, UnknownSenderOnlyRemovesItself) {
  FakeHost host;
  host.nx_ = ids({1, 2});
  NeighborCoveragePolicy policy;  // no two-hop knowledge at all
  auto d = policy.makeDecider(host, from(1, {100, 0}));
  EXPECT_TRUE(d->shouldProceed(host));                   // T = {2}
  EXPECT_FALSE(d->onDuplicate(host, from(2, {0, 1})));   // T = {}
}

TEST(NeighborCoverage, IsolatedHostInhibits) {
  FakeHost host;  // no neighbors at all
  NeighborCoveragePolicy policy;
  auto d = policy.makeDecider(host, from(1, {100, 0}));
  EXPECT_FALSE(d->shouldProceed(host));
}

TEST(NeighborCoverage, SenderOutsideNxStillSubtractsItsSet) {
  FakeHost host;
  host.nx_ = ids({2, 3});
  host.twoHop_[H(9)] = ids({2, 3});  // we know 9's neighborhood (e.g. stale entry)
  NeighborCoveragePolicy policy;
  auto d = policy.makeDecider(host, from(9, {100, 0}));
  EXPECT_FALSE(d->shouldProceed(host));
}

}  // namespace
}  // namespace manet::core
