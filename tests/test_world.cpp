// World assembly and configuration-resolution behaviour.
#include "experiment/world.hpp"

#include <gtest/gtest.h>

#include "experiment/runner.hpp"

namespace manet::experiment {
namespace {

TEST(World, BuildsConfiguredHostCount) {
  ScenarioConfig c;
  c.numHosts = 37;
  c.numBroadcasts = 0;
  World w(c);
  EXPECT_EQ(w.hostCount(), 37u);
  EXPECT_EQ(w.channel().nodeCount(), 37u);
}

TEST(World, FixedPositionsForceHostCount) {
  ScenarioConfig c;
  c.numHosts = 100;  // overridden by the explicit placement
  c.fixedPositions = {{0, 0}, {100, 0}, {200, 0}};
  World w(c);
  EXPECT_EQ(w.hostCount(), 3u);
  EXPECT_EQ(w.channel().positionOf(net::HostId{2}), (geom::Vec2{200, 0}));
}

TEST(World, HostsStartInsideTheMap) {
  ScenarioConfig c;
  c.mapUnits = 7;
  c.numHosts = 80;
  c.numBroadcasts = 0;
  World w(c);
  const double side = c.mapMeters();
  for (const auto& p : w.channel().snapshotPositions()) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, side);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, side);
  }
}

TEST(World, OracleNeighborsMatchChannelRange) {
  ScenarioConfig c;
  c.fixedPositions = {{0, 0}, {400, 0}, {800, 0}};
  World w(c);
  EXPECT_EQ(w.oracleNeighborCount(net::HostId{0}), 1);
  EXPECT_EQ(w.oracleNeighborCount(net::HostId{1}), 2);
  EXPECT_EQ(w.oracleNeighbors(net::HostId{1}),
            (std::vector<net::HostId>{net::HostId{0}, net::HostId{2}}));
}

TEST(World, ReachableFromMatchesConnectivity) {
  ScenarioConfig c;
  c.fixedPositions = {{0, 0}, {400, 0}, {5000, 0}};
  World w(c);
  EXPECT_EQ(w.reachableFrom(net::HostId{0}), 1);
  EXPECT_EQ(w.reachableFrom(net::HostId{2}), 0);
}

TEST(World, RunIsSingleShot) {
  ScenarioConfig c;
  c.numHosts = 10;
  c.numBroadcasts = 1;
  World w(c);
  w.run();
  EXPECT_DEATH(w.run(), "Precondition");
}

TEST(World, PolicyMatchesScheme) {
  ScenarioConfig c;
  c.scheme = SchemeSpec::adaptiveLocation();
  c.numBroadcasts = 0;
  World w(c);
  EXPECT_EQ(w.policy().name(), "AL");
}

TEST(World, WorkloadProducesExpectedBroadcastCount) {
  ScenarioConfig c;
  c.numHosts = 20;
  c.numBroadcasts = 7;
  c.seed = 3;
  World w(c);
  w.run();
  EXPECT_EQ(w.metrics().broadcasts().size(), 7u);
  // Requests are spaced by U(0, 2 s): all start times within the horizon.
  sim::TimePoint prev = sim::kTimeZero;
  for (const auto& pb : w.metrics().broadcasts()) {
    EXPECT_GE(pb.start, prev);  // issued in order
    prev = pb.start;
  }
}

TEST(World, InterarrivalRespectsBound) {
  ScenarioConfig c;
  c.numHosts = 20;
  c.numBroadcasts = 30;
  c.interarrivalMax = 500 * sim::kMillisecond;
  c.seed = 5;
  World w(c);
  w.run();
  const auto& records = w.metrics().broadcasts();
  for (std::size_t i = 1; i < records.size(); ++i) {
    EXPECT_LE(records[i].start - records[i - 1].start,
              500 * sim::kMillisecond);
  }
}

TEST(World, GroupMobilityConfigValidated) {
  ScenarioConfig c;
  c.mobility = ScenarioConfig::Mobility::kGroup;
  c.groupSize = 0;
  c.numBroadcasts = 0;
  EXPECT_DEATH(World{c}, "Precondition");
}

TEST(World, SchemeNamesForTables) {
  EXPECT_EQ(SchemeSpec::flooding().name(), "flooding");
  EXPECT_EQ(SchemeSpec::counter(2).name(), "C=2");
  EXPECT_EQ(SchemeSpec::location(0.0134).name(), "A=0.0134");
  EXPECT_EQ(SchemeSpec::distance(100).name(), "D=100");
  EXPECT_EQ(SchemeSpec::probabilistic(0.5).name(), "P=0.50");
  EXPECT_EQ(SchemeSpec::adaptiveCounter().name(), "AC");
  EXPECT_EQ(SchemeSpec::adaptiveLocation().name(), "AL");
  EXPECT_EQ(SchemeSpec::neighborCoverage().name(), "NC");
  EXPECT_EQ(SchemeSpec::clusterBased(3).name(), "cluster(C=3)");
  SchemeSpec custom = SchemeSpec::flooding();
  custom.label = "my-label";
  EXPECT_EQ(custom.name(), "my-label");
}

TEST(World, TraceSinkDefaultsToNull) {
  ScenarioConfig c;
  c.numBroadcasts = 0;
  World w(c);
  EXPECT_EQ(w.traceSink(), nullptr);
}

}  // namespace
}  // namespace manet::experiment
