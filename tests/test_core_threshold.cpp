#include "core/threshold.hpp"

#include <gtest/gtest.h>

namespace manet::core {
namespace {

TEST(CounterThreshold, FixedIsConstant) {
  const auto c = CounterThreshold::fixed(3);
  for (int n = 0; n <= 50; ++n) EXPECT_EQ(c(n), 3);
}

TEST(CounterThreshold, FromDigitsIndexing) {
  // "2345" means C(1)=2, C(2)=3, C(3)=4, C(4)=5, C(n>4)=5.
  const auto c = CounterThreshold::fromDigits("2345");
  EXPECT_EQ(c(1), 2);
  EXPECT_EQ(c(2), 3);
  EXPECT_EQ(c(3), 4);
  EXPECT_EQ(c(4), 5);
  EXPECT_EQ(c(10), 5);
  EXPECT_EQ(c(100), 5);
}

TEST(CounterThreshold, ZeroNeighborsBehavesLikeOne) {
  const auto c = CounterThreshold::fromDigits("29");
  EXPECT_EQ(c(0), 2);
}

TEST(CounterThreshold, PaperSlopeCandidates) {
  // Fig. 5a's three sequences.
  const auto slow = CounterThreshold::fromDigits("22233344455555");
  const auto mid = CounterThreshold::fromDigits("22334455555");
  const auto fast = CounterThreshold::fromDigits("23455555");
  EXPECT_EQ(slow(1), 2);
  EXPECT_EQ(slow(4), 3);
  EXPECT_EQ(slow(10), 5);
  EXPECT_EQ(mid(3), 3);
  EXPECT_EQ(fast(3), 4);
  EXPECT_EQ(fast(4), 5);
  EXPECT_EQ(fast(8), 5);
}

TEST(CounterThreshold, RampAndDecayRampsAsNPlusOne) {
  const auto c = CounterThreshold::rampAndDecay(4, 12);
  EXPECT_EQ(c(1), 2);
  EXPECT_EQ(c(2), 3);
  EXPECT_EQ(c(3), 4);
  EXPECT_EQ(c(4), 5);
}

TEST(CounterThreshold, RampAndDecayReachesFloorAtN2) {
  const auto c = CounterThreshold::rampAndDecay(4, 12);
  EXPECT_EQ(c(12), 2);
  EXPECT_EQ(c(20), 2);
  EXPECT_EQ(c(100), 2);
}

TEST(CounterThreshold, LinearDecayIsMonotoneNonIncreasing) {
  const auto c = CounterThreshold::rampAndDecay(4, 12, DecayShape::kLinear);
  for (int n = 4; n < 30; ++n) EXPECT_GE(c(n), c(n + 1)) << "n=" << n;
}

TEST(CounterThreshold, ShapesOrderedBetweenN1AndN2) {
  // Convex stays at or above linear, concave at or below, in the interior.
  const auto lin = CounterThreshold::rampAndDecay(4, 12, DecayShape::kLinear);
  const auto convex = CounterThreshold::rampAndDecay(4, 12, DecayShape::kConvex);
  const auto concave =
      CounterThreshold::rampAndDecay(4, 12, DecayShape::kConcave);
  for (int n = 5; n < 12; ++n) {
    EXPECT_GE(convex(n), lin(n)) << "n=" << n;
    EXPECT_LE(concave(n), lin(n)) << "n=" << n;
  }
}

TEST(CounterThreshold, StepHoldsPeakUntilN2) {
  const auto c = CounterThreshold::rampAndDecay(4, 12, DecayShape::kStep);
  for (int n = 4; n < 12; ++n) EXPECT_EQ(c(n), 5);
  EXPECT_EQ(c(12), 2);
}

TEST(CounterThreshold, SuggestedMatchesPaperTuning) {
  // n1 = 4, n2 = 12, linear: the paper's recommended C(n).
  const auto c = CounterThreshold::suggested();
  EXPECT_EQ(c(1), 2);
  EXPECT_EQ(c(4), 5);
  EXPECT_EQ(c(8), 4);  // halfway down the decay
  EXPECT_EQ(c(12), 2);
  EXPECT_EQ(c(50), 2);
}

TEST(CounterThreshold, ToDigitsRoundTrip) {
  const auto c = CounterThreshold::fromDigits("2345553222");
  EXPECT_EQ(CounterThreshold::fromDigits(c.toDigits()), c);
}

TEST(CounterThreshold, EqualityIgnoresRedundantTail) {
  EXPECT_EQ(CounterThreshold::fromDigits("235"),
            CounterThreshold::fromDigits("23555"));
  EXPECT_NE(CounterThreshold::fromDigits("235"),
            CounterThreshold::fromDigits("234"));
}

TEST(CounterThresholdDeath, RejectsInvalidDigits) {
  EXPECT_DEATH((void)CounterThreshold::fromDigits("20"), "Precondition");
  EXPECT_DEATH((void)CounterThreshold::fromDigits(""), "Precondition");
  EXPECT_DEATH((void)CounterThreshold::fixed(0), "Precondition");
}

TEST(AreaThreshold, FixedIsConstant) {
  const auto a = AreaThreshold::fixed(0.0469);
  for (int n = 0; n <= 40; ++n) EXPECT_DOUBLE_EQ(a(n), 0.0469);
}

TEST(AreaThreshold, PiecewiseZeroBeforeN1) {
  const auto a = AreaThreshold::piecewise(6, 12);
  for (int n = 0; n <= 6; ++n) EXPECT_DOUBLE_EQ(a(n), 0.0);
}

TEST(AreaThreshold, PiecewiseSaturatesAtPaperConstant) {
  // After n2 the threshold is EAC(2)/pi r^2 = 0.187 (§3.2).
  const auto a = AreaThreshold::piecewise(6, 12);
  EXPECT_DOUBLE_EQ(a(12), 0.187);
  EXPECT_DOUBLE_EQ(a(40), 0.187);
}

TEST(AreaThreshold, PiecewiseLinearInBetween) {
  const auto a = AreaThreshold::piecewise(6, 12);
  EXPECT_DOUBLE_EQ(a(9), 0.187 * 0.5);
  EXPECT_GT(a(8), a(7));
  EXPECT_GT(a(11), a(10));
}

TEST(AreaThreshold, SuggestedIsSixTwelve) {
  const auto a = AreaThreshold::suggested();
  EXPECT_EQ(a.n1(), 6);
  EXPECT_EQ(a.n2(), 12);
  EXPECT_DOUBLE_EQ(a(6), 0.0);
  EXPECT_DOUBLE_EQ(a(12), 0.187);
}

TEST(AreaThreshold, PaperCandidateGrid) {
  // The (n1, n2) grid of Fig. 8 must all be constructible and ordered.
  for (int n1 : {2, 4, 6, 8}) {
    for (int n2 : {10, 12, 16}) {
      if (n2 <= n1) continue;
      const auto a = AreaThreshold::piecewise(n1, n2);
      EXPECT_DOUBLE_EQ(a(n1), 0.0);
      EXPECT_DOUBLE_EQ(a(n2), 0.187);
      for (int n = n1; n < n2; ++n) EXPECT_LE(a(n), a(n + 1));
    }
  }
}

TEST(AreaThresholdDeath, RejectsBadArguments) {
  EXPECT_DEATH((void)AreaThreshold::fixed(-0.1), "Precondition");
  EXPECT_DEATH((void)AreaThreshold::piecewise(6, 6), "Precondition");
  EXPECT_DEATH((void)AreaThreshold::piecewise(6, 12, 0.0), "Precondition");
}

}  // namespace
}  // namespace manet::core
