#include "phy/channel.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "net/packet.hpp"
#include "sim/scheduler.hpp"

namespace manet::phy {
namespace {

using net::HostId;

net::PacketPtr dataPacket(HostId sender) {
  return net::makeDataPacket(net::BroadcastId{sender, net::BroadcastSeq{0}}, sender);
}

/// Records everything the channel tells one node.
class Probe : public Channel::Listener {
 public:
  struct Rx {
    HostId from;
    bool corrupted;
    sim::TimePoint at;
  };
  void onMediumBusy() override { ++busyEvents; }
  void onMediumIdle() override { ++idleEvents; }
  void onFrameReceived(const Frame& frame, DropReason drop) override {
    receptions.push_back({frame.src, drop != DropReason::kNone, frame.txEnd});
  }
  void onTxComplete() override { ++txCompleted; }

  int busyEvents = 0;
  int idleEvents = 0;
  int txCompleted = 0;
  std::vector<Rx> receptions;
};

/// A fixture with a scheduler, a 500 m channel, and helpers to place nodes.
class ChannelTest : public ::testing::Test {
 protected:
  Channel& makeChannel(PhyParams params = {}) {
    channel_ = std::make_unique<Channel>(scheduler_, params);
    return *channel_;
  }

  HostId addNode(geom::Vec2 pos) {
    const HostId id{static_cast<std::uint32_t>(probes_.size())};
    probes_.push_back(std::make_unique<Probe>());
    channel_->attach(id, probes_.back().get(), [pos] { return pos; });
    return id;
  }

  Probe& probe(HostId id) { return *probes_[id.value()]; }

  sim::Scheduler scheduler_;
  std::unique_ptr<Channel> channel_;
  std::vector<std::unique_ptr<Probe>> probes_;
};

TEST_F(ChannelTest, FrameAirtimeMatchesDsssTiming) {
  PhyParams p;
  // 280 bytes at 1 Mb/s = 2240 us, plus 144 + 48 us of PLCP.
  EXPECT_EQ(p.frameAirtime(280), sim::Duration{2432});
  EXPECT_EQ(p.frameAirtime(0), sim::Duration{192});
}

TEST_F(ChannelTest, InRangeNodeReceivesIntactFrame) {
  Channel& ch = makeChannel();
  const HostId a = addNode({0, 0});
  const HostId b = addNode({400, 0});
  const sim::TimePoint end = ch.transmit(a, dataPacket(a), 280);
  scheduler_.runAll();
  ASSERT_EQ(probe(b).receptions.size(), 1u);
  EXPECT_EQ(probe(b).receptions[0].from, a);
  EXPECT_FALSE(probe(b).receptions[0].corrupted);
  EXPECT_EQ(probe(b).receptions[0].at, end);
}

TEST_F(ChannelTest, OutOfRangeNodeHearsNothing) {
  Channel& ch = makeChannel();
  const HostId a = addNode({0, 0});
  const HostId far = addNode({501, 0});
  ch.transmit(a, dataPacket(a), 280);
  scheduler_.runAll();
  EXPECT_TRUE(probe(far).receptions.empty());
  EXPECT_EQ(probe(far).busyEvents, 0);
}

TEST_F(ChannelTest, RangeBoundaryIsInclusive) {
  Channel& ch = makeChannel();
  const HostId a = addNode({0, 0});
  const HostId edge = addNode({500, 0});
  ch.transmit(a, dataPacket(a), 280);
  scheduler_.runAll();
  EXPECT_EQ(probe(edge).receptions.size(), 1u);
}

TEST_F(ChannelTest, TransmitterDoesNotReceiveItsOwnFrame) {
  Channel& ch = makeChannel();
  const HostId a = addNode({0, 0});
  ch.transmit(a, dataPacket(a), 280);
  scheduler_.runAll();
  EXPECT_TRUE(probe(a).receptions.empty());
  EXPECT_EQ(probe(a).txCompleted, 1);
}

TEST_F(ChannelTest, CarrierBusyDuringTransmission) {
  Channel& ch = makeChannel();
  const HostId a = addNode({0, 0});
  const HostId b = addNode({100, 0});
  EXPECT_FALSE(ch.carrierBusy(b));
  ch.transmit(a, dataPacket(a), 280);
  EXPECT_TRUE(ch.carrierBusy(a));   // own transmission asserts energy at once
  EXPECT_FALSE(ch.carrierBusy(b));  // ...but b can't sense it yet (RF delay)
  scheduler_.runUntil(sim::kTimeZero + PhyParams{}.carrierSenseDelay);
  EXPECT_TRUE(ch.carrierBusy(b));
  EXPECT_TRUE(ch.isTransmitting(a));
  scheduler_.runAll();
  EXPECT_FALSE(ch.carrierBusy(a));
  EXPECT_FALSE(ch.carrierBusy(b));
  EXPECT_FALSE(ch.isTransmitting(a));
  EXPECT_EQ(probe(b).busyEvents, 1);
  EXPECT_EQ(probe(b).idleEvents, 1);
}

TEST_F(ChannelTest, OverlappingFramesCollideAtCommonReceiver) {
  Channel& ch = makeChannel();
  const HostId a = addNode({0, 0});
  const HostId b = addNode({900, 0});    // hidden from a (dist 900 > 500)
  const HostId mid = addNode({450, 0});  // hears both
  ch.transmit(a, dataPacket(a), 280);
  scheduler_.runUntil(sim::TimePoint{100});  // b starts mid-frame: hidden-terminal collision
  ch.transmit(b, dataPacket(b), 280);
  scheduler_.runAll();
  ASSERT_EQ(probe(mid).receptions.size(), 2u);
  EXPECT_TRUE(probe(mid).receptions[0].corrupted);
  EXPECT_TRUE(probe(mid).receptions[1].corrupted);
}

TEST_F(ChannelTest, NonOverlappingFramesBothDeliver) {
  Channel& ch = makeChannel();
  const HostId a = addNode({0, 0});
  const HostId b = addNode({900, 0});
  const HostId mid = addNode({450, 0});
  const sim::TimePoint end = ch.transmit(a, dataPacket(a), 280);
  scheduler_.runUntil(end);  // a's frame completed
  ch.transmit(b, dataPacket(b), 280);
  scheduler_.runAll();
  ASSERT_EQ(probe(mid).receptions.size(), 2u);
  EXPECT_FALSE(probe(mid).receptions[0].corrupted);
  EXPECT_FALSE(probe(mid).receptions[1].corrupted);
}

TEST_F(ChannelTest, CollisionIsLocalToOverlapArea) {
  // d hears only b, so b's frame is intact there even though it collided
  // with a's frame at mid.
  Channel& ch = makeChannel();
  const HostId a = addNode({0, 0});
  const HostId b = addNode({900, 0});
  addNode({450, 0});                       // mid: collision zone
  const HostId d = addNode({1300, 0});     // only in b's range
  ch.transmit(a, dataPacket(a), 280);
  scheduler_.runUntil(sim::TimePoint{100});
  ch.transmit(b, dataPacket(b), 280);
  scheduler_.runAll();
  ASSERT_EQ(probe(d).receptions.size(), 1u);
  EXPECT_EQ(probe(d).receptions[0].from, b);
  EXPECT_FALSE(probe(d).receptions[0].corrupted);
}

TEST_F(ChannelTest, HalfDuplexTransmitterLosesIncomingFrame) {
  Channel& ch = makeChannel();
  const HostId a = addNode({0, 0});
  const HostId b = addNode({400, 0});
  ch.transmit(a, dataPacket(a), 280);
  scheduler_.runUntil(sim::TimePoint{50});
  ch.transmit(b, dataPacket(b), 280);  // b starts while a's frame arrives
  scheduler_.runAll();
  // b was transmitting during part of a's frame: the frame is corrupt at b.
  ASSERT_EQ(probe(b).receptions.size(), 1u);
  EXPECT_TRUE(probe(b).receptions[0].corrupted);
  // and symmetric: a transmitting while b's frame arrives.
  ASSERT_EQ(probe(a).receptions.size(), 1u);
  EXPECT_TRUE(probe(a).receptions[0].corrupted);
}

TEST_F(ChannelTest, BusyIdleTransitionsCountOverlaps) {
  Channel& ch = makeChannel();
  const HostId a = addNode({0, 0});
  const HostId b = addNode({200, 0});
  const HostId c = addNode({400, 0});
  ch.transmit(a, dataPacket(a), 280);
  scheduler_.runUntil(sim::TimePoint{100});
  ch.transmit(b, dataPacket(b), 280);
  scheduler_.runAll();
  // c heard both overlapping frames: exactly one busy->idle cycle.
  EXPECT_EQ(probe(c).busyEvents, 1);
  EXPECT_EQ(probe(c).idleEvents, 1);
  EXPECT_EQ(probe(c).receptions.size(), 2u);
}

TEST_F(ChannelTest, CollisionsDisabledDeliversOverlappingFrames) {
  Channel& ch = makeChannel();
  ch.setCollisionsEnabled(false);
  const HostId a = addNode({0, 0});
  const HostId b = addNode({900, 0});
  const HostId mid = addNode({450, 0});
  ch.transmit(a, dataPacket(a), 280);
  scheduler_.runUntil(sim::TimePoint{100});
  ch.transmit(b, dataPacket(b), 280);
  scheduler_.runAll();
  ASSERT_EQ(probe(mid).receptions.size(), 2u);
  EXPECT_FALSE(probe(mid).receptions[0].corrupted);
  EXPECT_FALSE(probe(mid).receptions[1].corrupted);
}

TEST_F(ChannelTest, StatisticsCounters) {
  Channel& ch = makeChannel();
  const HostId a = addNode({0, 0});
  const HostId b = addNode({900, 0});
  addNode({450, 0});
  ch.transmit(a, dataPacket(a), 280);
  scheduler_.runUntil(sim::TimePoint{100});
  ch.transmit(b, dataPacket(b), 280);
  scheduler_.runAll();
  EXPECT_EQ(ch.framesTransmitted(), 2u);
  // mid got 2 corrupted; a and b each got 1 corrupted (half-duplex? no --
  // a and b are out of range of each other). So only mid's two receptions.
  EXPECT_EQ(ch.framesCorrupted(), 2u);
  EXPECT_EQ(ch.framesDelivered(), 0u);
}

TEST_F(ChannelTest, NodesInRangeExcludesSelf) {
  Channel& ch = makeChannel();
  const HostId a = addNode({0, 0});
  const HostId b = addNode({300, 0});
  addNode({5000, 5000});
  const auto inRange = ch.nodesInRange(a);
  ASSERT_EQ(inRange.size(), 1u);
  EXPECT_EQ(inRange[0], b);
}

TEST_F(ChannelTest, SnapshotPositions) {
  makeChannel();
  addNode({1, 2});
  addNode({3, 4});
  const auto snap = channel_->snapshotPositions();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0], (geom::Vec2{1, 2}));
  EXPECT_EQ(snap[1], (geom::Vec2{3, 4}));
}

TEST_F(ChannelTest, PositionFunctionIsLive) {
  Channel& ch = makeChannel();
  geom::Vec2 pos{0, 0};
  probes_.push_back(std::make_unique<Probe>());
  ch.attach(HostId{0}, probes_.back().get(), [&pos] { return pos; });
  EXPECT_EQ(ch.positionOf(HostId{0}), (geom::Vec2{0, 0}));
  pos = {9, 9};
  EXPECT_EQ(ch.positionOf(HostId{0}), (geom::Vec2{9, 9}));
}

TEST_F(ChannelTest, ThreeWayCollisionCorruptsEverything) {
  Channel& ch = makeChannel();
  const HostId a = addNode({0, 0});
  const HostId b = addNode({0, 600});
  const HostId c = addNode({600, 0});
  const HostId mid = addNode({300, 300});  // in range of all three
  // a-b, a-c, b-c pairwise distances are 600+ m: mutually hidden.
  ch.transmit(a, dataPacket(a), 280);
  scheduler_.runUntil(sim::TimePoint{10});
  ch.transmit(b, dataPacket(b), 280);
  scheduler_.runUntil(sim::TimePoint{20});
  ch.transmit(c, dataPacket(c), 280);
  scheduler_.runAll();
  ASSERT_EQ(probe(mid).receptions.size(), 3u);
  for (const auto& rx : probe(mid).receptions) EXPECT_TRUE(rx.corrupted);
}

TEST_F(ChannelTest, DoubleAttachIsRejected) {
  Channel& ch = makeChannel();
  addNode({0, 0});
  Probe extra;
  EXPECT_DEATH(ch.attach(HostId{0}, &extra, [] { return geom::Vec2{}; }),
               "Precondition");
}

TEST_F(ChannelTest, TransmitWhileTransmittingIsRejected) {
  Channel& ch = makeChannel();
  const HostId a = addNode({0, 0});
  ch.transmit(a, dataPacket(a), 280);
  EXPECT_DEATH(ch.transmit(a, dataPacket(a), 280), "Precondition");
}

}  // namespace
}  // namespace manet::phy
