#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "util/env.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

namespace manet::util {
namespace {

// ------------------------------------------------------------------ table

TEST(Table, AlignsColumns) {
  Table t({"name", "value"});
  t.addRow({"a", "1"});
  t.addRow({"longer", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string text = os.str();
  // Header and both rows present; separator line present.
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("longer"), std::string::npos);
  EXPECT_NE(text.find("-----"), std::string::npos);
  // Each line ends right after the last cell (no trailing padding).
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (!line.empty()) {
      EXPECT_NE(line.back(), ' ');
    }
  }
}

TEST(Table, CsvOutput) {
  Table t({"a", "b", "c"});
  t.addRow({"1", "2", "3"});
  std::ostringstream os;
  t.printCsv(os);
  EXPECT_EQ(os.str(), "a,b,c\n1,2,3\n");
}

TEST(Table, RowCount) {
  Table t({"x"});
  EXPECT_EQ(t.rowCount(), 0u);
  t.addRow({"1"});
  t.addRow({"2"});
  EXPECT_EQ(t.rowCount(), 2u);
}

TEST(TableDeath, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_DEATH(t.addRow({"only-one"}), "Precondition");
}

TEST(TableDeath, RejectsEmptyHeader) {
  EXPECT_DEATH(Table({}), "Precondition");
}

TEST(Format, FixedDigits) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(2.0, 0), "2");
  EXPECT_EQ(fmt(-0.5, 1), "-0.5");
}

TEST(Format, Percent) {
  EXPECT_EQ(fmtPercent(0.5), "50.0%");
  EXPECT_EQ(fmtPercent(1.0, 0), "100%");
  EXPECT_EQ(fmtPercent(0.123, 1), "12.3%");
}

// -------------------------------------------------------------------- env

TEST(Env, IntFallbacks) {
  unsetenv("MANET_TEST_ENV_X");
  EXPECT_EQ(envInt("MANET_TEST_ENV_X", 42), 42);
  setenv("MANET_TEST_ENV_X", "17", 1);
  EXPECT_EQ(envInt("MANET_TEST_ENV_X", 42), 17);
  setenv("MANET_TEST_ENV_X", "not-a-number", 1);
  EXPECT_EQ(envInt("MANET_TEST_ENV_X", 42), 42);
  setenv("MANET_TEST_ENV_X", "", 1);
  EXPECT_EQ(envInt("MANET_TEST_ENV_X", 42), 42);
  unsetenv("MANET_TEST_ENV_X");
}

TEST(Env, NegativeInt) {
  setenv("MANET_TEST_ENV_N", "-5", 1);
  EXPECT_EQ(envInt("MANET_TEST_ENV_N", 0), -5);
  unsetenv("MANET_TEST_ENV_N");
}

TEST(Env, DoubleParsing) {
  setenv("MANET_TEST_ENV_D", "2.5", 1);
  EXPECT_DOUBLE_EQ(envDouble("MANET_TEST_ENV_D", 1.0), 2.5);
  unsetenv("MANET_TEST_ENV_D");
  EXPECT_DOUBLE_EQ(envDouble("MANET_TEST_ENV_D", 1.0), 1.0);
}

TEST(Env, StringPresence) {
  unsetenv("MANET_TEST_ENV_S");
  EXPECT_FALSE(envString("MANET_TEST_ENV_S").has_value());
  setenv("MANET_TEST_ENV_S", "hello", 1);
  EXPECT_EQ(envString("MANET_TEST_ENV_S").value(), "hello");
  unsetenv("MANET_TEST_ENV_S");
}

// -------------------------------------------------------------------- log

TEST(Log, ThresholdFiltersLevels) {
  const LogLevel old = logLevel();
  setLogLevel(LogLevel::kError);
  EXPECT_EQ(logLevel(), LogLevel::kError);
  // These must not crash (output is discarded below the threshold).
  logInfo("discarded ", 1);
  logDebug("discarded ", 2.5);
  logWarn("discarded");
  setLogLevel(LogLevel::kOff);
  log(LogLevel::kError, "also discarded");
  setLogLevel(old);
}

TEST(Log, ComposesArguments) {
  // Exercise the variadic formatting path with the threshold open; we can't
  // capture stderr portably here, so this is a smoke test.
  const LogLevel old = logLevel();
  setLogLevel(LogLevel::kOff);
  log(LogLevel::kError, "x=", 42, " y=", 1.5, " z=", "str");
  setLogLevel(old);
}

}  // namespace
}  // namespace manet::util
