// Fault-injection subsystem tests (DESIGN.md §8): loss model semantics,
// churn timeline generation, env overrides, crash/recover integration, and
// the bit-identity guarantees (faults off == pre-fault simulator; identical
// runs are identical).
#include "fault/churn.hpp"
#include "fault/config.hpp"
#include "fault/loss.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

#include "experiment/runner.hpp"
#include "experiment/world.hpp"
#include "sim/time.hpp"
#include "trace/recorder.hpp"

namespace manet::fault {
namespace {

using sim::kSecond;

constexpr net::HostId N(std::uint32_t id) { return net::HostId{id}; }
constexpr sim::TimePoint T(sim::Duration sinceStart) {
  return sim::kTimeZero + sinceStart;
}

// ------------------------------------------------------------ loss models

TEST(IidLoss, ZeroAndOneAreDegenerate) {
  IidLoss never(0.0, sim::Rng(1));
  IidLoss always(1.0, sim::Rng(1));
  for (int i = 0; i < 200; ++i) {
    EXPECT_FALSE(never.shouldDrop(N(0), N(1)));
    EXPECT_TRUE(always.shouldDrop(N(0), N(1)));
  }
}

TEST(IidLoss, RateTracksPer) {
  IidLoss loss(0.3, sim::Rng(7));
  int drops = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) drops += loss.shouldDrop(N(0), N(1)) ? 1 : 0;
  const double rate = static_cast<double>(drops) / n;
  EXPECT_NEAR(rate, 0.3, 0.02);
}

TEST(GilbertElliott, StaysGoodWhenTransitionsAreOff) {
  FaultConfig config;
  config.loss = FaultConfig::Loss::kGilbertElliott;
  config.geLossGood = 0.0;
  config.geGoodToBad = 0.0;
  GilbertElliottLoss loss(config, sim::Rng(3));
  for (int i = 0; i < 500; ++i) EXPECT_FALSE(loss.shouldDrop(N(0), N(1)));
  EXPECT_FALSE(loss.linkBad(N(0), N(1)));
}

TEST(GilbertElliott, AbsorbingBadStateDropsEverythingAfterFirstDraw) {
  FaultConfig config;
  config.loss = FaultConfig::Loss::kGilbertElliott;
  config.geLossGood = 0.0;
  config.geLossBad = 1.0;
  config.geGoodToBad = 1.0;  // flip to Bad right after the first draw
  config.geBadToGood = 0.0;  // and never come back
  GilbertElliottLoss loss(config, sim::Rng(3));
  EXPECT_FALSE(loss.shouldDrop(N(0), N(1)));  // drawn in the Good start state
  EXPECT_TRUE(loss.linkBad(N(0), N(1)));
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(loss.shouldDrop(N(0), N(1)));
}

TEST(GilbertElliott, PerLinkStateIsIndependentOfQueryOrder) {
  FaultConfig config;
  config.loss = FaultConfig::Loss::kGilbertElliott;
  config.geLossBad = 0.9;
  config.geGoodToBad = 0.3;
  config.geBadToGood = 0.3;

  // Model A: all of link (0,1) first, then all of link (2,3). Model B:
  // interleaved. Per-(src,dst) forked streams make the sequences equal.
  GilbertElliottLoss a(config, sim::Rng(11));
  GilbertElliottLoss b(config, sim::Rng(11));
  std::vector<bool> a01, a23, b01, b23;
  for (int i = 0; i < 50; ++i) a01.push_back(a.shouldDrop(N(0), N(1)));
  for (int i = 0; i < 50; ++i) a23.push_back(a.shouldDrop(N(2), N(3)));
  for (int i = 0; i < 50; ++i) {
    b23.push_back(b.shouldDrop(N(2), N(3)));
    b01.push_back(b.shouldDrop(N(0), N(1)));
  }
  EXPECT_EQ(a01, b01);
  EXPECT_EQ(a23, b23);
}

TEST(GilbertElliott, DirectedLinksAreDistinct) {
  FaultConfig config;
  config.loss = FaultConfig::Loss::kGilbertElliott;
  config.geLossBad = 1.0;
  config.geGoodToBad = 0.5;
  config.geBadToGood = 0.5;
  GilbertElliottLoss loss(config, sim::Rng(5));
  // Drive (0,1) into a mixed state; (1,0) must still start Good.
  for (int i = 0; i < 20; ++i) loss.shouldDrop(N(0), N(1));
  EXPECT_FALSE(loss.linkBad(N(1), N(0)));
}

TEST(MakeLossModel, NoneYieldsNull) {
  EXPECT_EQ(makeLossModel(FaultConfig{}, sim::Rng(1)), nullptr);
  FaultConfig iid;
  iid.loss = FaultConfig::Loss::kIid;
  iid.per = 0.5;
  EXPECT_STREQ(makeLossModel(iid, sim::Rng(1))->name(), "iid");
  FaultConfig ge;
  ge.loss = FaultConfig::Loss::kGilbertElliott;
  EXPECT_STREQ(makeLossModel(ge, sim::Rng(1))->name(), "gilbert_elliott");
}

// ---------------------------------------------------------------- churn

TEST(ChurnTimeline, ScriptIsFilteredAndSorted) {
  FaultConfig config;
  config.script = {
      {N(2), T(5 * kSecond), true},
      {N(0), T(1 * kSecond), false},
      {N(9), T(1 * kSecond), false},   // node out of range: dropped
      {N(1), T(99 * kSecond), false},  // past horizon: dropped
      {N(2), T(1 * kSecond), false},
  };
  const auto timeline =
      buildChurnTimeline(config, /*numHosts=*/3, /*horizon=*/T(10 * kSecond),
                         sim::Rng(1));
  ASSERT_EQ(timeline.size(), 3u);
  EXPECT_EQ(timeline[0].node, N(0));
  EXPECT_EQ(timeline[1].node, N(2));
  EXPECT_FALSE(timeline[1].up);
  EXPECT_EQ(timeline[2].at, T(5 * kSecond));
  EXPECT_TRUE(timeline[2].up);
}

TEST(ChurnTimeline, RandomScheduleAlternatesPerHost) {
  FaultConfig config;
  config.churn = true;
  config.churnFraction = 1.0;
  config.meanUpTime = 2 * kSecond;
  config.meanDownTime = 1 * kSecond;
  const sim::TimePoint horizon = T(60 * kSecond);
  const auto timeline = buildChurnTimeline(config, 4, horizon, sim::Rng(9));
  EXPECT_FALSE(timeline.empty());
  // Per host: first transition is a crash, then strict down/up alternation
  // at strictly increasing times within the horizon.
  for (std::uint32_t host = 0; host < 4; ++host) {
    bool expectUp = false;
    sim::TimePoint last = sim::kNever;
    for (const ChurnEvent& ev : timeline) {
      if (ev.node != N(host)) continue;
      EXPECT_EQ(ev.up, expectUp);
      EXPECT_GT(ev.at, last);
      EXPECT_LT(ev.at, horizon);
      last = ev.at;
      expectUp = !expectUp;
    }
    EXPECT_GE(last, sim::kTimeZero) << "host " << host << " never churned";
  }
  // Deterministic: same inputs, same timeline.
  const auto again = buildChurnTimeline(config, 4, horizon, sim::Rng(9));
  ASSERT_EQ(again.size(), timeline.size());
  for (std::size_t i = 0; i < timeline.size(); ++i) {
    EXPECT_EQ(again[i].node, timeline[i].node);
    EXPECT_EQ(again[i].at, timeline[i].at);
    EXPECT_EQ(again[i].up, timeline[i].up);
  }
}

TEST(ChurnTimeline, ZeroFractionIsEmpty) {
  FaultConfig config;
  config.churn = true;
  config.churnFraction = 0.0;
  EXPECT_TRUE(
      buildChurnTimeline(config, 10, T(60 * kSecond), sim::Rng(1)).empty());
}

// ------------------------------------------------------------ env knobs

TEST(FaultConfigEnv, OverridesApply) {
  ::setenv("MANET_FAULT_LOSS", "ge", 1);
  ::setenv("MANET_FAULT_GE_LOSS_BAD", "0.5", 1);
  ::setenv("MANET_FAULT_CHURN", "1", 1);
  ::setenv("MANET_FAULT_UP_S", "7.5", 1);
  const FaultConfig out = FaultConfig{}.withEnvOverrides();
  ::unsetenv("MANET_FAULT_LOSS");
  ::unsetenv("MANET_FAULT_GE_LOSS_BAD");
  ::unsetenv("MANET_FAULT_CHURN");
  ::unsetenv("MANET_FAULT_UP_S");
  EXPECT_EQ(out.loss, FaultConfig::Loss::kGilbertElliott);
  EXPECT_DOUBLE_EQ(out.geLossBad, 0.5);
  EXPECT_TRUE(out.churn);
  EXPECT_EQ(out.meanUpTime, sim::scaleTrunc(kSecond, 7.5));
  EXPECT_TRUE(out.enabled());
}

TEST(FaultConfigEnv, BarePerImpliesIid) {
  ::setenv("MANET_FAULT_PER", "0.25", 1);
  const FaultConfig out = FaultConfig{}.withEnvOverrides();
  ::unsetenv("MANET_FAULT_PER");
  EXPECT_EQ(out.loss, FaultConfig::Loss::kIid);
  EXPECT_DOUBLE_EQ(out.per, 0.25);
}

// ------------------------------------------------- world integration

experiment::ScenarioConfig lineConfig() {
  // 0 -- 1 -- 2 chain (500 m radius): 0 and 2 only connect through 1.
  experiment::ScenarioConfig c;
  c.fixedPositions = {{0, 0}, {400, 0}, {800, 0}};
  c.scheme = experiment::SchemeSpec::flooding();
  c.mapUnits = 11;
  c.numBroadcasts = 0;
  c.seed = 5;
  return c;
}

TEST(FaultWorld, PerZeroIsBitIdenticalToFaultsDisabled) {
  experiment::ScenarioConfig config;
  config.mapUnits = 3;
  config.numHosts = 30;
  config.numBroadcasts = 6;
  config.scheme = experiment::SchemeSpec::adaptiveCounter();
  config.seed = 17;

  experiment::ScenarioConfig faulty = config;
  faulty.fault.loss = FaultConfig::Loss::kIid;
  faulty.fault.per = 0.0;

  const auto plain = experiment::runScenario(config);
  const auto withHook = experiment::runScenario(faulty);
  EXPECT_FALSE(plain.faultsEnabled);
  EXPECT_TRUE(withHook.faultsEnabled);
  EXPECT_EQ(withHook.framesLostToFault, 0u);
  EXPECT_EQ(plain.framesTransmitted, withHook.framesTransmitted);
  EXPECT_EQ(plain.framesDelivered, withHook.framesDelivered);
  EXPECT_EQ(plain.framesCorrupted, withHook.framesCorrupted);
  EXPECT_EQ(plain.summary.meanRe, withHook.summary.meanRe);
  EXPECT_EQ(plain.summary.meanSrb, withHook.summary.meanSrb);
  EXPECT_EQ(plain.summary.meanLatencySeconds,
            withHook.summary.meanLatencySeconds);
}

TEST(FaultWorld, TotalLossStopsDeliveryAndCounts) {
  experiment::ScenarioConfig config = lineConfig();
  config.fault.loss = FaultConfig::Loss::kIid;
  config.fault.per = 1.0;
  experiment::World w(config);
  w.host(net::HostId{0}).originateBroadcast();
  w.scheduler().runUntil(T(1 * kSecond));
  EXPECT_EQ(w.channel().framesDelivered(), 0u);
  EXPECT_EQ(w.channel().framesLostToFault(), 1u);  // only host 1 is in range
  EXPECT_EQ(w.metrics().broadcasts().at(0).received, 0);
}

TEST(FaultWorld, CrashedRelayPartitionsTheChain) {
  experiment::World w(lineConfig());
  w.setHostUp(N(1), false);
  EXPECT_FALSE(w.hostUp(N(1)));
  // With the relay down, nobody is reachable from host 0.
  EXPECT_EQ(w.reachableFrom(N(0)), 0);
  w.host(net::HostId{0}).originateBroadcast();
  w.scheduler().runUntil(T(1 * kSecond));
  EXPECT_EQ(w.metrics().broadcasts().at(0).received, 0);

  // Recovery restores the path end to end.
  w.setHostUp(N(1), true);
  EXPECT_EQ(w.reachableFrom(N(0)), 2);
  w.host(net::HostId{0}).originateBroadcast();
  w.scheduler().runUntil(T(2 * kSecond));
  EXPECT_EQ(w.metrics().broadcasts().at(1).received, 2);
  EXPECT_NEAR(w.hostDownSeconds(), 1.0, 1e-9);
}

TEST(FaultWorld, CrashFlushesInFlightReceptionAndEmitsTrace) {
  experiment::ScenarioConfig config = lineConfig();
  trace::Recorder recorder;
  experiment::World w(config);
  w.setTraceSink(&recorder);
  w.host(net::HostId{0}).originateBroadcast();
  // Crash host 1 while the source's frame is still on the air (data frames
  // take ~2.4 ms at 1 Mb/s; 100 us is mid-flight).
  w.scheduler().schedule(sim::TimePoint{100}, [&w] { w.setHostUp(N(1), false); });
  w.scheduler().runUntil(T(1 * kSecond));
  EXPECT_EQ(w.channel().framesDroppedHostDown(), 1u);
  EXPECT_EQ(w.channel().framesDelivered(), 0u);
  EXPECT_EQ(recorder.countOf(trace::EventKind::kHostDown), 1u);
  EXPECT_EQ(recorder.countOfDrop(phy::DropReason::kHostDown), 1u);
}

TEST(FaultWorld, ScriptedChurnRunsDeterministically) {
  experiment::ScenarioConfig config;
  config.mapUnits = 3;
  config.numHosts = 25;
  config.numBroadcasts = 6;
  config.scheme = experiment::SchemeSpec::counter(3);
  config.seed = 23;
  config.fault.loss = FaultConfig::Loss::kGilbertElliott;
  config.fault.churn = true;
  config.fault.churnFraction = 0.4;
  config.fault.meanUpTime = 4 * kSecond;
  config.fault.meanDownTime = 2 * kSecond;

  const auto a = experiment::runScenario(config);
  const auto b = experiment::runScenario(config);
  EXPECT_TRUE(a.faultsEnabled);
  EXPECT_EQ(a.framesTransmitted, b.framesTransmitted);
  EXPECT_EQ(a.framesLostToFault, b.framesLostToFault);
  EXPECT_EQ(a.framesDroppedHostDown, b.framesDroppedHostDown);
  EXPECT_EQ(a.hostDownSeconds, b.hostDownSeconds);
  EXPECT_EQ(a.summary.meanRe, b.summary.meanRe);
  EXPECT_GT(a.hostDownSeconds, 0.0);
}

TEST(FaultWorld, FloodingToleratesLossBetterThanCounter) {
  // The acceptance claim behind bench/ext_fault: at PER=0.2 the flooding
  // scheme's redundancy keeps RE higher than a counter scheme that
  // suppresses the redundant rebroadcasts loss would have needed.
  experiment::ScenarioConfig config;
  config.mapUnits = 5;
  config.numHosts = 60;
  config.numBroadcasts = 12;
  config.seed = 29;
  config.fault.loss = FaultConfig::Loss::kIid;
  config.fault.per = 0.2;

  experiment::ScenarioConfig flooding = config;
  flooding.scheme = experiment::SchemeSpec::flooding();
  experiment::ScenarioConfig counter = config;
  counter.scheme = experiment::SchemeSpec::counter(3);

  const auto re = [](const experiment::ScenarioConfig& c) {
    return experiment::runScenario(c).re();
  };
  EXPECT_GE(re(flooding), re(counter));
}

}  // namespace
}  // namespace manet::fault
