#include <gtest/gtest.h>

#include <sstream>

#include "experiment/runner.hpp"
#include "experiment/world.hpp"
#include "trace/recorder.hpp"
#include "trace/timeline.hpp"
#include "trace/writer.hpp"

namespace manet::trace {
namespace {

constexpr net::BroadcastId B(std::uint32_t origin, std::uint32_t seq) {
  return net::BroadcastId{net::HostId{origin}, net::BroadcastSeq{seq}};
}

Event makeEvent(EventKind kind, std::int64_t at, std::uint32_t node,
                net::BroadcastId bid = {},
                std::uint32_t from = net::kInvalidHost.value()) {
  Event e;
  e.kind = kind;
  e.at = sim::TimePoint{at};
  e.node = net::HostId{node};
  e.bid = bid;
  e.from = net::HostId{from};
  return e;
}

// ------------------------------------------------------------- recorder

TEST(Recorder, StoresEventsInOrder) {
  Recorder r;
  r.onEvent(makeEvent(EventKind::kDelivered, 10, 1));
  r.onEvent(makeEvent(EventKind::kTxStarted, 20, 2));
  ASSERT_EQ(r.events().size(), 2u);
  EXPECT_EQ(r.events()[0].at, sim::TimePoint{10});
  EXPECT_EQ(r.events()[1].node, net::HostId{2});
}

TEST(Recorder, CountsByKind) {
  Recorder r;
  for (int i = 0; i < 3; ++i) {
    r.onEvent(makeEvent(EventKind::kDrop, i, 0));
  }
  r.onEvent(makeEvent(EventKind::kHelloSent, 5, 0));
  EXPECT_EQ(r.countOf(EventKind::kDrop), 3u);
  EXPECT_EQ(r.countOf(EventKind::kHelloSent), 1u);
  EXPECT_EQ(r.countOf(EventKind::kInhibited), 0u);
  EXPECT_EQ(r.totalSeen(), 4u);
}

TEST(Recorder, CountsDropsByReason) {
  Recorder r;
  Event e = makeEvent(EventKind::kDrop, 1, 0);
  e.drop = phy::DropReason::kCollision;
  r.onEvent(e);
  r.onEvent(e);
  e.drop = phy::DropReason::kFaultLoss;
  r.onEvent(e);
  e.drop = phy::DropReason::kHostDown;
  r.onEvent(e);
  EXPECT_EQ(r.countOfDrop(phy::DropReason::kCollision), 2u);
  EXPECT_EQ(r.countOfDrop(phy::DropReason::kFaultLoss), 1u);
  EXPECT_EQ(r.countOfDrop(phy::DropReason::kHostDown), 1u);
  EXPECT_EQ(r.countOfDrop(phy::DropReason::kHalfDuplex), 0u);
  EXPECT_EQ(r.countOf(EventKind::kDrop), 4u);
}

TEST(Recorder, FilterStillCounts) {
  Recorder r([](const Event& e) { return e.kind != EventKind::kHelloSent; });
  r.onEvent(makeEvent(EventKind::kHelloSent, 1, 0));
  r.onEvent(makeEvent(EventKind::kDelivered, 2, 0));
  EXPECT_EQ(r.events().size(), 1u);
  EXPECT_EQ(r.totalSeen(), 2u);
  EXPECT_EQ(r.countOf(EventKind::kHelloSent), 1u);
}

TEST(Recorder, StorageCapStopsStoringNotCounting) {
  Recorder r;
  r.setStorageCap(2);
  for (int i = 0; i < 5; ++i) {
    r.onEvent(makeEvent(EventKind::kDelivered, i, 0));
  }
  EXPECT_EQ(r.events().size(), 2u);
  EXPECT_EQ(r.totalSeen(), 5u);
}

TEST(Recorder, SelectFiltersKindAndBid) {
  Recorder r;
  const net::BroadcastId a = B(1, 0);
  const net::BroadcastId b = B(2, 0);
  r.onEvent(makeEvent(EventKind::kDelivered, 1, 5, a));
  r.onEvent(makeEvent(EventKind::kDelivered, 2, 6, b));
  r.onEvent(makeEvent(EventKind::kTxStarted, 3, 5, a));
  const auto sel = r.select(EventKind::kDelivered, a);
  ASSERT_EQ(sel.size(), 1u);
  EXPECT_EQ(sel[0].node, net::HostId{5});
}

TEST(TeeSink, FansOut) {
  Recorder a;
  Recorder b;
  TeeSink tee;
  tee.add(&a);
  tee.add(&b);
  tee.onEvent(makeEvent(EventKind::kDelivered, 1, 0));
  EXPECT_EQ(a.totalSeen(), 1u);
  EXPECT_EQ(b.totalSeen(), 1u);
}

// ------------------------------------------------------------- timeline

TEST(Timeline, BuildsFromHandcraftedEvents) {
  const net::BroadcastId bid = B(0, 0);
  std::vector<Event> events{
      makeEvent(EventKind::kBroadcastOriginated, 100, 0, bid),
      makeEvent(EventKind::kTxStarted, 150, 0, bid),
      makeEvent(EventKind::kTxFinished, 2582, 0, bid),
      makeEvent(EventKind::kDelivered, 2582, 1, bid, 0),
      makeEvent(EventKind::kTxStarted, 3000, 1, bid),
      makeEvent(EventKind::kTxFinished, 5432, 1, bid),
      makeEvent(EventKind::kDelivered, 5432, 2, bid, 1),
      makeEvent(EventKind::kDuplicateHeard, 6000, 2, bid, 1),
      makeEvent(EventKind::kInhibited, 6000, 2, bid),
  };
  const auto tl = buildTimeline(events, bid);
  ASSERT_TRUE(tl.has_value());
  EXPECT_EQ(tl->source, net::HostId{0});
  EXPECT_EQ(tl->originatedAt, sim::TimePoint{100});
  EXPECT_EQ(tl->receivedCount(), 2);
  EXPECT_EQ(tl->rebroadcastCount(), 1);
  EXPECT_EQ(tl->inhibitedCount(), 1);
  EXPECT_EQ(tl->completionTime, sim::Duration{6000 - 100});
  // Outcomes sorted by delivery time.
  EXPECT_EQ(tl->outcomes[0].node, net::HostId{1});
  EXPECT_EQ(tl->outcomes[1].node, net::HostId{2});
  EXPECT_EQ(tl->outcomes[1].duplicatesHeard, 1);
}

TEST(Timeline, MissingBroadcastGivesNullopt) {
  EXPECT_FALSE(buildTimeline({}, B(9, 9)).has_value());
}

TEST(Timeline, RenderMentionsCounts) {
  const net::BroadcastId bid = B(3, 7);
  std::vector<Event> events{
      makeEvent(EventKind::kBroadcastOriginated, 0, 3, bid),
      makeEvent(EventKind::kDelivered, 10, 4, bid, 3),
  };
  const auto tl = buildTimeline(events, bid);
  ASSERT_TRUE(tl.has_value());
  const std::string text = tl->render();
  EXPECT_NE(text.find("received 1"), std::string::npos);
  EXPECT_NE(text.find("host 4"), std::string::npos);
}

TEST(Timeline, BroadcastsInListsOrigins) {
  std::vector<Event> events{
      makeEvent(EventKind::kBroadcastOriginated, 0, 1, B(1, 0)),
      makeEvent(EventKind::kDelivered, 5, 2, B(1, 0)),
      makeEvent(EventKind::kBroadcastOriginated, 10, 2, B(2, 0)),
  };
  const auto bids = broadcastsIn(events);
  ASSERT_EQ(bids.size(), 2u);
  EXPECT_EQ(bids[0], B(1, 0));
  EXPECT_EQ(bids[1], B(2, 0));
}

// --------------------------------------------------------------- writer

TEST(Writer, CsvHasHeaderAndRows) {
  std::vector<Event> events{
      makeEvent(EventKind::kDelivered, 42, 1, B(0, 3), 0),
      makeEvent(EventKind::kHelloSent, 50, 2),
  };
  std::ostringstream os;
  writeCsv(os, events);
  const std::string text = os.str();
  EXPECT_NE(text.find("time_us,kind,node,origin,seq,from,x,y,reason"),
            std::string::npos);
  EXPECT_NE(text.find("42,delivered,1,0,3,0,"), std::string::npos);
  EXPECT_NE(text.find("50,hello,2,,,,"), std::string::npos);
}

TEST(Writer, CsvDropRowsCarryReason) {
  Event e = makeEvent(EventKind::kDrop, 10, 4, B(2, 1), 7);
  e.drop = phy::DropReason::kFaultLoss;
  std::ostringstream os;
  writeCsv(os, {&e, 1});
  EXPECT_NE(os.str().find("10,drop,4,2,1,7,0,0,fault_loss"),
            std::string::npos);
}

TEST(Writer, FormatEventIsReadable) {
  const std::string line =
      formatEvent(makeEvent(EventKind::kTxStarted, 7, 3, B(1, 2), 9));
  EXPECT_NE(line.find("tx_start"), std::string::npos);
  EXPECT_NE(line.find("node=3"), std::string::npos);
  EXPECT_NE(line.find("bid=(1,2)"), std::string::npos);
  EXPECT_NE(line.find("from=9"), std::string::npos);
}

TEST(EventKindNames, AllDistinct) {
  const EventKind kinds[] = {
      EventKind::kBroadcastOriginated, EventKind::kTxStarted,
      EventKind::kTxFinished,          EventKind::kDelivered,
      EventKind::kDuplicateHeard,      EventKind::kDrop,
      EventKind::kInhibited,           EventKind::kHelloSent,
      EventKind::kHostDown,            EventKind::kHostUp};
  for (const auto a : kinds) {
    for (const auto b : kinds) {
      if (a != b) {
        EXPECT_STRNE(eventKindName(a), eventKindName(b));
      }
    }
  }
}

// --------------------------------------------- integration with the world

TEST(TraceIntegration, FullRunEmitsConsistentEvents) {
  experiment::ScenarioConfig config;
  config.mapUnits = 3;
  config.numHosts = 30;
  config.numBroadcasts = 5;
  config.scheme = experiment::SchemeSpec::counter(2);
  config.seed = 8;

  Recorder recorder;
  experiment::World world(config);
  world.setTraceSink(&recorder);
  world.run();

  EXPECT_EQ(recorder.countOf(EventKind::kBroadcastOriginated), 5u);
  // Trace and metrics must agree on aggregate counts.
  const auto summary = world.metrics().summarize();
  std::uint64_t delivered = 0;
  for (const auto& pb : world.metrics().broadcasts()) {
    delivered += static_cast<std::uint64_t>(pb.received);
  }
  EXPECT_EQ(recorder.countOf(EventKind::kDelivered), delivered);
  EXPECT_EQ(recorder.countOf(EventKind::kTxStarted), summary.dataFramesSent);
  EXPECT_EQ(recorder.countOf(EventKind::kHelloSent), summary.hellosSent);
}

TEST(TraceIntegration, TracingDoesNotPerturbTheRun) {
  experiment::ScenarioConfig config;
  config.mapUnits = 5;
  config.numHosts = 40;
  config.numBroadcasts = 8;
  config.scheme = experiment::SchemeSpec::adaptiveLocation();
  config.seed = 13;

  experiment::World plain(config);
  plain.run();

  Recorder recorder;
  experiment::World traced(config);
  traced.setTraceSink(&recorder);
  traced.run();

  EXPECT_EQ(plain.channel().framesTransmitted(),
            traced.channel().framesTransmitted());
  EXPECT_DOUBLE_EQ(plain.metrics().summarize().meanRe,
                   traced.metrics().summarize().meanRe);
  EXPECT_GT(recorder.totalSeen(), 0u);
}

TEST(TraceIntegration, TimelineMatchesMetricsPerBroadcast) {
  experiment::ScenarioConfig config;
  config.mapUnits = 3;
  config.numHosts = 25;
  config.numBroadcasts = 4;
  config.scheme = experiment::SchemeSpec::counter(3);
  config.seed = 21;

  Recorder recorder;
  experiment::World world(config);
  world.setTraceSink(&recorder);
  world.run();

  for (const auto& pb : world.metrics().broadcasts()) {
    const auto tl = buildTimeline(recorder.events(), pb.bid);
    ASSERT_TRUE(tl.has_value());
    EXPECT_EQ(tl->receivedCount(), pb.received);
    EXPECT_EQ(tl->rebroadcastCount(), pb.rebroadcast);
  }
}

}  // namespace
}  // namespace manet::trace
