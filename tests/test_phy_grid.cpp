// Differential tests for the channel's spatial grid index: under mobility,
// across densities, the grid-backed range queries and transmit delivery sets
// must match the exhaustive-scan fallback exactly (DESIGN.md §7).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "experiment/runner.hpp"
#include "mobility/map.hpp"
#include "mobility/random_roam.hpp"
#include "net/packet.hpp"
#include "phy/channel.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"

namespace manet::phy {
namespace {

using net::HostId;

class Sink : public Channel::Listener {
 public:
  struct Rx {
    HostId from;
    bool corrupted;
    sim::TimePoint at;
    friend bool operator==(const Rx&, const Rx&) = default;
  };
  void onFrameReceived(const Frame& frame, DropReason drop) override {
    receptions.push_back({frame.src, drop != DropReason::kNone, frame.txEnd});
  }
  std::vector<Rx> receptions;
};

/// A channel full of random-roaming hosts whose position callbacks read the
/// scheduler clock — the same wiring the real World uses.
struct MobileFixture {
  MobileFixture(int hosts, int mapUnits, std::uint64_t seed) {
    const mobility::MapSpec map = mobility::MapSpec::square(mapUnits);
    sim::Rng master(seed);
    channel = std::make_unique<Channel>(scheduler, PhyParams{});
    for (int i = 0; i < hosts; ++i) {
      sim::Rng rng = master.fork(0xA000 + static_cast<std::uint64_t>(i));
      mobility::RoamParams roam;
      roam.maxSpeedMps = mobility::kmhToMps(10.0 * mapUnits);
      roam.minTurnDuration = 100 * sim::kMillisecond;
      roam.maxTurnDuration = 2 * sim::kSecond;
      models.push_back(std::make_unique<mobility::RandomRoam>(
          map, map.uniformPoint(rng), roam, rng.fork(0xA0)));
      sinks.push_back(std::make_unique<Sink>());
      mobility::MobilityModel* model = models.back().get();
      channel->attach(
          HostId{static_cast<std::uint32_t>(i)}, sinks.back().get(),
          [this, model] { return model->positionAt(scheduler.now()); });
    }
  }

  void advance(sim::Duration dt) {
    scheduler.schedule(scheduler.now() + dt, [] {});
    scheduler.runAll();
  }

  sim::Scheduler scheduler;
  std::unique_ptr<Channel> channel;
  std::vector<std::unique_ptr<mobility::MobilityModel>> models;
  std::vector<std::unique_ptr<Sink>> sinks;
};

TEST(PhyGridDifferential, NodesInRangeMatchesExhaustiveUnderMobility) {
  for (const int mapUnits : {1, 3, 7}) {
    for (const std::uint64_t seed : {11u, 12u}) {
      MobileFixture fx(60, mapUnits, seed);
      for (int epoch = 0; epoch < 25; ++epoch) {
        fx.advance(200 * sim::kMillisecond);
        for (int i = 0; i < 60; ++i) {
          const HostId id{static_cast<std::uint32_t>(i)};
          fx.channel->setGridEnabled(true);
          const auto viaGrid = fx.channel->nodesInRange(id);
          fx.channel->setGridEnabled(false);
          const auto viaScan = fx.channel->nodesInRange(id);
          ASSERT_EQ(viaGrid, viaScan)
              << "map " << mapUnits << " seed " << seed << " epoch " << epoch
              << " node " << i;
        }
      }
    }
  }
}

TEST(PhyGridDifferential, SnapshotPositionsMatchesExhaustive) {
  MobileFixture fx(40, 5, 21);
  for (int epoch = 0; epoch < 10; ++epoch) {
    fx.advance(500 * sim::kMillisecond);
    fx.channel->setGridEnabled(true);
    const auto viaGrid = fx.channel->snapshotPositions();
    fx.channel->setGridEnabled(false);
    const auto viaScan = fx.channel->snapshotPositions();
    ASSERT_EQ(viaGrid, viaScan);
  }
}

/// Runs the same randomized transmission schedule against a grid channel and
/// an exhaustive channel and asserts every node's reception log (sender,
/// corruption flag, timing) is identical.
TEST(PhyGridDifferential, TransmitDeliverySetsMatchExhaustive) {
  for (const int mapUnits : {1, 5}) {
    MobileFixture grid(50, mapUnits, 33);
    MobileFixture scan(50, mapUnits, 33);
    grid.channel->setGridEnabled(true);
    scan.channel->setGridEnabled(false);

    sim::Rng rng(99);
    for (int round = 0; round < 40; ++round) {
      const auto dt = rng.uniformDuration(sim::kMicrosecond, 5 * sim::kMillisecond);
      const HostId src{static_cast<std::uint32_t>(rng.uniformInt(0, 49))};
      for (MobileFixture* fx : {&grid, &scan}) {
        fx->advance(dt);
        if (!fx->channel->isTransmitting(src)) {
          fx->channel->transmit(src, net::makeDataPacket({src, net::BroadcastSeq{0}}, src), 280);
        }
        fx->scheduler.runAll();
      }
    }

    ASSERT_EQ(grid.channel->framesTransmitted(),
              scan.channel->framesTransmitted());
    EXPECT_EQ(grid.channel->framesDelivered(),
              scan.channel->framesDelivered());
    EXPECT_EQ(grid.channel->framesCorrupted(),
              scan.channel->framesCorrupted());
    for (int i = 0; i < 50; ++i) {
      ASSERT_EQ(grid.sinks[i]->receptions, scan.sinks[i]->receptions)
          << "map " << mapUnits << " node " << i;
    }
  }
}

/// Whole-simulation differential: a full scenario run must be bit-identical
/// with the grid on and off (same RNG draws, same event order, same metrics).
TEST(PhyGridDifferential, FullScenarioIsIdenticalWithGridOnAndOff) {
  experiment::ScenarioConfig config;
  config.mapUnits = 3;
  config.numHosts = 60;
  config.numBroadcasts = 8;
  config.scheme = experiment::SchemeSpec::adaptiveCounter();
  config.seed = 5;

  config.channelGrid = true;
  const experiment::RunResult withGrid = experiment::runScenario(config);
  config.channelGrid = false;
  const experiment::RunResult without = experiment::runScenario(config);

  EXPECT_EQ(withGrid.re(), without.re());
  EXPECT_EQ(withGrid.srb(), without.srb());
  EXPECT_EQ(withGrid.latency(), without.latency());
  EXPECT_EQ(withGrid.framesTransmitted, without.framesTransmitted);
  EXPECT_EQ(withGrid.framesDelivered, without.framesDelivered);
  EXPECT_EQ(withGrid.framesCorrupted, without.framesCorrupted);
  EXPECT_EQ(withGrid.summary.totalReceived, without.summary.totalReceived);
  EXPECT_EQ(withGrid.summary.totalRebroadcast,
            without.summary.totalRebroadcast);
  EXPECT_EQ(withGrid.summary.totalReachable, without.summary.totalReachable);
  EXPECT_EQ(withGrid.simulatedSeconds, without.simulatedSeconds);
}

TEST(PhyGrid, GridEnabledByDefault) {
  sim::Scheduler scheduler;
  Channel channel(scheduler, PhyParams{});
  EXPECT_TRUE(channel.gridEnabled());
}

/// Nodes attached after a query (fresh attach version) must show up without
/// waiting for time to advance.
TEST(PhyGrid, AttachInvalidatesCachedGrid) {
  sim::Scheduler scheduler;
  Channel channel(scheduler, PhyParams{});
  std::vector<std::unique_ptr<Sink>> sinks;
  auto add = [&](geom::Vec2 pos) {
    const HostId id{static_cast<std::uint32_t>(sinks.size())};
    sinks.push_back(std::make_unique<Sink>());
    channel.attach(id, sinks.back().get(), [pos] { return pos; });
    return id;
  };
  const HostId a = add({0, 0});
  EXPECT_TRUE(channel.nodesInRange(a).empty());  // builds the grid
  const HostId b = add({100, 0});                // same timestamp
  const auto inRange = channel.nodesInRange(a);
  ASSERT_EQ(inRange.size(), 1u);
  EXPECT_EQ(inRange[0], b);
}

}  // namespace
}  // namespace manet::phy
