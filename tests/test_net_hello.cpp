#include "net/hello.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mac/dcf.hpp"
#include "net/neighbor_table.hpp"
#include "phy/channel.hpp"
#include "sim/scheduler.hpp"

namespace manet::net {
namespace {

using sim::kSecond;

constexpr sim::TimePoint T(sim::Duration sinceStart) {
  return sim::kTimeZero + sinceStart;
}

class RecordingUpper : public mac::DcfMac::Upper {
 public:
  explicit RecordingUpper(sim::Scheduler& s) : scheduler_(s) {}
  void onTxStarted(mac::DcfMac::TxId, const Packet& p) override {
    if (p.type == PacketType::kHello) {
      helloStartTimes.push_back(scheduler_.now());
      lastHello = p;
    }
  }
  void onTxFinished(mac::DcfMac::TxId, const Packet&) override {}
  void onReceive(const phy::Frame& frame) override {
    if (frame.packet->type == PacketType::kHello) {
      received.push_back(*frame.packet);
    }
  }

  std::vector<sim::TimePoint> helloStartTimes;
  std::vector<Packet> received;
  Packet lastHello;

 private:
  sim::Scheduler& scheduler_;
};

class HelloTest : public ::testing::Test {
 protected:
  HelloTest() : channel_(scheduler_, phy::PhyParams{}) {}

  struct Station {
    std::unique_ptr<RecordingUpper> upper;
    std::unique_ptr<mac::DcfMac> mac;
    std::unique_ptr<NeighborTable> table;
    std::unique_ptr<HelloAgent> agent;
  };

  Station& addStation(geom::Vec2 pos, HelloConfig config,
                      std::uint64_t seed = 1) {
    const HostId id{static_cast<std::uint32_t>(stations_.size())};
    auto st = std::make_unique<Station>();
    st->upper = std::make_unique<RecordingUpper>(scheduler_);
    st->mac = std::make_unique<mac::DcfMac>(
        scheduler_, channel_, id, [pos] { return pos; }, sim::Rng(seed),
        mac::MacParams{}, st->upper.get());
    st->table = std::make_unique<NeighborTable>();
    st->agent = std::make_unique<HelloAgent>(scheduler_, *st->mac, *st->table,
                                             config, sim::Rng(seed + 100));
    stations_.push_back(std::move(st));
    return *stations_.back();
  }

  sim::Scheduler scheduler_;
  phy::Channel channel_;
  std::vector<std::unique_ptr<Station>> stations_;
};

TEST_F(HelloTest, DisabledAgentSendsNothing) {
  HelloConfig cfg;
  cfg.enabled = false;
  Station& s = addStation({0, 0}, cfg);
  s.agent->start();
  scheduler_.runUntil(T(30 * kSecond));
  EXPECT_EQ(s.agent->hellosSent(), 0u);
}

TEST_F(HelloTest, FixedIntervalBeaconing) {
  HelloConfig cfg;
  cfg.interval = 2 * kSecond;
  cfg.startJitter = sim::kMicrosecond;  // effectively immediate
  Station& s = addStation({0, 0}, cfg);
  s.agent->start();
  scheduler_.runUntil(T(10 * kSecond));
  // ~5 hellos in 10 s at a 2 s interval.
  EXPECT_GE(s.agent->hellosSent(), 4u);
  EXPECT_LE(s.agent->hellosSent(), 6u);
  ASSERT_GE(s.upper->helloStartTimes.size(), 2u);
  const sim::Duration gap =
      s.upper->helloStartTimes[1] - s.upper->helloStartTimes[0];
  EXPECT_NEAR(static_cast<double>(gap.ticks()),
              static_cast<double>((2 * kSecond).ticks()),
              static_cast<double>((100 * sim::kMillisecond).ticks()));
}

TEST_F(HelloTest, StartJitterStaggersFirstHello) {
  HelloConfig cfg;
  cfg.startJitter = 1 * kSecond;
  Station& a = addStation({0, 0}, cfg, 1);
  Station& b = addStation({5000, 5000}, cfg, 2);
  a.agent->start();
  b.agent->start();
  scheduler_.runUntil(T(3 * kSecond));
  ASSERT_FALSE(a.upper->helloStartTimes.empty());
  ASSERT_FALSE(b.upper->helloStartTimes.empty());
  EXPECT_NE(a.upper->helloStartTimes[0], b.upper->helloStartTimes[0]);
}

TEST_F(HelloTest, NeighborsLearnEachOther) {
  HelloConfig cfg;
  Station& a = addStation({0, 0}, cfg, 1);
  Station& b = addStation({300, 0}, cfg, 2);
  a.agent->start();
  b.agent->start();
  scheduler_.runUntil(T(5 * kSecond));
  // Receptions feed the tables through the owning host in production; here
  // we verify the frames arrive and carry the right announcements.
  ASSERT_FALSE(a.upper->received.empty());
  EXPECT_EQ(a.upper->received[0].sender, HostId{1});
  EXPECT_EQ(a.upper->received[0].helloInterval, cfg.interval);
}

TEST_F(HelloTest, PiggybackCarriesNeighborList) {
  HelloConfig cfg;
  cfg.piggybackNeighbors = true;
  Station& a = addStation({0, 0}, cfg, 1);
  a.agent->start();
  // Seed a's table so the next hello advertises it.
  Packet h;
  h.type = PacketType::kHello;
  h.helloInterval = 30 * kSecond;
  a.table->onHello(HostId{42}, h, sim::kTimeZero);
  scheduler_.runUntil(T(5 * kSecond));
  EXPECT_EQ(a.upper->lastHello.helloNeighbors, (std::vector<HostId>{HostId{42}}));
}

TEST_F(HelloTest, PiggybackDisabledSendsEmptyList) {
  HelloConfig cfg;
  cfg.piggybackNeighbors = false;
  Station& a = addStation({0, 0}, cfg, 1);
  Packet h;
  h.type = PacketType::kHello;
  h.helloInterval = 30 * kSecond;
  a.table->onHello(HostId{42}, h, sim::kTimeZero);
  a.agent->start();
  scheduler_.runUntil(T(5 * kSecond));
  EXPECT_TRUE(a.upper->lastHello.helloNeighbors.empty());
}

TEST_F(HelloTest, StopHaltsBeaconing) {
  HelloConfig cfg;
  Station& a = addStation({0, 0}, cfg);
  a.agent->start();
  scheduler_.runUntil(T(3 * kSecond));
  const auto sent = a.agent->hellosSent();
  a.agent->stop();
  scheduler_.runUntil(T(30 * kSecond));
  EXPECT_EQ(a.agent->hellosSent(), sent);
}

// --- the DHI formula itself (§4.3), as a pure function ---

TEST(DynamicInterval, HighVariationSelectsMinimum) {
  HelloConfig cfg;
  cfg.dynamic = true;
  EXPECT_EQ(HelloAgent::dynamicInterval(cfg, 0.02), cfg.intervalMin);
  EXPECT_EQ(HelloAgent::dynamicInterval(cfg, 0.5), cfg.intervalMin);
}

TEST(DynamicInterval, ZeroVariationSelectsMaximum) {
  HelloConfig cfg;
  cfg.dynamic = true;
  EXPECT_EQ(HelloAgent::dynamicInterval(cfg, 0.0), cfg.intervalMax);
}

TEST(DynamicInterval, LinearInBetween) {
  HelloConfig cfg;
  cfg.dynamic = true;
  cfg.intervalMin = 1 * kSecond;
  cfg.intervalMax = 10 * kSecond;
  cfg.nvMax = 0.02;
  // nv = 0.01 -> (0.02-0.01)/0.02 * 10 s = 5 s.
  EXPECT_EQ(HelloAgent::dynamicInterval(cfg, 0.01), 5 * kSecond);
  // nv = 0.015 -> 2.5 s.
  EXPECT_EQ(HelloAgent::dynamicInterval(cfg, 0.015),
            2 * kSecond + 500 * sim::kMillisecond);
}

TEST(DynamicInterval, ClampedToMinimum) {
  HelloConfig cfg;
  cfg.dynamic = true;
  cfg.intervalMin = 4 * kSecond;
  cfg.intervalMax = 10 * kSecond;
  // nv close to nvMax would give < intervalMin without the clamp.
  EXPECT_EQ(HelloAgent::dynamicInterval(cfg, 0.019), 4 * kSecond);
}

TEST_F(HelloTest, DynamicAgentAnnouncesItsInterval) {
  HelloConfig cfg;
  cfg.dynamic = true;
  Station& a = addStation({0, 0}, cfg, 1);
  a.agent->start();
  scheduler_.runUntil(T(2 * kSecond));
  // Stable (empty-window) neighborhood: nv = 0 -> interval = max.
  EXPECT_EQ(a.agent->currentInterval(), cfg.intervalMax);
  EXPECT_EQ(a.upper->lastHello.helloInterval, cfg.intervalMax);
}

TEST_F(HelloTest, DynamicAgentShortensIntervalUnderChurn) {
  HelloConfig cfg;
  cfg.dynamic = true;
  Station& a = addStation({0, 0}, cfg, 1);
  // Simulate heavy churn: many short-lived entries.
  for (int i = 0; i < 10; ++i) {
    Packet h;
    h.type = PacketType::kHello;
    h.helloInterval = 100 * sim::kMillisecond;
    a.table->onHello(HostId{static_cast<std::uint32_t>(100 + i)}, h,
                     sim::TimePoint{static_cast<std::int64_t>(i) * 10});
  }
  a.agent->start();
  scheduler_.runUntil(T(2 * kSecond));  // entries expire fast: joins + leaves
  EXPECT_LT(a.agent->currentInterval(), cfg.intervalMax);
}

}  // namespace
}  // namespace manet::net
