// Determinism and pool-machinery tests for the parallel experiment runner:
// a sweep must produce byte-identical output for any thread count.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>
#include <vector>

#include "experiment/parallel.hpp"
#include "experiment/runner.hpp"
#include "experiment/sweep.hpp"
#include "net/packet_pool.hpp"

namespace manet::experiment {
namespace {

TEST(WorkerPool, RunsEveryJobExactlyOnce) {
  std::atomic<int> counter{0};
  {
    WorkerPool pool(4);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&counter] { ++counter; });
    }
    pool.wait();
    EXPECT_EQ(counter.load(), 100);
  }
}

TEST(WorkerPool, DestructorDrainsOutstandingJobs) {
  std::atomic<int> counter{0};
  {
    WorkerPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] { ++counter; });
    }
  }  // no wait(): the destructor must still finish everything
  EXPECT_EQ(counter.load(), 50);
}

TEST(WorkerPool, WaitRethrowsJobException) {
  WorkerPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait(), std::runtime_error);
}

TEST(ParallelFor, CoversAllIndicesAcrossThreadCounts) {
  for (const int threads : {1, 2, 4}) {
    std::vector<int> hits(257, 0);
    parallelFor(hits.size(),
                [&hits](std::size_t i) { ++hits[i]; }, threads);
    for (std::size_t i = 0; i < hits.size(); ++i) {
      ASSERT_EQ(hits[i], 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ParallelFor, ZeroJobsIsANoop) {
  parallelFor(0, [](std::size_t) { FAIL(); }, 4);
}

ScenarioConfig tinyBase() {
  ScenarioConfig c;
  c.numHosts = 20;
  c.numBroadcasts = 2;
  c.seed = 9;
  return c;
}

std::vector<SweepAxis> threeAxes() {
  return {schemeAxis({SchemeSpec::flooding(), SchemeSpec::counter(3)}),
          mapAxis({1, 3}), speedAxis({10.0, 30.0})};
}

/// The tentpole guarantee: parallel runSweep output is identical to the
/// serial run — same cells, same coordinates, same table bytes.
TEST(ParallelSweep, ThreeAxisSweepIsIdenticalToSerial) {
  const ScenarioConfig base = tinyBase();
  const auto axes = threeAxes();
  const auto serial = runSweep(base, axes, /*repetitions=*/2, /*threads=*/1);
  const auto parallel = runSweep(base, axes, /*repetitions=*/2, /*threads=*/4);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].coordinates, parallel[i].coordinates);
    EXPECT_EQ(serial[i].result.re(), parallel[i].result.re());
    EXPECT_EQ(serial[i].result.srb(), parallel[i].result.srb());
    EXPECT_EQ(serial[i].result.latency(), parallel[i].result.latency());
    EXPECT_EQ(serial[i].result.framesTransmitted,
              parallel[i].result.framesTransmitted);
    EXPECT_EQ(serial[i].result.summary.totalReceived,
              parallel[i].result.summary.totalReceived);
  }

  std::ostringstream serialOut;
  std::ostringstream parallelOut;
  sweepTable(axes, serial).print(serialOut);
  sweepTable(axes, parallel).print(parallelOut);
  EXPECT_EQ(serialOut.str(), parallelOut.str());
}

TEST(ParallelSweep, AveragedRunsMatchSerialAcrossThreadCounts) {
  ScenarioConfig config = tinyBase();
  config.numHosts = 25;
  const RunResult serial = runScenarioAveraged(config, 3, /*threads=*/1);
  const RunResult parallel = runScenarioAveraged(config, 3, /*threads=*/3);
  EXPECT_EQ(serial.re(), parallel.re());
  EXPECT_EQ(serial.srb(), parallel.srb());
  EXPECT_EQ(serial.latency(), parallel.latency());
  EXPECT_EQ(serial.framesTransmitted, parallel.framesTransmitted);
  EXPECT_EQ(serial.summary.broadcasts, parallel.summary.broadcasts);
}

/// The satellite fix: pooled results carry raw r/t/e counts so ratio-of-sums
/// metrics are available alongside the mean-of-means the figures report.
TEST(PooledCounts, AveragedResultExposesBothAveragings) {
  ScenarioConfig config = tinyBase();
  const RunResult run0 = runScenario(config);
  ScenarioConfig c1 = config;
  c1.seed = config.seed + 1;
  const RunResult run1 = runScenario(c1);
  const RunResult pooled = runScenarioAveraged(config, 2);

  EXPECT_EQ(pooled.summary.totalReceived,
            run0.summary.totalReceived + run1.summary.totalReceived);
  EXPECT_EQ(pooled.summary.totalRebroadcast,
            run0.summary.totalRebroadcast + run1.summary.totalRebroadcast);
  EXPECT_EQ(pooled.summary.totalReachable,
            run0.summary.totalReachable + run1.summary.totalReachable);
  EXPECT_DOUBLE_EQ(pooled.re(), (run0.re() + run1.re()) / 2.0);

  if (pooled.summary.totalReachable > 0) {
    const double ratioOfSums =
        static_cast<double>(pooled.summary.totalReceived) /
        static_cast<double>(pooled.summary.totalReachable);
    EXPECT_DOUBLE_EQ(pooled.pooledRe(), ratioOfSums);
  }
  if (pooled.summary.totalReceived > 0) {
    EXPECT_GE(pooled.pooledSrb(), 0.0);
    EXPECT_LE(pooled.pooledSrb(), 1.0);
  }
}

/// Fault injection must stay deterministic under parallel execution: every
/// fault draw comes from a per-run forked stream, so a sweep with loss and
/// churn enabled is byte-identical for any thread count.
TEST(ParallelSweep, FaultSweepIsIdenticalAcrossThreadCounts) {
  ScenarioConfig base = tinyBase();
  base.fault.loss = fault::FaultConfig::Loss::kGilbertElliott;
  base.fault.churn = true;
  base.fault.churnFraction = 0.5;
  base.fault.meanUpTime = 3 * sim::kSecond;
  base.fault.meanDownTime = 1 * sim::kSecond;
  const std::vector<SweepAxis> axes{
      schemeAxis({SchemeSpec::flooding(), SchemeSpec::counter(3)})};

  const auto serial = runSweep(base, axes, /*repetitions=*/2, /*threads=*/1);
  const auto parallel = runSweep(base, axes, /*repetitions=*/2, /*threads=*/4);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].result.framesTransmitted,
              parallel[i].result.framesTransmitted);
    EXPECT_EQ(serial[i].result.framesLostToFault,
              parallel[i].result.framesLostToFault);
    EXPECT_EQ(serial[i].result.framesDroppedHostDown,
              parallel[i].result.framesDroppedHostDown);
    EXPECT_EQ(serial[i].result.hostDownSeconds,
              parallel[i].result.hostDownSeconds);
    EXPECT_EQ(serial[i].result.re(), parallel[i].result.re());
  }

  std::ostringstream serialOut;
  std::ostringstream parallelOut;
  sweepTable(axes, serial).print(serialOut);
  sweepTable(axes, parallel).print(parallelOut);
  EXPECT_EQ(serialOut.str(), parallelOut.str());
  // The fault columns actually appear for fault-enabled sweeps.
  EXPECT_NE(serialOut.str().find("lost"), std::string::npos);
}

/// Packet pooling is a pure allocator swap (DESIGN.md §11): with the arena
/// forced off, the same sweep must render byte-identical tables at every
/// thread count. Guards against the pool ever leaking into simulation
/// behaviour (e.g. address-dependent iteration or reuse-order coupling).
TEST(ParallelSweep, PacketPoolingDoesNotChangeSweepBytes) {
  const ScenarioConfig base = tinyBase();
  const auto axes = threeAxes();

  struct PoolGuard {
    ~PoolGuard() { net::PacketPool::setEnabled(true); }
  } guard;

  std::string table[2][2];  // [pooled][threads index]
  for (const bool pooled : {false, true}) {
    net::PacketPool::setEnabled(pooled);
    for (const int threads : {1, 4}) {
      const auto cells = runSweep(base, axes, /*repetitions=*/2, threads);
      std::ostringstream out;
      sweepTable(axes, cells).print(out);
      table[pooled ? 1 : 0][threads == 1 ? 0 : 1] = out.str();
    }
  }

  EXPECT_EQ(table[0][0], table[1][0]) << "pooling changed serial output";
  EXPECT_EQ(table[0][1], table[1][1]) << "pooling changed parallel output";
  EXPECT_EQ(table[0][0], table[0][1]) << "unpooled sweep thread-dependent";
  EXPECT_EQ(table[1][0], table[1][1]) << "pooled sweep thread-dependent";
}

TEST(PooledCounts, SingleRunSummaryCountsAreConsistent) {
  const RunResult r = runScenario(tinyBase());
  // r can slightly exceed the BFS snapshot e under mobility, but both are
  // bounded by broadcasts * hosts; rebroadcasters are a subset of receivers.
  EXPECT_LE(r.summary.totalRebroadcast, r.summary.totalReceived);
  EXPECT_LE(r.summary.totalReceived, r.summary.broadcasts * 20);
  EXPECT_GT(r.wallSeconds, 0.0);
  EXPECT_GE(r.framesPerWallSecond(), 0.0);
}

}  // namespace
}  // namespace manet::experiment
