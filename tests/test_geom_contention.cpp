#include "geom/contention.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "sim/random.hpp"

namespace manet::geom {
namespace {

constexpr double kR = 500.0;

TEST(ContentionFreeCount, SingleHostIsAlwaysFree) {
  sim::Rng rng(1);
  for (int t = 0; t < 100; ++t) {
    EXPECT_EQ(contentionFreeCount(1, kR, rng), 1);
  }
}

TEST(ContentionFreeCount, BoundedByN) {
  sim::Rng rng(2);
  for (int n = 1; n <= 8; ++n) {
    for (int t = 0; t < 50; ++t) {
      const int cf = contentionFreeCount(n, kR, rng);
      EXPECT_GE(cf, 0);
      EXPECT_LE(cf, n);
    }
  }
}

TEST(ContentionFreeCount, NeverExactlyNMinusOne) {
  // If n-1 hosts are pairwise non-contending, the n-th must be too (the
  // paper notes cf(n, n-1) = 0).
  sim::Rng rng(3);
  for (int n = 2; n <= 6; ++n) {
    for (int t = 0; t < 400; ++t) {
      EXPECT_NE(contentionFreeCount(n, kR, rng), n - 1) << "n=" << n;
    }
  }
}

TEST(ContentionFreeDistribution, IsAProbabilityDistribution) {
  sim::Rng rng(4);
  for (int n : {1, 3, 6}) {
    const auto dist = contentionFreeDistribution(n, kR, rng, 4000);
    ASSERT_EQ(dist.size(), static_cast<size_t>(n) + 1);
    const double total = std::accumulate(dist.begin(), dist.end(), 0.0);
    EXPECT_NEAR(total, 1.0, 1e-9);
    for (double p : dist) {
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
    }
  }
}

TEST(ContentionFreeDistribution, TwoHostsContendAboutFiftyNinePercent) {
  // §2.2.2's analytic result: P(contention between 2 receivers) ~= 59%,
  // i.e. cf(2, 0) ~= 0.59.
  sim::Rng rng(5);
  const auto dist = contentionFreeDistribution(2, kR, rng, 60000);
  EXPECT_NEAR(dist[0], 0.59, 0.015);
  EXPECT_NEAR(dist[2], 0.41, 0.015);
  EXPECT_NEAR(dist[1], 0.0, 1e-12);  // cf(2,1) is impossible
}

TEST(ContentionFreeDistribution, AllContendedGrowsWithDensity) {
  // Fig. 2: cf(n, 0) increases with n (crowding worsens contention) ...
  sim::Rng rng(6);
  double prev = 0.0;
  for (int n : {2, 4, 6, 8}) {
    const auto dist = contentionFreeDistribution(n, kR, rng, 8000);
    EXPECT_GT(dist[0], prev) << "n=" << n;
    prev = dist[0];
  }
  // ... and exceeds 0.8 by n = 6.
  const auto six = contentionFreeDistribution(6, kR, rng, 20000);
  EXPECT_GT(six[0], 0.8);
}

TEST(ContentionFreeDistribution, OneFreeHostProbabilityDropsWithDensity) {
  // Fig. 2: cf(n, 1) decreases sharply as n grows.
  sim::Rng rng(7);
  const auto two = contentionFreeDistribution(2, kR, rng, 20000);
  const auto eight = contentionFreeDistribution(8, kR, rng, 20000);
  // cf(2,1) = 0 structurally, so compare n=3 against n=8.
  const auto three = contentionFreeDistribution(3, kR, rng, 20000);
  EXPECT_GT(three[1], eight[1]);
  (void)two;
}

TEST(ContentionFreeDistribution, TwoOrMoreFreeHostsIsRare) {
  // The paper: "it is very unlikely to have more contention-free hosts
  // (cf(n,k) with k >= 2)" for crowded n.
  sim::Rng rng(8);
  const auto dist = contentionFreeDistribution(8, kR, rng, 20000);
  double tail = 0.0;
  for (size_t k = 2; k < dist.size(); ++k) tail += dist[k];
  EXPECT_LT(tail, 0.05);
}

TEST(ContentionDeath, RejectsBadArguments) {
  sim::Rng rng(9);
  EXPECT_DEATH((void)contentionFreeCount(0, kR, rng), "Precondition");
  EXPECT_DEATH((void)contentionFreeCount(1, 0.0, rng), "Precondition");
  EXPECT_DEATH((void)contentionFreeDistribution(1, kR, rng, 0),
               "Precondition");
}

}  // namespace
}  // namespace manet::geom
