// The strong TimePoint/Duration layer (DESIGN.md §13): conversion rounding,
// round-trip bounds, the legal algebra, and — via a static_assert harness —
// proof that the illegal operations do not compile.
#include "sim/time.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <type_traits>

namespace manet::sim {
namespace {

// ------------------------------------------------ fromSeconds rounding

TEST(TimeConversion, FromSecondsRoundsToNearestPositive) {
  EXPECT_EQ(fromSeconds(0.0), Duration{});
  EXPECT_EQ(fromSeconds(1.0), kSecond);
  EXPECT_EQ(fromSeconds(0.001), kMillisecond);
  // 1.4 us rounds down, 1.6 us rounds up.
  EXPECT_EQ(fromSeconds(1.4e-6), Duration{1});
  EXPECT_EQ(fromSeconds(1.6e-6), Duration{2});
}

TEST(TimeConversion, FromSecondsRoundsToNearestNegative) {
  EXPECT_EQ(fromSeconds(-1.0), -kSecond);
  EXPECT_EQ(fromSeconds(-1.4e-6), Duration{-1});
  EXPECT_EQ(fromSeconds(-1.6e-6), Duration{-2});
}

TEST(TimeConversion, FromSecondsHalfTickRoundsAwayFromZero) {
  // Exactly half a microsecond: 0.5 rounds up in magnitude for both signs
  // (the +/-0.5 offset before truncation).
  EXPECT_EQ(fromSeconds(0.5e-6), Duration{1});
  EXPECT_EQ(fromSeconds(-0.5e-6), Duration{-1});
  EXPECT_EQ(fromSeconds(2.5e-6), Duration{3});
  EXPECT_EQ(fromSeconds(-2.5e-6), Duration{-3});
}

TEST(TimeConversion, RoundTripIsExactOnTickBoundaries) {
  // Any duration expressible in whole microseconds survives
  // toSeconds -> fromSeconds unchanged while the double mantissa can hold
  // the tick count exactly (53 bits ~ 104 simulated days).
  for (const std::int64_t ticks :
       {std::int64_t{0}, std::int64_t{1}, std::int64_t{-1}, std::int64_t{17},
        std::int64_t{999'999}, std::int64_t{1'000'000},
        std::int64_t{86'400'000'000}, std::int64_t{-86'400'000'000}}) {
    const Duration d{ticks};
    EXPECT_EQ(fromSeconds(toSeconds(d)), d) << "ticks=" << ticks;
  }
}

TEST(TimeConversion, RoundTripErrorBoundedByHalfTick) {
  // An arbitrary second count lands within half a microsecond of itself.
  for (const double s : {0.123456789, 3.999999949, 1e-7, -0.777777777}) {
    const double back = toSeconds(fromSeconds(s));
    EXPECT_NEAR(back, s, 0.5e-6) << "s=" << s;
  }
}

TEST(TimeConversion, TimePointToSecondsUsesSpanSinceStart) {
  const TimePoint t = kTimeZero + 1500 * kMillisecond;
  EXPECT_DOUBLE_EQ(toSeconds(t), 1.5);
  EXPECT_EQ(t.sinceStart(), 1500 * kMillisecond);
}

// ------------------------------------------------------- scale helpers

TEST(TimeConversion, ScaleTruncTruncatesTowardZero) {
  EXPECT_EQ(scaleTrunc(Duration{10}, 0.99), Duration{9});
  EXPECT_EQ(scaleTrunc(Duration{10}, -0.99), Duration{-9});
  EXPECT_EQ(scaleTrunc(kSecond, 0.02), Duration{20'000});
}

TEST(TimeConversion, ScaleRoundRoundsHalfUp) {
  EXPECT_EQ(scaleRound(Duration{10}, 0.95), Duration{10});
  EXPECT_EQ(scaleRound(Duration{10}, 0.94), Duration{9});
  EXPECT_EQ(scaleRound(Duration{2}, 0.25), Duration{1});  // 0.5 + 0.5 -> 1
}

// ------------------------------------------------------- legal algebra

TEST(TimeAlgebra, PointAndDurationOperations) {
  const TimePoint a = kTimeZero + 3 * kSecond;
  const TimePoint b = kTimeZero + 5 * kSecond;
  EXPECT_EQ(b - a, 2 * kSecond);
  EXPECT_EQ(a + 2 * kSecond, b);
  EXPECT_EQ(2 * kSecond + a, b);
  EXPECT_EQ(b - 2 * kSecond, a);

  TimePoint c = a;
  c += kSecond;
  c -= 2 * kSecond;
  EXPECT_EQ(c, kTimeZero + 2 * kSecond);

  EXPECT_LT(a, b);
  EXPECT_GE(b, a);
  EXPECT_LT(kNever, kTimeZero);  // the sentinel sorts before every instant
}

TEST(TimeAlgebra, DurationOperations) {
  EXPECT_EQ(kSecond + kMillisecond, Duration{1'001'000});
  EXPECT_EQ(kSecond - kMillisecond, Duration{999'000});
  EXPECT_EQ(-kMillisecond, Duration{-1000});
  EXPECT_EQ(kMillisecond * 3, 3 * kMillisecond);
  EXPECT_EQ(kSecond / 4, 250 * kMillisecond);
  EXPECT_EQ(kSecond / (20 * kMicrosecond), 50'000);  // slots per second
  EXPECT_EQ(kSecond % (333 * kMillisecond), kMillisecond);

  Duration d = kSecond;
  d += kSecond;
  d *= 2;
  d -= kSecond;
  EXPECT_EQ(d, 3 * kSecond);
}

TEST(TimeAlgebra, NamedUnitFactories) {
  EXPECT_EQ(Duration::microseconds(1'000'000), kSecond);
  EXPECT_EQ(Duration::milliseconds(1'000), kSecond);
  EXPECT_EQ(Duration::seconds(2), 2 * kSecond);
}

// ---------------------------------------------- illegal-ops harness
//
// Each trait probes one operation the strong layer must reject. SFINAE on
// the expression keeps this a compile-time proof: if a forbidden operator
// or conversion ever appears, the static_assert below fails to compile.

template <typename A, typename B, typename = void>
struct CanAdd : std::false_type {};
template <typename A, typename B>
struct CanAdd<A, B,
              std::void_t<decltype(std::declval<A>() + std::declval<B>())>>
    : std::true_type {};

template <typename A, typename B, typename = void>
struct CanSubtractFrom : std::false_type {};
template <typename A, typename B>
struct CanSubtractFrom<
    A, B, std::void_t<decltype(std::declval<A>() - std::declval<B>())>>
    : std::true_type {};

template <typename A, typename B, typename = void>
struct CanMultiply : std::false_type {};
template <typename A, typename B>
struct CanMultiply<A, B,
                   std::void_t<decltype(std::declval<A>() * std::declval<B>())>>
    : std::true_type {};

// TimePoint + TimePoint has no physical meaning.
static_assert(!CanAdd<TimePoint, TimePoint>::value);
// int + TimePoint / TimePoint + int: a bare integer is not a duration.
static_assert(!CanAdd<TimePoint, int>::value);
static_assert(!CanAdd<int, TimePoint>::value);
static_assert(!CanAdd<Duration, int>::value);
static_assert(!CanAdd<int, Duration>::value);
// Duration - TimePoint is backwards (only point - point and point - dur).
static_assert(!CanSubtractFrom<Duration, TimePoint>::value);
static_assert(!CanSubtractFrom<int, Duration>::value);
// Scaling a *point* by a scalar is meaningless (only durations scale).
static_assert(!CanMultiply<TimePoint, std::int64_t>::value);
static_assert(!CanMultiply<std::int64_t, TimePoint>::value);
// Cross-type comparison must not compile.
static_assert(!std::is_invocable_v<std::less<>, TimePoint, Duration>);

// No implicit conversions in either direction.
static_assert(!std::is_convertible_v<std::int64_t, Duration>);
static_assert(!std::is_convertible_v<std::int64_t, TimePoint>);
static_assert(!std::is_convertible_v<Duration, std::int64_t>);
static_assert(!std::is_convertible_v<TimePoint, std::int64_t>);
static_assert(!std::is_convertible_v<Duration, TimePoint>);
static_assert(!std::is_convertible_v<TimePoint, Duration>);
// Explicit construction from raw ticks stays available (the boundary form).
static_assert(std::is_constructible_v<Duration, std::int64_t>);
static_assert(std::is_constructible_v<TimePoint, std::int64_t>);

// The legal algebra yields exactly the expected types.
static_assert(std::is_same_v<decltype(std::declval<TimePoint>() -
                                      std::declval<TimePoint>()),
                             Duration>);
static_assert(std::is_same_v<decltype(std::declval<TimePoint>() +
                                      std::declval<Duration>()),
                             TimePoint>);
static_assert(std::is_same_v<decltype(std::declval<Duration>() /
                                      std::declval<Duration>()),
                             std::int64_t>);

// Zero-cost claim: layout-identical to the raw int64_t tick count.
static_assert(sizeof(Duration) == sizeof(std::int64_t));
static_assert(sizeof(TimePoint) == sizeof(std::int64_t));
static_assert(std::is_trivially_copyable_v<Duration>);
static_assert(std::is_trivially_copyable_v<TimePoint>);

TEST(TimeAlgebra, IllegalOperationHarnessCompiled) {
  // The static_asserts above are the test; this records their presence in
  // the runtime report.
  SUCCEED();
}

}  // namespace
}  // namespace manet::sim
