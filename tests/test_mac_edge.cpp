// MAC edge cases beyond the core conformance tests: cancellation timing,
// mixed hello/data/unicast queues, zero carrier-sense delay, saturation.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mac/dcf.hpp"
#include "net/packet.hpp"
#include "phy/channel.hpp"
#include "sim/scheduler.hpp"

namespace manet::mac {
namespace {

using net::HostId;

net::PacketPtr dataPacket(std::uint32_t sender, std::uint32_t seq = 0) {
  const HostId src{sender};
  return net::makeDataPacket(net::BroadcastId{src, net::BroadcastSeq{seq}},
                             src);
}

class CountingUpper : public DcfMac::Upper {
 public:
  explicit CountingUpper(sim::Scheduler& s) : scheduler_(s) {}
  void onTxStarted(DcfMac::TxId, const net::Packet&) override { ++starts; }
  void onTxFinished(DcfMac::TxId, const net::Packet&) override {
    ++finishes;
    lastFinish = scheduler_.now();
  }
  void onReceive(const phy::Frame&) override { ++receptions; }
  void onUnicastOutcome(DcfMac::TxId, const net::Packet&,
                        bool delivered) override {
    outcomes.push_back(delivered);
  }
  int starts = 0;
  int finishes = 0;
  int receptions = 0;
  sim::TimePoint lastFinish{};
  std::vector<bool> outcomes;

 private:
  sim::Scheduler& scheduler_;
};

struct Rig {
  explicit Rig(phy::PhyParams phyParams = {})
      : channel(scheduler, phyParams) {}

  DcfMac& add(geom::Vec2 pos, std::uint64_t seed = 1, MacParams params = {}) {
    const HostId id{static_cast<std::uint32_t>(macs.size())};
    uppers.push_back(std::make_unique<CountingUpper>(scheduler));
    macs.push_back(std::make_unique<DcfMac>(
        scheduler, channel, id, [pos] { return pos; }, sim::Rng(seed),
        params, uppers.back().get()));
    return *macs.back();
  }

  sim::Scheduler scheduler;
  phy::Channel channel;
  std::vector<std::unique_ptr<CountingUpper>> uppers;
  std::vector<std::unique_ptr<DcfMac>> macs;
};

TEST(MacEdge, CancelDuringFrozenBackoff) {
  Rig rig;
  DcfMac& a = rig.add({0, 0}, 1);
  DcfMac& b = rig.add({100, 0}, 2);
  rig.scheduler.runUntil(sim::TimePoint{10'000});
  a.enqueue(dataPacket(0), 280);  // occupies the medium
  rig.scheduler.runUntil(sim::TimePoint{10'100});
  const auto id = b.enqueue(dataPacket(1), 280);  // deferred, backoff drawn
  rig.scheduler.runUntil(sim::TimePoint{11'000});                 // still mid-frame
  EXPECT_TRUE(b.cancel(id));
  rig.scheduler.runAll();
  EXPECT_EQ(rig.uppers[1]->starts, 0);
  EXPECT_TRUE(b.quiescent());
}

TEST(MacEdge, ZeroCarrierSenseDelaySerializesSameInstantDecisions) {
  phy::PhyParams phyParams;
  phyParams.carrierSenseDelay = sim::Duration{};  // idealized instant CCA
  Rig rig(phyParams);
  DcfMac& a = rig.add({0, 0}, 1);
  DcfMac& b = rig.add({100, 0}, 2);
  rig.add({200, 0}, 3);
  rig.scheduler.runUntil(sim::TimePoint{10'000});
  a.enqueue(dataPacket(0), 280);
  b.enqueue(dataPacket(1), 280);  // same instant; with zero delay b defers
  rig.scheduler.runAll();
  // Both frames decoded intact at the third station: no collision.
  EXPECT_EQ(rig.uppers[2]->receptions, 2);
  EXPECT_EQ(rig.macs[2]->framesDroppedCorrupt(), 0u);
}

TEST(MacEdge, DefaultSenseDelayMakesSameInstantDecisionsCollide) {
  Rig rig;  // 5 us sense delay
  DcfMac& a = rig.add({0, 0}, 1);
  DcfMac& b = rig.add({100, 0}, 2);
  rig.add({200, 0}, 3);
  rig.scheduler.runUntil(sim::TimePoint{10'000});
  a.enqueue(dataPacket(0), 280);
  b.enqueue(dataPacket(1), 280);  // b cannot sense a's 0-us-old carrier
  rig.scheduler.runAll();
  EXPECT_EQ(rig.uppers[2]->receptions, 0);
  EXPECT_EQ(rig.macs[2]->framesDroppedCorrupt(), 2u);
}

TEST(MacEdge, SaturatedQueueDrainsCompletely) {
  Rig rig;
  DcfMac& a = rig.add({0, 0}, 1);
  rig.add({100, 0}, 2);
  rig.scheduler.runUntil(sim::TimePoint{10'000});
  for (std::uint32_t i = 0; i < 20; ++i) a.enqueue(dataPacket(0, i), 280);
  rig.scheduler.runAll();
  EXPECT_EQ(rig.uppers[0]->starts, 20);
  EXPECT_EQ(rig.uppers[0]->finishes, 20);
  EXPECT_EQ(rig.uppers[1]->receptions, 20);
  EXPECT_TRUE(a.quiescent());
}

TEST(MacEdge, MixedBroadcastUnicastHelloQueue) {
  Rig rig;
  DcfMac& a = rig.add({0, 0}, 1);
  rig.add({100, 0}, 2);
  rig.scheduler.runUntil(sim::TimePoint{10'000});
  auto hello = std::make_shared<net::Packet>();
  hello->type = net::PacketType::kHello;
  hello->sender = HostId{0};
  a.enqueue(hello, 24);
  a.enqueueUnicast(HostId{1}, dataPacket(0, 1), 280);
  a.enqueue(dataPacket(0, 2), 280);
  rig.scheduler.runAll();
  // All three delivered: hello + unicast data + broadcast data.
  EXPECT_EQ(rig.uppers[1]->receptions, 3);
  ASSERT_EQ(rig.uppers[0]->outcomes.size(), 1u);
  EXPECT_TRUE(rig.uppers[0]->outcomes[0]);
  EXPECT_TRUE(a.quiescent());
}

TEST(MacEdge, UnicastRetryPreemptsLaterQueueEntries) {
  // The retried frame goes back to the FRONT of the queue (802.11 retries
  // the same MPDU before serving new traffic).
  Rig rig;
  MacParams params;
  params.retryLimit = 1;
  DcfMac& a = rig.add({0, 0}, 1, params);
  rig.add({100, 0}, 2, params);
  rig.scheduler.runUntil(sim::TimePoint{10'000});
  a.enqueueUnicast(HostId{42}, dataPacket(0, 1), 280);  // dest 42 doesn't exist
  a.enqueue(dataPacket(0, 2), 280);             // broadcast behind it
  rig.scheduler.runAll();
  // Unicast failed after its retry; the broadcast still went out after.
  ASSERT_EQ(rig.uppers[0]->outcomes.size(), 1u);
  EXPECT_FALSE(rig.uppers[0]->outcomes[0]);
  EXPECT_EQ(rig.uppers[1]->receptions, 1);  // only the broadcast
  EXPECT_TRUE(a.quiescent());
}

TEST(MacEdge, QuiescentReflectsExchangeState) {
  Rig rig;
  DcfMac& a = rig.add({0, 0}, 1);
  rig.add({100, 0}, 2);
  rig.scheduler.runUntil(sim::TimePoint{10'000});
  a.enqueueUnicast(HostId{1}, dataPacket(0), 280);
  EXPECT_FALSE(a.quiescent());          // queued
  rig.scheduler.runUntil(sim::TimePoint{11'000});       // DATA on the air / awaiting ACK
  rig.scheduler.runAll();
  EXPECT_TRUE(a.quiescent());
}

TEST(MacEdge, BackToBackBroadcastsFromManyStationsAllDrain) {
  // 6 stations in one collision domain, 5 frames each: the medium is
  // saturated but every frame is eventually transmitted exactly once.
  Rig rig;
  for (int i = 0; i < 6; ++i) {
    rig.add({static_cast<double>(i) * 50.0, 0}, static_cast<std::uint64_t>(i) + 1);
  }
  rig.scheduler.runUntil(sim::TimePoint{10'000});
  for (auto& mac : rig.macs) {
    for (std::uint32_t s = 0; s < 5; ++s) {
      mac->enqueue(dataPacket(mac->self().value(), s), 280);
    }
  }
  rig.scheduler.runAll();
  for (const auto& mac : rig.macs) {
    EXPECT_EQ(mac->framesSent(), 5u);
    EXPECT_TRUE(mac->quiescent());
  }
}

}  // namespace
}  // namespace manet::mac
