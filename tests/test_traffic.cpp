// Traffic workload subsystem tests (DESIGN.md §12): arrival-process and
// source-model semantics, the bit-identity contract of the default model
// against the pre-subsystem inline loop, env overrides, replay scripts, and
// the thread-count invariance of the traffic.* metric family.
#include "traffic/arrival.hpp"
#include "traffic/config.hpp"
#include "traffic/generator.hpp"
#include "traffic/source_model.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <set>
#include <vector>

#include "experiment/runner.hpp"
#include "experiment/world.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace manet::traffic {
namespace {

using sim::kMillisecond;
using sim::kSecond;

// The workload stream id World forks off the master seed (world.cpp).
constexpr std::uint64_t kWorkloadStream = 0xF00D;

std::vector<Request> generate(const TrafficConfig& config, int count,
                              std::uint64_t seed,
                              sim::TimePoint start = sim::kTimeZero,
                              int numHosts = 100,
                              sim::Duration uniformMax = 2 * kSecond) {
  const Generator generator(config, numHosts, uniformMax);
  sim::Rng rng(seed);
  return generator.schedule(count, start, rng);
}

bool sameSchedule(const std::vector<Request>& a,
                  const std::vector<Request>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].at != b[i].at || a[i].source != b[i].source ||
        a[i].seq != b[i].seq) {
      return false;
    }
  }
  return true;
}

// ------------------------------------------------ default-model bit-identity

TEST(TrafficGenerator, DefaultMatchesLegacyInlineLoopDrawForDraw) {
  // The pre-subsystem World::scheduleWorkload loop: per request, one
  // uniformTime(0, interarrivalMax) gap then one uniformInt(0, numHosts-1)
  // source, from the workload stream. The default generator must reproduce
  // it exactly — this is what keeps every figure bench byte-identical.
  const int numHosts = 100;
  const sim::Duration interarrivalMax = 2 * kSecond;
  const sim::Duration warmup = 100 * kMillisecond;
  const int count = 50;

  sim::Rng legacyRng = sim::Rng(42).fork(kWorkloadStream);
  std::vector<Request> legacy;
  sim::TimePoint t = sim::kTimeZero + warmup;
  for (int i = 0; i < count; ++i) {
    t += legacyRng.uniformDuration(sim::Duration{}, interarrivalMax);
    Request r;
    r.at = t;
    r.source = net::HostId{
        static_cast<std::uint32_t>(legacyRng.uniformInt(0, numHosts - 1))};
    r.seq = static_cast<std::uint32_t>(i);
    legacy.push_back(r);
  }

  const Generator generator(TrafficConfig{}, numHosts, interarrivalMax);
  sim::Rng rng = sim::Rng(42).fork(kWorkloadStream);
  EXPECT_TRUE(sameSchedule(legacy, generator.schedule(count, sim::kTimeZero + warmup, rng)));
}

TEST(TrafficWorld, WorldScheduleMatchesLegacyInlineLoop) {
  // Same differential, end to end through World: the schedule the world
  // actually injects equals the hand-rolled legacy draws at the resolved
  // warmup.
  experiment::ScenarioConfig config;
  config.mapUnits = 3;
  config.numHosts = 30;
  config.numBroadcasts = 12;
  config.seed = 7;
  experiment::World world(config);
  world.run();  // the schedule is built when the world starts

  sim::Rng legacyRng = sim::Rng(7).fork(kWorkloadStream);
  sim::TimePoint t = sim::kTimeZero + world.config().warmup;
  const auto& schedule = world.workloadSchedule();
  ASSERT_EQ(schedule.size(), 12u);
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    t += legacyRng.uniformDuration(sim::Duration{},
                                   world.config().interarrivalMax);
    EXPECT_EQ(schedule[i].at, t);
    EXPECT_EQ(schedule[i].source,
              net::HostId{static_cast<std::uint32_t>(legacyRng.uniformInt(
                  0, world.config().numHosts - 1))});
    EXPECT_EQ(schedule[i].seq, static_cast<std::uint32_t>(i));
  }
}

// ---------------------------------------------------------- determinism

TEST(TrafficGenerator, SameSeedSameScheduleAcrossModels) {
  std::vector<TrafficConfig> configs;
  configs.emplace_back();  // uniform/uniform default
  {
    TrafficConfig c;
    c.arrival = TrafficConfig::Arrival::kPoisson;
    c.poissonRatePerSecond = 4.0;
    configs.push_back(c);
  }
  {
    TrafficConfig c;
    c.arrival = TrafficConfig::Arrival::kPeriodic;
    c.period = 250 * kMillisecond;
    configs.push_back(c);
  }
  {
    TrafficConfig c;
    c.arrival = TrafficConfig::Arrival::kBurst;
    c.burstLength = 4;
    configs.push_back(c);
  }
  {
    TrafficConfig c;
    c.sources = TrafficConfig::Sources::kHotspot;
    c.hotspotCount = 5;
    configs.push_back(c);
  }
  for (const TrafficConfig& config : configs) {
    EXPECT_TRUE(sameSchedule(generate(config, 40, 11),
                             generate(config, 40, 11)));
    EXPECT_FALSE(sameSchedule(generate(config, 40, 11),
                              generate(config, 40, 12)));
  }
}

TEST(TrafficGenerator, TimesAreNonDecreasingAndSeqIsStreamOrder) {
  TrafficConfig config;
  config.arrival = TrafficConfig::Arrival::kPoisson;
  config.poissonRatePerSecond = 8.0;
  const auto schedule =
      generate(config, 100, 3, /*start=*/sim::kTimeZero + kSecond);
  sim::TimePoint last = sim::kTimeZero + kSecond;
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    EXPECT_GE(schedule[i].at, last);
    EXPECT_EQ(schedule[i].seq, static_cast<std::uint32_t>(i));
    last = schedule[i].at;
  }
}

// ------------------------------------------------------- arrival processes

TEST(TrafficArrival, PeriodicGapsAreExactlyThePeriod) {
  TrafficConfig config;
  config.arrival = TrafficConfig::Arrival::kPeriodic;
  config.period = 125 * kMillisecond;
  const auto schedule = generate(config, 20, 5, /*start=*/sim::kTimeZero);
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    EXPECT_EQ(schedule[i].at,
              sim::kTimeZero +
                  static_cast<std::int64_t>(i + 1) * (125 * kMillisecond));
  }
}

TEST(TrafficArrival, PoissonMeanGapTracksRate) {
  TrafficConfig config;
  config.arrival = TrafficConfig::Arrival::kPoisson;
  config.poissonRatePerSecond = 5.0;  // mean gap 200 ms
  const int count = 4000;
  const auto schedule = generate(config, count, 13);
  const double meanGapSeconds =
      sim::toSeconds(schedule.back().at) / static_cast<double>(count);
  EXPECT_NEAR(meanGapSeconds, 0.2, 0.02);
  // Exponential gaps vary — a degenerate constant stream would be a bug.
  std::set<sim::Duration> gaps;
  for (std::size_t i = 1; i < 50; ++i) {
    gaps.insert(schedule[i].at - schedule[i - 1].at);
  }
  EXPECT_GT(gaps.size(), 10u);
}

TEST(TrafficArrival, BurstAlternatesTightClustersAndIdleGaps) {
  TrafficConfig config;
  config.arrival = TrafficConfig::Arrival::kBurst;
  config.burstLength = 5;
  config.burstGapMax = 10 * kMillisecond;
  config.burstIdleMean = 20 * kSecond;
  const auto schedule = generate(config, 25, 17);  // 5 full bursts
  for (std::size_t i = 1; i < schedule.size(); ++i) {
    const sim::Duration gap = schedule[i].at - schedule[i - 1].at;
    if (i % 5 == 0) {
      // Burst opener: exponential idle with a 20 s mean dwarfs the
      // intra-burst spacing; at this mean, a sub-10 ms idle draw would be a
      // once-in-thousands fluke (P ~ 5e-4 per draw).
      EXPECT_GT(gap, 10 * kMillisecond) << "request " << i;
    } else {
      EXPECT_LE(gap, 10 * kMillisecond) << "request " << i;
    }
  }
}

// ----------------------------------------------------------- source models

TEST(TrafficSources, SwappingSourceModelDoesNotPerturbArrivalTimes) {
  // Arrival gap and source pick are drawn in a fixed per-request order, so
  // the arrival times are identical whatever the source model.
  TrafficConfig uniform;
  TrafficConfig hotspot;
  hotspot.sources = TrafficConfig::Sources::kHotspot;
  hotspot.hotspotCount = 2;
  const auto a = generate(uniform, 30, 19);
  const auto b = generate(hotspot, 30, 19);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].at, b[i].at);
  }
}

TEST(TrafficSources, HotspotPicksOnlyFromTheHotspotSet) {
  TrafficConfig config;
  config.sources = TrafficConfig::Sources::kHotspot;
  config.hotspotCount = 3;
  for (const Request& r : generate(config, 200, 23)) {
    EXPECT_LT(r.source.value(), 3u);
  }
  // Explicit ids override the 0..k-1 default.
  config.hotspotIds = {net::HostId{7}, net::HostId{42}, net::HostId{99}};
  std::set<net::HostId> seen;
  for (const Request& r : generate(config, 200, 23)) {
    EXPECT_TRUE(r.source == net::HostId{7} || r.source == net::HostId{42} ||
                r.source == net::HostId{99});
    seen.insert(r.source);
  }
  EXPECT_EQ(seen.size(), 3u);
  // k larger than the population clamps instead of indexing out of range.
  TrafficConfig clamped;
  clamped.sources = TrafficConfig::Sources::kHotspot;
  clamped.hotspotCount = 50;
  for (const Request& r :
       generate(clamped, 100, 29, /*start=*/sim::kTimeZero, /*numHosts=*/10)) {
    EXPECT_LT(r.source.value(), 10u);
  }
}

TEST(TrafficSources, ZoneRestrictsToRectangleAndFallsBackWhenEmpty) {
  // Four hosts, one per quadrant corner of a 1000 m map.
  const std::vector<geom::Vec2> positions = {
      {100, 100}, {900, 100}, {100, 900}, {900, 900}};
  TrafficConfig config;
  config.sources = TrafficConfig::Sources::kZone;  // lower-left quadrant
  const auto zone = makeSourceModel(config, 4, positions, 1000.0);
  sim::Rng rng(31);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(zone->pick(rng), net::HostId{0});
  }
  // A zone covering no host degrades to uniform-over-all instead of
  // stalling the workload.
  config.zoneX0 = 0.4;
  config.zoneY0 = 0.4;
  config.zoneX1 = 0.6;
  config.zoneY1 = 0.6;
  const auto empty = makeSourceModel(config, 4, positions, 1000.0);
  std::set<net::HostId> seen;
  for (int i = 0; i < 200; ++i) seen.insert(empty->pick(rng));
  EXPECT_EQ(seen.size(), 4u);
}

// ----------------------------------------------------------------- replay

TEST(TrafficReplay, ScriptIsSortedOffsetAndRenumbered) {
  TrafficConfig config;
  config.arrival = TrafficConfig::Arrival::kReplay;
  config.replay = {
      {sim::kTimeZero + 3 * kSecond, net::HostId{2}, 0},
      {sim::kTimeZero + 1 * kSecond, net::HostId{9}, 0},
      {sim::kTimeZero + 2 * kSecond, net::HostId{5}, 0},
  };
  // count is ignored for replay; times are script-relative to `start`.
  const auto schedule =
      generate(config, 99, 1, /*start=*/sim::kTimeZero + kSecond);
  ASSERT_EQ(schedule.size(), 3u);
  EXPECT_EQ(schedule[0].at, sim::kTimeZero + 2 * kSecond);
  EXPECT_EQ(schedule[0].source, net::HostId{9});
  EXPECT_EQ(schedule[0].seq, 0u);
  EXPECT_EQ(schedule[1].at, sim::kTimeZero + 3 * kSecond);
  EXPECT_EQ(schedule[1].source, net::HostId{5});
  EXPECT_EQ(schedule[1].seq, 1u);
  EXPECT_EQ(schedule[2].at, sim::kTimeZero + 4 * kSecond);
  EXPECT_EQ(schedule[2].source, net::HostId{2});
  EXPECT_EQ(schedule[2].seq, 2u);
}

TEST(TrafficReplay, WorldForcesBroadcastCountToScriptSize) {
  experiment::ScenarioConfig config;
  config.fixedPositions = {{0, 0}, {400, 0}, {800, 0}};
  config.scheme = experiment::SchemeSpec::flooding();
  config.mapUnits = 11;
  config.numBroadcasts = 100;  // overridden by the script below
  config.seed = 3;
  config.traffic.arrival = TrafficConfig::Arrival::kReplay;
  config.traffic.replay = {{sim::kTimeZero, net::HostId{1}, 0},
                           {sim::kTimeZero + kSecond, net::HostId{0}, 0}};

  const auto result = experiment::runScenario(config);
  EXPECT_EQ(result.summary.broadcasts, 2u);
  EXPECT_EQ(result.offeredBroadcasts, 2u);
}

// -------------------------------------------------------------- env knobs

TEST(TrafficConfigEnv, OverridesApply) {
  ::setenv("MANET_TRAFFIC_ARRIVAL", "burst", 1);
  ::setenv("MANET_TRAFFIC_BURST_LEN", "12", 1);
  ::setenv("MANET_TRAFFIC_BURST_GAP_S", "0.02", 1);
  ::setenv("MANET_TRAFFIC_IDLE_S", "6", 1);
  ::setenv("MANET_TRAFFIC_SOURCES", "hotspot", 1);
  ::setenv("MANET_TRAFFIC_HOTSPOT_K", "5", 1);
  const TrafficConfig out = TrafficConfig{}.withEnvOverrides();
  ::unsetenv("MANET_TRAFFIC_ARRIVAL");
  ::unsetenv("MANET_TRAFFIC_BURST_LEN");
  ::unsetenv("MANET_TRAFFIC_BURST_GAP_S");
  ::unsetenv("MANET_TRAFFIC_IDLE_S");
  ::unsetenv("MANET_TRAFFIC_SOURCES");
  ::unsetenv("MANET_TRAFFIC_HOTSPOT_K");
  EXPECT_EQ(out.arrival, TrafficConfig::Arrival::kBurst);
  EXPECT_EQ(out.burstLength, 12);
  EXPECT_EQ(out.burstGapMax, sim::scaleTrunc(kSecond, 0.02));
  EXPECT_EQ(out.burstIdleMean, 6 * kSecond);
  EXPECT_EQ(out.sources, TrafficConfig::Sources::kHotspot);
  EXPECT_EQ(out.hotspotCount, 5);
  EXPECT_FALSE(out.isDefault());
}

TEST(TrafficConfigEnv, BareRateImpliesPoissonAndPeriodImpliesCbr) {
  ::setenv("MANET_TRAFFIC_RATE", "2.5", 1);
  const TrafficConfig poisson = TrafficConfig{}.withEnvOverrides();
  ::unsetenv("MANET_TRAFFIC_RATE");
  EXPECT_EQ(poisson.arrival, TrafficConfig::Arrival::kPoisson);
  EXPECT_DOUBLE_EQ(poisson.poissonRatePerSecond, 2.5);

  ::setenv("MANET_TRAFFIC_PERIOD_S", "0.5", 1);
  const TrafficConfig cbr = TrafficConfig{}.withEnvOverrides();
  ::unsetenv("MANET_TRAFFIC_PERIOD_S");
  EXPECT_EQ(cbr.arrival, TrafficConfig::Arrival::kPeriodic);
  EXPECT_EQ(cbr.period, kSecond / 2);
}

TEST(TrafficConfigEnv, ZoneParsesFourFractions) {
  ::setenv("MANET_TRAFFIC_SOURCES", "zone", 1);
  ::setenv("MANET_TRAFFIC_ZONE", "0.25,0.5,0.75,1.0", 1);
  const TrafficConfig out = TrafficConfig{}.withEnvOverrides();
  ::unsetenv("MANET_TRAFFIC_SOURCES");
  ::unsetenv("MANET_TRAFFIC_ZONE");
  EXPECT_EQ(out.sources, TrafficConfig::Sources::kZone);
  EXPECT_DOUBLE_EQ(out.zoneX0, 0.25);
  EXPECT_DOUBLE_EQ(out.zoneY0, 0.5);
  EXPECT_DOUBLE_EQ(out.zoneX1, 0.75);
  EXPECT_DOUBLE_EQ(out.zoneY1, 1.0);
}

// -------------------------------------------- delivery accounting (obs)

class ForcedCollection {
 public:
  ForcedCollection() { obs::forceCollection(true); }
  ~ForcedCollection() { obs::forceCollection(false); }
};

experiment::ScenarioConfig accountingConfig() {
  experiment::ScenarioConfig config;
  config.mapUnits = 3;
  config.numHosts = 30;
  config.numBroadcasts = 10;
  config.scheme = experiment::SchemeSpec::counter(3);
  config.seed = 37;
  return config;
}

TEST(TrafficAccounting, OfferedInjectedCompletedAreConsistent) {
  ForcedCollection forced;
  const auto result = experiment::runScenario(accountingConfig());
  ASSERT_NE(result.metrics, nullptr);
  const obs::Registry& reg = *result.metrics;
  const auto offered = reg.counter(obs::Counter::kTrafficOffered);
  const auto injected = reg.counter(obs::Counter::kTrafficInjected);
  const auto blocked = reg.counter(obs::Counter::kTrafficBlockedHostDown);
  const auto completed = reg.counter(obs::Counter::kTrafficCompleted);
  EXPECT_EQ(offered, 10u);
  EXPECT_EQ(offered, result.offeredBroadcasts);
  EXPECT_EQ(injected + blocked, offered);
  EXPECT_EQ(blocked, 0u);  // no churn: every source is up at fire time
  EXPECT_EQ(completed, result.summary.broadcasts);
  EXPECT_EQ(reg.counter(obs::Counter::kTrafficDeliveredCopies),
            result.summary.totalReceived);
  EXPECT_EQ(reg.counter(obs::Counter::kTrafficReachableSum),
            result.summary.totalReachable);
  EXPECT_EQ(reg.histogram(obs::Hist::kTrafficLatencyUs).count(), completed);
  EXPECT_EQ(reg.histogram(obs::Hist::kTrafficDeliveryPct).count(),
            completed);
}

TEST(TrafficAccounting, MetricsAreThreadCountInvariant) {
  // The traffic.* family folds per-broadcast records into each repetition's
  // private registry and merges in repetition order, so the serialized
  // metrics are byte-identical for any MANET_THREADS.
  ForcedCollection forced;
  experiment::ScenarioConfig config = accountingConfig();
  config.traffic.arrival = TrafficConfig::Arrival::kPoisson;
  config.traffic.poissonRatePerSecond = 2.0;
  const auto serial = experiment::runScenarioAveraged(config, 4, 1);
  const auto parallel = experiment::runScenarioAveraged(config, 4, 4);
  ASSERT_NE(serial.metrics, nullptr);
  ASSERT_NE(parallel.metrics, nullptr);
  EXPECT_EQ(obs::metricsJson(*serial.metrics, /*includeTiming=*/false),
            obs::metricsJson(*parallel.metrics, /*includeTiming=*/false));
  EXPECT_GT(serial.metrics->counter(obs::Counter::kTrafficCompleted), 0u);
}

}  // namespace
}  // namespace manet::traffic
