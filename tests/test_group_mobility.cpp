#include "mobility/group.hpp"

#include <gtest/gtest.h>

#include "experiment/runner.hpp"
#include "experiment/world.hpp"
#include "stats/connectivity.hpp"

namespace manet::mobility {
namespace {

using geom::Vec2;
using sim::kSecond;

GroupParams fastParams() {
  GroupParams p;
  p.center.maxSpeedMps = kmhToMps(60.0);
  p.spanMeters = 150.0;
  p.localSpeedMps = kmhToMps(5.0);
  return p;
}

TEST(GroupMobility, MembersStayWithinMap) {
  const MapSpec map = MapSpec::square(5);
  sim::Rng rng(1);
  auto models = makeGroup(map, {1250, 1250}, 6, fastParams(), rng);
  ASSERT_EQ(models.size(), 6u);
  for (sim::TimePoint t = sim::kTimeZero; t <= sim::kTimeZero + 300 * kSecond; t += 5 * kSecond) {
    for (auto& m : models) {
      EXPECT_TRUE(map.contains(m->positionAt(t)));
    }
  }
}

TEST(GroupMobility, MembersStayNearEachOther) {
  // Offsets and deviations are bounded, so pairwise distances within a
  // group can never exceed 2*(span + span) = 4*span (offset + deviation for
  // both members), regardless of how far the center travels.
  const MapSpec map = MapSpec::square(9);
  sim::Rng rng(2);
  const GroupParams params = fastParams();
  auto models = makeGroup(map, {2250, 2250}, 5, params, rng);
  for (sim::TimePoint t = sim::kTimeZero; t <= sim::kTimeZero + 400 * kSecond; t += 10 * kSecond) {
    std::vector<Vec2> positions;
    for (auto& m : models) positions.push_back(m->positionAt(t));
    for (size_t i = 0; i < positions.size(); ++i) {
      for (size_t j = i + 1; j < positions.size(); ++j) {
        EXPECT_LE(geom::distance(positions[i], positions[j]),
                  4.0 * params.spanMeters + 1e-6)
            << "t=" << t.ticks();
      }
    }
  }
}

TEST(GroupMobility, GroupActuallyTravels) {
  const MapSpec map = MapSpec::square(9);
  sim::Rng rng(3);
  auto models = makeGroup(map, {2250, 2250}, 3, fastParams(), rng);
  const Vec2 start = models[0]->positionAt(sim::kTimeZero);
  double maxDisplacement = 0.0;
  for (sim::TimePoint t = sim::kTimeZero; t <= sim::kTimeZero + 600 * kSecond; t += 30 * kSecond) {
    maxDisplacement = std::max(
        maxDisplacement, geom::distance(start, models[0]->positionAt(t)));
  }
  EXPECT_GT(maxDisplacement, 500.0);  // fast team covers real ground
}

TEST(GroupMobility, ZeroSpanPinsMembersToCenter) {
  const MapSpec map = MapSpec::square(3);
  sim::Rng rng(4);
  GroupParams params = fastParams();
  params.spanMeters = 0.0;
  auto models = makeGroup(map, {750, 750}, 3, params, rng);
  for (sim::TimePoint t = sim::kTimeZero; t <= sim::kTimeZero + 100 * kSecond; t += 10 * kSecond) {
    const Vec2 a = models[0]->positionAt(t);
    const Vec2 b = models[1]->positionAt(t);
    const Vec2 c = models[2]->positionAt(t);
    EXPECT_EQ(a, b);
    EXPECT_EQ(b, c);
  }
}

TEST(GroupMobility, DeterministicPerSeed) {
  const MapSpec map = MapSpec::square(5);
  sim::Rng rngA(7);
  sim::Rng rngB(7);
  auto a = makeGroup(map, {1000, 1000}, 4, fastParams(), rngA);
  auto b = makeGroup(map, {1000, 1000}, 4, fastParams(), rngB);
  for (sim::TimePoint t = sim::kTimeZero; t <= sim::kTimeZero + 100 * kSecond; t += 7 * kSecond) {
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i]->positionAt(t), b[i]->positionAt(t));
    }
  }
}

TEST(GroupMobility, SharedCenterToleratesInterleavedQueries) {
  // The scheduler queries members in arbitrary order at the same timestamp;
  // the shared center must tolerate repeated equal-time queries.
  const MapSpec map = MapSpec::square(3);
  sim::Rng rng(8);
  auto models = makeGroup(map, {750, 750}, 3, fastParams(), rng);
  for (sim::TimePoint t = sim::kTimeZero; t <= sim::kTimeZero + 50 * kSecond; t += kSecond) {
    (void)models[2]->positionAt(t);
    (void)models[0]->positionAt(t);
    (void)models[1]->positionAt(t);
    (void)models[0]->positionAt(t);  // repeat at same t
  }
  SUCCEED();
}

// --------------------------------------------- via the scenario config

TEST(GroupMobilityScenario, WorldBuildsGroups) {
  experiment::ScenarioConfig config;
  config.mapUnits = 7;
  config.numHosts = 30;
  config.mobility = experiment::ScenarioConfig::Mobility::kGroup;
  config.groupSize = 6;
  config.groupSpanMeters = 150.0;
  config.numBroadcasts = 0;
  config.seed = 5;
  experiment::World world(config);
  // Hosts of the same team are mutually in radio range (span 150 << 500).
  const auto positions = world.channel().snapshotPositions();
  for (std::uint32_t base = 0; base + 5 < 30; base += 6) {
    for (std::uint32_t i = base; i < base + 6; ++i) {
      for (std::uint32_t j = i + 1; j < base + 6; ++j) {
        EXPECT_LE(geom::distance(positions[i], positions[j]), 500.0);
      }
    }
  }
}

TEST(GroupMobilityScenario, FullRunWorks) {
  experiment::ScenarioConfig config;
  config.mapUnits = 7;
  config.numHosts = 40;
  config.mobility = experiment::ScenarioConfig::Mobility::kGroup;
  config.numBroadcasts = 10;
  config.scheme = experiment::SchemeSpec::adaptiveCounter();
  config.seed = 6;
  const auto r = experiment::runScenario(config);
  EXPECT_GT(r.re(), 0.5);
  EXPECT_EQ(r.summary.broadcasts, 10u);
}

TEST(WaypointScenario, FullRunWorks) {
  experiment::ScenarioConfig config;
  config.mapUnits = 5;
  config.numHosts = 40;
  config.mobility = experiment::ScenarioConfig::Mobility::kWaypoint;
  config.numBroadcasts = 10;
  config.scheme = experiment::SchemeSpec::flooding();
  config.seed = 7;
  const auto r = experiment::runScenario(config);
  EXPECT_GT(r.re(), 0.5);
}

}  // namespace
}  // namespace manet::mobility
