#!/usr/bin/env python3
"""Inspect a .mckpt checkpoint container (DESIGN.md §14).

Walks the TLV container with nothing but the tag table: verifies the magic,
the format version, and every per-section FNV-1a payload digest, then prints
a section listing with sizes. The META section (anchor/horizon tick pair) and
the HOST section's count prefix are decoded and pretty-printed; everything
else is reported by tag, length, and digest status only — the binary layouts
live in src/ckpt/image.cpp and this tool deliberately does not mirror them.

Usage: ckpt_inspect.py FILE.mckpt [FILE2.mckpt ...]
Exit status: 0 all files well-formed, 1 any corruption/mismatch, 2 usage.
"""

from __future__ import annotations

import struct
import sys

MAGIC = b"MCKPT1\n"
FORMAT_VERSION = 1  # src/ckpt/io.hpp kFormatVersion

FNV_OFFSET = 14695981039346656037
FNV_PRIME = 1099511628211
FNV_MASK = (1 << 64) - 1

# Known section tags, in encoder order (src/ckpt/image.cpp). An unknown tag
# is listed as `unknown(tag, len)` but is NOT a problem: the container is
# designed for forward-compatible appends (a newer encoder may add sections
# this tool predates), and its digest is still verified. Only a *missing*
# known section or a digest mismatch fails the exit status.
KNOWN_TAGS = {
    "CFG0": "resolved ScenarioConfig",
    "META": "anchor/horizon timestamps",
    "SCHD": "scheduler heap image",
    "CHAN": "channel counters + per-node state",
    "TRAF": "traffic cursor, schedule, churn ledgers",
    "FALT": "fault-injection chains",
    "STAT": "metrics collector + obs registry",
    "HOST": "per-host protocol state",
}


def fnv1a(payload: bytes) -> int:
    h = FNV_OFFSET
    for b in payload:
        h = ((h ^ b) * FNV_PRIME) & FNV_MASK
    return h


def ticks_to_seconds(ticks: int) -> float:
    return ticks / 1e6  # one tick == one simulated microsecond


def inspect(path: str) -> int:
    """Prints a report for one file; returns the number of problems found."""
    try:
        with open(path, "rb") as f:
            data = f.read()
    except OSError as e:
        print(f"{path}: unreadable: {e}")
        return 1

    problems = 0
    print(f"{path}: {len(data)} bytes")

    if data[: len(MAGIC)] != MAGIC:
        print(f"  BAD magic {data[:len(MAGIC)]!r} (want {MAGIC!r})")
        return 1
    pos = len(MAGIC)
    if len(data) < pos + 4:
        print("  truncated before version field")
        return 1
    (version,) = struct.unpack_from("<I", data, pos)
    pos += 4
    ok = "ok" if version == FORMAT_VERSION else f"UNSUPPORTED (tool knows {FORMAT_VERSION})"
    print(f"  magic ok, version {version} {ok}")
    if version != FORMAT_VERSION:
        problems += 1

    sections: dict[str, bytes] = {}
    while pos < len(data):
        if len(data) - pos < 4 + 8:
            print(f"  truncated section header at offset {pos}")
            return problems + 1
        tag = data[pos : pos + 4].decode("ascii", errors="replace")
        (length,) = struct.unpack_from("<Q", data, pos + 4)
        pos += 12
        if len(data) - pos < length + 8:
            print(
                f"  section {tag}: truncated (need {length + 8} bytes "
                f"at offset {pos}, have {len(data) - pos})"
            )
            return problems + 1
        payload = data[pos : pos + length]
        (stored,) = struct.unpack_from("<Q", data, pos + length)
        pos += length + 8
        computed = fnv1a(payload)
        status = "digest ok" if computed == stored else (
            f"DIGEST MISMATCH (stored {stored:016x}, computed {computed:016x})"
        )
        if computed != stored:
            problems += 1
        note = KNOWN_TAGS.get(tag)
        if note is None:
            note = f"unknown({tag}, {length})"
        print(f"  {tag}  {length:>8} bytes  {status}  -- {note}")
        sections[tag] = payload

    meta = sections.get("META")
    if meta is not None and len(meta) == 16:
        anchor, horizon = struct.unpack("<qq", meta)
        print(
            f"  anchor t={ticks_to_seconds(anchor):.6f}s of "
            f"{ticks_to_seconds(horizon):.6f}s horizon"
        )
    elif meta is not None:
        print(f"  META payload has {len(meta)} bytes (want 16)")
        problems += 1
    host = sections.get("HOST")
    if host is not None and len(host) >= 8:
        (count,) = struct.unpack_from("<Q", host, 0)
        print(f"  hosts: {count}")
    missing = sorted(set(KNOWN_TAGS) - set(sections))
    if missing:
        print(f"  MISSING sections: {', '.join(missing)}")
        problems += 1
    return problems


def main(argv: list[str]) -> int:
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__)
        return 0 if argv else 2
    total = 0
    for path in argv:
        total += inspect(path)
    if total:
        print(f"ckpt_inspect: {total} problem(s)")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
