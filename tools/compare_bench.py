#!/usr/bin/env python3
"""Compare bench run reports against committed baselines (DESIGN.md §10).

Consumes the `manet.bench-report` JSON documents the benches emit with
`--json <path>` / MANET_BENCH_JSON=<dir> and compares each against the
baseline of the same filename under bench/baselines/.

Failure policy — two severities, deliberately asymmetric:

  HARD FAIL (exit 1): schema/shape mismatches. Wrong schema name or
  version, a baseline row label missing from the candidate, a missing
  result key, a retired metric name, or a REPRO_* scale mismatch between
  the two reports. These mean the reports are not comparable (or a
  metric/key was removed without the schema-version bump the policy in
  src/obs/report.hpp requires) and must never pass silently.

  WARN ONLY (exit 0, `::warning::` annotations on GitHub Actions):
  value drift — throughput regressions beyond --throughput-tolerance and
  differing deterministic values. Simulation results are bit-stable for a
  fixed platform, but baselines are recorded on one machine and CI runs on
  another: different glibc/libm versions round transcendentals differently,
  and wall-clock throughput depends on the runner's load. Tracking the
  trajectory is the point; gating merges on it would only teach people to
  ignore CI.

A third mode backs the checkpoint/resume CI gate (DESIGN.md §14):

  --require-identical: every value in the two reports must be EXACTLY equal
  — results, metrics, environment — except the fields that measure host
  wall-clock rather than simulation output (per-row wallSeconds and
  framesPerWallSecond, the metrics `profile` scope timings) and the
  environment echo of the MANET_* variables that differ between the two
  legs by construction. Any other difference, float or int, is a HARD FAIL:
  the two reports come from the same binary on the same machine in the same
  job, so "close" is not a thing — a one-bit drift means resume diverged.

Usage:
  compare_bench.py --baselines bench/baselines --candidates out/
  compare_bench.py baseline.json candidate.json
  compare_bench.py --require-identical straight.json resumed.json

Exit status: 0 comparable (possibly with warnings), 1 shape mismatch,
2 usage error.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
from pathlib import Path

SCHEMA = "manet.bench-report"

# Result-row keys whose absence in a candidate row is a shape error.
REQUIRED_ROW_KEYS = (
    "label", "scheme", "seed", "re", "srb", "latencySeconds",
    "hellosPerHostPerSecond", "broadcasts", "offeredBroadcasts",
    "framesTransmitted", "framesDelivered", "framesCorrupted",
    "simulatedSeconds", "wallSeconds", "framesPerWallSecond",
)

# Deterministic per-row values: identical platform => identical bits. Drift
# here is worth a warning (usually a different libm, sometimes a real
# behaviour change that should come with a baseline refresh).
DETERMINISTIC_KEYS = (
    "seed", "re", "srb", "latencySeconds", "broadcasts",
    "offeredBroadcasts", "framesTransmitted", "framesDelivered",
    "framesCorrupted",
)


def on_actions() -> bool:
    return os.environ.get("GITHUB_ACTIONS") == "true"


class Comparison:
    def __init__(self, name: str) -> None:
        self.name = name
        self.errors: list[str] = []
        self.warnings: list[str] = []

    def error(self, msg: str) -> None:
        self.errors.append(msg)

    def warn(self, msg: str) -> None:
        self.warnings.append(msg)

    def emit(self) -> None:
        for msg in self.errors:
            print(f"{self.name}: ERROR: {msg}")
        for msg in self.warnings:
            if on_actions():
                print(f"::warning title=bench-trajectory {self.name}::{msg}")
            else:
                print(f"{self.name}: warning: {msg}")


def load(path: Path, cmp: Comparison) -> dict | None:
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        cmp.error(f"cannot load {path}: {exc}")
        return None
    if not isinstance(doc, dict):
        cmp.error(f"{path}: top level is not an object")
        return None
    return doc


def check_schema(doc: dict, which: str, cmp: Comparison) -> bool:
    if doc.get("schema") != SCHEMA:
        cmp.error(f"{which}: schema is {doc.get('schema')!r}, want {SCHEMA!r}")
        return False
    if not isinstance(doc.get("schemaVersion"), int):
        cmp.error(f"{which}: schemaVersion missing or not an int")
        return False
    return True


def rows_by_label(doc: dict, which: str, cmp: Comparison) -> dict | None:
    results = doc.get("results")
    if not isinstance(results, list):
        cmp.error(f"{which}: results missing or not an array")
        return None
    out: dict[str, dict] = {}
    for row in results:
        if not isinstance(row, dict) or "label" not in row:
            cmp.error(f"{which}: result row without a label")
            return None
        if row["label"] in out:
            cmp.error(f"{which}: duplicate row label {row['label']!r}")
            return None
        out[row["label"]] = row
    return out


def repro_env(doc: dict) -> dict[str, str]:
    env = doc.get("environment", {}).get("env", {})
    if not isinstance(env, dict):
        return {}
    return {k: v for k, v in env.items() if k.startswith("REPRO_")}


def compare_metrics(base_row: dict, cand_row: dict, label: str,
                    cmp: Comparison) -> None:
    base_m = base_row.get("metrics")
    cand_m = cand_row.get("metrics")
    if base_m is None:
        return
    if cand_m is None:
        cmp.error(f"row {label!r}: baseline has metrics, candidate does not")
        return
    for section in ("counters", "gauges", "histograms"):
        base_names = set(base_m.get(section, {}))
        cand_names = set(cand_m.get(section, {}))
        gone = base_names - cand_names
        if gone:
            cmp.error(
                f"row {label!r}: metric name(s) retired from {section} "
                f"without a schema bump: {', '.join(sorted(gone))}"
            )
    for prefix, meaning in TRACKED_COUNTER_FAMILIES:
        compare_counter_family(base_m, cand_m, label, prefix, meaning, cmp)


# Counter families whose per-row values are deterministic for a fixed
# scenario, so any drift is a behaviour change worth a warning with the
# exact counters (name shape is enforced by the retired-name hard fail in
# compare_metrics):
#   engine.alloc.* — allocation discipline (DESIGN.md §11): slab carving,
#       InlineFn heap spills, packet-arena reuse. Drift means a capture
#       outgrew the inline buffer or a call site bypassed the arena.
#   traffic.*      — workload accounting (DESIGN.md §12): offered/injected/
#       completed requests and delivered copies. Drift means the generator's
#       draw sequence or the delivery accounting changed.
#   engine.shard.* — sharded-execution cadence (DESIGN.md §15): windows
#       closed, barrier messages, cross-shard copies. Deterministic for a
#       fixed scenario AND execution mode, but a checkpoint/resume run
#       phases its windows differently than a straight run (the resume leg
#       restarts the window loop at the checkpoint anchor), so the family
#       is warn-only here and excluded from --require-identical entirely.
TRACKED_COUNTER_FAMILIES = (
    ("engine.alloc.", "allocation discipline changed"),
    ("traffic.", "workload generation or delivery accounting changed"),
    ("engine.shard.", "shard window cadence changed"),
)


def compare_counter_family(base_m: dict, cand_m: dict, label: str,
                           prefix: str, meaning: str,
                           cmp: Comparison) -> None:
    base_family = {k: v for k, v in base_m.get("counters", {}).items()
                   if k.startswith(prefix)}
    cand_c = cand_m.get("counters", {})
    drifted = [
        f"{name} {value!r} -> {cand_c.get(name)!r}"
        for name, value in sorted(base_family.items())
        if name in cand_c and cand_c.get(name) != value
    ]
    if drifted:
        cmp.warn(
            f"row {label!r}: {prefix}* counters drifted ({meaning}; refresh "
            f"the baseline if intentional): {'; '.join(drifted)}"
        )


def compare_values(base_row: dict, cand_row: dict, label: str,
                   cmp: Comparison) -> None:
    drifted = []
    for key in DETERMINISTIC_KEYS:
        b, c = base_row.get(key), cand_row.get(key)
        if isinstance(b, float) or isinstance(c, float):
            same = (isinstance(b, (int, float)) and
                    isinstance(c, (int, float)) and
                    math.isclose(b, c, rel_tol=1e-9, abs_tol=1e-12))
        else:
            same = b == c
        if not same:
            drifted.append(f"{key} {b!r} -> {c!r}")
    if drifted:
        cmp.warn(
            f"row {label!r}: deterministic values drifted (differing "
            f"platform/libm, or a behaviour change needing a baseline "
            f"refresh): {'; '.join(drifted)}"
        )


def aggregate_throughput(rows: dict[str, dict]) -> float:
    """Report-level frames / wall-second. Per-row wall times at CI scale are
    sub-millisecond and dominated by scheduling noise; the whole-report
    aggregate is the trackable trajectory number."""
    frames = sum(r.get("framesTransmitted", 0) for r in rows.values()
                 if isinstance(r.get("framesTransmitted"), int))
    wall = sum(r.get("wallSeconds", 0.0) for r in rows.values()
               if isinstance(r.get("wallSeconds"), (int, float)))
    return frames / wall if wall > 0 else 0.0


# --require-identical exclusions: the only report content allowed to differ
# between a straight run and a checkpoint/resume run of the same scenario on
# the same machine. Wall-clock fields measure the host, not the simulation;
# the engine.shard.* counters measure the window loop's phasing, which a
# resume leg legitimately restarts at the checkpoint anchor (DESIGN.md §15)
# — every other counter must still match bit for bit.
WALL_ROW_KEYS = ("wallSeconds", "framesPerWallSecond")
WALL_METRIC_KEYS = ("profile",)
PHASING_COUNTER_PREFIXES = ("engine.shard.",)


def strip_wall_clock(doc: dict) -> dict:
    """Deep-copies `doc` minus wall-clock/phasing fields and the env echo."""
    out = json.loads(json.dumps(doc))
    env = out.get("environment")
    if isinstance(env, dict):
        # The env echo legitimately differs: the resume leg carries
        # MANET_CKPT_* that the straight leg does not.
        env.pop("env", None)
    results = out.get("results")
    if isinstance(results, list):
        for row in results:
            if not isinstance(row, dict):
                continue
            for key in WALL_ROW_KEYS:
                row.pop(key, None)
            metrics = row.get("metrics")
            if isinstance(metrics, dict):
                for key in WALL_METRIC_KEYS:
                    metrics.pop(key, None)
                counters = metrics.get("counters")
                if isinstance(counters, dict):
                    for name in [n for n in counters
                                 if n.startswith(PHASING_COUNTER_PREFIXES)]:
                        counters.pop(name)
    return out


def deep_diff(base, cand, path: str, out: list[str], limit: int = 40) -> None:
    """Collects human-readable paths of every difference (exact equality —
    floats included: both documents come from the same binary and platform,
    so resume-equivalence means bit-equality, not closeness)."""
    if len(out) >= limit:
        return
    if isinstance(base, dict) and isinstance(cand, dict):
        for key in sorted(set(base) | set(cand)):
            where = f"{path}.{key}" if path else str(key)
            if key not in base:
                out.append(f"{where}: only in candidate")
            elif key not in cand:
                out.append(f"{where}: only in baseline")
            else:
                deep_diff(base[key], cand[key], where, out, limit)
    elif isinstance(base, list) and isinstance(cand, list):
        if len(base) != len(cand):
            out.append(f"{path}: length {len(base)} vs {len(cand)}")
            return
        for i, (b, c) in enumerate(zip(base, cand)):
            deep_diff(b, c, f"{path}[{i}]", out, limit)
    elif base != cand or type(base) is not type(cand):
        out.append(f"{path}: {base!r} != {cand!r}")


def compare_identical(base_path: Path, cand_path: Path) -> Comparison:
    """The zero-drift gate: reports must match exactly outside wall-clock."""
    cmp = Comparison(f"{base_path.name} == {cand_path.name}")
    base = load(base_path, cmp)
    cand = load(cand_path, cmp)
    if base is None or cand is None:
        return cmp
    if not check_schema(base, "baseline", cmp):
        return cmp
    if not check_schema(cand, "candidate", cmp):
        return cmp
    diffs: list[str] = []
    deep_diff(strip_wall_clock(base), strip_wall_clock(cand), "", diffs)
    for d in diffs:
        cmp.error(f"resume drift: {d}")
    return cmp


def compare_reports(base_path: Path, cand_path: Path,
                    tolerance: float) -> Comparison:
    cmp = Comparison(cand_path.name)
    base = load(base_path, cmp)
    cand = load(cand_path, cmp)
    if base is None or cand is None:
        return cmp
    if not check_schema(base, "baseline", cmp):
        return cmp
    if not check_schema(cand, "candidate", cmp):
        return cmp
    if base["schemaVersion"] != cand["schemaVersion"]:
        cmp.error(
            f"schemaVersion mismatch: baseline {base['schemaVersion']}, "
            f"candidate {cand['schemaVersion']} — refresh the baseline"
        )
        return cmp
    if base.get("bench") != cand.get("bench"):
        cmp.error(
            f"bench name mismatch: {base.get('bench')!r} vs "
            f"{cand.get('bench')!r}"
        )
        return cmp

    base_env, cand_env = repro_env(base), repro_env(cand)
    if base_env != cand_env:
        cmp.error(
            f"REPRO_* scale mismatch (reports not comparable): baseline "
            f"{base_env}, candidate {cand_env}"
        )
        return cmp

    base_rows = rows_by_label(base, "baseline", cmp)
    cand_rows = rows_by_label(cand, "candidate", cmp)
    if base_rows is None or cand_rows is None:
        return cmp

    missing = set(base_rows) - set(cand_rows)
    if missing:
        cmp.error(f"row label(s) missing from candidate: "
                  f"{', '.join(sorted(missing))}")
    extra = set(cand_rows) - set(base_rows)
    if extra:
        cmp.warn(f"new row label(s) not in baseline (additive, consider a "
                 f"baseline refresh): {', '.join(sorted(extra))}")

    for label in sorted(set(base_rows) & set(cand_rows)):
        base_row, cand_row = base_rows[label], cand_rows[label]
        absent = [k for k in REQUIRED_ROW_KEYS if k not in cand_row]
        if absent:
            cmp.error(f"row {label!r}: missing key(s) {', '.join(absent)}")
            continue
        compare_metrics(base_row, cand_row, label, cmp)
        compare_values(base_row, cand_row, label, cmp)

    base_tp = aggregate_throughput(base_rows)
    cand_tp = aggregate_throughput(cand_rows)
    if base_tp > 0 and cand_tp >= 0:
        drop = (base_tp - cand_tp) / base_tp
        if drop > tolerance:
            cmp.warn(
                f"aggregate throughput regressed {drop:.0%} "
                f"({base_tp:.0f} -> {cand_tp:.0f} frames/wall-second, "
                f"tolerance {tolerance:.0%})"
            )
    return cmp


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("files", nargs="*",
                    help="explicit BASELINE CANDIDATE pair")
    ap.add_argument("--baselines", type=Path,
                    help="directory of committed baseline reports")
    ap.add_argument("--candidates", type=Path,
                    help="directory of freshly produced reports")
    ap.add_argument("--throughput-tolerance", type=float, default=0.20,
                    help="warn when framesPerWallSecond drops by more than "
                         "this fraction (default 0.20)")
    ap.add_argument("--require-identical", action="store_true",
                    help="hard-fail on ANY difference outside wall-clock "
                         "fields (the checkpoint resume-equivalence gate)")
    args = ap.parse_args(argv)

    pairs: list[tuple[Path, Path]] = []
    if args.files:
        if len(args.files) != 2 or args.baselines or args.candidates:
            ap.error("positional usage is exactly: BASELINE CANDIDATE")
        pairs.append((Path(args.files[0]), Path(args.files[1])))
    elif args.baselines and args.candidates:
        baselines = sorted(args.baselines.glob("BENCH_*.json"))
        if not baselines:
            print(f"compare_bench: no BENCH_*.json under {args.baselines}",
                  file=sys.stderr)
            return 2
        # A baseline without a fresh report fails inside compare_reports —
        # the trajectory must not silently stop being tracked.
        for base in baselines:
            pairs.append((base, args.candidates / base.name))
    else:
        ap.error("need either BASELINE CANDIDATE or --baselines/--candidates")

    failed = 0
    warned = 0
    for base, cand in pairs:
        if args.require_identical:
            cmp = compare_identical(base, cand)
        else:
            cmp = compare_reports(base, cand, args.throughput_tolerance)
        cmp.emit()
        failed += len(cmp.errors)
        warned += len(cmp.warnings)

    n = len(pairs)
    if failed:
        what = "drift" if args.require_identical else "shape error"
        print(f"compare_bench: {failed} {what}(s) across {n} report(s)")
        return 1
    if args.require_identical:
        print(f"compare_bench: {n} report pair(s) identical outside "
              f"wall-clock fields")
    else:
        print(f"compare_bench: {n} report(s) comparable, {warned} warning(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
