#!/usr/bin/env bash
# Static-analysis gate (DESIGN.md §9): runs clang-tidy with the project
# profile (.clang-tidy) over every translation unit under src/, using the
# compile_commands.json of an exported build tree.
#
#   tools/run_tidy.sh [build-dir]
#
# The build dir defaults to ./build and is configured on demand with
# -DCMAKE_EXPORT_COMPILE_COMMANDS=ON. Exits non-zero on any finding (the
# profile sets WarningsAsErrors: '*'). When no clang-tidy binary exists on
# PATH the gate is skipped with exit 0 so source-only environments (and the
# gcc legs of CI) still pass; the clang CI leg provides the enforcement.
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build="${1:-"${repo}/build"}"

tidy=""
for candidate in clang-tidy clang-tidy-{20,19,18,17,16,15,14}; do
  if command -v "${candidate}" > /dev/null 2>&1; then
    tidy="${candidate}"
    break
  fi
done
if [[ -z "${tidy}" ]]; then
  if [[ "${CI:-}" == "true" ]]; then
    # A CI leg that reaches this script expects enforcement; a missing
    # binary there is a misconfigured job, not a source-only environment.
    echo "run_tidy: ERROR: CI=true but no clang-tidy on PATH" >&2
    exit 1
  fi
  echo "run_tidy: SKIPPED (no clang-tidy on PATH)"
  exit 0
fi

if [[ ! -f "${build}/compile_commands.json" ]]; then
  cmake -B "${build}" -S "${repo}" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
fi
if [[ ! -f "${build}/compile_commands.json" ]]; then
  # The on-demand configure ran but exported nothing (e.g. a stale build
  # dir cached without the export flag). Locally that is a skippable
  # nuisance; in CI it would silently disable the whole gate.
  if [[ "${CI:-}" == "true" ]]; then
    echo "run_tidy: ERROR: CI=true and ${build}/compile_commands.json is" \
         "still missing after configure" >&2
    exit 1
  fi
  echo "run_tidy: SKIPPED (no compile_commands.json in ${build})"
  exit 0
fi

# Generated TUs (CMake compiler-id probes, GTest discovery stubs) are not
# ours to lint; everything else under src/ is.
mapfile -t files < <(cd "${repo}" && find src -name '*.cpp' | sort)
echo "run_tidy: ${tidy} over ${#files[@]} TUs (profile: .clang-tidy)"

status=0
if command -v run-clang-tidy > /dev/null 2>&1; then
  (cd "${repo}" && run-clang-tidy -clang-tidy-binary "${tidy}" -quiet \
      -p "${build}" "^${repo}/src/.*" > /tmp/run_tidy.out 2>&1) || status=$?
  grep -E "warning:|error:" /tmp/run_tidy.out | sort -u || true
else
  for f in "${files[@]}"; do
    "${tidy}" -p "${build}" --quiet "${repo}/${f}" || status=$?
  done
fi

if [[ ${status} -ne 0 ]]; then
  echo "run_tidy: FAILED (fix the findings or extend .clang-tidy with a reason)"
  exit 1
fi
echo "run_tidy: OK"
