#!/usr/bin/env python3
"""Determinism lint (DESIGN.md §9).

The simulator's contract is bit-identical runs from a single seed (DESIGN.md
§5): every random draw flows from sim::Rng streams, and no observable value
may depend on wall clock, address-space layout, or thread identity. This
lint statically bans the hazard classes that have historically broken that
contract in DES codebases:

  H1  ambient entropy:   rand()/srand(), std::random_device, time(),
                         clock(), gettimeofday, std::chrono::*_clock::now
                         outside src/sim/random* (the one sanctioned seam)
  H2  unordered iteration: range-for / begin() iteration over a variable
                         declared as std::unordered_map/unordered_set in the
                         same file — iteration order is stdlib-specific, so
                         anything it feeds (output, RNG draws, event
                         scheduling) varies across platforms
  H3  unseeded shuffle:  std::random_shuffle (ambient RNG) or std::shuffle
                         whose engine argument is constructed inline from
                         ambient entropy
  H4  thread identity:   std::this_thread::get_id, pthread_self,
                         omp_get_thread_num outside src/experiment/parallel*
                         (the sweep runner may partition by thread; results
                         must not)
  H5  address order:     std::map/std::set (and their unordered cousins)
                         keyed on raw pointers — the iteration order (for
                         ordered) or bucket layout (for unordered) follows
                         the allocator's address assignment, which varies
                         run to run under ASLR and changed with the §11
                         slab/arena work; key on stable ids instead
  H6  stdlib randomness: <random> engines and distributions
                         (std::mt19937, std::uniform_int_distribution,
                         std::exponential_distribution, ...) outside
                         src/sim/random. Distribution output is
                         implementation-defined — the standard pins the
                         engine sequences but not the distribution
                         algorithms, so draws differ across stdlibs. All
                         subsystem randomness (traffic arrivals included)
                         goes through sim::Rng, whose transforms are owned
                         by this repo.

Escape hatch: a site that is genuinely order-insensitive (e.g. cancelling
timers, erasing from the same container) carries

    // NOLINT-determinism(reason why order/entropy cannot be observed)

on the same or the preceding line. A bare NOLINT-determinism without a
reason is itself an error — the reason is the review artifact.

Usage: lint_determinism.py [--root DIR] [PATHS...]   (default: <repo>/src)
       lint_determinism.py --self-test
Exit status: 0 clean, 1 findings, 2 usage error.

--self-test lints a synthetic fixture tree instead of the repo: one file
per hazard class that must fire, plus one file per sanctioned home and
suppression form that must stay clean. CI runs it before the real lint so
a regex regression can't silently turn the lint into a no-op.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
import tempfile
from pathlib import Path

# Files allowed to touch ambient entropy (H1): the RNG seam itself.
ENTROPY_ALLOWED = ("src/sim/random",)
# Files allowed wall-clock reads (H1 chrono): measurement-only call sites —
# wall-clock throughput in RunResult, bench harness timing, and the obs
# profiling scopes (src/obs/profile is the sanctioned steady_clock home; all
# other code times itself through obs::ProfileScope rather than reading a
# clock directly). Simulation state must never depend on them. A site
# outside these files that must read a clock carries a reasoned
# `// NOLINT-determinism(...)` instead of widening this list — the list is
# for homes whose whole purpose is measurement, the escape hatch is for
# exceptional single sites.
WALLCLOCK_ALLOWED = (
    "src/sim/random",
    "src/experiment/runner",
    "src/experiment/bench_util",
    "src/experiment/parallel",
    "src/obs/profile",
)
# Files allowed thread-identity logic (H4): the parallel sweep partitioner
# and the shard coordinator's worker pool (DESIGN.md §15). Both follow the
# same discipline — lanes are explicit function arguments and results must
# not depend on which OS thread ran a chunk — but they are the two homes
# where pool plumbing may legitimately need identity-adjacent calls.
THREAD_ALLOWED = ("src/experiment/parallel", "src/sim/shard/")
# Homes allowed to iterate unordered containers (H2): checkpoint capture
# (DESIGN.md §14) reads every container once, collect-then-sort by a stable
# key, so serialized images never depend on hash iteration order. The
# pattern is pervasive there; one home beats NOLINT scattering.
H2_SORTED_ALLOWED = ("src/ckpt/",)

SUPPRESS = re.compile(r"//\s*NOLINT-determinism\((?P<reason>[^)]*)\)")
LINE_COMMENT = re.compile(r"//.*$")

H1_ENTROPY = re.compile(
    r"(?<![\w:])(?:std::)?(?:random_device\b|s?rand\s*\(|rand_r\s*\()"
)
H1_WALLCLOCK = re.compile(
    r"(?<![\w:])(?:std::)?(?:time\s*\(\s*(?:NULL|nullptr|0|&)|"
    r"clock\s*\(\s*\)|gettimeofday\s*\(|clock_gettime\s*\()"
    r"|std::chrono::(?:system|steady|high_resolution)_clock::now"
)
H2_DECL = re.compile(
    r"(?:std::)?unordered_(?:map|set)\s*<[^;()]*?>\s*\n?\s*(?P<name>\w+)\s*"
    r"(?:;|=|\{)"
)
H3_RANDOM_SHUFFLE = re.compile(r"(?<![\w:])(?:std::)?random_shuffle\s*\(")
H3_INLINE_ENGINE = re.compile(
    r"(?<![\w:])(?:std::)?shuffle\s*\([^;]*?(?:std::)?"
    r"(?:mt19937(?:_64)?|minstd_rand0?|default_random_engine)\s*[({]"
)
H4_THREAD_ID = re.compile(
    r"std::this_thread::get_id|pthread_self\s*\(|omp_get_thread_num\s*\("
)
# A map/set whose FIRST template argument is a pointer type (`T*`,
# `const T*`, including template-ids like `Foo<int>*`). Matching stops at
# the first comma so pointer-valued maps (`map<Id, Node*>`) stay legal —
# values never drive iteration order.
H5_PTR_KEYED = re.compile(
    r"(?<![\w:])(?:std::)?(?:unordered_)?(?:map|set|multimap|multiset)\s*<"
    r"\s*(?:const\s+)?[\w:]+(?:<[^<>,]*>)?\s*(?:const\s*)?\*"
)
# Homes sanctioned to key on addresses (must prove order-insensitivity some
# other way). Deliberately empty: src currently has none, and a new one
# should be a reviewed NOLINT-determinism site, not a silent list entry.
PTR_KEY_ALLOWED: tuple[str, ...] = ()
# <random> engines and distributions (H6). The engine names overlap H3's
# inline-shuffle check; H6 bans them anywhere outside the RNG seam, shuffled
# or not.
H6_STD_RANDOM = re.compile(
    r"(?<![\w:])(?:std::)?(?:mt19937(?:_64)?|minstd_rand0?|"
    r"ranlux(?:24|48)(?:_base)?|knuth_b|default_random_engine|"
    r"(?:uniform_(?:int|real)|normal|lognormal|exponential|poisson|"
    r"bernoulli|binomial|geometric|gamma|weibull|cauchy|chi_squared|"
    r"student_t|fisher_f|discrete|piecewise_(?:constant|linear))"
    r"_distribution)\s*[<({]"
)


def allowed(rel: str, prefixes: tuple[str, ...]) -> bool:
    return any(rel.startswith(p) for p in prefixes)


def strip_strings(line: str) -> str:
    """Blanks out string/char literals so banned names inside text don't trip."""
    return re.sub(r'"(?:[^"\\]|\\.)*"|\'(?:[^\'\\]|\\.)*\'', '""', line)


def suppressed(lines: list[str], idx: int, findings: list) -> bool:
    """True when line idx (0-based) carries a reasoned suppression."""
    for probe in (idx, idx - 1):
        if probe < 0:
            continue
        m = SUPPRESS.search(lines[probe])
        if m:
            if not m.group("reason").strip():
                findings.append(
                    (probe + 1, "NOLINT-determinism without a reason")
                )
            return True
    return False


def lint_file(path: Path, rel: str) -> list[tuple[int, str]]:
    text = path.read_text(encoding="utf-8", errors="replace")
    lines = text.split("\n")
    findings: list[tuple[int, str]] = []

    # H2 needs the file's unordered-container variable names first. Scan the
    # raw text so multi-line declarations are caught; a .cpp also inherits
    # the declarations of its companion header (members live in the .hpp,
    # the iteration in the .cpp).
    decl_text = text
    companion = path.with_suffix(".hpp")
    if path.suffix == ".cpp" and companion.is_file():
        decl_text += companion.read_text(encoding="utf-8", errors="replace")
    unordered_names = set(m.group("name") for m in H2_DECL.finditer(decl_text))
    unordered_names.discard("")
    h2_iter = (
        re.compile(
            r"for\s*\([^;)]*:\s*(?:\w+(?:\.|->))?(?P<n>"
            + "|".join(sorted(unordered_names))
            + r")\s*\)"
            r"|(?P<m>" + "|".join(sorted(unordered_names)) + r")\s*\.\s*"
            r"c?begin\s*\("
        )
        if unordered_names
        else None
    )

    for idx, raw in enumerate(lines):
        code = strip_strings(LINE_COMMENT.sub("", raw))
        if not code.strip():
            continue

        def report(msg: str) -> None:
            if not suppressed(lines, idx, findings):
                findings.append((idx + 1, msg))

        if H1_ENTROPY.search(code) and not allowed(rel, ENTROPY_ALLOWED):
            report("H1 ambient entropy (use a sim::Rng stream)")
        if H1_WALLCLOCK.search(code) and not allowed(rel, WALLCLOCK_ALLOWED):
            report("H1 wall-clock read (simulation state must use sim::Time)")
        if (h2_iter is not None and h2_iter.search(code)
                and not allowed(rel, H2_SORTED_ALLOWED)):
            report(
                "H2 iteration over unordered container (order is "
                "stdlib-specific; sort first or justify with "
                "NOLINT-determinism)"
            )
        if H3_RANDOM_SHUFFLE.search(code):
            report("H3 std::random_shuffle (ambient RNG; use an Rng stream)")
        if H3_INLINE_ENGINE.search(code):
            report("H3 shuffle with inline-constructed engine (seed it from "
                   "a sim::Rng stream)")
        if H4_THREAD_ID.search(code) and not allowed(rel, THREAD_ALLOWED):
            report("H4 thread-identity-dependent logic")
        if H5_PTR_KEYED.search(code) and not allowed(rel, PTR_KEY_ALLOWED):
            report(
                "H5 pointer-keyed map/set (iteration follows address-space "
                "layout; key on a stable id, or justify with "
                "NOLINT-determinism)"
            )
        if H6_STD_RANDOM.search(code) and not allowed(rel, ENTROPY_ALLOWED):
            report(
                "H6 <random> engine/distribution (implementation-defined "
                "output; draw through sim::Rng instead)"
            )

    return findings


# --self-test fixtures: (relative path, source, expected message fragments).
# An empty expectation list means the file must lint clean — those cases pin
# the sanctioned homes (ENTROPY/WALLCLOCK/THREAD/H2 allowed lists) and the
# reasoned-NOLINT escape hatch. Non-empty lists are hazards that must fire;
# every fragment must appear in some finding (extra findings are fine — the
# inline-engine shuffle legitimately trips H3 and H6 at once).
SELF_TEST_CASES: tuple[tuple[str, str, tuple[str, ...]], ...] = (
    ("src/net/h1_entropy.cpp", "int x = rand();\n",
     ("H1 ambient entropy",)),
    ("src/net/h1_wallclock.cpp",
     "auto t = std::chrono::steady_clock::now();\n",
     ("H1 wall-clock read",)),
    ("src/net/h2_iteration.cpp",
     "std::unordered_map<int, int> table;\n"
     "void f() { for (auto& kv : table) { (void)kv; } }\n",
     ("H2 iteration over unordered container",)),
    ("src/net/h3_shuffle.cpp",
     "void f() { std::random_shuffle(v.begin(), v.end()); }\n",
     ("H3 std::random_shuffle",)),
    ("src/net/h3_engine.cpp",
     "void f() { std::shuffle(v.begin(), v.end(), std::mt19937(7)); }\n",
     ("H3 shuffle with inline-constructed engine",)),
    ("src/net/h4_thread_id.cpp",
     "auto id = std::this_thread::get_id();\n",
     ("H4 thread-identity",)),
    ("src/net/h5_ptr_key.cpp", "std::map<Node*, int> byAddress;\n",
     ("H5 pointer-keyed map/set",)),
    ("src/net/h6_distribution.cpp",
     "std::uniform_int_distribution<int> d(0, 9);\n",
     ("H6 <random> engine/distribution",)),
    ("src/net/bare_nolint.cpp",
     "int x = rand();  // NOLINT-determinism()\n",
     ("NOLINT-determinism without a reason",)),
    # Clean: the reasoned escape hatch and every sanctioned home.
    ("src/net/reasoned_nolint.cpp",
     "int x = rand();  // NOLINT-determinism(fixture seeds a test vector)\n",
     ()),
    ("src/sim/random.cpp",
     "std::mt19937 engine(seed);\nint x = rand();\n", ()),
    ("src/experiment/parallel.cpp",
     "auto id = std::this_thread::get_id();\n", ()),
    ("src/sim/shard/coordinator.cpp",
     "auto id = std::this_thread::get_id();\n", ()),
    ("src/ckpt/capture.cpp",
     "std::unordered_map<int, int> table;\n"
     "void f() { for (auto& kv : table) { (void)kv; } }\n",
     ()),
    ("src/obs/profile.cpp",
     "auto t = std::chrono::steady_clock::now();\n", ()),
)


def self_test() -> int:
    failures = 0
    with tempfile.TemporaryDirectory(prefix="lint_selftest_") as tmp:
        root = Path(tmp)
        for rel, source, expected in SELF_TEST_CASES:
            path = root / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(source, encoding="utf-8")
            findings = lint_file(path, rel)
            messages = [msg for _, msg in findings]
            problems: list[str] = []
            if expected:
                for fragment in expected:
                    if not any(fragment in m for m in messages):
                        problems.append(f"expected {fragment!r}, "
                                        f"got {messages!r}")
            elif messages:
                problems.append(f"expected clean, got {messages!r}")
            if problems:
                failures += 1
                for p in problems:
                    print(f"self-test FAIL {rel}: {p}")
            else:
                print(f"self-test ok   {rel}")
    if failures:
        print(f"lint_determinism --self-test: {failures} case(s) failed")
        return 1
    print(f"lint_determinism --self-test: "
          f"{len(SELF_TEST_CASES)} case(s) passed")
    return 0


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", default=None, help="repo root (default: auto)")
    ap.add_argument("--self-test", action="store_true",
                    help="lint synthetic fixtures proving every hazard "
                         "class fires and every sanctioned home is honored")
    ap.add_argument("paths", nargs="*", help="files/dirs to lint")
    args = ap.parse_args(argv)

    if args.self_test:
        if args.paths or args.root:
            ap.error("--self-test takes no paths")
        return self_test()

    root = Path(args.root) if args.root else Path(__file__).resolve().parents[1]
    targets = [Path(p) for p in args.paths] or [root / "src"]

    files: list[Path] = []
    for t in targets:
        if t.is_dir():
            files.extend(sorted(t.rglob("*.cpp")) + sorted(t.rglob("*.hpp")))
        elif t.is_file():
            files.append(t)
        else:
            print(f"lint_determinism: no such path: {t}", file=sys.stderr)
            return 2

    total = 0
    for f in files:
        try:
            rel = f.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            rel = f.as_posix()
        for line, msg in lint_file(f, rel):
            print(f"{rel}:{line}: {msg}")
            if os.environ.get("GITHUB_ACTIONS", "") == "true":
                # Inline PR annotation; the plain line above stays for
                # local runs and the job log.
                print(f"::error file={rel},line={line}"
                      f"::lint_determinism: {msg}")
            total += 1

    if total:
        print(f"lint_determinism: {total} finding(s) in {len(files)} files")
        return 1
    print(f"lint_determinism: OK ({len(files)} files clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
