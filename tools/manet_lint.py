#!/usr/bin/env python3
"""Unit/identity type-safety lint (DESIGN.md §13).

PR 8 split `sim::Time` into `sim::TimePoint`/`sim::Duration` and wrapped
identities in `util::TaggedId` (net::HostId, net::BroadcastSeq, the
scheduler's EventSlot/EventGen). The compiler now rejects unit and identity
confusion — but only while code keeps using the strong types. This lint
guards the three regression channels that would quietly reopen the holes:

  U1  raw-unit parameters: a function parameter of raw integral type whose
      name matches `*_us`, `*_time`, or `*_id` in src/ — the naming says
      "this is a duration/timestamp/identity" while the type says "any
      integer"; the parameter must take sim::Duration / sim::TimePoint / a
      TaggedId instead. (Swapped-argument and seconds-vs-microseconds bugs
      compile silently through such parameters.)
  U2  tag-family casts: `static_cast` whose target is one of the strong
      types (TimePoint, Duration, HostId, BroadcastSeq, EventSlot,
      EventGen, or any util::TaggedId instantiation). A static_cast
      launders any integer — including a *different* tag's raw value —
      into the target family. Construct from a checked source instead
      (brace-init from the raw rep at a genuine boundary is fine and
      greppable; a cast is not).
  U3  .ticks() escapes: reading a TimePoint/Duration back out as a raw
      microsecond count outside the sanctioned homes (serialization,
      reports, audit, and the time/RNG seams themselves). Every other
      site must stay inside the algebra; a raw read is where unit bugs
      re-enter.

Engines: when the libclang python bindings and a compile_commands.json are
available the checks run on the clang AST (exact parameter types, exact
cast targets, member-call resolution). The CI container and the dev image
ship only libclang-cpp (no python bindings), so the default engine is a
pure-python lexical pass over the same rules: it strips comments/strings
and matches declaration-context patterns. The lexical engine is the one the
blocking gate runs; the AST engine is a strictly-more-precise drop-in that
activates automatically where bindings exist (`--engine ast` to force).

Escape hatch (same grammar as lint_determinism): a genuine boundary site
carries, on the same or the preceding line:

    // NOLINT-units(reason why the raw value is correct here)

A bare NOLINT-units without a reason is itself an error.

Usage: manet_lint.py [--root DIR] [--engine auto|ast|lexical] [PATHS...]
       manet_lint.py --self-test   (prove every rule fires on violating TUs)
Exit status: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
import tempfile
from pathlib import Path

# Homes sanctioned to read raw ticks (U3): serialization, reports, audit,
# and the seams that define/transform time itself. Directories end with /.
TICKS_ALLOWED = (
    "src/sim/time.hpp",      # the algebra's own definition
    "src/sim/random.cpp",    # draw transforms scale raw tick counts
    "src/trace/writer.cpp",  # trace serialization writes integers
    "src/audit/",            # invariant messages print raw clocks
    "src/obs/",              # metrics registry / run reports serialize
    "src/ckpt/",             # checkpoint serialization reads/writes ticks
)

# Strong-type names whose static_cast construction is banned (U2).
TAG_TYPES = (
    "TimePoint",
    "Duration",
    "HostId",
    "BroadcastSeq",
    "EventSlot",
    "EventGen",
    "TaggedId",
)

# Raw integral type spellings for U1's parameter check.
RAW_INTEGRAL = (
    r"(?:std::)?u?int(?:8|16|32|64)_t|(?:std::)?size_t|"
    r"(?:unsigned\s+)?(?:long\s+)?long|unsigned(?:\s+int)?|int|short"
)

SUPPRESS = re.compile(r"//\s*NOLINT-units\((?P<reason>[^)]*)\)")
LINE_COMMENT = re.compile(r"//.*$")

# U1: inside a parameter-ish context — after '(' or ',' — a raw integral
# type followed by an identifier with a unit/identity suffix. References
# and cv-qualifiers are part of the same hazard (const int64_t& delay_us).
U1_PARAM = re.compile(
    r"[(,]\s*(?:const\s+)?(?:" + RAW_INTEGRAL + r")\s*[&]?\s+"
    r"(?P<name>\w*_(?:us|time|id))\s*(?:[,)=]|$)"
)
# U2: static_cast to a tag family, qualified or not.
U2_CAST = re.compile(
    r"static_cast\s*<\s*(?:const\s+)?(?:[\w:]+::)?(?:"
    + "|".join(TAG_TYPES)
    + r")\s*[<>&]?"
)
# U3: member access .ticks() / ->ticks().
U3_TICKS = re.compile(r"(?:\.|->)\s*ticks\s*\(\s*\)")


def github_annotations_enabled() -> bool:
    return os.environ.get("GITHUB_ACTIONS", "") == "true"


def emit(rel: str, line: int, msg: str) -> None:
    print(f"{rel}:{line}: {msg}")
    if github_annotations_enabled():
        print(f"::error file={rel},line={line}::manet_lint: {msg}")


def ticks_allowed(rel: str) -> bool:
    return any(
        rel.startswith(p) if p.endswith("/") else rel == p
        for p in TICKS_ALLOWED
    )


def strip_strings(line: str) -> str:
    return re.sub(r'"(?:[^"\\]|\\.)*"|\'(?:[^\'\\]|\\.)*\'', '""', line)


def suppressed(lines: list[str], idx: int, findings: list) -> bool:
    """True when line idx (0-based) carries a reasoned suppression."""
    for probe in (idx, idx - 1):
        if probe < 0:
            continue
        m = SUPPRESS.search(lines[probe])
        if m:
            if not m.group("reason").strip():
                findings.append((probe + 1, "NOLINT-units without a reason"))
            return True
    return False


# --------------------------------------------------------------- lexical


def lint_file_lexical(path: Path, rel: str) -> list[tuple[int, str]]:
    text = path.read_text(encoding="utf-8", errors="replace")
    lines = text.split("\n")
    findings: list[tuple[int, str]] = []

    for idx, raw in enumerate(lines):
        code = strip_strings(LINE_COMMENT.sub("", raw))
        if not code.strip():
            continue

        def report(msg: str) -> None:
            if not suppressed(lines, idx, findings):
                findings.append((idx + 1, msg))

        m = U1_PARAM.search(code)
        if m:
            report(
                f"U1 raw integral parameter '{m.group('name')}' — a name "
                "with a unit/identity suffix must take sim::Duration / "
                "sim::TimePoint / a TaggedId, not a bare integer"
            )
        if U2_CAST.search(code):
            report(
                "U2 static_cast into a strong type family — casts launder "
                "any integer across tag families; construct from a checked "
                "source (or brace-init the raw rep at a real boundary)"
            )
        if U3_TICKS.search(code) and not ticks_allowed(rel):
            report(
                "U3 raw .ticks() read outside sanctioned homes "
                "(serialization/reports/audit) — stay inside the "
                "TimePoint/Duration algebra or justify with NOLINT-units"
            )

    return findings


# ------------------------------------------------------------------ AST


def lint_file_ast(path: Path, rel: str, index, compdb) -> list[tuple[int, str]]:
    """libclang engine: same rules, resolved on the AST."""
    from clang import cindex

    args = ["-std=c++20", "-Isrc"]
    if compdb is not None:
        cmds = compdb.getCompileCommands(str(path))
        if cmds:
            got = [a for a in list(cmds[0].arguments)[1:-1] if a != "-c"]
            if got:
                args = got
    tu = index.parse(str(path), args=args)
    lines = path.read_text(encoding="utf-8", errors="replace").split("\n")
    findings: list[tuple[int, str]] = []

    def in_this_file(cursor) -> bool:
        loc = cursor.location
        return loc.file is not None and Path(loc.file.name).resolve() == path.resolve()

    def report(cursor, msg: str) -> None:
        idx = cursor.location.line - 1
        if not suppressed(lines, idx, findings):
            findings.append((cursor.location.line, msg))

    integral_kinds = {
        k for k in dir(cindex.TypeKind) if k.startswith(("INT", "UINT", "LONG",
                                                         "ULONG", "SHORT",
                                                         "USHORT", "CHAR"))
    }

    def walk(cursor) -> None:
        for c in cursor.get_children():
            if not in_this_file(c):
                continue
            k = c.kind
            if k == cindex.CursorKind.PARM_DECL:
                name = c.spelling or ""
                if re.search(r"_(us|time|id)$", name):
                    canon = c.type.get_canonical()
                    if canon.kind.name in integral_kinds:
                        report(c, f"U1 raw integral parameter '{name}'")
            elif k == cindex.CursorKind.CXX_STATIC_CAST_EXPR:
                target = c.type.spelling
                if any(t in target for t in TAG_TYPES):
                    report(c, "U2 static_cast into a strong type family")
            elif k == cindex.CursorKind.CXX_METHOD or k == cindex.CursorKind.CALL_EXPR:
                if c.spelling == "ticks" and not ticks_allowed(rel):
                    report(c, "U3 raw .ticks() read outside sanctioned homes")
            walk(c)

    walk(tu.cursor)
    return findings


def ast_engine_available() -> bool:
    try:
        from clang import cindex  # noqa: F401

        cindex.Index.create()
        return True
    except Exception:
        return False


# ------------------------------------------------------------ self-test

# One violating TU per rule; each MUST produce exactly the named finding,
# and the suppressed twin must not. This is the ctest proof that every
# rule actually fires (ISSUE 8 acceptance).
SELF_TEST_CASES = [
    (
        "U1",
        "void schedule(long delay_us);\n",
        "U1",
    ),
    (
        "U1-suppressed",
        "// NOLINT-units(FFI boundary: caller is C code)\n"
        "void schedule(long delay_us);\n",
        None,
    ),
    (
        "U2",
        "auto h = static_cast<net::HostId>(index);\n",
        "U2",
    ),
    (
        "U2-qualified-duration",
        "auto d = static_cast<sim::Duration>(raw);\n",
        "U2",
    ),
    (
        "U3",
        "long raw = deadline.ticks();\n",
        "U3",
    ),
    (
        "U3-suppressed",
        "long raw = deadline.ticks();  // NOLINT-units(metric sample)\n",
        None,
    ),
    (
        "bare-nolint-is-error",
        "long raw = deadline.ticks();  // NOLINT-units()\n",
        "NOLINT-units without a reason",
    ),
    (
        "clean",
        "void schedule(sim::Duration delay);\n"
        "net::HostId h{raw};\n",
        None,
    ),
]


def self_test() -> int:
    failures = 0
    with tempfile.TemporaryDirectory() as td:
        for name, code, expect in SELF_TEST_CASES:
            tu = Path(td) / f"{name}.cpp"
            tu.write_text(code)
            findings = lint_file_lexical(tu, f"src/selftest/{name}.cpp")
            fired = [msg for _, msg in findings]
            if expect is None:
                if fired:
                    print(f"self-test FAIL [{name}]: unexpected {fired}")
                    failures += 1
            elif not any(expect in msg for msg in fired):
                print(f"self-test FAIL [{name}]: wanted '{expect}', got {fired}")
                failures += 1
    if failures:
        print(f"manet_lint --self-test: {failures} case(s) failed")
        return 1
    print(f"manet_lint --self-test: OK ({len(SELF_TEST_CASES)} cases)")
    return 0


# ---------------------------------------------------------------- driver


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", default=None, help="repo root (default: auto)")
    ap.add_argument(
        "--engine",
        choices=("auto", "ast", "lexical"),
        default="auto",
        help="analysis engine (auto: AST when libclang bindings exist)",
    )
    ap.add_argument("--self-test", action="store_true",
                    help="run the rule-firing proof and exit")
    ap.add_argument("paths", nargs="*", help="files/dirs to lint")
    args = ap.parse_args(argv)

    if args.self_test:
        return self_test()

    root = Path(args.root) if args.root else Path(__file__).resolve().parents[1]
    targets = [Path(p) for p in args.paths] or [root / "src"]

    files: list[Path] = []
    for t in targets:
        if t.is_dir():
            files.extend(sorted(t.rglob("*.cpp")) + sorted(t.rglob("*.hpp")))
        elif t.is_file():
            files.append(t)
        else:
            print(f"manet_lint: no such path: {t}", file=sys.stderr)
            return 2

    engine = args.engine
    if engine == "auto":
        engine = "ast" if ast_engine_available() else "lexical"
    if engine == "ast" and not ast_engine_available():
        print("manet_lint: libclang python bindings unavailable", file=sys.stderr)
        return 2

    index = compdb = None
    if engine == "ast":
        from clang import cindex

        index = cindex.Index.create()
        try:
            compdb = cindex.CompilationDatabase.fromDirectory(
                str(root / "build")
            )
        except cindex.CompilationDatabaseError:
            compdb = None

    total = 0
    for f in files:
        try:
            rel = f.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            rel = f.as_posix()
        if engine == "ast" and f.suffix == ".cpp":
            findings = lint_file_ast(f, rel, index, compdb)
        else:
            findings = lint_file_lexical(f, rel)
        for line, msg in findings:
            emit(rel, line, msg)
            total += 1

    if total:
        print(f"manet_lint[{engine}]: {total} finding(s) in {len(files)} files")
        return 1
    print(f"manet_lint[{engine}]: OK ({len(files)} files clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
