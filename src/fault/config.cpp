#include "fault/config.hpp"

#include "util/env.hpp"

namespace manet::fault {

FaultConfig FaultConfig::withEnvOverrides() const {
  FaultConfig out = *this;

  if (auto lossName = util::envString("MANET_FAULT_LOSS")) {
    if (*lossName == "none") {
      out.loss = Loss::kNone;
    } else if (*lossName == "iid") {
      out.loss = Loss::kIid;
    } else if (*lossName == "ge") {
      out.loss = Loss::kGilbertElliott;
    }
  }
  if (util::envString("MANET_FAULT_PER")) {
    out.per = util::envDouble("MANET_FAULT_PER", out.per);
    // A bare PER means i.i.d. loss unless the model was named explicitly.
    if (!util::envString("MANET_FAULT_LOSS") && out.loss == Loss::kNone) {
      out.loss = Loss::kIid;
    }
  }
  out.geLossGood = util::envDouble("MANET_FAULT_GE_LOSS_GOOD", out.geLossGood);
  out.geLossBad = util::envDouble("MANET_FAULT_GE_LOSS_BAD", out.geLossBad);
  out.geGoodToBad = util::envDouble("MANET_FAULT_GE_P_GB", out.geGoodToBad);
  out.geBadToGood = util::envDouble("MANET_FAULT_GE_P_BG", out.geBadToGood);

  out.churn = util::envInt("MANET_FAULT_CHURN", out.churn ? 1 : 0) != 0;
  out.churnFraction =
      util::envDouble("MANET_FAULT_CHURN_FRACTION", out.churnFraction);
  if (auto up = util::envString("MANET_FAULT_UP_S")) {
    (void)up;
    out.meanUpTime =
        sim::scaleTrunc(sim::kSecond, util::envDouble("MANET_FAULT_UP_S", 0));
  }
  if (auto down = util::envString("MANET_FAULT_DOWN_S")) {
    (void)down;
    out.meanDownTime = sim::scaleTrunc(
        sim::kSecond, util::envDouble("MANET_FAULT_DOWN_S", 0));
  }
  return out;
}

}  // namespace manet::fault
