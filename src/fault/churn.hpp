// Host churn schedule generation (DESIGN.md §8). Turns a FaultConfig into a
// sorted crash/recover timeline the world replays: either the explicit
// script, or a random schedule where a seeded subset of hosts alternates
// exponentially distributed up/down dwell times.
#pragma once

#include <vector>

#include "fault/config.hpp"
#include "sim/random.hpp"

namespace manet::fault {

/// Builds the churn timeline for `numHosts` hosts over [0, horizon).
/// Scripted events (if any) take precedence over random generation; out-of-
/// horizon events are dropped. The result is sorted by (at, node) and all
/// draws come from `rng`, a stream dedicated to churn.
std::vector<ChurnEvent> buildChurnTimeline(const FaultConfig& config,
                                           int numHosts, sim::TimePoint horizon,
                                           sim::Rng rng);

}  // namespace manet::fault
