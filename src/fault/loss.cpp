#include "fault/loss.hpp"

#include "util/assert.hpp"

namespace manet::fault {

bool IidLoss::shouldDrop(net::HostId src, net::HostId dst) {
  (void)src;
  (void)dst;
  return rng_.bernoulli(per_);
}

GilbertElliottLoss::LinkState& GilbertElliottLoss::link(net::HostId src,
                                                        net::HostId dst) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(src.value()) << 32) |
      static_cast<std::uint64_t>(dst.value());
  auto it = links_.find(key);
  if (it == links_.end()) {
    // Key-derived fork: the same (src, dst) pair always gets the same
    // stream, independent of the order links first see traffic.
    it = links_.emplace(key, LinkState{false, rng_.fork(key)}).first;
  }
  return it->second;
}

bool GilbertElliottLoss::shouldDrop(net::HostId src, net::HostId dst) {
  LinkState& state = link(src, dst);
  const double lossP =
      state.bad ? config_.geLossBad : config_.geLossGood;
  const bool drop = state.rng.bernoulli(lossP);
  const double flipP = state.bad ? config_.geBadToGood : config_.geGoodToBad;
  if (state.rng.bernoulli(flipP)) state.bad = !state.bad;
  return drop;
}

bool GilbertElliottLoss::linkBad(net::HostId src, net::HostId dst) const {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(src.value()) << 32) |
      static_cast<std::uint64_t>(dst.value());
  auto it = links_.find(key);
  return it != links_.end() && it->second.bad;
}

std::unique_ptr<LossModel> makeLossModel(const FaultConfig& config,
                                         sim::Rng rng) {
  switch (config.loss) {
    case FaultConfig::Loss::kNone:
      return nullptr;
    case FaultConfig::Loss::kIid:
      MANET_EXPECTS(config.per >= 0.0 && config.per <= 1.0);
      return std::make_unique<IidLoss>(config.per, rng);
    case FaultConfig::Loss::kGilbertElliott:
      return std::make_unique<GilbertElliottLoss>(config, rng);
  }
  return nullptr;
}

}  // namespace manet::fault
