#include "fault/churn.hpp"

#include <algorithm>
#include <cmath>

namespace manet::fault {
namespace {

/// Exponentially distributed duration with the given mean, floored at one
/// microsecond so consecutive events never coincide on a host.
sim::Duration exponential(sim::Rng& rng, sim::Duration mean) {
  const double u = rng.uniform();
  return std::max(sim::kMicrosecond, sim::scaleTrunc(mean, -std::log(1.0 - u)));
}

}  // namespace

std::vector<ChurnEvent> buildChurnTimeline(const FaultConfig& config,
                                           int numHosts, sim::TimePoint horizon,
                                           sim::Rng rng) {
  std::vector<ChurnEvent> timeline;
  if (!config.script.empty()) {
    for (const ChurnEvent& ev : config.script) {
      if (ev.at < horizon && ev.node.value() < static_cast<std::uint32_t>(numHosts)) {
        timeline.push_back(ev);
      }
    }
  } else if (config.churn) {
    for (int i = 0; i < numHosts; ++i) {
      // Per-host stream: membership and dwell times of host i never depend
      // on how many events other hosts generated.
      sim::Rng hostRng = rng.fork(static_cast<std::uint64_t>(i));
      if (!hostRng.bernoulli(config.churnFraction)) continue;
      // Start mid-cycle so crashes are spread over the run instead of
      // clustering near t = 0.
      sim::TimePoint t = sim::kTimeZero + exponential(hostRng, config.meanUpTime);
      bool up = false;  // next transition takes the host down
      while (t < horizon) {
        timeline.push_back(
            ChurnEvent{net::HostId{static_cast<std::uint32_t>(i)}, t, up});
        t += exponential(hostRng,
                         up ? config.meanUpTime : config.meanDownTime);
        up = !up;
      }
    }
  }
  std::sort(timeline.begin(), timeline.end(),
            [](const ChurnEvent& a, const ChurnEvent& b) {
              if (a.at != b.at) return a.at < b.at;
              if (a.node != b.node) return a.node < b.node;
              return a.up < b.up;
            });
  return timeline;
}

}  // namespace manet::fault
