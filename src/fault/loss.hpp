// Link impairment models (DESIGN.md §8). A LossModel decides, per reception,
// whether the frame arrives with a failed FCS. The channel invokes it after
// range resolution and before collision bookkeeping, so a lost frame still
// asserts energy at the receiver (carrier sense and collisions are
// unaffected) — only the FCS verdict changes.
//
// Each model draws from its own forked RNG stream; the Gilbert–Elliott model
// additionally forks one stream per (src, dst) link so the per-link Markov
// chains are independent and the draw order is insensitive to which other
// links happen to carry traffic.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "fault/config.hpp"
#include "net/ids.hpp"
#include "sim/random.hpp"

namespace manet::ckpt {
struct StateAccess;
}

namespace manet::fault {

class LossModel {
 public:
  virtual ~LossModel() = default;
  /// True when the frame from `src` arriving at `dst` should be corrupted.
  virtual bool shouldDrop(net::HostId src, net::HostId dst) = 0;
  virtual const char* name() const = 0;
};

/// Independent, identically distributed loss: every reception fails with
/// probability `per`, regardless of link or history.
class IidLoss final : public LossModel {
 public:
  IidLoss(double per, sim::Rng rng) : per_(per), rng_(rng) {}
  bool shouldDrop(net::HostId src, net::HostId dst) override;
  const char* name() const override { return "iid"; }

 private:
  friend struct manet::ckpt::StateAccess;
  double per_;
  sim::Rng rng_;
};

/// Two-state bursty loss. Each directed (src, dst) link carries its own
/// Good/Bad Markov chain advanced once per reception on that link: the loss
/// verdict is drawn from the current state's loss probability, then the
/// state transition is evaluated. All links start in Good.
class GilbertElliottLoss final : public LossModel {
 public:
  GilbertElliottLoss(const FaultConfig& config, sim::Rng rng)
      : config_(config), rng_(rng) {}
  bool shouldDrop(net::HostId src, net::HostId dst) override;
  const char* name() const override { return "gilbert_elliott"; }

  /// True when the link's chain is currently in the Bad state (test hook).
  bool linkBad(net::HostId src, net::HostId dst) const;

 private:
  friend struct manet::ckpt::StateAccess;
  struct LinkState {
    bool bad = false;
    sim::Rng rng;
  };
  LinkState& link(net::HostId src, net::HostId dst);

  FaultConfig config_;
  sim::Rng rng_;  // parent stream the per-link streams fork from
  std::unordered_map<std::uint64_t, LinkState> links_;
};

/// Builds the configured model, or nullptr for FaultConfig::Loss::kNone.
/// `rng` must be a stream dedicated to link loss (forked from the master
/// seed) so enabling loss never perturbs other components' draws.
std::unique_ptr<LossModel> makeLossModel(const FaultConfig& config,
                                         sim::Rng rng);

}  // namespace manet::fault
