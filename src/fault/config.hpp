// Fault-injection configuration (DESIGN.md §8): link impairment models and
// host churn. Everything defaults to off, and a disabled FaultConfig leaves
// a run bit-identical to one that predates the fault subsystem — fault RNG
// streams are forked from dedicated stream ids, so enabling or disabling
// faults never shifts mobility, traffic, or MAC draws.
#pragma once

#include <vector>

#include "net/ids.hpp"
#include "sim/time.hpp"

namespace manet::fault {

/// One scripted churn transition: `node` goes down (`up = false`) or comes
/// back up at absolute simulation time `at`.
struct ChurnEvent {
  net::HostId node = net::kInvalidHost;
  sim::TimePoint at{};
  bool up = false;
};

struct FaultConfig {
  // --- link impairment -----------------------------------------------------
  enum class Loss {
    kNone,            // bit-identical to the fault-free channel
    kIid,             // i.i.d. per-reception loss with probability `per`
    kGilbertElliott,  // two-state bursty model, per-(src,dst) chain state
  };
  Loss loss = Loss::kNone;

  /// kIid: probability each reception is dropped.
  double per = 0.0;

  /// kGilbertElliott: loss probability in the Good/Bad states and the
  /// state-transition probabilities, evaluated once per reception on that
  /// link (draw loss from the current state, then maybe transition). The
  /// stationary Bad-state share is gb/(gb+bg); defaults give a long-run
  /// average loss of ~0.19 concentrated in bursts of mean length 1/bg = 4.
  double geLossGood = 0.0;
  double geLossBad = 0.75;
  double geGoodToBad = 0.085;  // P(Good -> Bad) per reception
  double geBadToGood = 0.25;   // P(Bad -> Good) per reception

  // --- host churn ----------------------------------------------------------
  /// Random up/down cycling: each host independently joins the churn pool
  /// with probability `churnFraction`; pool members alternate exponentially
  /// distributed up/down dwell times.
  bool churn = false;
  double churnFraction = 0.3;
  sim::Duration meanUpTime = 20 * sim::kSecond;
  sim::Duration meanDownTime = 5 * sim::kSecond;

  /// Explicit crash/recover timeline; when non-empty it replaces the random
  /// schedule (and `churn` need not be set). Events may be given in any
  /// order; the world sorts by (at, node).
  std::vector<ChurnEvent> script;

  bool lossEnabled() const { return loss != Loss::kNone; }
  bool churnEnabled() const { return churn || !script.empty(); }
  bool enabled() const { return lossEnabled() || churnEnabled(); }

  /// Returns a copy with the `MANET_FAULT_*` environment overrides applied
  /// (same pattern as MANET_CHANNEL_GRID / MANET_THREADS — rerun a built
  /// binary under faults without touching code):
  ///   MANET_FAULT_LOSS = none | iid | ge
  ///   MANET_FAULT_PER  = <double>     (implies iid when MANET_FAULT_LOSS
  ///                                    is unset)
  ///   MANET_FAULT_GE_LOSS_GOOD / _GE_LOSS_BAD / _GE_P_GB / _GE_P_BG
  ///   MANET_FAULT_CHURN = 0 | 1
  ///   MANET_FAULT_CHURN_FRACTION = <double>
  ///   MANET_FAULT_UP_S / MANET_FAULT_DOWN_S = <double seconds>
  FaultConfig withEnvOverrides() const;
};

}  // namespace manet::fault
