#include "stats/metrics.hpp"

#include <algorithm>

#include "stats/histogram.hpp"
#include "util/assert.hpp"

namespace manet::stats {

double PerBroadcast::reachability() const {
  if (reachable <= 0) return 1.0;  // nobody to reach: vacuously complete
  return std::min(1.0, static_cast<double>(received) /
                           static_cast<double>(reachable));
}

double PerBroadcast::savedRebroadcast() const {
  if (received <= 0) return 0.0;
  return static_cast<double>(received - rebroadcast) /
         static_cast<double>(received);
}

double PerBroadcast::latencySeconds() const {
  return sim::toSeconds(std::max(sim::Duration{}, lastFinal - start));
}

double PerBroadcast::meanHops() const {
  if (received <= 0) return 0.0;
  return static_cast<double>(hopSum) / static_cast<double>(received);
}

MetricsCollector::MetricsCollector(std::size_t numHosts)
    : numHosts_(numHosts) {
  MANET_EXPECTS(numHosts > 0);
}

PerBroadcast& MetricsCollector::record(net::BroadcastId bid) {
  auto it = live_.find(bid);
  MANET_EXPECTS(it != live_.end());
  return order_[it->second.index];
}

void MetricsCollector::onBroadcastStart(net::BroadcastId bid,
                                        net::HostId source, sim::TimePoint now,
                                        int reachable) {
  MANET_EXPECTS(!live_.contains(bid));
  Record rec;
  rec.index = order_.size();
  rec.deliveredTo.assign(numHosts_, false);
  rec.deliveredTo[source.value()] = true;  // source trivially has it
  live_.emplace(bid, std::move(rec));
  PerBroadcast pb;
  pb.bid = bid;
  pb.start = now;
  pb.reachable = reachable;
  pb.lastFinal = now;
  order_.push_back(pb);
  ++dataFramesSent_;  // the source's initial transmission
}

void MetricsCollector::onDelivered(net::BroadcastId bid, net::HostId host,
                                   sim::TimePoint now, int hops) {
  auto it = live_.find(bid);
  MANET_EXPECTS(it != live_.end());
  MANET_EXPECTS(host.value() < numHosts_);
  MANET_EXPECTS(hops >= 0);
  if (it->second.deliveredTo[host.value()]) return;  // dups don't re-count
  it->second.deliveredTo[host.value()] = true;
  PerBroadcast& pb = order_[it->second.index];
  ++pb.received;
  pb.hopSum += hops;
  pb.maxHops = std::max(pb.maxHops, hops);
  pb.lastFinal = std::max(pb.lastFinal, now);
}

void MetricsCollector::onRebroadcast(net::BroadcastId bid, net::HostId host,
                                     sim::TimePoint now) {
  PerBroadcast& pb = record(bid);
  (void)host;
  ++pb.rebroadcast;
  ++dataFramesSent_;
  pb.lastFinal = std::max(pb.lastFinal, now);
}

void MetricsCollector::onFinalized(net::BroadcastId bid, net::HostId host,
                                   sim::TimePoint now) {
  PerBroadcast& pb = record(bid);
  (void)host;
  pb.lastFinal = std::max(pb.lastFinal, now);
}

void MetricsCollector::onHelloSent(net::HostId) { ++hellosSent_; }

RunSummary MetricsCollector::summarize() const {
  RunningStat re;
  RunningStat srb;
  RunningStat latency;
  RunningStat hops;
  QuantileEstimator latencyQ;
  std::uint64_t received = 0;
  std::uint64_t rebroadcast = 0;
  std::uint64_t reachable = 0;
  for (const PerBroadcast& pb : order_) {
    if (pb.reachable > 0) re.add(pb.reachability());
    if (pb.received > 0) {
      srb.add(pb.savedRebroadcast());
      hops.add(pb.meanHops());
    }
    latency.add(pb.latencySeconds());
    latencyQ.add(pb.latencySeconds());
    received += static_cast<std::uint64_t>(std::max(0, pb.received));
    rebroadcast += static_cast<std::uint64_t>(std::max(0, pb.rebroadcast));
    reachable += static_cast<std::uint64_t>(std::max(0, pb.reachable));
  }
  RunSummary out;
  out.totalReceived = received;
  out.totalRebroadcast = rebroadcast;
  out.totalReachable = reachable;
  out.meanRe = re.mean();
  out.meanSrb = srb.mean();
  out.meanLatencySeconds = latency.mean();
  out.latencyP50Seconds = latencyQ.median();
  out.latencyP95Seconds = latencyQ.p95();
  out.meanHops = hops.mean();
  out.reCi95 = re.ci95();
  out.srbCi95 = srb.ci95();
  out.broadcasts = order_.size();
  out.hellosSent = hellosSent_;
  out.dataFramesSent = dataFramesSent_;
  return out;
}

}  // namespace manet::stats
