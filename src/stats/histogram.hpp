// Quantile estimation over bounded-ish samples: exact storage up to a cap,
// then reservoir sampling. Used for latency percentiles (the paper reports
// means; tails are where contention shows first).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/random.hpp"

namespace manet::stats {

class QuantileEstimator {
 public:
  /// Stores up to `capacity` samples exactly; beyond that, keeps a uniform
  /// reservoir of that size (deterministic given `seed`).
  explicit QuantileEstimator(std::size_t capacity = 65536,
                             std::uint64_t seed = 1);

  void add(double sample);

  std::uint64_t count() const { return count_; }

  /// Quantile in [0, 1]; linear interpolation between order statistics.
  /// Returns 0 when empty.
  double quantile(double q) const;

  double median() const { return quantile(0.5); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }

 private:
  std::size_t capacity_;
  sim::Rng rng_;
  std::uint64_t count_ = 0;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

}  // namespace manet::stats
