// Quantile estimation over bounded-ish samples: exact storage up to a cap,
// then reservoir sampling. Used for latency percentiles (the paper reports
// means; tails are where contention shows first). Plus Histogram, the
// fixed-layout log-bucketed counterpart the obs metrics layer aggregates
// (DESIGN.md §10): exact counts, exact merge, no sampling.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "sim/random.hpp"

namespace manet::stats {

/// Fixed-layout histogram over non-negative samples with power-of-two bucket
/// edges: bucket 0 holds values < 1, bucket i (i >= 1) holds [2^(i-1), 2^i).
/// Everything is integer bucket arithmetic plus an ordered running sum, so
/// two histograms merged in a fixed order are byte-identical to one histogram
/// fed the concatenated samples in that order — the property the parallel
/// sweep runner relies on for thread-count-invariant metrics (DESIGN.md §10).
/// Header-only: the obs layer sits below stats in the link order and only
/// needs the type, not a library dependency.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  /// Bucket index for a sample (negatives clamp to bucket 0).
  static std::size_t bucketOf(double sample) {
    if (!(sample >= 1.0)) return 0;  // also catches NaN
    const auto truncated = static_cast<std::uint64_t>(
        std::min(sample, 9.0e18));  // clamp below 2^63 before the cast
    return std::min<std::size_t>(kBuckets - 1, std::bit_width(truncated));
  }

  /// Exclusive upper edge of a bucket (the report's bucket key).
  static double bucketUpper(std::size_t bucket) {
    if (bucket == 0) return 1.0;
    return static_cast<double>(std::uint64_t{1} << bucket);
  }

  void observe(double sample) {
    ++count_;
    sum_ += sample;
    min_ = count_ == 1 ? sample : std::min(min_, sample);
    max_ = count_ == 1 ? sample : std::max(max_, sample);
    ++buckets_[bucketOf(sample)];
  }

  /// Adds `other`'s contents. Merge order must be deterministic for the
  /// floating-point sum to be reproducible (callers merge in repetition
  /// order).
  void merge(const Histogram& other) {
    if (other.count_ == 0) return;
    min_ = count_ == 0 ? other.min_ : std::min(min_, other.min_);
    max_ = count_ == 0 ? other.max_ : std::max(max_, other.max_);
    count_ += other.count_;
    sum_ += other.sum_;
    for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  }

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double mean() const {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }
  std::uint64_t bucketCount(std::size_t bucket) const {
    return buckets_[bucket];
  }

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::uint64_t buckets_[kBuckets] = {};
};

class QuantileEstimator {
 public:
  /// Stores up to `capacity` samples exactly; beyond that, keeps a uniform
  /// reservoir of that size (deterministic given `seed`).
  explicit QuantileEstimator(std::size_t capacity = 65536,
                             std::uint64_t seed = 1);

  void add(double sample);

  std::uint64_t count() const { return count_; }

  /// Quantile in [0, 1]; linear interpolation between order statistics.
  /// Returns 0 when empty.
  double quantile(double q) const;

  double median() const { return quantile(0.5); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }

 private:
  std::size_t capacity_;
  sim::Rng rng_;
  std::uint64_t count_ = 0;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

}  // namespace manet::stats
