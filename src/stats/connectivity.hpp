// Unit-disk connectivity snapshots. RE's denominator e is "the number of
// mobile hosts that are reachable, directly or indirectly, from the source
// host at the moment when the broadcast is taken" (footnote 2: partitions
// are taken into account).
#pragma once

#include <cstddef>
#include <vector>

#include "geom/vec2.hpp"
#include "sim/shard/range_executor.hpp"

namespace manet::stats {

/// Number of hosts reachable from `source` over links of length <= radius,
/// NOT counting the source itself. O(V^2) BFS — fine at the paper's n = 100.
int reachableCount(const std::vector<geom::Vec2>& positions, double radius,
                   std::size_t source);

/// As above, but hosts whose `alive` flag is false neither relay nor count
/// toward the result (host churn: crashed hosts are unreachable and cannot
/// bridge partitions). `alive` must match `positions` in size and
/// `alive[source]` must be true.
int reachableCount(const std::vector<geom::Vec2>& positions,
                   const std::vector<bool>& alive, double radius,
                   std::size_t source);

/// As above, optionally fanning the per-level frontier expansion across
/// `executor`'s lanes (level-synchronous BFS with atomic claims). The set
/// of nodes discovered per level — and therefore the count — is identical
/// to the serial BFS for any lane count; pass nullptr (or a small
/// population) to fall back to the serial walk. `alive` may be nullptr.
int reachableCount(const std::vector<geom::Vec2>& positions,
                   const std::vector<bool>* alive, double radius,
                   std::size_t source,
                   const sim::shard::RangeExecutor* executor);

/// Ids of the hosts reachable from `source` (excluding it), ascending.
std::vector<std::size_t> reachableSet(const std::vector<geom::Vec2>& positions,
                                      double radius, std::size_t source);

/// Connected-component label per host (labels are 0-based, assigned in
/// order of first discovery).
std::vector<int> componentLabels(const std::vector<geom::Vec2>& positions,
                                 double radius);

/// True when every host can reach every other host.
bool isConnected(const std::vector<geom::Vec2>& positions, double radius);

/// Average node degree of the snapshot (diagnostic used by examples).
double averageDegree(const std::vector<geom::Vec2>& positions, double radius);

}  // namespace manet::stats
