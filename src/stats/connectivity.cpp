#include "stats/connectivity.hpp"

#include <algorithm>
#include <queue>

#include "util/assert.hpp"

namespace manet::stats {
namespace {

std::vector<std::size_t> bfs(const std::vector<geom::Vec2>& positions,
                             const std::vector<bool>* alive, double radius,
                             std::size_t source) {
  MANET_EXPECTS(source < positions.size());
  MANET_EXPECTS(radius > 0.0);
  MANET_EXPECTS(!alive ||
                (alive->size() == positions.size() && (*alive)[source]));
  const double r2 = radius * radius;
  std::vector<bool> visited(positions.size(), false);
  std::vector<std::size_t> reached;
  std::queue<std::size_t> frontier;
  visited[source] = true;
  frontier.push(source);
  while (!frontier.empty()) {
    const std::size_t u = frontier.front();
    frontier.pop();
    for (std::size_t v = 0; v < positions.size(); ++v) {
      if (visited[v]) continue;
      if (alive && !(*alive)[v]) continue;
      if (geom::distanceSquared(positions[u], positions[v]) <= r2) {
        visited[v] = true;
        reached.push_back(v);
        frontier.push(v);
      }
    }
  }
  return reached;  // ascending discovery order; excludes source
}

std::vector<std::size_t> bfs(const std::vector<geom::Vec2>& positions,
                             double radius, std::size_t source) {
  return bfs(positions, nullptr, radius, source);
}

}  // namespace

int reachableCount(const std::vector<geom::Vec2>& positions, double radius,
                   std::size_t source) {
  return static_cast<int>(bfs(positions, radius, source).size());
}

int reachableCount(const std::vector<geom::Vec2>& positions,
                   const std::vector<bool>& alive, double radius,
                   std::size_t source) {
  return static_cast<int>(bfs(positions, &alive, radius, source).size());
}

std::vector<std::size_t> reachableSet(const std::vector<geom::Vec2>& positions,
                                      double radius, std::size_t source) {
  auto reached = bfs(positions, radius, source);
  std::sort(reached.begin(), reached.end());
  return reached;
}

std::vector<int> componentLabels(const std::vector<geom::Vec2>& positions,
                                 double radius) {
  std::vector<int> labels(positions.size(), -1);
  int next = 0;
  for (std::size_t i = 0; i < positions.size(); ++i) {
    if (labels[i] != -1) continue;
    labels[i] = next;
    for (std::size_t j : bfs(positions, radius, i)) labels[j] = next;
    ++next;
  }
  return labels;
}

bool isConnected(const std::vector<geom::Vec2>& positions, double radius) {
  if (positions.size() <= 1) return true;
  return bfs(positions, radius, 0).size() == positions.size() - 1;
}

double averageDegree(const std::vector<geom::Vec2>& positions, double radius) {
  if (positions.empty()) return 0.0;
  const double r2 = radius * radius;
  std::size_t links = 0;
  for (std::size_t i = 0; i < positions.size(); ++i) {
    for (std::size_t j = i + 1; j < positions.size(); ++j) {
      if (geom::distanceSquared(positions[i], positions[j]) <= r2) ++links;
    }
  }
  return 2.0 * static_cast<double>(links) /
         static_cast<double>(positions.size());
}

}  // namespace manet::stats
