#include "stats/connectivity.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <queue>

#include "util/assert.hpp"

namespace manet::stats {
namespace {

/// Below this population the parallel BFS falls back to the serial walk:
/// one level barely fills a lane.
constexpr std::size_t kParallelBfsMinNodes = 256;

std::vector<std::size_t> bfs(const std::vector<geom::Vec2>& positions,
                             const std::vector<bool>* alive, double radius,
                             std::size_t source) {
  MANET_EXPECTS(source < positions.size());
  MANET_EXPECTS(radius > 0.0);
  MANET_EXPECTS(!alive ||
                (alive->size() == positions.size() && (*alive)[source]));
  const double r2 = radius * radius;
  std::vector<bool> visited(positions.size(), false);
  std::vector<std::size_t> reached;
  std::queue<std::size_t> frontier;
  visited[source] = true;
  frontier.push(source);
  while (!frontier.empty()) {
    const std::size_t u = frontier.front();
    frontier.pop();
    for (std::size_t v = 0; v < positions.size(); ++v) {
      if (visited[v]) continue;
      if (alive && !(*alive)[v]) continue;
      if (geom::distanceSquared(positions[u], positions[v]) <= r2) {
        visited[v] = true;
        reached.push_back(v);
        frontier.push(v);
      }
    }
  }
  return reached;  // ascending discovery order; excludes source
}

std::vector<std::size_t> bfs(const std::vector<geom::Vec2>& positions,
                             double radius, std::size_t source) {
  return bfs(positions, nullptr, radius, source);
}

/// Level-synchronous parallel BFS (DESIGN.md §15). Each level expands the
/// whole frontier across the executor's lanes; a node is claimed exactly
/// once via an atomic exchange. The *set* claimed per level is the set of
/// unvisited nodes within radius of any frontier node — independent of
/// which lane wins a claim race — so the reachable count equals the serial
/// BFS count for every lane count.
int parallelReachable(const std::vector<geom::Vec2>& positions,
                      const std::vector<bool>* alive, double radius,
                      std::size_t source,
                      const sim::shard::RangeExecutor& executor) {
  MANET_EXPECTS(source < positions.size());
  MANET_EXPECTS(radius > 0.0);
  MANET_EXPECTS(!alive ||
                (alive->size() == positions.size() && (*alive)[source]));
  const std::size_t n = positions.size();
  const double r2 = radius * radius;
  // 0 = unvisited, 1 = claimed, 2 = dead (never claimable).
  std::unique_ptr<std::atomic<std::uint8_t>[]> state(
      new std::atomic<std::uint8_t>[n]);
  for (std::size_t i = 0; i < n; ++i) {
    state[i].store(alive != nullptr && !(*alive)[i] ? 2 : 0,
                   std::memory_order_relaxed);
  }
  state[source].store(1, std::memory_order_relaxed);

  const int lanes = executor.lanes();
  std::vector<std::vector<std::uint32_t>> claimed(
      static_cast<std::size_t>(lanes));
  std::vector<std::uint32_t> frontier{static_cast<std::uint32_t>(source)};
  int reached = 0;
  while (!frontier.empty()) {
    executor.run(frontier.size(),
                 [&](int lane, std::size_t begin, std::size_t end) {
      std::vector<std::uint32_t>& out =
          claimed[static_cast<std::size_t>(lane)];
      for (std::size_t i = begin; i < end; ++i) {
        const geom::Vec2 u = positions[frontier[i]];
        for (std::uint32_t v = 0; v < n; ++v) {
          if (state[v].load(std::memory_order_relaxed) != 0) continue;
          if (geom::distanceSquared(u, positions[v]) > r2) continue;
          if (state[v].exchange(1, std::memory_order_relaxed) == 0) {
            out.push_back(v);
          }
        }
      }
    });
    frontier.clear();
    for (std::vector<std::uint32_t>& out : claimed) {
      reached += static_cast<int>(out.size());
      frontier.insert(frontier.end(), out.begin(), out.end());
      out.clear();
    }
  }
  return reached;
}

}  // namespace

int reachableCount(const std::vector<geom::Vec2>& positions, double radius,
                   std::size_t source) {
  return static_cast<int>(bfs(positions, radius, source).size());
}

int reachableCount(const std::vector<geom::Vec2>& positions,
                   const std::vector<bool>& alive, double radius,
                   std::size_t source) {
  return static_cast<int>(bfs(positions, &alive, radius, source).size());
}

int reachableCount(const std::vector<geom::Vec2>& positions,
                   const std::vector<bool>* alive, double radius,
                   std::size_t source,
                   const sim::shard::RangeExecutor* executor) {
  if (executor == nullptr || executor->lanes() <= 1 ||
      positions.size() < kParallelBfsMinNodes) {
    return static_cast<int>(bfs(positions, alive, radius, source).size());
  }
  return parallelReachable(positions, alive, radius, source, *executor);
}

std::vector<std::size_t> reachableSet(const std::vector<geom::Vec2>& positions,
                                      double radius, std::size_t source) {
  auto reached = bfs(positions, radius, source);
  std::sort(reached.begin(), reached.end());
  return reached;
}

std::vector<int> componentLabels(const std::vector<geom::Vec2>& positions,
                                 double radius) {
  std::vector<int> labels(positions.size(), -1);
  int next = 0;
  for (std::size_t i = 0; i < positions.size(); ++i) {
    if (labels[i] != -1) continue;
    labels[i] = next;
    for (std::size_t j : bfs(positions, radius, i)) labels[j] = next;
    ++next;
  }
  return labels;
}

bool isConnected(const std::vector<geom::Vec2>& positions, double radius) {
  if (positions.size() <= 1) return true;
  return bfs(positions, radius, 0).size() == positions.size() - 1;
}

double averageDegree(const std::vector<geom::Vec2>& positions, double radius) {
  if (positions.empty()) return 0.0;
  const double r2 = radius * radius;
  std::size_t links = 0;
  for (std::size_t i = 0; i < positions.size(); ++i) {
    for (std::size_t j = i + 1; j < positions.size(); ++j) {
      if (geom::distanceSquared(positions[i], positions[j]) <= r2) ++links;
    }
  }
  return 2.0 * static_cast<double>(links) /
         static_cast<double>(positions.size());
}

}  // namespace manet::stats
