// Streaming summary statistics (Welford) used to aggregate per-broadcast
// samples into the per-configuration numbers each figure plots.
#pragma once

#include <cstdint>

namespace manet::stats {

class RunningStat {
 public:
  void add(double sample);

  std::uint64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Unbiased sample variance (0 for fewer than two samples).
  double variance() const;
  double stddev() const;
  /// Half-width of the ~95% normal-approximation confidence interval.
  double ci95() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace manet::stats
