#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace manet::stats {

QuantileEstimator::QuantileEstimator(std::size_t capacity, std::uint64_t seed)
    : capacity_(capacity), rng_(seed) {
  MANET_EXPECTS(capacity >= 1);
  samples_.reserve(std::min<std::size_t>(capacity, 1024));
}

void QuantileEstimator::add(double sample) {
  ++count_;
  if (samples_.size() < capacity_) {
    samples_.push_back(sample);
    sorted_ = false;
    return;
  }
  // Vitter's algorithm R: keep each of the `count_` samples with equal
  // probability capacity/count.
  const auto slot = static_cast<std::uint64_t>(
      rng_.uniformInt(0, static_cast<std::int64_t>(count_) - 1));
  if (slot < capacity_) {
    samples_[static_cast<std::size_t>(slot)] = sample;
    sorted_ = false;
  }
}

double QuantileEstimator::quantile(double q) const {
  MANET_EXPECTS(q >= 0.0 && q <= 1.0);
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  const double position = q * static_cast<double>(samples_.size() - 1);
  const auto lower = static_cast<std::size_t>(position);
  const double fraction = position - static_cast<double>(lower);
  if (lower + 1 >= samples_.size()) return samples_.back();
  return samples_[lower] * (1.0 - fraction) + samples_[lower + 1] * fraction;
}

}  // namespace manet::stats
