#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>

namespace manet::stats {

void RunningStat::add(double sample) {
  if (count_ == 0) {
    min_ = max_ = sample;
  } else {
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
  }
  ++count_;
  const double delta = sample - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (sample - mean_);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double RunningStat::ci95() const {
  if (count_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(count_));
}

}  // namespace manet::stats
