// Per-broadcast bookkeeping and the paper's three performance metrics (§4):
//
//   RE  = r / e       r = hosts that received the packet,
//                     e = hosts reachable from the source at initiation.
//   SRB = (r - t) / r t = receiving hosts that actually rebroadcast.
//   latency           initiation -> the last host either finishes its
//                     rebroadcast or decides not to rebroadcast.
//
// Plus hello-packet counters for Fig. 12b.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/ids.hpp"
#include "sim/time.hpp"
#include "stats/summary.hpp"

namespace manet::ckpt {
struct StateAccess;
}

namespace manet::stats {

struct PerBroadcast {
  net::BroadcastId bid{};
  sim::TimePoint start{};
  int reachable = 0;    // e
  int received = 0;     // r
  int rebroadcast = 0;  // t
  sim::TimePoint lastFinal{};
  long hopSum = 0;      // sum of delivery hop counts
  int maxHops = 0;

  /// RE; clamped to 1 (mobility can let r slightly exceed the snapshot e).
  double reachability() const;
  /// SRB; 0 when nothing was received.
  double savedRebroadcast() const;
  double latencySeconds() const;
  /// Mean hops a delivered copy travelled (0 when nothing was received).
  double meanHops() const;
};

struct RunSummary {
  double meanRe = 0.0;
  double meanSrb = 0.0;
  double meanLatencySeconds = 0.0;
  double latencyP50Seconds = 0.0;
  double latencyP95Seconds = 0.0;
  double meanHops = 0.0;
  double reCi95 = 0.0;
  double srbCi95 = 0.0;
  std::uint64_t broadcasts = 0;
  std::uint64_t hellosSent = 0;
  std::uint64_t dataFramesSent = 0;  // source tx + rebroadcasts

  // Raw per-broadcast counts summed over the run (and, in pooled results,
  // over runs). meanRe/meanSrb are means of per-broadcast ratios — the
  // paper's averaging; these totals let callers recompute the pooled-count
  // variants sum(r)/sum(e) and (sum(r)-sum(t))/sum(r) alongside them.
  std::uint64_t totalReceived = 0;     // sum of r
  std::uint64_t totalRebroadcast = 0;  // sum of t
  std::uint64_t totalReachable = 0;    // sum of e
};

class MetricsCollector {
 public:
  explicit MetricsCollector(std::size_t numHosts);

  /// Broadcast lifecycle ------------------------------------------------
  void onBroadcastStart(net::BroadcastId bid, net::HostId source,
                        sim::TimePoint now, int reachable);
  /// First intact reception at `host` (at most once per host per bid).
  /// `hops`: distance the delivered copy travelled from the origin.
  void onDelivered(net::BroadcastId bid, net::HostId host, sim::TimePoint now,
                   int hops = 1);
  /// `host` started rebroadcasting bid (counted in t).
  void onRebroadcast(net::BroadcastId bid, net::HostId host, sim::TimePoint now);
  /// `host` reached its terminal state for bid: finished its (re)broadcast
  /// transmission, or was inhibited. Extends the latency horizon.
  void onFinalized(net::BroadcastId bid, net::HostId host, sim::TimePoint now);

  /// Hello accounting -----------------------------------------------------
  void onHelloSent(net::HostId host);

  /// Results ---------------------------------------------------------------
  const std::vector<PerBroadcast>& broadcasts() const { return order_; }
  std::uint64_t hellosSent() const { return hellosSent_; }
  RunSummary summarize() const;

 private:
  friend struct manet::ckpt::StateAccess;
  struct Record {
    std::size_t index;                // into order_
    std::vector<bool> deliveredTo;    // per host
  };

  PerBroadcast& record(net::BroadcastId bid);

  std::size_t numHosts_;
  std::unordered_map<net::BroadcastId, Record, net::BroadcastIdHash> live_;
  std::vector<PerBroadcast> order_;
  std::uint64_t hellosSent_ = 0;
  std::uint64_t dataFramesSent_ = 0;
};

}  // namespace manet::stats
