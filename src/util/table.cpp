#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "util/assert.hpp"

namespace manet::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  MANET_EXPECTS(!header_.empty());
}

void Table::addRow(std::vector<std::string> cells) {
  MANET_EXPECTS(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) {
        os << std::string(width[c] - row[c].size() + 2, ' ');
      }
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c + 1 < width.size() ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::printCsv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) os << ',';
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

std::string fmt(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", digits, value);
  return buffer;
}

std::string fmtPercent(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f%%", digits, value * 100.0);
  return buffer;
}

}  // namespace manet::util
