// Helpers for reading scaling knobs from the environment so benchmarks can be
// run quickly by default and at paper scale on demand.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace manet::util {

/// Returns the integer value of environment variable `name`, or `fallback`
/// when unset or unparsable.
std::int64_t envInt(const char* name, std::int64_t fallback);

/// Returns the double value of environment variable `name`, or `fallback`.
double envDouble(const char* name, double fallback);

/// Returns the string value of environment variable `name` if set.
std::optional<std::string> envString(const char* name);

}  // namespace manet::util
