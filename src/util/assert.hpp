// Lightweight contract checking, always on (simulation correctness beats the
// tiny cost of a predictable branch).
#pragma once

#include <cstdio>
#include <cstdlib>

namespace manet::util {

[[noreturn]] inline void contractFailure(const char* kind, const char* expr,
                                         const char* file, int line) {
  std::fprintf(stderr, "%s violated: %s at %s:%d\n", kind, expr, file, line);
  std::abort();
}

}  // namespace manet::util

// Precondition on a public API argument.
#define MANET_EXPECTS(cond)                                                  \
  ((cond) ? void(0)                                                         \
          : ::manet::util::contractFailure("Precondition", #cond, __FILE__, \
                                           __LINE__))

// Internal invariant.
#define MANET_ASSERT(cond)                                                 \
  ((cond) ? void(0)                                                       \
          : ::manet::util::contractFailure("Invariant", #cond, __FILE__, \
                                           __LINE__))
