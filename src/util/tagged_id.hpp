// Strong identifier wrapper (DESIGN.md §13).
//
// A TaggedId<Tag, Rep> is layout-identical to its underlying integer but a
// distinct type per Tag, so passing a host id where a broadcast sequence
// number is expected (or vice versa) is a compile error instead of a silent
// wire bug. Construction from the raw representation is explicit; there is
// no implicit conversion back — the raw value leaks only through .value(),
// which is legal everywhere (dense ids index arrays constantly) but
// static_casts that launder one tag family into another are rejected by
// tools/manet_lint.py.
//
// Instantiations live next to their domain:
//   net::HostId        dense host index (net/ids.hpp)
//   net::BroadcastSeq  per-source broadcast sequence number (net/ids.hpp)
//   sim::EventSlot/EventGen  scheduler handle components (sim/scheduler.hpp)
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <type_traits>

namespace manet::util {

template <typename Tag, typename Rep>
class TaggedId {
  static_assert(std::is_integral_v<Rep>,
                "TaggedId wraps an integral representation");

 public:
  using Underlying = Rep;

  constexpr TaggedId() = default;
  /// Wraps a raw value. Explicit: an untyped integer only becomes an id at
  /// a deliberate construction site.
  constexpr explicit TaggedId(Rep value) : value_(value) {}

  /// Raw representation — for array indexing, serialization, and wire
  /// formats. Unlike Duration::ticks() this is not lint-confined: dense ids
  /// index vectors throughout the engine.
  constexpr Rep value() const { return value_; }

  /// The successor id (dense id spaces: iteration and sequence numbering).
  constexpr TaggedId next() const {
    return TaggedId(static_cast<Rep>(value_ + 1));
  }
  constexpr TaggedId& operator++() {
    ++value_;
    return *this;
  }

  friend constexpr bool operator==(TaggedId, TaggedId) = default;
  friend constexpr bool operator<(TaggedId a, TaggedId b) {
    return a.value_ < b.value_;
  }
  friend constexpr bool operator>(TaggedId a, TaggedId b) { return b < a; }
  friend constexpr bool operator<=(TaggedId a, TaggedId b) {
    return !(b < a);
  }
  friend constexpr bool operator>=(TaggedId a, TaggedId b) {
    return !(a < b);
  }

 private:
  Rep value_{};
};

/// Hash functor for tagged ids (std::hash-compatible; usable as the Hash
/// parameter of unordered containers keyed by an id).
struct TaggedIdHash {
  template <typename Tag, typename Rep>
  std::size_t operator()(TaggedId<Tag, Rep> id) const {
    return std::hash<Rep>{}(id.value());
  }
};

}  // namespace manet::util

template <typename Tag, typename Rep>
struct std::hash<manet::util::TaggedId<Tag, Rep>> {
  std::size_t operator()(manet::util::TaggedId<Tag, Rep> id) const {
    return std::hash<Rep>{}(id.value());
  }
};
