#include "util/log.hpp"

#include <atomic>
#include <cstdio>

namespace manet::util {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* levelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo:  return "INFO";
    case LogLevel::kWarn:  return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff:   return "OFF";
  }
  return "?";
}

}  // namespace

void setLogLevel(LogLevel level) { g_level.store(level); }
LogLevel logLevel() { return g_level.load(); }

void logLine(LogLevel level, const std::string& message) {
  if (level < g_level.load()) return;
  std::fprintf(stderr, "[%s] %s\n", levelName(level), message.c_str());
}

}  // namespace manet::util
