#include "util/env.hpp"

#include <cstdlib>

namespace manet::util {

std::int64_t envInt(const char* name, std::int64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const long long value = std::strtoll(raw, &end, 10);
  if (end == raw) return fallback;
  return static_cast<std::int64_t>(value);
}

double envDouble(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const double value = std::strtod(raw, &end);
  if (end == raw) return fallback;
  return value;
}

std::optional<std::string> envString(const char* name) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return std::nullopt;
  return std::string(raw);
}

}  // namespace manet::util
