// Aligned ASCII table printer used by the figure-reproduction benches so each
// binary prints the same rows/series the paper's figure plots.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace manet::util {

/// Collects rows of string cells and prints them column-aligned.
/// Typical use:
///   Table t({"map", "RE", "SRB"});
///   t.addRow({"1x1", fmt(re), fmt(srb)});
///   t.print(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void addRow(std::vector<std::string> cells);

  /// Prints header, separator, and rows with two-space column padding.
  void print(std::ostream& os) const;

  /// Prints as comma-separated values (machine-readable twin of print()).
  void printCsv(std::ostream& os) const;

  std::size_t rowCount() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` fractional digits (fixed notation).
std::string fmt(double value, int digits = 3);

/// Formats `value` as a percentage with `digits` fractional digits.
std::string fmtPercent(double value, int digits = 1);

}  // namespace manet::util
