// Minimal leveled logger. Simulation code logs through this so tests can
// silence output and examples can turn on tracing.
#pragma once

#include <sstream>
#include <string>

namespace manet::util {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global log threshold; messages below it are discarded.
void setLogLevel(LogLevel level);
LogLevel logLevel();

/// Emits one line to stderr if `level` passes the threshold.
void logLine(LogLevel level, const std::string& message);

namespace detail {
inline void append(std::ostringstream&) {}
template <typename T, typename... Rest>
void append(std::ostringstream& os, const T& value, const Rest&... rest) {
  os << value;
  append(os, rest...);
}
}  // namespace detail

template <typename... Args>
void log(LogLevel level, const Args&... args) {
  if (level < logLevel()) return;
  std::ostringstream os;
  detail::append(os, args...);
  logLine(level, os.str());
}

template <typename... Args>
void logInfo(const Args&... args) {
  log(LogLevel::kInfo, args...);
}
template <typename... Args>
void logDebug(const Args&... args) {
  log(LogLevel::kDebug, args...);
}
template <typename... Args>
void logWarn(const Args&... args) {
  log(LogLevel::kWarn, args...);
}

}  // namespace manet::util
