#include "mac/dcf.hpp"

#include <algorithm>
#include <utility>

#include "obs/metrics.hpp"
#include "sim/inline_fn.hpp"
#include "util/assert.hpp"

namespace manet::mac {
namespace {

std::uint64_t dupKey(net::HostId sender, std::uint16_t macSeq) {
  return (static_cast<std::uint64_t>(sender.value()) << 16) | macSeq;
}

/// Records one backoff draw: the window it was drawn from and the slot
/// count that came out.
int recordBackoffDraw(int cw, int slots) {
  obs::add(obs::Counter::kMacBackoffDraws);
  obs::observe(obs::Hist::kMacContentionWindow, cw);
  obs::observe(obs::Hist::kMacBackoffSlots, slots);
  return slots;
}

}  // namespace

DcfMac::DcfMac(sim::Scheduler& scheduler, phy::Channel& channel,
               net::HostId self, phy::Channel::PositionFn position,
               sim::Rng rng, MacParams params, Upper* upper)
    : scheduler_(scheduler),
      channel_(channel),
      self_(self),
      rng_(rng),
      params_(params),
      upper_(upper) {
  MANET_EXPECTS(upper != nullptr);
  MANET_EXPECTS(params_.slot > sim::Duration{});
  MANET_EXPECTS(params_.difs >= sim::Duration{});
  MANET_EXPECTS(params_.sifs >= sim::Duration{});
  MANET_EXPECTS(params_.cwBroadcast >= 0);
  MANET_EXPECTS(params_.cwMin >= 1);
  MANET_EXPECTS(params_.cwMax >= params_.cwMin);
  MANET_EXPECTS(params_.retryLimit >= 0);
  MANET_AUDIT_HOOK(audit_ = audit::DcfAudit(self_));
  channel_.attach(self_, this, std::move(position));
}

sim::Duration DcfMac::controlAirtime(std::size_t bytes) const {
  return channel_.params().frameAirtime(bytes);
}

DcfMac::TxId DcfMac::enqueue(net::PacketPtr packet, std::size_t bytes) {
  MANET_EXPECTS(packet != nullptr);
  MANET_EXPECTS(bytes > 0);
  const TxId id = nextTxId_++;
  queue_.push_back(Pending{id, std::move(packet), bytes});
  ensureBackoffIfBusy();
  if (!transmitting_) reschedule();
  return id;
}

DcfMac::TxId DcfMac::enqueueUnicast(net::HostId dest, net::PacketPtr packet,
                                    std::size_t bytes) {
  MANET_EXPECTS(packet != nullptr);
  MANET_EXPECTS(bytes > 0);
  MANET_EXPECTS(dest != net::kInvalidHost);
  MANET_EXPECTS(dest != self_);
  // The MAC owns the addressing fields: copy the payload and stamp them.
  auto stamped = net::makePacket(*packet);
  stamped->sender = self_;
  stamped->dest = dest;
  stamped->macSeq = nextMacSeq_++;
  // NAV carried by the DATA frame: the ACK that will follow.
  stamped->navDuration = params_.sifs + controlAirtime(net::kAckBytes);

  const TxId id = nextTxId_++;
  Pending p{id, std::move(stamped), bytes};
  p.dest = dest;
  p.cw = params_.cwMin;
  queue_.push_back(std::move(p));
  ensureBackoffIfBusy();
  if (!transmitting_) reschedule();
  return id;
}

void DcfMac::ensureBackoffIfBusy() {
  // 802.11 DCF: a station that wants to transmit while the medium is busy
  // (and owes no backoff yet) must invoke the backoff procedure — otherwise
  // every deferred station would fire in the same instant when the medium
  // frees up (§2.2.3 describes exactly that failure mode).
  if ((mediumBusy_ || scheduler_.now() < navUntil_) && !queue_.empty() &&
      backoffRemaining_ < 0) {
    backoffRemaining_ = recordBackoffDraw(
        params_.cwBroadcast,
        static_cast<int>(rng_.uniformInt(0, params_.cwBroadcast)));
  }
}

bool DcfMac::cancel(TxId id) {
  auto it = std::find_if(queue_.begin(), queue_.end(),
                         [id](const Pending& p) { return p.id == id; });
  if (it == queue_.end()) return false;
  queue_.erase(it);
  if (queue_.empty() && backoffRemaining_ < 0) timer_.cancel();
  return true;
}

void DcfMac::reset() {
  timer_.cancel();
  exchangeTimer_.cancel();
  responseTimer_.cancel();
  navTimer_.cancel();
  queue_.clear();
  transmitting_ = false;
  onAir_ = OnAir::kNone;
  onAirId_ = kInvalidTx;
  onAirPacket_.reset();
  mediumBusy_ = false;
  idleSince_ = scheduler_.now();
  backoffRemaining_ = -1;
  hasCurrent_ = false;
  current_ = Pending{};
  exchange_ = Exchange::kNone;
  responsePending_ = false;
  navUntil_ = sim::TimePoint{};
  // A rebooted station has no reception history: a retransmitted unicast it
  // saw before the crash will be delivered again (the cost of crashing).
  seenUnicast_.clear();
  MANET_AUDIT_HOOK(audit_.onReset());
}

bool DcfMac::virtualOrPhysicalBusy() const {
  return mediumBusy_ || scheduler_.now() < navUntil_;
}

void DcfMac::onMediumBusy() {
  mediumBusy_ = true;
  timer_.cancel();  // freeze backoff / abandon pending DIFS expiry
  ensureBackoffIfBusy();
}

void DcfMac::onMediumIdle() {
  mediumBusy_ = false;
  idleSince_ = scheduler_.now();
  reschedule();
}

void DcfMac::applyNav(const net::Packet& packet, sim::TimePoint frameEnd) {
  if (packet.navDuration <= sim::Duration{}) return;
  if (packet.dest == self_) return;  // the reservation is for us
  const sim::TimePoint until = frameEnd + packet.navDuration;
  if (until <= navUntil_) return;
  navUntil_ = until;
  ensureBackoffIfBusy();
  navTimer_.cancel();
  navTimer_ = scheduler_.schedule(navUntil_, [this] { reschedule(); });
}

void DcfMac::onFrameReceived(const phy::Frame& frame, phy::DropReason drop) {
  if (drop != phy::DropReason::kNone) {
    ++framesDroppedCorrupt_;
    upper_->onCorruptedFrame(frame, drop);
    return;
  }
  const net::Packet& packet = *frame.packet;
  applyNav(packet, frame.txEnd);

  switch (packet.type) {
    case net::PacketType::kRts:
      if (packet.dest != self_) return;
      // Answer with CTS one SIFS later, unless we are busy with our own
      // response or exchange.
      if (responsePending_ || transmitting_ ||
          exchange_ != Exchange::kNone) {
        return;
      }
      {
        auto cts = net::makePacket();
        cts->type = net::PacketType::kCts;
        cts->sender = self_;
        cts->dest = packet.sender;
        cts->navDuration = std::max(
            sim::Duration{}, packet.navDuration - params_.sifs -
                                 controlAirtime(net::kCtsBytes));
        scheduleResponse(std::move(cts), net::kCtsBytes);
      }
      return;

    case net::PacketType::kCts:
      if (packet.dest != self_ || exchange_ != Exchange::kAwaitCts) return;
      exchangeTimer_.cancel();
      exchange_ = Exchange::kNone;
      MANET_AUDIT_HOOK(audit_.onExchangeTransition(
          audit::DcfAudit::Exchange::kNone, scheduler_.now()));
      // DATA follows one SIFS after the CTS.
      exchangeTimer_ = scheduler_.scheduleAfter(params_.sifs, [this] {
        beginDataTransmission();
      });
      return;

    case net::PacketType::kAck:
      if (packet.dest != self_ || exchange_ != Exchange::kAwaitAck) return;
      exchangeTimer_.cancel();
      exchange_ = Exchange::kNone;
      MANET_AUDIT_HOOK(audit_.onExchangeTransition(
          audit::DcfAudit::Exchange::kNone, scheduler_.now()));
      finishCurrent(true);
      return;

    case net::PacketType::kData:
    case net::PacketType::kHello:
      if (packet.dest == net::kInvalidHost) {
        upper_->onReceive(frame);  // broadcast path: deliver as-is
        return;
      }
      if (packet.dest != self_) return;  // overheard unicast: NAV only
      // Unicast data: acknowledge (even duplicates — the sender's ACK may
      // have been lost) and deliver once.
      if (!responsePending_ && !transmitting_) {
        auto ack = net::makePacket();
        ack->type = net::PacketType::kAck;
        ack->sender = self_;
        ack->dest = packet.sender;
        scheduleResponse(std::move(ack), net::kAckBytes);
        ++acksSent_;
      }
      if (seenUnicast_.insert(dupKey(packet.sender, packet.macSeq)).second) {
        upper_->onReceive(frame);
      }
      return;
  }
}

void DcfMac::scheduleResponse(net::PacketPtr response, std::size_t bytes) {
  responsePending_ = true;
  timer_.cancel();  // a SIFS response preempts any contention activity
  auto responseCb = [this, response, bytes] {
    MANET_ASSERT(!transmitting_);
    transmitting_ = true;
    onAir_ = response->type == net::PacketType::kCts ? OnAir::kCts
                                                     : OnAir::kAck;
    MANET_AUDIT_HOOK(audit_.onAirTransition(
        onAir_ == OnAir::kCts ? audit::DcfAudit::Air::kCts
                              : audit::DcfAudit::Air::kAck,
        scheduler_.now()));
    onAirPacket_ = response;
    ++framesSent_;
    channel_.transmit(self_, response, bytes);
  };
  static_assert(sim::InlineFn::storesInline<decltype(responseCb)>(),
                "SIFS-response capture (this + PacketPtr + size) must fit "
                "the event node");
  responseTimer_ = scheduler_.scheduleAfter(params_.sifs,
                                            std::move(responseCb));
}

void DcfMac::onTxComplete() {
  MANET_ASSERT(transmitting_);
  transmitting_ = false;
  const OnAir kind = onAir_;
  onAir_ = OnAir::kNone;
  MANET_AUDIT_HOOK(
      audit_.onAirTransition(audit::DcfAudit::Air::kNone, scheduler_.now()));
  const TxId finished = onAirId_;
  net::PacketPtr packet = std::move(onAirPacket_);
  onAirId_ = kInvalidTx;

  switch (kind) {
    case OnAir::kBroadcast:
      // Post-backoff: owed after every transmission, and it counts down
      // while the queue is empty too, so a long-idle station may again
      // transmit immediately after DIFS.
      backoffRemaining_ = recordBackoffDraw(
          params_.cwBroadcast,
          static_cast<int>(rng_.uniformInt(0, params_.cwBroadcast)));
      upper_->onTxFinished(finished, *packet);
      break;
    case OnAir::kRts:
      armExchangeTimer(Exchange::kAwaitCts);
      break;
    case OnAir::kData:
      armExchangeTimer(Exchange::kAwaitAck);
      break;
    case OnAir::kCts:
    case OnAir::kAck:
      responsePending_ = false;
      break;
    case OnAir::kNone:
      MANET_ASSERT(false);
      break;
  }
  if (!transmitting_) reschedule();
}

void DcfMac::armExchangeTimer(Exchange phase) {
  MANET_AUDIT_HOOK(audit_.onExchangeTransition(
      phase == Exchange::kAwaitCts ? audit::DcfAudit::Exchange::kAwaitCts
                                   : audit::DcfAudit::Exchange::kAwaitAck,
      scheduler_.now()));
  exchange_ = phase;
  const sim::Duration response = phase == Exchange::kAwaitCts
                                     ? controlAirtime(net::kCtsBytes)
                                     : controlAirtime(net::kAckBytes);
  // SIFS + response airtime + detection slack (CCA/propagation).
  const sim::Duration timeout = params_.sifs + response + 2 * params_.slot;
  exchangeTimer_ =
      scheduler_.scheduleAfter(timeout, [this] { onExchangeTimeout(); });
}

void DcfMac::onExchangeTimeout() {
  MANET_ASSERT(hasCurrent_);
  exchange_ = Exchange::kNone;
  MANET_AUDIT_HOOK(audit_.onExchangeTransition(
      audit::DcfAudit::Exchange::kNone, scheduler_.now()));
  retryCurrent();
}

void DcfMac::retryCurrent() {
  MANET_ASSERT(hasCurrent_);
  ++current_.retries;
  if (current_.retries > params_.retryLimit) {
    ++unicastDrops_;
    obs::add(obs::Counter::kMacUnicastDrops);
    finishCurrent(false);
    return;
  }
  ++unicastRetries_;
  obs::add(obs::Counter::kMacUnicastRetries);
  // Binary exponential contention-window escalation: 31 -> 63 -> ... ->
  // 1023 (the §4 "backoff window 31~1023").
  current_.cw = std::min(params_.cwMax, current_.cw * 2 + 1);
  backoffRemaining_ = recordBackoffDraw(
      current_.cw, static_cast<int>(rng_.uniformInt(0, current_.cw)));
  queue_.push_front(current_);
  hasCurrent_ = false;
  reschedule();
}

void DcfMac::finishCurrent(bool delivered) {
  MANET_ASSERT(hasCurrent_);
  hasCurrent_ = false;
  // Post-backoff after the exchange, like any transmission.
  backoffRemaining_ = recordBackoffDraw(
      params_.cwBroadcast,
      static_cast<int>(rng_.uniformInt(0, params_.cwBroadcast)));
  upper_->onTxFinished(current_.id, *current_.packet);
  upper_->onUnicastOutcome(current_.id, *current_.packet, delivered);
  reschedule();
}

void DcfMac::reschedule() {
  timer_.cancel();
  if (transmitting_ || responsePending_ || hasCurrent_ ||
      virtualOrPhysicalBusy()) {
    // NAV expiry re-enters through navTimer_; physical idle through
    // onMediumIdle; exchange completion through finishCurrent/retry.
    if (!mediumBusy_ && !transmitting_ && !responsePending_ &&
        !hasCurrent_ && scheduler_.now() < navUntil_) {
      // Virtual-busy only: make sure something wakes us (navTimer_ does).
      MANET_ASSERT(navTimer_.pending() || navUntil_ <= scheduler_.now());
    }
    return;
  }
  if (queue_.empty() && backoffRemaining_ < 0) return;

  const sim::TimePoint now = scheduler_.now();
  const sim::TimePoint idleStart = std::max(idleSince_, navUntil_);
  const sim::TimePoint difsEnd = idleStart + params_.difs;
  if (now < difsEnd) {
    timer_ = scheduler_.schedule(difsEnd, [this] { reschedule(); });
    return;
  }
  if (backoffRemaining_ < 0) {
    // Idle >= DIFS, no backoff owed: transmit at once.
    MANET_ASSERT(!queue_.empty());
    startTransmission();
    return;
  }
  if (backoffRemaining_ == 0) {
    backoffRemaining_ = -1;
    if (!queue_.empty()) startTransmission();
    return;
  }
  // Consume one idle slot, then re-evaluate. onMediumBusy() cancels this
  // timer, freezing the counter mid-slot (partial slots do not count).
  timer_ = scheduler_.scheduleAfter(params_.slot, [this] {
    MANET_ASSERT(!mediumBusy_ && !transmitting_);
    --backoffRemaining_;
    reschedule();
  });
}

void DcfMac::startTransmission() {
  MANET_ASSERT(!queue_.empty());
  MANET_ASSERT(!transmitting_);
  Pending head = std::move(queue_.front());
  queue_.pop_front();

  if (!isUnicast(head)) {
    transmitting_ = true;
    onAir_ = OnAir::kBroadcast;
    MANET_AUDIT_HOOK(audit_.onAirTransition(audit::DcfAudit::Air::kBroadcast,
                                            scheduler_.now()));
    onAirId_ = head.id;
    onAirPacket_ = head.packet;
    ++framesSent_;
    channel_.transmit(self_, head.packet, head.bytes);
    upper_->onTxStarted(head.id, *head.packet);
    return;
  }

  hasCurrent_ = true;
  current_ = std::move(head);
  if (usesRts(current_)) {
    auto rts = net::makePacket();
    rts->type = net::PacketType::kRts;
    rts->sender = self_;
    rts->dest = current_.dest;
    // Duration: CTS + DATA + ACK and the three SIFS gaps between them.
    rts->navDuration = 3 * params_.sifs + controlAirtime(net::kCtsBytes) +
                      channel_.params().frameAirtime(current_.bytes) +
                      controlAirtime(net::kAckBytes);
    transmitting_ = true;
    onAir_ = OnAir::kRts;
    MANET_AUDIT_HOOK(audit_.onAirTransition(audit::DcfAudit::Air::kRts,
                                            scheduler_.now()));
    onAirPacket_ = rts;
    ++framesSent_;
    channel_.transmit(self_, std::move(rts), net::kRtsBytes);
    return;
  }
  beginDataTransmission();
}

void DcfMac::beginDataTransmission() {
  MANET_ASSERT(hasCurrent_);
  MANET_ASSERT(!transmitting_);
  transmitting_ = true;
  onAir_ = OnAir::kData;
  MANET_AUDIT_HOOK(audit_.onAirTransition(audit::DcfAudit::Air::kData,
                                          scheduler_.now()));
  onAirId_ = current_.id;
  onAirPacket_ = current_.packet;
  ++framesSent_;
  channel_.transmit(self_, current_.packet, current_.bytes);
  upper_->onTxStarted(current_.id, *current_.packet);
}

}  // namespace manet::mac
