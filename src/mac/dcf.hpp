// IEEE 802.11 DCF.
//
// Broadcast path (what the paper's schemes ride on, §2.1/§2.2.3/§4):
//  * CSMA/CA with slotted backoff; DSSS timing (slot 20 us, SIFS 10 us,
//    DIFS 50 us).
//  * Broadcast frames are never acknowledged, never retransmitted, and use
//    no RTS/CTS, so their contention window stays at the DSSS minimum (31).
//  * If the medium has been idle for >= DIFS and no backoff is owed, a frame
//    transmits immediately — the very mechanism §2.2.3 identifies as a
//    collision source. A station that finds the medium busy at an access
//    attempt draws a backoff (the DCF rule).
//  * After every own transmission the station owes a post-backoff which also
//    counts down while idle with an empty queue.
//  * The backoff counter freezes while the medium is busy and resumes after
//    the medium has again been idle for DIFS. Corrupted frames still hold
//    the medium busy; the MAC drops them on FCS failure.
//
// Unicast path (the rest of the DCF, §4's "backoff window 31~1023"):
//  * DATA -> SIFS -> ACK; missing ACK triggers retransmission with binary
//    exponential contention-window escalation (31 -> 63 -> ... -> 1023) up
//    to a retry limit, after which the frame is dropped and reported.
//  * Optional RTS/CTS handshake for frames above `rtsThresholdBytes`
//    (RTS -> SIFS -> CTS -> SIFS -> DATA -> SIFS -> ACK); overheard RTS/
//    CTS/DATA duration fields set the NAV (virtual carrier sense), which
//    defers hidden terminals that physical sensing cannot.
//  * Receivers answer RTS with CTS and DATA with ACK one SIFS after
//    reception, and filter duplicate (sender, macSeq) deliveries caused by
//    ACK loss.
//
// The upper layer is told the moment its frame actually starts transmitting
// (`onTxStarted`) — the "wait until the transmission actually starts" point
// in the paper's scheme steps S2/S3 — and may cancel a queued frame any
// time before that (step S5).
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_set>

#include "audit/audit.hpp"
#include "net/packet.hpp"
#include "phy/channel.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"

#if MANET_AUDIT_ENABLED
#include "audit/invariants.hpp"
#endif

namespace manet::ckpt {
struct StateAccess;
}

namespace manet::mac {

struct MacParams {
  sim::Duration slot{20};   // us
  sim::Duration sifs{10};   // us
  sim::Duration difs{50};   // us
  int cwBroadcast = 31;  // contention window for broadcast frames
  int cwMin = 31;        // unicast initial contention window
  int cwMax = 1023;      // unicast contention-window ceiling (§4)
  int retryLimit = 7;    // unicast retransmission attempts before drop
  /// Unicast frames strictly larger than this use RTS/CTS. SIZE_MAX
  /// disables the handshake entirely; 0 forces it for every unicast frame.
  std::size_t rtsThresholdBytes = SIZE_MAX;
};

class DcfMac final : public phy::Channel::Listener {
 public:
  /// Identifies one queued frame; used to cancel pending rebroadcasts.
  using TxId = std::uint64_t;
  static constexpr TxId kInvalidTx = 0;

  /// Upcalls into the network layer.
  class Upper {
   public:
    virtual ~Upper() = default;
    /// The frame with this TxId just hit the air (no longer cancellable).
    /// For an RTS/CTS exchange this fires when the DATA frame starts.
    virtual void onTxStarted(TxId id, const net::Packet& packet) = 0;
    /// The frame finished transmitting (broadcast) or its exchange ended
    /// (unicast; see onUnicastOutcome for the verdict).
    virtual void onTxFinished(TxId id, const net::Packet& packet) = 0;
    /// An intact frame arrived (corrupted frames are dropped by the MAC).
    /// Control frames (RTS/CTS/ACK) are consumed by the MAC; only data and
    /// hello frames are delivered.
    virtual void onReceive(const phy::Frame& frame) = 0;
    /// A frame arrived but failed its FCS; `reason` says why (collision,
    /// half-duplex loss, or injected fault loss).
    virtual void onCorruptedFrame(const phy::Frame& frame,
                                  phy::DropReason reason) {
      (void)frame;
      (void)reason;
    }
    /// Final verdict of a unicast transmission: acknowledged or dropped
    /// after the retry limit.
    virtual void onUnicastOutcome(TxId id, const net::Packet& packet,
                                  bool delivered) {
      (void)id;
      (void)packet;
      (void)delivered;
    }
  };

  /// Constructs the MAC and attaches it to `channel` as node `self` with the
  /// given position callback.
  DcfMac(sim::Scheduler& scheduler, phy::Channel& channel, net::HostId self,
         phy::Channel::PositionFn position, sim::Rng rng, MacParams params,
         Upper* upper);

  DcfMac(const DcfMac&) = delete;
  DcfMac& operator=(const DcfMac&) = delete;

  /// Queues a broadcast frame; FIFO order. Returns its TxId.
  TxId enqueue(net::PacketPtr packet, std::size_t bytes);

  /// Queues a unicast frame to `dest` (acknowledged, retried, and RTS/CTS-
  /// protected per MacParams). The packet's dest/macSeq/duration fields are
  /// managed by the MAC.
  TxId enqueueUnicast(net::HostId dest, net::PacketPtr packet,
                      std::size_t bytes);

  /// Removes a queued frame. Returns true if it was still waiting; false if
  /// it already started transmitting (or already left the queue).
  bool cancel(TxId id);

  /// Crash reset (host churn, DESIGN.md §8): drops every queued frame and
  /// in-flight exchange without upper-layer callbacks, cancels all timers,
  /// and forgets backoff, NAV, and duplicate-filter state — the station
  /// reboots with a cold MAC. Statistics counters are preserved.
  void reset();

  /// True when nothing is queued, on the air, or mid-exchange.
  bool quiescent() const {
    return queue_.empty() && !transmitting_ && exchange_ == Exchange::kNone &&
           !responsePending_;
  }

  std::size_t queueDepth() const { return queue_.size(); }
  net::HostId self() const { return self_; }

  // --- statistics ---
  std::uint64_t framesSent() const { return framesSent_; }
  std::uint64_t framesDroppedCorrupt() const { return framesDroppedCorrupt_; }
  std::uint64_t unicastRetries() const { return unicastRetries_; }
  std::uint64_t unicastDrops() const { return unicastDrops_; }
  std::uint64_t acksSent() const { return acksSent_; }

  // --- phy::Channel::Listener ---
  void onMediumBusy() override;
  void onMediumIdle() override;
  void onFrameReceived(const phy::Frame& frame,
                       phy::DropReason drop) override;
  void onTxComplete() override;

 private:
  friend struct manet::ckpt::StateAccess;
  /// What this station itself currently has on the air.
  enum class OnAir { kNone, kBroadcast, kData, kRts, kCts, kAck };
  /// Outstanding exchange step we are waiting on as the initiator.
  enum class Exchange { kNone, kAwaitCts, kAwaitAck };

  struct Pending {
    TxId id;
    net::PacketPtr packet;
    std::size_t bytes;
    net::HostId dest = net::kInvalidHost;  // kInvalidHost: broadcast
    int retries = 0;
    int cw = 0;  // unicast contention window (escalates on retry)
  };

  bool isUnicast(const Pending& p) const {
    return p.dest != net::kInvalidHost;
  }
  bool usesRts(const Pending& p) const {
    return isUnicast(p) && p.bytes > params_.rtsThresholdBytes;
  }
  bool virtualOrPhysicalBusy() const;

  /// Re-evaluates what the station should be doing now that state changed.
  void reschedule();
  void startTransmission();
  void ensureBackoffIfBusy();

  // Unicast machinery.
  void beginDataTransmission();
  void armExchangeTimer(Exchange phase);
  void onExchangeTimeout();
  void retryCurrent();
  void finishCurrent(bool delivered);
  void scheduleResponse(net::PacketPtr response, std::size_t bytes);
  void applyNav(const net::Packet& packet, sim::TimePoint frameEnd);
  sim::Duration controlAirtime(std::size_t bytes) const;

  sim::Scheduler& scheduler_;
  phy::Channel& channel_;
  net::HostId self_;
  sim::Rng rng_;
  MacParams params_;
  Upper* upper_;

  std::deque<Pending> queue_;
  TxId nextTxId_ = 1;
  std::uint16_t nextMacSeq_ = 1;

  bool transmitting_ = false;
  OnAir onAir_ = OnAir::kNone;
  TxId onAirId_ = kInvalidTx;
  net::PacketPtr onAirPacket_;

  bool mediumBusy_ = false;
  sim::TimePoint idleSince_{};
  int backoffRemaining_ = -1;  // -1: no backoff owed
  sim::Scheduler::Handle timer_;

  // Unicast initiator state: the frame whose exchange is in flight.
  bool hasCurrent_ = false;
  Pending current_;
  Exchange exchange_ = Exchange::kNone;
  sim::Scheduler::Handle exchangeTimer_;

  // Responder state: a CTS/ACK (or post-CTS DATA) due one SIFS from now.
  bool responsePending_ = false;
  sim::Scheduler::Handle responseTimer_;

  // Virtual carrier sense.
  sim::TimePoint navUntil_{};
  sim::Scheduler::Handle navTimer_;

  // Duplicate filtering of retransmitted unicast data.
  std::unordered_set<std::uint64_t> seenUnicast_;

  std::uint64_t framesSent_ = 0;
  std::uint64_t framesDroppedCorrupt_ = 0;
  std::uint64_t unicastRetries_ = 0;
  std::uint64_t unicastDrops_ = 0;
  std::uint64_t acksSent_ = 0;

#if MANET_AUDIT_ENABLED
  /// Mirrors the on-air/exchange machines and flags illegal transitions.
  audit::DcfAudit audit_;
#endif
};

}  // namespace manet::mac
