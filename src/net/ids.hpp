// Node and broadcast identifiers shared by every layer.
#pragma once

#include <cstdint>
#include <functional>

namespace manet::net {

/// Dense host index (hosts are numbered 0..numHosts-1 by the world builder).
using NodeId = std::uint32_t;

inline constexpr NodeId kInvalidNode = 0xFFFFFFFFu;

/// Identity of one broadcast operation: (source ID, sequence number), the
/// duplicate-detection tuple the paper adopts from DSR/AODV (§2.1).
struct BroadcastId {
  NodeId origin = kInvalidNode;
  std::uint32_t seq = 0;

  friend bool operator==(const BroadcastId&, const BroadcastId&) = default;
};

struct BroadcastIdHash {
  std::size_t operator()(const BroadcastId& id) const {
    return std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(id.origin) << 32) | id.seq);
  }
};

}  // namespace manet::net
