// Node and broadcast identifiers shared by every layer, as strong types
// (util::TaggedId, DESIGN.md §13): a host id and a broadcast sequence number
// are distinct families, so argument swaps and id-for-index confusion are
// compile errors rather than silent wire bugs.
#pragma once

#include <cstdint>
#include <functional>

#include "util/tagged_id.hpp"

namespace manet::net {

/// Dense host index (hosts are numbered 0..numHosts-1 by the world builder).
using HostId = util::TaggedId<struct HostIdTag, std::uint32_t>;

inline constexpr HostId kInvalidHost{0xFFFFFFFFu};

/// Per-source broadcast sequence number (the seq half of BroadcastId).
using BroadcastSeq = util::TaggedId<struct BroadcastSeqTag, std::uint32_t>;

/// Identity of one broadcast operation: (source ID, sequence number), the
/// duplicate-detection tuple the paper adopts from DSR/AODV (§2.1).
struct BroadcastId {
  HostId origin = kInvalidHost;
  BroadcastSeq seq{};

  friend bool operator==(const BroadcastId&, const BroadcastId&) = default;
};

struct BroadcastIdHash {
  std::size_t operator()(const BroadcastId& id) const {
    return std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(id.origin.value()) << 32) |
        id.seq.value());
  }
};

}  // namespace manet::net
