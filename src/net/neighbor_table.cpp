#include "net/neighbor_table.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "util/assert.hpp"

namespace manet::net {

NeighborTable::NeighborTable(sim::Duration nvWindow,
                             sim::Duration fallbackInterval)
    : nvWindow_(nvWindow), fallbackInterval_(fallbackInterval) {
  MANET_EXPECTS(nvWindow_ > sim::Duration{});
  MANET_EXPECTS(fallbackInterval_ > sim::Duration{});
}

sim::TimePoint NeighborTable::expiryOf(const Entry& e) const {
  const sim::Duration interval =
      e.interval > sim::Duration{} ? e.interval : fallbackInterval_;
  return e.lastHeard + 2 * interval;
}

void NeighborTable::recordChange(sim::TimePoint now) { changes_.push_back(now); }

void NeighborTable::dropOldChanges(sim::TimePoint now) {
  while (!changes_.empty() && changes_.front() + nvWindow_ < now) {
    changes_.pop_front();
  }
}

void NeighborTable::onHello(HostId from, const Packet& hello, sim::TimePoint now) {
  MANET_EXPECTS(hello.type == PacketType::kHello);
  obs::add(obs::Counter::kHelloRx);
  purge(now);
  auto [it, inserted] = entries_.try_emplace(from);
  it->second.lastHeard = now;
  it->second.interval = hello.helloInterval;
  it->second.neighbors = hello.helloNeighbors;
  if (inserted) {
    recordChange(now);  // a join
    obs::add(obs::Counter::kNeighborJoins);
  }
  const auto size = static_cast<std::uint64_t>(entries_.size());
  obs::gaugeMax(obs::Gauge::kNeighborTableSize, size);
  obs::observe(obs::Hist::kNeighborTableSize, static_cast<double>(size));
}

void NeighborTable::purge(sim::TimePoint now) {
  MANET_AUDIT_HOOK(audit_.onPurge(now));
  // NOLINT-determinism(erase-only scan; per-expiry leave count is order-insensitive)
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (expiryOf(it->second) < now) {
      MANET_AUDIT_HOOK(audit_.onExpire(expiryOf(it->second), now));
      it = entries_.erase(it);
      recordChange(now);  // a leave
      obs::add(obs::Counter::kNeighborLeaves);
    } else {
      ++it;
    }
  }
  dropOldChanges(now);
}

int NeighborTable::neighborCount(sim::TimePoint now) {
  purge(now);
  return static_cast<int>(entries_.size());
}

std::vector<HostId> NeighborTable::neighborIds(sim::TimePoint now) {
  purge(now);
  std::vector<HostId> ids;
  ids.reserve(entries_.size());
  // NOLINT-determinism(collected unsorted, canonicalized below)
  for (const auto& [id, entry] : entries_) ids.push_back(id);
  // Canonical ascending order: these ids go onto the wire in HELLO packets
  // and into scheme/cluster decisions, so hash-map iteration order must not
  // leak into the simulation (it varies across standard libraries).
  std::sort(ids.begin(), ids.end());
  return ids;
}

bool NeighborTable::contains(HostId h, sim::TimePoint now) {
  purge(now);
  return entries_.contains(h);
}

std::optional<std::vector<HostId>> NeighborTable::neighborsOf(HostId h,
                                                              sim::TimePoint now) {
  purge(now);
  auto it = entries_.find(h);
  if (it == entries_.end()) return std::nullopt;
  return it->second.neighbors;
}

int NeighborTable::changeEventsInWindow(sim::TimePoint now) {
  purge(now);
  return static_cast<int>(changes_.size());
}

double NeighborTable::neighborhoodVariation(sim::TimePoint now) {
  purge(now);
  const double windowSeconds = sim::toSeconds(nvWindow_);
  const double denomHosts =
      entries_.empty() ? 1.0 : static_cast<double>(entries_.size());
  return static_cast<double>(changes_.size()) / (denomHosts * windowSeconds);
}

}  // namespace manet::net
