// Packets carried by the simulated network. One tagged struct rather than a
// class hierarchy: packets are plain immutable data shared by shared_ptr
// between the transmitting MAC and every receiver.
#pragma once

#include <memory>
#include <vector>

#include "net/ids.hpp"
#include "sim/time.hpp"

namespace manet::net {

enum class PacketType {
  kData,   // an application broadcast being propagated
  kHello,  // periodic neighbor-discovery beacon
  kRts,    // 802.11 control: request to send (unicast path only)
  kCts,    // 802.11 control: clear to send
  kAck,    // 802.11 control: data acknowledgment
};

struct Packet {
  PacketType type = PacketType::kData;
  HostId sender = kInvalidHost;  // the (re)transmitting host

  /// Unicast destination; kInvalidHost means broadcast. Broadcast frames
  /// are never acknowledged (§2.1); unicast frames get the full DCF
  /// treatment (ACK, retries, optional RTS/CTS).
  HostId dest = kInvalidHost;

  /// MAC-level sequence number for unicast duplicate filtering across
  /// retransmissions.
  std::uint16_t macSeq = 0;

  /// 802.11 Duration field: how long the medium will stay reserved after
  /// this frame (NAV). Zero on broadcast frames.
  sim::Duration navDuration{};

  /// Hops travelled from the broadcast origin (0 on the source's own
  /// transmission; each relay increments it).
  std::uint16_t hopCount = 0;

  // --- data broadcast fields ---
  BroadcastId bid{};

  // --- application payload (route discovery and friends) ---
  enum class AppKind : std::uint8_t {
    kNone,
    kRouteRequest,
    kRouteReply,
    kRepairRequest,  // reliable-broadcast NACK: "resend me bid"
    kRepairData,     // reliable-broadcast repair carrying bid's payload
  };
  AppKind appKind = AppKind::kNone;
  /// Route-request target / route-reply consumer.
  HostId appTarget = kInvalidHost;
  /// Source route accumulated hop by hop (route requests append each
  /// relaying host, the way DSR's route_request does — the paper's
  /// footnote 1 describes exactly this "same or modified packet" pattern).
  std::vector<HostId> appPath;

  // --- HELLO fields ---
  /// The sender's one-hop neighbor set N_h, piggybacked so receivers can
  /// build the two-hop sets N_{x,h} the neighbor-coverage scheme needs.
  std::vector<HostId> helloNeighbors;
  /// The sender's current hello interval; with the dynamic-hello-interval
  /// scheme each host announces its own interval so receivers can age the
  /// entry correctly (§4.3).
  sim::Duration helloInterval{};
};

using PacketPtr = std::shared_ptr<const Packet>;

/// The paper's broadcast payload size (§4): 280 bytes.
inline constexpr std::size_t kDataPacketBytes = 280;

/// 802.11 control-frame sizes (bytes on the air, before PLCP).
inline constexpr std::size_t kAckBytes = 14;
inline constexpr std::size_t kRtsBytes = 20;
inline constexpr std::size_t kCtsBytes = 14;

/// Allocates a mutable packet for the caller to fill, drawn from the
/// thread's current PacketPool when one is installed (each World installs
/// its own for its lifetime, DESIGN.md §11) and from the plain heap
/// otherwise. Implemented in net/packet_pool.cpp.
std::shared_ptr<Packet> makePacket();
/// Copy flavour: a pooled copy of `proto` (the MAC's stamp-and-forward and
/// the routing layer's modify-and-relay pattern).
std::shared_ptr<Packet> makePacket(const Packet& proto);

/// Makes an immutable data-broadcast packet.
inline PacketPtr makeDataPacket(BroadcastId bid, HostId sender) {
  auto p = makePacket();
  p->type = PacketType::kData;
  p->sender = sender;
  p->bid = bid;
  return p;
}

}  // namespace manet::net
