#include "net/packet_pool.hpp"

#include <atomic>

#include "util/env.hpp"

namespace manet::net {

namespace {

thread_local PacketPool* tlsPool = nullptr;

// Atomic for the same reason as obs::forceCollection: differential tests
// flip it on the main thread while sweep workers consult it; relaxed is
// enough (it only gates which allocator a fresh World installs).
std::atomic<bool> gEnabled{true};

bool enabledFromEnv() {
  static const bool fromEnv = util::envInt("MANET_PACKET_POOL", 1) != 0;
  return fromEnv;
}

}  // namespace

PacketPool* PacketPool::current() { return tlsPool; }

bool PacketPool::enabled() {
  return enabledFromEnv() && gEnabled.load(std::memory_order_relaxed);
}

void PacketPool::setEnabled(bool on) {
  gEnabled.store(on, std::memory_order_relaxed);
}

PacketPool::Scope::Scope(PacketPool* pool) : previous_(tlsPool) {
  tlsPool = pool;
}

PacketPool::Scope::~Scope() { tlsPool = previous_; }

std::shared_ptr<Packet> makePacket() {
  if (PacketPool* pool = PacketPool::current()) return pool->make();
  return std::make_shared<Packet>();
}

std::shared_ptr<Packet> makePacket(const Packet& proto) {
  if (PacketPool* pool = PacketPool::current()) return pool->make(proto);
  return std::make_shared<Packet>(proto);
}

}  // namespace manet::net
