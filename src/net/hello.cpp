#include "net/hello.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "sim/inline_fn.hpp"
#include "util/assert.hpp"

namespace manet::net {

HelloAgent::HelloAgent(sim::Scheduler& scheduler, mac::DcfMac& mac,
                       NeighborTable& table, HelloConfig config, sim::Rng rng)
    : scheduler_(scheduler),
      mac_(mac),
      table_(table),
      config_(config),
      rng_(rng),
      currentInterval_(config.dynamic ? config.intervalMax : config.interval) {
  MANET_EXPECTS(config_.interval > sim::Duration{});
  MANET_EXPECTS(config_.intervalMin > sim::Duration{});
  MANET_EXPECTS(config_.intervalMax >= config_.intervalMin);
  MANET_EXPECTS(config_.nvMax > 0.0);
  MANET_EXPECTS(config_.periodJitterFraction >= 0.0 &&
                config_.periodJitterFraction < 1.0);
}

sim::Duration HelloAgent::dynamicInterval(const HelloConfig& config,
                                          double nv) {
  if (nv >= config.nvMax) return config.intervalMin;
  const sim::Duration raw =
      sim::scaleRound(config.intervalMax, (config.nvMax - nv) / config.nvMax);
  return std::clamp(raw, config.intervalMin, config.intervalMax);
}

void HelloAgent::start() {
  if (!config_.enabled) return;
  const sim::Duration jitter =
      config_.startJitter > sim::Duration{}
          ? rng_.uniformDuration(sim::Duration{}, config_.startJitter)
          : sim::Duration{};
  timer_ = scheduler_.scheduleAfter(jitter, [this] { sendHello(); });
}

void HelloAgent::stop() { timer_.cancel(); }

void HelloAgent::sendHello() {
  const sim::TimePoint now = scheduler_.now();
  if (config_.dynamic) {
    currentInterval_ =
        dynamicInterval(config_, table_.neighborhoodVariation(now));
  } else {
    currentInterval_ = config_.interval;
  }

  auto packet = makePacket();
  packet->type = PacketType::kHello;
  packet->sender = mac_.self();
  packet->helloInterval = currentInterval_;
  std::size_t bytes = config_.baseBytes;
  if (config_.piggybackNeighbors) {
    packet->helloNeighbors = table_.neighborIds(now);
    bytes += config_.perNeighborBytes * packet->helloNeighbors.size();
  }
  mac_.enqueue(std::move(packet), bytes);
  ++hellosSent_;
  obs::add(obs::Counter::kHelloTx);

  sim::Duration next = currentInterval_;
  if (config_.periodJitterFraction > 0.0) {
    const double shrink = rng_.uniform(0.0, config_.periodJitterFraction);
    next -= sim::scaleTrunc(next, shrink);
    if (next < sim::kMicrosecond) next = sim::kMicrosecond;
  }
  auto beaconCb = [this] { sendHello(); };
  static_assert(sim::InlineFn::storesInline<decltype(beaconCb)>(),
                "HELLO beacon capture must fit the event node");
  timer_ = scheduler_.scheduleAfter(next, std::move(beaconCb));
}

}  // namespace manet::net
