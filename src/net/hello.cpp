#include "net/hello.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "sim/inline_fn.hpp"
#include "util/assert.hpp"

namespace manet::net {

HelloAgent::HelloAgent(sim::Scheduler& scheduler, mac::DcfMac& mac,
                       NeighborTable& table, HelloConfig config, sim::Rng rng)
    : scheduler_(scheduler),
      mac_(mac),
      table_(table),
      config_(config),
      rng_(rng),
      currentInterval_(config.dynamic ? config.intervalMax : config.interval) {
  MANET_EXPECTS(config_.interval > 0);
  MANET_EXPECTS(config_.intervalMin > 0);
  MANET_EXPECTS(config_.intervalMax >= config_.intervalMin);
  MANET_EXPECTS(config_.nvMax > 0.0);
  MANET_EXPECTS(config_.periodJitterFraction >= 0.0 &&
                config_.periodJitterFraction < 1.0);
}

sim::Time HelloAgent::dynamicInterval(const HelloConfig& config, double nv) {
  if (nv >= config.nvMax) return config.intervalMin;
  const double scaled = (config.nvMax - nv) / config.nvMax *
                        static_cast<double>(config.intervalMax);
  const auto raw = static_cast<sim::Time>(scaled + 0.5);
  return std::clamp(raw, config.intervalMin, config.intervalMax);
}

void HelloAgent::start() {
  if (!config_.enabled) return;
  const sim::Time jitter =
      config_.startJitter > 0 ? rng_.uniformTime(0, config_.startJitter) : 0;
  timer_ = scheduler_.scheduleAfter(jitter, [this] { sendHello(); });
}

void HelloAgent::stop() { timer_.cancel(); }

void HelloAgent::sendHello() {
  const sim::Time now = scheduler_.now();
  if (config_.dynamic) {
    currentInterval_ =
        dynamicInterval(config_, table_.neighborhoodVariation(now));
  } else {
    currentInterval_ = config_.interval;
  }

  auto packet = makePacket();
  packet->type = PacketType::kHello;
  packet->sender = mac_.self();
  packet->helloInterval = currentInterval_;
  std::size_t bytes = config_.baseBytes;
  if (config_.piggybackNeighbors) {
    packet->helloNeighbors = table_.neighborIds(now);
    bytes += config_.perNeighborBytes * packet->helloNeighbors.size();
  }
  mac_.enqueue(std::move(packet), bytes);
  ++hellosSent_;
  obs::add(obs::Counter::kHelloTx);

  sim::Time next = currentInterval_;
  if (config_.periodJitterFraction > 0.0) {
    const double shrink = rng_.uniform(0.0, config_.periodJitterFraction);
    next -= static_cast<sim::Time>(shrink * static_cast<double>(next));
    if (next < 1) next = 1;
  }
  auto beaconCb = [this] { sendHello(); };
  static_assert(sim::InlineFn::storesInline<decltype(beaconCb)>(),
                "HELLO beacon capture must fit the event node");
  timer_ = scheduler_.scheduleAfter(next, std::move(beaconCb));
}

}  // namespace manet::net
