// Pooled Packet allocation (DESIGN.md §11).
//
// Every simulated frame used to be an individually make_shared'd Packet.
// A PacketPool recycles the combined allocation (control block + Packet,
// via std::allocate_shared with a slab-backed free list), so steady-state
// traffic performs no per-packet heap allocation. Each World owns one pool
// and installs it as the running thread's current pool for its lifetime
// (the same stack discipline as obs::ScopedRegistry and the audit sink);
// net::makePacket() then allocates from it, falling back to the plain heap
// when no pool is installed (unit tests, examples) or when pooling is
// disabled (MANET_PACKET_POOL=0, or setEnabled(false) in differential
// tests).
//
// Lifetime: the pool's free-list state is refcounted by every outstanding
// packet's allocator, so packets may safely outlive the PacketPool object.
// Thread contract: a pool and the packets drawn from it belong to the
// thread that owns the World — exactly the parallel sweep runner's
// one-repetition-per-thread model; the free list is not locked.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "net/packet.hpp"
#include "obs/metrics.hpp"
#include "util/assert.hpp"

namespace manet::net {

class PacketPool {
 public:
  PacketPool() : state_(std::make_shared<State>()) {}
  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;

  /// A mutable Packet on a recycled (or, first time through, fresh) block.
  std::shared_ptr<Packet> make() {
    return std::allocate_shared<Packet>(Alloc<Packet>{state_});
  }
  /// Copy-construction flavour, for the MAC's stamped-copy pattern.
  std::shared_ptr<Packet> make(const Packet& proto) {
    return std::allocate_shared<Packet>(Alloc<Packet>{state_}, proto);
  }

  /// Blocks currently waiting for reuse (observability/tests only).
  std::size_t freeBlocks() const { return state_->freeList.size(); }

  /// The pool installed on this thread, or nullptr.
  static PacketPool* current();

  /// Process-wide kill switch, defaulting from MANET_PACKET_POOL (on unless
  /// set to 0). Exists so differential tests can prove pooled and unpooled
  /// runs byte-identical within one process.
  static bool enabled();
  static void setEnabled(bool on);

  /// RAII: installs a pool as this thread's current pool (stack
  /// discipline; restores the previous pool on destruction).
  class Scope {
   public:
    explicit Scope(PacketPool* pool);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    PacketPool* previous_;
  };

 private:
  /// Free list of equal-sized raw blocks. allocate_shared makes exactly one
  /// allocation of one size per Packet (node + control block fused), so a
  /// single block size covers the entire pool; any other request size
  /// (allocator copies for internal bookkeeping would not allocate) passes
  /// through to the global heap untouched.
  struct State {
    std::size_t blockSize = 0;  // fixed by the first allocation
    std::vector<void*> freeList;

    ~State() {
      for (void* block : freeList) ::operator delete(block);
    }

    void* allocate(std::size_t bytes) {
      if (blockSize == 0) blockSize = bytes;
      if (bytes == blockSize && !freeList.empty()) {
        void* block = freeList.back();
        freeList.pop_back();
        obs::add(obs::Counter::kEngineAllocPacketReused);
        return block;
      }
      MANET_ASSERT(bytes == blockSize);
      obs::add(obs::Counter::kEngineAllocPacketFresh);
      return ::operator new(bytes);
    }

    void deallocate(void* block, std::size_t bytes) {
      if (bytes == blockSize) {
        freeList.push_back(block);
      } else {
        ::operator delete(block);
      }
    }
  };

  template <typename T>
  struct Alloc {
    using value_type = T;

    std::shared_ptr<State> state;

    Alloc(std::shared_ptr<State> s) : state(std::move(s)) {}
    template <typename U>
    Alloc(const Alloc<U>& other) : state(other.state) {}

    T* allocate(std::size_t n) {
      return static_cast<T*>(state->allocate(n * sizeof(T)));
    }
    void deallocate(T* p, std::size_t n) {
      state->deallocate(p, n * sizeof(T));
    }

    template <typename U>
    bool operator==(const Alloc<U>& other) const {
      return state == other.state;
    }
  };

  std::shared_ptr<State> state_;
};

}  // namespace manet::net
