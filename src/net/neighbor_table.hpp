// One- and two-hop neighborhood state learned from HELLO packets (§3.3),
// plus the neighborhood-variation estimator nv_x that drives the dynamic
// hello interval (§4.3).
//
// Entry lifetime follows the paper: "A host x enlists another host h as its
// one-hop neighbor when a HELLO is received from h. If no HELLO has been
// received from h for the past two hello intervals, host x deletes h" —
// with the dynamic scheme, "two hello intervals" means two of the *sender's*
// announced intervals.
#pragma once

#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "audit/audit.hpp"
#include "net/ids.hpp"
#include "net/packet.hpp"
#include "sim/scheduler.hpp"

#if MANET_AUDIT_ENABLED
#include "audit/invariants.hpp"
#endif

namespace manet::ckpt {
struct StateAccess;
}

namespace manet::net {

class NeighborTable {
 public:
  struct Entry {
    sim::TimePoint lastHeard{};
    sim::Duration interval{};        // sender-announced hello interval
    std::vector<HostId> neighbors;   // N_{x,h}: h's advertised one-hop set
  };

  /// `nvWindow` is the sliding window for neighborhood variation (10 s in
  /// the paper); `fallbackInterval` ages entries whose HELLO did not
  /// announce an interval.
  explicit NeighborTable(sim::Duration nvWindow = 10 * sim::kSecond,
                         sim::Duration fallbackInterval = 1 * sim::kSecond);

  /// Records a received HELLO. `now` is the reception time.
  void onHello(HostId from, const Packet& hello, sim::TimePoint now);

  /// Removes expired entries, recording leave events for nv. Call this (or
  /// any query, which calls it implicitly) with non-decreasing `now`.
  void purge(sim::TimePoint now);

  /// |N_x| after purging.
  int neighborCount(sim::TimePoint now);

  /// Current one-hop neighbor ids (unsorted) after purging.
  std::vector<HostId> neighborIds(sim::TimePoint now);

  /// True if `h` is currently a one-hop neighbor.
  bool contains(HostId h, sim::TimePoint now);

  /// N_{x,h}: the advertised neighbor set of one-hop neighbor `h`, or
  /// nullopt when `h` is unknown/expired.
  std::optional<std::vector<HostId>> neighborsOf(HostId h, sim::TimePoint now);

  /// nv_x = (# joins + # leaves within the past window) / (|N_x| * window_s).
  /// With an empty neighborhood the denominator is treated as 1 host, so a
  /// freshly-emptied neighborhood reports high variation (and thus a short
  /// hello interval) rather than dividing by zero.
  double neighborhoodVariation(sim::TimePoint now);

  /// Raw change-event count within the window (for tests/diagnostics).
  int changeEventsInWindow(sim::TimePoint now);

  /// Forgets all neighbors and nv history (host crash: the rebooted host
  /// relearns its neighborhood from scratch). No leave events are recorded.
  void clear() {
    entries_.clear();
    changes_.clear();
    MANET_AUDIT_HOOK(audit_.onClear());
  }

 private:
  friend struct manet::ckpt::StateAccess;
  sim::TimePoint expiryOf(const Entry& e) const;
  void recordChange(sim::TimePoint now);
  void dropOldChanges(sim::TimePoint now);

  sim::Duration nvWindow_;
  sim::Duration fallbackInterval_;
  std::unordered_map<HostId, Entry> entries_;
  std::deque<sim::TimePoint> changes_;  // join/leave timestamps, ascending
#if MANET_AUDIT_ENABLED
  audit::NeighborAudit audit_;
#endif
};

}  // namespace manet::net
