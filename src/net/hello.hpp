// Periodic HELLO beaconing with optional neighbor-list piggyback and the
// paper's dynamic hello interval (§4.3):
//
//     hi_x = max(hi_min, (nv_max - nv_x) / nv_max * hi_max)
//
// clamped into [hi_min, hi_max] (a host whose variation exceeds nv_max uses
// hi_min). Each HELLO announces the interval in use so receivers can age the
// entry by two *sender* intervals.
#pragma once

#include <cstdint>

#include "mac/dcf.hpp"
#include "net/neighbor_table.hpp"
#include "net/packet.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"

namespace manet::ckpt {
struct StateAccess;
}

namespace manet::net {

struct HelloConfig {
  bool enabled = true;

  /// Fixed interval used when `dynamic` is false.
  sim::Duration interval = 1 * sim::kSecond;

  /// Dynamic hello interval (the paper's DHI, §4.3).
  bool dynamic = false;
  sim::Duration intervalMin = 1 * sim::kSecond;   // hi_min
  sim::Duration intervalMax = 10 * sim::kSecond;  // hi_max
  double nvMax = 0.02;                         // nv_max

  /// Append the sender's one-hop set N_x (needed by neighbor coverage).
  bool piggybackNeighbors = true;

  /// HELLO wire size model: base header plus 4 bytes per advertised id.
  std::size_t baseBytes = 24;
  std::size_t perNeighborBytes = 4;

  /// Each host delays its first HELLO by U(0, startJitter) to avoid
  /// synchronized beacons at t = 0.
  sim::Duration startJitter = 1 * sim::kSecond;

  /// Every period is shortened by U(0, periodJitterFraction) of itself, so
  /// two hosts that happen to beacon in phase do not collide forever (the
  /// standard hello-jitter of OLSR-style protocols).
  double periodJitterFraction = 0.1;
};

class HelloAgent {
 public:
  HelloAgent(sim::Scheduler& scheduler, mac::DcfMac& mac,
             NeighborTable& table, HelloConfig config, sim::Rng rng);

  /// Begins beaconing (no-op when disabled).
  void start();

  /// Stops beaconing (used when tearing a host down mid-run).
  void stop();

  /// The interval the next HELLO will be scheduled with.
  sim::Duration currentInterval() const { return currentInterval_; }

  std::uint64_t hellosSent() const { return hellosSent_; }

  /// Computes the dynamic interval for a given neighborhood variation
  /// (exposed for tests; pure function of the config).
  static sim::Duration dynamicInterval(const HelloConfig& config, double nv);

 private:
  friend struct manet::ckpt::StateAccess;
  void sendHello();

  sim::Scheduler& scheduler_;
  mac::DcfMac& mac_;
  NeighborTable& table_;
  HelloConfig config_;
  sim::Rng rng_;
  sim::Duration currentInterval_;
  sim::Scheduler::Handle timer_;
  std::uint64_t hellosSent_ = 0;
};

}  // namespace manet::net
