#include "traffic/config.hpp"

#include <sstream>
#include <string>

#include "util/env.hpp"

namespace manet::traffic {

namespace {

/// Parses "x0,y0,x1,y1" (map-side fractions). Returns false — leaving the
/// zone untouched — unless exactly four comma-separated doubles parse.
bool parseZone(const std::string& spec, TrafficConfig& out) {
  std::istringstream in(spec);
  double v[4];
  char sep = ',';
  for (int i = 0; i < 4; ++i) {
    if (i > 0 && (!(in >> sep) || sep != ',')) return false;
    if (!(in >> v[i])) return false;
  }
  out.zoneX0 = v[0];
  out.zoneY0 = v[1];
  out.zoneX1 = v[2];
  out.zoneY1 = v[3];
  return true;
}

}  // namespace

TrafficConfig TrafficConfig::withEnvOverrides() const {
  TrafficConfig out = *this;

  const auto arrivalName = util::envString("MANET_TRAFFIC_ARRIVAL");
  if (arrivalName) {
    if (*arrivalName == "uniform") {
      out.arrival = Arrival::kUniform;
    } else if (*arrivalName == "poisson") {
      out.arrival = Arrival::kPoisson;
    } else if (*arrivalName == "cbr" || *arrivalName == "periodic") {
      out.arrival = Arrival::kPeriodic;
    } else if (*arrivalName == "burst") {
      out.arrival = Arrival::kBurst;
    }
  }
  if (util::envString("MANET_TRAFFIC_RATE")) {
    out.poissonRatePerSecond =
        util::envDouble("MANET_TRAFFIC_RATE", out.poissonRatePerSecond);
    // A bare rate means Poisson arrivals unless the process was named.
    if (!arrivalName && out.arrival == Arrival::kUniform) {
      out.arrival = Arrival::kPoisson;
    }
  }
  if (util::envString("MANET_TRAFFIC_PERIOD_S")) {
    out.period = sim::scaleTrunc(
        sim::kSecond, util::envDouble("MANET_TRAFFIC_PERIOD_S",
                                      sim::toSeconds(out.period)));
    if (!arrivalName && out.arrival == Arrival::kUniform) {
      out.arrival = Arrival::kPeriodic;
    }
  }
  out.burstLength = static_cast<int>(
      util::envInt("MANET_TRAFFIC_BURST_LEN", out.burstLength));
  if (util::envString("MANET_TRAFFIC_BURST_GAP_S")) {
    out.burstGapMax = sim::scaleTrunc(
        sim::kSecond, util::envDouble("MANET_TRAFFIC_BURST_GAP_S",
                                      sim::toSeconds(out.burstGapMax)));
  }
  if (util::envString("MANET_TRAFFIC_IDLE_S")) {
    out.burstIdleMean = sim::scaleTrunc(
        sim::kSecond, util::envDouble("MANET_TRAFFIC_IDLE_S",
                                      sim::toSeconds(out.burstIdleMean)));
  }

  if (const auto sourcesName = util::envString("MANET_TRAFFIC_SOURCES")) {
    if (*sourcesName == "uniform") {
      out.sources = Sources::kUniform;
    } else if (*sourcesName == "hotspot") {
      out.sources = Sources::kHotspot;
    } else if (*sourcesName == "zone") {
      out.sources = Sources::kZone;
    }
  }
  out.hotspotCount = static_cast<int>(
      util::envInt("MANET_TRAFFIC_HOTSPOT_K", out.hotspotCount));
  if (const auto zone = util::envString("MANET_TRAFFIC_ZONE")) {
    parseZone(*zone, out);
  }
  return out;
}

}  // namespace manet::traffic
