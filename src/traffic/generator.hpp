// Workload generator (DESIGN.md §12): composes an arrival process with a
// source model into the deterministic (time, source, seq) schedule the world
// injects. One generator is a pure function of its configuration — schedule()
// draws only from the Rng it is handed, so the same seed always yields the
// same schedule, and the default (Uniform arrivals, uniform sources) consumes
// the workload stream draw-for-draw like the pre-subsystem inline loop.
#pragma once

#include <vector>

#include "geom/vec2.hpp"
#include "sim/random.hpp"
#include "traffic/config.hpp"

namespace manet::traffic {

class Generator {
 public:
  /// `uniformMax` parameterizes the default Uniform arrival process (the
  /// scenario's interarrivalMax). `initialPositions`/`mapMeters` are only
  /// consulted by the kZone source model and may be empty/0 otherwise.
  Generator(const TrafficConfig& config, int numHosts,
            sim::Duration uniformMax,
            std::vector<geom::Vec2> initialPositions = {},
            double mapMeters = 0.0);

  /// Builds the full schedule: `count` requests, the first gap measured from
  /// `start`, times non-decreasing, seq = position in stream order. Per
  /// request the draw order is fixed — arrival gap first, then source — so
  /// arrival and source models compose without perturbing each other's
  /// streams. kReplay ignores `count` and `rng` and plays the script
  /// (stable-sorted by time, offset by `start`) verbatim.
  std::vector<Request> schedule(int count, sim::TimePoint start,
                                sim::Rng& rng) const;

  const TrafficConfig& config() const { return config_; }

 private:
  TrafficConfig config_;
  int numHosts_;
  sim::Duration uniformMax_;
  std::vector<geom::Vec2> initialPositions_;
  double mapMeters_;
};

}  // namespace manet::traffic
