#include "traffic/source_model.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace manet::traffic {

UniformSources::UniformSources(int numHosts) : numHosts_(numHosts) {
  MANET_EXPECTS(numHosts >= 1);
}

SubsetSources::SubsetSources(std::vector<net::HostId> candidates)
    : candidates_(std::move(candidates)) {
  MANET_EXPECTS(!candidates_.empty());
}

std::unique_ptr<SourceModel> makeSourceModel(
    const TrafficConfig& config, int numHosts,
    const std::vector<geom::Vec2>& initialPositions, double mapMeters) {
  MANET_EXPECTS(numHosts >= 1);
  switch (config.sources) {
    case TrafficConfig::Sources::kUniform:
      return std::make_unique<UniformSources>(numHosts);
    case TrafficConfig::Sources::kHotspot: {
      std::vector<net::HostId> hotspot = config.hotspotIds;
      if (hotspot.empty()) {
        const int k = std::clamp(config.hotspotCount, 1, numHosts);
        hotspot.reserve(static_cast<std::size_t>(k));
        for (int i = 0; i < k; ++i) {
          hotspot.push_back(net::HostId{static_cast<std::uint32_t>(i)});
        }
      }
      for (net::HostId id : hotspot) {
        MANET_EXPECTS(id.value() < static_cast<std::uint32_t>(numHosts));
      }
      return std::make_unique<SubsetSources>(std::move(hotspot));
    }
    case TrafficConfig::Sources::kZone: {
      const double x0 = std::min(config.zoneX0, config.zoneX1) * mapMeters;
      const double x1 = std::max(config.zoneX0, config.zoneX1) * mapMeters;
      const double y0 = std::min(config.zoneY0, config.zoneY1) * mapMeters;
      const double y1 = std::max(config.zoneY0, config.zoneY1) * mapMeters;
      std::vector<net::HostId> inZone;
      const std::size_t n = std::min(initialPositions.size(),
                                     static_cast<std::size_t>(numHosts));
      for (std::size_t i = 0; i < n; ++i) {
        const geom::Vec2& p = initialPositions[i];
        if (p.x >= x0 && p.x <= x1 && p.y >= y0 && p.y <= y1) {
          inZone.push_back(net::HostId{static_cast<std::uint32_t>(i)});
        }
      }
      if (inZone.empty()) {
        // An empty zone must not stall the workload: degrade to uniform.
        return std::make_unique<UniformSources>(numHosts);
      }
      return std::make_unique<SubsetSources>(std::move(inZone));
    }
  }
  MANET_ASSERT(!"unreachable source model");
  return nullptr;
}

}  // namespace manet::traffic
