// Traffic workload configuration (DESIGN.md §12): which arrival process
// produces the broadcast-request stream, and which source model picks the
// originating host for each request. The two compose independently, so a
// Poisson stream can come from uniform sources while a CBR stream hammers a
// hotspot. Everything defaults to the paper's single workload — U(0,
// interarrivalMax) gaps from uniformly random sources — and that default is
// bit-identical to the pre-subsystem inline loop: the generator consumes the
// same sim::Rng stream with the same draw order (gap, then source, per
// request).
#pragma once

#include <cstdint>
#include <vector>

#include "net/ids.hpp"
#include "sim/time.hpp"

namespace manet::traffic {

/// One broadcast request of the workload stream. `at` is absolute simulation
/// time in generator output; in a TrafficConfig::replay script it is relative
/// to the workload start (end of warmup). `seq` numbers requests in stream
/// order — the per-broadcast sequence id delivery accounting joins on.
struct Request {
  sim::TimePoint at{};
  net::HostId source{};
  std::uint32_t seq = 0;
};

struct TrafficConfig {
  // --- arrival process -----------------------------------------------------
  enum class Arrival {
    kUniform,   // gaps ~ U(0, interarrivalMax) — the paper's workload (§4)
    kPoisson,   // exponential gaps at `poissonRatePerSecond`
    kPeriodic,  // constant-bit-rate: one request every `period`
    kBurst,     // on/off: bursts of `burstLength` closely spaced requests
                // separated by exponential idle gaps (MMPP-style)
    kReplay,    // explicit (time, source) script from `replay`
  };
  Arrival arrival = Arrival::kUniform;

  /// kPoisson: mean request rate (requests per simulated second, > 0).
  double poissonRatePerSecond = 1.0;

  /// kPeriodic: fixed gap between consecutive requests (> 0).
  sim::Duration period = sim::kSecond;

  /// kBurst: requests per burst (>= 1), max intra-burst gap (gaps are
  /// U(0, burstGapMax)), and the mean of the exponential idle gap that
  /// precedes each burst.
  int burstLength = 8;
  sim::Duration burstGapMax = 50 * sim::kMillisecond;
  sim::Duration burstIdleMean = 4 * sim::kSecond;

  /// kReplay: the exact request script. Entries may be given in any order;
  /// the generator stable-sorts by time and renumbers `seq`. The scenario's
  /// numBroadcasts is forced to the script size.
  std::vector<Request> replay;

  // --- source model --------------------------------------------------------
  enum class Sources {
    kUniform,  // every host equally likely (the paper's model)
    kHotspot,  // requests come only from a k-host hotspot set
    kZone,     // requests come from hosts whose initial position lies in a
               // map-relative rectangle (falls back to all hosts when empty)
  };
  Sources sources = Sources::kUniform;

  /// kHotspot: size of the hotspot set — hosts 0..k-1 unless `hotspotIds`
  /// names the set explicitly.
  int hotspotCount = 3;
  std::vector<net::HostId> hotspotIds;

  /// kZone: the source rectangle as fractions of the map side, so the same
  /// config works at every map scale. Defaults to the lower-left quadrant.
  double zoneX0 = 0.0;
  double zoneY0 = 0.0;
  double zoneX1 = 0.5;
  double zoneY1 = 0.5;

  /// True when this is the paper's workload (the bit-identical default).
  bool isDefault() const {
    return arrival == Arrival::kUniform && sources == Sources::kUniform;
  }

  /// Returns a copy with the `MANET_TRAFFIC_*` environment overrides applied
  /// (same pattern as MANET_FAULT_* — rerun a built binary under a different
  /// workload without touching code):
  ///   MANET_TRAFFIC_ARRIVAL = uniform | poisson | cbr | burst
  ///   MANET_TRAFFIC_RATE    = <double requests/s>  (implies poisson when
  ///                           MANET_TRAFFIC_ARRIVAL is unset)
  ///   MANET_TRAFFIC_PERIOD_S = <double seconds>    (implies cbr when
  ///                           MANET_TRAFFIC_ARRIVAL is unset)
  ///   MANET_TRAFFIC_BURST_LEN / _BURST_GAP_S / _IDLE_S
  ///   MANET_TRAFFIC_SOURCES = uniform | hotspot | zone
  ///   MANET_TRAFFIC_HOTSPOT_K = <int>
  ///   MANET_TRAFFIC_ZONE = "x0,y0,x1,y1"           (map-side fractions)
  /// Replay scripts are programmatic-only — there is no env spelling.
  TrafficConfig withEnvOverrides() const;
};

}  // namespace manet::traffic
