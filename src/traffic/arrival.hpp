// Arrival processes (DESIGN.md §12): the stochastic gap between consecutive
// broadcast requests. Each process consumes draws from the workload Rng in a
// fixed per-request order, so a schedule is a pure function of (seed, config)
// — the determinism contract every model must keep.
#pragma once

#include <memory>

#include "sim/random.hpp"
#include "sim/time.hpp"
#include "traffic/config.hpp"

namespace manet::traffic {

class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;

  /// Gap (>= 0) between the previous request and the next one. Called once
  /// per request in stream order; implementations may keep state (burst
  /// position) but may draw randomness only from `rng`.
  virtual sim::Duration nextGap(sim::Rng& rng) = 0;
};

/// The paper's workload: gaps ~ U(0, max). Draw-for-draw identical to the
/// pre-subsystem inline loop (one uniformTime per request).
class UniformArrival final : public ArrivalProcess {
 public:
  explicit UniformArrival(sim::Duration max) : max_(max) {}
  sim::Duration nextGap(sim::Rng& rng) override {
    return rng.uniformDuration(sim::Duration{}, max_);
  }

 private:
  sim::Duration max_;
};

/// Poisson stream: exponential gaps with mean 1/rate.
class PoissonArrival final : public ArrivalProcess {
 public:
  explicit PoissonArrival(double ratePerSecond);
  sim::Duration nextGap(sim::Rng& rng) override;

 private:
  double ratePerSecond_;
};

/// Constant bit rate: one request every `period`, no randomness.
class PeriodicArrival final : public ArrivalProcess {
 public:
  explicit PeriodicArrival(sim::Duration period);
  sim::Duration nextGap(sim::Rng&) override { return period_; }

 private:
  sim::Duration period_;
};

/// On/off burst process (MMPP-style): bursts of `length` requests with
/// U(0, gapMax) intra-burst spacing, preceded by exponential idle gaps of
/// mean `idleMean`. The first request of the stream opens the first burst.
class BurstArrival final : public ArrivalProcess {
 public:
  BurstArrival(int length, sim::Duration gapMax, sim::Duration idleMean);
  sim::Duration nextGap(sim::Rng& rng) override;

 private:
  int length_;
  sim::Duration gapMax_;
  sim::Duration idleMean_;
  int remainingInBurst_ = 0;
};

/// Builds the configured process. kReplay has no arrival process (the
/// generator plays the script verbatim); requesting one is a contract error.
std::unique_ptr<ArrivalProcess> makeArrival(const TrafficConfig& config,
                                            sim::Duration uniformMax);

}  // namespace manet::traffic
