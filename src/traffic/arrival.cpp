#include "traffic/arrival.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace manet::traffic {

namespace {

/// Exponential draw with the given mean, rounded to whole microseconds.
/// uniform() is in [0, 1), so 1-u is in (0, 1] and the log is finite.
sim::Time exponentialTime(sim::Time mean, sim::Rng& rng) {
  const double u = rng.uniform();
  const double gap = -std::log(1.0 - u) * static_cast<double>(mean);
  return static_cast<sim::Time>(gap + 0.5);
}

}  // namespace

PoissonArrival::PoissonArrival(double ratePerSecond)
    : ratePerSecond_(ratePerSecond) {
  MANET_EXPECTS(ratePerSecond > 0.0);
}

sim::Time PoissonArrival::nextGap(sim::Rng& rng) {
  return exponentialTime(
      static_cast<sim::Time>(static_cast<double>(sim::kSecond) /
                                 ratePerSecond_ +
                             0.5),
      rng);
}

PeriodicArrival::PeriodicArrival(sim::Time period) : period_(period) {
  MANET_EXPECTS(period > 0);
}

BurstArrival::BurstArrival(int length, sim::Time gapMax, sim::Time idleMean)
    : length_(length), gapMax_(gapMax), idleMean_(idleMean) {
  MANET_EXPECTS(length >= 1);
  MANET_EXPECTS(gapMax >= 0);
  MANET_EXPECTS(idleMean > 0);
}

sim::Time BurstArrival::nextGap(sim::Rng& rng) {
  if (remainingInBurst_ > 0) {
    --remainingInBurst_;
    return rng.uniformTime(0, gapMax_);
  }
  // This request opens a new burst; the remaining length-1 requests follow
  // at intra-burst spacing.
  remainingInBurst_ = length_ - 1;
  return exponentialTime(idleMean_, rng);
}

std::unique_ptr<ArrivalProcess> makeArrival(const TrafficConfig& config,
                                            sim::Time uniformMax) {
  switch (config.arrival) {
    case TrafficConfig::Arrival::kUniform:
      return std::make_unique<UniformArrival>(uniformMax);
    case TrafficConfig::Arrival::kPoisson:
      return std::make_unique<PoissonArrival>(config.poissonRatePerSecond);
    case TrafficConfig::Arrival::kPeriodic:
      return std::make_unique<PeriodicArrival>(config.period);
    case TrafficConfig::Arrival::kBurst:
      return std::make_unique<BurstArrival>(
          config.burstLength, config.burstGapMax, config.burstIdleMean);
    case TrafficConfig::Arrival::kReplay:
      break;
  }
  MANET_ASSERT(!"kReplay has no arrival process");
  return nullptr;
}

}  // namespace manet::traffic
