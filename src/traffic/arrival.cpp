#include "traffic/arrival.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace manet::traffic {

namespace {

/// Exponential draw with the given mean, rounded to whole microseconds.
/// uniform() is in [0, 1), so 1-u is in (0, 1] and the log is finite.
sim::Duration exponentialGap(sim::Duration mean, sim::Rng& rng) {
  const double u = rng.uniform();
  return sim::scaleRound(mean, -std::log(1.0 - u));
}

}  // namespace

PoissonArrival::PoissonArrival(double ratePerSecond)
    : ratePerSecond_(ratePerSecond) {
  MANET_EXPECTS(ratePerSecond > 0.0);
}

sim::Duration PoissonArrival::nextGap(sim::Rng& rng) {
  // Mean gap is 1e6/rate microseconds, rounded half up; keeping the
  // historical division order preserves the draw stream bit-for-bit.
  const sim::Duration mean{static_cast<std::int64_t>(
      // NOLINT-units(poisson mean keeps the historical 1e6/rate division)
      static_cast<double>(sim::kSecond.ticks()) / ratePerSecond_ + 0.5)};
  return exponentialGap(mean, rng);
}

PeriodicArrival::PeriodicArrival(sim::Duration period) : period_(period) {
  MANET_EXPECTS(period > sim::Duration{});
}

BurstArrival::BurstArrival(int length, sim::Duration gapMax,
                           sim::Duration idleMean)
    : length_(length), gapMax_(gapMax), idleMean_(idleMean) {
  MANET_EXPECTS(length >= 1);
  MANET_EXPECTS(gapMax >= sim::Duration{});
  MANET_EXPECTS(idleMean > sim::Duration{});
}

sim::Duration BurstArrival::nextGap(sim::Rng& rng) {
  if (remainingInBurst_ > 0) {
    --remainingInBurst_;
    return rng.uniformDuration(sim::Duration{}, gapMax_);
  }
  // This request opens a new burst; the remaining length-1 requests follow
  // at intra-burst spacing.
  remainingInBurst_ = length_ - 1;
  return exponentialGap(idleMean_, rng);
}

std::unique_ptr<ArrivalProcess> makeArrival(const TrafficConfig& config,
                                            sim::Duration uniformMax) {
  switch (config.arrival) {
    case TrafficConfig::Arrival::kUniform:
      return std::make_unique<UniformArrival>(uniformMax);
    case TrafficConfig::Arrival::kPoisson:
      return std::make_unique<PoissonArrival>(config.poissonRatePerSecond);
    case TrafficConfig::Arrival::kPeriodic:
      return std::make_unique<PeriodicArrival>(config.period);
    case TrafficConfig::Arrival::kBurst:
      return std::make_unique<BurstArrival>(
          config.burstLength, config.burstGapMax, config.burstIdleMean);
    case TrafficConfig::Arrival::kReplay:
      break;
  }
  MANET_ASSERT(!"kReplay has no arrival process");
  return nullptr;
}

}  // namespace manet::traffic
