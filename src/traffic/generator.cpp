#include "traffic/generator.hpp"

#include <algorithm>
#include <utility>

#include "traffic/arrival.hpp"
#include "traffic/source_model.hpp"
#include "util/assert.hpp"

namespace manet::traffic {

Generator::Generator(const TrafficConfig& config, int numHosts,
                     sim::Duration uniformMax,
                     std::vector<geom::Vec2> initialPositions,
                     double mapMeters)
    : config_(config),
      numHosts_(numHosts),
      uniformMax_(uniformMax),
      initialPositions_(std::move(initialPositions)),
      mapMeters_(mapMeters) {
  MANET_EXPECTS(numHosts >= 1);
  MANET_EXPECTS(uniformMax >= sim::Duration{});
}

std::vector<Request> Generator::schedule(int count, sim::TimePoint start,
                                         sim::Rng& rng) const {
  std::vector<Request> out;

  if (config_.arrival == TrafficConfig::Arrival::kReplay) {
    out = config_.replay;
    std::stable_sort(out.begin(), out.end(),
                     [](const Request& a, const Request& b) {
                       return a.at < b.at;
                     });
    for (std::size_t i = 0; i < out.size(); ++i) {
      // Replay scripts give times relative to the workload start; shift to
      // absolute by re-anchoring at `start`.
      MANET_EXPECTS(out[i].at >= sim::kTimeZero);
      MANET_EXPECTS(out[i].source.value() <
                    static_cast<std::uint32_t>(numHosts_));
      out[i].at = start + out[i].at.sinceStart();
      out[i].seq = static_cast<std::uint32_t>(i);
    }
    return out;
  }

  MANET_EXPECTS(count >= 0);
  const auto arrival = makeArrival(config_, uniformMax_);
  const auto sources =
      makeSourceModel(config_, numHosts_, initialPositions_, mapMeters_);
  out.reserve(static_cast<std::size_t>(count));
  sim::TimePoint at = start;
  for (int i = 0; i < count; ++i) {
    at += arrival->nextGap(rng);
    Request req;
    req.at = at;
    req.source = sources->pick(rng);
    req.seq = static_cast<std::uint32_t>(i);
    out.push_back(req);
  }
  return out;
}

}  // namespace manet::traffic
