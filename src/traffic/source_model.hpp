// Source models (DESIGN.md §12): which host originates each broadcast
// request. Orthogonal to the arrival process — every model consumes exactly
// one draw per request, so swapping the source model never shifts the
// arrival gaps drawn from the shared workload stream.
#pragma once

#include <memory>
#include <vector>

#include "geom/vec2.hpp"
#include "net/ids.hpp"
#include "sim/random.hpp"
#include "traffic/config.hpp"

namespace manet::traffic {

class SourceModel {
 public:
  virtual ~SourceModel() = default;

  /// The originating host of the next request. Called once per request in
  /// stream order; consumes exactly one draw from `rng`.
  virtual net::HostId pick(sim::Rng& rng) = 0;
};

/// The paper's model: every host equally likely. Draw-for-draw identical to
/// the pre-subsystem inline loop (one uniformInt(0, numHosts-1) per request).
class UniformSources final : public SourceModel {
 public:
  explicit UniformSources(int numHosts);
  net::HostId pick(sim::Rng& rng) override {
    return net::HostId{
        static_cast<std::uint32_t>(rng.uniformInt(0, numHosts_ - 1))};
  }

 private:
  int numHosts_;
};

/// Uniform over an explicit candidate set (hotspot and zone models both
/// reduce to this once the set is computed).
class SubsetSources final : public SourceModel {
 public:
  explicit SubsetSources(std::vector<net::HostId> candidates);
  net::HostId pick(sim::Rng& rng) override {
    return candidates_[static_cast<std::size_t>(
        rng.uniformInt(0, static_cast<std::int64_t>(candidates_.size()) - 1))];
  }
  const std::vector<net::HostId>& candidates() const { return candidates_; }

 private:
  std::vector<net::HostId> candidates_;
};

/// Builds the configured model.
///   kUniform  — all hosts.
///   kHotspot  — config.hotspotIds when non-empty, else hosts 0..k-1 (k
///               clamped to numHosts).
///   kZone     — hosts whose entry in `initialPositions` (indexed by id,
///               may be empty for non-zone models) lies inside the
///               map-relative rectangle; falls back to all hosts when the
///               zone is empty so the workload never stalls.
std::unique_ptr<SourceModel> makeSourceModel(
    const TrafficConfig& config, int numHosts,
    const std::vector<geom::Vec2>& initialPositions, double mapMeters);

}  // namespace manet::traffic
