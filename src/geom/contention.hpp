// Contention analysis behind Fig. 2: given n hosts placed uniformly in a
// sender's transmission disk, estimate cf(n, k) — the probability that
// exactly k of the n potential rebroadcasters experience no contention.
//
// Two rebroadcasters contend when they are within each other's range (both
// are within the sender's disk, so they contend iff their mutual distance is
// <= r). A host is contention-free when it contends with nobody.
#pragma once

#include <vector>

#include "sim/random.hpp"

namespace manet::geom {

/// One trial: returns the number of contention-free hosts among n random
/// hosts in a disk of radius r.
int contentionFreeCount(int n, double r, sim::Rng& rng);

/// Estimates cf(n, k) for k = 0..n (index k of the returned vector) over
/// `trials` placements. The entries sum to 1.
std::vector<double> contentionFreeDistribution(int n, double r, sim::Rng& rng,
                                               int trials = 20000);

}  // namespace manet::geom
