// Closed-form circle geometry used in the paper's redundancy analysis
// (§2.2.1): INTC(d), additional coverage of a single rebroadcast, and the
// analytic averages the paper quotes (0.61 pi r^2 max, ~0.41 pi r^2 mean).
#pragma once

#include "geom/vec2.hpp"

namespace manet::geom {

inline constexpr double kPi = 3.14159265358979323846;

/// INTC(d): intersection area of two circles of equal radius `r` whose
/// centers are `d` apart. Returns pi*r^2 when d == 0 and 0 when d >= 2r.
double intersectionArea(double r, double d);

/// Additional coverage pi*r^2 - INTC(d) provided by a rebroadcast from a host
/// at distance `d` from the original sender (both radius `r`).
double additionalCoverageArea(double r, double d);

/// The same, as a fraction of pi*r^2 (0.0 .. 1.0).
double additionalCoverageFraction(double r, double d);

/// Analytic average additional-coverage fraction over a receiver uniformly
/// distributed in the sender's disk; the paper derives ~0.41.
/// Computed by numeric integration of (pi r^2 - INTC(x)) * 2 pi x / (pi r^2)^2.
double averageAdditionalCoverageFraction(double r, int steps = 1 << 16);

/// Analytic expected contention probability between two receivers of the same
/// broadcast (the ~59% figure in §2.2.2): probability that a second receiver
/// falls inside the sender/first-receiver intersection, averaged over the
/// first receiver's position.
double expectedPairContentionProbability(double r, int steps = 1 << 16);

}  // namespace manet::geom
