// Monte-Carlo additional-coverage estimation.
//
// Two users:
//  * the location-based schemes, which must compute at runtime the fraction
//    of a host's disk not already covered by the senders it heard the packet
//    from (paper §2.3.2 / §3.2), and
//  * the EAC(k) experiment behind Fig. 1.
#pragma once

#include <span>
#include <vector>

#include "geom/vec2.hpp"
#include "sim/random.hpp"

namespace manet::geom {

/// Estimates the fraction (0..1) of the disk of radius `r` centered at `self`
/// that is NOT covered by the equal-radius disks centered at `covered`.
/// Uses `samples` uniform points in self's disk; error ~ 1/sqrt(samples).
double uncoveredFraction(Vec2 self, std::span<const Vec2> covered, double r,
                         sim::Rng& rng, int samples = 1024);

/// One trial of the EAC experiment: place `k` senders uniformly at random so
/// that each could have been heard by a receiver at the origin (i.e. within
/// distance r), then measure the receiver's uncovered disk fraction.
double eacTrial(int k, double r, sim::Rng& rng, int samples = 1024);

/// EAC(k) / (pi r^2): expected additional coverage fraction after hearing the
/// same packet k times (Fig. 1), averaged over `trials` random placements.
double expectedAdditionalCoverage(int k, double r, sim::Rng& rng,
                                  int trials = 2000, int samples = 1024);

/// Convenience: EAC(k) for k = 1..kMax (Fig. 1's series).
std::vector<double> eacSeries(int kMax, double r, sim::Rng& rng,
                              int trials = 2000, int samples = 1024);

/// The constant the adaptive location-based scheme uses for crowded
/// neighborhoods: EAC(2)/(pi r^2) ~= 0.187 (paper §3.2).
inline constexpr double kEac2Fraction = 0.187;

}  // namespace manet::geom
