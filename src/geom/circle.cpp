#include "geom/circle.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace manet::geom {

double intersectionArea(double r, double d) {
  MANET_EXPECTS(r > 0.0);
  MANET_EXPECTS(d >= 0.0);
  if (d >= 2.0 * r) return 0.0;
  if (d == 0.0) return kPi * r * r;
  // Lens area for two equal circles: 2 r^2 cos^-1(d / 2r) - (d/2) sqrt(4r^2 - d^2).
  const double half = d / (2.0 * r);
  return 2.0 * r * r * std::acos(half) -
         (d / 2.0) * std::sqrt(4.0 * r * r - d * d);
}

double additionalCoverageArea(double r, double d) {
  return kPi * r * r - intersectionArea(r, d);
}

double additionalCoverageFraction(double r, double d) {
  return additionalCoverageArea(r, d) / (kPi * r * r);
}

double averageAdditionalCoverageFraction(double r, int steps) {
  MANET_EXPECTS(steps > 0);
  // Integrate 2 pi x * (pi r^2 - INTC(x)) / (pi r^2)^2 dx over x in [0, r]
  // with the midpoint rule (the integrand is smooth).
  const double area = kPi * r * r;
  const double dx = r / steps;
  double sum = 0.0;
  for (int i = 0; i < steps; ++i) {
    const double x = (i + 0.5) * dx;
    sum += 2.0 * kPi * x * (area - intersectionArea(r, x));
  }
  return sum * dx / (area * area);
}

double expectedPairContentionProbability(double r, int steps) {
  MANET_EXPECTS(steps > 0);
  // E over B's distance x of |S_{A intersect B}| / (pi r^2), B uniform in A's disk.
  const double area = kPi * r * r;
  const double dx = r / steps;
  double sum = 0.0;
  for (int i = 0; i < steps; ++i) {
    const double x = (i + 0.5) * dx;
    sum += 2.0 * kPi * x * intersectionArea(r, x);
  }
  return sum * dx / (area * area);
}

}  // namespace manet::geom
