#include "geom/coverage.hpp"

#include <cmath>

#include "geom/circle.hpp"
#include "util/assert.hpp"

namespace manet::geom {
namespace {

/// Uniform point in the disk of radius r around center (inverse-CDF radius).
Vec2 uniformInDisk(Vec2 center, double r, sim::Rng& rng) {
  const double radius = r * std::sqrt(rng.uniform());
  const double angle = rng.uniform(0.0, 2.0 * kPi);
  return center + radius * unitVector(angle);
}

}  // namespace

double uncoveredFraction(Vec2 self, std::span<const Vec2> covered, double r,
                         sim::Rng& rng, int samples) {
  MANET_EXPECTS(r > 0.0);
  MANET_EXPECTS(samples > 0);
  const double r2 = r * r;
  int uncovered = 0;
  for (int i = 0; i < samples; ++i) {
    const Vec2 p = uniformInDisk(self, r, rng);
    bool hit = false;
    for (const Vec2& c : covered) {
      if (distanceSquared(p, c) <= r2) {
        hit = true;
        break;
      }
    }
    if (!hit) ++uncovered;
  }
  return static_cast<double>(uncovered) / samples;
}

double eacTrial(int k, double r, sim::Rng& rng, int samples) {
  MANET_EXPECTS(k >= 1);
  // Receiver at the origin; each of the k prior transmitters heard by the
  // receiver lies uniformly within the receiver's range.
  std::vector<Vec2> senders;
  senders.reserve(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) {
    senders.push_back(uniformInDisk(Vec2{0.0, 0.0}, r, rng));
  }
  return uncoveredFraction(Vec2{0.0, 0.0}, senders, r, rng, samples);
}

double expectedAdditionalCoverage(int k, double r, sim::Rng& rng, int trials,
                                  int samples) {
  MANET_EXPECTS(trials > 0);
  double sum = 0.0;
  for (int t = 0; t < trials; ++t) sum += eacTrial(k, r, rng, samples);
  return sum / trials;
}

std::vector<double> eacSeries(int kMax, double r, sim::Rng& rng, int trials,
                              int samples) {
  MANET_EXPECTS(kMax >= 1);
  std::vector<double> series;
  series.reserve(static_cast<std::size_t>(kMax));
  for (int k = 1; k <= kMax; ++k) {
    series.push_back(expectedAdditionalCoverage(k, r, rng, trials, samples));
  }
  return series;
}

}  // namespace manet::geom
