// 2D points/vectors in meters. Plain value type, no invariant.
#pragma once

#include <cmath>

namespace manet::geom {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  friend constexpr Vec2 operator+(Vec2 a, Vec2 b) {
    return {a.x + b.x, a.y + b.y};
  }
  friend constexpr Vec2 operator-(Vec2 a, Vec2 b) {
    return {a.x - b.x, a.y - b.y};
  }
  friend constexpr Vec2 operator*(Vec2 a, double s) {
    return {a.x * s, a.y * s};
  }
  friend constexpr Vec2 operator*(double s, Vec2 a) { return a * s; }
  friend constexpr bool operator==(Vec2 a, Vec2 b) {
    return a.x == b.x && a.y == b.y;
  }

  double norm() const { return std::hypot(x, y); }
  constexpr double normSquared() const { return x * x + y * y; }
};

inline double distance(Vec2 a, Vec2 b) { return (a - b).norm(); }

inline constexpr double distanceSquared(Vec2 a, Vec2 b) {
  return (a - b).normSquared();
}

/// Unit vector at angle `radians` from the +x axis.
inline Vec2 unitVector(double radians) {
  return {std::cos(radians), std::sin(radians)};
}

}  // namespace manet::geom
