#include "geom/contention.hpp"

#include <cmath>

#include "geom/circle.hpp"
#include "geom/vec2.hpp"
#include "util/assert.hpp"

namespace manet::geom {

int contentionFreeCount(int n, double r, sim::Rng& rng) {
  MANET_EXPECTS(n >= 1);
  MANET_EXPECTS(r > 0.0);
  std::vector<Vec2> hosts;
  hosts.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double radius = r * std::sqrt(rng.uniform());
    const double angle = rng.uniform(0.0, 2.0 * kPi);
    hosts.push_back(radius * unitVector(angle));
  }
  const double r2 = r * r;
  int free = 0;
  for (int i = 0; i < n; ++i) {
    bool contended = false;
    for (int j = 0; j < n && !contended; ++j) {
      if (j != i && distanceSquared(hosts[static_cast<std::size_t>(i)],
                                    hosts[static_cast<std::size_t>(j)]) <= r2) {
        contended = true;
      }
    }
    if (!contended) ++free;
  }
  return free;
}

std::vector<double> contentionFreeDistribution(int n, double r, sim::Rng& rng,
                                               int trials) {
  MANET_EXPECTS(trials > 0);
  std::vector<double> histogram(static_cast<std::size_t>(n) + 1, 0.0);
  for (int t = 0; t < trials; ++t) {
    ++histogram[static_cast<std::size_t>(contentionFreeCount(n, r, rng))];
  }
  for (double& bin : histogram) bin /= trials;
  return histogram;
}

}  // namespace manet::geom
