#include "trace/timeline.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "sim/time.hpp"

namespace manet::trace {

int Timeline::receivedCount() const {
  int n = 0;
  for (const auto& o : outcomes) n += o.deliveredAt != sim::kNever ? 1 : 0;
  return n;
}

int Timeline::rebroadcastCount() const {
  int n = 0;
  for (const auto& o : outcomes) n += o.rebroadcast ? 1 : 0;
  return n;
}

int Timeline::inhibitedCount() const {
  int n = 0;
  for (const auto& o : outcomes) n += o.inhibited ? 1 : 0;
  return n;
}

std::string Timeline::render() const {
  std::ostringstream os;
  os << "broadcast (" << bid.origin.value() << ", " << bid.seq.value()
     << ") originated by " << source.value()
     << " at t=" << sim::toSeconds(originatedAt) << "s\n";
  for (const auto& o : outcomes) {
    os << "  host " << o.node.value();
    if (o.deliveredAt != sim::kNever) {
      os << ": delivered +"
         << sim::toSeconds(o.deliveredAt - originatedAt) * 1000.0 << "ms";
    }
    if (o.duplicatesHeard > 0) os << ", +" << o.duplicatesHeard << " dup";
    if (o.rebroadcast) {
      os << ", RELAYED +"
         << sim::toSeconds(o.txStartedAt - originatedAt) * 1000.0 << "ms";
    }
    if (o.inhibited) {
      os << ", inhibited +"
         << sim::toSeconds(o.inhibitedAt - originatedAt) * 1000.0 << "ms";
    }
    os << "\n";
  }
  os << "  => received " << receivedCount() << ", relayed "
     << rebroadcastCount() << ", inhibited " << inhibitedCount();
  if (completionTime >= sim::Duration{}) {
    os << ", completed in " << sim::toSeconds(completionTime) * 1000.0
       << "ms";
  }
  os << "\n";
  return os.str();
}

std::optional<Timeline> buildTimeline(const std::vector<Event>& events,
                                      net::BroadcastId bid) {
  Timeline tl;
  tl.bid = bid;
  std::map<net::HostId, HostOutcome> byHost;  // ordered for stable output
  sim::TimePoint lastTerminal = sim::kNever;
  bool found = false;

  for (const Event& e : events) {
    if (!(e.bid == bid)) continue;
    switch (e.kind) {
      case EventKind::kBroadcastOriginated:
        tl.source = e.node;
        tl.originatedAt = e.at;
        found = true;
        continue;
      case EventKind::kHelloSent:
      case EventKind::kDrop:
      case EventKind::kHostDown:
      case EventKind::kHostUp:
      case EventKind::kAuditViolation:
        continue;
      default:
        break;
    }
    if (e.node == tl.source) {
      // The source's own tx events bound the completion time but the source
      // is not an "outcome" host.
      if (e.kind == EventKind::kTxFinished) {
        lastTerminal = std::max(lastTerminal, e.at);
      }
      continue;
    }
    auto [it, inserted] = byHost.try_emplace(e.node);
    HostOutcome& o = it->second;
    if (inserted) o.node = e.node;
    switch (e.kind) {
      case EventKind::kDelivered:
        o.deliveredAt = e.at;
        break;
      case EventKind::kDuplicateHeard:
        ++o.duplicatesHeard;
        break;
      case EventKind::kTxStarted:
        o.rebroadcast = true;
        o.txStartedAt = e.at;
        break;
      case EventKind::kTxFinished:
        lastTerminal = std::max(lastTerminal, e.at);
        break;
      case EventKind::kInhibited:
        o.inhibited = true;
        o.inhibitedAt = e.at;
        lastTerminal = std::max(lastTerminal, e.at);
        break;
      default:
        break;
    }
  }
  if (!found) return std::nullopt;

  tl.outcomes.reserve(byHost.size());
  for (auto& [node, outcome] : byHost) tl.outcomes.push_back(outcome);
  std::sort(tl.outcomes.begin(), tl.outcomes.end(),
            [](const HostOutcome& a, const HostOutcome& b) {
              return a.deliveredAt < b.deliveredAt;
            });
  if (lastTerminal != sim::kNever && tl.originatedAt != sim::kNever) {
    tl.completionTime = lastTerminal - tl.originatedAt;
  }
  return tl;
}

std::vector<net::BroadcastId> broadcastsIn(const std::vector<Event>& events) {
  std::vector<net::BroadcastId> out;
  for (const Event& e : events) {
    if (e.kind == EventKind::kBroadcastOriginated) out.push_back(e.bid);
  }
  return out;
}

}  // namespace manet::trace
