// Per-broadcast timeline reconstruction: turns a flat event stream into the
// story of one broadcast — who relayed, who was suppressed, how the packet
// spread hop by hop. Used by examples/trace_inspector and by tests that
// verify protocol behaviour at the event level.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "trace/event.hpp"

namespace manet::trace {

/// What one host did with one broadcast.
struct HostOutcome {
  net::HostId node = net::kInvalidHost;
  sim::TimePoint deliveredAt = sim::kNever;  // kNever: never received
  int duplicatesHeard = 0;
  bool rebroadcast = false;
  sim::TimePoint txStartedAt = sim::kNever;
  bool inhibited = false;
  sim::TimePoint inhibitedAt = sim::kNever;
};

struct Timeline {
  net::BroadcastId bid{};
  net::HostId source = net::kInvalidHost;
  sim::TimePoint originatedAt = sim::kNever;
  std::vector<HostOutcome> outcomes;  // hosts that saw the packet, by time

  int receivedCount() const;
  int rebroadcastCount() const;
  int inhibitedCount() const;

  /// Time of the last terminal event (tx end or inhibition) minus origin —
  /// the paper's latency for this broadcast. kNever until computed.
  sim::Duration completionTime{-1};

  /// Multi-line human-readable rendering.
  std::string render() const;
};

/// Builds the timeline of broadcast `bid` from recorded events. Returns
/// nullopt if the broadcast never originated within the events.
std::optional<Timeline> buildTimeline(const std::vector<Event>& events,
                                      net::BroadcastId bid);

/// Lists every broadcast id that originated within the events, in order.
std::vector<net::BroadcastId> broadcastsIn(const std::vector<Event>& events);

}  // namespace manet::trace
