#include "trace/recorder.hpp"

#include "util/assert.hpp"

namespace manet::trace {

const char* eventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kBroadcastOriginated: return "originated";
    case EventKind::kTxStarted: return "tx_start";
    case EventKind::kTxFinished: return "tx_end";
    case EventKind::kDelivered: return "delivered";
    case EventKind::kDuplicateHeard: return "duplicate";
    case EventKind::kDrop: return "drop";
    case EventKind::kInhibited: return "inhibited";
    case EventKind::kHelloSent: return "hello";
    case EventKind::kHostDown: return "host_down";
    case EventKind::kHostUp: return "host_up";
    case EventKind::kAuditViolation: return "audit_violation";
  }
  return "?";
}

void Recorder::onEvent(const Event& event) {
  ++totalSeen_;
  ++countsByKind_[static_cast<std::size_t>(event.kind)];
  if (event.kind == EventKind::kDrop) {
    ++dropsByReason_[static_cast<std::size_t>(event.drop)];
  }
  if (filter_ && !filter_(event)) return;
  if (storageCap_ != 0 && events_.size() >= storageCap_) return;
  events_.push_back(event);
}

std::uint64_t Recorder::countOf(EventKind kind) const {
  return countsByKind_[static_cast<std::size_t>(kind)];
}

std::uint64_t Recorder::countOfDrop(phy::DropReason reason) const {
  return dropsByReason_[static_cast<std::size_t>(reason)];
}

std::vector<Event> Recorder::select(EventKind kind,
                                    net::BroadcastId bid) const {
  std::vector<Event> out;
  for (const Event& e : events_) {
    if (e.kind == kind && e.bid == bid) out.push_back(e);
  }
  return out;
}

void Recorder::clearStored() { events_.clear(); }

void TeeSink::add(TraceSink* sink) {
  MANET_EXPECTS(sink != nullptr);
  sinks_.push_back(sink);
}

void TeeSink::onEvent(const Event& event) {
  for (TraceSink* sink : sinks_) sink->onEvent(event);
}

}  // namespace manet::trace
