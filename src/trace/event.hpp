// Structured simulation events. The world and its hosts emit these through a
// TraceSink when tracing is enabled; recorders turn the stream into
// per-broadcast timelines, CSV files, or protocol statistics.
//
// Tracing is strictly observational: enabling it must not change a run
// (no RNG draws, no scheduling).
#pragma once

#include "geom/vec2.hpp"
#include "net/ids.hpp"
#include "phy/drop.hpp"
#include "sim/time.hpp"

namespace manet::trace {

enum class EventKind {
  kBroadcastOriginated,  // source issued a new broadcast request
  kTxStarted,            // a data frame hit the air (source or relay)
  kTxFinished,           // the data frame left the air
  kDelivered,            // a host received the packet intact, first time
  kDuplicateHeard,       // a host received an intact duplicate
  kDrop,                 // a frame was lost at a host; Event::drop says why
  kInhibited,            // the scheme cancelled a pending rebroadcast
  kHelloSent,            // a HELLO beacon was transmitted
  kHostDown,             // host churn: the host crashed
  kHostUp,               // host churn: the host recovered
  kAuditViolation,       // invariant auditor reported a violation (§9);
                         // never emitted unless the build sets MANET_AUDIT
};

inline constexpr int kEventKindCount = 11;

/// One event. `bid` is meaningful for the broadcast-related kinds; position
/// is the observing host's position at event time; `drop` is meaningful for
/// kDrop only.
struct Event {
  EventKind kind = EventKind::kDelivered;
  sim::TimePoint at{};
  net::HostId node = net::kInvalidHost;
  net::BroadcastId bid{};
  net::HostId from = net::kInvalidHost;  // sender, for rx-side events
  geom::Vec2 position{};
  phy::DropReason drop = phy::DropReason::kNone;
};

/// Receives every emitted event, in nondecreasing time order.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void onEvent(const Event& event) = 0;
};

const char* eventKindName(EventKind kind);

}  // namespace manet::trace
