// In-memory trace recorder with simple filtering and counting.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "trace/event.hpp"

namespace manet::trace {

/// Stores every event (optionally filtered). Memory cost is one Event per
/// occurrence, so filter or cap for long runs.
class Recorder final : public TraceSink {
 public:
  using Filter = std::function<bool(const Event&)>;

  Recorder() = default;
  /// Only events passing `filter` are stored (all are still counted).
  explicit Recorder(Filter filter) : filter_(std::move(filter)) {}

  void onEvent(const Event& event) override;

  const std::vector<Event>& events() const { return events_; }

  /// Total events seen (including filtered-out ones), by kind.
  std::uint64_t countOf(EventKind kind) const;
  std::uint64_t totalSeen() const { return totalSeen_; }

  /// Total kDrop events seen with the given reason.
  std::uint64_t countOfDrop(phy::DropReason reason) const;

  /// Events of one kind for one broadcast, in time order.
  std::vector<Event> select(EventKind kind, net::BroadcastId bid) const;

  /// Drops stored events (counters are kept).
  void clearStored();

  /// Stop storing (counters keep running) once this many events are held;
  /// 0 = unlimited.
  void setStorageCap(std::size_t cap) { storageCap_ = cap; }

 private:
  Filter filter_;
  std::vector<Event> events_;
  std::size_t storageCap_ = 0;
  std::uint64_t totalSeen_ = 0;
  std::uint64_t countsByKind_[kEventKindCount] = {};
  std::uint64_t dropsByReason_[phy::kDropReasonCount] = {};
};

/// Fans one event stream out to several sinks.
class TeeSink final : public TraceSink {
 public:
  void add(TraceSink* sink);
  void onEvent(const Event& event) override;

 private:
  std::vector<TraceSink*> sinks_;
};

}  // namespace manet::trace
