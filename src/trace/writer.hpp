// Trace export: CSV (one row per event) for offline analysis/plotting.
#pragma once

#include <iosfwd>
#include <span>
#include <string>

#include "trace/event.hpp"

namespace manet::trace {

/// Writes `events` as CSV with a header row:
///   time_us,kind,node,origin,seq,from,x,y
void writeCsv(std::ostream& os, std::span<const Event> events);

/// Formats one event as a single human-readable line.
std::string formatEvent(const Event& event);

}  // namespace manet::trace
