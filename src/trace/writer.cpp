#include "trace/writer.hpp"

#include <ostream>
#include <sstream>

namespace manet::trace {

void writeCsv(std::ostream& os, std::span<const Event> events) {
  os << "time_us,kind,node,origin,seq,from,x,y,reason\n";
  for (const Event& e : events) {
    os << e.at.ticks() << ',' << eventKindName(e.kind) << ','
       << e.node.value() << ',';
    if (e.bid.origin == net::kInvalidHost) {
      os << ",,";
    } else {
      os << e.bid.origin.value() << ',' << e.bid.seq.value() << ',';
    }
    if (e.from == net::kInvalidHost) {
      os << ',';
    } else {
      os << e.from.value() << ',';
    }
    os << e.position.x << ',' << e.position.y << ',';
    if (e.drop != phy::DropReason::kNone) os << phy::dropReasonName(e.drop);
    os << '\n';
  }
}

std::string formatEvent(const Event& event) {
  std::ostringstream os;
  os << "[t=" << event.at.ticks() << "us] " << eventKindName(event.kind)
     << " node=" << event.node.value();
  if (event.bid.origin != net::kInvalidHost) {
    os << " bid=(" << event.bid.origin.value() << "," << event.bid.seq.value()
       << ")";
  }
  if (event.from != net::kInvalidHost) os << " from=" << event.from.value();
  if (event.drop != phy::DropReason::kNone) {
    os << " reason=" << phy::dropReasonName(event.drop);
  }
  return os.str();
}

}  // namespace manet::trace
