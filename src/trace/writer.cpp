#include "trace/writer.hpp"

#include <ostream>
#include <sstream>

namespace manet::trace {

void writeCsv(std::ostream& os, std::span<const Event> events) {
  os << "time_us,kind,node,origin,seq,from,x,y,reason\n";
  for (const Event& e : events) {
    os << e.at << ',' << eventKindName(e.kind) << ',' << e.node << ',';
    if (e.bid.origin == net::kInvalidNode) {
      os << ",,";
    } else {
      os << e.bid.origin << ',' << e.bid.seq << ',';
    }
    if (e.from == net::kInvalidNode) {
      os << ',';
    } else {
      os << e.from << ',';
    }
    os << e.position.x << ',' << e.position.y << ',';
    if (e.drop != phy::DropReason::kNone) os << phy::dropReasonName(e.drop);
    os << '\n';
  }
}

std::string formatEvent(const Event& event) {
  std::ostringstream os;
  os << "[t=" << event.at << "us] " << eventKindName(event.kind) << " node="
     << event.node;
  if (event.bid.origin != net::kInvalidNode) {
    os << " bid=(" << event.bid.origin << "," << event.bid.seq << ")";
  }
  if (event.from != net::kInvalidNode) os << " from=" << event.from;
  if (event.drop != phy::DropReason::kNone) {
    os << " reason=" << phy::dropReasonName(event.drop);
  }
  return os.str();
}

}  // namespace manet::trace
