// The cluster-based broadcast scheme of Ni et al. [15]: plain members never
// rebroadcast (their head's transmission covers the cluster); heads and
// gateways forward, moderated by an inner counter threshold so that dense
// backbones don't storm among themselves.
#pragma once

#include <memory>
#include <string>

#include "cluster/assignment.hpp"
#include "core/policy.hpp"

namespace manet::cluster {

class ClusterPolicy final : public core::RebroadcastPolicy {
 public:
  /// `innerCounter`: counter threshold applied to heads/gateways (the
  /// "cluster-based scheme with counter-based" variant of [15]).
  explicit ClusterPolicy(int innerCounter = 3);

  std::unique_ptr<core::PacketDecider> makeDecider(
      core::HostView& host, const core::Reception& first) const override;

  std::string name() const override;

  int innerCounter() const { return innerCounter_; }

 private:
  int innerCounter_;
};

}  // namespace manet::cluster
