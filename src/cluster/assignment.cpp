#include "cluster/assignment.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "util/assert.hpp"

namespace manet::cluster {

const char* roleName(Role role) {
  switch (role) {
    case Role::kHead: return "head";
    case Role::kGateway: return "gateway";
    case Role::kMember: return "member";
  }
  return "?";
}

std::vector<RoleInfo> assignRoles(
    const std::vector<std::vector<net::NodeId>>& adjacency) {
  const std::size_t n = adjacency.size();
  std::vector<RoleInfo> roles(n);
  std::vector<bool> isHead(n, false);

  // Greedy in ascending id: a node becomes head unless a smaller-id
  // neighbor already did. Heads therefore form the lexicographically-first
  // maximal independent set — exactly what converged lowest-ID clustering
  // produces.
  for (net::NodeId id = 0; id < n; ++id) {
    net::NodeId lowestHeadNeighbor = net::kInvalidNode;
    for (net::NodeId nb : adjacency[id]) {
      MANET_EXPECTS(nb < n);
      if (nb < id && isHead[nb]) {
        lowestHeadNeighbor = std::min(lowestHeadNeighbor, nb);
      }
    }
    if (lowestHeadNeighbor == net::kInvalidNode) {
      isHead[id] = true;
      roles[id] = RoleInfo{Role::kHead, id};
    } else {
      roles[id] = RoleInfo{Role::kMember, lowestHeadNeighbor};
    }
  }

  // Gateways: non-heads adjacent to >= 2 heads, or to a node of a different
  // cluster.
  for (net::NodeId id = 0; id < n; ++id) {
    if (roles[id].role == Role::kHead) continue;
    int headNeighbors = 0;
    bool bridges = false;
    for (net::NodeId nb : adjacency[id]) {
      if (isHead[nb]) ++headNeighbors;
      if (roles[nb].head != roles[id].head) bridges = true;
    }
    if (headNeighbors >= 2 || bridges) roles[id].role = Role::kGateway;
  }
  return roles;
}

RoleInfo egoRole(const core::HostView& host) {
  // Collect the ego network: self, N_x, and each neighbor's advertised set.
  const net::NodeId self = host.id();
  std::set<net::NodeId> nodes{self};
  const std::vector<net::NodeId> oneHop = host.neighborIds();
  std::map<net::NodeId, std::set<net::NodeId>> edges;

  auto addEdge = [&edges](net::NodeId a, net::NodeId b) {
    if (a == b) return;
    edges[a].insert(b);
    edges[b].insert(a);
  };

  for (net::NodeId nb : oneHop) {
    nodes.insert(nb);
    addEdge(self, nb);
  }
  // Two-hop knowledge: neighbors' own neighbor sets (piggybacked in HELLOs,
  // or exact in oracle mode). For second-ring nodes also pull their sets if
  // available so gateway/headness of the ring resolves correctly.
  std::set<net::NodeId> ring2;
  for (net::NodeId nb : oneHop) {
    if (const auto theirs = host.neighborsOf(nb)) {
      for (net::NodeId two : *theirs) {
        nodes.insert(two);
        addEdge(nb, two);
        if (two != self) ring2.insert(two);
      }
    }
  }
  for (net::NodeId two : ring2) {
    if (const auto theirs = host.neighborsOf(two)) {
      for (net::NodeId three : *theirs) {
        // Only keep edges among already-known nodes: we want the induced
        // subgraph, not an ever-growing frontier.
        if (nodes.contains(three)) addEdge(two, three);
      }
    }
  }

  // Remap sparse global ids to dense local ids, preserving order (the
  // algorithm is id-order sensitive, so the remap must be monotone).
  std::vector<net::NodeId> sorted(nodes.begin(), nodes.end());
  std::map<net::NodeId, net::NodeId> local;
  for (net::NodeId i = 0; i < sorted.size(); ++i) local[sorted[i]] = i;

  std::vector<std::vector<net::NodeId>> adjacency(sorted.size());
  for (const auto& [a, nbs] : edges) {
    for (net::NodeId b : nbs) adjacency[local[a]].push_back(local[b]);
  }
  const std::vector<RoleInfo> roles = assignRoles(adjacency);
  RoleInfo mine = roles[local[self]];
  if (mine.head != net::kInvalidNode &&
      mine.head < sorted.size()) {
    mine.head = sorted[mine.head];  // back to the global id space
  }
  return mine;
}

}  // namespace manet::cluster
