#include "cluster/assignment.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "util/assert.hpp"

namespace manet::cluster {

const char* roleName(Role role) {
  switch (role) {
    case Role::kHead: return "head";
    case Role::kGateway: return "gateway";
    case Role::kMember: return "member";
  }
  return "?";
}

std::vector<RoleInfo> assignRoles(
    const std::vector<std::vector<net::HostId>>& adjacency) {
  const std::size_t n = adjacency.size();
  std::vector<RoleInfo> roles(n);
  std::vector<bool> isHead(n, false);

  // Greedy in ascending id: a node becomes head unless a smaller-id
  // neighbor already did. Heads therefore form the lexicographically-first
  // maximal independent set — exactly what converged lowest-ID clustering
  // produces.
  for (std::size_t i = 0; i < n; ++i) {
    const net::HostId id{static_cast<std::uint32_t>(i)};
    net::HostId lowestHeadNeighbor = net::kInvalidHost;
    for (net::HostId nb : adjacency[i]) {
      MANET_EXPECTS(nb.value() < n);
      if (nb < id && isHead[nb.value()]) {
        lowestHeadNeighbor = std::min(lowestHeadNeighbor, nb);
      }
    }
    if (lowestHeadNeighbor == net::kInvalidHost) {
      isHead[i] = true;
      roles[i] = RoleInfo{Role::kHead, id};
    } else {
      roles[i] = RoleInfo{Role::kMember, lowestHeadNeighbor};
    }
  }

  // Gateways: non-heads adjacent to >= 2 heads, or to a node of a different
  // cluster.
  for (std::size_t i = 0; i < n; ++i) {
    if (roles[i].role == Role::kHead) continue;
    int headNeighbors = 0;
    bool bridges = false;
    for (net::HostId nb : adjacency[i]) {
      if (isHead[nb.value()]) ++headNeighbors;
      if (roles[nb.value()].head != roles[i].head) bridges = true;
    }
    if (headNeighbors >= 2 || bridges) roles[i].role = Role::kGateway;
  }
  return roles;
}

RoleInfo egoRole(const core::HostView& host) {
  // Collect the ego network: self, N_x, and each neighbor's advertised set.
  const net::HostId self = host.id();
  std::set<net::HostId> nodes{self};
  const std::vector<net::HostId> oneHop = host.neighborIds();
  std::map<net::HostId, std::set<net::HostId>> edges;

  auto addEdge = [&edges](net::HostId a, net::HostId b) {
    if (a == b) return;
    edges[a].insert(b);
    edges[b].insert(a);
  };

  for (net::HostId nb : oneHop) {
    nodes.insert(nb);
    addEdge(self, nb);
  }
  // Two-hop knowledge: neighbors' own neighbor sets (piggybacked in HELLOs,
  // or exact in oracle mode). For second-ring nodes also pull their sets if
  // available so gateway/headness of the ring resolves correctly.
  std::set<net::HostId> ring2;
  for (net::HostId nb : oneHop) {
    if (const auto theirs = host.neighborsOf(nb)) {
      for (net::HostId two : *theirs) {
        nodes.insert(two);
        addEdge(nb, two);
        if (two != self) ring2.insert(two);
      }
    }
  }
  for (net::HostId two : ring2) {
    if (const auto theirs = host.neighborsOf(two)) {
      for (net::HostId three : *theirs) {
        // Only keep edges among already-known nodes: we want the induced
        // subgraph, not an ever-growing frontier.
        if (nodes.contains(three)) addEdge(two, three);
      }
    }
  }

  // Remap sparse global ids to dense local ids, preserving order (the
  // algorithm is id-order sensitive, so the remap must be monotone).
  std::vector<net::HostId> sorted(nodes.begin(), nodes.end());
  std::map<net::HostId, net::HostId> local;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    local[sorted[i]] = net::HostId{static_cast<std::uint32_t>(i)};
  }

  std::vector<std::vector<net::HostId>> adjacency(sorted.size());
  for (const auto& [a, nbs] : edges) {
    for (net::HostId b : nbs) {
      adjacency[local[a].value()].push_back(local[b]);
    }
  }
  const std::vector<RoleInfo> roles = assignRoles(adjacency);
  RoleInfo mine = roles[local[self].value()];
  if (mine.head != net::kInvalidHost && mine.head.value() < sorted.size()) {
    mine.head = sorted[mine.head.value()];  // back to the global id space
  }
  return mine;
}

}  // namespace manet::cluster
