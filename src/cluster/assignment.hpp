// Lowest-ID clustering (Baker/Ephremides; the structure behind the
// cluster-based broadcast scheme of Ni et al. [15], which this paper's
// intro reviews alongside the schemes it extends).
//
// Roles:
//  * head    — lowest-id node of its neighborhood once all smaller-id nodes
//              have resolved; heads form an independent set and every node
//              is a head or has a head neighbor.
//  * gateway — a non-head that can bridge clusters: it hears two or more
//              heads, or has a neighbor assigned to a different head.
//  * member  — everyone else; in the cluster-based broadcast scheme a plain
//              member never needs to rebroadcast (its head's transmission
//              covers the whole cluster).
//
// `assignRoles` is the pure converged-state computation on an adjacency
// list. `egoRole` evaluates the same algorithm on one host's 2-hop ego
// network as seen through HostView — what a distributed implementation with
// piggybacked neighbor lists can actually know. In oracle mode the ego
// network is exact; with HELLO-learned tables it degrades gracefully
// (missing knowledge biases toward rebroadcasting, never toward silence of
// an articulation node).
#pragma once

#include <vector>

#include "core/policy.hpp"
#include "net/ids.hpp"

namespace manet::cluster {

enum class Role { kHead, kGateway, kMember };

struct RoleInfo {
  Role role = Role::kMember;
  net::HostId head = net::kInvalidHost;  // own id when role == kHead
};

/// Converged lowest-ID clustering over a dense-id adjacency list
/// (adjacency[i] = neighbor ids of node i; must be symmetric).
std::vector<RoleInfo> assignRoles(
    const std::vector<std::vector<net::HostId>>& adjacency);

/// Role of `host` computed on its 2-hop ego network (neighbors + their
/// advertised neighbor sets), using sparse global ids.
RoleInfo egoRole(const core::HostView& host);

const char* roleName(Role role);

}  // namespace manet::cluster
