#include "cluster/policy.hpp"

#include "ckpt/digest.hpp"
#include "util/assert.hpp"

namespace manet::cluster {
namespace {

class ClusterDecider final : public core::PacketDecider {
 public:
  explicit ClusterDecider(int innerCounter) : innerCounter_(innerCounter) {}

  bool shouldProceed(core::HostView& host) override {
    // The role is evaluated once per packet, at first reception — the
    // distributed clustering is quasi-static on packet timescales.
    role_ = egoRole(host).role;
    if (role_ == Role::kMember) return false;  // covered by the head
    return counter_ < innerCounter_;
  }

  bool onDuplicate(core::HostView&, const core::Reception&) override {
    ++counter_;
    return counter_ < innerCounter_;
  }

  std::uint64_t stateDigest() const override {
    ckpt::Digest d;
    d.add(static_cast<std::int64_t>(counter_));
    d.add(static_cast<std::uint64_t>(role_));
    return d.value();
  }

 private:
  int innerCounter_;
  int counter_ = 1;
  Role role_ = Role::kMember;
};

}  // namespace

ClusterPolicy::ClusterPolicy(int innerCounter) : innerCounter_(innerCounter) {
  MANET_EXPECTS(innerCounter >= 2);
}

std::unique_ptr<core::PacketDecider> ClusterPolicy::makeDecider(
    core::HostView&, const core::Reception&) const {
  return std::make_unique<ClusterDecider>(innerCounter_);
}

std::string ClusterPolicy::name() const {
  return "cluster(C=" + std::to_string(innerCounter_) + ")";
}

}  // namespace manet::cluster
