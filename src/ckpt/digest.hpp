// Streaming FNV-1a 64-bit digest used by the checkpoint subsystem
// (DESIGN.md §14): section payload checksums in the .mckpt container, and
// compressed fingerprints of engine state that is verified-by-replay rather
// than serialized field-by-field (MAC machines, decider state, mobility
// integrators). Deterministic, platform-independent: every add() folds an
// explicit little-endian byte expansion, never raw object memory, so padding
// and endianness cannot leak in.
//
// src/ckpt/ is a sanctioned serialization home (tools/manet_lint.py U3):
// time values are folded as their raw microsecond tick counts.
#pragma once

#include <bit>
#include <cstdint>
#include <string_view>

#include "sim/time.hpp"

namespace manet::ckpt {

class Digest {
 public:
  static constexpr std::uint64_t kOffset = 14695981039346656037ull;
  static constexpr std::uint64_t kPrime = 1099511628211ull;

  void addByte(std::uint8_t b) {
    state_ = (state_ ^ b) * kPrime;
  }
  void addBytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    for (std::size_t i = 0; i < n; ++i) addByte(p[i]);
  }
  void add(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) addByte(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void add(std::int64_t v) { add(static_cast<std::uint64_t>(v)); }
  void add(std::uint32_t v) { add(static_cast<std::uint64_t>(v)); }
  void add(std::int32_t v) { add(static_cast<std::int64_t>(v)); }
  void add(bool v) { addByte(v ? 1 : 0); }
  void add(double v) { add(std::bit_cast<std::uint64_t>(v)); }
  void add(sim::TimePoint t) { add(t.ticks()); }
  void add(sim::Duration d) { add(d.ticks()); }
  void add(std::string_view s) {
    add(static_cast<std::uint64_t>(s.size()));
    addBytes(s.data(), s.size());
  }

  std::uint64_t value() const { return state_; }

 private:
  std::uint64_t state_ = kOffset;
};

/// One-shot digest of a byte range (the section checksums).
inline std::uint64_t fnv1a(const void* data, std::size_t n) {
  Digest d;
  d.addBytes(data, n);
  return d.value();
}

}  // namespace manet::ckpt
