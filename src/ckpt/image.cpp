#include "ckpt/image.hpp"

#include <string>

namespace manet::ckpt {
namespace {

template <typename T, typename Fn>
void encodeVec(Writer& w, const std::vector<T>& v, Fn&& each) {
  w.u64(v.size());
  for (const T& item : v) each(item);
}

std::uint64_t decodeCount(Reader& r, const char* what) {
  const std::uint64_t n = r.u64();
  // Every element is at least one byte; a count beyond the remaining bytes
  // means a corrupt length field, caught here instead of via bad_alloc.
  if (n > r.remaining()) {
    throw Error(std::string("implausible ") + what + " count " +
                std::to_string(n));
  }
  return n;
}

}  // namespace

// --- Rng ---------------------------------------------------------------

void encode(Writer& w, const RngImage& v) {
  for (std::uint64_t word : v.s) w.u64(word);
}

RngImage decodeRng(Reader& r) {
  RngImage v;
  for (std::uint64_t& word : v.s) word = r.u64();
  return v;
}

// --- scheduler ---------------------------------------------------------

void encode(Writer& w, const SchedulerImage& v) {
  w.time(v.now);
  w.u64(v.nextSeq);
  w.u64(v.liveCount);
  w.u32(v.slotCount);
  encodeVec(w, v.pending, [&](const PendingEventImage& e) {
    w.time(e.at);
    w.u64(e.seq);
  });
}

SchedulerImage decodeScheduler(Reader& r) {
  SchedulerImage v;
  v.now = r.time();
  v.nextSeq = r.u64();
  v.liveCount = r.u64();
  v.slotCount = r.u32();
  v.pending.resize(decodeCount(r, "pending event"));
  for (PendingEventImage& e : v.pending) {
    e.at = r.time();
    e.seq = r.u64();
  }
  return v;
}

// --- neighbor table ----------------------------------------------------

void encode(Writer& w, const NeighborTableImage& v) {
  encodeVec(w, v.entries, [&](const NeighborEntryImage& e) {
    w.u32(e.id);
    w.time(e.lastHeard);
    w.duration(e.interval);
    encodeVec(w, e.neighbors, [&](std::uint32_t id) { w.u32(id); });
  });
  encodeVec(w, v.changes, [&](sim::TimePoint t) { w.time(t); });
}

NeighborTableImage decodeNeighborTable(Reader& r) {
  NeighborTableImage v;
  v.entries.resize(decodeCount(r, "neighbor entry"));
  for (NeighborEntryImage& e : v.entries) {
    e.id = r.u32();
    e.lastHeard = r.time();
    e.interval = r.duration();
    e.neighbors.resize(decodeCount(r, "neighbor id"));
    for (std::uint32_t& id : e.neighbors) id = r.u32();
  }
  v.changes.resize(decodeCount(r, "nv change"));
  for (sim::TimePoint& t : v.changes) t = r.time();
  return v;
}

// --- host --------------------------------------------------------------

void encode(Writer& w, const HostImage& v) {
  w.u32(v.id);
  w.boolean(v.up);
  w.u32(v.nextSeq);
  encode(w, v.schemeRng);
  encode(w, v.jitterRng);
  w.u64(v.macDigest);
  w.u64(v.helloDigest);
  w.u64(v.mobilityDigest);
  encode(w, v.table);
  encodeVec(w, v.broadcasts, [&](const BroadcastStateImage& b) {
    w.u32(b.origin);
    w.u32(b.seq);
    w.u8(b.phase);
    w.boolean(b.jitterPending);
    w.u64(b.txId);
    w.boolean(b.hasDecider);
    w.u64(b.deciderDigest);
    w.boolean(b.hasPacket);
    w.u64(b.packetDigest);
  });
}

HostImage decodeHost(Reader& r) {
  HostImage v;
  v.id = r.u32();
  v.up = r.boolean();
  v.nextSeq = r.u32();
  v.schemeRng = decodeRng(r);
  v.jitterRng = decodeRng(r);
  v.macDigest = r.u64();
  v.helloDigest = r.u64();
  v.mobilityDigest = r.u64();
  v.table = decodeNeighborTable(r);
  v.broadcasts.resize(decodeCount(r, "broadcast state"));
  for (BroadcastStateImage& b : v.broadcasts) {
    b.origin = r.u32();
    b.seq = r.u32();
    b.phase = r.u8();
    b.jitterPending = r.boolean();
    b.txId = r.u64();
    b.hasDecider = r.boolean();
    b.deciderDigest = r.u64();
    b.hasPacket = r.boolean();
    b.packetDigest = r.u64();
  }
  return v;
}

// --- channel -----------------------------------------------------------

void encode(Writer& w, const ChannelImage& v) {
  w.u64(v.framesTransmitted);
  w.u64(v.framesDelivered);
  w.u64(v.framesCorrupted);
  w.u64(v.framesLostToFault);
  w.u64(v.framesDroppedHostDown);
  encodeVec(w, v.nodes, [&](const ChannelNodeImage& n) {
    w.boolean(n.attached);
    w.boolean(n.up);
    w.boolean(n.transmitting);
    w.i64(n.busyCount);
    w.u64(n.epoch);
    w.u32(n.activeRxCount);
    w.u64(n.activeRxDigest);
  });
}

ChannelImage decodeChannel(Reader& r) {
  ChannelImage v;
  v.framesTransmitted = r.u64();
  v.framesDelivered = r.u64();
  v.framesCorrupted = r.u64();
  v.framesLostToFault = r.u64();
  v.framesDroppedHostDown = r.u64();
  v.nodes.resize(decodeCount(r, "channel node"));
  for (ChannelNodeImage& n : v.nodes) {
    n.attached = r.boolean();
    n.up = r.boolean();
    n.transmitting = r.boolean();
    n.busyCount = static_cast<std::int32_t>(r.i64());
    n.epoch = r.u64();
    n.activeRxCount = r.u32();
    n.activeRxDigest = r.u64();
  }
  return v;
}

// --- fault -------------------------------------------------------------

void encode(Writer& w, const FaultImage& v) {
  w.u8(v.lossKind);
  encode(w, v.lossRng);
  encodeVec(w, v.links, [&](const GeLinkImage& l) {
    w.u64(l.key);
    w.boolean(l.bad);
    encode(w, l.rng);
  });
}

FaultImage decodeFault(Reader& r) {
  FaultImage v;
  v.lossKind = r.u8();
  v.lossRng = decodeRng(r);
  v.links.resize(decodeCount(r, "GE link"));
  for (GeLinkImage& l : v.links) {
    l.key = r.u64();
    l.bad = r.boolean();
    l.rng = decodeRng(r);
  }
  return v;
}

// --- traffic -----------------------------------------------------------

void encode(Writer& w, const TrafficImage& v) {
  encode(w, v.workloadRng);
  encodeVec(w, v.schedule, [&](const RequestImage& q) {
    w.time(q.at);
    w.u32(q.source);
    w.u32(q.seq);
  });
  encodeVec(w, v.churn, [&](const ChurnEventImage& c) {
    w.u32(c.node);
    w.time(c.at);
    w.boolean(c.up);
  });
  encodeVec(w, v.downSince, [&](sim::TimePoint t) { w.time(t); });
  encodeVec(w, v.downAccum, [&](sim::Duration d) { w.duration(d); });
}

TrafficImage decodeTraffic(Reader& r) {
  TrafficImage v;
  v.workloadRng = decodeRng(r);
  v.schedule.resize(decodeCount(r, "request"));
  for (RequestImage& q : v.schedule) {
    q.at = r.time();
    q.source = r.u32();
    q.seq = r.u32();
  }
  v.churn.resize(decodeCount(r, "churn event"));
  for (ChurnEventImage& c : v.churn) {
    c.node = r.u32();
    c.at = r.time();
    c.up = r.boolean();
  }
  v.downSince.resize(decodeCount(r, "downSince"));
  for (sim::TimePoint& t : v.downSince) t = r.time();
  v.downAccum.resize(decodeCount(r, "downAccum"));
  for (sim::Duration& d : v.downAccum) d = r.duration();
  return v;
}

// --- metrics -----------------------------------------------------------

void encode(Writer& w, const MetricsImage& v) {
  w.u64(v.statsDigest);
  w.u64(v.hellosSent);
  w.u64(v.dataFramesSent);
  w.u64(v.broadcastsStarted);
  w.boolean(v.hasRegistry);
  encodeVec(w, v.counters, [&](std::uint64_t c) { w.u64(c); });
  encodeVec(w, v.gauges, [&](std::uint64_t g) { w.u64(g); });
  w.u64(v.histDigest);
}

MetricsImage decodeMetrics(Reader& r) {
  MetricsImage v;
  v.statsDigest = r.u64();
  v.hellosSent = r.u64();
  v.dataFramesSent = r.u64();
  v.broadcastsStarted = r.u64();
  v.hasRegistry = r.boolean();
  v.counters.resize(decodeCount(r, "counter"));
  for (std::uint64_t& c : v.counters) c = r.u64();
  v.gauges.resize(decodeCount(r, "gauge"));
  for (std::uint64_t& g : v.gauges) g = r.u64();
  v.histDigest = r.u64();
  return v;
}

// --- container ---------------------------------------------------------

namespace {

template <typename Fn>
Section makeSection(const char* tag, Fn&& fill) {
  Writer w;
  fill(w);
  return Section{tag, w.take()};
}

const Section& find(const std::vector<Section>& sections, const char* tag) {
  for (const Section& s : sections) {
    if (s.tag == tag) return s;
  }
  throw Error(std::string("checkpoint is missing section ") + tag);
}

}  // namespace

std::vector<std::uint8_t> encodeWorldImage(const WorldImage& image) {
  std::vector<Section> sections;
  sections.push_back(Section{"CFG0", image.configBlob});
  sections.push_back(makeSection("META", [&](Writer& w) {
    w.time(image.anchor);
    w.time(image.horizon);
  }));
  sections.push_back(
      makeSection("SCHD", [&](Writer& w) { encode(w, image.scheduler); }));
  sections.push_back(
      makeSection("CHAN", [&](Writer& w) { encode(w, image.channel); }));
  sections.push_back(
      makeSection("TRAF", [&](Writer& w) { encode(w, image.traffic); }));
  sections.push_back(
      makeSection("FALT", [&](Writer& w) { encode(w, image.fault); }));
  sections.push_back(
      makeSection("STAT", [&](Writer& w) { encode(w, image.metrics); }));
  sections.push_back(makeSection("HOST", [&](Writer& w) {
    w.u64(image.hosts.size());
    for (const HostImage& h : image.hosts) encode(w, h);
  }));
  return frameContainer(sections);
}

WorldImage decodeWorldImage(const std::vector<std::uint8_t>& bytes) {
  const std::vector<Section> sections = parseContainer(bytes);
  WorldImage image;
  image.configBlob = find(sections, "CFG0").payload;
  {
    Reader r(find(sections, "META").payload);
    image.anchor = r.time();
    image.horizon = r.time();
  }
  {
    Reader r(find(sections, "SCHD").payload);
    image.scheduler = decodeScheduler(r);
  }
  {
    Reader r(find(sections, "CHAN").payload);
    image.channel = decodeChannel(r);
  }
  {
    Reader r(find(sections, "TRAF").payload);
    image.traffic = decodeTraffic(r);
  }
  {
    Reader r(find(sections, "FALT").payload);
    image.fault = decodeFault(r);
  }
  {
    Reader r(find(sections, "STAT").payload);
    image.metrics = decodeMetrics(r);
  }
  {
    Reader r(find(sections, "HOST").payload);
    image.hosts.resize(decodeCount(r, "host"));
    for (HostImage& h : image.hosts) h = decodeHost(r);
  }
  return image;
}

// --- diff --------------------------------------------------------------

std::vector<std::string> diffWorldImages(const WorldImage& a,
                                         const WorldImage& b) {
  std::vector<std::string> out;
  if (a.configBlob != b.configBlob) out.push_back("configBlob differs");
  if (a.anchor != b.anchor) {
    out.push_back("anchor: " + std::to_string(a.anchor.ticks()) + " vs " +
                  std::to_string(b.anchor.ticks()) + " us");
  }
  if (a.horizon != b.horizon) out.push_back("horizon differs");
  if (!(a.scheduler == b.scheduler)) {
    std::string detail = "scheduler state differs";
    if (a.scheduler.nextSeq != b.scheduler.nextSeq) {
      detail += " (nextSeq " + std::to_string(a.scheduler.nextSeq) + " vs " +
                std::to_string(b.scheduler.nextSeq) + ")";
    } else if (a.scheduler.pending != b.scheduler.pending) {
      detail += " (pending events " +
                std::to_string(a.scheduler.pending.size()) + " vs " +
                std::to_string(b.scheduler.pending.size()) + ")";
    }
    out.push_back(detail);
  }
  if (!(a.channel == b.channel)) out.push_back("channel state differs");
  if (!(a.traffic == b.traffic)) out.push_back("traffic state differs");
  if (!(a.fault == b.fault)) out.push_back("fault state differs");
  if (!(a.metrics == b.metrics)) out.push_back("metrics state differs");
  if (a.hosts.size() != b.hosts.size()) {
    out.push_back("host count: " + std::to_string(a.hosts.size()) + " vs " +
                  std::to_string(b.hosts.size()));
  } else {
    for (std::size_t i = 0; i < a.hosts.size(); ++i) {
      const HostImage& ha = a.hosts[i];
      const HostImage& hb = b.hosts[i];
      if (ha == hb) continue;
      std::string what = "host " + std::to_string(i) + ":";
      if (!(ha.schemeRng == hb.schemeRng)) what += " schemeRng";
      if (!(ha.jitterRng == hb.jitterRng)) what += " jitterRng";
      if (ha.macDigest != hb.macDigest) what += " mac";
      if (ha.helloDigest != hb.helloDigest) what += " hello";
      if (ha.mobilityDigest != hb.mobilityDigest) what += " mobility";
      if (!(ha.table == hb.table)) what += " neighborTable";
      if (!(ha.broadcasts == hb.broadcasts)) what += " broadcastStates";
      if (ha.up != hb.up) what += " up";
      if (ha.nextSeq != hb.nextSeq) what += " nextSeq";
      out.push_back(what + " differ(s)");
      if (out.size() >= 32) {
        out.push_back("... further host diffs suppressed");
        break;
      }
    }
  }
  return out;
}

}  // namespace manet::ckpt
