// Binary round-trip of a resolved experiment::ScenarioConfig — the CFG0
// section of a checkpoint. A resumed world is rebuilt from exactly this
// config (fault/traffic env overrides were already folded in when the
// original world resolved it), then replayed to the anchor; serializing the
// config rather than pointing at a config file makes a checkpoint
// self-contained.
#pragma once

#include <cstdint>
#include <vector>

#include "experiment/scenario.hpp"

namespace manet::ckpt {

std::vector<std::uint8_t> encodeConfig(const experiment::ScenarioConfig& c);
experiment::ScenarioConfig decodeConfig(const std::vector<std::uint8_t>& b);

}  // namespace manet::ckpt
