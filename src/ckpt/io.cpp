#include "ckpt/io.hpp"

#include <bit>
#include <cstring>

#include "ckpt/digest.hpp"

namespace manet::ckpt {

void Writer::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

double Reader::f64() { return std::bit_cast<double>(u64()); }

std::vector<std::uint8_t> frameContainer(const std::vector<Section>& sections) {
  Writer w;
  for (std::size_t i = 0; i < kMagicLen; ++i) {
    w.u8(static_cast<std::uint8_t>(kMagic[i]));
  }
  w.u32(kFormatVersion);
  for (const Section& s : sections) {
    if (s.tag.size() != 4) {
      throw Error("section tag must be 4 bytes, got \"" + s.tag + "\"");
    }
    for (char c : s.tag) w.u8(static_cast<std::uint8_t>(c));
    w.u64(s.payload.size());
    for (std::uint8_t b : s.payload) w.u8(b);
    w.u64(fnv1a(s.payload.data(), s.payload.size()));
  }
  return w.take();
}

std::vector<Section> parseContainer(const std::vector<std::uint8_t>& bytes) {
  Reader r(bytes);
  if (bytes.size() < kMagicLen + 4) {
    throw Error("checkpoint too short to hold header (" +
                std::to_string(bytes.size()) + " bytes)");
  }
  for (std::size_t i = 0; i < kMagicLen; ++i) {
    if (r.u8() != static_cast<std::uint8_t>(kMagic[i])) {
      throw Error("bad magic: not a .mckpt checkpoint");
    }
  }
  const std::uint32_t version = r.u32();
  if (version != kFormatVersion) {
    throw Error("checkpoint format version " + std::to_string(version) +
                " does not match expected " + std::to_string(kFormatVersion) +
                "; refusing to guess at the layout");
  }
  std::vector<Section> sections;
  while (!r.atEnd()) {
    Section s;
    s.tag.resize(4);
    for (char& c : s.tag) c = static_cast<char>(r.u8());
    const std::uint64_t len = r.u64();
    if (len > r.remaining()) {
      throw Error("section " + s.tag + " claims " + std::to_string(len) +
                  " bytes but only " + std::to_string(r.remaining()) +
                  " remain (truncated?)");
    }
    s.payload.resize(static_cast<std::size_t>(len));
    for (std::uint8_t& b : s.payload) b = r.u8();
    const std::uint64_t want = r.u64();
    const std::uint64_t got = fnv1a(s.payload.data(), s.payload.size());
    if (want != got) {
      throw Error("section " + s.tag + " digest mismatch (corrupt payload)");
    }
    sections.push_back(std::move(s));
  }
  return sections;
}

}  // namespace manet::ckpt
