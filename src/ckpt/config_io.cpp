#include "ckpt/config_io.hpp"

#include <string>

#include "ckpt/io.hpp"
#include "ckpt/state_access.hpp"
#include "core/threshold.hpp"

namespace manet::ckpt {
namespace {

using experiment::ScenarioConfig;
using experiment::SchemeSpec;

void encodeVec2(Writer& w, geom::Vec2 v) {
  w.f64(v.x);
  w.f64(v.y);
}

geom::Vec2 decodeVec2(Reader& r) {
  geom::Vec2 v;
  v.x = r.f64();
  v.y = r.f64();
  return v;
}

std::uint64_t countGuard(Reader& r, const char* what) {
  const std::uint64_t n = r.u64();
  if (n > r.remaining()) {
    throw Error(std::string("implausible config ") + what + " count " +
                std::to_string(n));
  }
  return n;
}

void encodeScheme(Writer& w, const SchemeSpec& s) {
  w.u8(static_cast<std::uint8_t>(s.type));
  w.f64(s.probability);
  w.i64(s.counterC);
  w.f64(s.distanceD);
  w.f64(s.areaA);
  const std::vector<int>& cv = StateAccess::counterValues(s.counterFn);
  w.u64(cv.size());
  for (int v : cv) w.i64(v);
  double low = 0.0;
  double high = 0.0;
  int n1 = 0;
  int n2 = 0;
  StateAccess::areaFields(s.areaFn, low, high, n1, n2);
  w.f64(low);
  w.f64(high);
  w.i64(n1);
  w.i64(n2);
  w.i64(s.clusterInnerCounter);
  w.str(s.label);
}

SchemeSpec decodeScheme(Reader& r) {
  SchemeSpec s;
  s.type = static_cast<SchemeSpec::Type>(r.u8());
  s.probability = r.f64();
  s.counterC = static_cast<int>(r.i64());
  s.distanceD = r.f64();
  s.areaA = r.f64();
  std::vector<int> cv(countGuard(r, "counter threshold"));
  for (int& v : cv) v = static_cast<int>(r.i64());
  s.counterFn = StateAccess::makeCounterThreshold(std::move(cv));
  const double low = r.f64();
  const double high = r.f64();
  const int n1 = static_cast<int>(r.i64());
  const int n2 = static_cast<int>(r.i64());
  s.areaFn = StateAccess::makeAreaThreshold(low, high, n1, n2);
  s.clusterInnerCounter = static_cast<int>(r.i64());
  s.label = r.str();
  return s;
}

}  // namespace

std::vector<std::uint8_t> encodeConfig(const ScenarioConfig& c) {
  Writer w;
  // topology
  w.i64(c.mapUnits);
  w.f64(c.unitMeters);
  w.i64(c.numHosts);
  w.f64(c.maxSpeedKmh);
  w.u64(c.fixedPositions.size());
  for (geom::Vec2 p : c.fixedPositions) encodeVec2(w, p);
  w.u8(static_cast<std::uint8_t>(c.mobility));
  w.i64(c.groupSize);
  w.f64(c.groupSpanMeters);
  // scheme
  encodeScheme(w, c.scheme);
  w.u8(static_cast<std::uint8_t>(c.neighborSource));
  w.boolean(c.hello.enabled);
  w.duration(c.hello.interval);
  w.boolean(c.hello.dynamic);
  w.duration(c.hello.intervalMin);
  w.duration(c.hello.intervalMax);
  w.f64(c.hello.nvMax);
  w.boolean(c.hello.piggybackNeighbors);
  w.u64(c.hello.baseBytes);
  w.u64(c.hello.perNeighborBytes);
  w.duration(c.hello.startJitter);
  w.f64(c.hello.periodJitterFraction);
  // workload
  w.i64(c.numBroadcasts);
  w.duration(c.interarrivalMax);
  w.u8(static_cast<std::uint8_t>(c.traffic.arrival));
  w.f64(c.traffic.poissonRatePerSecond);
  w.duration(c.traffic.period);
  w.i64(c.traffic.burstLength);
  w.duration(c.traffic.burstGapMax);
  w.duration(c.traffic.burstIdleMean);
  w.u64(c.traffic.replay.size());
  for (const traffic::Request& q : c.traffic.replay) {
    w.time(q.at);
    w.u32(q.source.value());
    w.u32(q.seq);
  }
  w.u8(static_cast<std::uint8_t>(c.traffic.sources));
  w.i64(c.traffic.hotspotCount);
  w.u64(c.traffic.hotspotIds.size());
  for (net::HostId id : c.traffic.hotspotIds) w.u32(id.value());
  w.f64(c.traffic.zoneX0);
  w.f64(c.traffic.zoneY0);
  w.f64(c.traffic.zoneX1);
  w.f64(c.traffic.zoneY1);
  w.duration(c.warmup);
  w.duration(c.drain);
  // protocol details
  w.f64(c.phy.radiusMeters);
  w.f64(c.phy.bitRateBps);
  w.duration(c.phy.plcpPreamble);
  w.duration(c.phy.plcpHeader);
  w.duration(c.phy.carrierSenseDelay);
  w.duration(c.mac.slot);
  w.duration(c.mac.sifs);
  w.duration(c.mac.difs);
  w.i64(c.mac.cwBroadcast);
  w.i64(c.mac.cwMin);
  w.i64(c.mac.cwMax);
  w.i64(c.mac.retryLimit);
  w.u64(c.mac.rtsThresholdBytes);
  w.i64(c.jitterSlots);
  w.boolean(c.collisions);
  w.boolean(c.channelGrid);
  // fault
  w.u8(static_cast<std::uint8_t>(c.fault.loss));
  w.f64(c.fault.per);
  w.f64(c.fault.geLossGood);
  w.f64(c.fault.geLossBad);
  w.f64(c.fault.geGoodToBad);
  w.f64(c.fault.geBadToGood);
  w.boolean(c.fault.churn);
  w.f64(c.fault.churnFraction);
  w.duration(c.fault.meanUpTime);
  w.duration(c.fault.meanDownTime);
  w.u64(c.fault.script.size());
  for (const fault::ChurnEvent& e : c.fault.script) {
    w.u32(e.node.value());
    w.time(e.at);
    w.boolean(e.up);
  }
  w.u64(c.seed);
  return w.take();
}

experiment::ScenarioConfig decodeConfig(const std::vector<std::uint8_t>& b) {
  Reader r(b);
  ScenarioConfig c;
  c.mapUnits = static_cast<int>(r.i64());
  c.unitMeters = r.f64();
  c.numHosts = static_cast<int>(r.i64());
  c.maxSpeedKmh = r.f64();
  c.fixedPositions.resize(countGuard(r, "fixed position"));
  for (geom::Vec2& p : c.fixedPositions) p = decodeVec2(r);
  c.mobility = static_cast<ScenarioConfig::Mobility>(r.u8());
  c.groupSize = static_cast<int>(r.i64());
  c.groupSpanMeters = r.f64();
  c.scheme = decodeScheme(r);
  c.neighborSource = static_cast<experiment::NeighborSource>(r.u8());
  c.hello.enabled = r.boolean();
  c.hello.interval = r.duration();
  c.hello.dynamic = r.boolean();
  c.hello.intervalMin = r.duration();
  c.hello.intervalMax = r.duration();
  c.hello.nvMax = r.f64();
  c.hello.piggybackNeighbors = r.boolean();
  c.hello.baseBytes = static_cast<std::size_t>(r.u64());
  c.hello.perNeighborBytes = static_cast<std::size_t>(r.u64());
  c.hello.startJitter = r.duration();
  c.hello.periodJitterFraction = r.f64();
  c.numBroadcasts = static_cast<int>(r.i64());
  c.interarrivalMax = r.duration();
  c.traffic.arrival = static_cast<traffic::TrafficConfig::Arrival>(r.u8());
  c.traffic.poissonRatePerSecond = r.f64();
  c.traffic.period = r.duration();
  c.traffic.burstLength = static_cast<int>(r.i64());
  c.traffic.burstGapMax = r.duration();
  c.traffic.burstIdleMean = r.duration();
  c.traffic.replay.resize(countGuard(r, "replay request"));
  for (traffic::Request& q : c.traffic.replay) {
    q.at = r.time();
    q.source = net::HostId{r.u32()};
    q.seq = r.u32();
  }
  c.traffic.sources = static_cast<traffic::TrafficConfig::Sources>(r.u8());
  c.traffic.hotspotCount = static_cast<int>(r.i64());
  c.traffic.hotspotIds.resize(countGuard(r, "hotspot id"));
  for (net::HostId& id : c.traffic.hotspotIds) id = net::HostId{r.u32()};
  c.traffic.zoneX0 = r.f64();
  c.traffic.zoneY0 = r.f64();
  c.traffic.zoneX1 = r.f64();
  c.traffic.zoneY1 = r.f64();
  c.warmup = r.duration();
  c.drain = r.duration();
  c.phy.radiusMeters = r.f64();
  c.phy.bitRateBps = r.f64();
  c.phy.plcpPreamble = r.duration();
  c.phy.plcpHeader = r.duration();
  c.phy.carrierSenseDelay = r.duration();
  c.mac.slot = r.duration();
  c.mac.sifs = r.duration();
  c.mac.difs = r.duration();
  c.mac.cwBroadcast = static_cast<int>(r.i64());
  c.mac.cwMin = static_cast<int>(r.i64());
  c.mac.cwMax = static_cast<int>(r.i64());
  c.mac.retryLimit = static_cast<int>(r.i64());
  c.mac.rtsThresholdBytes = static_cast<std::size_t>(r.u64());
  c.jitterSlots = static_cast<int>(r.i64());
  c.collisions = r.boolean();
  c.channelGrid = r.boolean();
  c.fault.loss = static_cast<fault::FaultConfig::Loss>(r.u8());
  c.fault.per = r.f64();
  c.fault.geLossGood = r.f64();
  c.fault.geLossBad = r.f64();
  c.fault.geGoodToBad = r.f64();
  c.fault.geBadToGood = r.f64();
  c.fault.churn = r.boolean();
  c.fault.churnFraction = r.f64();
  c.fault.meanUpTime = r.duration();
  c.fault.meanDownTime = r.duration();
  c.fault.script.resize(countGuard(r, "churn script event"));
  for (fault::ChurnEvent& e : c.fault.script) {
    e.node = net::HostId{r.u32()};
    e.at = r.time();
    e.up = r.boolean();
  }
  c.seed = r.u64();
  if (!r.atEnd()) {
    throw Error("trailing bytes after config payload");
  }
  return c;
}

}  // namespace manet::ckpt
