#include "ckpt/state_access.hpp"

#include <algorithm>
#include <utility>

#include "ckpt/config_io.hpp"
#include "ckpt/digest.hpp"
#include "core/threshold.hpp"
#include "experiment/host.hpp"
#include "experiment/world.hpp"
#include "fault/loss.hpp"
#include "mac/dcf.hpp"
#include "mobility/group.hpp"
#include "mobility/random_roam.hpp"
#include "mobility/waypoint.hpp"
#include "net/hello.hpp"
#include "net/neighbor_table.hpp"
#include "obs/metrics.hpp"
#include "phy/channel.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "stats/metrics.hpp"

namespace manet::ckpt {
namespace {

void addVec2(Digest& d, geom::Vec2 v) {
  d.add(v.x);
  d.add(v.y);
}

/// Full content fingerprint of one packet (identity is irrelevant: two
/// worlds hold distinct shared_ptrs to equal packets).
std::uint64_t packetDigest(const net::Packet& p) {
  Digest d;
  d.add(static_cast<std::uint32_t>(p.type));
  d.add(p.sender.value());
  d.add(p.dest.value());
  d.add(static_cast<std::uint32_t>(p.macSeq));
  d.add(p.navDuration);
  d.add(static_cast<std::uint32_t>(p.hopCount));
  d.add(p.bid.origin.value());
  d.add(p.bid.seq.value());
  d.add(static_cast<std::uint32_t>(p.appKind));
  d.add(p.appTarget.value());
  d.add(static_cast<std::uint64_t>(p.appPath.size()));
  for (net::HostId id : p.appPath) d.add(id.value());
  d.add(static_cast<std::uint64_t>(p.helloNeighbors.size()));
  for (net::HostId id : p.helloNeighbors) d.add(id.value());
  d.add(p.helloInterval);
  return d.value();
}

void addRng(Digest& d, const sim::Rng& rng) {
  for (std::uint64_t word : StateAccess::rng(rng).s) d.add(word);
}

}  // namespace

// --- Rng ---------------------------------------------------------------

RngImage StateAccess::rng(const sim::Rng& rng) {
  RngImage image;
  for (int i = 0; i < 4; ++i) image.s[static_cast<std::size_t>(i)] = rng.s_[i];
  return image;
}

// --- scheduler ---------------------------------------------------------

SchedulerImage StateAccess::scheduler(const sim::Scheduler& scheduler) {
  SchedulerImage image;
  image.now = scheduler.now_;
  image.nextSeq = scheduler.nextSeq_;
  image.liveCount = scheduler.live_;
  image.slotCount = scheduler.slotCount_;
  image.pending.reserve(scheduler.heap_.size());
  for (const auto& entry : scheduler.heap_) {
    image.pending.push_back(PendingEventImage{entry.at, entry.seq});
  }
  std::sort(image.pending.begin(), image.pending.end(),
            [](const PendingEventImage& a, const PendingEventImage& b) {
              return a.at < b.at || (a.at == b.at && a.seq < b.seq);
            });
  return image;
}

// --- neighbor table ----------------------------------------------------

NeighborTableImage StateAccess::neighborTable(const net::NeighborTable& table) {
  NeighborTableImage image;
  image.entries.reserve(table.entries_.size());
  for (const auto& [id, entry] : table.entries_) {
    NeighborEntryImage e;
    e.id = id.value();
    e.lastHeard = entry.lastHeard;
    e.interval = entry.interval;
    e.neighbors.reserve(entry.neighbors.size());
    for (net::HostId n : entry.neighbors) e.neighbors.push_back(n.value());
    image.entries.push_back(std::move(e));
  }
  std::sort(image.entries.begin(), image.entries.end(),
            [](const NeighborEntryImage& a, const NeighborEntryImage& b) {
              return a.id < b.id;
            });
  image.changes.assign(table.changes_.begin(), table.changes_.end());
  return image;
}

// --- MAC ---------------------------------------------------------------

std::uint64_t StateAccess::macDigest(const mac::DcfMac& mac) {
  Digest d;
  d.add(static_cast<std::uint64_t>(mac.queue_.size()));
  for (const auto& p : mac.queue_) {
    d.add(p.id);
    d.add(p.packet ? packetDigest(*p.packet) : std::uint64_t{0});
    d.add(static_cast<std::uint64_t>(p.bytes));
    d.add(p.dest.value());
    d.add(static_cast<std::int32_t>(p.retries));
    d.add(static_cast<std::int32_t>(p.cw));
  }
  d.add(mac.nextTxId_);
  d.add(static_cast<std::uint32_t>(mac.nextMacSeq_));
  d.add(mac.transmitting_);
  d.add(static_cast<std::uint32_t>(mac.onAir_));
  d.add(mac.onAirId_);
  d.add(mac.onAirPacket_ ? packetDigest(*mac.onAirPacket_) : std::uint64_t{0});
  d.add(mac.mediumBusy_);
  d.add(mac.idleSince_);
  d.add(static_cast<std::int32_t>(mac.backoffRemaining_));
  d.add(mac.timer_.pending());
  d.add(mac.hasCurrent_);
  if (mac.hasCurrent_) {
    d.add(mac.current_.id);
    d.add(mac.current_.packet ? packetDigest(*mac.current_.packet) : std::uint64_t{0});
    d.add(static_cast<std::uint64_t>(mac.current_.bytes));
    d.add(mac.current_.dest.value());
    d.add(static_cast<std::int32_t>(mac.current_.retries));
    d.add(static_cast<std::int32_t>(mac.current_.cw));
  }
  d.add(static_cast<std::uint32_t>(mac.exchange_));
  d.add(mac.exchangeTimer_.pending());
  d.add(mac.responsePending_);
  d.add(mac.responseTimer_.pending());
  d.add(mac.navUntil_);
  d.add(mac.navTimer_.pending());
  std::vector<std::uint64_t> seen(mac.seenUnicast_.begin(),
                                  mac.seenUnicast_.end());
  std::sort(seen.begin(), seen.end());
  d.add(static_cast<std::uint64_t>(seen.size()));
  for (std::uint64_t key : seen) d.add(key);
  d.add(mac.framesSent_);
  d.add(mac.framesDroppedCorrupt_);
  d.add(mac.unicastRetries_);
  d.add(mac.unicastDrops_);
  d.add(mac.acksSent_);
  addRng(d, mac.rng_);
  return d.value();
}

// --- HELLO -------------------------------------------------------------

std::uint64_t StateAccess::helloDigest(const net::HelloAgent& hello) {
  Digest d;
  d.add(hello.currentInterval_);
  d.add(hello.timer_.pending());
  d.add(hello.hellosSent_);
  addRng(d, hello.rng_);
  return d.value();
}

// --- mobility ----------------------------------------------------------

std::uint64_t StateAccess::roamDigest(const mobility::RandomRoam& roam) {
  Digest d;
  addRng(d, roam.rng_);
  addVec2(d, roam.position_);
  addVec2(d, roam.velocity_);
  d.add(roam.turnEnd_);
  d.add(roam.lastQuery_);
  return d.value();
}

std::uint64_t StateAccess::mobilityDigest(
    const mobility::MobilityModel& model) {
  Digest d;
  if (const auto* s = dynamic_cast<const mobility::Stationary*>(&model)) {
    d.add(std::uint32_t{1});
    addVec2(d, s->position_);
  } else if (const auto* roam =
                 dynamic_cast<const mobility::RandomRoam*>(&model)) {
    d.add(std::uint32_t{2});
    d.add(roamDigest(*roam));
  } else if (const auto* wp =
                 dynamic_cast<const mobility::RandomWaypoint*>(&model)) {
    d.add(std::uint32_t{3});
    addRng(d, wp->rng_);
    addVec2(d, wp->from_);
    addVec2(d, wp->to_);
    d.add(wp->legStart_);
    d.add(wp->legEnd_);
    d.add(wp->pauseEnd_);
    d.add(wp->lastQuery_);
  } else if (const auto* m =
                 dynamic_cast<const mobility::GroupMember*>(&model)) {
    d.add(std::uint32_t{4});
    // The center is shared by the team; folding it per member just repeats
    // reads, it never advances anything.
    d.add(roamDigest(m->center_->roam_));
    addVec2(d, m->offset_);
    d.add(roamDigest(m->deviation_));
  } else {
    d.add(std::uint32_t{0});  // unknown model: capture presence only
  }
  return d.value();
}

// --- channel -----------------------------------------------------------

ChannelImage StateAccess::channel(const phy::Channel& channel) {
  ChannelImage image;
  image.framesTransmitted = channel.framesTransmitted_;
  image.framesDelivered = channel.framesDelivered_;
  image.framesCorrupted = channel.framesCorrupted_;
  image.framesLostToFault = channel.framesLostToFault_;
  image.framesDroppedHostDown = channel.framesDroppedHostDown_;
  image.nodes.reserve(channel.nodes_.size());
  for (const auto& n : channel.nodes_) {
    ChannelNodeImage ni;
    ni.attached = n.attached;
    ni.up = n.up;
    ni.transmitting = n.transmitting;
    ni.busyCount = n.busyCount;
    ni.epoch = n.epoch;
    ni.activeRxCount = static_cast<std::uint32_t>(n.activeRx.size());
    Digest d;
    for (const auto& rec : n.activeRx) {
      d.add(rec->frame.src.value());
      addVec2(d, rec->frame.srcPos);
      d.add(static_cast<std::uint64_t>(rec->frame.bytes));
      d.add(rec->frame.packet ? packetDigest(*rec->frame.packet) : std::uint64_t{0});
      d.add(rec->frame.txStart);
      d.add(rec->frame.txEnd);
      d.add(static_cast<std::uint32_t>(rec->reason));
      d.add(rec->orphaned);
    }
    ni.activeRxDigest = d.value();
    image.nodes.push_back(ni);
  }
  return image;
}

// --- fault -------------------------------------------------------------

FaultImage StateAccess::fault(const fault::LossModel* model) {
  FaultImage image;
  if (model == nullptr) return image;
  if (const auto* iid = dynamic_cast<const fault::IidLoss*>(model)) {
    image.lossKind = 1;
    image.lossRng = rng(iid->rng_);
  } else if (const auto* ge =
                 dynamic_cast<const fault::GilbertElliottLoss*>(model)) {
    image.lossKind = 2;
    image.lossRng = rng(ge->rng_);
    image.links.reserve(ge->links_.size());
    for (const auto& [key, link] : ge->links_) {
      image.links.push_back(GeLinkImage{key, link.bad, rng(link.rng)});
    }
    std::sort(image.links.begin(), image.links.end(),
              [](const GeLinkImage& a, const GeLinkImage& b) {
                return a.key < b.key;
              });
  }
  return image;
}

// --- metrics -----------------------------------------------------------

MetricsImage StateAccess::metrics(const stats::MetricsCollector& collector,
                                  const obs::Registry* registry) {
  MetricsImage image;
  Digest d;
  d.add(static_cast<std::uint64_t>(collector.numHosts_));
  d.add(static_cast<std::uint64_t>(collector.order_.size()));
  for (const stats::PerBroadcast& pb : collector.order_) {
    d.add(pb.bid.origin.value());
    d.add(pb.bid.seq.value());
    d.add(pb.start);
    d.add(static_cast<std::int32_t>(pb.reachable));
    d.add(static_cast<std::int32_t>(pb.received));
    d.add(static_cast<std::int32_t>(pb.rebroadcast));
    d.add(pb.lastFinal);
    d.add(static_cast<std::int64_t>(pb.hopSum));
    d.add(static_cast<std::int32_t>(pb.maxHops));
  }
  {
    std::vector<std::pair<std::uint64_t, const stats::MetricsCollector::Record*>>
        live;
    live.reserve(collector.live_.size());
    for (const auto& [bid, rec] : collector.live_) {
      const std::uint64_t key =
          (static_cast<std::uint64_t>(bid.origin.value()) << 32) |
          bid.seq.value();
      live.emplace_back(key, &rec);
    }
    std::sort(live.begin(), live.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    d.add(static_cast<std::uint64_t>(live.size()));
    for (const auto& [key, rec] : live) {
      d.add(key);
      d.add(static_cast<std::uint64_t>(rec->index));
      d.add(static_cast<std::uint64_t>(rec->deliveredTo.size()));
      for (bool delivered : rec->deliveredTo) d.add(delivered);
    }
  }
  d.add(collector.hellosSent_);
  d.add(collector.dataFramesSent_);
  image.statsDigest = d.value();
  image.hellosSent = collector.hellosSent_;
  image.dataFramesSent = collector.dataFramesSent_;
  image.broadcastsStarted = collector.order_.size();

  image.hasRegistry = registry != nullptr;
  if (registry != nullptr) {
    const auto counters = static_cast<std::size_t>(obs::Counter::kCount);
    image.counters.reserve(counters);
    for (std::size_t i = 0; i < counters; ++i) {
      image.counters.push_back(
          registry->counter(static_cast<obs::Counter>(i)));
    }
    // The engine.shard.* family counts window-loop phasing, an execution
    // mode rather than simulation state (DESIGN.md §15): a straight run, a
    // split run, and runs at different MANET_SHARDS values legitimately
    // disagree on it while agreeing on everything else. Captured as zero so
    // checkpoint images — and the resume replay verification — stay
    // byte-identical across execution modes.
    for (obs::Counter shard :
         {obs::Counter::kShardWindows, obs::Counter::kShardBarrierEvents,
          obs::Counter::kShardCrossMsgs}) {
      image.counters[static_cast<std::size_t>(shard)] = 0;
    }
    const auto gauges = static_cast<std::size_t>(obs::Gauge::kCount);
    image.gauges.reserve(gauges);
    for (std::size_t i = 0; i < gauges; ++i) {
      image.gauges.push_back(registry->gauge(static_cast<obs::Gauge>(i)));
    }
    Digest hd;
    const auto hists = static_cast<std::size_t>(obs::Hist::kCount);
    for (std::size_t i = 0; i < hists; ++i) {
      const stats::Histogram& h =
          registry->histogram(static_cast<obs::Hist>(i));
      hd.add(h.count());
      hd.add(h.sum());
      hd.add(h.min());
      hd.add(h.max());
      for (std::size_t b = 0; b < stats::Histogram::kBuckets; ++b) {
        hd.add(h.bucketCount(b));
      }
    }
    image.histDigest = hd.value();
  }
  return image;
}

// --- host --------------------------------------------------------------

HostImage StateAccess::host(const experiment::Host& host) {
  HostImage image;
  image.id = host.id_.value();
  image.up = host.up_;
  image.nextSeq = host.nextSeq_.value();
  image.schemeRng = rng(host.schemeRng_);
  image.jitterRng = rng(host.jitterRng_);
  image.macDigest = macDigest(*host.mac_);
  image.helloDigest = helloDigest(*host.hello_);
  image.mobilityDigest = mobilityDigest(*host.mobility_);
  image.table = neighborTable(host.table_);
  image.broadcasts.reserve(host.states_.size());
  for (const auto& [bid, state] : host.states_) {
    BroadcastStateImage b;
    b.origin = bid.origin.value();
    b.seq = bid.seq.value();
    b.phase = static_cast<std::uint8_t>(state.phase);
    b.jitterPending = state.jitterTimer.pending();
    b.txId = state.txId;
    b.hasDecider = state.decider != nullptr;
    b.deciderDigest = state.decider ? state.decider->stateDigest() : 0;
    b.hasPacket = state.packet != nullptr;
    b.packetDigest = state.packet ? packetDigest(*state.packet) : 0;
    image.broadcasts.push_back(b);
  }
  std::sort(image.broadcasts.begin(), image.broadcasts.end(),
            [](const BroadcastStateImage& a, const BroadcastStateImage& b) {
              return a.origin < b.origin ||
                     (a.origin == b.origin && a.seq < b.seq);
            });
  return image;
}

// --- world -------------------------------------------------------------

WorldImage StateAccess::captureWorld(const experiment::World& world) {
  WorldImage image;
  image.configBlob = encodeConfig(world.config_);
  image.anchor = world.scheduler_.now();
  image.horizon = world.horizon_;
  image.scheduler = scheduler(world.scheduler_);
  image.channel = channel(world.channel_);
  image.traffic.workloadRng = rng(world.workloadRng_);
  image.traffic.schedule.reserve(world.workloadSchedule_.size());
  for (const traffic::Request& q : world.workloadSchedule_) {
    image.traffic.schedule.push_back(
        RequestImage{q.at, q.source.value(), q.seq});
  }
  image.traffic.churn.reserve(world.churnTimeline_.size());
  for (const fault::ChurnEvent& e : world.churnTimeline_) {
    image.traffic.churn.push_back(
        ChurnEventImage{e.node.value(), e.at, e.up});
  }
  image.traffic.downSince = world.downSince_;
  image.traffic.downAccum = world.downAccum_;
  image.fault = fault(world.lossModel_.get());
  image.metrics = metrics(world.metrics_, obs::current());
  image.hosts.reserve(world.hosts_.size());
  for (const auto& h : world.hosts_) image.hosts.push_back(host(*h));
  return image;
}

// --- thresholds --------------------------------------------------------

const std::vector<int>& StateAccess::counterValues(
    const core::CounterThreshold& fn) {
  return fn.values_;
}

core::CounterThreshold StateAccess::makeCounterThreshold(
    std::vector<int> values) {
  return core::CounterThreshold(std::move(values));
}

void StateAccess::areaFields(const core::AreaThreshold& fn, double& low,
                             double& high, int& n1, int& n2) {
  low = fn.low_;
  high = fn.high_;
  n1 = fn.n1_;
  n2 = fn.n2_;
}

core::AreaThreshold StateAccess::makeAreaThreshold(double low, double high,
                                                   int n1, int n2) {
  return core::AreaThreshold(low, high, n1, n2);
}

}  // namespace manet::ckpt
