// The checkpoint subsystem's single privileged window into engine state.
//
// Every engine class that carries run state friends this one struct (and
// nothing else), so all private-member reads used for serialization are
// grepable in one translation unit. Capture methods read raw fields ONLY —
// they never call lazily-mutating public queries (MobilityModel::positionAt
// advances integrators and draws RNG at turn boundaries, NeighborTable
// queries purge, Channel queries rebuild the grid). A capture therefore
// perturbs nothing: the captured world's future is byte-identical to a world
// that was never captured, which is what the resume-equivalence CI gate
// checks end to end.
#pragma once

#include <cstdint>
#include <vector>

#include "ckpt/image.hpp"

namespace manet::core {
class CounterThreshold;
class AreaThreshold;
}  // namespace manet::core
namespace manet::experiment {
class Host;
class World;
}  // namespace manet::experiment
namespace manet::fault {
class LossModel;
}
namespace manet::mac {
class DcfMac;
}
namespace manet::mobility {
class MobilityModel;
class RandomRoam;
}  // namespace manet::mobility
namespace manet::net {
class HelloAgent;
class NeighborTable;
}  // namespace manet::net
namespace manet::obs {
class Registry;
}
namespace manet::phy {
class Channel;
}
namespace manet::sim {
class Rng;
class Scheduler;
}  // namespace manet::sim
namespace manet::stats {
class MetricsCollector;
}

namespace manet::ckpt {

struct StateAccess {
  // --- capture (side-effect-free raw reads) ---
  static RngImage rng(const sim::Rng& rng);
  static SchedulerImage scheduler(const sim::Scheduler& scheduler);
  static NeighborTableImage neighborTable(const net::NeighborTable& table);
  static std::uint64_t macDigest(const mac::DcfMac& mac);
  static std::uint64_t helloDigest(const net::HelloAgent& hello);
  static std::uint64_t mobilityDigest(const mobility::MobilityModel& model);
  /// Roam-integrator fold shared by RandomRoam and the group model's center
  /// and deviation chains.
  static std::uint64_t roamDigest(const mobility::RandomRoam& roam);
  static ChannelImage channel(const phy::Channel& channel);
  static FaultImage fault(const fault::LossModel* model);
  static MetricsImage metrics(const stats::MetricsCollector& collector,
                              const obs::Registry* registry);
  static HostImage host(const experiment::Host& host);
  /// Snapshot of the whole world at its current scheduler time.
  static WorldImage captureWorld(const experiment::World& world);

  // --- threshold raw access (config serialization; ctors are private) ---
  static const std::vector<int>& counterValues(
      const core::CounterThreshold& fn);
  static core::CounterThreshold makeCounterThreshold(std::vector<int> values);
  static void areaFields(const core::AreaThreshold& fn, double& low,
                         double& high, int& n1, int& n2);
  static core::AreaThreshold makeAreaThreshold(double low, double high, int n1,
                                               int n2);
};

}  // namespace manet::ckpt
