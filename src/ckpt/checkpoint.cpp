#include "ckpt/checkpoint.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>

#include "ckpt/config_io.hpp"
#include "ckpt/digest.hpp"
#include "ckpt/state_access.hpp"
#include "experiment/runner.hpp"
#include "experiment/world.hpp"
#include "obs/metrics.hpp"
#include "util/env.hpp"

namespace manet::ckpt {

std::vector<std::uint8_t> capture(const experiment::World& world) {
  return encodeWorldImage(StateAccess::captureWorld(world));
}

Resumed resume(const std::vector<std::uint8_t>& blob) {
  WorldImage stored = decodeWorldImage(blob);
  const experiment::ScenarioConfig config = decodeConfig(stored.configBlob);

  // Replay must run in the same metrics-collection mode the capture saw, or
  // the MetricsImage oracle can't match. A standalone resume (no registry on
  // this thread) of a collection-on checkpoint gets a private registry for
  // the replay window.
  std::unique_ptr<obs::Registry> privateRegistry;
  if (stored.metrics.hasRegistry && obs::current() == nullptr) {
    privateRegistry = std::make_unique<obs::Registry>();
  }
  obs::ScopedRegistry scope(privateRegistry != nullptr ? privateRegistry.get()
                                                       : obs::current());

  auto world = std::make_unique<experiment::World>(config);
  world->beginRun();
  world->continueUntil(stored.anchor);
  const WorldImage replayed = StateAccess::captureWorld(*world);
  const std::vector<std::string> diffs = diffWorldImages(stored, replayed);
  if (!diffs.empty()) {
    std::string msg =
        "resume verification failed: replay to the anchor diverged from the "
        "checkpoint (different binary, env overrides, or a determinism bug):";
    for (const std::string& d : diffs) {
      msg += "\n  ";
      msg += d;
    }
    throw Error(msg);
  }
  Resumed out;
  out.world = std::move(world);
  out.image = std::move(stored);
  return out;
}

void writeBlobFile(const std::string& path,
                   const std::vector<std::uint8_t>& bytes) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) throw Error("cannot open checkpoint file for writing: " + path);
  file.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
  if (!file) throw Error("short write to checkpoint file: " + path);
}

std::vector<std::uint8_t> readBlobFile(const std::string& path) {
  std::ifstream file(path, std::ios::binary | std::ios::ate);
  if (!file) throw Error("cannot open checkpoint file: " + path);
  const std::streamsize size = file.tellg();
  file.seekg(0);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  file.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!file) throw Error("short read from checkpoint file: " + path);
  return bytes;
}

AnchorSpec parseAnchorSpec(const std::string& text) {
  if (text.empty()) throw Error("empty checkpoint anchor spec");
  AnchorSpec spec;
  try {
    std::size_t used = 0;
    if (text.back() == '%') {
      spec.fraction = std::stod(text.substr(0, text.size() - 1), &used) /
                      100.0;
      if (used != text.size() - 1) throw Error("");
      if (spec.fraction < 0.0 || spec.fraction > 1.0) {
        throw Error("checkpoint anchor percentage out of [0, 100]: " + text);
      }
    } else {
      spec.seconds = std::stod(text, &used);
      if (used != text.size()) throw Error("");
      if (spec.seconds < 0.0) {
        throw Error("checkpoint anchor seconds must be >= 0: " + text);
      }
    }
  } catch (const Error&) {
    throw;
  } catch (const std::exception&) {
    throw Error("malformed checkpoint anchor (want seconds or N%): " + text);
  }
  return spec;
}

namespace {

std::string blobFileName(const std::string& tag,
                         const std::vector<std::uint8_t>& blob) {
  const std::uint64_t digest = fnv1a(blob.data(), blob.size());
  char hex[17];
  std::snprintf(hex, sizeof hex, "%016llx",
                static_cast<unsigned long long>(digest));
  return "ck_" + tag + "_" + hex + ".mckpt";
}

}  // namespace

std::unique_ptr<experiment::World> runCheckpointCycle(
    const experiment::ScenarioConfig& config, const AnchorSpec& anchor,
    const std::string& blobDir, const std::string& tag) {
  std::vector<std::uint8_t> blob;
  {
    // Phase A (prefix): run to the anchor and capture. Its metric events go
    // to a scratch registry — the resumed world replays the same prefix
    // under the real one, so counting both would double every prefix event.
    obs::Registry scratch;
    obs::ScopedRegistry scope(obs::current() != nullptr ? &scratch : nullptr);
    experiment::World prefix(config);
    prefix.beginRun();
    sim::TimePoint at = prefix.horizonTime();
    if (anchor.seconds >= 0.0) {
      at = sim::kTimeZero + sim::fromSeconds(anchor.seconds);
    } else if (anchor.fraction >= 0.0) {
      at = sim::kTimeZero +
           sim::scaleRound(prefix.horizonTime().sinceStart(), anchor.fraction);
    }
    if (at > prefix.horizonTime()) at = prefix.horizonTime();
    if (at < sim::kTimeZero) at = sim::kTimeZero;
    prefix.continueUntil(at);
    blob = capture(prefix);
  }
  // The encode+decode+replay+verify path runs even without a blob dir; the
  // file write is only for artifacts (CI uploads them when the gate fails).
  if (!blobDir.empty()) {
    std::filesystem::create_directories(blobDir);
    writeBlobFile((std::filesystem::path(blobDir) / blobFileName(tag, blob))
                      .string(),
                  blob);
  }
  Resumed resumed = resume(blob);
  resumed.world->runToEnd();
  return std::move(resumed.world);
}

experiment::SchemeSpec parseSchemeOverride(const std::string& text) {
  using experiment::SchemeSpec;
  if (text == "flooding") return SchemeSpec::flooding();
  if (text == "nc") return SchemeSpec::neighborCoverage();
  if (text == "ac") return SchemeSpec::adaptiveCounter();
  if (text == "al") return SchemeSpec::adaptiveLocation();
  if (text == "cluster") return SchemeSpec::clusterBased();
  if (text.size() > 2 && text[1] == '=') {
    try {
      const std::string value = text.substr(2);
      switch (text[0]) {
        case 'p':
          return SchemeSpec::probabilistic(std::stod(value));
        case 'c':
          return SchemeSpec::counter(std::stoi(value));
        case 'd':
          return SchemeSpec::distance(std::stod(value));
        case 'a':
          return SchemeSpec::location(std::stod(value));
        default:
          break;
      }
    } catch (const std::exception&) {
      // fall through to the unified error below
    }
  }
  throw Error(
      "bad MANET_CKPT_SCHEME '" + text +
      "' (want flooding|nc|ac|al|cluster|p=<prob>|c=<n>|d=<m>|a=<frac>)");
}

bool configureFromCli(int argc, char** argv, const std::string& benchName) {
  std::string resumePath;
  std::string anchorText;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--resume-from" && i + 1 < argc) {
      resumePath = argv[++i];
    } else if (arg == "--checkpoint-at" && i + 1 < argc) {
      anchorText = argv[++i];
    }
  }
  if (resumePath.empty()) {
    if (auto v = util::envString("MANET_CKPT_RESUME")) resumePath = *v;
  }
  if (anchorText.empty()) {
    if (auto v = util::envString("MANET_CKPT_AT")) anchorText = *v;
  }

  if (!resumePath.empty()) {
    Resumed resumed = resume(readBlobFile(resumePath));
    experiment::World& world = *resumed.world;
    std::printf("resume %s at t=%.3fs of %.3fs\n", resumePath.c_str(),
                sim::toSeconds(resumed.image.anchor),
                sim::toSeconds(resumed.image.horizon));
    if (auto spec = util::envString("MANET_CKPT_SCHEME")) {
      const experiment::SchemeSpec scheme = parseSchemeOverride(*spec);
      world.overrideScheme(scheme);
      std::printf("tail scheme override: %s\n", scheme.name().c_str());
    }
    world.runToEnd();
    const stats::RunSummary summary = world.metrics().summarize();
    std::printf("scheme=%s broadcasts=%llu RE=%.4f SRB=%.4f latency=%.6fs\n",
                world.config().scheme.name().c_str(),
                static_cast<unsigned long long>(summary.broadcasts),
                summary.meanRe, summary.meanSrb, summary.meanLatencySeconds);
    std::printf(
        "framesTransmitted=%llu framesDelivered=%llu framesCorrupted=%llu\n",
        static_cast<unsigned long long>(world.channel().framesTransmitted()),
        static_cast<unsigned long long>(world.channel().framesDelivered()),
        static_cast<unsigned long long>(world.channel().framesCorrupted()));
    std::exit(0);
  }

  if (anchorText.empty()) return false;
  const AnchorSpec anchor = parseAnchorSpec(anchorText);
  std::string blobDir;
  if (auto v = util::envString("MANET_CKPT_DIR")) blobDir = *v;
  experiment::setWorldRunOverride(
      [anchor, blobDir,
       benchName](const experiment::ScenarioConfig& scenario) {
        return runCheckpointCycle(scenario, anchor, blobDir, benchName);
      });
  return true;
}

}  // namespace manet::ckpt

namespace manet::experiment {

void World::checkpoint(const std::string& path) const {
  ckpt::writeBlobFile(path, ckpt::capture(*this));
}

std::unique_ptr<World> World::resume(const std::string& path) {
  return ckpt::resume(ckpt::readBlobFile(path)).world;
}

}  // namespace manet::experiment
