// Little-endian binary writer/reader for the .mckpt checkpoint container
// (DESIGN.md §14). Fixed-width fields only, no varints: the format must be
// walkable by tools/ckpt_inspect.py with nothing but the tag table.
//
// Container layout:
//   magic   "MCKPT1\n"            (7 bytes)
//   version u32                   (kFormatVersion; mismatch rejects the file)
//   sections, each:
//     tag     4 ASCII bytes       ("CFG0", "SCHD", "HOST", ...)
//     length  u64                 (payload bytes)
//     payload length bytes
//     digest  u64                 (FNV-1a 64 of the payload; bit flips and
//                                  truncation are detected per section)
// until end of file. Section order is fixed by the encoder, but the reader
// indexes by tag so future versions may append sections.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace manet::ckpt {

/// Checkpoint format version. Bump on any layout change; resume refuses a
/// mismatched file rather than guessing (DESIGN.md §14 versioning policy).
inline constexpr std::uint32_t kFormatVersion = 1;

/// Leading magic; the trailing newline catches text-mode mangling early.
inline constexpr char kMagic[] = "MCKPT1\n";
inline constexpr std::size_t kMagicLen = 7;

/// Any malformed/mismatched/corrupt checkpoint surfaces as this.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Appends little-endian fields to a growing byte buffer.
class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { le(v, 2); }
  void u32(std::uint32_t v) { le(v, 4); }
  void u64(std::uint64_t v) { le(v, 8); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);
  void boolean(bool v) { u8(v ? 1 : 0); }
  void time(sim::TimePoint t) { i64(t.ticks()); }
  void duration(sim::Duration d) { i64(d.ticks()); }
  void str(const std::string& s) {
    u64(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  void le(std::uint64_t v, int n) {
    for (int i = 0; i < n; ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  std::vector<std::uint8_t> buf_;
};

/// Reads little-endian fields; throws Error on truncation.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit Reader(const std::vector<std::uint8_t>& buf)
      : Reader(buf.data(), buf.size()) {}

  std::uint8_t u8() { return need(1), data_[pos_++]; }
  std::uint16_t u16() { return static_cast<std::uint16_t>(le(2)); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(le(4)); }
  std::uint64_t u64() { return le(8); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64();
  bool boolean() { return u8() != 0; }
  sim::TimePoint time() { return sim::TimePoint{i64()}; }
  sim::Duration duration() { return sim::Duration{i64()}; }
  std::string str() {
    const std::uint64_t n = u64();
    need(n);
    std::string s(reinterpret_cast<const char*>(data_ + pos_),
                  static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return s;
  }

  std::size_t remaining() const { return size_ - pos_; }
  bool atEnd() const { return pos_ == size_; }

 private:
  void need(std::uint64_t n) {
    if (n > size_ - pos_) {
      throw Error("checkpoint truncated: need " + std::to_string(n) +
                  " bytes at offset " + std::to_string(pos_) + ", have " +
                  std::to_string(size_ - pos_));
    }
  }
  std::uint64_t le(int n) {
    need(static_cast<std::uint64_t>(n));
    std::uint64_t v = 0;
    for (int i = 0; i < n; ++i) {
      v |= static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos_ += static_cast<std::size_t>(n);
    return v;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// One decoded container section.
struct Section {
  std::string tag;  // 4 ASCII characters
  std::vector<std::uint8_t> payload;
};

/// Frames `sections` into a complete container (magic + version + sections
/// with payload digests).
std::vector<std::uint8_t> frameContainer(const std::vector<Section>& sections);

/// Parses and verifies a container: magic, version, per-section digests.
/// Throws Error on any mismatch, truncation, or bit flip.
std::vector<Section> parseContainer(const std::vector<std::uint8_t>& bytes);

}  // namespace manet::ckpt
