// Checkpoint/resume orchestration (DESIGN.md §14).
//
// A checkpoint is replay-anchored: the blob carries the resolved
// ScenarioConfig, the anchor TimePoint, and a field-exact WorldImage of
// every subsystem. Resume rebuilds the world from the config, deterministically
// replays it to the anchor (the engine is byte-deterministic from a seed, so
// replay IS restoration), re-captures, and verifies the replayed image equals
// the stored one field-for-field before the tail runs. Any divergence — a
// changed binary, a different env override, a nondeterminism bug — aborts
// resume with a per-subsystem diff instead of silently producing a near-miss
// run. Checkpoints are taken at event boundaries only (the quiescent-boundary
// rule): continueUntil() stops between events, never inside one.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ckpt/image.hpp"
#include "experiment/scenario.hpp"

namespace manet::experiment {
class World;
}

namespace manet::ckpt {

/// Captures a complete checkpoint blob of `world` at its current scheduler
/// time. The capture only reads raw state — it never perturbs the world's
/// future draws.
std::vector<std::uint8_t> capture(const experiment::World& world);

/// A world rebuilt from a checkpoint and verified at the anchor.
struct Resumed {
  std::unique_ptr<experiment::World> world;
  WorldImage image;  // the blob's image (== the replayed one)
};

/// Rebuild + replay-to-anchor + verify. Throws Error (with the subsystem
/// diff list in the message) when the replayed state does not match the
/// checkpoint exactly.
Resumed resume(const std::vector<std::uint8_t>& blob);

/// Raw blob file I/O (binary, whole-file). Throws Error on I/O failure.
void writeBlobFile(const std::string& path,
                   const std::vector<std::uint8_t>& bytes);
std::vector<std::uint8_t> readBlobFile(const std::string& path);

/// Where to anchor a mid-run checkpoint: an absolute simulated second, or a
/// fraction of the run's horizon (resolved once the horizon is known).
/// Exactly one of the two is >= 0 when active.
struct AnchorSpec {
  double seconds = -1.0;
  double fraction = -1.0;
  bool active() const { return seconds >= 0.0 || fraction >= 0.0; }
};

/// Parses "12.5" (seconds) or "50%" (fraction of horizon).
/// Throws Error on malformed input.
AnchorSpec parseAnchorSpec(const std::string& text);

/// The checkpoint-equivalence driver behind --checkpoint-at: runs `config`
/// to the anchor, captures, round-trips the blob through encode+decode
/// (always — even without a blob dir, the serialization path is exercised),
/// optionally writes the blob under `blobDir`, then resumes from the blob
/// and runs the tail. The returned world's final state is byte-identical to
/// a straight-through run of the same config.
std::unique_ptr<experiment::World> runCheckpointCycle(
    const experiment::ScenarioConfig& config, const AnchorSpec& anchor,
    const std::string& blobDir, const std::string& tag);

/// Parses a MANET_CKPT_SCHEME override spec:
///   flooding | nc | ac | al | cluster | p=<prob> | c=<counter> |
///   d=<meters> | a=<fraction>
/// Throws Error on anything else.
experiment::SchemeSpec parseSchemeOverride(const std::string& text);

/// Bench wiring, called by bench::Report before any sweep runs:
///  * `--resume-from <file>` (or MANET_CKPT_RESUME): load the checkpoint,
///    resume+verify, optionally swap the scheme (MANET_CKPT_SCHEME), run the
///    tail, print a one-run summary, and exit(0) — the bench's sweeps never
///    run.
///  * `--checkpoint-at <seconds|N%>` (or MANET_CKPT_AT): install a runner
///    override so every scenario the bench runs goes through
///    runCheckpointCycle at that anchor. MANET_CKPT_DIR names a directory
///    for blob files (default: in-memory only).
/// Returns true when a checkpoint mode was activated.
bool configureFromCli(int argc, char** argv, const std::string& benchName);

}  // namespace manet::ckpt
