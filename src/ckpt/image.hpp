// Field-exact state images of every World subsystem (DESIGN.md §14).
//
// An image is a plain value snapshot of one subsystem's complete state at a
// checkpoint anchor: RNG words, scheduler (at, seq) keys, neighbor entries,
// per-broadcast protocol phases, channel node flags, fault chains, traffic
// cursor, metrics. Images have defaulted equality, serialize through the
// ckpt::Writer/Reader primitives, and back the resume-verification oracle:
// the resumed world re-captures at the anchor and the two WorldImages must
// compare equal field-for-field before the tail is allowed to run.
//
// State the engine cannot re-register from data alone (InlineFn closures,
// shared_ptr identity of in-flight frames, decider internals) is captured as
// an FNV-1a digest instead of raw fields — still exact for equality
// checking, just not independently restorable. Resume therefore rebuilds by
// deterministic replay to the anchor and uses the image as the oracle, per
// the quiescent-boundary rule of DESIGN.md §14.
//
// Unordered containers are captured collect-then-sort by stable keys, so an
// image never depends on hash iteration order.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/io.hpp"
#include "sim/time.hpp"

namespace manet::ckpt {

/// xoshiro256++ stream position: the four raw state words.
struct RngImage {
  std::array<std::uint64_t, 4> s{};
  friend bool operator==(const RngImage&, const RngImage&) = default;
};

/// One queued scheduler event. The callback itself is an InlineFn closure —
/// not serializable — so the image carries the total-order key the heap
/// sorts by; replay re-registers the closures.
struct PendingEventImage {
  sim::TimePoint at{};
  std::uint64_t seq = 0;
  friend bool operator==(const PendingEventImage&,
                         const PendingEventImage&) = default;
};

struct SchedulerImage {
  sim::TimePoint now{};
  std::uint64_t nextSeq = 0;
  std::uint64_t liveCount = 0;
  std::uint32_t slotCount = 0;  // slots ever carved (pool high-water)
  std::vector<PendingEventImage> pending;  // sorted by (at, seq)
  friend bool operator==(const SchedulerImage&,
                         const SchedulerImage&) = default;
};

struct NeighborEntryImage {
  std::uint32_t id = 0;
  sim::TimePoint lastHeard{};
  sim::Duration interval{};
  std::vector<std::uint32_t> neighbors;  // advertised set, wire order
  friend bool operator==(const NeighborEntryImage&,
                         const NeighborEntryImage&) = default;
};

struct NeighborTableImage {
  std::vector<NeighborEntryImage> entries;  // sorted by id
  std::vector<sim::TimePoint> changes;      // nv window, ascending
  friend bool operator==(const NeighborTableImage&,
                         const NeighborTableImage&) = default;
};

/// One (host, broadcast) duplicate-suppression state machine.
struct BroadcastStateImage {
  std::uint32_t origin = 0;
  std::uint32_t seq = 0;
  std::uint8_t phase = 0;  // Host::PacketPhase
  bool jitterPending = false;
  std::uint64_t txId = 0;
  bool hasDecider = false;
  std::uint64_t deciderDigest = 0;  // PacketDecider::stateDigest()
  bool hasPacket = false;
  std::uint64_t packetDigest = 0;
  friend bool operator==(const BroadcastStateImage&,
                         const BroadcastStateImage&) = default;
};

struct HostImage {
  std::uint32_t id = 0;
  bool up = true;
  std::uint32_t nextSeq = 0;
  RngImage schemeRng;
  RngImage jitterRng;
  std::uint64_t macDigest = 0;       // full DCF machine, queue, counters
  std::uint64_t helloDigest = 0;     // interval, timer, counters, rng
  std::uint64_t mobilityDigest = 0;  // model integrator state + rng
  NeighborTableImage table;
  std::vector<BroadcastStateImage> broadcasts;  // sorted by (origin, seq)
  friend bool operator==(const HostImage&, const HostImage&) = default;
};

struct ChannelNodeImage {
  bool attached = false;
  bool up = true;
  bool transmitting = false;
  std::int32_t busyCount = 0;
  std::uint64_t epoch = 0;
  std::uint32_t activeRxCount = 0;
  std::uint64_t activeRxDigest = 0;  // in-flight frames incl. drop verdicts
  friend bool operator==(const ChannelNodeImage&,
                         const ChannelNodeImage&) = default;
};

struct ChannelImage {
  std::uint64_t framesTransmitted = 0;
  std::uint64_t framesDelivered = 0;
  std::uint64_t framesCorrupted = 0;
  std::uint64_t framesLostToFault = 0;
  std::uint64_t framesDroppedHostDown = 0;
  std::vector<ChannelNodeImage> nodes;  // indexed by node id
  friend bool operator==(const ChannelImage&, const ChannelImage&) = default;
};

/// One Gilbert–Elliott per-link Markov chain.
struct GeLinkImage {
  std::uint64_t key = 0;  // (src << 32) | dst
  bool bad = false;
  RngImage rng;
  friend bool operator==(const GeLinkImage&, const GeLinkImage&) = default;
};

struct FaultImage {
  std::uint8_t lossKind = 0;  // 0 = none, 1 = iid, 2 = gilbert-elliott
  RngImage lossRng;           // model stream (parent stream for GE)
  std::vector<GeLinkImage> links;  // sorted by key
  friend bool operator==(const FaultImage&, const FaultImage&) = default;
};

struct ChurnEventImage {
  std::uint32_t node = 0;
  sim::TimePoint at{};
  bool up = false;
  friend bool operator==(const ChurnEventImage&,
                         const ChurnEventImage&) = default;
};

struct RequestImage {
  sim::TimePoint at{};
  std::uint32_t source = 0;
  std::uint32_t seq = 0;
  friend bool operator==(const RequestImage&, const RequestImage&) = default;
};

/// Traffic generator cursor plus the world's churn/downtime ledgers.
struct TrafficImage {
  RngImage workloadRng;
  std::vector<RequestImage> schedule;   // full resolved request schedule
  std::vector<ChurnEventImage> churn;   // resolved churn timeline
  std::vector<sim::TimePoint> downSince;
  std::vector<sim::Duration> downAccum;
  friend bool operator==(const TrafficImage&, const TrafficImage&) = default;
};

struct MetricsImage {
  std::uint64_t statsDigest = 0;  // stats::MetricsCollector, full state
  std::uint64_t hellosSent = 0;
  std::uint64_t dataFramesSent = 0;
  std::uint64_t broadcastsStarted = 0;
  bool hasRegistry = false;  // obs registry installed at capture time
  std::vector<std::uint64_t> counters;  // obs::Counter, enum order
  std::vector<std::uint64_t> gauges;    // obs::Gauge, enum order
  std::uint64_t histDigest = 0;         // all obs histograms, enum order
  friend bool operator==(const MetricsImage&, const MetricsImage&) = default;
};

/// The complete checkpoint payload.
struct WorldImage {
  std::vector<std::uint8_t> configBlob;  // serialized resolved ScenarioConfig
  sim::TimePoint anchor{};               // scheduler now() at capture
  sim::TimePoint horizon{};
  SchedulerImage scheduler;
  ChannelImage channel;
  TrafficImage traffic;
  FaultImage fault;
  MetricsImage metrics;
  std::vector<HostImage> hosts;
  friend bool operator==(const WorldImage&, const WorldImage&) = default;
};

// --- per-subsystem serialization (exercised directly by tests/test_ckpt) ---

void encode(Writer& w, const RngImage& v);
RngImage decodeRng(Reader& r);

void encode(Writer& w, const SchedulerImage& v);
SchedulerImage decodeScheduler(Reader& r);

void encode(Writer& w, const NeighborTableImage& v);
NeighborTableImage decodeNeighborTable(Reader& r);

void encode(Writer& w, const HostImage& v);
HostImage decodeHost(Reader& r);

void encode(Writer& w, const ChannelImage& v);
ChannelImage decodeChannel(Reader& r);

void encode(Writer& w, const FaultImage& v);
FaultImage decodeFault(Reader& r);

void encode(Writer& w, const TrafficImage& v);
TrafficImage decodeTraffic(Reader& r);

void encode(Writer& w, const MetricsImage& v);
MetricsImage decodeMetrics(Reader& r);

/// Full container: magic + version + CFG0/META/SCHD/CHAN/TRAF/FALT/STAT/HOST
/// sections with per-section digests.
std::vector<std::uint8_t> encodeWorldImage(const WorldImage& image);
WorldImage decodeWorldImage(const std::vector<std::uint8_t>& bytes);

/// Human-readable descriptions of every top-level mismatch between two
/// images (empty == equal). This is what the resume oracle prints when
/// replay diverges from the checkpoint.
std::vector<std::string> diffWorldImages(const WorldImage& a,
                                         const WorldImage& b);

}  // namespace manet::ckpt
