// Wall-clock profiling scopes (DESIGN.md §10).
//
// A ProfileScope measures the host wall-clock time spent inside a region
// (world build, event loop, metrics collection, ...) and accumulates
// {calls, total nanoseconds} into the thread's current obs::Registry under a
// stable scope name. Scopes aggregate per thread and merge with the
// registries, so a MANET_THREADS sweep reports the summed time across
// workers (comparable to RunResult::wallSeconds).
//
// Determinism: wall-clock readings feed *only* the metrics registry, never
// simulation state — this translation unit (src/obs/profile*) is the one
// sanctioned steady_clock home outside experiment/bench_util, and
// tools/lint_determinism.py enforces exactly that boundary. Scope names and
// call counts are deterministic; the nanosecond totals are not and are
// excluded from the byte-identical metrics comparisons.
#pragma once

#include <cstdint>

namespace manet::obs {

/// Monotonic wall-clock reading in nanoseconds (the only exported seam for
/// profiling time; implemented in profile.cpp, the lint-sanctioned home).
std::uint64_t monotonicNanos();

/// RAII profiling region. Cheap no-op when no registry is installed: the
/// clock is only read while metrics collection is live.
class ProfileScope {
 public:
  /// `scope` must be a stable string literal (stored by pointer until
  /// destruction, then used as the aggregation key).
  explicit ProfileScope(const char* scope);
  ~ProfileScope();
  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

 private:
  const char* scope_;
  std::uint64_t startNanos_ = 0;
  bool active_ = false;
};

}  // namespace manet::obs
