#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "util/assert.hpp"

namespace manet::obs::json {

std::string quoted(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string number(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, value);
  return std::string(buf, res.ptr);
}

void Writer::separate() {
  if (stack_.empty()) return;
  if (pendingKey_) {
    pendingKey_ = false;
    return;  // the key already wrote the comma/indent
  }
  if (stack_.back().hasItems) out_ << ",";
  stack_.back().hasItems = true;
  newlineIndent();
}

void Writer::newlineIndent() {
  out_ << "\n";
  for (std::size_t i = 0; i < stack_.size(); ++i) out_ << "  ";
}

void Writer::beginObject() {
  separate();
  out_ << "{";
  stack_.push_back(Frame{false, false});
}

void Writer::endObject() {
  MANET_EXPECTS(!stack_.empty() && !stack_.back().array && !pendingKey_);
  const bool hadItems = stack_.back().hasItems;
  stack_.pop_back();
  if (hadItems) newlineIndent();
  out_ << "}";
}

void Writer::beginArray() {
  separate();
  out_ << "[";
  stack_.push_back(Frame{true, false});
}

void Writer::endArray() {
  MANET_EXPECTS(!stack_.empty() && stack_.back().array);
  const bool hadItems = stack_.back().hasItems;
  stack_.pop_back();
  if (hadItems) newlineIndent();
  out_ << "]";
}

void Writer::key(std::string_view k) {
  MANET_EXPECTS(!stack_.empty() && !stack_.back().array && !pendingKey_);
  if (stack_.back().hasItems) out_ << ",";
  stack_.back().hasItems = true;
  newlineIndent();
  out_ << quoted(k) << ": ";
  pendingKey_ = true;
}

void Writer::value(std::string_view s) {
  separate();
  out_ << quoted(s);
}

void Writer::value(bool b) {
  separate();
  out_ << (b ? "true" : "false");
}

void Writer::value(double d) {
  separate();
  out_ << number(d);
}

void Writer::value(std::uint64_t u) {
  separate();
  out_ << u;
}

void Writer::value(std::int64_t i) {
  separate();
  out_ << i;
}

const Value* Value::find(std::string_view k) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [key, value] : object) {
    if (key == k) return &value;
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Value> run() {
    skipWs();
    Value v;
    if (!parseValue(v)) return std::nullopt;
    skipWs();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  bool atEnd() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }
  bool consume(char c) {
    if (atEnd() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }
  void skipWs() {
    while (!atEnd() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                        peek() == '\r')) {
      ++pos_;
    }
  }
  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool parseValue(Value& out) {
    if (atEnd()) return false;
    switch (peek()) {
      case '{': return parseObject(out);
      case '[': return parseArray(out);
      case '"': {
        out.kind = Value::Kind::kString;
        return parseString(out.str);
      }
      case 't':
        out.kind = Value::Kind::kBool;
        out.boolean = true;
        return literal("true");
      case 'f':
        out.kind = Value::Kind::kBool;
        out.boolean = false;
        return literal("false");
      case 'n':
        out.kind = Value::Kind::kNull;
        return literal("null");
      default: return parseNumber(out);
    }
  }

  bool parseObject(Value& out) {
    out.kind = Value::Kind::kObject;
    if (!consume('{')) return false;
    skipWs();
    if (consume('}')) return true;
    while (true) {
      skipWs();
      std::string key;
      if (!parseString(key)) return false;
      skipWs();
      if (!consume(':')) return false;
      skipWs();
      Value v;
      if (!parseValue(v)) return false;
      out.object.emplace_back(std::move(key), std::move(v));
      skipWs();
      if (consume(',')) continue;
      return consume('}');
    }
  }

  bool parseArray(Value& out) {
    out.kind = Value::Kind::kArray;
    if (!consume('[')) return false;
    skipWs();
    if (consume(']')) return true;
    while (true) {
      skipWs();
      Value v;
      if (!parseValue(v)) return false;
      out.array.push_back(std::move(v));
      skipWs();
      if (consume(',')) continue;
      return consume(']');
    }
  }

  bool parseString(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (!atEnd()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (atEnd()) return false;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          // Reports only ever escape control characters; decode the BMP
          // code point as a single byte when it fits, '?' otherwise.
          if (pos_ + 4 > text_.size()) return false;
          unsigned cp = 0;
          const auto res = std::from_chars(text_.data() + pos_,
                                           text_.data() + pos_ + 4, cp, 16);
          if (res.ec != std::errc() || res.ptr != text_.data() + pos_ + 4) {
            return false;
          }
          pos_ += 4;
          out.push_back(cp < 0x80 ? static_cast<char>(cp) : '?');
          break;
        }
        default: return false;
      }
    }
    return false;  // unterminated
  }

  bool parseNumber(Value& out) {
    out.kind = Value::Kind::kNumber;
    const std::size_t start = pos_;
    if (!atEnd() && peek() == '-') ++pos_;
    while (!atEnd() && (std::isdigit(static_cast<unsigned char>(peek())) ||
                        peek() == '.' || peek() == 'e' || peek() == 'E' ||
                        peek() == '+' || peek() == '-')) {
      ++pos_;
    }
    const auto res = std::from_chars(text_.data() + start,
                                     text_.data() + pos_, out.num);
    return res.ec == std::errc() && res.ptr == text_.data() + pos_ &&
           pos_ > start;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<Value> parse(std::string_view text) {
  return Parser(text).run();
}

}  // namespace manet::obs::json
