#include "obs/report.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "obs/json.hpp"

// Build manifest knobs, injected by src/obs/CMakeLists.txt at configure
// time. Unknown when building outside git or without CMake.
#ifndef MANET_GIT_SHA
#define MANET_GIT_SHA "unknown"
#endif
#ifndef MANET_BUILD_TYPE
#define MANET_BUILD_TYPE "unknown"
#endif
#ifndef MANET_COMPILER
#define MANET_COMPILER "unknown"
#endif
#ifndef MANET_SANITIZE_FLAG
#define MANET_SANITIZE_FLAG ""
#endif
// Set globally by -DMANET_AUDIT=ON (see the top-level CMakeLists.txt).
#ifndef MANET_AUDIT_ENABLED
#define MANET_AUDIT_ENABLED 0
#endif

extern char** environ;

namespace manet::obs {

namespace {

/// Every REPRO_* / MANET_* variable present in the environment, sorted by
/// name — the reproduction knobs that make two reports comparable.
std::vector<std::pair<std::string, std::string>> reproEnvironment() {
  std::vector<std::pair<std::string, std::string>> out;
  for (char** e = environ; e != nullptr && *e != nullptr; ++e) {
    const char* entry = *e;
    if (std::strncmp(entry, "REPRO_", 6) != 0 &&
        std::strncmp(entry, "MANET_", 6) != 0) {
      continue;
    }
    const char* eq = std::strchr(entry, '=');
    if (eq == nullptr) continue;
    out.emplace_back(std::string(entry, eq), std::string(eq + 1));
  }
  std::sort(out.begin(), out.end());
  return out;
}

void writeEnvironment(json::Writer& w) {
  w.key("environment");
  w.beginObject();
  w.field("gitSha", MANET_GIT_SHA);
  w.field("buildType", MANET_BUILD_TYPE);
  w.field("compiler", MANET_COMPILER);
  w.field("sanitize", MANET_SANITIZE_FLAG);
  w.field("audit", MANET_AUDIT_ENABLED != 0);
  w.key("env");
  w.beginObject();
  for (const auto& [name, value] : reproEnvironment()) w.field(name, value);
  w.endObject();
  w.endObject();
}

void writeRegistry(json::Writer& w, const Registry& registry,
                   bool includeTiming) {
  w.beginObject();
  w.key("counters");
  w.beginObject();
  for (std::size_t i = 0; i < static_cast<std::size_t>(Counter::kCount);
       ++i) {
    const auto c = static_cast<Counter>(i);
    w.field(name(c), registry.counter(c));
  }
  w.endObject();
  w.key("gauges");
  w.beginObject();
  for (std::size_t i = 0; i < static_cast<std::size_t>(Gauge::kCount); ++i) {
    const auto g = static_cast<Gauge>(i);
    w.field(name(g), registry.gauge(g));
  }
  w.endObject();
  w.key("histograms");
  w.beginObject();
  for (std::size_t i = 0; i < static_cast<std::size_t>(Hist::kCount); ++i) {
    const auto h = static_cast<Hist>(i);
    const stats::Histogram& hist = registry.histogram(h);
    w.key(name(h));
    w.beginObject();
    w.field("count", hist.count());
    w.field("sum", hist.sum());
    w.field("min", hist.min());
    w.field("max", hist.max());
    // Sparse buckets as [exclusive upper edge, count] pairs.
    w.key("buckets");
    w.beginArray();
    for (std::size_t b = 0; b < stats::Histogram::kBuckets; ++b) {
      if (hist.bucketCount(b) == 0) continue;
      w.beginArray();
      w.value(stats::Histogram::bucketUpper(b));
      w.value(hist.bucketCount(b));
      w.endArray();
    }
    w.endArray();
    w.endObject();
  }
  w.endObject();
  if (includeTiming) {
    w.key("profile");
    w.beginObject();
    for (const auto& [scope, stats] : registry.scopes()) {
      w.key(scope);
      w.beginObject();
      w.field("calls", stats.calls);
      w.field("totalSeconds",
              static_cast<double>(stats.totalNanos) * 1e-9);
      w.endObject();
    }
    w.endObject();
  }
  w.endObject();
}

}  // namespace

std::string metricsJson(const Registry& registry, bool includeTiming) {
  std::ostringstream out;
  json::Writer w(out);
  writeRegistry(w, registry, includeTiming);
  return out.str();
}

void writeReport(std::ostream& out, const std::string& bench,
                 const std::vector<RunSample>& samples) {
  json::Writer w(out);
  w.beginObject();
  w.field("schema", kSchema);
  w.field("schemaVersion", kSchemaVersion);
  w.field("bench", bench);
  writeEnvironment(w);
  w.key("results");
  w.beginArray();
  for (const RunSample& s : samples) {
    w.beginObject();
    w.field("label", s.label);
    w.field("scheme", s.scheme);
    w.field("seed", s.seed);
    w.field("re", s.re);
    w.field("srb", s.srb);
    w.field("latencySeconds", s.latencySeconds);
    w.field("hellosPerHostPerSecond", s.hellosPerHostPerSecond);
    w.field("broadcasts", s.broadcasts);
    w.field("offeredBroadcasts", s.offeredBroadcasts);
    w.field("framesTransmitted", s.framesTransmitted);
    w.field("framesDelivered", s.framesDelivered);
    w.field("framesCorrupted", s.framesCorrupted);
    w.field("simulatedSeconds", s.simulatedSeconds);
    w.field("wallSeconds", s.wallSeconds);
    w.field("framesPerWallSecond", s.framesPerWallSecond);
    if (s.metrics != nullptr) {
      w.key("metrics");
      writeRegistry(w, *s.metrics, /*includeTiming=*/true);
    }
    w.endObject();
  }
  w.endArray();
  w.endObject();
  out << "\n";
}

bool writeReportFile(const std::string& path, const std::string& bench,
                     const std::vector<RunSample>& samples) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "obs: cannot open report file " << path << "\n";
    return false;
  }
  writeReport(out, bench, samples);
  out.flush();
  if (!out) {
    std::cerr << "obs: short write on report file " << path << "\n";
    return false;
  }
  return true;
}

}  // namespace manet::obs
