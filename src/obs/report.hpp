// Machine-readable run reports (DESIGN.md §10).
//
// One report = one bench invocation: a versioned JSON document carrying an
// environment manifest (seed knobs, git sha, build flags, every REPRO_* /
// MANET_* variable that was set) plus one RunSample per table row — the
// paper metrics, the engine throughput, and the full metrics registry of
// that run. tools/compare_bench.py consumes these against the committed
// baselines under bench/baselines/.
//
// Schema policy: kSchema names the document type; kSchemaVersion bumps on
// any backwards-incompatible change (key renamed/removed/retyped, metric
// name retired). Adding keys or metric names is backwards-compatible and
// does NOT bump the version — consumers must ignore unknown keys.
#pragma once

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace manet::obs {

inline constexpr const char* kSchema = "manet.bench-report";
inline constexpr int kSchemaVersion = 1;

/// One simulation result row of a report. Deliberately engine-agnostic (the
/// obs layer sits below experiment); experiment::toRunSample fills one from
/// a RunResult.
struct RunSample {
  std::string label;   // report-unique row key, e.g. "5x5/flooding"
  std::string scheme;  // scheme name as printed in the bench table
  std::uint64_t seed = 0;

  // The paper's metrics.
  double re = 0.0;
  double srb = 0.0;
  double latencySeconds = 0.0;
  double hellosPerHostPerSecond = 0.0;

  // Engine accounting.
  std::uint64_t broadcasts = 0;
  /// Requests the traffic generator scheduled (>= broadcasts under churn).
  std::uint64_t offeredBroadcasts = 0;
  std::uint64_t framesTransmitted = 0;
  std::uint64_t framesDelivered = 0;
  std::uint64_t framesCorrupted = 0;
  double simulatedSeconds = 0.0;
  double wallSeconds = 0.0;
  /// The trajectory's headline throughput number (frames / wall second).
  double framesPerWallSecond = 0.0;

  /// Merged metrics registry of the run(s) behind this row; may be null
  /// when collection was off.
  std::shared_ptr<const Registry> metrics;
};

/// Serializes a registry as a JSON object (counters/gauges/histograms in
/// declaration order, profiling scopes by name). `includeTiming` = false
/// omits the wall-clock profile section, leaving only deterministic content
/// — what the thread-count-invariance test compares byte-for-byte.
std::string metricsJson(const Registry& registry, bool includeTiming = true);

/// Writes a complete report document to `out`.
void writeReport(std::ostream& out, const std::string& bench,
                 const std::vector<RunSample>& samples);

/// writeReport to a file; returns false (and reports to stderr) on I/O
/// failure. Parent directories are not created.
bool writeReportFile(const std::string& path, const std::string& bench,
                     const std::vector<RunSample>& samples);

}  // namespace manet::obs
