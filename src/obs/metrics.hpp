// Engine metrics registry (DESIGN.md §10).
//
// The paper's evaluation is entirely measured protocol behaviour; this layer
// exports the engine's internals — scheduler load, MAC contention, channel
// grid efficiency, HELLO traffic — as typed counters/gauges/histograms with
// stable dotted names, so benches and CI can track them run-over-run.
//
// Contract (mirrors trace and audit): metrics are strictly observational.
// A metrics-on run produces byte-identical simulation output to a
// metrics-off run (enforced by tests/test_obs.cpp); instrumentation sites
// only ever *read* simulation state. When no registry is installed the hot-
// path helpers are a thread-local load plus one predictable branch.
//
// Aggregation model: each simulation run owns one Registry, installed as the
// running thread's current registry for the duration of the run (each
// repetition of the parallel sweep runner owns its thread, like the audit
// sink). Registries merge in repetition order, so merged counters and
// histograms are identical for any MANET_THREADS value.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>

#include "stats/histogram.hpp"

namespace manet::obs {

/// Monotone event counters. Names are stable dotted identifiers; renaming or
/// removing one is a report schema change (DESIGN.md §10).
enum class Counter : std::size_t {
  kSchedulerScheduled,   // sim.scheduler.scheduled
  kSchedulerExecuted,    // sim.scheduler.executed
  kSchedulerCancelled,   // sim.scheduler.cancelled
  kChannelTx,            // phy.channel.tx
  kChannelDelivered,     // phy.channel.delivered
  kChannelDropCollision,  // phy.channel.drop.collision
  kChannelDropHalfDuplex, // phy.channel.drop.half_duplex
  kChannelDropFault,      // phy.channel.drop.fault_loss
  kChannelDropHostDown,   // phy.channel.drop.host_down
  kGridRebuilds,         // phy.grid.rebuilds
  kGridQueries,          // phy.grid.queries
  kGridFallbackQueries,  // phy.grid.fallback_queries
  kGridBboxFastPath,     // phy.grid.bbox_fast_path
  kGridCellsCovered,     // phy.grid.cells_covered
  kGridCellsScanned,     // phy.grid.cells_scanned
  kAirtimeBroadcastUs,   // mac.airtime_us.broadcast
  kAirtimeDataUs,        // mac.airtime_us.data
  kAirtimeRtsCtsUs,      // mac.airtime_us.rts_cts
  kAirtimeAckUs,         // mac.airtime_us.ack
  kMacBackoffDraws,      // mac.backoff.draws
  kMacUnicastRetries,    // mac.unicast.retries
  kMacUnicastDrops,      // mac.unicast.drops
  kHelloTx,              // net.hello.tx
  kHelloRx,              // net.hello.rx
  kNeighborJoins,        // net.neighbor.joins
  kNeighborLeaves,       // net.neighbor.leaves
  // Engine allocation accounting (DESIGN.md §11): how often the pooled
  // event/callback/packet paths actually hit the heap vs recycle. A rising
  // *.slabs / *.heap / *.fresh trend at fixed scale is an allocation
  // regression; tools/compare_bench.py diffs these against the baselines.
  kEngineAllocEventSlabs,      // engine.alloc.event.slabs
  kEngineAllocEventReused,     // engine.alloc.event.reused
  kEngineAllocCallbackInline,  // engine.alloc.callback.inline
  kEngineAllocCallbackHeap,    // engine.alloc.callback.heap
  kEngineAllocPacketFresh,     // engine.alloc.packet.fresh
  kEngineAllocPacketReused,    // engine.alloc.packet.reused
  // Sharded-execution accounting (DESIGN.md §15): cadence of the
  // conservative-lookahead window loop. windows = barriers run;
  // barrier_events = (transmission, destination shard) mailbox messages
  // exchanged at barriers; cross_msgs = cross-shard receiver copies those
  // messages covered. All zero in serial runs (MANET_SHARDS <= 1), which is
  // why compare_bench.py treats the family as drift-warn-only.
  kShardWindows,               // engine.shard.windows
  kShardBarrierEvents,         // engine.shard.barrier_events
  kShardCrossMsgs,             // engine.shard.cross_msgs
  // Traffic workload accounting (DESIGN.md §12): offered vs completed load.
  // offered = requests the generator scheduled; injected = requests whose
  // source was alive at fire time; blocked = requests lost to a crashed
  // source; completed = broadcasts that produced a per-broadcast record;
  // delivered/reachable are the summed r and e of those records.
  kTrafficOffered,             // traffic.offered
  kTrafficInjected,            // traffic.injected
  kTrafficBlockedHostDown,     // traffic.blocked.host_down
  kTrafficCompleted,           // traffic.completed
  kTrafficDeliveredCopies,     // traffic.delivered.copies
  kTrafficReachableSum,        // traffic.reachable.sum
  kCount,
};

/// High-water gauges (monotone max of an instantaneous level).
enum class Gauge : std::size_t {
  kSchedulerQueueDepth,  // sim.scheduler.queue_depth_hw
  kNeighborTableSize,    // net.neighbor.table_size_hw
  kCount,
};

/// Value distributions (stats::Histogram — fixed buckets, exact merge).
enum class Hist : std::size_t {
  kMacBackoffSlots,    // mac.backoff.slots
  kMacContentionWindow,  // mac.cw
  kGridCellOccupancy,  // phy.grid.cell_occupancy
  kNeighborTableSize,  // net.neighbor.table_size
  kTrafficLatencyUs,   // traffic.latency_us (per-broadcast end-to-end)
  kTrafficDeliveryPct, // traffic.delivery_ratio_pct (per-broadcast 100*r/e)
  kCount,
};

const char* name(Counter counter);
const char* name(Gauge gauge);
const char* name(Hist hist);

/// One run's metrics. Plain data, no locking: a Registry is only ever
/// written by the thread it is installed on.
class Registry {
 public:
  /// Wall-clock profiling aggregate of one named scope (obs/profile.hpp).
  struct ScopeStats {
    std::uint64_t calls = 0;
    std::uint64_t totalNanos = 0;
  };

  void add(Counter counter, std::uint64_t n = 1) {
    counters_[static_cast<std::size_t>(counter)] += n;
  }
  void gaugeMax(Gauge gauge, std::uint64_t level) {
    auto& slot = gauges_[static_cast<std::size_t>(gauge)];
    if (level > slot) slot = level;
  }
  void observe(Hist hist, double sample) {
    histograms_[static_cast<std::size_t>(hist)].observe(sample);
  }
  void recordScope(const char* scope, std::uint64_t nanos) {
    ScopeStats& s = scopes_[scope];
    ++s.calls;
    s.totalNanos += nanos;
  }

  std::uint64_t counter(Counter counter) const {
    return counters_[static_cast<std::size_t>(counter)];
  }
  std::uint64_t gauge(Gauge gauge) const {
    return gauges_[static_cast<std::size_t>(gauge)];
  }
  const stats::Histogram& histogram(Hist hist) const {
    return histograms_[static_cast<std::size_t>(hist)];
  }
  /// Profiling scopes, ordered by name (std::map) for stable serialization.
  const std::map<std::string, ScopeStats>& scopes() const { return scopes_; }

  /// Adds `other`'s contents; gauges take the max. Callers merge registries
  /// in repetition order so histogram float sums stay reproducible.
  void merge(const Registry& other);

 private:
  std::array<std::uint64_t, static_cast<std::size_t>(Counter::kCount)>
      counters_{};
  std::array<std::uint64_t, static_cast<std::size_t>(Gauge::kCount)> gauges_{};
  std::array<stats::Histogram, static_cast<std::size_t>(Hist::kCount)>
      histograms_{};
  std::map<std::string, ScopeStats> scopes_;
};

namespace detail {
extern thread_local Registry* tlsRegistry;
}  // namespace detail

/// The registry collecting on this thread, or nullptr when metrics are off.
inline Registry* current() { return detail::tlsRegistry; }

/// RAII: installs `registry` as this thread's current registry (nullptr
/// turns collection off) and restores the previous one on destruction.
class ScopedRegistry {
 public:
  explicit ScopedRegistry(Registry* registry)
      : previous_(detail::tlsRegistry) {
    detail::tlsRegistry = registry;
  }
  ~ScopedRegistry() { detail::tlsRegistry = previous_; }
  ScopedRegistry(const ScopedRegistry&) = delete;
  ScopedRegistry& operator=(const ScopedRegistry&) = delete;

 private:
  Registry* previous_;
};

// --- hot-path recording helpers (no-ops without an installed registry) ---

inline void add(Counter counter, std::uint64_t n = 1) {
  if (Registry* r = current()) r->add(counter, n);
}
inline void gaugeMax(Gauge gauge, std::uint64_t level) {
  if (Registry* r = current()) r->gaugeMax(gauge, level);
}
inline void observe(Hist hist, double sample) {
  if (Registry* r = current()) r->observe(hist, sample);
}

/// Should runs allocate and install a registry? True when MANET_METRICS is
/// set to a non-zero value, or a harness forced collection on (the bench
/// JSON reporters do). Reading the environment is cached per process.
bool collectionEnabled();

/// Programmatic override used by benches that were asked for a JSON report.
void forceCollection(bool on);

}  // namespace manet::obs
