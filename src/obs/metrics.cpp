#include "obs/metrics.hpp"

#include <atomic>

#include "util/env.hpp"

namespace manet::obs {

namespace detail {
thread_local Registry* tlsRegistry = nullptr;
}  // namespace detail

const char* name(Counter counter) {
  switch (counter) {
    case Counter::kSchedulerScheduled: return "sim.scheduler.scheduled";
    case Counter::kSchedulerExecuted: return "sim.scheduler.executed";
    case Counter::kSchedulerCancelled: return "sim.scheduler.cancelled";
    case Counter::kChannelTx: return "phy.channel.tx";
    case Counter::kChannelDelivered: return "phy.channel.delivered";
    case Counter::kChannelDropCollision: return "phy.channel.drop.collision";
    case Counter::kChannelDropHalfDuplex:
      return "phy.channel.drop.half_duplex";
    case Counter::kChannelDropFault: return "phy.channel.drop.fault_loss";
    case Counter::kChannelDropHostDown: return "phy.channel.drop.host_down";
    case Counter::kGridRebuilds: return "phy.grid.rebuilds";
    case Counter::kGridQueries: return "phy.grid.queries";
    case Counter::kGridFallbackQueries: return "phy.grid.fallback_queries";
    case Counter::kGridBboxFastPath: return "phy.grid.bbox_fast_path";
    case Counter::kGridCellsCovered: return "phy.grid.cells_covered";
    case Counter::kGridCellsScanned: return "phy.grid.cells_scanned";
    case Counter::kAirtimeBroadcastUs: return "mac.airtime_us.broadcast";
    case Counter::kAirtimeDataUs: return "mac.airtime_us.data";
    case Counter::kAirtimeRtsCtsUs: return "mac.airtime_us.rts_cts";
    case Counter::kAirtimeAckUs: return "mac.airtime_us.ack";
    case Counter::kMacBackoffDraws: return "mac.backoff.draws";
    case Counter::kMacUnicastRetries: return "mac.unicast.retries";
    case Counter::kMacUnicastDrops: return "mac.unicast.drops";
    case Counter::kHelloTx: return "net.hello.tx";
    case Counter::kHelloRx: return "net.hello.rx";
    case Counter::kNeighborJoins: return "net.neighbor.joins";
    case Counter::kNeighborLeaves: return "net.neighbor.leaves";
    case Counter::kEngineAllocEventSlabs: return "engine.alloc.event.slabs";
    case Counter::kEngineAllocEventReused: return "engine.alloc.event.reused";
    case Counter::kEngineAllocCallbackInline:
      return "engine.alloc.callback.inline";
    case Counter::kEngineAllocCallbackHeap:
      return "engine.alloc.callback.heap";
    case Counter::kEngineAllocPacketFresh: return "engine.alloc.packet.fresh";
    case Counter::kEngineAllocPacketReused:
      return "engine.alloc.packet.reused";
    case Counter::kShardWindows: return "engine.shard.windows";
    case Counter::kShardBarrierEvents: return "engine.shard.barrier_events";
    case Counter::kShardCrossMsgs: return "engine.shard.cross_msgs";
    case Counter::kTrafficOffered: return "traffic.offered";
    case Counter::kTrafficInjected: return "traffic.injected";
    case Counter::kTrafficBlockedHostDown: return "traffic.blocked.host_down";
    case Counter::kTrafficCompleted: return "traffic.completed";
    case Counter::kTrafficDeliveredCopies: return "traffic.delivered.copies";
    case Counter::kTrafficReachableSum: return "traffic.reachable.sum";
    case Counter::kCount: break;
  }
  return "?";
}

const char* name(Gauge gauge) {
  switch (gauge) {
    case Gauge::kSchedulerQueueDepth: return "sim.scheduler.queue_depth_hw";
    case Gauge::kNeighborTableSize: return "net.neighbor.table_size_hw";
    case Gauge::kCount: break;
  }
  return "?";
}

const char* name(Hist hist) {
  switch (hist) {
    case Hist::kMacBackoffSlots: return "mac.backoff.slots";
    case Hist::kMacContentionWindow: return "mac.cw";
    case Hist::kGridCellOccupancy: return "phy.grid.cell_occupancy";
    case Hist::kNeighborTableSize: return "net.neighbor.table_size";
    case Hist::kTrafficLatencyUs: return "traffic.latency_us";
    case Hist::kTrafficDeliveryPct: return "traffic.delivery_ratio_pct";
    case Hist::kCount: break;
  }
  return "?";
}

void Registry::merge(const Registry& other) {
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    counters_[i] += other.counters_[i];
  }
  for (std::size_t i = 0; i < gauges_.size(); ++i) {
    if (other.gauges_[i] > gauges_[i]) gauges_[i] = other.gauges_[i];
  }
  for (std::size_t i = 0; i < histograms_.size(); ++i) {
    histograms_[i].merge(other.histograms_[i]);
  }
  for (const auto& [scope, stats] : other.scopes_) {
    ScopeStats& mine = scopes_[scope];
    mine.calls += stats.calls;
    mine.totalNanos += stats.totalNanos;
  }
}

namespace {
// Atomic because benches may force collection on the main thread while sweep
// workers consult it; relaxed is enough (it only gates registry creation).
std::atomic<bool> gForced{false};
}  // namespace

bool collectionEnabled() {
  static const bool fromEnv = util::envInt("MANET_METRICS", 0) != 0;
  return fromEnv || gForced.load(std::memory_order_relaxed);
}

void forceCollection(bool on) {
  gForced.store(on, std::memory_order_relaxed);
}

}  // namespace manet::obs
