// Dependency-free JSON for the run-report exporter (DESIGN.md §10).
//
// Writer: a small streaming builder that emits deterministic output — keys
// in the order the caller writes them, doubles via shortest-round-trip
// formatting (std::to_chars), strings escaped per RFC 8259. Enough for the
// bench reports; not a general serialization framework.
//
// Parser: a minimal recursive-descent reader used by tests (schema
// round-trip) — objects as ordered key/value vectors, numbers as doubles.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace manet::obs::json {

/// Escapes and quotes `s` per RFC 8259.
std::string quoted(std::string_view s);

/// Shortest round-trip decimal form of `value` ("null" for non-finite, which
/// JSON cannot represent).
std::string number(double value);

/// Streaming JSON writer. The caller is responsible for writing a single
/// well-formed value; nesting is tracked so commas and indentation are
/// automatic. Two-space indentation keeps committed baselines diffable.
class Writer {
 public:
  explicit Writer(std::ostream& out) : out_(out) {}

  void beginObject();
  void endObject();
  void beginArray();
  void endArray();

  /// Writes `"key":` inside an object; follow with exactly one value call.
  void key(std::string_view k);

  void value(std::string_view s);
  void value(const char* s) { value(std::string_view(s)); }
  void value(bool b);
  void value(double d);
  void value(std::uint64_t u);
  void value(std::int64_t i);
  void value(int i) { value(static_cast<std::int64_t>(i)); }

  // Convenience: key + scalar value in one call.
  template <typename T>
  void field(std::string_view k, T v) {
    key(k);
    value(v);
  }

 private:
  void separate();
  void newlineIndent();

  std::ostream& out_;
  /// One frame per open container: needsComma tracking.
  struct Frame {
    bool array = false;
    bool hasItems = false;
  };
  std::vector<Frame> stack_;
  bool pendingKey_ = false;
};

/// Parsed JSON value (test-side of the round-trip).
struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double num = 0.0;
  std::string str;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;  // insertion order

  bool isObject() const { return kind == Kind::kObject; }
  bool isArray() const { return kind == Kind::kArray; }
  /// Member lookup (nullptr when absent or not an object).
  const Value* find(std::string_view k) const;
};

/// Parses one JSON document (surrounding whitespace allowed). Returns
/// nullopt on any syntax error or trailing garbage.
std::optional<Value> parse(std::string_view text);

}  // namespace manet::obs::json
