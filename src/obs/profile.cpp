// The sanctioned wall-clock home of the obs layer: profiling scopes read
// steady_clock here and nowhere else (tools/lint_determinism.py allowlists
// src/obs/profile). Readings land in the metrics registry only — never in
// simulation state.
#include "obs/profile.hpp"

#include <chrono>

#include "obs/metrics.hpp"

namespace manet::obs {

std::uint64_t monotonicNanos() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

ProfileScope::ProfileScope(const char* scope) : scope_(scope) {
  if (current() != nullptr) {
    active_ = true;
    startNanos_ = monotonicNanos();
  }
}

ProfileScope::~ProfileScope() {
  if (!active_) return;
  // The registry may have been swapped out inside the scope; only record
  // into the one that is still installed.
  if (Registry* r = current()) {
    r->recordScope(scope_, monotonicNanos() - startNanos_);
  }
}

}  // namespace manet::obs
