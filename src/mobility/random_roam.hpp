// The paper's roaming pattern (§4): "The roaming pattern of each host
// consists of a series of turns. In each turn, the direction, speed, and time
// interval are randomly generated. The direction is uniformly distributed
// from 0 to 360 degrees, the time interval from 1 to 100 seconds, and the
// speed from 0 to a given maximum speed."
//
// The paper does not state boundary behaviour; we reflect at map edges
// (specular bounce), which keeps the spatial distribution near-uniform and
// avoids the edge pile-up that clamping would cause.
#pragma once

#include "mobility/map.hpp"
#include "mobility/model.hpp"
#include "sim/random.hpp"

namespace manet::ckpt {
struct StateAccess;
}

namespace manet::mobility {

struct RoamParams {
  double maxSpeedMps = kmhToMps(10.0);
  sim::Duration minTurnDuration = 1 * sim::kSecond;
  sim::Duration maxTurnDuration = 100 * sim::kSecond;
};

class RandomRoam final : public MobilityModel {
 public:
  RandomRoam(MapSpec map, geom::Vec2 start, RoamParams params, sim::Rng rng);

  geom::Vec2 positionAt(sim::TimePoint t) override;

  /// Velocity of the current turn, in m/s (introspection for tests).
  geom::Vec2 currentVelocity() const { return velocity_; }

 private:
  friend struct manet::ckpt::StateAccess;
  void beginTurn();
  /// Advances `position_` along `velocity_` for `dt`, reflecting at edges.
  void advance(sim::Duration dt);

  MapSpec map_;
  RoamParams params_;
  sim::Rng rng_;
  geom::Vec2 position_;
  geom::Vec2 velocity_{0.0, 0.0};
  sim::TimePoint turnEnd_{};   // absolute time the current turn finishes
  sim::TimePoint lastQuery_{}; // last time position_ was valid for
};

}  // namespace manet::mobility
