#include "mobility/random_roam.hpp"

#include <cmath>

#include "geom/circle.hpp"
#include "util/assert.hpp"

namespace manet::mobility {

RandomRoam::RandomRoam(MapSpec map, geom::Vec2 start, RoamParams params,
                       sim::Rng rng)
    : map_(map), params_(params), rng_(rng), position_(map.clamp(start)) {
  MANET_EXPECTS(params_.maxSpeedMps >= 0.0);
  MANET_EXPECTS(params_.minTurnDuration >= sim::kMicrosecond);
  MANET_EXPECTS(params_.maxTurnDuration >= params_.minTurnDuration);
  beginTurn();
}

void RandomRoam::beginTurn() {
  const double direction = rng_.uniform(0.0, 2.0 * geom::kPi);
  const double speed = rng_.uniform(0.0, params_.maxSpeedMps);
  velocity_ = speed * geom::unitVector(direction);
  turnEnd_ = lastQuery_ + rng_.uniformDuration(params_.minTurnDuration,
                                               params_.maxTurnDuration);
}

void RandomRoam::advance(sim::Duration dt) {
  if (dt <= sim::Duration{}) return;
  const double seconds = sim::toSeconds(dt);
  geom::Vec2 p = position_ + velocity_ * seconds;
  // Specular reflection: fold the coordinate back into [0, L] (possibly
  // several times for long legs on small maps) and flip the velocity sign an
  // odd number of folds.
  auto reflect = [](double value, double limit, double& velocity) {
    if (limit <= 0.0) return 0.0;
    while (value < 0.0 || value > limit) {
      if (value < 0.0) {
        value = -value;
        velocity = -velocity;
      } else {
        value = 2.0 * limit - value;
        velocity = -velocity;
      }
    }
    return value;
  };
  p.x = reflect(p.x, map_.width, velocity_.x);
  p.y = reflect(p.y, map_.height, velocity_.y);
  position_ = map_.clamp(p);
}

geom::Vec2 RandomRoam::positionAt(sim::TimePoint t) {
  MANET_EXPECTS(t >= lastQuery_);
  while (t >= turnEnd_) {
    advance(turnEnd_ - lastQuery_);
    lastQuery_ = turnEnd_;
    beginTurn();
  }
  advance(t - lastQuery_);
  lastQuery_ = t;
  return position_;
}

}  // namespace manet::mobility
