#include "mobility/waypoint.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace manet::mobility {

RandomWaypoint::RandomWaypoint(MapSpec map, geom::Vec2 start,
                               WaypointParams params, sim::Rng rng)
    : map_(map), params_(params), rng_(rng), from_(map.clamp(start)) {
  MANET_EXPECTS(params_.minSpeedMps > 0.0);
  MANET_EXPECTS(params_.maxSpeedMps >= params_.minSpeedMps);
  MANET_EXPECTS(params_.pause >= sim::Duration{});
  to_ = from_;
  legStart_ = legEnd_ = pauseEnd_ = sim::TimePoint{};
  pickLeg();
}

void RandomWaypoint::pickLeg() {
  from_ = to_;
  to_ = map_.uniformPoint(rng_);
  const double speed = rng_.uniform(params_.minSpeedMps, params_.maxSpeedMps);
  const double dist = geom::distance(from_, to_);
  legStart_ = pauseEnd_;
  legEnd_ =
      legStart_ + std::max(sim::kMicrosecond, sim::fromSeconds(dist / speed));
  pauseEnd_ = legEnd_ + params_.pause;
}

geom::Vec2 RandomWaypoint::positionAt(sim::TimePoint t) {
  MANET_EXPECTS(t >= lastQuery_);
  lastQuery_ = t;
  while (t >= pauseEnd_) pickLeg();
  if (t >= legEnd_) return to_;  // pausing at destination
  // NOLINT-units(dimensionless leg-progress ratio)
  const double progress = static_cast<double>((t - legStart_).ticks()) /
                          static_cast<double>((legEnd_ - legStart_).ticks());  // NOLINT-units(dimensionless leg-progress ratio)
  return from_ + (to_ - from_) * progress;
}

}  // namespace manet::mobility
