// Random-waypoint mobility (not used by the paper's experiments, but a
// standard MANET model; provided for the examples and for sensitivity
// studies). A host picks a uniform destination, travels there at a uniform
// random speed in [minSpeed, maxSpeed], pauses, and repeats.
#pragma once

#include "mobility/map.hpp"
#include "mobility/model.hpp"
#include "sim/random.hpp"

namespace manet::ckpt {
struct StateAccess;
}

namespace manet::mobility {

struct WaypointParams {
  double minSpeedMps = kmhToMps(1.0);
  double maxSpeedMps = kmhToMps(10.0);
  sim::Duration pause{};
};

class RandomWaypoint final : public MobilityModel {
 public:
  RandomWaypoint(MapSpec map, geom::Vec2 start, WaypointParams params,
                 sim::Rng rng);

  geom::Vec2 positionAt(sim::TimePoint t) override;

 private:
  friend struct manet::ckpt::StateAccess;
  void pickLeg();

  MapSpec map_;
  WaypointParams params_;
  sim::Rng rng_;
  geom::Vec2 from_;
  geom::Vec2 to_;
  sim::TimePoint legStart_{};
  sim::TimePoint legEnd_{};    // arrival time at `to_`
  sim::TimePoint pauseEnd_{};  // end of post-arrival pause
  sim::TimePoint lastQuery_{};
};

}  // namespace manet::mobility
