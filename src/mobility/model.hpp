// Mobility model interface. Models are queried lazily: positionAt(t) must be
// callable with non-decreasing t values (the simulator only moves forward).
#pragma once

#include "geom/vec2.hpp"
#include "sim/time.hpp"

namespace manet::ckpt {
struct StateAccess;
}

namespace manet::mobility {

class MobilityModel {
 public:
  virtual ~MobilityModel() = default;

  /// Position at simulation time `t`. Requires t >= every previous query
  /// (models may advance internal state lazily).
  virtual geom::Vec2 positionAt(sim::TimePoint t) = 0;
};

/// A host that never moves (dense-map baseline and unit tests).
class Stationary final : public MobilityModel {
 public:
  explicit Stationary(geom::Vec2 position) : position_(position) {}
  geom::Vec2 positionAt(sim::TimePoint) override { return position_; }

 private:
  friend struct manet::ckpt::StateAccess;
  geom::Vec2 position_;
};

}  // namespace manet::mobility
