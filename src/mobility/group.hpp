// Reference-point group mobility (RPGM, Hong et al.): hosts move in teams.
// Each group has a logical center that roams the map like a single host
// (the paper's random-roam pattern); each member keeps a fixed reference
// offset from the center plus its own small local deviation. Models the
// paper's motivating scenarios — "fleets in the ocean, soldiers on the
// march, rescue scenes" — where hosts cluster and move together.
#pragma once

#include <memory>
#include <vector>

#include "mobility/map.hpp"
#include "mobility/model.hpp"
#include "mobility/random_roam.hpp"
#include "sim/random.hpp"

namespace manet::ckpt {
struct StateAccess;
}

namespace manet::mobility {

struct GroupParams {
  /// Group-center motion (speed of the team as a whole).
  RoamParams center;
  /// Radius of the disk (around the reference point) in which members are
  /// placed and locally roam.
  double spanMeters = 200.0;
  /// Maximum speed of a member's local deviation motion, m/s.
  double localSpeedMps = kmhToMps(5.0);
};

/// The shared group center. Create one per team, then derive members.
class GroupCenter {
 public:
  GroupCenter(MapSpec map, geom::Vec2 start, GroupParams params,
              sim::Rng rng);

  /// Center position at time t (monotone t across ALL members' queries,
  /// which holds when driven by a single scheduler).
  geom::Vec2 positionAt(sim::TimePoint t);

  const MapSpec& map() const { return map_; }
  const GroupParams& params() const { return params_; }

 private:
  friend struct manet::ckpt::StateAccess;
  MapSpec map_;
  GroupParams params_;
  RandomRoam roam_;
};

/// One member of a group: center + fixed offset + local roaming deviation,
/// clamped onto the map.
class GroupMember final : public MobilityModel {
 public:
  GroupMember(std::shared_ptr<GroupCenter> center, geom::Vec2 offset,
              sim::Rng rng);

  geom::Vec2 positionAt(sim::TimePoint t) override;

 private:
  friend struct manet::ckpt::StateAccess;
  std::shared_ptr<GroupCenter> center_;
  geom::Vec2 offset_;
  RandomRoam deviation_;  // roams a small local box centered at the offset
};

/// Builds `members` mobility models sharing one center starting at `start`.
std::vector<std::unique_ptr<MobilityModel>> makeGroup(
    MapSpec map, geom::Vec2 start, int members, GroupParams params,
    sim::Rng& rng);

}  // namespace manet::mobility
