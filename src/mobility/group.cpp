#include "mobility/group.hpp"

#include <cmath>

#include "geom/circle.hpp"
#include "util/assert.hpp"

namespace manet::mobility {

GroupCenter::GroupCenter(MapSpec map, geom::Vec2 start, GroupParams params,
                         sim::Rng rng)
    : map_(map),
      params_(params),
      roam_(map, start, params.center, rng) {
  MANET_EXPECTS(params_.spanMeters >= 0.0);
  MANET_EXPECTS(params_.localSpeedMps >= 0.0);
}

geom::Vec2 GroupCenter::positionAt(sim::TimePoint t) { return roam_.positionAt(t); }

GroupMember::GroupMember(std::shared_ptr<GroupCenter> center,
                         geom::Vec2 offset, sim::Rng rng)
    : center_(std::move(center)),
      offset_(offset),
      deviation_(
          // Local deviation roams a box of side 2*span centered at 0; we
          // shift by span so RandomRoam's [0, 2span] space maps to ±span.
          MapSpec{2.0 * center_->params().spanMeters,
                  2.0 * center_->params().spanMeters},
          geom::Vec2{center_->params().spanMeters,
                     center_->params().spanMeters},
          RoamParams{center_->params().localSpeedMps, 1 * sim::kSecond,
                     20 * sim::kSecond},
          rng) {
  MANET_EXPECTS(center_ != nullptr);
}

geom::Vec2 GroupMember::positionAt(sim::TimePoint t) {
  const geom::Vec2 center = center_->positionAt(t);
  const double span = center_->params().spanMeters;
  geom::Vec2 dev{0.0, 0.0};
  if (span > 0.0) {
    dev = deviation_.positionAt(t) - geom::Vec2{span, span};
  }
  return center_->map().clamp(center + offset_ + dev);
}

std::vector<std::unique_ptr<MobilityModel>> makeGroup(
    MapSpec map, geom::Vec2 start, int members, GroupParams params,
    sim::Rng& rng) {
  MANET_EXPECTS(members >= 1);
  auto center = std::make_shared<GroupCenter>(map, start, params,
                                              rng.fork(0xCE47E5));
  std::vector<std::unique_ptr<MobilityModel>> out;
  out.reserve(static_cast<std::size_t>(members));
  for (int i = 0; i < members; ++i) {
    geom::Vec2 offset{0.0, 0.0};
    if (params.spanMeters > 0.0) {
      const double radius = params.spanMeters * std::sqrt(rng.uniform());
      const double angle = rng.uniform(0.0, 2.0 * geom::kPi);
      offset = radius * geom::unitVector(angle);
    }
    out.push_back(std::make_unique<GroupMember>(
        center, offset, rng.fork(0xD00 + static_cast<std::uint64_t>(i))));
  }
  return out;
}

}  // namespace manet::mobility
