// Rectangular simulation map. The paper uses square maps of N x N units with
// a unit length of 500 m (one transmission radius); N in {1,3,5,7,9,11}.
#pragma once

#include "geom/vec2.hpp"
#include "sim/random.hpp"
#include "util/assert.hpp"

namespace manet::mobility {

struct MapSpec {
  double width = 500.0;   // meters
  double height = 500.0;  // meters

  /// Builds the paper's N x N map (unit = `unitMeters`, default 500 m).
  static MapSpec square(int units, double unitMeters = 500.0) {
    MANET_EXPECTS(units >= 1);
    MANET_EXPECTS(unitMeters > 0.0);
    const double side = units * unitMeters;
    return MapSpec{side, side};
  }

  bool contains(geom::Vec2 p) const {
    return p.x >= 0.0 && p.x <= width && p.y >= 0.0 && p.y <= height;
  }

  /// Clamps a point onto the map (used after reflection rounding).
  geom::Vec2 clamp(geom::Vec2 p) const {
    if (p.x < 0.0) p.x = 0.0;
    if (p.x > width) p.x = width;
    if (p.y < 0.0) p.y = 0.0;
    if (p.y > height) p.y = height;
    return p;
  }

  /// Uniform random point on the map.
  geom::Vec2 uniformPoint(sim::Rng& rng) const {
    return {rng.uniform(0.0, width), rng.uniform(0.0, height)};
  }
};

/// Converts km/h (the paper's speed unit) to m/s (the simulator's).
constexpr double kmhToMps(double kmh) { return kmh * (1000.0 / 3600.0); }

}  // namespace manet::mobility
