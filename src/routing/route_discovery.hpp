// DSR-style on-demand route discovery — the application the paper's
// introduction motivates ("several routing protocols have relied on
// broadcasting to propagate routing-related information (e.g., the request
// for a new route to a destination)", and footnote 1: "a host generally
// appends its ID to the request so that appropriate routing information can
// be collected").
//
// The route_request is a broadcast carried by whatever suppression scheme
// the scenario uses: the quality of the broadcast layer IS the quality of
// discovery. Each relay appends itself, so the copy reaching the target
// holds a complete source route. The target answers with a route_reply
// unicast hop-by-hop back along the reversed route, using the MAC's
// acknowledged unicast path (ACK/retry/RTS-CTS).
//
// Wiring: construct one RoutingHarness per World; it attaches an agent to
// every host and aggregates discovery outcomes.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "experiment/host.hpp"
#include "experiment/world.hpp"
#include "net/ids.hpp"
#include "net/packet.hpp"

namespace manet::routing {

struct DiscoveryRecord {
  net::BroadcastId requestId{};
  net::HostId source = net::kInvalidHost;
  net::HostId target = net::kInvalidHost;
  sim::TimePoint requestedAt = sim::kNever;
  bool succeeded = false;
  sim::TimePoint completedAt = sim::kNever;  // when the reply reached the source
  std::vector<net::HostId> path;       // source .. target when succeeded

  double latencySeconds() const {
    return succeeded ? sim::toSeconds(completedAt - requestedAt) : -1.0;
  }
  int hops() const {
    return succeeded ? static_cast<int>(path.size()) - 1 : -1;
  }
};

class RoutingHarness;

/// Per-host routing agent. Handles the target side (reply generation) and
/// relay side (reply forwarding) for every request; the source side records
/// outcomes into the shared harness.
class RouteDiscoveryAgent final : public experiment::HostApp {
 public:
  RouteDiscoveryAgent(RoutingHarness& harness, experiment::Host& host);

  // --- experiment::HostApp ---
  void onBroadcastDelivered(experiment::Host& host,
                            const net::Packet& packet) override;
  void onUnicastDelivered(experiment::Host& host,
                          const net::Packet& packet) override;

 private:
  RoutingHarness& harness_;
};

/// Owns one agent per host of a world and the discovery ledger.
class RoutingHarness {
 public:
  /// Attaches agents to every host of `world` (replacing any existing app).
  explicit RoutingHarness(experiment::World& world);

  /// Issues a route request from `source` to `target` now. Returns the
  /// ledger index; inspect it after the simulation settles.
  std::size_t discover(net::HostId source, net::HostId target);

  const std::vector<DiscoveryRecord>& records() const { return records_; }

  /// Aggregates: fraction of requests answered, mean latency and hops of
  /// the successful ones.
  double successRate() const;
  double meanLatencySeconds() const;
  double meanHops() const;

  /// Wire size of a route reply carrying `pathLength` hops.
  static std::size_t replyBytes(std::size_t pathLength) {
    return 32 + 4 * pathLength;
  }

 private:
  friend class RouteDiscoveryAgent;
  void onReplyReachedSource(const net::Packet& packet, sim::TimePoint now);

  experiment::World& world_;
  std::vector<std::unique_ptr<RouteDiscoveryAgent>> agents_;
  std::vector<DiscoveryRecord> records_;
  std::unordered_map<net::BroadcastId, std::size_t, net::BroadcastIdHash>
      byRequest_;
};

}  // namespace manet::routing
