#include "routing/route_discovery.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace manet::routing {

RouteDiscoveryAgent::RouteDiscoveryAgent(RoutingHarness& harness,
                                         experiment::Host& host)
    : harness_(harness) {
  host.setApp(this);
}

void RouteDiscoveryAgent::onBroadcastDelivered(experiment::Host& host,
                                               const net::Packet& packet) {
  if (packet.appKind != net::Packet::AppKind::kRouteRequest) return;
  if (packet.appTarget != host.id()) return;

  // We are the target: the accumulated path (which ends at the relay we
  // heard) plus ourselves is a complete source route. Reply along it.
  std::vector<net::HostId> path = packet.appPath;
  path.push_back(host.id());
  MANET_ASSERT(path.size() >= 2);

  auto reply = net::makePacket();
  reply->type = net::PacketType::kData;
  reply->appKind = net::Packet::AppKind::kRouteReply;
  reply->appTarget = path.front();  // the requester consumes the reply
  reply->appPath = path;
  reply->bid = packet.bid;  // correlate reply with request
  const net::HostId prevHop = path[path.size() - 2];
  host.sendUnicast(prevHop, std::move(reply),
                   RoutingHarness::replyBytes(path.size()));
}

void RouteDiscoveryAgent::onUnicastDelivered(experiment::Host& host,
                                             const net::Packet& packet) {
  if (packet.appKind != net::Packet::AppKind::kRouteReply) return;

  if (packet.appTarget == host.id()) {
    // The reply made it back to the requester.
    harness_.onReplyReachedSource(packet, host.now());
    return;
  }
  // Intermediate hop: forward toward the front of the path.
  const auto& path = packet.appPath;
  const auto self = std::find(path.begin(), path.end(), host.id());
  if (self == path.end() || self == path.begin()) return;  // not on route
  const net::HostId prevHop = *(self - 1);
  auto copy = net::makePacket(packet);
  host.sendUnicast(prevHop, std::move(copy),
                   RoutingHarness::replyBytes(path.size()));
}

RoutingHarness::RoutingHarness(experiment::World& world) : world_(world) {
  agents_.reserve(world.hostCount());
  for (std::size_t i = 0; i < world.hostCount(); ++i) {
    const net::HostId id{static_cast<std::uint32_t>(i)};
    agents_.push_back(
        std::make_unique<RouteDiscoveryAgent>(*this, world.host(id)));
  }
}

std::size_t RoutingHarness::discover(net::HostId source, net::HostId target) {
  MANET_EXPECTS(source.value() < world_.hostCount());
  MANET_EXPECTS(target.value() < world_.hostCount());
  MANET_EXPECTS(source != target);
  const net::BroadcastId bid = world_.host(source).originateBroadcast(
      [source, target](net::Packet& p) {
        p.appKind = net::Packet::AppKind::kRouteRequest;
        p.appTarget = target;
        p.appPath = {source};
      });
  DiscoveryRecord record;
  record.requestId = bid;
  record.source = source;
  record.target = target;
  record.requestedAt = world_.scheduler().now();
  records_.push_back(record);
  byRequest_[bid] = records_.size() - 1;
  return records_.size() - 1;
}

void RoutingHarness::onReplyReachedSource(const net::Packet& packet,
                                          sim::TimePoint now) {
  auto it = byRequest_.find(packet.bid);
  if (it == byRequest_.end()) return;  // reply for an unknown request
  DiscoveryRecord& record = records_[it->second];
  if (record.succeeded) return;  // keep the first route only
  record.succeeded = true;
  record.completedAt = now;
  record.path = packet.appPath;
}

double RoutingHarness::successRate() const {
  if (records_.empty()) return 0.0;
  std::size_t succeeded = 0;
  for (const auto& r : records_) succeeded += r.succeeded ? 1 : 0;
  return static_cast<double>(succeeded) /
         static_cast<double>(records_.size());
}

double RoutingHarness::meanLatencySeconds() const {
  double total = 0.0;
  int count = 0;
  for (const auto& r : records_) {
    if (r.succeeded) {
      total += r.latencySeconds();
      ++count;
    }
  }
  return count > 0 ? total / count : 0.0;
}

double RoutingHarness::meanHops() const {
  double total = 0.0;
  int count = 0;
  for (const auto& r : records_) {
    if (r.succeeded) {
      total += r.hops();
      ++count;
    }
  }
  return count > 0 ? total / count : 0.0;
}

}  // namespace manet::routing
