// The assembled simulation: scheduler, channel, hosts, workload, metrics.
#pragma once

#include <memory>
#include <vector>

#include "experiment/host.hpp"
#include "experiment/scenario.hpp"
#include "mobility/map.hpp"
#include "phy/channel.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "stats/metrics.hpp"
#include "trace/event.hpp"

namespace manet::experiment {

class World {
 public:
  /// Builds hosts, mobility, MACs, and the policy from `config`
  /// (automatically resolved).
  explicit World(const ScenarioConfig& config);
  World(const World&) = delete;
  World& operator=(const World&) = delete;

  /// Runs the full workload: warmup, `numBroadcasts` requests with U(0,
  /// interarrivalMax) spacing from uniformly chosen sources, then the drain
  /// period. May be called once.
  void run();

  /// Starts the periodic agents (HELLO) without scheduling any workload;
  /// lets tests drive broadcasts manually through host(id).
  void startAgents();

  // --- component access (used by tests, examples, and Host) ---
  sim::Scheduler& scheduler() { return scheduler_; }
  phy::Channel& channel() { return channel_; }
  stats::MetricsCollector& metrics() { return metrics_; }
  const ScenarioConfig& config() const { return config_; }
  const core::RebroadcastPolicy& policy() const { return *policy_; }
  Host& host(net::NodeId id) { return *hosts_[id]; }
  std::size_t hostCount() const { return hosts_.size(); }

  /// e for a broadcast starting now at `source` (unit-disk BFS snapshot).
  int reachableFrom(net::NodeId source) const;

  /// Oracle neighborhood queries (true geometry at the current instant).
  int oracleNeighborCount(net::NodeId id) const;
  std::vector<net::NodeId> oracleNeighbors(net::NodeId id) const;

  /// Installs an event trace sink (observational only: enabling tracing
  /// never changes the run). Must outlive the world. Pass nullptr to stop.
  void setTraceSink(trace::TraceSink* sink) { traceSink_ = sink; }
  trace::TraceSink* traceSink() const { return traceSink_; }

 private:
  void scheduleWorkload();
  std::vector<std::unique_ptr<mobility::MobilityModel>> buildMobility(
      const mobility::MapSpec& map, sim::Rng& master);

  ScenarioConfig config_;  // resolved
  sim::Scheduler scheduler_;
  phy::Channel channel_;
  stats::MetricsCollector metrics_;
  std::unique_ptr<core::RebroadcastPolicy> policy_;
  std::vector<std::unique_ptr<Host>> hosts_;
  sim::Rng workloadRng_;
  sim::Time horizon_ = 0;
  bool ran_ = false;
  trace::TraceSink* traceSink_ = nullptr;
};

}  // namespace manet::experiment
