// The assembled simulation: scheduler, channel, hosts, workload, metrics.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "audit/audit.hpp"
#include "experiment/host.hpp"
#include "experiment/scenario.hpp"
#include "fault/churn.hpp"
#include "fault/loss.hpp"
#include "mobility/map.hpp"
#include "net/packet_pool.hpp"
#include "phy/channel.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "sim/shard/coordinator.hpp"
#include "stats/metrics.hpp"
#include "trace/event.hpp"
#include "traffic/config.hpp"

namespace manet::ckpt {
struct StateAccess;
}

namespace manet::experiment {

class World {
 public:
  /// Builds hosts, mobility, MACs, and the policy from `config`
  /// (automatically resolved).
  explicit World(const ScenarioConfig& config);
  World(const World&) = delete;
  World& operator=(const World&) = delete;

  /// Runs the full workload: warmup, the traffic generator's request
  /// schedule (default: `numBroadcasts` requests with U(0, interarrivalMax)
  /// spacing from uniformly chosen sources — the paper's workload), then the
  /// drain period. May be called once.
  void run();

  // --- split-run control (checkpoint/replay, DESIGN.md §14) ---
  /// The schedule-everything prefix of run(): starts agents, schedules the
  /// workload and churn timeline, and fixes the horizon — without advancing
  /// time. May be called once; afterwards drive the clock with
  /// continueUntil()/runToEnd(). run() is exactly beginRun() + runToEnd().
  void beginRun();

  /// Advances the scheduler to `until` (an event boundary: events at
  /// exactly `until` fire). continueUntil(t); continueUntil(h) is
  /// byte-identical to continueUntil(h).
  void continueUntil(sim::TimePoint until);

  /// Advances to the run horizon (last workload request + drain).
  void runToEnd();

  /// The run horizon; meaningful after beginRun()/run().
  sim::TimePoint horizonTime() const { return horizon_; }

  /// Swaps the rebroadcast policy mid-run (checkpoint-resume studies: run
  /// the tail of a checkpointed run under a different scheme). Broadcasts
  /// already in flight keep their old deciders — the retired policy stays
  /// alive for the world's lifetime because live deciders hold references
  /// into it — while every broadcast originated after the swap uses the new
  /// scheme.
  void overrideScheme(const SchemeSpec& spec);

  /// Serializes the complete world state at the current simulated time to
  /// `path` (defined in src/ckpt). Throws ckpt::Error on I/O failure.
  void checkpoint(const std::string& path) const;

  /// Rebuilds a world from a checkpoint written by checkpoint(): replays
  /// deterministically to the anchor and verifies the replayed state matches
  /// the stored image field-for-field (throws ckpt::Error otherwise). The
  /// returned world is mid-run: continue it with continueUntil()/runToEnd().
  static std::unique_ptr<World> resume(const std::string& path);

  /// Starts the periodic agents (HELLO) without scheduling any workload;
  /// lets tests drive broadcasts manually through host(id).
  void startAgents();

  // --- component access (used by tests, examples, and Host) ---
  sim::Scheduler& scheduler() { return scheduler_; }
  phy::Channel& channel() { return channel_; }
  stats::MetricsCollector& metrics() { return metrics_; }
  const ScenarioConfig& config() const { return config_; }
  const core::RebroadcastPolicy& policy() const { return *policy_; }
  Host& host(net::HostId id) { return *hosts_[id.value()]; }
  std::size_t hostCount() const { return hosts_.size(); }

  /// e for a broadcast starting now at `source` (unit-disk BFS snapshot).
  /// Crashed hosts neither count nor relay.
  int reachableFrom(net::HostId source) const;

  // --- fault injection (DESIGN.md §8) ---
  /// Crashes (`up = false`) or recovers (`up = true`) a host mid-run:
  /// detaches/reattaches it on the channel, resets its MAC and neighbor
  /// state, and emits kHostDown/kHostUp (plus per-flushed-frame kDrop)
  /// trace events. No-op when the host is already in the requested state.
  void setHostUp(net::HostId id, bool up);
  bool hostUp(net::HostId id) const { return hosts_[id.value()]->up(); }

  /// Total host-seconds spent crashed so far (hosts still down accrue up to
  /// the current simulation time).
  double hostDownSeconds() const;

  /// The installed link loss model (nullptr when loss is off).
  const fault::LossModel* lossModel() const { return lossModel_.get(); }

  /// The crash/recover timeline the run will replay (built in run(); empty
  /// before that or when churn is off).
  const std::vector<fault::ChurnEvent>& churnTimeline() const {
    return churnTimeline_;
  }

  /// Oracle neighborhood queries (true geometry at the current instant).
  int oracleNeighborCount(net::HostId id) const;
  std::vector<net::HostId> oracleNeighbors(net::HostId id) const;

  // --- traffic workload (DESIGN.md §12) ---
  /// The (time, source, seq) request schedule the run injects, built by the
  /// traffic generator in run(); empty before that. Request seq values are
  /// the per-broadcast sequence ids of the workload stream.
  const std::vector<traffic::Request>& workloadSchedule() const {
    return workloadSchedule_;
  }

  /// Installs an event trace sink (observational only: enabling tracing
  /// never changes the run). Must outlive the world. Pass nullptr to stop.
  void setTraceSink(trace::TraceSink* sink) { traceSink_ = sink; }
  trace::TraceSink* traceSink() const { return traceSink_; }

  /// This world's packet arena (DESIGN.md §11); installed as the thread's
  /// current pool for the world's lifetime, unless pooling is disabled.
  net::PacketPool& packetPool() { return packetPool_; }

  /// The shard coordinator when this world runs sharded (DESIGN.md §15),
  /// nullptr in serial mode (config.shards/MANET_SHARDS resolved to 1, or
  /// the map is too narrow for more than one strip).
  const sim::shard::Coordinator* shardCoordinator() const {
    return shards_.get();
  }

 private:
  friend struct manet::ckpt::StateAccess;

  void scheduleWorkload();
  void scheduleChurn();
  /// Window loop of the sharded clock (DESIGN.md §15): advances to `until`
  /// in lookahead-bounded slices with a mailbox barrier between them.
  /// Byte-identical to scheduler_.runUntil(until) by the runUntil
  /// composition contract.
  void windowedRunUntil(sim::TimePoint until);
  std::vector<std::unique_ptr<mobility::MobilityModel>> buildMobility(
      const mobility::MapSpec& map, sim::Rng& master);

#if MANET_AUDIT_ENABLED
  /// Audited builds (§9): registered as the thread's audit sink for this
  /// world's lifetime. Mirrors every violation into the trace stream as a
  /// kAuditViolation event (when a sink is installed), then forwards to the
  /// previously registered sink — by default the print-and-abort one, or a
  /// test's capturing sink. Declared first so it outlives the channel's
  /// teardown ledger check.
  class AuditBridge final : public audit::Sink {
   public:
    explicit AuditBridge(World& world)
        : world_(world), previous_(audit::setSink(this)) {}
    ~AuditBridge() override { audit::setSink(previous_); }
    AuditBridge(const AuditBridge&) = delete;
    AuditBridge& operator=(const AuditBridge&) = delete;
    void onViolation(const audit::Violation& violation) override;

   private:
    World& world_;
    audit::Sink* previous_;
  };
  AuditBridge auditBridge_{*this};
#endif

  ScenarioConfig config_;  // resolved, MANET_FAULT_*/_TRAFFIC_* applied
  /// Packet arena + its thread-install scope. Declared before every
  /// component that allocates packets; the scope uninstalls first on
  /// destruction, and outstanding packets keep the arena state refcounted.
  net::PacketPool packetPool_;
  net::PacketPool::Scope packetScope_{
      net::PacketPool::enabled() ? &packetPool_ : nullptr};
  sim::Scheduler scheduler_;
  phy::Channel channel_;
  /// Sharded-execution coordinator; non-null only when the resolved shard
  /// count exceeds 1. Declared after channel_ (which holds a raw observer
  /// pointer but never dereferences it during teardown).
  std::unique_ptr<sim::shard::Coordinator> shards_;
  stats::MetricsCollector metrics_;
  std::unique_ptr<core::RebroadcastPolicy> policy_;
  /// Policies displaced by overrideScheme(); kept alive because deciders of
  /// in-flight broadcasts hold references into them.
  std::vector<std::unique_ptr<core::RebroadcastPolicy>> retiredPolicies_;
  std::vector<std::unique_ptr<Host>> hosts_;
  sim::Rng workloadRng_;
  sim::TimePoint horizon_{};
  bool ran_ = false;
  trace::TraceSink* traceSink_ = nullptr;

  std::unique_ptr<fault::LossModel> lossModel_;
  std::vector<fault::ChurnEvent> churnTimeline_;
  std::vector<traffic::Request> workloadSchedule_;
  std::vector<sim::TimePoint> downSince_;  // per host; kNever when up
  std::vector<sim::Duration> downAccum_;  // per host; completed down spans
};

}  // namespace manet::experiment
