#include "experiment/scenario.hpp"

#include "util/assert.hpp"

namespace manet::experiment {

ScenarioConfig ScenarioConfig::resolved() const {
  ScenarioConfig out = *this;
  MANET_EXPECTS(out.mapUnits >= 1);
  MANET_EXPECTS(out.numHosts >= 1);
  MANET_EXPECTS(out.numBroadcasts >= 0);
  MANET_EXPECTS(out.jitterSlots >= 0);

  if (!out.fixedPositions.empty()) {
    out.numHosts = static_cast<int>(out.fixedPositions.size());
  }

  if (out.traffic.arrival == traffic::TrafficConfig::Arrival::kReplay) {
    out.numBroadcasts = static_cast<int>(out.traffic.replay.size());
  }

  if (out.maxSpeedKmh < 0.0) {
    // Paper: "the maximum speed is 10 km/hour in the 1x1 map, 30 km/hour in
    // the 3x3 map, 50 km/hour in the 5x5 map, etc." — i.e. 10*N km/h.
    out.maxSpeedKmh = 10.0 * out.mapUnits;
  }

  if (out.neighborSource == NeighborSource::kHello &&
      out.scheme.needsNeighborInfo()) {
    out.hello.enabled = true;
    if (out.scheme.needsTwoHopInfo()) out.hello.piggybackNeighbors = true;
  }

  if (out.warmup < sim::Duration{}) {
    if (out.hello.enabled) {
      const sim::Duration interval =
          out.hello.dynamic ? out.hello.intervalMax : out.hello.interval;
      out.warmup = 2 * interval + 1 * sim::kSecond;
    } else {
      out.warmup = 100 * sim::kMillisecond;
    }
  }
  return out;
}

}  // namespace manet::experiment
