#include "experiment/scheme_spec.hpp"

#include "util/assert.hpp"

namespace manet::experiment {

SchemeSpec SchemeSpec::flooding() {
  SchemeSpec s;
  s.type = Type::kFlooding;
  return s;
}

SchemeSpec SchemeSpec::probabilistic(double p) {
  SchemeSpec s;
  s.type = Type::kProbabilistic;
  s.probability = p;
  return s;
}

SchemeSpec SchemeSpec::counter(int c) {
  SchemeSpec s;
  s.type = Type::kCounter;
  s.counterC = c;
  return s;
}

SchemeSpec SchemeSpec::distance(double dMeters) {
  SchemeSpec s;
  s.type = Type::kDistance;
  s.distanceD = dMeters;
  return s;
}

SchemeSpec SchemeSpec::location(double a) {
  SchemeSpec s;
  s.type = Type::kLocation;
  s.areaA = a;
  return s;
}

SchemeSpec SchemeSpec::adaptiveCounter(core::CounterThreshold fn,
                                       std::string label) {
  SchemeSpec s;
  s.type = Type::kAdaptiveCounter;
  s.counterFn = std::move(fn);
  s.label = std::move(label);
  return s;
}

SchemeSpec SchemeSpec::adaptiveLocation(core::AreaThreshold fn,
                                        std::string label) {
  SchemeSpec s;
  s.type = Type::kAdaptiveLocation;
  s.areaFn = std::move(fn);
  s.label = std::move(label);
  return s;
}

SchemeSpec SchemeSpec::neighborCoverage() {
  SchemeSpec s;
  s.type = Type::kNeighborCoverage;
  return s;
}

SchemeSpec SchemeSpec::clusterBased(int innerCounter) {
  SchemeSpec s;
  s.type = Type::kCluster;
  s.clusterInnerCounter = innerCounter;
  return s;
}

std::unique_ptr<core::RebroadcastPolicy> SchemeSpec::build() const {
  switch (type) {
    case Type::kFlooding:
      return std::make_unique<core::FloodingPolicy>();
    case Type::kProbabilistic:
      return std::make_unique<core::ProbabilisticPolicy>(probability);
    case Type::kCounter:
      return std::make_unique<core::CounterPolicy>(counterC);
    case Type::kDistance:
      return std::make_unique<core::DistancePolicy>(distanceD);
    case Type::kLocation:
      return std::make_unique<core::LocationPolicy>(areaA);
    case Type::kAdaptiveCounter:
      return std::make_unique<core::AdaptiveCounterPolicy>(
          counterFn, label.empty() ? "AC" : label);
    case Type::kAdaptiveLocation:
      return std::make_unique<core::AdaptiveLocationPolicy>(
          areaFn, label.empty() ? "AL" : label);
    case Type::kNeighborCoverage:
      return std::make_unique<core::NeighborCoveragePolicy>();
    case Type::kCluster:
      return std::make_unique<cluster::ClusterPolicy>(clusterInnerCounter);
  }
  MANET_ASSERT(false);
  return nullptr;
}

std::string SchemeSpec::name() const {
  if (!label.empty()) return label;
  return build()->name();
}

bool SchemeSpec::needsNeighborInfo() const {
  switch (type) {
    case Type::kAdaptiveCounter:
    case Type::kAdaptiveLocation:
    case Type::kNeighborCoverage:
    case Type::kCluster:
      return true;
    default:
      return false;
  }
}

bool SchemeSpec::needsTwoHopInfo() const {
  return type == Type::kNeighborCoverage || type == Type::kCluster;
}

}  // namespace manet::experiment
