#include "experiment/runner.hpp"

#include "experiment/world.hpp"
#include "util/assert.hpp"

namespace manet::experiment {

RunResult runScenario(const ScenarioConfig& config) {
  World world(config);
  world.run();

  RunResult out;
  out.summary = world.metrics().summarize();
  out.schemeName = config.scheme.name();
  out.simulatedSeconds = sim::toSeconds(world.scheduler().now());
  out.framesTransmitted = world.channel().framesTransmitted();
  out.framesDelivered = world.channel().framesDelivered();
  out.framesCorrupted = world.channel().framesCorrupted();
  if (out.simulatedSeconds > 0.0 && world.hostCount() > 0) {
    out.hellosPerHostPerSecond =
        static_cast<double>(out.summary.hellosSent) /
        (out.simulatedSeconds * static_cast<double>(world.hostCount()));
  }
  return out;
}

RunResult runScenarioAveraged(const ScenarioConfig& config, int repetitions) {
  MANET_EXPECTS(repetitions >= 1);
  RunResult pooled;
  double re = 0.0;
  double srb = 0.0;
  double latency = 0.0;
  double helloRate = 0.0;
  for (int i = 0; i < repetitions; ++i) {
    ScenarioConfig c = config;
    c.seed = config.seed + static_cast<std::uint64_t>(i);
    RunResult r = runScenario(c);
    re += r.re();
    srb += r.srb();
    latency += r.latency();
    helloRate += r.hellosPerHostPerSecond;
    pooled.summary.broadcasts += r.summary.broadcasts;
    pooled.summary.hellosSent += r.summary.hellosSent;
    pooled.summary.dataFramesSent += r.summary.dataFramesSent;
    pooled.framesTransmitted += r.framesTransmitted;
    pooled.framesDelivered += r.framesDelivered;
    pooled.framesCorrupted += r.framesCorrupted;
    pooled.simulatedSeconds += r.simulatedSeconds;
    pooled.schemeName = r.schemeName;
  }
  pooled.summary.meanRe = re / repetitions;
  pooled.summary.meanSrb = srb / repetitions;
  pooled.summary.meanLatencySeconds = latency / repetitions;
  pooled.hellosPerHostPerSecond = helloRate / repetitions;
  return pooled;
}

}  // namespace manet::experiment
