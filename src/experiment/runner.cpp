#include "experiment/runner.hpp"

#include <chrono>
#include <utility>

#include "experiment/parallel.hpp"
#include "experiment/world.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "util/assert.hpp"

namespace manet::experiment {

namespace {
WorldRunFn& runOverrideSlot() {
  static WorldRunFn fn;
  return fn;
}
}  // namespace

void setWorldRunOverride(WorldRunFn fn) { runOverrideSlot() = std::move(fn); }

const WorldRunFn& worldRunOverride() { return runOverrideSlot(); }

RunResult runScenario(const ScenarioConfig& config) {
  const auto wallStart = std::chrono::steady_clock::now();
  // Each repetition owns a private registry, installed on the running
  // thread for the duration of the run (parallel repetitions each own
  // their thread, so there is no sharing).
  std::shared_ptr<obs::Registry> metrics;
  if (obs::collectionEnabled()) metrics = std::make_shared<obs::Registry>();
  obs::ScopedRegistry scoped(metrics.get());

  // The override path (checkpoint cycles) builds and finishes the world
  // itself inside the run scope; the scope *structure* stays identical to
  // the direct path so profile-scope trees match across modes.
  const WorldRunFn& runOverride = worldRunOverride();
  std::unique_ptr<World> world;
  {
    obs::ProfileScope profileBuild("scenario.build");
    if (runOverride == nullptr) world = std::make_unique<World>(config);
  }
  {
    obs::ProfileScope profileRun("scenario.run");
    if (runOverride != nullptr) {
      world = runOverride(config);
    } else {
      world->run();
    }
  }

  obs::ProfileScope profileCollect("scenario.collect");
  // Per-broadcast delivery accounting (DESIGN.md §12): fold the run's
  // per-broadcast records into the traffic.* metric family. This happens on
  // the run's thread with its private registry installed, in broadcast
  // order, so merged registries stay byte-identical for any MANET_THREADS.
  if (obs::Registry* registry = obs::current()) {
    for (const stats::PerBroadcast& b : world->metrics().broadcasts()) {
      registry->add(obs::Counter::kTrafficCompleted);
      registry->add(obs::Counter::kTrafficDeliveredCopies,
                    static_cast<std::uint64_t>(b.received));
      registry->add(obs::Counter::kTrafficReachableSum,
                    static_cast<std::uint64_t>(b.reachable));
      registry->observe(
          obs::Hist::kTrafficLatencyUs,
          static_cast<double>(
              (b.lastFinal - b.start).ticks()));  // NOLINT-units(metric sample in raw microseconds)
      registry->observe(obs::Hist::kTrafficDeliveryPct,
                        100.0 * b.reachability());
    }
  }
  RunResult out;
  out.seed = config.seed;
  out.summary = world->metrics().summarize();
  out.offeredBroadcasts = world->workloadSchedule().size();
  if (!world->workloadSchedule().empty()) {
    out.offeredWindowSeconds = sim::toSeconds(
        world->workloadSchedule().back().at - world->config().warmup);
  }
  out.schemeName = config.scheme.name();
  out.simulatedSeconds = sim::toSeconds(world->scheduler().now());
  out.framesTransmitted = world->channel().framesTransmitted();
  out.framesDelivered = world->channel().framesDelivered();
  out.framesCorrupted = world->channel().framesCorrupted();
  out.faultsEnabled = world->config().fault.enabled();
  out.framesLostToFault = world->channel().framesLostToFault();
  out.framesDroppedHostDown = world->channel().framesDroppedHostDown();
  out.hostDownSeconds = world->hostDownSeconds();
  if (out.simulatedSeconds > 0.0 && world->hostCount() > 0) {
    out.hellosPerHostPerSecond =
        static_cast<double>(out.summary.hellosSent) /
        (out.simulatedSeconds * static_cast<double>(world->hostCount()));
  }
  out.wallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wallStart)
          .count();
  out.metrics = std::move(metrics);
  return out;
}

RunResult poolRuns(const std::vector<RunResult>& runs) {
  MANET_EXPECTS(!runs.empty());
  RunResult pooled;
  double re = 0.0;
  double srb = 0.0;
  double latency = 0.0;
  double helloRate = 0.0;
  for (const RunResult& r : runs) {
    re += r.re();
    srb += r.srb();
    latency += r.latency();
    helloRate += r.hellosPerHostPerSecond;
    pooled.summary.broadcasts += r.summary.broadcasts;
    pooled.summary.hellosSent += r.summary.hellosSent;
    pooled.summary.dataFramesSent += r.summary.dataFramesSent;
    pooled.summary.totalReceived += r.summary.totalReceived;
    pooled.summary.totalRebroadcast += r.summary.totalRebroadcast;
    pooled.summary.totalReachable += r.summary.totalReachable;
    pooled.offeredBroadcasts += r.offeredBroadcasts;
    pooled.offeredWindowSeconds += r.offeredWindowSeconds;
    pooled.framesTransmitted += r.framesTransmitted;
    pooled.framesDelivered += r.framesDelivered;
    pooled.framesCorrupted += r.framesCorrupted;
    pooled.faultsEnabled = pooled.faultsEnabled || r.faultsEnabled;
    pooled.framesLostToFault += r.framesLostToFault;
    pooled.framesDroppedHostDown += r.framesDroppedHostDown;
    pooled.hostDownSeconds += r.hostDownSeconds;
    pooled.simulatedSeconds += r.simulatedSeconds;
    pooled.wallSeconds += r.wallSeconds;
    pooled.schemeName = r.schemeName;
    // Ordered merge: `runs` is in repetition order, so the pooled registry
    // (histogram float sums included) is identical for any thread count.
    if (r.metrics != nullptr) {
      if (pooled.metrics == nullptr) {
        pooled.metrics = std::make_shared<obs::Registry>();
      }
      pooled.metrics->merge(*r.metrics);
    }
  }
  pooled.seed = runs.front().seed;
  const auto n = static_cast<double>(runs.size());
  pooled.summary.meanRe = re / n;
  pooled.summary.meanSrb = srb / n;
  pooled.summary.meanLatencySeconds = latency / n;
  pooled.hellosPerHostPerSecond = helloRate / n;
  return pooled;
}

RunResult runScenarioAveraged(const ScenarioConfig& config, int repetitions,
                              int threads) {
  MANET_EXPECTS(repetitions >= 1);
  std::vector<RunResult> runs(static_cast<std::size_t>(repetitions));
  parallelFor(
      static_cast<std::size_t>(repetitions),
      [&config, &runs](std::size_t i) {
        ScenarioConfig c = config;
        c.seed = config.seed + static_cast<std::uint64_t>(i);
        runs[i] = runScenario(c);
      },
      threads);
  return poolRuns(runs);
}

obs::RunSample toRunSample(std::string label, const RunResult& result) {
  obs::RunSample s;
  s.label = std::move(label);
  s.scheme = result.schemeName;
  s.seed = result.seed;
  s.re = result.re();
  s.srb = result.srb();
  s.latencySeconds = result.latency();
  s.hellosPerHostPerSecond = result.hellosPerHostPerSecond;
  s.broadcasts = result.summary.broadcasts;
  s.offeredBroadcasts = result.offeredBroadcasts;
  s.framesTransmitted = result.framesTransmitted;
  s.framesDelivered = result.framesDelivered;
  s.framesCorrupted = result.framesCorrupted;
  s.simulatedSeconds = result.simulatedSeconds;
  s.wallSeconds = result.wallSeconds;
  s.framesPerWallSecond = result.framesPerWallSecond();
  s.metrics = result.metrics;
  return s;
}

}  // namespace manet::experiment
