#include "experiment/runner.hpp"

#include <chrono>

#include "experiment/parallel.hpp"
#include "experiment/world.hpp"
#include "util/assert.hpp"

namespace manet::experiment {

RunResult runScenario(const ScenarioConfig& config) {
  const auto wallStart = std::chrono::steady_clock::now();
  World world(config);
  world.run();

  RunResult out;
  out.summary = world.metrics().summarize();
  out.schemeName = config.scheme.name();
  out.simulatedSeconds = sim::toSeconds(world.scheduler().now());
  out.framesTransmitted = world.channel().framesTransmitted();
  out.framesDelivered = world.channel().framesDelivered();
  out.framesCorrupted = world.channel().framesCorrupted();
  out.faultsEnabled = world.config().fault.enabled();
  out.framesLostToFault = world.channel().framesLostToFault();
  out.framesDroppedHostDown = world.channel().framesDroppedHostDown();
  out.hostDownSeconds = world.hostDownSeconds();
  if (out.simulatedSeconds > 0.0 && world.hostCount() > 0) {
    out.hellosPerHostPerSecond =
        static_cast<double>(out.summary.hellosSent) /
        (out.simulatedSeconds * static_cast<double>(world.hostCount()));
  }
  out.wallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wallStart)
          .count();
  return out;
}

RunResult poolRuns(const std::vector<RunResult>& runs) {
  MANET_EXPECTS(!runs.empty());
  RunResult pooled;
  double re = 0.0;
  double srb = 0.0;
  double latency = 0.0;
  double helloRate = 0.0;
  for (const RunResult& r : runs) {
    re += r.re();
    srb += r.srb();
    latency += r.latency();
    helloRate += r.hellosPerHostPerSecond;
    pooled.summary.broadcasts += r.summary.broadcasts;
    pooled.summary.hellosSent += r.summary.hellosSent;
    pooled.summary.dataFramesSent += r.summary.dataFramesSent;
    pooled.summary.totalReceived += r.summary.totalReceived;
    pooled.summary.totalRebroadcast += r.summary.totalRebroadcast;
    pooled.summary.totalReachable += r.summary.totalReachable;
    pooled.framesTransmitted += r.framesTransmitted;
    pooled.framesDelivered += r.framesDelivered;
    pooled.framesCorrupted += r.framesCorrupted;
    pooled.faultsEnabled = pooled.faultsEnabled || r.faultsEnabled;
    pooled.framesLostToFault += r.framesLostToFault;
    pooled.framesDroppedHostDown += r.framesDroppedHostDown;
    pooled.hostDownSeconds += r.hostDownSeconds;
    pooled.simulatedSeconds += r.simulatedSeconds;
    pooled.wallSeconds += r.wallSeconds;
    pooled.schemeName = r.schemeName;
  }
  const auto n = static_cast<double>(runs.size());
  pooled.summary.meanRe = re / n;
  pooled.summary.meanSrb = srb / n;
  pooled.summary.meanLatencySeconds = latency / n;
  pooled.hellosPerHostPerSecond = helloRate / n;
  return pooled;
}

RunResult runScenarioAveraged(const ScenarioConfig& config, int repetitions,
                              int threads) {
  MANET_EXPECTS(repetitions >= 1);
  std::vector<RunResult> runs(static_cast<std::size_t>(repetitions));
  parallelFor(
      static_cast<std::size_t>(repetitions),
      [&config, &runs](std::size_t i) {
        ScenarioConfig c = config;
        c.seed = config.seed + static_cast<std::uint64_t>(i);
        runs[i] = runScenario(c);
      },
      threads);
  return poolRuns(runs);
}

}  // namespace manet::experiment
