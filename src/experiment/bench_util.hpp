// Shared scaffolding for the figure-reproduction benches: environment-based
// scaling so `bench/*` runs in seconds by default and at paper scale with
//   REPRO_BROADCASTS=10000 REPRO_REPS=3 ./bench/fig13_overall
#pragma once

#include <cstdint>
#include <vector>

#include "experiment/scenario.hpp"

namespace manet::experiment {

struct BenchScale {
  int broadcasts;        // REPRO_BROADCASTS (paper: 10,000)
  int repetitions;       // REPRO_REPS: seeds averaged per data point
  std::uint64_t seed;    // REPRO_SEED
  int numHosts;          // REPRO_HOSTS (paper: 100)
};

/// Reads the scaling knobs, with per-bench defaults.
BenchScale benchScale(int defaultBroadcasts = 60, int defaultReps = 1,
                      int defaultHosts = 100);

/// Applies a BenchScale onto a scenario.
void applyScale(ScenarioConfig& config, const BenchScale& scale);

/// The paper's map-size sweep {1,3,5,7,9,11}.
const std::vector<int>& paperMapSizes();

}  // namespace manet::experiment
