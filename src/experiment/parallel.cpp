#include "experiment/parallel.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/env.hpp"

namespace manet::experiment {

int defaultThreadCount() {
  const std::int64_t fromEnv = util::envInt("MANET_THREADS", 0);
  if (fromEnv >= 1) {
    return static_cast<int>(std::min<std::int64_t>(fromEnv, 256));
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int>(hw) : 1;
}

WorkerPool::WorkerPool(int threads) {
  const int count = std::max(1, threads);
  workers_.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  workReady_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void WorkerPool::submit(std::function<void()> job) {
  MANET_EXPECTS(job != nullptr);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    MANET_EXPECTS(!stopping_);
    queue_.push(std::move(job));
    ++inFlight_;
  }
  workReady_.notify_one();
}

void WorkerPool::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  allDone_.wait(lock, [this] { return inFlight_ == 0; });
  if (firstError_) {
    std::exception_ptr err = firstError_;
    firstError_ = nullptr;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void WorkerPool::workerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    workReady_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stopping_ and drained
    std::function<void()> job = std::move(queue_.front());
    queue_.pop();
    lock.unlock();
    try {
      job();
    } catch (...) {
      lock.lock();
      if (!firstError_) firstError_ = std::current_exception();
      lock.unlock();
    }
    lock.lock();
    if (--inFlight_ == 0) allDone_.notify_all();
  }
}

void parallelFor(std::size_t n, const std::function<void(std::size_t)>& fn,
                 int threads) {
  MANET_EXPECTS(fn != nullptr);
  if (threads <= 0) threads = defaultThreadCount();
  if (threads == 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  WorkerPool pool(static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(threads), n)));
  for (std::size_t i = 0; i < n; ++i) {
    pool.submit([&fn, i] { fn(i); });
  }
  pool.wait();
}

}  // namespace manet::experiment
