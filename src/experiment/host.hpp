// One mobile host: mobility + MAC + HELLO agent + per-broadcast protocol
// state machine. Owns the S1-S5 skeleton every scheme shares (see
// core/policy.hpp); the scheme itself is a PacketDecider.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>

#include "core/policy.hpp"
#include "mac/dcf.hpp"
#include "mobility/model.hpp"
#include "net/hello.hpp"
#include "net/neighbor_table.hpp"
#include "net/packet.hpp"
#include "sim/random.hpp"
#include "trace/event.hpp"

namespace manet::ckpt {
struct StateAccess;
}

namespace manet::experiment {

class World;
class Host;

/// Application layered on top of a host: sees delivered packets and may send
/// its own traffic through the host. All hooks default to no-ops.
class HostApp {
 public:
  virtual ~HostApp() = default;
  /// An application broadcast arrived (first intact copy at this host).
  virtual void onBroadcastDelivered(Host& host, const net::Packet& packet) {
    (void)host;
    (void)packet;
  }
  /// This host originated a broadcast of its own.
  virtual void onBroadcastOriginated(Host& host, const net::Packet& packet) {
    (void)host;
    (void)packet;
  }
  /// A unicast data packet addressed to this host arrived.
  virtual void onUnicastDelivered(Host& host, const net::Packet& packet) {
    (void)host;
    (void)packet;
  }
  /// Verdict of a unicast this host sent (acknowledged or dropped).
  virtual void onUnicastOutcome(Host& host, const net::Packet& packet,
                                bool delivered) {
    (void)host;
    (void)packet;
    (void)delivered;
  }
};

class Host final : public mac::DcfMac::Upper, public core::HostView {
 public:
  Host(World& world, net::HostId id,
       std::unique_ptr<mobility::MobilityModel> mobility, sim::Rng rng);
  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  /// Starts periodic agents (HELLO). Call once before the run.
  void start();

  /// Host churn (DESIGN.md §8). A crash is a cold reboot: every queued frame
  /// and timer is dropped, the MAC resets, and the neighbor table plus all
  /// per-broadcast memory is forgotten — a recovered host treats copies it
  /// saw before the crash as brand-new receptions. Recovery restarts the
  /// HELLO agent. The world flips the channel's node state; these hooks only
  /// manage host-local state.
  void onCrash();
  void onRecover();
  bool up() const { return up_; }

  /// Originates a brand-new broadcast from this host (a "broadcast request"
  /// of the workload). Returns its identity.
  net::BroadcastId originateBroadcast();

  /// Originates a broadcast carrying an application payload; `mutate` may
  /// fill the app fields of the fresh packet (bid/sender are pre-set).
  net::BroadcastId originateBroadcast(
      const std::function<void(net::Packet&)>& mutate);

  /// Sends a unicast data packet (acknowledged/retried by the MAC).
  mac::DcfMac::TxId sendUnicast(net::HostId dest, net::PacketPtr packet,
                                std::size_t bytes);

  /// Attaches an application (not owned; may be null to detach).
  void setApp(HostApp* app) { app_ = app; }

  /// The world's scheduler (for application timers).
  sim::Scheduler& scheduler();

  mobility::MobilityModel& mobility() { return *mobility_; }
  net::NeighborTable& table() { return table_; }
  mac::DcfMac& mac() { return *mac_; }
  const net::HelloAgent& helloAgent() const { return *hello_; }

  /// Terminal protocol state of this host for `bid` (for tests/inspection).
  enum class PacketPhase { kUnseen, kJitter, kQueued, kSent, kInhibited, kSource };
  PacketPhase phaseOf(net::BroadcastId bid) const;

  // --- mac::DcfMac::Upper ---
  void onTxStarted(mac::DcfMac::TxId id, const net::Packet& packet) override;
  void onTxFinished(mac::DcfMac::TxId id, const net::Packet& packet) override;
  void onReceive(const phy::Frame& frame) override;
  void onCorruptedFrame(const phy::Frame& frame,
                        phy::DropReason reason) override;
  void onUnicastOutcome(mac::DcfMac::TxId id, const net::Packet& packet,
                        bool delivered) override;

  // --- core::HostView ---
  net::HostId id() const override { return id_; }
  int neighborCount() const override;
  std::vector<net::HostId> neighborIds() const override;
  std::optional<std::vector<net::HostId>> neighborsOf(
      net::HostId h) const override;
  geom::Vec2 position() const override;
  double radius() const override;
  sim::Rng& rng() override { return schemeRng_; }
  sim::TimePoint now() const override;

 private:
  friend struct manet::ckpt::StateAccess;
  struct BroadcastState {
    PacketPhase phase = PacketPhase::kUnseen;
    std::unique_ptr<core::PacketDecider> decider;
    sim::Scheduler::Handle jitterTimer;
    mac::DcfMac::TxId txId = mac::DcfMac::kInvalidTx;
    net::PacketPtr packet;  // what we would rebroadcast
  };

  void handleData(const phy::Frame& frame);
  void handleFirstReception(net::BroadcastId bid, const core::Reception& rx,
                            const net::PacketPtr& packet);
  void handleDuplicate(BroadcastState& state, net::BroadcastId bid,
                       const core::Reception& rx);
  void submitToMac(net::BroadcastId bid);
  void inhibit(BroadcastState& state, net::BroadcastId bid);
  void emitTrace(trace::EventKind kind, net::BroadcastId bid,
                 net::HostId from = net::kInvalidHost,
                 phy::DropReason drop = phy::DropReason::kNone);

  World& world_;
  net::HostId id_;
  std::unique_ptr<mobility::MobilityModel> mobility_;
  sim::Rng schemeRng_;
  sim::Rng jitterRng_;
  // mutable: table queries purge expired entries lazily, which is not
  // observable state from the HostView's point of view.
  mutable net::NeighborTable table_;
  std::unique_ptr<mac::DcfMac> mac_;
  std::unique_ptr<net::HelloAgent> hello_;
  net::BroadcastSeq nextSeq_{};  // survives crashes: bids stay unique
  bool up_ = true;
  HostApp* app_ = nullptr;
  std::unordered_map<net::BroadcastId, BroadcastState, net::BroadcastIdHash>
      states_;
};

}  // namespace manet::experiment
