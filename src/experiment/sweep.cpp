#include "experiment/sweep.hpp"

#include "util/assert.hpp"

namespace manet::experiment {

SweepAxis schemeAxis(std::vector<SchemeSpec> schemes) {
  SweepAxis axis;
  axis.name = "scheme";
  for (auto& scheme : schemes) {
    const std::string label = scheme.name();
    axis.values.push_back({label, [scheme](ScenarioConfig& c) {
                             c.scheme = scheme;
                           }});
  }
  return axis;
}

SweepAxis mapAxis(std::vector<int> mapUnits) {
  SweepAxis axis;
  axis.name = "map";
  for (int units : mapUnits) {
    axis.values.push_back(
        {std::to_string(units) + "x" + std::to_string(units),
         [units](ScenarioConfig& c) { c.mapUnits = units; }});
  }
  return axis;
}

SweepAxis speedAxis(std::vector<double> kmh) {
  SweepAxis axis;
  axis.name = "speed(km/h)";
  for (double v : kmh) {
    axis.values.push_back({util::fmt(v, 0), [v](ScenarioConfig& c) {
                             c.maxSpeedKmh = v;
                           }});
  }
  return axis;
}

SweepAxis seedAxis(std::vector<std::uint64_t> seeds) {
  SweepAxis axis;
  axis.name = "seed";
  for (std::uint64_t s : seeds) {
    axis.values.push_back({std::to_string(s), [s](ScenarioConfig& c) {
                             c.seed = s;
                           }});
  }
  return axis;
}

namespace {

void recurse(const ScenarioConfig& base, const std::vector<SweepAxis>& axes,
             std::size_t depth, std::vector<std::string>& coordinates,
             ScenarioConfig& current, int repetitions,
             std::vector<SweepCell>& out) {
  if (depth == axes.size()) {
    SweepCell cell;
    cell.coordinates = coordinates;
    cell.result = repetitions > 1 ? runScenarioAveraged(current, repetitions)
                                  : runScenario(current);
    out.push_back(std::move(cell));
    return;
  }
  for (const auto& value : axes[depth].values) {
    ScenarioConfig next = current;
    value.apply(next);
    coordinates.push_back(value.label);
    recurse(base, axes, depth + 1, coordinates, next, repetitions, out);
    coordinates.pop_back();
  }
}

}  // namespace

std::vector<SweepCell> runSweep(const ScenarioConfig& base,
                                const std::vector<SweepAxis>& axes,
                                int repetitions) {
  MANET_EXPECTS(repetitions >= 1);
  for (const auto& axis : axes) MANET_EXPECTS(!axis.values.empty());
  std::vector<SweepCell> out;
  std::vector<std::string> coordinates;
  ScenarioConfig current = base;
  recurse(base, axes, 0, coordinates, current, repetitions, out);
  return out;
}

util::Table sweepTable(const std::vector<SweepAxis>& axes,
                       const std::vector<SweepCell>& cells) {
  std::vector<std::string> header;
  for (const auto& axis : axes) header.push_back(axis.name);
  header.insert(header.end(),
                {"RE", "SRB", "latency(s)", "hello/host/s"});
  util::Table table(header);
  for (const auto& cell : cells) {
    std::vector<std::string> row = cell.coordinates;
    row.push_back(util::fmt(cell.result.re(), 3));
    row.push_back(util::fmt(cell.result.srb(), 3));
    row.push_back(util::fmt(cell.result.latency(), 4));
    row.push_back(util::fmt(cell.result.hellosPerHostPerSecond, 2));
    table.addRow(std::move(row));
  }
  return table;
}

}  // namespace manet::experiment
