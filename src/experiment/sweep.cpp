#include "experiment/sweep.hpp"

#include "experiment/parallel.hpp"
#include "util/assert.hpp"

namespace manet::experiment {

SweepAxis schemeAxis(std::vector<SchemeSpec> schemes) {
  SweepAxis axis;
  axis.name = "scheme";
  for (auto& scheme : schemes) {
    const std::string label = scheme.name();
    axis.values.push_back({label, [scheme](ScenarioConfig& c) {
                             c.scheme = scheme;
                           }});
  }
  return axis;
}

SweepAxis mapAxis(std::vector<int> mapUnits) {
  SweepAxis axis;
  axis.name = "map";
  for (int units : mapUnits) {
    axis.values.push_back(
        {std::to_string(units) + "x" + std::to_string(units),
         [units](ScenarioConfig& c) { c.mapUnits = units; }});
  }
  return axis;
}

SweepAxis speedAxis(std::vector<double> kmh) {
  SweepAxis axis;
  axis.name = "speed(km/h)";
  for (double v : kmh) {
    axis.values.push_back({util::fmt(v, 0), [v](ScenarioConfig& c) {
                             c.maxSpeedKmh = v;
                           }});
  }
  return axis;
}

SweepAxis seedAxis(std::vector<std::uint64_t> seeds) {
  SweepAxis axis;
  axis.name = "seed";
  for (std::uint64_t s : seeds) {
    axis.values.push_back({std::to_string(s), [s](ScenarioConfig& c) {
                             c.seed = s;
                           }});
  }
  return axis;
}

namespace {

/// One cell of the cartesian product before execution: its coordinate labels
/// and the axis values to apply (borrowed from `axes`, one per axis).
struct CellSpec {
  std::vector<std::string> coordinates;
  std::vector<const SweepAxis::Value*> values;
};

/// Enumerates the cartesian product in the serial order (inner axis varies
/// fastest) without copying any ScenarioConfig: each cell later applies its
/// value chain onto a single fresh copy of the base config.
std::vector<CellSpec> materializeCells(const std::vector<SweepAxis>& axes) {
  std::vector<CellSpec> cells;
  std::size_t total = 1;
  for (const auto& axis : axes) total *= axis.values.size();
  cells.reserve(total);

  CellSpec current;
  current.coordinates.reserve(axes.size());
  current.values.reserve(axes.size());
  const std::function<void(std::size_t)> recurse = [&](std::size_t depth) {
    if (depth == axes.size()) {
      cells.push_back(current);
      return;
    }
    for (const auto& value : axes[depth].values) {
      current.coordinates.push_back(value.label);
      current.values.push_back(&value);
      recurse(depth + 1);
      current.coordinates.pop_back();
      current.values.pop_back();
    }
  };
  recurse(0);
  return cells;
}

ScenarioConfig cellConfig(const ScenarioConfig& base, const CellSpec& cell) {
  ScenarioConfig config = base;
  for (const SweepAxis::Value* value : cell.values) value->apply(config);
  return config;
}

}  // namespace

std::vector<SweepCell> runSweep(const ScenarioConfig& base,
                                const std::vector<SweepAxis>& axes,
                                int repetitions, int threads) {
  MANET_EXPECTS(repetitions >= 1);
  for (const auto& axis : axes) MANET_EXPECTS(!axis.values.empty());

  const std::vector<CellSpec> cells = materializeCells(axes);
  const std::size_t reps = static_cast<std::size_t>(repetitions);

  // Fan the work out at (cell, repetition) granularity so a sweep with few
  // cells but many repetitions still fills the pool. Every job owns its
  // whole simulator; the slots below are the only shared writes, disjoint
  // per job.
  std::vector<std::vector<RunResult>> runs(cells.size());
  for (auto& r : runs) r.resize(reps);
  parallelFor(
      cells.size() * reps,
      [&](std::size_t job) {
        const std::size_t cellIdx = job / reps;
        const std::size_t rep = job % reps;
        ScenarioConfig config = cellConfig(base, cells[cellIdx]);
        config.seed += static_cast<std::uint64_t>(rep);
        runs[cellIdx][rep] = runScenario(config);
      },
      threads);

  std::vector<SweepCell> out;
  out.reserve(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    SweepCell cell;
    cell.coordinates = cells[i].coordinates;
    // Match the serial single-run path exactly: only pool when averaging
    // (pooling a single run would drop its percentile/CI fields).
    cell.result = repetitions > 1 ? poolRuns(runs[i])
                                  : std::move(runs[i][0]);
    out.push_back(std::move(cell));
  }
  return out;
}

util::Table sweepTable(const std::vector<SweepAxis>& axes,
                       const std::vector<SweepCell>& cells) {
  // Fault columns appear only when some cell actually ran with faults, so
  // the golden fault-free tables are byte-identical to before the fault
  // subsystem existed.
  bool anyFaults = false;
  for (const auto& cell : cells) anyFaults |= cell.result.faultsEnabled;

  std::vector<std::string> header;
  for (const auto& axis : axes) header.push_back(axis.name);
  header.insert(header.end(),
                {"RE", "SRB", "latency(s)", "hello/host/s"});
  if (anyFaults) {
    header.insert(header.end(), {"lost", "down-drop", "down(s)"});
  }
  util::Table table(header);
  for (const auto& cell : cells) {
    std::vector<std::string> row = cell.coordinates;
    row.push_back(util::fmt(cell.result.re(), 3));
    row.push_back(util::fmt(cell.result.srb(), 3));
    row.push_back(util::fmt(cell.result.latency(), 4));
    row.push_back(util::fmt(cell.result.hellosPerHostPerSecond, 2));
    if (anyFaults) {
      row.push_back(std::to_string(cell.result.framesLostToFault));
      row.push_back(std::to_string(cell.result.framesDroppedHostDown));
      row.push_back(util::fmt(cell.result.hostDownSeconds, 1));
    }
    table.addRow(std::move(row));
  }
  return table;
}

}  // namespace manet::experiment
