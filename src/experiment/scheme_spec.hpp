// Value-type description of a broadcast scheme, used by scenario configs and
// bench sweeps; `build()` turns it into the polymorphic policy object.
#pragma once

#include <memory>
#include <string>

#include "cluster/policy.hpp"
#include "core/policies.hpp"
#include "core/threshold.hpp"

namespace manet::experiment {

struct SchemeSpec {
  enum class Type {
    kFlooding,
    kProbabilistic,
    kCounter,
    kDistance,
    kLocation,
    kAdaptiveCounter,
    kAdaptiveLocation,
    kNeighborCoverage,
    kCluster,  // from Ni et al. [15]; extension beyond this paper's figures
  };

  Type type = Type::kFlooding;
  double probability = 1.0;                                  // kProbabilistic
  int counterC = 3;                                          // kCounter
  double distanceD = 0.0;                                    // kDistance
  double areaA = 0.0134;                                     // kLocation
  core::CounterThreshold counterFn =
      core::CounterThreshold::suggested();                   // kAdaptiveCounter
  core::AreaThreshold areaFn = core::AreaThreshold::suggested();  // kAdaptiveLocation
  int clusterInnerCounter = 3;                               // kCluster
  std::string label;  // overrides the default name when non-empty

  // ---- factories (one per scheme the paper evaluates) ----
  static SchemeSpec flooding();
  static SchemeSpec probabilistic(double p);
  static SchemeSpec counter(int c);
  static SchemeSpec distance(double dMeters);
  static SchemeSpec location(double a);
  static SchemeSpec adaptiveCounter(
      core::CounterThreshold fn = core::CounterThreshold::suggested(),
      std::string label = "AC");
  static SchemeSpec adaptiveLocation(
      core::AreaThreshold fn = core::AreaThreshold::suggested(),
      std::string label = "AL");
  static SchemeSpec neighborCoverage();
  static SchemeSpec clusterBased(int innerCounter = 3);

  /// Instantiates the policy object shared by all hosts of a run.
  std::unique_ptr<core::RebroadcastPolicy> build() const;

  /// Display name ("AC", "C=2", "A=0.0134", ...).
  std::string name() const;

  /// True for the schemes that consult |N_x| or neighbor sets.
  bool needsNeighborInfo() const;

  /// True for neighbor coverage, which additionally needs N_{x,h}.
  bool needsTwoHopInfo() const;
};

}  // namespace manet::experiment
