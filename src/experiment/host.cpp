#include "experiment/host.hpp"

#include <utility>

#include "audit/audit.hpp"
#include "experiment/world.hpp"
#include "sim/inline_fn.hpp"
#include "util/assert.hpp"

#if MANET_AUDIT_ENABLED
#include "audit/invariants.hpp"
#endif

namespace manet::experiment {

Host::Host(World& world, net::HostId id,
           std::unique_ptr<mobility::MobilityModel> mobility, sim::Rng rng)
    : world_(world),
      id_(id),
      mobility_(std::move(mobility)),
      schemeRng_(rng.fork(1)),
      jitterRng_(rng.fork(2)) {
  MANET_EXPECTS(mobility_ != nullptr);
  auto& scheduler = world_.scheduler();
  mac_ = std::make_unique<mac::DcfMac>(
      scheduler, world_.channel(), id_,
      [this, &scheduler] { return mobility_->positionAt(scheduler.now()); },
      rng.fork(3), world_.config().mac, this);
  hello_ = std::make_unique<net::HelloAgent>(scheduler, *mac_, table_,
                                             world_.config().hello,
                                             rng.fork(4));
}

void Host::start() { hello_->start(); }

void Host::onCrash() {
  MANET_EXPECTS(up_);
  up_ = false;
  hello_->stop();
  // NOLINT-determinism(cancel-only pass; the map is cleared right after)
  for (auto& [bid, state] : states_) state.jitterTimer.cancel();
  states_.clear();
  mac_->reset();
  table_.clear();
  // Flush consistency: a cold reboot must leave no duplicate-cache entries,
  // queued frames, or learned neighbors behind (DESIGN.md §8).
  MANET_AUDIT_HOOK(audit::ChurnAudit{}.onCrashReset(
      id_, mac_->quiescent(), states_.empty(),
      table_.neighborCount(now()) == 0, now()));
}

void Host::onRecover() {
  MANET_EXPECTS(!up_);
  up_ = true;
  hello_->start();
}

net::BroadcastId Host::originateBroadcast() {
  return originateBroadcast([](net::Packet&) {});
}

net::BroadcastId Host::originateBroadcast(
    const std::function<void(net::Packet&)>& mutate) {
  const net::BroadcastId bid{id_, nextSeq_};
  nextSeq_ = nextSeq_.next();
  MANET_ASSERT(!states_.contains(bid));
  BroadcastState& state = states_[bid];
  state.phase = PacketPhase::kSource;
  auto packet = net::makePacket();
  packet->type = net::PacketType::kData;
  packet->sender = id_;
  packet->bid = bid;
  mutate(*packet);
  state.packet = std::move(packet);
  world_.metrics().onBroadcastStart(bid, id_, now(), world_.reachableFrom(id_));
  emitTrace(trace::EventKind::kBroadcastOriginated, bid);
  if (app_ != nullptr) app_->onBroadcastOriginated(*this, *state.packet);
  state.txId = mac_->enqueue(state.packet, net::kDataPacketBytes);
  return bid;
}

mac::DcfMac::TxId Host::sendUnicast(net::HostId dest, net::PacketPtr packet,
                                    std::size_t bytes) {
  return mac_->enqueueUnicast(dest, std::move(packet), bytes);
}

Host::PacketPhase Host::phaseOf(net::BroadcastId bid) const {
  auto it = states_.find(bid);
  return it == states_.end() ? PacketPhase::kUnseen : it->second.phase;
}

void Host::onReceive(const phy::Frame& frame) {
  const net::Packet& packet = *frame.packet;
  switch (packet.type) {
    case net::PacketType::kHello:
      table_.onHello(packet.sender, packet, now());
      return;
    case net::PacketType::kData:
      handleData(frame);
      return;
    case net::PacketType::kRts:
    case net::PacketType::kCts:
    case net::PacketType::kAck:
      return;  // control frames are consumed by the MAC, never surfaced
  }
}

void Host::handleData(const phy::Frame& frame) {
  const net::Packet& packet = *frame.packet;
  if (packet.dest != net::kInvalidHost) {
    // Unicast data is application traffic, not a propagating broadcast: it
    // bypasses the suppression state machine entirely.
    if (app_ != nullptr) app_->onUnicastDelivered(*this, packet);
    return;
  }
  const core::Reception rx{packet.sender, frame.srcPos, now()};
  auto it = states_.find(packet.bid);
  if (it == states_.end()) {
    handleFirstReception(packet.bid, rx, frame.packet);
  } else {
    handleDuplicate(it->second, packet.bid, rx);
  }
}

void Host::handleFirstReception(net::BroadcastId bid,
                                const core::Reception& rx,
                                const net::PacketPtr& packet) {
  world_.metrics().onDelivered(bid, id_, now(), packet->hopCount + 1);
  emitTrace(trace::EventKind::kDelivered, bid, rx.from);
  if (app_ != nullptr) app_->onBroadcastDelivered(*this, *packet);
  BroadcastState& state = states_[bid];
  // Rebroadcast the same payload under the same (origin, seq) identity,
  // with ourselves as the relaying sender; route requests additionally
  // accumulate the relay path (DSR-style, the paper's footnote 1).
  auto copy = net::makePacket(*packet);
  copy->sender = id_;
  copy->hopCount = static_cast<std::uint16_t>(packet->hopCount + 1);
  if (copy->appKind == net::Packet::AppKind::kRouteRequest) {
    copy->appPath.push_back(id_);
  }
  state.packet = std::move(copy);
  state.decider = world_.policy().makeDecider(*this, rx);

  if (!state.decider->shouldProceed(*this)) {
    // S1 -> S5: inhibited before even entering the jitter wait.
    inhibit(state, bid);
    return;
  }
  // S2: wait a random number (0..jitterSlots) of slots, then hand to the MAC.
  state.phase = PacketPhase::kJitter;
  // The draw is a dimensionless slot count (0..jitterSlots), scaled by the
  // slot duration — uniformInt keeps the draw stream identical to the old
  // uniformTime call, which was the same raw draw mislabeled as a time.
  const sim::Duration jitter =
      jitterRng_.uniformInt(0, world_.config().jitterSlots) *
      world_.config().mac.slot;
  auto jitterCb = [this, bid] { submitToMac(bid); };
  static_assert(sim::InlineFn::storesInline<decltype(jitterCb)>(),
                "rebroadcast-jitter capture must fit the event node");
  state.jitterTimer =
      world_.scheduler().scheduleAfter(jitter, std::move(jitterCb));
}

void Host::submitToMac(net::BroadcastId bid) {
  auto it = states_.find(bid);
  MANET_ASSERT(it != states_.end());
  BroadcastState& state = it->second;
  MANET_ASSERT(state.phase == PacketPhase::kJitter);
  state.phase = PacketPhase::kQueued;
  state.txId = mac_->enqueue(state.packet, net::kDataPacketBytes);
}

void Host::handleDuplicate(BroadcastState& state, net::BroadcastId bid,
                           const core::Reception& rx) {
  switch (state.phase) {
    case PacketPhase::kJitter:
    case PacketPhase::kQueued:
      emitTrace(trace::EventKind::kDuplicateHeard, bid, rx.from);
      // S4: let the scheme re-assess redundancy.
      if (!state.decider->onDuplicate(*this, rx)) {
        inhibit(state, bid);
      }
      return;
    case PacketPhase::kSent:
    case PacketPhase::kInhibited:
    case PacketPhase::kSource:
      emitTrace(trace::EventKind::kDuplicateHeard, bid, rx.from);
      return;  // terminal; a host rebroadcasts at most once (§2.1)
    case PacketPhase::kUnseen:
      MANET_ASSERT(false);
      return;
  }
}

void Host::inhibit(BroadcastState& state, net::BroadcastId bid) {
  // S5: cancel whatever stage of waiting we were in.
  state.jitterTimer.cancel();
  if (state.txId != mac::DcfMac::kInvalidTx) {
    const bool cancelled = mac_->cancel(state.txId);
    // A queued frame is always still cancellable here: the MAC notifies us
    // synchronously at transmission start, flipping the phase to kSent first.
    MANET_ASSERT(cancelled);
    state.txId = mac::DcfMac::kInvalidTx;
  }
  state.phase = PacketPhase::kInhibited;
  state.decider.reset();
  world_.metrics().onFinalized(bid, id_, now());
  emitTrace(trace::EventKind::kInhibited, bid);
}

void Host::onTxStarted(mac::DcfMac::TxId, const net::Packet& packet) {
  if (packet.type != net::PacketType::kData) return;
  if (packet.dest != net::kInvalidHost) return;  // app unicast, not a flood
  emitTrace(trace::EventKind::kTxStarted, packet.bid);
  auto it = states_.find(packet.bid);
  MANET_ASSERT(it != states_.end());
  BroadcastState& state = it->second;
  if (state.phase == PacketPhase::kQueued) {
    // S3: the rebroadcast is on the air; the decision is final.
    state.phase = PacketPhase::kSent;
    state.decider.reset();
    world_.metrics().onRebroadcast(packet.bid, id_, now());
  }
  // kSource: the initial transmission is not a REbroadcast; nothing to count.
}

void Host::onTxFinished(mac::DcfMac::TxId, const net::Packet& packet) {
  if (packet.type == net::PacketType::kHello) {
    world_.metrics().onHelloSent(id_);
    emitTrace(trace::EventKind::kHelloSent, net::BroadcastId{});
    return;
  }
  if (packet.dest != net::kInvalidHost) return;  // app unicast
  world_.metrics().onFinalized(packet.bid, id_, now());
  emitTrace(trace::EventKind::kTxFinished, packet.bid);
}

void Host::onUnicastOutcome(mac::DcfMac::TxId, const net::Packet& packet,
                            bool delivered) {
  if (app_ != nullptr) app_->onUnicastOutcome(*this, packet, delivered);
}

void Host::onCorruptedFrame(const phy::Frame& frame, phy::DropReason reason) {
  if (world_.traceSink() == nullptr) return;
  const net::Packet& packet = *frame.packet;
  emitTrace(trace::EventKind::kDrop,
            packet.type == net::PacketType::kData ? packet.bid
                                                  : net::BroadcastId{},
            packet.sender, reason);
}

void Host::emitTrace(trace::EventKind kind, net::BroadcastId bid,
                     net::HostId from, phy::DropReason drop) {
  trace::TraceSink* sink = world_.traceSink();
  if (sink == nullptr) return;
  trace::Event event;
  event.kind = kind;
  event.at = now();
  event.node = id_;
  event.bid = bid;
  event.from = from;
  event.position = position();
  event.drop = drop;
  sink->onEvent(event);
}

int Host::neighborCount() const {
  if (world_.config().neighborSource == NeighborSource::kOracle) {
    return world_.oracleNeighborCount(id_);
  }
  return table_.neighborCount(now());
}

std::vector<net::HostId> Host::neighborIds() const {
  if (world_.config().neighborSource == NeighborSource::kOracle) {
    return world_.oracleNeighbors(id_);
  }
  return table_.neighborIds(now());
}

std::optional<std::vector<net::HostId>> Host::neighborsOf(
    net::HostId h) const {
  if (world_.config().neighborSource == NeighborSource::kOracle) {
    return world_.oracleNeighbors(h);
  }
  return table_.neighborsOf(h, now());
}

geom::Vec2 Host::position() const { return mobility_->positionAt(now()); }

double Host::radius() const { return world_.config().phy.radiusMeters; }

sim::TimePoint Host::now() const { return world_.scheduler().now(); }

sim::Scheduler& Host::scheduler() { return world_.scheduler(); }

}  // namespace manet::experiment
