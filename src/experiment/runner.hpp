// One-call scenario execution with the derived quantities the figures need.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "experiment/scenario.hpp"
#include "stats/metrics.hpp"

namespace manet::experiment {

struct RunResult {
  stats::RunSummary summary;
  /// HELLO traffic rate, packets per host per simulated second (Fig. 12b's
  /// y-axis up to a normalization).
  double hellosPerHostPerSecond = 0.0;
  /// Channel-level accounting over the whole run.
  std::uint64_t framesTransmitted = 0;
  std::uint64_t framesDelivered = 0;
  std::uint64_t framesCorrupted = 0;
  double simulatedSeconds = 0.0;
  std::string schemeName;

  double re() const { return summary.meanRe; }
  double srb() const { return summary.meanSrb; }
  double latency() const { return summary.meanLatencySeconds; }
};

/// Builds a World from `config`, runs it to completion, and extracts results.
RunResult runScenario(const ScenarioConfig& config);

/// Averages `repetitions` runs of the same scenario over distinct seeds
/// (seed, seed+1, ...). Returns the per-run results plus a pooled result in
/// which RE/SRB/latency are arithmetic means across runs.
RunResult runScenarioAveraged(const ScenarioConfig& config, int repetitions);

}  // namespace manet::experiment
