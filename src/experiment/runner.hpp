// One-call scenario execution with the derived quantities the figures need.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "experiment/scenario.hpp"
#include "obs/report.hpp"
#include "stats/metrics.hpp"

namespace manet::experiment {

class World;

/// Replacement for the build-world-and-run() core of runScenario: takes the
/// scenario config and returns a world already run to completion. The
/// checkpoint subsystem installs one to route every bench scenario through a
/// capture/resume cycle (--checkpoint-at); result extraction, metrics
/// folding, and pooling are unchanged, so an override that finishes in the
/// same final state yields byte-identical reports.
using WorldRunFn =
    std::function<std::unique_ptr<World>(const ScenarioConfig& config)>;

/// Installs (or, with nullptr, clears) the process-wide run override.
/// Install before worker threads start (bench mains do this while
/// single-threaded); the function itself must be thread-safe, as parallel
/// repetitions call it concurrently.
void setWorldRunOverride(WorldRunFn fn);
const WorldRunFn& worldRunOverride();

struct RunResult {
  stats::RunSummary summary;
  /// Seed of the (first) repetition, echoed into run reports.
  std::uint64_t seed = 0;
  /// Engine metrics collected during the run; null unless collection was on
  /// (MANET_METRICS / obs::forceCollection). Pooled results own the ordered
  /// merge of every repetition's registry.
  std::shared_ptr<obs::Registry> metrics;
  /// HELLO traffic rate, packets per host per simulated second (Fig. 12b's
  /// y-axis up to a normalization).
  double hellosPerHostPerSecond = 0.0;
  /// Broadcast requests the traffic generator scheduled (DESIGN.md §12).
  /// Under churn this can exceed summary.broadcasts: a request whose source
  /// was down at fire time is offered load that never completed.
  std::uint64_t offeredBroadcasts = 0;
  /// Injection window: simulated seconds from workload start (end of warmup)
  /// to the last scheduled request — the denominator of the offered rate
  /// (the run's total simulatedSeconds also counts warmup and drain).
  double offeredWindowSeconds = 0.0;
  /// Channel-level accounting over the whole run.
  std::uint64_t framesTransmitted = 0;
  std::uint64_t framesDelivered = 0;
  std::uint64_t framesCorrupted = 0;
  // Fault injection (zero and inert when faults are off).
  bool faultsEnabled = false;
  std::uint64_t framesLostToFault = 0;      // injected link loss
  std::uint64_t framesDroppedHostDown = 0;  // receptions cut off by a crash
  double hostDownSeconds = 0.0;             // summed host-seconds spent down
  double simulatedSeconds = 0.0;
  /// Host wall-clock time spent simulating (summed across repetitions in
  /// pooled results, so it stays meaningful under parallel execution).
  double wallSeconds = 0.0;
  std::string schemeName;

  // The paper's metrics: means of per-broadcast ratios (mean of r_i/e_i,
  // etc.). Every figure bench reports these — they match the paper's
  // per-broadcast averaging, and for pooled results they are the
  // mean-of-means across repetitions.
  double re() const { return summary.meanRe; }
  double srb() const { return summary.meanSrb; }
  double latency() const { return summary.meanLatencySeconds; }

  // Pooled-count variants recomputed from raw r/t/e totals: sum(r)/sum(e)
  // and (sum(r)-sum(t))/sum(r). These weight every broadcast by its audience
  // size instead of equally; reported nowhere by default, available for
  // studies that want ratio-of-sums alongside the mean-of-ratios above.
  double pooledRe() const {
    return summary.totalReachable > 0
               ? static_cast<double>(summary.totalReceived) /
                     static_cast<double>(summary.totalReachable)
               : 0.0;
  }
  double pooledSrb() const {
    return summary.totalReceived > 0
               ? static_cast<double>(summary.totalReceived -
                                     summary.totalRebroadcast) /
                     static_cast<double>(summary.totalReceived)
               : 0.0;
  }

  /// Offered load in requests per simulated second over the injection
  /// window (the ext_load x-axis).
  double offeredPerSecond() const {
    return offeredWindowSeconds > 0.0
               ? static_cast<double>(offeredBroadcasts) / offeredWindowSeconds
               : 0.0;
  }

  /// Simulation throughput: channel frames processed per wall-clock second.
  /// The headline number for the grid/parallel speedups (BENCH json output).
  double framesPerWallSecond() const {
    return wallSeconds > 0.0
               ? static_cast<double>(framesTransmitted) / wallSeconds
               : 0.0;
  }
};

/// Builds a World from `config`, runs it to completion, and extracts results.
RunResult runScenario(const ScenarioConfig& config);

/// Pools per-repetition results: RE/SRB/latency/hello-rate become arithmetic
/// means across runs (the figures' numbers); counts (broadcasts, frames,
/// raw r/t/e, wall-clock) are summed. `runs` must be non-empty and ordered
/// by repetition so float accumulation is deterministic.
RunResult poolRuns(const std::vector<RunResult>& runs);

/// Averages `repetitions` runs of the same scenario over distinct seeds
/// (seed, seed+1, ...), optionally across `threads` workers (0 = auto via
/// MANET_THREADS / hardware concurrency). Each repetition owns a private
/// World/Scheduler/RNG seeded exactly as the serial path; results are pooled
/// in repetition order, so the outcome is identical for any thread count.
RunResult runScenarioAveraged(const ScenarioConfig& config, int repetitions,
                              int threads = 1);

/// Flattens a RunResult into the run-report row obs::writeReport serializes.
obs::RunSample toRunSample(std::string label, const RunResult& result);

}  // namespace manet::experiment
