// Cartesian parameter sweeps: run a scenario across schemes x maps x speeds
// (or any custom axis) and collect results in one table, optionally as CSV.
// The figure benches hand-roll their loops to match the paper's exact
// panels; this utility is the general-purpose tool for new studies.
//
// Execution is parallel by default (threads = 0 resolves via MANET_THREADS /
// hardware concurrency): every (cell, repetition) pair is an independent job
// with its own World/Scheduler/RNG seeded exactly as the serial path, and
// results are reassembled in cell-major, repetition-minor order — so the
// sweep output is identical for any thread count.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "experiment/runner.hpp"
#include "experiment/scenario.hpp"
#include "util/table.hpp"

namespace manet::experiment {

/// One sweep axis: a label plus a config mutation per value.
struct SweepAxis {
  std::string name;
  struct Value {
    std::string label;
    std::function<void(ScenarioConfig&)> apply;
  };
  std::vector<Value> values;
};

/// Builders for the common axes.
SweepAxis schemeAxis(std::vector<SchemeSpec> schemes);
SweepAxis mapAxis(std::vector<int> mapUnits);
SweepAxis speedAxis(std::vector<double> kmh);
SweepAxis seedAxis(std::vector<std::uint64_t> seeds);

/// Result of one sweep cell.
struct SweepCell {
  std::vector<std::string> coordinates;  // one label per axis, in order
  RunResult result;
};

/// Runs the cartesian product of all axes over `base` (axes applied in
/// order, so later axes win on conflicting fields). `repetitions` averages
/// each cell over consecutive seeds. `threads`: 0 = auto, 1 = serial.
std::vector<SweepCell> runSweep(const ScenarioConfig& base,
                                const std::vector<SweepAxis>& axes,
                                int repetitions = 1, int threads = 0);

/// Formats sweep results as an aligned table with one row per cell and
/// columns: axes..., RE, SRB, latency(s), hello/host/s.
util::Table sweepTable(const std::vector<SweepAxis>& axes,
                       const std::vector<SweepCell>& cells);

}  // namespace manet::experiment
