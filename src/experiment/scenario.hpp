// Scenario configuration: the knobs of the paper's experimental setup (§4)
// with the paper's values as defaults.
#pragma once

#include <cstdint>
#include <vector>

#include "experiment/scheme_spec.hpp"
#include "fault/config.hpp"
#include "geom/vec2.hpp"
#include "mac/dcf.hpp"
#include "net/hello.hpp"
#include "phy/params.hpp"
#include "sim/time.hpp"
#include "traffic/config.hpp"

namespace manet::experiment {

/// Where the adaptive schemes get their neighborhood knowledge.
enum class NeighborSource {
  /// True geometric neighborhoods, always current. Matches the assumption
  /// under which the paper tunes C(n)/A(n) (§4.1-4.2).
  kOracle,
  /// HELLO-derived tables with staleness — what Figs. 11-13 study.
  kHello,
};

struct ScenarioConfig {
  // --- topology (paper §4) ---
  int mapUnits = 5;             // N of the N x N map
  double unitMeters = 500.0;    // one transmission radius per unit
  int numHosts = 100;
  /// Max roaming speed; < 0 selects the paper's rule of 10*N km/h on an
  /// N x N map.
  double maxSpeedKmh = -1.0;

  /// When non-empty, overrides random placement: hosts sit at exactly these
  /// positions and never move (numHosts is forced to the list size). Used by
  /// tests and examples that need controlled topologies.
  std::vector<geom::Vec2> fixedPositions;

  /// Mobility pattern. kRandomRoam is the paper's model; kWaypoint and
  /// kGroup (teams moving together, RPGM) are provided for the motivating
  /// scenarios and sensitivity studies.
  enum class Mobility { kRandomRoam, kWaypoint, kGroup };
  Mobility mobility = Mobility::kRandomRoam;
  int groupSize = 5;               // kGroup: hosts per team
  double groupSpanMeters = 200.0;  // kGroup: team spread radius

  // --- scheme under test ---
  SchemeSpec scheme = SchemeSpec::flooding();
  NeighborSource neighborSource = NeighborSource::kOracle;
  net::HelloConfig hello{.enabled = false};

  // --- workload ---
  int numBroadcasts = 100;                       // paper: 10,000
  sim::Duration interarrivalMax =
      2 * sim::kSecond;  // U(0, 2 s) between requests
  /// Workload generation (DESIGN.md §12): arrival process x source model.
  /// The default (Uniform arrivals from uniform sources) is bit-identical to
  /// the paper's single workload; interarrivalMax above parameterizes it.
  /// The world additionally applies MANET_TRAFFIC_* environment overrides at
  /// construction. kReplay forces numBroadcasts to the script size.
  traffic::TrafficConfig traffic{};
  /// Simulated time before the first broadcast (lets HELLO tables fill).
  /// < 0 selects an automatic value (2 hello intervals + 1 s, or 100 ms when
  /// hellos are off).
  sim::Duration warmup{-1};
  /// Simulated time after the last request before the run is cut off.
  sim::Duration drain = 10 * sim::kSecond;

  // --- protocol details ---
  phy::PhyParams phy{};
  mac::MacParams mac{};
  int jitterSlots = 31;     // S2: wait U(0, jitterSlots) slots before MAC
  bool collisions = true;   // ablation hook: false = perfect PHY
  /// Range queries through the channel's spatial grid (default) or the
  /// exhaustive scan. Identical results either way — the switch exists for
  /// differential tests and perf comparisons (also: MANET_CHANNEL_GRID=0).
  bool channelGrid = true;

  /// Intra-run sharded execution (DESIGN.md §15): number of spatial region
  /// shards for the conservative-lookahead window loop and the shard worker
  /// pool. 0 = auto (MANET_SHARDS environment override, default 1); 1 runs
  /// serial. Like MANET_THREADS this is an execution mode, not simulation
  /// semantics: every value produces byte-identical tables, traces, metrics
  /// registries (modulo the engine.shard.* counter family) and checkpoints,
  /// and the knob is not serialized into checkpoint images. Requests wider
  /// than the map supports (strip width >= radio radius) are clamped.
  int shards = 0;

  /// Fault injection (DESIGN.md §8): link loss models and host churn. Off by
  /// default; a disabled config is bit-identical to the fault-free
  /// simulator. The world additionally applies MANET_FAULT_* environment
  /// overrides at construction.
  fault::FaultConfig fault{};

  std::uint64_t seed = 1;

  /// Returns a copy with all "automatic" fields (speed, hello enablement,
  /// warmup) resolved to concrete values.
  ScenarioConfig resolved() const;

  /// Map side length in meters.
  double mapMeters() const { return mapUnits * unitMeters; }
};

}  // namespace manet::experiment
