#include "experiment/bench_util.hpp"

#include "util/env.hpp"

namespace manet::experiment {

BenchScale benchScale(int defaultBroadcasts, int defaultReps,
                      int defaultHosts) {
  BenchScale s;
  s.broadcasts = static_cast<int>(
      util::envInt("REPRO_BROADCASTS", defaultBroadcasts));
  s.repetitions = static_cast<int>(util::envInt("REPRO_REPS", defaultReps));
  s.seed = static_cast<std::uint64_t>(util::envInt("REPRO_SEED", 42));
  s.numHosts = static_cast<int>(util::envInt("REPRO_HOSTS", defaultHosts));
  return s;
}

void applyScale(ScenarioConfig& config, const BenchScale& scale) {
  config.numBroadcasts = scale.broadcasts;
  config.seed = scale.seed;
  config.numHosts = scale.numHosts;
}

const std::vector<int>& paperMapSizes() {
  static const std::vector<int> sizes{1, 3, 5, 7, 9, 11};
  return sizes;
}

}  // namespace manet::experiment
