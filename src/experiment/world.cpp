#include "experiment/world.hpp"

#include <algorithm>

#include "mobility/group.hpp"
#include "mobility/random_roam.hpp"
#include "mobility/waypoint.hpp"
#include "stats/connectivity.hpp"
#include "util/assert.hpp"
#include "util/env.hpp"

namespace manet::experiment {

World::World(const ScenarioConfig& config)
    : config_(config.resolved()),
      channel_(scheduler_, config_.phy),
      metrics_(static_cast<std::size_t>(config_.numHosts)),
      policy_(config_.scheme.build()),
      workloadRng_(sim::Rng(config_.seed).fork(0xF00D)) {
  channel_.setCollisionsEnabled(config_.collisions);
  channel_.setGridEnabled(config_.channelGrid &&
                          util::envInt("MANET_CHANNEL_GRID", 1) != 0);

  const mobility::MapSpec map =
      mobility::MapSpec::square(config_.mapUnits, config_.unitMeters);
  sim::Rng master(config_.seed);
  std::vector<std::unique_ptr<mobility::MobilityModel>> models =
      buildMobility(map, master);
  MANET_ASSERT(models.size() == static_cast<std::size_t>(config_.numHosts));
  hosts_.reserve(static_cast<std::size_t>(config_.numHosts));
  for (int i = 0; i < config_.numHosts; ++i) {
    sim::Rng hostRng = master.fork(static_cast<std::uint64_t>(i) + 1);
    hosts_.push_back(std::make_unique<Host>(
        *this, static_cast<net::NodeId>(i),
        std::move(models[static_cast<std::size_t>(i)]), hostRng.fork(0xB0)));
  }
}

std::vector<std::unique_ptr<mobility::MobilityModel>> World::buildMobility(
    const mobility::MapSpec& map, sim::Rng& master) {
  std::vector<std::unique_ptr<mobility::MobilityModel>> models;
  models.reserve(static_cast<std::size_t>(config_.numHosts));

  if (!config_.fixedPositions.empty()) {
    for (const geom::Vec2& pos : config_.fixedPositions) {
      models.push_back(std::make_unique<mobility::Stationary>(pos));
    }
    return models;
  }

  const double maxSpeedMps = mobility::kmhToMps(config_.maxSpeedKmh);
  switch (config_.mobility) {
    case ScenarioConfig::Mobility::kRandomRoam:
      for (int i = 0; i < config_.numHosts; ++i) {
        sim::Rng rng = master.fork(0xA000 + static_cast<std::uint64_t>(i));
        mobility::RoamParams roam;
        roam.maxSpeedMps = maxSpeedMps;
        models.push_back(std::make_unique<mobility::RandomRoam>(
            map, map.uniformPoint(rng), roam, rng.fork(0xA0)));
      }
      break;
    case ScenarioConfig::Mobility::kWaypoint:
      for (int i = 0; i < config_.numHosts; ++i) {
        sim::Rng rng = master.fork(0xA000 + static_cast<std::uint64_t>(i));
        mobility::WaypointParams params;
        params.maxSpeedMps = std::max(params.minSpeedMps, maxSpeedMps);
        models.push_back(std::make_unique<mobility::RandomWaypoint>(
            map, map.uniformPoint(rng), params, rng.fork(0xA0)));
      }
      break;
    case ScenarioConfig::Mobility::kGroup: {
      MANET_EXPECTS(config_.groupSize >= 1);
      sim::Rng rng = master.fork(0xA000);
      int remaining = config_.numHosts;
      while (remaining > 0) {
        const int members = std::min(config_.groupSize, remaining);
        mobility::GroupParams params;
        params.center.maxSpeedMps = maxSpeedMps;
        params.spanMeters = config_.groupSpanMeters;
        auto group = mobility::makeGroup(map, map.uniformPoint(rng), members,
                                         params, rng);
        for (auto& model : group) models.push_back(std::move(model));
        remaining -= members;
      }
      break;
    }
  }
  return models;
}

void World::startAgents() {
  for (auto& host : hosts_) host->start();
}

int World::reachableFrom(net::NodeId source) const {
  return stats::reachableCount(channel_.snapshotPositions(),
                               config_.phy.radiusMeters, source);
}

int World::oracleNeighborCount(net::NodeId id) const {
  return static_cast<int>(channel_.inRangeCount(id));
}

std::vector<net::NodeId> World::oracleNeighbors(net::NodeId id) const {
  return channel_.nodesInRange(id);
}

void World::scheduleWorkload() {
  sim::Time at = config_.warmup;
  for (int i = 0; i < config_.numBroadcasts; ++i) {
    at += workloadRng_.uniformTime(0, config_.interarrivalMax);
    const auto source = static_cast<net::NodeId>(
        workloadRng_.uniformInt(0, config_.numHosts - 1));
    scheduler_.schedule(at, [this, source] {
      hosts_[source]->originateBroadcast();
    });
  }
  horizon_ = at + config_.drain;
}

void World::run() {
  MANET_EXPECTS(!ran_);
  ran_ = true;
  startAgents();
  scheduleWorkload();
  scheduler_.runUntil(horizon_);
}

}  // namespace manet::experiment
