#include "experiment/world.hpp"

#include <algorithm>

#include "mobility/group.hpp"
#include "mobility/random_roam.hpp"
#include "mobility/waypoint.hpp"
#include "obs/metrics.hpp"
#include "stats/connectivity.hpp"
#include "traffic/generator.hpp"
#include "util/assert.hpp"
#include "util/env.hpp"

namespace manet::experiment {

#if MANET_AUDIT_ENABLED
void World::AuditBridge::onViolation(const audit::Violation& violation) {
  if (world_.traceSink_ != nullptr) {
    trace::Event event;
    event.kind = trace::EventKind::kAuditViolation;
    event.at = violation.at;
    event.node = violation.node;
    world_.traceSink_->onEvent(event);
  }
  // Preserve fail-stop semantics: forward to whatever sink was registered
  // before this world (a test's capturing sink, an outer world's bridge, or
  // the default print-and-abort sink).
  audit::Sink& next =
      previous_ != nullptr ? *previous_ : audit::defaultSink();
  next.onViolation(violation);
}
#endif

World::World(const ScenarioConfig& config)
    : config_(config.resolved()),
      channel_(scheduler_, config_.phy),
      metrics_(static_cast<std::size_t>(config_.numHosts)),
      policy_(config_.scheme.build()),
      workloadRng_(sim::Rng(config_.seed).fork(0xF00D)) {
  channel_.setCollisionsEnabled(config_.collisions);
  channel_.setGridEnabled(config_.channelGrid &&
                          util::envInt("MANET_CHANNEL_GRID", 1) != 0);

  // Fault injection. Dedicated RNG streams (0xFA01 loss, 0xC4 churn) mean
  // enabling faults never shifts the draws of mobility, hosts, or workload.
  config_.fault = config_.fault.withEnvOverrides();
  config_.traffic = config_.traffic.withEnvOverrides();
  lossModel_ =
      fault::makeLossModel(config_.fault, sim::Rng(config_.seed).fork(0xFA01));
  if (lossModel_ != nullptr) {
    channel_.setLossFn([this](net::HostId src, net::HostId dst) {
      return lossModel_->shouldDrop(src, dst);
    });
  }
  downSince_.assign(static_cast<std::size_t>(config_.numHosts), sim::kNever);
  downAccum_.assign(static_cast<std::size_t>(config_.numHosts),
                    sim::Duration{});

  // Sharded execution (DESIGN.md §15). Like MANET_THREADS this is an
  // execution mode: resolved here (config wins, then the environment) and
  // never serialized, so a checkpoint resumes under whatever shard count
  // the resuming process asks for. The dedicated 0x5A4D fork keeps the
  // per-shard streams clear of every existing stream.
  const int shardRequest =
      config_.shards > 0 ? config_.shards : util::envInt("MANET_SHARDS", 1);
  MANET_EXPECTS(shardRequest >= 1);
  if (shardRequest > 1) {
    const sim::shard::Topology topology(shardRequest, config_.mapMeters(),
                                        config_.phy.radiusMeters);
    if (topology.shardCount() > 1) {
      shards_ = std::make_unique<sim::shard::Coordinator>(
          topology, config_.phy.minInteractionDelay(),
          sim::Rng(config_.seed).fork(0x5A4D));
      channel_.setShardObserver(shards_.get());
      channel_.setRangeExecutor(shards_.get());
    }
  }

  const mobility::MapSpec map =
      mobility::MapSpec::square(config_.mapUnits, config_.unitMeters);
  sim::Rng master(config_.seed);
  std::vector<std::unique_ptr<mobility::MobilityModel>> models =
      buildMobility(map, master);
  MANET_ASSERT(models.size() == static_cast<std::size_t>(config_.numHosts));
  hosts_.reserve(static_cast<std::size_t>(config_.numHosts));
  for (int i = 0; i < config_.numHosts; ++i) {
    sim::Rng hostRng = master.fork(static_cast<std::uint64_t>(i) + 1);
    hosts_.push_back(std::make_unique<Host>(
        *this, net::HostId{static_cast<std::uint32_t>(i)},
        std::move(models[static_cast<std::size_t>(i)]), hostRng.fork(0xB0)));
  }
}

std::vector<std::unique_ptr<mobility::MobilityModel>> World::buildMobility(
    const mobility::MapSpec& map, sim::Rng& master) {
  std::vector<std::unique_ptr<mobility::MobilityModel>> models;
  models.reserve(static_cast<std::size_t>(config_.numHosts));

  if (!config_.fixedPositions.empty()) {
    for (const geom::Vec2& pos : config_.fixedPositions) {
      models.push_back(std::make_unique<mobility::Stationary>(pos));
    }
    return models;
  }

  const double maxSpeedMps = mobility::kmhToMps(config_.maxSpeedKmh);
  switch (config_.mobility) {
    case ScenarioConfig::Mobility::kRandomRoam:
      for (int i = 0; i < config_.numHosts; ++i) {
        sim::Rng rng = master.fork(0xA000 + static_cast<std::uint64_t>(i));
        mobility::RoamParams roam;
        roam.maxSpeedMps = maxSpeedMps;
        models.push_back(std::make_unique<mobility::RandomRoam>(
            map, map.uniformPoint(rng), roam, rng.fork(0xA0)));
      }
      break;
    case ScenarioConfig::Mobility::kWaypoint:
      for (int i = 0; i < config_.numHosts; ++i) {
        sim::Rng rng = master.fork(0xA000 + static_cast<std::uint64_t>(i));
        mobility::WaypointParams params;
        params.maxSpeedMps = std::max(params.minSpeedMps, maxSpeedMps);
        models.push_back(std::make_unique<mobility::RandomWaypoint>(
            map, map.uniformPoint(rng), params, rng.fork(0xA0)));
      }
      break;
    case ScenarioConfig::Mobility::kGroup: {
      MANET_EXPECTS(config_.groupSize >= 1);
      sim::Rng rng = master.fork(0xA000);
      int remaining = config_.numHosts;
      while (remaining > 0) {
        const int members = std::min(config_.groupSize, remaining);
        mobility::GroupParams params;
        params.center.maxSpeedMps = maxSpeedMps;
        params.spanMeters = config_.groupSpanMeters;
        auto group = mobility::makeGroup(map, map.uniformPoint(rng), members,
                                         params, rng);
        for (auto& model : group) models.push_back(std::move(model));
        remaining -= members;
      }
      break;
    }
  }
  return models;
}

void World::startAgents() {
  for (auto& host : hosts_) host->start();
}

int World::reachableFrom(net::HostId source) const {
  // Crashed hosts sit at Vec2{} in the snapshot; mask them out of the BFS
  // whenever any host is actually down (churn config or manual setHostUp).
  bool anyDown = false;
  std::vector<bool> alive(hosts_.size());
  for (std::size_t i = 0; i < hosts_.size(); ++i) {
    alive[i] = hosts_[i]->up();
    anyDown |= !alive[i];
  }
  // In sharded mode the BFS levels fan out across the shard lanes; the
  // count is identical either way (stats::parallelReachable).
  return stats::reachableCount(channel_.snapshotPositions(),
                               anyDown ? &alive : nullptr,
                               config_.phy.radiusMeters, source.value(),
                               shards_.get());
}

void World::setHostUp(net::HostId id, bool up) {
  Host& host = *hosts_[id.value()];
  if (host.up() == up) return;
  const std::vector<phy::Frame> flushed = channel_.setNodeUp(id, up);
  if (!up) {
    host.onCrash();
    downSince_[id.value()] = scheduler_.now();
  } else {
    host.onRecover();
    downAccum_[id.value()] += scheduler_.now() - downSince_[id.value()];
    downSince_[id.value()] = sim::kNever;
  }
  if (traceSink_ == nullptr) return;
  trace::Event event;
  event.kind = up ? trace::EventKind::kHostUp : trace::EventKind::kHostDown;
  event.at = scheduler_.now();
  event.node = id;
  event.position = host.mobility().positionAt(scheduler_.now());
  traceSink_->onEvent(event);
  for (const phy::Frame& frame : flushed) {
    trace::Event dropEvent;
    dropEvent.kind = trace::EventKind::kDrop;
    dropEvent.at = scheduler_.now();
    dropEvent.node = id;
    if (frame.packet->type == net::PacketType::kData) {
      dropEvent.bid = frame.packet->bid;
    }
    dropEvent.from = frame.packet->sender;
    dropEvent.position = event.position;
    dropEvent.drop = phy::DropReason::kHostDown;
    traceSink_->onEvent(dropEvent);
  }
}

double World::hostDownSeconds() const {
  sim::Duration total{};
  for (std::size_t i = 0; i < hosts_.size(); ++i) {
    total += downAccum_[i];
    if (downSince_[i] != sim::kNever) {
      total += scheduler_.now() - downSince_[i];
    }
  }
  return sim::toSeconds(total);
}

int World::oracleNeighborCount(net::HostId id) const {
  return static_cast<int>(channel_.inRangeCount(id));
}

std::vector<net::HostId> World::oracleNeighbors(net::HostId id) const {
  return channel_.nodesInRange(id);
}

void World::scheduleWorkload() {
  // The kZone source model partitions hosts by their t=0 position; other
  // models never touch mobility, keeping the default path draw-identical to
  // the pre-subsystem inline loop.
  std::vector<geom::Vec2> initialPositions;
  if (config_.traffic.sources == traffic::TrafficConfig::Sources::kZone) {
    initialPositions.reserve(hosts_.size());
    for (const auto& host : hosts_) {
      initialPositions.push_back(host->mobility().positionAt(sim::kTimeZero));
    }
  }
  const traffic::Generator generator(config_.traffic, config_.numHosts,
                                     config_.interarrivalMax,
                                     std::move(initialPositions),
                                     config_.mapMeters());
  const sim::TimePoint workloadStart = sim::kTimeZero + config_.warmup;
  workloadSchedule_ = generator.schedule(config_.numBroadcasts, workloadStart,
                                         workloadRng_);
  obs::add(obs::Counter::kTrafficOffered, workloadSchedule_.size());
  sim::TimePoint last = workloadStart;
  for (const traffic::Request& request : workloadSchedule_) {
    last = request.at;  // the schedule is time-ordered
    const net::HostId source = request.source;
    scheduler_.schedule(request.at, [this, source] {
      // A crashed host cannot originate traffic; its request is simply lost
      // (the draw already happened, so churn never shifts the workload
      // stream).
      if (!hosts_[source.value()]->up()) {
        obs::add(obs::Counter::kTrafficBlockedHostDown);
        return;
      }
      obs::add(obs::Counter::kTrafficInjected);
      hosts_[source.value()]->originateBroadcast();
    });
  }
  horizon_ = last + config_.drain;
}

void World::scheduleChurn() {
  if (!config_.fault.churnEnabled()) return;
  churnTimeline_ = fault::buildChurnTimeline(
      config_.fault, config_.numHosts, horizon_,
      sim::Rng(config_.seed).fork(0xC4));
  for (const fault::ChurnEvent& ev : churnTimeline_) {
    scheduler_.schedule(ev.at, [this, ev] { setHostUp(ev.node, ev.up); });
  }
}

void World::beginRun() {
  MANET_EXPECTS(!ran_);
  ran_ = true;
  startAgents();
  scheduleWorkload();
  scheduleChurn();
}

void World::continueUntil(sim::TimePoint until) {
  if (shards_ == nullptr) {
    scheduler_.runUntil(until);
    return;
  }
  windowedRunUntil(until);
}

void World::runToEnd() {
  if (shards_ == nullptr) {
    scheduler_.runUntil(horizon_);
    return;
  }
  windowedRunUntil(horizon_);
}

void World::windowedRunUntil(sim::TimePoint until) {
  // runUntil(w); runUntil(until) is byte-identical to runUntil(until)
  // (scheduler contract: events at exactly the boundary fire in the first
  // call, the clock parks at the boundary), so slicing the clock into
  // lookahead windows commits the exact serial event order; the barriers
  // only exchange cross-shard notices and account them. A continueUntil
  // boundary is therefore always a valid window boundary — checkpoints
  // anchor anywhere — though a split run phases its windows differently
  // than a straight one, which is why engine.shard.* counters are
  // drift-warn-only in compare_bench.py.
  sim::TimePoint cursor = scheduler_.now();
  while (cursor < until) {
    const sim::TimePoint windowEnd = shards_->beginWindow(cursor, until);
    scheduler_.runUntil(windowEnd);
    shards_->endWindow();
    cursor = windowEnd;
  }
}

void World::run() {
  beginRun();
  runToEnd();
}

void World::overrideScheme(const SchemeSpec& spec) {
  // In-flight broadcasts hold decider references into the old policy's
  // threshold objects; retire it rather than destroy it.
  retiredPolicies_.push_back(std::move(policy_));
  config_.scheme = spec;
  policy_ = spec.build();
}

}  // namespace manet::experiment
