// Worker pool for embarrassingly-parallel experiment execution. Each job is
// an independent simulation (own World/Scheduler/RNG), so the only shared
// state is the job queue and the per-index result slots the callers own.
//
// Thread count resolution (DESIGN.md §7): an explicit `threads` argument
// wins; 0 means "auto" = MANET_THREADS from the environment, falling back to
// std::thread::hardware_concurrency(). One thread (or one job) short-circuits
// to a plain loop on the calling thread — no pool, no synchronization.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace manet::experiment {

/// Threads to use when a caller passes `threads = 0`: the MANET_THREADS
/// environment variable if set and >= 1, else hardware concurrency, else 1.
int defaultThreadCount();

/// Fixed-size pool of std::threads draining a FIFO job queue. Jobs must not
/// touch shared mutable state (each experiment job owns its whole simulator).
class WorkerPool {
 public:
  /// Spawns `threads` workers (clamped to >= 1).
  explicit WorkerPool(int threads);
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;
  /// Blocks until all submitted jobs finished, then joins the workers.
  ~WorkerPool();

  /// Enqueues a job. May be called from any thread.
  void submit(std::function<void()> job);

  /// Blocks until every job submitted so far has completed. Rethrows the
  /// first exception any job raised (further exceptions are dropped).
  void wait();

  int threadCount() const { return static_cast<int>(workers_.size()); }

 private:
  void workerLoop();

  std::mutex mutex_;
  std::condition_variable workReady_;
  std::condition_variable allDone_;
  std::queue<std::function<void()>> queue_;
  std::size_t inFlight_ = 0;  // queued + currently executing
  bool stopping_ = false;
  std::exception_ptr firstError_;
  std::vector<std::thread> workers_;
};

/// Runs fn(0) .. fn(n-1) across `threads` workers (0 = auto). Callers write
/// results into pre-sized slots indexed by the argument, so completion order
/// never affects output order. Blocks until all calls finished; rethrows the
/// first exception.
void parallelFor(std::size_t n, const std::function<void(std::size_t)>& fn,
                 int threads = 0);

}  // namespace manet::experiment
