// Why a frame failed to arrive intact at a receiver. Shared vocabulary of
// the channel (which classifies the failure), the MAC (which reports it
// upward), the trace layer (kDrop events), and the fault subsystem
// (DESIGN.md §8).
#pragma once

namespace manet::phy {

enum class DropReason {
  kNone,        // delivered intact
  kCollision,   // overlapped another arrival at the receiver
  kHalfDuplex,  // the receiver was transmitting during the arrival
  kFaultLoss,   // injected link impairment (fault::LossModel)
  kHostDown,    // the receiver crashed mid-reception (host churn)
};

inline const char* dropReasonName(DropReason reason) {
  switch (reason) {
    case DropReason::kNone: return "none";
    case DropReason::kCollision: return "collision";
    case DropReason::kHalfDuplex: return "half_duplex";
    case DropReason::kFaultLoss: return "fault_loss";
    case DropReason::kHostDown: return "host_down";
  }
  return "?";
}

inline constexpr int kDropReasonCount = 5;

}  // namespace manet::phy
