// Physical-layer constants, taken verbatim from the paper's §4: transmission
// radius 500 m, rate 1 Mb/s, DSSS PLCP preamble 144 us + header 48 us.
#pragma once

#include <cstddef>

#include "sim/time.hpp"
#include "util/assert.hpp"

namespace manet::phy {

struct PhyParams {
  double radiusMeters = 500.0;
  double bitRateBps = 1e6;
  sim::Duration plcpPreamble{144};     // us
  sim::Duration plcpHeader{48};        // us

  /// How long after a transmission starts before other stations' CCA can
  /// sense it (propagation + RF detection latency). Stations that decide to
  /// transmit within this window of each other collide — the §2.2.3
  /// mechanism ("carriers cannot be sensed immediately due to things such
  /// as RF delays"). Must be far below the shortest frame airtime.
  sim::Duration carrierSenseDelay{5};  // us (within one 20 us slot)

  /// Conservative cross-region lookahead (DESIGN.md §15): minimum
  /// propagation delay (zero — the unit-disk channel is instantaneous)
  /// plus the shortest possible TX time, frameAirtime(0) (PLCP preamble +
  /// header alone). A transmission committed at t cannot complete at any
  /// receiver — in its own region or a neighboring one — before
  /// t + minInteractionDelay(), so region clocks may advance this far
  /// apart before exchanging deliveries at a window barrier.
  sim::Duration minInteractionDelay() const { return frameAirtime(0); }

  /// On-air duration of a frame with `payloadBytes` of MAC payload.
  sim::Duration frameAirtime(std::size_t payloadBytes) const {
    MANET_EXPECTS(bitRateBps > 0.0);
    const double payloadUs =
        static_cast<double>(payloadBytes) * 8.0 * 1e6 / bitRateBps;
    return plcpPreamble + plcpHeader +
           sim::Duration{static_cast<std::int64_t>(payloadUs + 0.5)};
  }
};

}  // namespace manet::phy
