#include "phy/channel.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "obs/metrics.hpp"
#include "sim/inline_fn.hpp"
#include "sim/shard/coordinator.hpp"
#include "util/assert.hpp"

namespace manet::phy {

namespace {

/// Upper bound on grid cells along one axis. Dense maps in this codebase are
/// a few tens of radii across; the cap only guards degenerate geometries
/// (e.g. one node flung far away) from allocating a huge cell table.
constexpr int kMaxCellsPerAxis = 256;

/// Below this population the grid rebuild's position pass runs serially even
/// when a range executor is installed: the fork/join round trip costs more
/// than evaluating a few hundred position callbacks.
constexpr std::size_t kParallelRebuildMinNodes = 256;

}  // namespace

Channel::Channel(sim::Scheduler& scheduler, PhyParams params)
    : scheduler_(scheduler), params_(params) {
  MANET_EXPECTS(params_.radiusMeters > 0.0);
}

Channel::~Channel() {
  // Ledger check: every reception that began must have ended, been flushed
  // by host churn, or still be on the air when the run stopped mid-frame.
  MANET_AUDIT_HOOK({
    std::uint64_t inFlight = 0;
    for (const Node& n : nodes_) inFlight += n.activeRx.size();
    audit_.atTeardown(inFlight, scheduler_.now());
  });
}

void Channel::attach(net::HostId id, Listener* listener, PositionFn position) {
  MANET_EXPECTS(listener != nullptr);
  MANET_EXPECTS(position != nullptr);
  if (id.value() >= nodes_.size()) nodes_.resize(id.value() + 1);
  Node& n = nodes_[id.value()];
  MANET_EXPECTS(!n.attached);
  n.listener = listener;
  n.position = std::move(position);
  n.attached = true;
  ++attachVersion_;
}

Channel::Node& Channel::node(net::HostId id) {
  MANET_EXPECTS(id.value() < nodes_.size() && nodes_[id.value()].attached);
  return nodes_[id.value()];
}

const Channel::Node& Channel::node(net::HostId id) const {
  MANET_EXPECTS(id.value() < nodes_.size() && nodes_[id.value()].attached);
  return nodes_[id.value()];
}

void Channel::raiseBusy(Node& n) {
  MANET_AUDIT_HOOK(audit_.onEnergyRaise(
      net::HostId{static_cast<std::uint32_t>(&n - nodes_.data())},
      scheduler_.now()));
  if (++n.busyCount == 1) n.listener->onMediumBusy();
}

void Channel::lowerBusy(Node& n) {
  MANET_AUDIT_HOOK(audit_.onEnergyLower(
      net::HostId{static_cast<std::uint32_t>(&n - nodes_.data())},
      scheduler_.now()));
  MANET_ASSERT(n.busyCount > 0);
  if (--n.busyCount == 0) n.listener->onMediumIdle();
}

geom::Vec2 Channel::positionOf(net::HostId id) const {
  return node(id).position();
}

bool Channel::carrierBusy(net::HostId id) const {
  return node(id).busyCount > 0;
}

bool Channel::isTransmitting(net::HostId id) const {
  return node(id).transmitting;
}

void Channel::ensureGrid() const {
  if (grid_.valid && grid_.builtAt == scheduler_.now() &&
      grid_.attachVersion == attachVersion_) {
    return;
  }
  const std::size_t n = nodes_.size();
  grid_.positions.resize(n);
  grid_.cellOf.assign(n, -1);
  grid_.sortedIds.clear();
  grid_.rankOf.assign(n, -1);

  // Pay each position callback exactly once per epoch; every query this
  // epoch reads the cached coordinates. Churned-down nodes are invisible:
  // they get no rank, no cell, and no cached position.
  geom::Vec2 lo{0.0, 0.0};
  geom::Vec2 hi{0.0, 0.0};
  bool first = true;
  if (rangeExecutor_ != nullptr && rangeExecutor_->lanes() > 1 &&
      n >= kParallelRebuildMinNodes) {
    // Sharded execution (DESIGN.md §15): the position pass is the dominant
    // dense-scenario cost, and it parallelizes without touching the
    // determinism contract — lanes write disjoint grid_.positions slots,
    // each mobility model is only ever advanced by the lane owning its id
    // range (the partition is a pure function of the fixed node count), and
    // min/max are exact lattice folds on coordinates that are never NaN or
    // -0.0, so the merged bounding box is bit-equal to the serial fold.
    struct LaneBox {
      geom::Vec2 lo{};
      geom::Vec2 hi{};
      bool any = false;
    };
    std::vector<LaneBox> boxes(
        static_cast<std::size_t>(rangeExecutor_->lanes()));
    rangeExecutor_->run(n, [&](int lane, std::size_t begin, std::size_t end) {
      LaneBox box;
      for (std::size_t id = begin; id < end; ++id) {
        if (!nodes_[id].attached || !nodes_[id].up) continue;
        const geom::Vec2 p = nodes_[id].position();
        grid_.positions[id] = p;
        if (!box.any) {
          box.lo = box.hi = p;
          box.any = true;
        } else {
          box.lo.x = std::min(box.lo.x, p.x);
          box.lo.y = std::min(box.lo.y, p.y);
          box.hi.x = std::max(box.hi.x, p.x);
          box.hi.y = std::max(box.hi.y, p.y);
        }
      }
      boxes[static_cast<std::size_t>(lane)] = box;
    });
    for (const LaneBox& box : boxes) {
      if (!box.any) continue;
      if (first) {
        lo = box.lo;
        hi = box.hi;
        first = false;
      } else {
        lo.x = std::min(lo.x, box.lo.x);
        lo.y = std::min(lo.y, box.lo.y);
        hi.x = std::max(hi.x, box.hi.x);
        hi.y = std::max(hi.y, box.hi.y);
      }
    }
    // Rank/sorted-id tables must be ascending over the whole population, so
    // this stays a (cheap, callback-free) serial pass.
    for (std::size_t id = 0; id < n; ++id) {
      if (!nodes_[id].attached || !nodes_[id].up) continue;
      grid_.rankOf[id] = static_cast<int>(grid_.sortedIds.size());
      grid_.sortedIds.push_back(net::HostId{static_cast<std::uint32_t>(id)});
    }
  } else {
    for (std::size_t id = 0; id < n; ++id) {
      if (!nodes_[id].attached || !nodes_[id].up) continue;
      const geom::Vec2 p = nodes_[id].position();
      grid_.positions[id] = p;
      grid_.rankOf[id] = static_cast<int>(grid_.sortedIds.size());
      grid_.sortedIds.push_back(net::HostId{static_cast<std::uint32_t>(id)});
      if (first) {
        lo = hi = p;
        first = false;
      } else {
        lo.x = std::min(lo.x, p.x);
        lo.y = std::min(lo.y, p.y);
        hi.x = std::max(hi.x, p.x);
        hi.y = std::max(hi.y, p.y);
      }
    }
  }

  grid_.origin = lo;
  grid_.bboxMax = hi;
  double cell = params_.radiusMeters;
  int cols = first ? 1 : static_cast<int>((hi.x - lo.x) / cell) + 1;
  int rows = first ? 1 : static_cast<int>((hi.y - lo.y) / cell) + 1;
  if (cols > kMaxCellsPerAxis || rows > kMaxCellsPerAxis) {
    const double span = std::max(hi.x - lo.x, hi.y - lo.y);
    cell = std::max(cell, span / kMaxCellsPerAxis + 1e-9);
    cols = static_cast<int>((hi.x - lo.x) / cell) + 1;
    rows = static_cast<int>((hi.y - lo.y) / cell) + 1;
  }
  grid_.cellSize = cell;
  grid_.cols = cols;
  grid_.rows = rows;

  // Counting sort into CSR; iterating ids ascending keeps each cell's node
  // list ascending, which the queries rely on for deterministic order.
  const std::size_t cells =
      static_cast<std::size_t>(cols) * static_cast<std::size_t>(rows);
  grid_.cellStart.assign(cells + 1, 0);
  for (std::size_t id = 0; id < n; ++id) {
    if (!nodes_[id].attached || !nodes_[id].up) continue;
    const geom::Vec2 p = grid_.positions[id];
    const int cx = std::min(cols - 1, static_cast<int>((p.x - lo.x) / cell));
    const int cy = std::min(rows - 1, static_cast<int>((p.y - lo.y) / cell));
    const int c = cy * cols + cx;
    grid_.cellOf[id] = c;
    ++grid_.cellStart[static_cast<std::size_t>(c) + 1];
  }
  for (std::size_t c = 1; c < grid_.cellStart.size(); ++c) {
    grid_.cellStart[c] += grid_.cellStart[c - 1];
  }
  const auto occupied = static_cast<std::size_t>(grid_.cellStart.back());
  grid_.cellNodes.resize(occupied);
  grid_.cellX.resize(occupied);
  grid_.cellY.resize(occupied);
  constexpr double inf = std::numeric_limits<double>::infinity();
  grid_.cellMinX.assign(cells, inf);
  grid_.cellMaxX.assign(cells, -inf);
  grid_.cellMinY.assign(cells, inf);
  grid_.cellMaxY.assign(cells, -inf);
  std::vector<int> fill(grid_.cellStart.begin(), grid_.cellStart.end() - 1);
  for (std::size_t id = 0; id < n; ++id) {
    const int c = grid_.cellOf[id];
    if (c < 0) continue;
    const auto cc = static_cast<std::size_t>(c);
    const auto slot = static_cast<std::size_t>(fill[cc]++);
    const geom::Vec2 p = grid_.positions[id];
    grid_.cellNodes[slot] = net::HostId{static_cast<std::uint32_t>(id)};
    grid_.cellX[slot] = p.x;
    grid_.cellY[slot] = p.y;
    grid_.cellMinX[cc] = std::min(grid_.cellMinX[cc], p.x);
    grid_.cellMaxX[cc] = std::max(grid_.cellMaxX[cc], p.x);
    grid_.cellMinY[cc] = std::min(grid_.cellMinY[cc], p.y);
    grid_.cellMaxY[cc] = std::max(grid_.cellMaxY[cc], p.y);
  }

  grid_.valid = true;
  grid_.builtAt = scheduler_.now();
  grid_.attachVersion = attachVersion_;

  obs::add(obs::Counter::kGridRebuilds);
  if (obs::current() != nullptr) {
    for (std::size_t c = 0; c < cells; ++c) {
      const int occupancy = grid_.cellStart[c + 1] - grid_.cellStart[c];
      if (occupancy > 0) {
        obs::observe(obs::Hist::kGridCellOccupancy, occupancy);
      }
    }
  }
}

void Channel::collectInRange(geom::Vec2 center, net::HostId exclude,
                             std::vector<net::HostId>& out) const {
  const double r2 = params_.radiusMeters * params_.radiusMeters;
  if (!gridEnabled_) {
    obs::add(obs::Counter::kGridFallbackQueries);
    for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
      const net::HostId id{i};
      if (id == exclude || !nodes_[i].attached || !nodes_[i].up) continue;
      if (geom::distanceSquared(center, nodes_[i].position()) <= r2) {
        out.push_back(id);
      }
    }
    return;
  }

  ensureGrid();
  obs::add(obs::Counter::kGridQueries);
  // When the whole population's bounding box lies inside the query disk —
  // routine on dense single-cell maps — every other node is in range and
  // the pre-sorted id list can be spliced around `exclude` directly.
  {
    const double fx =
        std::max(center.x - grid_.origin.x, grid_.bboxMax.x - center.x);
    const double fy =
        std::max(center.y - grid_.origin.y, grid_.bboxMax.y - center.y);
    if (fx * fx + fy * fy <= r2) {
      obs::add(obs::Counter::kGridBboxFastPath);
      const net::HostId* b = grid_.sortedIds.data();
      const std::size_t total = grid_.sortedIds.size();
      const bool excluded = exclude.value() < grid_.rankOf.size() &&
                            grid_.rankOf[exclude.value()] >= 0;
      const std::size_t k =
          excluded ? static_cast<std::size_t>(grid_.rankOf[exclude.value()])
                   : total;
      const std::size_t at = out.size();
      out.resize(at + total - (excluded ? 1 : 0));
      net::HostId* w = out.data() + at;
      std::copy(b, b + k, w);
      std::copy(b + k + (excluded ? 1 : 0), b + total, w + k);
      return;
    }
  }
  // Cell size >= radius, so a disk centered anywhere inside cell (ccx,ccy)
  // is contained in the 3x3 neighborhood. Single pass over those cells,
  // sized to the attached-population upper bound up front. Pointers are
  // hoisted so stores into `out` can't force reloads through `grid_`. A
  // cell whose occupant bounding box lies inside the disk is bulk-copied
  // (splicing out `exclude`); otherwise branchless compaction over the
  // contiguous coordinate arrays — always store the candidate id, advance
  // only when it qualifies.
  const std::size_t before = out.size();
  out.resize(before + grid_.sortedIds.size());
  const double* xs = grid_.cellX.data();
  const double* ys = grid_.cellY.data();
  const net::HostId* ids = grid_.cellNodes.data();
  net::HostId* dst = out.data() + before;
  std::size_t kept = 0;
  int cellsWithCandidates = 0;
  forEachNeighborCell(center, [&](std::size_t c, int lo, int hi) {
    cellsWithCandidates += (hi > lo) ? 1 : 0;
    if (cellFullyCovered(c, center, r2)) {
      obs::add(obs::Counter::kGridCellsCovered);
      const net::HostId* b = ids + lo;
      const net::HostId* e = ids + hi;
      const net::HostId* p = std::lower_bound(b, e, exclude);
      net::HostId* w = std::copy(b, p, dst + kept);
      if (p != e && *p == exclude) ++p;
      w = std::copy(p, e, w);
      kept = static_cast<std::size_t>(w - dst);
      return;
    }
    if (hi > lo) obs::add(obs::Counter::kGridCellsScanned);
    for (int i = lo; i < hi; ++i) {
      const double dx = xs[i] - center.x;
      const double dy = ys[i] - center.y;
      const net::HostId id = ids[i];
      dst[kept] = id;
      kept += static_cast<std::size_t>((dx * dx + dy * dy <= r2) &
                                       (id != exclude));
    }
  });
  out.resize(before + kept);
  // Per-cell lists are ascending but interleave across cells, so sort when
  // more than one cell contributed — on a single-cell map (the densest
  // case) no sort is needed.
  if (cellsWithCandidates > 1) {
    std::sort(out.begin() + static_cast<std::ptrdiff_t>(before), out.end());
  }
}

std::size_t Channel::inRangeCount(net::HostId id) const {
  const double r2 = params_.radiusMeters * params_.radiusMeters;
  if (!gridEnabled_) {
    obs::add(obs::Counter::kGridFallbackQueries);
    const geom::Vec2 center = node(id).position();  // asserts attachment
    std::size_t count = 0;
    for (std::uint32_t other = 0; other < nodes_.size(); ++other) {
      if (net::HostId{other} == id || !nodes_[other].attached ||
          !nodes_[other].up) {
        continue;
      }
      if (geom::distanceSquared(center, nodes_[other].position()) <= r2) {
        ++count;
      }
    }
    return count;
  }
  ensureGrid();
  obs::add(obs::Counter::kGridQueries);
  MANET_EXPECTS(id.value() < grid_.rankOf.size() &&
                grid_.rankOf[id.value()] >= 0);
  const geom::Vec2 center = grid_.positions[id.value()];
  {
    const double fx =
        std::max(center.x - grid_.origin.x, grid_.bboxMax.x - center.x);
    const double fy =
        std::max(center.y - grid_.origin.y, grid_.bboxMax.y - center.y);
    if (fx * fx + fy * fy <= r2) {
      obs::add(obs::Counter::kGridBboxFastPath);
      return grid_.sortedIds.size() - 1;
    }
  }
  // Fully covered cells contribute their occupancy outright; otherwise a
  // branch-free scan over the contiguous coordinate arrays. `id` itself is
  // at distance 0 and gets counted either way, so subtract it afterwards.
  const double* xs = grid_.cellX.data();
  const double* ys = grid_.cellY.data();
  std::size_t count = 0;
  forEachNeighborCell(center, [&](std::size_t c, int lo, int hi) {
    if (cellFullyCovered(c, center, r2)) {
      obs::add(obs::Counter::kGridCellsCovered);
      count += static_cast<std::size_t>(hi - lo);
      return;
    }
    if (hi > lo) obs::add(obs::Counter::kGridCellsScanned);
    for (int i = lo; i < hi; ++i) {
      const double dx = xs[i] - center.x;
      const double dy = ys[i] - center.y;
      count += (dx * dx + dy * dy <= r2) ? 1u : 0u;
    }
  });
  return count - 1;
}

std::vector<net::HostId> Channel::nodesInRange(net::HostId id) const {
  std::vector<net::HostId> out;
  nodesInRange(id, out);
  return out;
}

void Channel::nodesInRange(net::HostId id,
                           std::vector<net::HostId>& out) const {
  out.clear();
  if (gridEnabled_) {
    ensureGrid();
    // Attachment check via the grid's dense rank table — same contract as
    // node(id) without touching the cold Node record.
    MANET_EXPECTS(id.value() < grid_.rankOf.size() &&
                  grid_.rankOf[id.value()] >= 0);
    collectInRange(grid_.positions[id.value()], id, out);
  } else {
    collectInRange(node(id).position(), id, out);
  }
}

std::vector<geom::Vec2> Channel::snapshotPositions() const {
  // Unattached and churned-down nodes report Vec2{}; callers that mix down
  // nodes into geometric queries must mask them out (World::reachableFrom).
  if (gridEnabled_) {
    ensureGrid();
    std::vector<geom::Vec2> out = grid_.positions;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      if (!nodes_[i].attached || !nodes_[i].up) out[i] = geom::Vec2{};
    }
    return out;
  }
  std::vector<geom::Vec2> out(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].attached && nodes_[i].up) out[i] = nodes_[i].position();
  }
  return out;
}

sim::TimePoint Channel::transmit(net::HostId src, net::PacketPtr packet,
                            std::size_t bytes) {
  MANET_EXPECTS(packet != nullptr);
  Node& tx = node(src);
  MANET_EXPECTS(tx.up);
  MANET_EXPECTS(!tx.transmitting);

  const sim::TimePoint start = scheduler_.now();
  const sim::TimePoint end = start + params_.frameAirtime(bytes);
  Frame frame;
  frame.src = src;
  frame.srcPos = tx.position();
  frame.bytes = bytes;
  frame.packet = std::move(packet);
  frame.txStart = start;
  frame.txEnd = end;
  ++framesTransmitted_;
  obs::add(obs::Counter::kChannelTx);
  if (obs::current() != nullptr) {
    const auto airtime =
        static_cast<std::uint64_t>((end - start).ticks());  // NOLINT-units(airtime counters aggregate raw microseconds)
    switch (frame.packet->type) {
      case net::PacketType::kRts:
      case net::PacketType::kCts:
        obs::add(obs::Counter::kAirtimeRtsCtsUs, airtime);
        break;
      case net::PacketType::kAck:
        obs::add(obs::Counter::kAirtimeAckUs, airtime);
        break;
      case net::PacketType::kData:
        if (frame.packet->dest != net::kInvalidHost) {
          obs::add(obs::Counter::kAirtimeDataUs, airtime);
          break;
        }
        [[fallthrough]];
      case net::PacketType::kHello:
        obs::add(obs::Counter::kAirtimeBroadcastUs, airtime);
        break;
    }
  }

  // The transmitter occupies its own medium and — being half-duplex —
  // garbles anything it was in the middle of receiving.
  tx.transmitting = true;
  raiseBusy(tx);
  if (collisionsEnabled_) {
    for (const auto& rec : tx.activeRx) corrupt(*rec, DropReason::kHalfDuplex);
  }

  // Take the scratch buffer by move so a listener callback that reenters
  // transmit() synchronously cannot clobber the receiver list mid-loop.
  std::vector<net::HostId> receivers = std::move(scratch_);
  receivers.clear();
  collectInRange(frame.srcPos, src, receivers);
  if (shardObserver_ != nullptr && !receivers.empty()) {
    classifyCrossShard(frame.srcPos, end, receivers);
  }
  for (const net::HostId id : receivers) {
    Node& rx = nodes_[id.value()];
    auto rec = std::make_shared<ActiveRx>();
    rec->frame = frame;
    // Injected link loss is resolved first (the radio impairment exists
    // regardless of contention) but the frame's energy still collides with
    // everything else arriving at this receiver.
    if (lossFn_ && lossFn_(src, id)) {
      rec->reason = DropReason::kFaultLoss;
    }
    if (collisionsEnabled_) {
      // Overlap with anything already arriving, or with the receiver's own
      // ongoing transmission, corrupts everything involved.
      if (!rx.activeRx.empty() || rx.transmitting) {
        corrupt(*rec, rx.transmitting ? DropReason::kHalfDuplex
                                      : DropReason::kCollision);
        for (const auto& other : rx.activeRx) {
          corrupt(*other, DropReason::kCollision);
        }
      }
    }
    rx.activeRx.push_back(rec);
    MANET_AUDIT_HOOK(audit_.onBeginReception(id, scheduler_.now()));
    // The energy becomes detectable at the receiver only after the carrier-
    // sense delay; a station that starts its own transmission inside that
    // window never saw the medium busy (and collides, per §2.2.3).
    if (params_.carrierSenseDelay <= sim::Duration{}) {
      raiseBusy(rx);
    } else {
      auto senseCb = [this, id, epoch = rx.epoch] {
        Node& n = node(id);
        if (n.epoch == epoch) raiseBusy(n);
      };
      static_assert(sim::InlineFn::storesInline<decltype(senseCb)>(),
                    "carrier-sense capture must fit the event node");
      scheduler_.scheduleAfter(params_.carrierSenseDelay, std::move(senseCb));
    }
    auto rxDoneCb = [this, id, rec] { finishReception(id, rec); };
    static_assert(sim::InlineFn::storesInline<decltype(rxDoneCb)>(),
                  "reception-completion capture must fit the event node");
    scheduler_.schedule(end, std::move(rxDoneCb));
  }

  auto txDoneCb = [this, src, epoch = tx.epoch] {
    finishTransmission(src, epoch);
  };
  static_assert(sim::InlineFn::storesInline<decltype(txDoneCb)>(),
                "transmission-completion capture must fit the event node");
  scheduler_.schedule(end, std::move(txDoneCb));
  scratch_ = std::move(receivers);
  return end;
}

void Channel::classifyCrossShard(
    geom::Vec2 srcPos, sim::TimePoint deliveryAt,
    const std::vector<net::HostId>& receivers) const {
  // Region classification (DESIGN.md §15): strips are at least one radio
  // radius wide, so a frame's receivers live in the transmitter's strip or
  // the two adjacent ones — bucket copies left/right and post one mailbox
  // notice per neighboring shard that gets any. Positions come from the
  // grid's epoch cache when it is current (collectInRange just built it);
  // the fallback callback is idempotent at a fixed timestamp, so consulting
  // it again never perturbs mobility state.
  const sim::shard::Topology& topo = shardObserver_->topology();
  const sim::shard::ShardId home = topo.shardOf(srcPos.x);
  const bool cached = gridEnabled_ && grid_.valid &&
                      grid_.builtAt == scheduler_.now() &&
                      grid_.attachVersion == attachVersion_;
  std::uint32_t left = 0;
  std::uint32_t right = 0;
  for (const net::HostId id : receivers) {
    const double x = cached ? grid_.positions[id.value()].x
                            : nodes_[id.value()].position().x;
    const sim::shard::ShardId dst = topo.shardOf(x);
    if (dst == home) continue;
    MANET_ASSERT(topo.adjacent(home, dst));
    if (dst < home) {
      ++left;
    } else {
      ++right;
    }
  }
  if (left > 0) {
    shardObserver_->postCross(deliveryAt, home,
                              sim::shard::ShardId{home.value() - 1}, left);
  }
  if (right > 0) {
    shardObserver_->postCross(deliveryAt, home,
                              sim::shard::ShardId{home.value() + 1}, right);
  }
}

void Channel::finishReception(net::HostId rxId,
                              const std::shared_ptr<ActiveRx>& rec) {
  if (rec->orphaned) return;  // receiver churned down mid-frame
  Node& rx = node(rxId);
  // A down node's receptions must all have been orphaned by the flush; a
  // completion that still reaches one is a churn consistency bug.
  MANET_AUDIT_HOOK(if (!rx.up)
                       audit_.onDeliveryWhileDown(rxId, scheduler_.now()));
  auto it = std::find(rx.activeRx.begin(), rx.activeRx.end(), rec);
  MANET_ASSERT(it != rx.activeRx.end());
  rx.activeRx.erase(it);
  MANET_AUDIT_HOOK(audit_.onEndReception(rxId, scheduler_.now()));
  lowerBusy(rx);
  switch (rec->reason) {
    case DropReason::kNone:
      ++framesDelivered_;
      obs::add(obs::Counter::kChannelDelivered);
      break;
    case DropReason::kFaultLoss:
      ++framesLostToFault_;
      obs::add(obs::Counter::kChannelDropFault);
      break;
    case DropReason::kHalfDuplex:
      ++framesCorrupted_;
      obs::add(obs::Counter::kChannelDropHalfDuplex);
      break;
    case DropReason::kHostDown:
      ++framesCorrupted_;
      obs::add(obs::Counter::kChannelDropHostDown);
      break;
    default:
      ++framesCorrupted_;
      obs::add(obs::Counter::kChannelDropCollision);
      break;
  }
  rx.listener->onFrameReceived(rec->frame, rec->reason);
}

void Channel::finishTransmission(net::HostId src, std::uint64_t epoch) {
  Node& tx = node(src);
  if (tx.epoch != epoch) return;  // transmitter churned before frame end
  MANET_ASSERT(tx.transmitting);
  tx.transmitting = false;
  lowerBusy(tx);
  tx.listener->onTxComplete();
}

std::vector<Frame> Channel::setNodeUp(net::HostId id, bool up) {
  Node& n = node(id);
  if (n.up == up) return {};
  std::vector<Frame> flushed;
  if (!up) {
    // Off the air: flush in-flight receptions (their completion events are
    // orphaned) and silently reset medium/transmit state. The node's own
    // in-flight frame, if any, keeps going at its receivers; the epoch bump
    // cancels the pending finishTransmission callback.
    flushed.reserve(n.activeRx.size());
    for (const auto& rec : n.activeRx) {
      rec->orphaned = true;
      flushed.push_back(rec->frame);
      ++framesDroppedHostDown_;
    }
    n.activeRx.clear();
    n.transmitting = false;
    n.busyCount = 0;
    MANET_AUDIT_HOOK(audit_.onHostDown(id, flushed.size(), scheduler_.now()));
  }
  // Recovery rejoins with a clean, idle medium view: transmissions already
  // in the air are missed entirely (their start was not observed).
  n.up = up;
  ++n.epoch;
  ++attachVersion_;  // range-resolution structures must rebuild
  return flushed;
}

}  // namespace manet::phy
