#include "phy/channel.hpp"

#include <algorithm>
#include <utility>

#include "util/assert.hpp"

namespace manet::phy {

Channel::Channel(sim::Scheduler& scheduler, PhyParams params)
    : scheduler_(scheduler), params_(params) {
  MANET_EXPECTS(params_.radiusMeters > 0.0);
}

void Channel::attach(net::NodeId id, Listener* listener, PositionFn position) {
  MANET_EXPECTS(listener != nullptr);
  MANET_EXPECTS(position != nullptr);
  if (id >= nodes_.size()) nodes_.resize(id + 1);
  Node& n = nodes_[id];
  MANET_EXPECTS(!n.attached);
  n.listener = listener;
  n.position = std::move(position);
  n.attached = true;
}

Channel::Node& Channel::node(net::NodeId id) {
  MANET_EXPECTS(id < nodes_.size() && nodes_[id].attached);
  return nodes_[id];
}

const Channel::Node& Channel::node(net::NodeId id) const {
  MANET_EXPECTS(id < nodes_.size() && nodes_[id].attached);
  return nodes_[id];
}

void Channel::raiseBusy(Node& n) {
  if (++n.busyCount == 1) n.listener->onMediumBusy();
}

void Channel::lowerBusy(Node& n) {
  MANET_ASSERT(n.busyCount > 0);
  if (--n.busyCount == 0) n.listener->onMediumIdle();
}

geom::Vec2 Channel::positionOf(net::NodeId id) const {
  return node(id).position();
}

bool Channel::carrierBusy(net::NodeId id) const {
  return node(id).busyCount > 0;
}

bool Channel::isTransmitting(net::NodeId id) const {
  return node(id).transmitting;
}

std::vector<net::NodeId> Channel::nodesInRange(net::NodeId id) const {
  const geom::Vec2 center = positionOf(id);
  const double r2 = params_.radiusMeters * params_.radiusMeters;
  std::vector<net::NodeId> out;
  for (net::NodeId other = 0; other < nodes_.size(); ++other) {
    if (other == id || !nodes_[other].attached) continue;
    if (geom::distanceSquared(center, nodes_[other].position()) <= r2) {
      out.push_back(other);
    }
  }
  return out;
}

std::vector<geom::Vec2> Channel::snapshotPositions() const {
  std::vector<geom::Vec2> out(nodes_.size());
  for (net::NodeId id = 0; id < nodes_.size(); ++id) {
    if (nodes_[id].attached) out[id] = nodes_[id].position();
  }
  return out;
}

sim::Time Channel::transmit(net::NodeId src, net::PacketPtr packet,
                            std::size_t bytes) {
  MANET_EXPECTS(packet != nullptr);
  Node& tx = node(src);
  MANET_EXPECTS(!tx.transmitting);

  const sim::Time start = scheduler_.now();
  const sim::Time end = start + params_.frameAirtime(bytes);
  Frame frame;
  frame.src = src;
  frame.srcPos = tx.position();
  frame.bytes = bytes;
  frame.packet = std::move(packet);
  frame.txStart = start;
  frame.txEnd = end;
  ++framesTransmitted_;

  // The transmitter occupies its own medium and — being half-duplex —
  // garbles anything it was in the middle of receiving.
  tx.transmitting = true;
  raiseBusy(tx);
  if (collisionsEnabled_) {
    for (const auto& rec : tx.activeRx) rec->corrupted = true;
  }

  const double r2 = params_.radiusMeters * params_.radiusMeters;
  for (net::NodeId id = 0; id < nodes_.size(); ++id) {
    if (id == src || !nodes_[id].attached) continue;
    Node& rx = nodes_[id];
    if (geom::distanceSquared(frame.srcPos, rx.position()) > r2) continue;

    auto rec = std::make_shared<ActiveRx>();
    rec->frame = frame;
    if (collisionsEnabled_) {
      // Overlap with anything already arriving, or with the receiver's own
      // ongoing transmission, corrupts everything involved.
      if (!rx.activeRx.empty() || rx.transmitting) {
        rec->corrupted = true;
        for (const auto& other : rx.activeRx) other->corrupted = true;
      }
    }
    rx.activeRx.push_back(rec);
    // The energy becomes detectable at the receiver only after the carrier-
    // sense delay; a station that starts its own transmission inside that
    // window never saw the medium busy (and collides, per §2.2.3).
    if (params_.carrierSenseDelay <= 0) {
      raiseBusy(rx);
    } else {
      scheduler_.scheduleAfter(params_.carrierSenseDelay,
                               [this, id] { raiseBusy(node(id)); });
    }
    scheduler_.schedule(end, [this, id, rec] { finishReception(id, rec); });
  }

  scheduler_.schedule(end, [this, src] { finishTransmission(src); });
  return end;
}

void Channel::finishReception(net::NodeId rxId,
                              const std::shared_ptr<ActiveRx>& rec) {
  Node& rx = node(rxId);
  auto it = std::find(rx.activeRx.begin(), rx.activeRx.end(), rec);
  MANET_ASSERT(it != rx.activeRx.end());
  rx.activeRx.erase(it);
  lowerBusy(rx);
  if (rec->corrupted) {
    ++framesCorrupted_;
  } else {
    ++framesDelivered_;
  }
  rx.listener->onFrameReceived(rec->frame, rec->corrupted);
}

void Channel::finishTransmission(net::NodeId src) {
  Node& tx = node(src);
  MANET_ASSERT(tx.transmitting);
  tx.transmitting = false;
  lowerBusy(tx);
  tx.listener->onTxComplete();
}

}  // namespace manet::phy
