// Unit-disk broadcast radio channel with receiver-side collision semantics.
//
// Model (documented in DESIGN.md §5):
//  * A transmission is heard by every attached node within `radiusMeters`
//    of the transmitter at transmission start (mobility during one ~2.4 ms
//    frame is negligible at vehicular speeds).
//  * Any overlap of two frames at a receiver corrupts both there (no
//    capture); a node transmitting during any part of an incoming frame
//    loses that frame (half-duplex). Corrupted frames still assert energy:
//    carrier-sense stays busy for their whole duration.
//  * Hidden terminals arise naturally: a node out of range of an ongoing
//    transmission senses an idle medium and may transmit into a common
//    receiver.
//
// The channel is also the position oracle: it owns the position callbacks
// and exposes range queries used by the world's connectivity snapshots.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "geom/vec2.hpp"
#include "net/packet.hpp"
#include "phy/params.hpp"
#include "sim/scheduler.hpp"

namespace manet::phy {

/// A frame on the air.
struct Frame {
  net::NodeId src = net::kInvalidNode;
  /// Transmitter position at tx start. Stands in for the GPS coordinate the
  /// location-based schemes assume is carried in the packet header.
  geom::Vec2 srcPos{};
  std::size_t bytes = 0;
  net::PacketPtr packet;
  sim::Time txStart = 0;
  sim::Time txEnd = 0;
};

class Channel {
 public:
  /// Callbacks into the MAC of one attached node. All calls are synchronous
  /// with channel state already updated.
  class Listener {
   public:
    virtual ~Listener() = default;
    /// Carrier went busy (0 -> >0 overlapping in-range transmissions).
    virtual void onMediumBusy() {}
    /// Carrier went idle (back to 0).
    virtual void onMediumIdle() {}
    /// A frame addressed to the broadcast medium finished arriving.
    /// `corrupted` = FCS would fail (collision or half-duplex loss).
    virtual void onFrameReceived(const Frame& frame, bool corrupted) = 0;
    /// This node's own transmission just ended (channel state updated).
    virtual void onTxComplete() {}
  };

  using PositionFn = std::function<geom::Vec2()>;

  Channel(sim::Scheduler& scheduler, PhyParams params);

  /// Registers a node. `id` values must be dense (0..N-1) and unique.
  void attach(net::NodeId id, Listener* listener, PositionFn position);

  /// Starts transmitting `packet` from `src` now. The caller (MAC) must not
  /// already be transmitting. Returns the transmission end time.
  sim::Time transmit(net::NodeId src, net::PacketPtr packet,
                     std::size_t bytes);

  /// True when node `id` senses energy (including its own transmission).
  bool carrierBusy(net::NodeId id) const;

  /// True while node `id` is transmitting.
  bool isTransmitting(net::NodeId id) const;

  /// Current position of node `id`.
  geom::Vec2 positionOf(net::NodeId id) const;

  /// All attached node ids within `radiusMeters` of node `id` (excl. itself).
  std::vector<net::NodeId> nodesInRange(net::NodeId id) const;

  /// Positions of all attached nodes, indexed by node id.
  std::vector<geom::Vec2> snapshotPositions() const;

  std::size_t nodeCount() const { return nodes_.size(); }
  const PhyParams& params() const { return params_; }

  // --- statistics (monotone counters over the whole run) ---
  std::uint64_t framesTransmitted() const { return framesTransmitted_; }
  std::uint64_t framesDelivered() const { return framesDelivered_; }
  std::uint64_t framesCorrupted() const { return framesCorrupted_; }

  /// Test/ablation hook: when disabled, overlapping frames are all delivered
  /// intact (perfect-PHY model used by bench/abl_collision_model).
  void setCollisionsEnabled(bool enabled) { collisionsEnabled_ = enabled; }

 private:
  struct ActiveRx {
    Frame frame;
    bool corrupted = false;
  };
  struct Node {
    Listener* listener = nullptr;
    PositionFn position;
    bool attached = false;
    bool transmitting = false;
    int busyCount = 0;  // overlapping in-range transmissions incl. own
    std::vector<std::shared_ptr<ActiveRx>> activeRx;
  };

  Node& node(net::NodeId id);
  const Node& node(net::NodeId id) const;
  void raiseBusy(Node& n);
  void lowerBusy(Node& n);
  void finishReception(net::NodeId rx, const std::shared_ptr<ActiveRx>& rec);
  void finishTransmission(net::NodeId src);

  sim::Scheduler& scheduler_;
  PhyParams params_;
  std::vector<Node> nodes_;
  bool collisionsEnabled_ = true;
  std::uint64_t framesTransmitted_ = 0;
  std::uint64_t framesDelivered_ = 0;
  std::uint64_t framesCorrupted_ = 0;
};

}  // namespace manet::phy
