// Unit-disk broadcast radio channel with receiver-side collision semantics.
//
// Model (documented in DESIGN.md §5):
//  * A transmission is heard by every attached node within `radiusMeters`
//    of the transmitter at transmission start (mobility during one ~2.4 ms
//    frame is negligible at vehicular speeds).
//  * Any overlap of two frames at a receiver corrupts both there (no
//    capture); a node transmitting during any part of an incoming frame
//    loses that frame (half-duplex). Corrupted frames still assert energy:
//    carrier-sense stays busy for their whole duration.
//  * Hidden terminals arise naturally: a node out of range of an ongoing
//    transmission senses an idle medium and may transmit into a common
//    receiver.
//
// The channel is also the position oracle: it owns the position callbacks
// and exposes range queries used by the world's connectivity snapshots.
//
// Range resolution (DESIGN.md §7): queries go through a uniform spatial grid
// (cell size = radio radius) rebuilt lazily once per simulation-time epoch,
// so `transmit`/`nodesInRange` only examine the 3x3 cell neighborhood and
// pay the position callbacks once per node per epoch instead of once per
// query. `setGridEnabled(false)` restores the exhaustive O(N) scan; both
// paths visit candidates in ascending node id, so a run is bit-identical
// under either.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "audit/audit.hpp"
#include "geom/vec2.hpp"
#include "net/packet.hpp"
#include "phy/drop.hpp"
#include "phy/params.hpp"
#include "sim/scheduler.hpp"
#include "sim/shard/range_executor.hpp"

#if MANET_AUDIT_ENABLED
#include "audit/invariants.hpp"
#endif

namespace manet::ckpt {
struct StateAccess;
}

namespace manet::sim::shard {
class Coordinator;
}

namespace manet::phy {

/// A frame on the air.
struct Frame {
  net::HostId src = net::kInvalidHost;
  /// Transmitter position at tx start. Stands in for the GPS coordinate the
  /// location-based schemes assume is carried in the packet header.
  geom::Vec2 srcPos{};
  std::size_t bytes = 0;
  net::PacketPtr packet;
  sim::TimePoint txStart{};
  sim::TimePoint txEnd{};
};

class Channel {
 public:
  /// Callbacks into the MAC of one attached node. All calls are synchronous
  /// with channel state already updated.
  class Listener {
   public:
    virtual ~Listener() = default;
    /// Carrier went busy (0 -> >0 overlapping in-range transmissions).
    virtual void onMediumBusy() {}
    /// Carrier went idle (back to 0).
    virtual void onMediumIdle() {}
    /// A frame addressed to the broadcast medium finished arriving.
    /// `drop` = kNone when intact; otherwise why the FCS would fail
    /// (collision, half-duplex loss, or injected fault loss).
    virtual void onFrameReceived(const Frame& frame, DropReason drop) = 0;
    /// This node's own transmission just ended (channel state updated).
    virtual void onTxComplete() {}
  };

  using PositionFn = std::function<geom::Vec2()>;

  /// Fault-injection hook (DESIGN.md §8): consulted once per (frame,
  /// receiver) pair after range resolution; return true to drop that
  /// reception as a link-level loss. The frame still asserts energy at the
  /// receiver (carrier-sense stays busy, overlaps still collide) — it
  /// arrives with a failed FCS, reason kFaultLoss. Unset = lossless.
  using LossFn = std::function<bool(net::HostId src, net::HostId dst)>;

  Channel(sim::Scheduler& scheduler, PhyParams params);
  /// Audited builds verify the begin/end/flush reception ledger here.
  ~Channel();

  /// Registers a node. `id` values must be dense (0..N-1) and unique.
  void attach(net::HostId id, Listener* listener, PositionFn position);

  /// Installs (or clears, with nullptr) the link-impairment hook. Receivers
  /// are consulted in ascending id order, so a model drawing from its own
  /// RNG stream is deterministic for a given schedule of transmissions.
  void setLossFn(LossFn fn) { lossFn_ = std::move(fn); }

  /// Host churn (DESIGN.md §8): takes a node off the air (`up = false`) or
  /// brings it back. A down node is invisible to range resolution, neither
  /// hears nor asserts energy, and its in-flight receptions are flushed —
  /// returned to the caller (for kHostDown trace drops) and counted in
  /// framesDroppedHostDown(). A frame the node itself had on the air when
  /// it went down keeps propagating to its receivers (the crash boundary is
  /// quantized to frame ends); only the transmitter's own state is reset.
  /// No listener callbacks fire from this call. Idempotent per direction.
  std::vector<Frame> setNodeUp(net::HostId id, bool up);

  /// False while node `id` is churned off the air.
  bool nodeUp(net::HostId id) const { return node(id).up; }

  /// Starts transmitting `packet` from `src` now. The caller (MAC) must not
  /// already be transmitting. Returns the transmission end time.
  sim::TimePoint transmit(net::HostId src, net::PacketPtr packet,
                     std::size_t bytes);

  /// True when node `id` senses energy (including its own transmission).
  bool carrierBusy(net::HostId id) const;

  /// True while node `id` is transmitting.
  bool isTransmitting(net::HostId id) const;

  /// Current position of node `id`.
  geom::Vec2 positionOf(net::HostId id) const;

  /// All attached node ids within `radiusMeters` of node `id` (excl. itself),
  /// in ascending id order.
  std::vector<net::HostId> nodesInRange(net::HostId id) const;

  /// As above, but overwriting `out` (capacity reuse for hot callers — the
  /// same resolution path transmit() runs per frame).
  void nodesInRange(net::HostId id, std::vector<net::HostId>& out) const;

  /// Number of attached nodes within range of `id` (excl. itself) without
  /// materializing the list — the oracle neighbor-count `n` the adaptive
  /// schemes query on every rebroadcast decision.
  std::size_t inRangeCount(net::HostId id) const;

  /// Positions of all attached nodes, indexed by node id.
  std::vector<geom::Vec2> snapshotPositions() const;

  std::size_t nodeCount() const { return nodes_.size(); }
  const PhyParams& params() const { return params_; }

  // --- statistics (monotone counters over the whole run) ---
  std::uint64_t framesTransmitted() const { return framesTransmitted_; }
  std::uint64_t framesDelivered() const { return framesDelivered_; }
  /// Receptions lost to collisions or half-duplex conflicts (the only
  /// losses of the fault-free model; fault losses are counted separately).
  std::uint64_t framesCorrupted() const { return framesCorrupted_; }
  /// Receptions dropped by the installed LossFn (injected link loss).
  std::uint64_t framesLostToFault() const { return framesLostToFault_; }
  /// Receptions flushed because the receiver went down mid-frame.
  std::uint64_t framesDroppedHostDown() const {
    return framesDroppedHostDown_;
  }

  /// Test/ablation hook: when disabled, overlapping frames are all delivered
  /// intact (perfect-PHY model used by bench/abl_collision_model).
  void setCollisionsEnabled(bool enabled) { collisionsEnabled_ = enabled; }

  /// Differential-testing hook: when disabled, range queries fall back to the
  /// exhaustive all-nodes scan instead of the spatial grid. Either setting
  /// yields identical simulations (same candidates, same order).
  void setGridEnabled(bool enabled) { gridEnabled_ = enabled; }
  bool gridEnabled() const { return gridEnabled_; }

  /// Sharded execution (DESIGN.md §15): installs the shard coordinator so
  /// transmit() classifies each frame's receivers as intra- vs cross-shard
  /// and posts cross-shard notices to the barrier mailbox. Observational
  /// only — delivery semantics are unchanged. nullptr detaches.
  void setShardObserver(sim::shard::Coordinator* coordinator) {
    shardObserver_ = coordinator;
  }

  /// Installs a deterministic range executor for the grid rebuild's
  /// position-evaluation pass (the dominant dense-scenario cost). The
  /// rebuilt grid is byte-identical with or without an executor: lanes
  /// write disjoint per-id slots and the bounding-box folds are exact
  /// (see ensureGrid). nullptr restores the serial pass.
  void setRangeExecutor(const sim::shard::RangeExecutor* executor) {
    rangeExecutor_ = executor;
  }

 private:
  friend struct manet::ckpt::StateAccess;
  struct ActiveRx {
    Frame frame;
    DropReason reason = DropReason::kNone;  // first corruption cause wins
    /// Receiver churned off the air mid-frame: the scheduled completion
    /// event must not touch the (already flushed) node state.
    bool orphaned = false;
    bool corrupted() const { return reason != DropReason::kNone; }
  };
  struct Node {
    Listener* listener = nullptr;
    PositionFn position;
    bool attached = false;
    bool up = true;     // false while churned down (attached but off-air)
    bool transmitting = false;
    int busyCount = 0;  // overlapping in-range transmissions incl. own
    /// Bumped on every up/down transition; deferred channel events carry
    /// the epoch they were scheduled under and skip if the node churned.
    std::uint64_t epoch = 0;
    std::vector<std::shared_ptr<ActiveRx>> activeRx;
  };

  /// Uniform-cell spatial index over the attached nodes' positions, cached
  /// for one simulation-time epoch (positions are pure functions of time, so
  /// within one timestamp the index is exact). CSR layout: `cellNodes` holds
  /// node ids grouped by cell, `cellStart[c]..cellStart[c+1]` delimits cell
  /// c; `cellX`/`cellY` mirror the occupants' coordinates so the range scan
  /// runs over contiguous doubles instead of chasing position callbacks.
  struct Grid {
    bool valid = false;
    sim::TimePoint builtAt = sim::kNever;
    std::uint64_t attachVersion = 0;
    double cellSize = 0.0;
    geom::Vec2 origin{};                // == population bbox min corner
    geom::Vec2 bboxMax{};               // population bbox max corner
    int cols = 0;
    int rows = 0;
    std::vector<net::HostId> sortedIds;  // attached ids, ascending
    std::vector<int> rankOf;            // id -> index in sortedIds (-1: none)
    std::vector<geom::Vec2> positions;  // per node id, cached this epoch
    std::vector<int> cellOf;            // per node id (-1 = not attached)
    std::vector<int> cellStart;         // cols*rows + 1 offsets
    std::vector<net::HostId> cellNodes;
    std::vector<double> cellX;          // parallel to cellNodes
    std::vector<double> cellY;
    // Tight bounding box of each cell's occupants (+inf/-inf when empty).
    // When the whole box lies inside a query disk every occupant is in
    // range and the per-node distance scan can be skipped.
    std::vector<double> cellMinX;
    std::vector<double> cellMaxX;
    std::vector<double> cellMinY;
    std::vector<double> cellMaxY;
  };

  Node& node(net::HostId id);
  const Node& node(net::HostId id) const;
  void raiseBusy(Node& n);
  void lowerBusy(Node& n);
  void finishReception(net::HostId rx, const std::shared_ptr<ActiveRx>& rec);
  void finishTransmission(net::HostId src, std::uint64_t epoch);
  /// Marks `rec` corrupted with `reason` unless an earlier cause already did.
  static void corrupt(ActiveRx& rec, DropReason reason) {
    if (rec.reason == DropReason::kNone) rec.reason = reason;
  }

  /// Rebuilds the grid if it is stale for the current epoch (time advanced
  /// or a node attached since the last build).
  void ensureGrid() const;
  /// Invokes fn(c, lo, hi) with the index and CSR occupant range of every
  /// cell in the 3x3 neighborhood of the cell containing `center`. Requires
  /// a current grid (call ensureGrid() first).
  template <typename Fn>
  void forEachNeighborCell(geom::Vec2 center, Fn&& fn) const {
    const int ccx = std::clamp(
        static_cast<int>((center.x - grid_.origin.x) / grid_.cellSize), 0,
        grid_.cols - 1);
    const int ccy = std::clamp(
        static_cast<int>((center.y - grid_.origin.y) / grid_.cellSize), 0,
        grid_.rows - 1);
    for (int cy = std::max(0, ccy - 1);
         cy <= std::min(grid_.rows - 1, ccy + 1); ++cy) {
      for (int cx = std::max(0, ccx - 1);
           cx <= std::min(grid_.cols - 1, ccx + 1); ++cx) {
        const auto c = static_cast<std::size_t>(cy * grid_.cols + cx);
        fn(c, grid_.cellStart[c], grid_.cellStart[c + 1]);
      }
    }
  }
  /// True when every occupant of cell `c` is within `radiusMeters` of
  /// `center` (the cell's occupant bounding box lies inside the disk), so
  /// the whole cell qualifies without per-node distance checks.
  bool cellFullyCovered(std::size_t c, geom::Vec2 center, double r2) const {
    const double fx = std::max(center.x - grid_.cellMinX[c],
                               grid_.cellMaxX[c] - center.x);
    const double fy = std::max(center.y - grid_.cellMinY[c],
                               grid_.cellMaxY[c] - center.y);
    return fx * fx + fy * fy <= r2;
  }
  /// Appends all attached ids within `radiusMeters` of `center` (except
  /// `exclude`) to `out`, ascending. Uses the grid when enabled and current,
  /// the exhaustive scan otherwise.
  void collectInRange(geom::Vec2 center, net::HostId exclude,
                      std::vector<net::HostId>& out) const;
  /// Buckets `receivers` by shard relative to the transmitter's strip and
  /// posts one mailbox notice per neighboring shard that receives copies
  /// (DESIGN.md §15). Called from transmit() when a shard observer is set.
  void classifyCrossShard(geom::Vec2 srcPos, sim::TimePoint deliveryAt,
                          const std::vector<net::HostId>& receivers) const;

  sim::Scheduler& scheduler_;
  PhyParams params_;
  std::vector<Node> nodes_;
  bool collisionsEnabled_ = true;
  bool gridEnabled_ = true;
  sim::shard::Coordinator* shardObserver_ = nullptr;
  const sim::shard::RangeExecutor* rangeExecutor_ = nullptr;
  LossFn lossFn_;
  std::uint64_t attachVersion_ = 0;
  mutable Grid grid_;
  mutable std::vector<net::HostId> scratch_;  // transmit() receiver list
  std::uint64_t framesTransmitted_ = 0;
  std::uint64_t framesDelivered_ = 0;
  std::uint64_t framesCorrupted_ = 0;
  std::uint64_t framesLostToFault_ = 0;
  std::uint64_t framesDroppedHostDown_ = 0;
#if MANET_AUDIT_ENABLED
  audit::ChannelAudit audit_;
#endif
};

}  // namespace manet::phy
