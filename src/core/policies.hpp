// The broadcast-suppression schemes.
//
// Fixed-threshold baselines (Ni et al., MOBICOM'99 [15], reviewed in §2.3):
//   * FloodingPolicy       — always rebroadcast.
//   * ProbabilisticPolicy  — rebroadcast with probability p.
//   * CounterPolicy        — inhibit once the packet was heard C times.
//   * DistancePolicy       — inhibit once some sender was closer than D.
//   * LocationPolicy       — inhibit once the remaining additional coverage
//                            drops below the area fraction A.
//
// Adaptive schemes (this paper's contribution, §3):
//   * AdaptiveCounterPolicy   — counter threshold C(n) of neighbor count n.
//   * AdaptiveLocationPolicy  — area threshold A(n) of neighbor count n.
//   * NeighborCoveragePolicy  — rebroadcast only while some one-hop neighbor
//                               is not yet covered (2-hop HELLO knowledge).
#pragma once

#include <memory>

#include "core/policy.hpp"
#include "core/threshold.hpp"

namespace manet::core {

/// Monte-Carlo resolution the location-based schemes use when evaluating
/// their residual additional coverage at runtime.
struct CoverageSampling {
  int samples = 512;
};

class FloodingPolicy final : public RebroadcastPolicy {
 public:
  std::unique_ptr<PacketDecider> makeDecider(HostView& host,
                                             const Reception& first)
      const override;
  std::string name() const override { return "flooding"; }
};

class ProbabilisticPolicy final : public RebroadcastPolicy {
 public:
  explicit ProbabilisticPolicy(double p);
  std::unique_ptr<PacketDecider> makeDecider(HostView& host,
                                             const Reception& first)
      const override;
  std::string name() const override;
  double probability() const { return p_; }

 private:
  double p_;
};

class CounterPolicy final : public RebroadcastPolicy {
 public:
  explicit CounterPolicy(int threshold);
  std::unique_ptr<PacketDecider> makeDecider(HostView& host,
                                             const Reception& first)
      const override;
  std::string name() const override;
  int threshold() const { return threshold_; }

 private:
  int threshold_;
};

class DistancePolicy final : public RebroadcastPolicy {
 public:
  /// `thresholdMeters`: inhibit when the closest heard sender is nearer
  /// than this.
  explicit DistancePolicy(double thresholdMeters);
  std::unique_ptr<PacketDecider> makeDecider(HostView& host,
                                             const Reception& first)
      const override;
  std::string name() const override;
  double threshold() const { return thresholdMeters_; }

 private:
  double thresholdMeters_;
};

class LocationPolicy final : public RebroadcastPolicy {
 public:
  /// `threshold`: area fraction of pi r^2 below which the rebroadcast is
  /// considered redundant. The paper evaluates 0.1871, 0.0469, 0.0134.
  explicit LocationPolicy(double threshold, CoverageSampling sampling = {});
  std::unique_ptr<PacketDecider> makeDecider(HostView& host,
                                             const Reception& first)
      const override;
  std::string name() const override;

 private:
  double threshold_;
  CoverageSampling sampling_;
};

class AdaptiveCounterPolicy final : public RebroadcastPolicy {
 public:
  explicit AdaptiveCounterPolicy(CounterThreshold fn,
                                 std::string label = "AC");
  std::unique_ptr<PacketDecider> makeDecider(HostView& host,
                                             const Reception& first)
      const override;
  std::string name() const override { return label_; }
  const CounterThreshold& thresholdFunction() const { return fn_; }

 private:
  CounterThreshold fn_;
  std::string label_;
};

class AdaptiveLocationPolicy final : public RebroadcastPolicy {
 public:
  explicit AdaptiveLocationPolicy(AreaThreshold fn, std::string label = "AL",
                                  CoverageSampling sampling = {});
  std::unique_ptr<PacketDecider> makeDecider(HostView& host,
                                             const Reception& first)
      const override;
  std::string name() const override { return label_; }
  const AreaThreshold& thresholdFunction() const { return fn_; }

 private:
  AreaThreshold fn_;
  std::string label_;
  CoverageSampling sampling_;
};

class NeighborCoveragePolicy final : public RebroadcastPolicy {
 public:
  std::unique_ptr<PacketDecider> makeDecider(HostView& host,
                                             const Reception& first)
      const override;
  std::string name() const override { return "NC"; }
};

}  // namespace manet::core
