#include "core/threshold.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace manet::core {

CounterThreshold::CounterThreshold(std::vector<int> values)
    : values_(std::move(values)) {
  MANET_EXPECTS(!values_.empty());
  for (int v : values_) MANET_EXPECTS(v >= 1);
  // Drop a redundant repeated tail so equal functions compare equal.
  while (values_.size() > 1 &&
         values_[values_.size() - 1] == values_[values_.size() - 2]) {
    values_.pop_back();
  }
}

CounterThreshold CounterThreshold::fixed(int c) {
  MANET_EXPECTS(c >= 1);
  return CounterThreshold(std::vector<int>{c});
}

CounterThreshold CounterThreshold::fromDigits(std::string_view digits) {
  MANET_EXPECTS(!digits.empty());
  std::vector<int> values;
  values.reserve(digits.size());
  for (char ch : digits) {
    MANET_EXPECTS(ch >= '1' && ch <= '9');
    values.push_back(ch - '0');
  }
  return CounterThreshold(std::move(values));
}

CounterThreshold CounterThreshold::rampAndDecay(int n1, int n2,
                                                DecayShape shape) {
  MANET_EXPECTS(n1 >= 1);
  MANET_EXPECTS(n2 > n1);
  const int peak = n1 + 1;
  std::vector<int> values;
  values.reserve(static_cast<std::size_t>(n2) + 1);
  for (int n = 1; n <= n1; ++n) values.push_back(n + 1);
  const double span = n2 - n1;
  for (int n = n1 + 1; n <= n2; ++n) {
    const double f = (n - n1) / span;  // 0 .. 1
    double level = 0.0;
    switch (shape) {
      case DecayShape::kLinear:
        level = peak - (peak - 2) * f;
        break;
      case DecayShape::kConvex:
        // Stays near the peak early, drops late.
        level = peak - (peak - 2) * f * f;
        break;
      case DecayShape::kConcave:
        // Drops quickly, then flattens toward 2.
        level = peak - (peak - 2) * std::sqrt(f);
        break;
      case DecayShape::kStep:
        level = (n < n2) ? peak : 2;
        break;
    }
    values.push_back(std::max(2, static_cast<int>(std::lround(level))));
  }
  values.push_back(2);  // n > n2
  return CounterThreshold(std::move(values));
}

CounterThreshold CounterThreshold::suggested() {
  return rampAndDecay(4, 12, DecayShape::kLinear);
}

int CounterThreshold::operator()(int n) const {
  if (n < 1) n = 1;  // C(0) := C(1)
  const std::size_t index =
      std::min<std::size_t>(static_cast<std::size_t>(n) - 1,
                            values_.size() - 1);
  return values_[index];
}

std::string CounterThreshold::toDigits() const {
  std::string out;
  out.reserve(values_.size());
  for (int v : values_) {
    MANET_ASSERT(v <= 9);
    out.push_back(static_cast<char>('0' + v));
  }
  return out;
}

AreaThreshold::AreaThreshold(double low, double high, int n1, int n2)
    : low_(low), high_(high), n1_(n1), n2_(n2) {
  MANET_EXPECTS(low_ >= 0.0);
  MANET_EXPECTS(high_ >= low_);
  MANET_EXPECTS(n2_ >= n1_);
}

AreaThreshold AreaThreshold::fixed(double a) {
  return AreaThreshold(a, a, 0, 0);
}

AreaThreshold AreaThreshold::piecewise(int n1, int n2, double high) {
  MANET_EXPECTS(n1 >= 0);
  MANET_EXPECTS(n2 > n1);
  MANET_EXPECTS(high > 0.0);
  return AreaThreshold(0.0, high, n1, n2);
}

AreaThreshold AreaThreshold::suggested() { return piecewise(6, 12); }

double AreaThreshold::operator()(int n) const {
  if (n2_ == n1_) return high_;  // fixed
  if (n <= n1_) return low_;
  if (n >= n2_) return high_;
  const double f = static_cast<double>(n - n1_) / (n2_ - n1_);
  return low_ + (high_ - low_) * f;
}

}  // namespace manet::core
