// Rebroadcast-suppression policy interface.
//
// Every scheme in the paper (fixed-threshold baselines from Ni et al. [15]
// and the three adaptive contributions) follows the same five-step skeleton:
//
//   S1. On hearing broadcast P for the first time, initialize scheme state;
//       possibly inhibit immediately.
//   S2. Wait a random number (0..31) of slots, then submit P to the MAC and
//       wait until the transmission actually starts. If P is heard again
//       while waiting, go to S4.
//   S3. P is on the air; done.
//   S4. Update scheme state from the duplicate reception. If the scheme now
//       asserts redundancy, go to S5; otherwise resume the interrupted wait.
//   S5. Cancel the pending transmission; the host is permanently inhibited.
//
// The host (src/experiment/host.*) owns the skeleton — jitter timer, MAC
// queue handle, cancellation. A policy only answers the two questions the
// skeleton asks: "proceed after first hearing?" (S1) and "keep waiting after
// this duplicate?" (S4). Policies get read access to the host through
// HostView.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "geom/vec2.hpp"
#include "net/ids.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace manet::core {

/// One reception of the broadcast packet, as seen by the scheme.
struct Reception {
  net::HostId from = net::kInvalidHost;
  /// Sender position (the GPS coordinate the location-based schemes assume
  /// is carried in the packet header).
  geom::Vec2 fromPos{};
  sim::TimePoint at{};
};

/// What a policy may observe about its host. Implemented by the host; in
/// oracle mode neighbor queries reflect true geometry, in hello mode they
/// reflect the (possibly stale) HELLO-learned tables — the distinction Figs.
/// 11-12 study.
class HostView {
 public:
  virtual ~HostView() = default;

  virtual net::HostId id() const = 0;

  /// |N_x|: current number of one-hop neighbors.
  virtual int neighborCount() const = 0;

  /// N_x: current one-hop neighbor ids.
  virtual std::vector<net::HostId> neighborIds() const = 0;

  /// N_{x,h}: the one-hop set of neighbor `h` as known to this host, or
  /// nullopt when nothing is known about `h`.
  virtual std::optional<std::vector<net::HostId>> neighborsOf(
      net::HostId h) const = 0;

  /// This host's own position (its "GPS reading").
  virtual geom::Vec2 position() const = 0;

  /// Radio range in meters.
  virtual double radius() const = 0;

  /// Per-host deterministic RNG stream for scheme-internal randomness.
  virtual sim::Rng& rng() = 0;

  virtual sim::TimePoint now() const = 0;
};

/// Per-packet decision state (steps S1/S4 for one broadcast at one host).
class PacketDecider {
 public:
  virtual ~PacketDecider() = default;

  /// S1: called once, right after construction. False = inhibit immediately
  /// (skip straight to S5, never enter the jitter wait).
  virtual bool shouldProceed(HostView& host) = 0;

  /// S4: a duplicate arrived while waiting. True = resume waiting; false =
  /// cancel (S5).
  virtual bool onDuplicate(HostView& host, const Reception& dup) = 0;

  /// FNV-1a fold of the decider's mutable scheme state (counter values,
  /// minimum distances, heard-sender sets, ...), for checkpoint equality
  /// oracles (DESIGN.md §14). Stateless deciders keep the default 0.
  virtual std::uint64_t stateDigest() const { return 0; }
};

/// Scheme factory: one immutable policy object is shared by all hosts; each
/// (host, packet) pair gets a fresh PacketDecider.
class RebroadcastPolicy {
 public:
  virtual ~RebroadcastPolicy() = default;

  virtual std::unique_ptr<PacketDecider> makeDecider(
      HostView& host, const Reception& first) const = 0;

  /// Short label used in tables ("AC", "C=2", "NC", ...).
  virtual std::string name() const = 0;
};

}  // namespace manet::core
