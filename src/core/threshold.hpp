// Threshold functions C(n) and A(n) for the adaptive schemes (§3.1, §3.2)
// including every candidate shape the tuning experiments of §4.1/§4.2
// evaluate (Figs. 5, 6, 8).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace manet::ckpt {
struct StateAccess;
}

namespace manet::core {

/// Decay shapes between n1 and n2 tested in Fig. 5d.
enum class DecayShape {
  kLinear,   // straight line from C(n1) down to 2 at n2
  kConvex,   // slow start, fast finish (quadratic, curving below the line... stays high longer)
  kConcave,  // fast start, slow finish
  kStep,     // stays at C(n1) until just before n2, then drops to 2
};

/// Integer counter threshold C(n), n >= 0. Immutable value type.
///
/// The paper denotes candidates as digit sequences x1 x2 x3 ... meaning
/// C(1)=x1, C(2)=x2, ...; the last digit repeats for all larger n. C(0) is
/// defined as C(1) (a host that knows of no neighbors behaves like one with
/// a single neighbor — it must try to rebroadcast).
class CounterThreshold {
 public:
  /// Fixed-threshold baseline: C(n) = c for all n.
  static CounterThreshold fixed(int c);

  /// Parses the paper's digit-sequence notation, e.g. "22334455555".
  static CounterThreshold fromDigits(std::string_view digits);

  /// The §3.1 shape: C(n) = n+1 up to n1 (so C(n1) = n1+1), then decays to
  /// the floor of 2 at n2 with the given shape, and stays 2 afterwards.
  static CounterThreshold rampAndDecay(int n1, int n2,
                                       DecayShape shape = DecayShape::kLinear);

  /// The tuned function the paper recommends (n1 = 4, n2 = 12, the solid
  /// line of Fig. 6).
  static CounterThreshold suggested();

  int operator()(int n) const;

  /// Digit-sequence rendering (for table labels), truncated after the value
  /// stabilizes: e.g. "23455433222".
  std::string toDigits() const;

  friend bool operator==(const CounterThreshold&,
                         const CounterThreshold&) = default;

 private:
  friend struct manet::ckpt::StateAccess;
  explicit CounterThreshold(std::vector<int> values);
  std::vector<int> values_;  // values_[i] = C(i+1); last repeats
};

/// Additional-coverage threshold A(n) for the (adaptive) location-based
/// scheme. A(n) = 0 forces rebroadcast; larger values inhibit more.
class AreaThreshold {
 public:
  /// Fixed-threshold baseline: A(n) = a for all n.
  static AreaThreshold fixed(double a);

  /// The §3.2 shape: 0 for n <= n1, linear up to `high` at n2, constant
  /// afterwards. `high` defaults to EAC(2)/(pi r^2) = 0.187.
  static AreaThreshold piecewise(int n1, int n2, double high = 0.187);

  /// The tuned function the paper recommends: (n1, n2) = (6, 12).
  static AreaThreshold suggested();

  double operator()(int n) const;

  int n1() const { return n1_; }
  int n2() const { return n2_; }

  friend bool operator==(const AreaThreshold&, const AreaThreshold&) = default;

 private:
  friend struct manet::ckpt::StateAccess;
  AreaThreshold(double low, double high, int n1, int n2);
  double low_ = 0.0;
  double high_ = 0.0;
  int n1_ = 0;
  int n2_ = 0;
};

}  // namespace manet::core
