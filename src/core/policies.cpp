#include "core/policies.hpp"

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "ckpt/digest.hpp"
#include "geom/coverage.hpp"
#include "util/assert.hpp"
#include "util/table.hpp"

namespace manet::core {
namespace {

// ---------------------------------------------------------------- flooding

class FloodingDecider final : public PacketDecider {
 public:
  bool shouldProceed(HostView&) override { return true; }
  bool onDuplicate(HostView&, const Reception&) override { return true; }
};

// ----------------------------------------------------------- probabilistic

class ProbabilisticDecider final : public PacketDecider {
 public:
  explicit ProbabilisticDecider(double p) : p_(p) {}
  bool shouldProceed(HostView& host) override {
    return host.rng().bernoulli(p_);
  }
  bool onDuplicate(HostView&, const Reception&) override {
    // The gamble is taken once, at first reception; duplicates are ignored.
    return true;
  }

 private:
  double p_;
};

// ----------------------------------------------------- counter (fixed C)

class CounterDecider final : public PacketDecider {
 public:
  explicit CounterDecider(int threshold) : threshold_(threshold) {}
  bool shouldProceed(HostView&) override {
    return counter_ < threshold_;  // c = 1 after the first reception
  }
  bool onDuplicate(HostView&, const Reception&) override {
    ++counter_;
    return counter_ < threshold_;
  }
  std::uint64_t stateDigest() const override {
    ckpt::Digest d;
    d.add(static_cast<std::int64_t>(counter_));
    return d.value();
  }

 private:
  int threshold_;
  int counter_ = 1;
};

// -------------------------------------------------- adaptive counter C(n)

class AdaptiveCounterDecider final : public PacketDecider {
 public:
  explicit AdaptiveCounterDecider(const CounterThreshold& fn) : fn_(fn) {}
  bool shouldProceed(HostView& host) override {
    return counter_ < fn_(host.neighborCount());
  }
  bool onDuplicate(HostView& host, const Reception&) override {
    ++counter_;
    // n is re-read on every evaluation: the threshold tracks the host's
    // current neighborhood, which is the whole point of the scheme.
    return counter_ < fn_(host.neighborCount());
  }
  std::uint64_t stateDigest() const override {
    ckpt::Digest d;
    d.add(static_cast<std::int64_t>(counter_));
    return d.value();
  }

 private:
  const CounterThreshold& fn_;
  int counter_ = 1;
};

// --------------------------------------------------- distance (fixed D)

class DistanceDecider final : public PacketDecider {
 public:
  DistanceDecider(double threshold, const Reception& first)
      : threshold_(threshold), minDistance_(0.0) {
    firstPos_ = first.fromPos;
  }
  bool shouldProceed(HostView& host) override {
    minDistance_ = geom::distance(host.position(), firstPos_);
    return minDistance_ >= threshold_;
  }
  bool onDuplicate(HostView& host, const Reception& dup) override {
    minDistance_ = std::min(minDistance_,
                            geom::distance(host.position(), dup.fromPos));
    return minDistance_ >= threshold_;
  }
  std::uint64_t stateDigest() const override {
    ckpt::Digest d;
    d.add(minDistance_);
    d.add(firstPos_.x);
    d.add(firstPos_.y);
    return d.value();
  }

 private:
  double threshold_;
  double minDistance_;
  geom::Vec2 firstPos_;
};

// --------------------------------- location (fixed A / adaptive A(n))

/// Shared machinery: accumulates heard-sender positions and re-estimates the
/// residual additional coverage; the threshold to compare against is
/// supplied by the subclass (constant or A(n)).
class CoverageTracker {
 public:
  explicit CoverageTracker(CoverageSampling sampling) : sampling_(sampling) {}

  void addSender(geom::Vec2 pos) { senders_.push_back(pos); }

  /// Accumulated heard-sender positions, in arrival order.
  std::uint64_t digest() const {
    ckpt::Digest d;
    d.add(static_cast<std::uint64_t>(senders_.size()));
    for (geom::Vec2 p : senders_) {
      d.add(p.x);
      d.add(p.y);
    }
    return d.value();
  }

  /// ac: fraction of the host's disk not covered by any heard sender.
  double additionalCoverage(HostView& host) const {
    return geom::uncoveredFraction(host.position(), senders_, host.radius(),
                                   host.rng(), sampling_.samples);
  }

 private:
  CoverageSampling sampling_;
  std::vector<geom::Vec2> senders_;
};

class LocationDecider final : public PacketDecider {
 public:
  LocationDecider(double threshold, CoverageSampling sampling,
                  const Reception& first)
      : threshold_(threshold), tracker_(sampling) {
    tracker_.addSender(first.fromPos);
  }
  bool shouldProceed(HostView& host) override {
    return tracker_.additionalCoverage(host) >= threshold_;
  }
  bool onDuplicate(HostView& host, const Reception& dup) override {
    tracker_.addSender(dup.fromPos);
    return tracker_.additionalCoverage(host) >= threshold_;
  }
  std::uint64_t stateDigest() const override { return tracker_.digest(); }

 private:
  double threshold_;
  CoverageTracker tracker_;
};

class AdaptiveLocationDecider final : public PacketDecider {
 public:
  AdaptiveLocationDecider(const AreaThreshold& fn, CoverageSampling sampling,
                          const Reception& first)
      : fn_(fn), tracker_(sampling) {
    tracker_.addSender(first.fromPos);
  }
  bool shouldProceed(HostView& host) override {
    const double threshold = fn_(host.neighborCount());
    if (threshold <= 0.0) return true;  // n <= n1 forces the rebroadcast
    return tracker_.additionalCoverage(host) >= threshold;
  }
  bool onDuplicate(HostView& host, const Reception& dup) override {
    tracker_.addSender(dup.fromPos);
    const double threshold = fn_(host.neighborCount());
    if (threshold <= 0.0) return true;
    return tracker_.additionalCoverage(host) >= threshold;
  }
  std::uint64_t stateDigest() const override { return tracker_.digest(); }

 private:
  const AreaThreshold& fn_;
  CoverageTracker tracker_;
};

// ------------------------------------------------------ neighbor coverage

class NeighborCoverageDecider final : public PacketDecider {
 public:
  explicit NeighborCoverageDecider(const Reception& first) : first_(first) {}

  bool shouldProceed(HostView& host) override {
    // T = N_x - N_{x,h} - {h}
    for (net::HostId id : host.neighborIds()) pending_.insert(id);
    subtractCoveredBy(host, first_.from);
    return !pending_.empty();
  }

  bool onDuplicate(HostView& host, const Reception& dup) override {
    // T = T - N_{x,h'} - {h'}
    subtractCoveredBy(host, dup.from);
    return !pending_.empty();
  }

  std::uint64_t stateDigest() const override {
    // NOLINT-determinism(collected into a vector and sorted before folding)
    std::vector<net::HostId> pending(pending_.begin(), pending_.end());
    std::sort(pending.begin(), pending.end());
    ckpt::Digest d;
    d.add(static_cast<std::uint64_t>(pending.size()));
    for (net::HostId id : pending) d.add(id.value());
    return d.value();
  }

 private:
  void subtractCoveredBy(HostView& host, net::HostId h) {
    pending_.erase(h);
    if (auto theirs = host.neighborsOf(h)) {
      for (net::HostId id : *theirs) pending_.erase(id);
    }
  }

  Reception first_;
  std::unordered_set<net::HostId> pending_;  // T: neighbors still uncovered
};

}  // namespace

std::unique_ptr<PacketDecider> FloodingPolicy::makeDecider(
    HostView&, const Reception&) const {
  return std::make_unique<FloodingDecider>();
}

ProbabilisticPolicy::ProbabilisticPolicy(double p) : p_(p) {
  MANET_EXPECTS(p >= 0.0 && p <= 1.0);
}

std::unique_ptr<PacketDecider> ProbabilisticPolicy::makeDecider(
    HostView&, const Reception&) const {
  return std::make_unique<ProbabilisticDecider>(p_);
}

std::string ProbabilisticPolicy::name() const {
  return "P=" + util::fmt(p_, 2);
}

CounterPolicy::CounterPolicy(int threshold) : threshold_(threshold) {
  MANET_EXPECTS(threshold >= 1);
}

std::unique_ptr<PacketDecider> CounterPolicy::makeDecider(
    HostView&, const Reception&) const {
  return std::make_unique<CounterDecider>(threshold_);
}

std::string CounterPolicy::name() const {
  return "C=" + std::to_string(threshold_);
}

DistancePolicy::DistancePolicy(double thresholdMeters)
    : thresholdMeters_(thresholdMeters) {
  MANET_EXPECTS(thresholdMeters >= 0.0);
}

std::unique_ptr<PacketDecider> DistancePolicy::makeDecider(
    HostView&, const Reception& first) const {
  return std::make_unique<DistanceDecider>(thresholdMeters_, first);
}

std::string DistancePolicy::name() const {
  return "D=" + util::fmt(thresholdMeters_, 0);
}

LocationPolicy::LocationPolicy(double threshold, CoverageSampling sampling)
    : threshold_(threshold), sampling_(sampling) {
  MANET_EXPECTS(threshold >= 0.0 && threshold <= 1.0);
  MANET_EXPECTS(sampling.samples > 0);
}

std::unique_ptr<PacketDecider> LocationPolicy::makeDecider(
    HostView&, const Reception& first) const {
  return std::make_unique<LocationDecider>(threshold_, sampling_, first);
}

std::string LocationPolicy::name() const {
  return "A=" + util::fmt(threshold_, 4);
}

AdaptiveCounterPolicy::AdaptiveCounterPolicy(CounterThreshold fn,
                                             std::string label)
    : fn_(std::move(fn)), label_(std::move(label)) {}

std::unique_ptr<PacketDecider> AdaptiveCounterPolicy::makeDecider(
    HostView&, const Reception&) const {
  return std::make_unique<AdaptiveCounterDecider>(fn_);
}

AdaptiveLocationPolicy::AdaptiveLocationPolicy(AreaThreshold fn,
                                               std::string label,
                                               CoverageSampling sampling)
    : fn_(std::move(fn)), label_(std::move(label)), sampling_(sampling) {
  MANET_EXPECTS(sampling.samples > 0);
}

std::unique_ptr<PacketDecider> AdaptiveLocationPolicy::makeDecider(
    HostView&, const Reception& first) const {
  return std::make_unique<AdaptiveLocationDecider>(fn_, sampling_, first);
}

std::unique_ptr<PacketDecider> NeighborCoveragePolicy::makeDecider(
    HostView&, const Reception& first) const {
  return std::make_unique<NeighborCoverageDecider>(first);
}

}  // namespace manet::core
