// NACK-based reliable broadcast, layered on the suppression schemes.
//
// The paper keeps its broadcast deliberately unreliable (§2.1) but notes
// that "the result in this paper may serve as an underlying facility to
// implement reliable broadcast" [16][17]. This module is that facility put
// to work:
//
//  * every source numbers its broadcasts (the (source ID, seq) tuple the
//    duplicate-detection already uses);
//  * a host that receives seq k from an origin and notices missing seqs
//    below k sends a unicast repair_request for each gap — first to the
//    relay it heard k from, then (if that fails or goes unanswered) to a
//    random current neighbor;
//  * any host holding the missing broadcast answers with a unicast
//    repair_data carrying it.
//
// Being NACK-based, a loss is only detected when a LATER broadcast from the
// same origin arrives — the classic trade-off (no per-packet ACK storm, but
// the final broadcast of a source is unprotected).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "experiment/host.hpp"
#include "experiment/world.hpp"
#include "net/ids.hpp"
#include "net/packet.hpp"

namespace manet::relbc {

struct RelbcConfig {
  /// Grace period between detecting a gap and requesting the repair (lets
  /// the flood itself fill the gap first).
  sim::Duration repairDelay = 50 * sim::kMillisecond;
  /// How long to wait for repair_data before the next attempt.
  sim::Duration repairTimeout = 200 * sim::kMillisecond;
  /// Total request attempts per missing broadcast.
  int maxAttempts = 2;
  /// Wire size of a repair request.
  std::size_t requestBytes = 32;
};

class RelbcHarness;

/// Per-host agent. Tracks per-origin sequence coverage, issues and serves
/// repairs.
class RelbcAgent final : public experiment::HostApp {
 public:
  RelbcAgent(RelbcHarness& harness, experiment::Host& host,
             RelbcConfig config);

  /// Broadcasts this host has, whether flooded to it or repaired.
  bool hasBroadcast(net::BroadcastId bid) const;
  std::size_t recoveredCount() const { return recovered_.size(); }

  // --- experiment::HostApp ---
  void onBroadcastDelivered(experiment::Host& host,
                            const net::Packet& packet) override;
  void onBroadcastOriginated(experiment::Host& host,
                             const net::Packet& packet) override;
  void onUnicastDelivered(experiment::Host& host,
                          const net::Packet& packet) override;

 private:
  struct RepairState {
    int attempts = 0;
    sim::Scheduler::Handle timer;
  };

  void noteHave(net::BroadcastId bid);
  void detectGaps(net::HostId origin, net::BroadcastSeq seenSeq,
                  net::HostId heardFrom);
  void scheduleRepair(net::BroadcastId missing, net::HostId candidate,
                      sim::Duration delay);
  void attemptRepair(net::BroadcastId missing, net::HostId candidate);

  RelbcHarness& harness_;
  experiment::Host& host_;
  RelbcConfig config_;
  /// Per-origin set of seqs held (flooded or repaired).
  std::unordered_map<net::HostId, std::set<net::BroadcastSeq>,
                     util::TaggedIdHash>
      have_;
  std::unordered_map<net::BroadcastId, RepairState, net::BroadcastIdHash>
      pendingRepairs_;
  std::set<std::pair<net::HostId, net::BroadcastSeq>> recovered_;
};

/// Attaches an agent to every host; aggregates repair statistics.
class RelbcHarness {
 public:
  explicit RelbcHarness(experiment::World& world, RelbcConfig config = {});

  RelbcAgent& agent(net::HostId id) { return *agents_[id.value()]; }

  /// Broadcasts recovered via repair, summed over all hosts.
  std::size_t totalRecovered() const;
  std::uint64_t repairRequestsSent() const { return repairRequests_; }
  std::uint64_t repairsServed() const { return repairsServed_; }

  /// Effective per-broadcast delivery after repair: for each broadcast of
  /// the run, (flood deliveries + repairs) / e, averaged (clamped to 1).
  /// `world` metrics provide the flood side.
  double reachabilityAfterRepair() const;

 private:
  friend class RelbcAgent;
  experiment::World& world_;
  RelbcConfig config_;
  std::vector<std::unique_ptr<RelbcAgent>> agents_;
  std::uint64_t repairRequests_ = 0;
  std::uint64_t repairsServed_ = 0;
  std::unordered_map<net::BroadcastId, int, net::BroadcastIdHash>
      recoveredPerBid_;
};

}  // namespace manet::relbc
