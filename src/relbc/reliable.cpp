#include "relbc/reliable.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace manet::relbc {

RelbcAgent::RelbcAgent(RelbcHarness& harness, experiment::Host& host,
                       RelbcConfig config)
    : harness_(harness), host_(host), config_(config) {
  host.setApp(this);
}

bool RelbcAgent::hasBroadcast(net::BroadcastId bid) const {
  auto it = have_.find(bid.origin);
  return it != have_.end() && it->second.contains(bid.seq);
}

void RelbcAgent::noteHave(net::BroadcastId bid) {
  have_[bid.origin].insert(bid.seq);
  // A pending repair for this bid is now moot.
  auto it = pendingRepairs_.find(bid);
  if (it != pendingRepairs_.end()) {
    it->second.timer.cancel();
    pendingRepairs_.erase(it);
  }
}

void RelbcAgent::onBroadcastDelivered(experiment::Host&,
                                      const net::Packet& packet) {
  noteHave(packet.bid);
  detectGaps(packet.bid.origin, packet.bid.seq, packet.sender);
}

void RelbcAgent::onBroadcastOriginated(experiment::Host&,
                                       const net::Packet& packet) {
  // The origin trivially holds its own broadcast and must serve repairs
  // for it.
  noteHave(packet.bid);
}

void RelbcAgent::detectGaps(net::HostId origin, net::BroadcastSeq seenSeq,
                            net::HostId heardFrom) {
  const std::set<net::BroadcastSeq>& seqs = have_[origin];
  for (net::BroadcastSeq seq{}; seq < seenSeq; ++seq) {
    if (seqs.contains(seq)) continue;
    const net::BroadcastId missing{origin, seq};
    if (pendingRepairs_.contains(missing)) continue;
    pendingRepairs_[missing];  // attempts = 0
    scheduleRepair(missing, heardFrom, config_.repairDelay);
  }
}

void RelbcAgent::scheduleRepair(net::BroadcastId missing,
                                net::HostId candidate, sim::Duration delay) {
  auto it = pendingRepairs_.find(missing);
  if (it == pendingRepairs_.end()) return;
  it->second.timer = host_.scheduler().scheduleAfter(
      delay, [this, missing, candidate] { attemptRepair(missing, candidate); });
}

void RelbcAgent::attemptRepair(net::BroadcastId missing,
                               net::HostId candidate) {
  auto it = pendingRepairs_.find(missing);
  if (it == pendingRepairs_.end()) return;  // repaired meanwhile
  if (it->second.attempts >= config_.maxAttempts) {
    pendingRepairs_.erase(it);  // give up
    return;
  }
  ++it->second.attempts;

  // Resolve whom to ask: the suggested candidate, or a current neighbor for
  // later attempts (the original relay may be gone or not hold the packet).
  net::HostId target = candidate;
  if (it->second.attempts > 1 || target == host_.id() ||
      target == net::kInvalidHost) {
    const auto neighbors = host_.neighborIds();
    if (neighbors.empty()) {
      // Alone right now: retry later with whatever neighborhood appears.
      scheduleRepair(missing, candidate, config_.repairTimeout);
      return;
    }
    target = neighbors[static_cast<std::size_t>(host_.rng().uniformInt(
        0, static_cast<std::int64_t>(neighbors.size()) - 1))];
  }

  auto request = net::makePacket();
  request->type = net::PacketType::kData;
  request->appKind = net::Packet::AppKind::kRepairRequest;
  request->bid = missing;
  host_.sendUnicast(target, std::move(request), config_.requestBytes);
  ++harness_.repairRequests_;

  // Re-arm: if no repair_data lands before the timeout, try again.
  scheduleRepair(missing, candidate, config_.repairTimeout);
}

void RelbcAgent::onUnicastDelivered(experiment::Host& host,
                                    const net::Packet& packet) {
  switch (packet.appKind) {
    case net::Packet::AppKind::kRepairRequest: {
      if (!hasBroadcast(packet.bid)) return;  // can't help
      auto repair = net::makePacket();
      repair->type = net::PacketType::kData;
      repair->appKind = net::Packet::AppKind::kRepairData;
      repair->bid = packet.bid;
      host.sendUnicast(packet.sender, std::move(repair),
                       net::kDataPacketBytes);
      ++harness_.repairsServed_;
      return;
    }
    case net::Packet::AppKind::kRepairData: {
      if (hasBroadcast(packet.bid)) return;  // duplicate repair
      noteHave(packet.bid);
      recovered_.insert({packet.bid.origin, packet.bid.seq});
      ++harness_.recoveredPerBid_[packet.bid];
      return;
    }
    default:
      return;
  }
}

RelbcHarness::RelbcHarness(experiment::World& world, RelbcConfig config)
    : world_(world), config_(config) {
  agents_.reserve(world.hostCount());
  for (std::size_t i = 0; i < world.hostCount(); ++i) {
    const net::HostId id{static_cast<std::uint32_t>(i)};
    agents_.push_back(
        std::make_unique<RelbcAgent>(*this, world.host(id), config));
  }
}

std::size_t RelbcHarness::totalRecovered() const {
  std::size_t total = 0;
  for (const auto& agent : agents_) total += agent->recoveredCount();
  return total;
}

double RelbcHarness::reachabilityAfterRepair() const {
  double sum = 0.0;
  int counted = 0;
  for (const auto& pb : world_.metrics().broadcasts()) {
    if (pb.reachable <= 0) continue;
    int received = pb.received;
    auto it = recoveredPerBid_.find(pb.bid);
    if (it != recoveredPerBid_.end()) received += it->second;
    sum += std::min(1.0, static_cast<double>(received) /
                             static_cast<double>(pb.reachable));
    ++counted;
  }
  return counted > 0 ? sum / counted : 1.0;
}

}  // namespace manet::relbc
