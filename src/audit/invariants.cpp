#include "audit/invariants.hpp"

#include <string>

namespace manet::audit {

namespace {

std::string timesDetail(const char* what, sim::TimePoint observed,
                        const char* bound, sim::TimePoint limit) {
  return std::string(what) + "=" + std::to_string(observed.ticks()) + " " +
         bound + "=" + std::to_string(limit.ticks());
}

}  // namespace

// --- SchedulerAudit ---------------------------------------------------------

void SchedulerAudit::onSchedule(sim::TimePoint at, sim::TimePoint now) {
  if (at < now) {
    report({"scheduler.schedule-in-past", now, net::kInvalidHost,
            timesDetail("eventAt", at, "now", now)});
  }
}

void SchedulerAudit::onPop(sim::TimePoint at) {
  if (at < lastPop_) {
    report({"scheduler.monotonic-pop", at, net::kInvalidHost,
            timesDetail("poppedAt", at, "lastPop", lastPop_)});
  }
  lastPop_ = at;
}

void SchedulerAudit::onCancel(sim::TimePoint eventAt, sim::TimePoint now) {
  // Cancelling an event due exactly now is legal (same-timestamp inhibition,
  // the paper's step S5); an event strictly in the past can only still be
  // live if the pop loop skipped it — a race with the clock.
  if (eventAt < now) {
    report({"scheduler.cancel-past-event", now, net::kInvalidHost,
            timesDetail("eventAt", eventAt, "now", now)});
  }
}

void SchedulerAudit::onCount(std::size_t live, std::size_t resident,
                             sim::TimePoint now) {
  if (live != resident) {
    report({"scheduler.count-drift", now, net::kInvalidHost,
            "live=" + std::to_string(live) +
                " heapResident=" + std::to_string(resident)});
  }
}

// --- ChannelAudit -----------------------------------------------------------

ChannelAudit::PerNode& ChannelAudit::node(net::HostId id) {
  if (id.value() >= nodes_.size()) nodes_.resize(id.value() + 1);
  return nodes_[id.value()];
}

void ChannelAudit::onBeginReception(net::HostId rx, sim::TimePoint at) {
  (void)at;
  ++node(rx).active;
  ++begins_;
}

void ChannelAudit::onEndReception(net::HostId rx, sim::TimePoint at) {
  PerNode& n = node(rx);
  if (n.active <= 0) {
    report({"channel.reception-underflow", at, rx,
            "reception ended with none in flight"});
    return;
  }
  --n.active;
  ++ends_;
}

void ChannelAudit::onEnergyRaise(net::HostId rx, sim::TimePoint at) {
  (void)at;
  ++node(rx).energy;
}

void ChannelAudit::onEnergyLower(net::HostId rx, sim::TimePoint at) {
  PerNode& n = node(rx);
  if (n.energy <= 0) {
    report({"channel.energy-underflow", at, rx,
            "carrier energy lowered below zero"});
    return;
  }
  --n.energy;
}

void ChannelAudit::onHostDown(net::HostId rx, std::size_t flushed,
                              sim::TimePoint at) {
  PerNode& n = node(rx);
  if (n.active != static_cast<std::int64_t>(flushed)) {
    report({"channel.flush-mismatch", at, rx,
            "flushed=" + std::to_string(flushed) +
                " inFlight=" + std::to_string(n.active)});
  }
  flushes_ += static_cast<std::uint64_t>(n.active > 0 ? n.active : 0);
  n.active = 0;
  n.energy = 0;
}

void ChannelAudit::onDeliveryWhileDown(net::HostId rx, sim::TimePoint at) {
  report({"channel.down-node-delivery", at, rx,
          "reception completed at a churned-down node"});
}

void ChannelAudit::atTeardown(std::uint64_t inFlight, sim::TimePoint at) {
  if (begins_ != ends_ + flushes_ + inFlight) {
    report({"channel.teardown-balance", at, net::kInvalidHost,
            "begins=" + std::to_string(begins_) +
                " ends=" + std::to_string(ends_) +
                " flushes=" + std::to_string(flushes_) +
                " inFlight=" + std::to_string(inFlight)});
  }
}

// --- DcfAudit ---------------------------------------------------------------

void DcfAudit::onAirTransition(Air to, sim::TimePoint at) {
  if (to != Air::kNone && air_ != Air::kNone) {
    report({"mac.onair-overlap", at, self_,
            "frame kind " + std::to_string(static_cast<int>(to)) +
                " started while kind " +
                std::to_string(static_cast<int>(air_)) + " was on air"});
  } else if (to == Air::kNone && air_ == Air::kNone) {
    report({"mac.onair-underflow", at, self_,
            "transmission ended with nothing on air"});
  }
  air_ = to;
}

void DcfAudit::onExchangeTransition(Exchange to, sim::TimePoint at) {
  // Legal steps: kNone -> kAwaitCts (RTS sent), kNone -> kAwaitAck (DATA
  // sent), anything -> kNone (response arrived, timeout, or abort). Awaiting
  // two responses at once is not a state the DCF has.
  if (to != Exchange::kNone && exchange_ != Exchange::kNone) {
    report({"mac.exchange-illegal", at, self_,
            "entered wait " + std::to_string(static_cast<int>(to)) +
                " while already in wait " +
                std::to_string(static_cast<int>(exchange_))});
  }
  exchange_ = to;
}

void DcfAudit::onReset() {
  air_ = Air::kNone;
  exchange_ = Exchange::kNone;
}

// --- NeighborAudit ----------------------------------------------------------

void NeighborAudit::onPurge(sim::TimePoint now) {
  if (now < lastPurge_) {
    report({"neighbor.purge-order", now, self_,
            timesDetail("now", now, "lastPurge", lastPurge_)});
  }
  lastPurge_ = now;
}

void NeighborAudit::onExpire(sim::TimePoint expiry, sim::TimePoint now) {
  // The table deletes h when no HELLO arrived for two intervals, i.e. only
  // once its deadline lies strictly in the past.
  if (expiry >= now) {
    report({"neighbor.premature-expiry", now, self_,
            timesDetail("expiry", expiry, "now", now)});
  }
}

void NeighborAudit::onClear() {
  lastPurge_ = sim::TimePoint{std::numeric_limits<std::int64_t>::min()};
}

// --- ChurnAudit -------------------------------------------------------------

void ChurnAudit::onCrashReset(net::HostId node, bool macQuiescent,
                              bool statesFlushed, bool tableCleared,
                              sim::TimePoint at) {
  if (macQuiescent && statesFlushed && tableCleared) return;
  std::string detail = "residue after crash reset:";
  if (!macQuiescent) detail += " mac-not-quiescent";
  if (!statesFlushed) detail += " broadcast-states";
  if (!tableCleared) detail += " neighbor-table";
  report({"churn.crash-reset-incomplete", at, node, detail});
}

}  // namespace manet::audit
