// Invariant checkers for the simulation engine (DESIGN.md §9).
//
// Each checker is a small always-compiled state machine that mirrors the
// aspect of engine state its invariants range over and calls audit::report
// on any illegal step. The engine feeds them through MANET_AUDIT_HOOK call
// sites (active only under -DMANET_AUDIT=ON); tests feed them corrupted
// sequences directly, in any build configuration.
//
// Invariant identifiers are stable strings (they appear in violation
// reports and in tests):
//   scheduler.schedule-in-past   event scheduled before now
//   scheduler.monotonic-pop      event popped earlier than its predecessor
//   scheduler.cancel-past-event  live event cancelled after its due time
//   scheduler.count-drift        live count != heap-resident count
//   channel.reception-underflow  reception ended with none in flight
//   channel.energy-underflow     carrier energy lowered below zero
//   channel.flush-mismatch       host-down flush disagreed with in-flight set
//   channel.down-node-delivery   frame completed at a churned-down node
//   channel.teardown-balance     begin/end/flush ledger broken at teardown
//   mac.onair-overlap            a frame started while another was on air
//   mac.onair-underflow          a frame ended with nothing on air
//   mac.exchange-illegal         RTS/CTS/ACK exchange step out of order
//   neighbor.purge-order         purge called with a time going backwards
//   neighbor.premature-expiry    entry expired before its deadline
//   churn.crash-reset-incomplete host state survived a crash reset
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "audit/audit.hpp"
#include "net/ids.hpp"
#include "sim/time.hpp"

namespace manet::audit {

/// Scheduler invariants: pop-time monotonicity and cancellation hygiene.
class SchedulerAudit {
 public:
  /// A new event was scheduled for `at` while the clock reads `now`.
  void onSchedule(sim::TimePoint at, sim::TimePoint now);
  /// The next live event, timestamped `at`, is about to run.
  void onPop(sim::TimePoint at);
  /// A still-pending event scheduled for `eventAt` was cancelled at `now`.
  void onCancel(sim::TimePoint eventAt, sim::TimePoint now);
  /// After every pop/cancel the scheduler reports its redundant live-event
  /// counter and the heap's resident size; with eager cancel removal the
  /// two must always agree, so any drift is a pool/heap bookkeeping bug.
  void onCount(std::size_t live, std::size_t resident, sim::TimePoint now);

  sim::TimePoint lastPopTime() const { return lastPop_; }

 private:
  sim::TimePoint lastPop_ = sim::TimePoint{std::numeric_limits<std::int64_t>::min()};
};

/// Channel invariants: per-node reception balance, carrier-energy
/// accounting, and churn flush consistency.
class ChannelAudit {
 public:
  void onBeginReception(net::HostId rx, sim::TimePoint at);
  void onEndReception(net::HostId rx, sim::TimePoint at);
  void onEnergyRaise(net::HostId rx, sim::TimePoint at);
  void onEnergyLower(net::HostId rx, sim::TimePoint at);
  /// Node `rx` churned down; `flushed` receptions were returned. Must equal
  /// the mirror's in-flight count; both ledgers reset to zero.
  void onHostDown(net::HostId rx, std::size_t flushed, sim::TimePoint at);
  /// A reception completion reached a node that is churned down.
  void onDeliveryWhileDown(net::HostId rx, sim::TimePoint at);
  /// End-of-life balance check. `inFlight` is the channel's own count of
  /// receptions still on the air (legitimate when the run stops mid-frame).
  void atTeardown(std::uint64_t inFlight, sim::TimePoint at);

  std::uint64_t begins() const { return begins_; }
  std::uint64_t ends() const { return ends_; }
  std::uint64_t flushes() const { return flushes_; }

 private:
  struct PerNode {
    std::int64_t active = 0;  // receptions in flight
    std::int64_t energy = 0;  // carrier-sense busy count
  };
  PerNode& node(net::HostId id);

  std::vector<PerNode> nodes_;
  std::uint64_t begins_ = 0;
  std::uint64_t ends_ = 0;
  std::uint64_t flushes_ = 0;
};

/// DCF state-machine legality. Mirrors what the station has on the air and
/// which exchange step it awaits; any transition outside the 802.11 DCF
/// diagram is a violation.
class DcfAudit {
 public:
  enum class Air { kNone, kBroadcast, kData, kRts, kCts, kAck };
  enum class Exchange { kNone, kAwaitCts, kAwaitAck };

  explicit DcfAudit(net::HostId self = net::kInvalidHost) : self_(self) {}

  /// A frame of kind `to` starts transmitting (to != kNone), or the frame on
  /// the air ends (to == kNone).
  void onAirTransition(Air to, sim::TimePoint at);
  /// The initiator starts awaiting `to` (kAwaitCts after RTS, kAwaitAck
  /// after DATA), or resolves the wait (kNone).
  void onExchangeTransition(Exchange to, sim::TimePoint at);
  /// Crash reset: forces both machines to idle; always legal.
  void onReset();

  Air air() const { return air_; }
  Exchange exchange() const { return exchange_; }

 private:
  net::HostId self_;
  Air air_ = Air::kNone;
  Exchange exchange_ = Exchange::kNone;
};

/// Neighbor-table expiry ordering: purges observe non-decreasing time and
/// only remove entries whose deadline has truly passed.
class NeighborAudit {
 public:
  explicit NeighborAudit(net::HostId self = net::kInvalidHost)
      : self_(self) {}

  void onPurge(sim::TimePoint now);
  /// An entry with deadline `expiry` is being removed at `now`.
  void onExpire(sim::TimePoint expiry, sim::TimePoint now);
  /// Crash reset forgets all entries and the purge clock.
  void onClear();

 private:
  net::HostId self_;
  sim::TimePoint lastPurge_ = sim::TimePoint{std::numeric_limits<std::int64_t>::min()};
};

/// Host churn consistency: a crash reset must leave no protocol residue.
class ChurnAudit {
 public:
  /// Called after a host finished its crash reset. Every flag reports one
  /// flushed subsystem; any false is a violation.
  void onCrashReset(net::HostId node, bool macQuiescent, bool statesFlushed,
                    bool tableCleared, sim::TimePoint at);
};

}  // namespace manet::audit
