// Simulation invariant auditor (DESIGN.md §9).
//
// The paper's RE/SRB tables are only as trustworthy as the discrete-event
// engine underneath them: a non-monotonic event pop, an unbalanced channel
// reception, or an illegal MAC transition silently corrupts every number we
// publish. This subsystem compiles runtime checks for those invariants into
// the engine when the build sets -DMANET_AUDIT=ON (macro
// MANET_AUDIT_ENABLED=1).
//
// Two layers:
//  * Checker classes (audit/invariants.hpp) — plain, always-compiled state
//    machines that validate an event sequence and report violations. Tests
//    drive them directly with corrupted sequences in any build config.
//  * Component hooks — calls into the checkers from Scheduler, Channel,
//    DcfMac, NeighborTable, and Host, wrapped in MANET_AUDIT_HOOK so an
//    audit-off build contains zero audit code or data and its output is
//    byte-identical to a never-instrumented binary.
//
// Violations route through a per-thread sink (each World owns the thread it
// runs on, including under the parallel sweep runner). The default sink
// prints the violation with full event context and aborts: a corrupt engine
// must never finish a run quietly. Tests install a capturing sink instead.
#pragma once

#include <cstdint>
#include <string>

#include "net/ids.hpp"
#include "sim/time.hpp"

#ifndef MANET_AUDIT_ENABLED
#define MANET_AUDIT_ENABLED 0
#endif

#if MANET_AUDIT_ENABLED
// Statement-level hook: expands to the statement when auditing is compiled
// in, to nothing otherwise. Keep side effects out of hook arguments.
#define MANET_AUDIT_HOOK(stmt) \
  do {                         \
    stmt;                      \
  } while (false)
#else
#define MANET_AUDIT_HOOK(stmt) \
  do {                         \
  } while (false)
#endif

namespace manet::audit {

/// Compile-time audit switch, usable in ordinary `if` conditions.
inline constexpr bool kEnabled = MANET_AUDIT_ENABLED != 0;

/// One invariant violation, with the event context the checker saw.
struct Violation {
  /// Stable dotted identifier, e.g. "scheduler.monotonic-pop".
  const char* invariant = "";
  /// Simulation time the violation was detected at.
  sim::TimePoint at{};
  /// The host/node involved, or net::kInvalidHost when not applicable.
  net::HostId node = net::kInvalidHost;
  /// Human-readable specifics (observed vs. expected values).
  std::string detail;
};

/// Receives violations for the current thread's run.
class Sink {
 public:
  virtual ~Sink() = default;
  virtual void onViolation(const Violation& violation) = 0;
};

/// Installs `sink` for this thread and returns the previous one (restore it
/// when the scope ends). nullptr restores the default print-and-abort sink.
Sink* setSink(Sink* sink);
Sink* currentSink();

/// The default print-and-abort sink (what an unregistered thread uses).
/// Chaining sinks forward here to preserve fail-stop semantics.
Sink& defaultSink();

/// Reports a violation to the thread's sink and bumps the thread counter.
/// With the default sink this prints context to stderr and aborts.
void report(Violation violation);

/// Violations reported on this thread since the last reset.
std::uint64_t violationCount();
void resetViolationCount();

/// RAII: capture violations (count only, no abort) for a scope. Used by
/// tests and by harnesses that want to scan rather than crash.
class ScopedCountingSink final : public Sink {
 public:
  ScopedCountingSink();
  ~ScopedCountingSink() override;
  ScopedCountingSink(const ScopedCountingSink&) = delete;
  ScopedCountingSink& operator=(const ScopedCountingSink&) = delete;

  void onViolation(const Violation& violation) override;

  std::uint64_t count() const { return count_; }
  /// The most recent violation (valid when count() > 0).
  const Violation& last() const { return last_; }

 private:
  Sink* previous_ = nullptr;
  std::uint64_t count_ = 0;
  Violation last_;
};

}  // namespace manet::audit
