#include "audit/audit.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

namespace manet::audit {

namespace {

/// Default sink: print with full context, then abort. A violation means the
/// engine's state is corrupt; any table produced after it is untrustworthy.
class AbortSink final : public Sink {
 public:
  void onViolation(const Violation& v) override {
    std::fprintf(stderr,
                 "audit: invariant '%s' violated at t=%" PRId64 "us node=%u: "
                 "%s\n",
                 v.invariant, v.at.ticks(),
                 static_cast<unsigned>(v.node.value()), v.detail.c_str());
    std::abort();
  }
};

AbortSink& abortSink() {
  static AbortSink sink;
  return sink;
}

thread_local Sink* tlsSink = nullptr;
thread_local std::uint64_t tlsCount = 0;

}  // namespace

Sink& defaultSink() { return abortSink(); }

Sink* setSink(Sink* sink) {
  Sink* previous = tlsSink;
  tlsSink = sink;
  return previous;
}

Sink* currentSink() { return tlsSink; }

void report(Violation violation) {
  ++tlsCount;
  Sink* sink = tlsSink != nullptr ? tlsSink : &abortSink();
  sink->onViolation(violation);
}

std::uint64_t violationCount() { return tlsCount; }

void resetViolationCount() { tlsCount = 0; }

ScopedCountingSink::ScopedCountingSink() { previous_ = setSink(this); }

ScopedCountingSink::~ScopedCountingSink() { setSink(previous_); }

void ScopedCountingSink::onViolation(const Violation& violation) {
  ++count_;
  last_ = violation;
}

}  // namespace manet::audit
