// Discrete-event scheduler: the "event-driven engine" at the center of the
// paper's simulator (§4). Single-threaded, deterministic: events at equal
// timestamps run in scheduling (FIFO) order — the heap orders by (at, seq)
// where seq is the global schedule counter, a total order, so the execution
// sequence is independent of heap arity or memory layout.
//
// Memory layout (DESIGN.md §11): event nodes live in slab-allocated pools
// and are recycled through a free list, so a steady-state run performs no
// per-event allocations. Handles are generation-counted (slot, gen) pairs —
// plain values, no shared_ptr — and a handle outliving its event is detected
// by generation mismatch, which keeps cancel()/pending() safe on recycled
// slots. The priority queue is an indexed 4-ary min-heap with eager removal
// on cancel: no dead items accumulate, pendingCount() is O(1), and the
// audit's live-count == heap-resident-count invariant holds after every
// pop/cancel.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "audit/audit.hpp"
#include "sim/inline_fn.hpp"
#include "sim/time.hpp"
#include "util/tagged_id.hpp"

#if MANET_AUDIT_ENABLED
#include "audit/invariants.hpp"
#endif

namespace manet::ckpt {
struct StateAccess;
}

namespace manet::sim {

/// Slot index into the scheduler's pooled event slabs. Tagged (DESIGN.md
/// §13) so a slot can't be confused with a generation count or any other
/// uint32 riding through handle plumbing.
using EventSlot = util::TaggedId<struct EventSlotTag, std::uint32_t>;
/// Generation counter of one pool slot; a handle is stale when its
/// generation no longer matches the slot's.
using EventGen = util::TaggedId<struct EventGenTag, std::uint32_t>;

/// Pooled-slab event scheduler with cancellable events.
class Scheduler {
 public:
  using Callback = InlineFn;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Cancellable reference to a scheduled event: the owning scheduler plus
  /// an 8-byte (slot, generation) id into its node pool. Default-constructed
  /// handles are inert. Handles are trivially copyable values; a stale
  /// handle (its event fired or was cancelled, even if the slot has since
  /// been recycled) is detected by generation mismatch and ignored.
  class Handle {
   public:
    Handle() = default;

    /// Cancels the event if it has not fired yet; idempotent.
    void cancel();

    /// True while the event is scheduled and neither fired nor cancelled.
    bool pending() const;

   private:
    friend class Scheduler;
    Handle(Scheduler* owner, EventSlot slot, EventGen gen)
        : owner_(owner), slot_(slot), gen_(gen) {}
    Scheduler* owner_ = nullptr;
    EventSlot slot_{};
    EventGen gen_{};
  };

  /// Schedules `fn` to run at absolute time `at` (must be >= now()).
  Handle schedule(TimePoint at, Callback fn);

  /// Schedules `fn` to run `delay` from now (delay >= 0).
  Handle scheduleAfter(Duration delay, Callback fn);

  /// Current simulation time (time of the most recently fired event).
  TimePoint now() const { return now_; }

  /// Number of live (non-cancelled) events still queued. O(1); cancelled
  /// events are removed from the heap eagerly, so this is the heap size.
  std::size_t pendingCount() const { return heap_.size(); }

  /// Runs the next live event; returns false when the queue is empty.
  bool runOne();

  /// Runs events until simulation time exceeds `until` (events exactly at
  /// `until` are executed) or the queue drains. Afterwards now() >= `until`
  /// if any events remain. Returns events executed.
  std::size_t runUntil(TimePoint until);

  /// Drains the queue completely (bounded by maxEvents as a runaway guard).
  /// Returns events executed.
  std::size_t runAll(std::size_t maxEvents = SIZE_MAX);

 private:
  friend struct manet::ckpt::StateAccess;
  static constexpr std::uint32_t kNullIndex = 0xFFFFFFFFu;
  static constexpr EventSlot kNullSlot{kNullIndex};
  /// Nodes per slab. One slab covers a small scenario entirely; big runs
  /// amortize one allocation per kSlabNodes concurrent events.
  static constexpr std::uint32_t kSlabNodes = 256;

  /// One pooled event. `gen` increments every time the slot is released
  /// (fire or cancel), invalidating all outstanding handles to it.
  struct Node {
    Callback fn;
    TimePoint at{};
    std::uint64_t seq = 0;
    EventGen gen{};
    std::uint32_t heapIndex = kNullIndex;  // kNullIndex while not queued
    EventSlot nextFree = kNullSlot;        // free-list link while released
  };

  /// Heap entries carry the (at, seq) sort key inline so sift comparisons
  /// stay within the contiguous heap array and never dereference nodes —
  /// the node is only touched once per move, to update its heapIndex.
  struct HeapEntry {
    TimePoint at;
    std::uint64_t seq;
    EventSlot slot;
  };

  Node& node(EventSlot slot) {
    return slabs_[slot.value() / kSlabNodes][slot.value() % kSlabNodes];
  }
  const Node& node(EventSlot slot) const {
    return slabs_[slot.value() / kSlabNodes][slot.value() % kSlabNodes];
  }

  EventSlot acquireSlot();
  void releaseSlot(EventSlot slot);
  void cancelSlot(EventSlot slot, EventGen gen);
  bool slotPending(EventSlot slot, EventGen gen) const {
    return slot.value() < slotCount_ && node(slot).gen == gen;
  }

  /// Heap order: earliest (at, seq) at the root — exact FIFO tie-break.
  static bool before(const HeapEntry& a, const HeapEntry& b) {
    return a.at < b.at || (a.at == b.at && a.seq < b.seq);
  }
  void siftUp(std::size_t i);
  void siftDown(std::size_t i);
  /// Removes the heap entry at position `i`, restoring the heap property.
  void heapRemove(std::size_t i);

  TimePoint now_{};
  std::uint64_t nextSeq_ = 0;
  /// Redundant live-event counter, cross-checked against heap_.size() after
  /// every pop/cancel (the scheduler.count-drift audit invariant).
  std::size_t live_ = 0;
  std::vector<std::unique_ptr<Node[]>> slabs_;
  std::uint32_t slotCount_ = 0;       // slots ever carved from slabs
  EventSlot freeHead_ = kNullSlot;    // released-slot free list
  std::vector<HeapEntry> heap_;          // 4-ary min-heap, keys inline
#if MANET_AUDIT_ENABLED
  audit::SchedulerAudit audit_;
#endif
};

}  // namespace manet::sim
