// Discrete-event scheduler: the "event-driven engine" at the center of the
// paper's simulator (§4). Single-threaded, deterministic: events at equal
// timestamps run in scheduling (FIFO) order.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "audit/audit.hpp"
#include "sim/time.hpp"

#if MANET_AUDIT_ENABLED
#include "audit/invariants.hpp"
#endif

namespace manet::sim {

/// Priority-queue event scheduler with cancellable events.
class Scheduler {
 public:
  using Callback = std::function<void()>;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Cancellable reference to a scheduled event. Default-constructed handles
  /// are inert. Handles are cheap to copy (shared ownership of a small node).
  class Handle {
   public:
    Handle() = default;

    /// Cancels the event if it has not fired yet; idempotent.
    void cancel();

    /// True while the event is scheduled and neither fired nor cancelled.
    bool pending() const;

   private:
    friend class Scheduler;
    struct Node;
    explicit Handle(std::shared_ptr<Node> node) : node_(std::move(node)) {}
    std::shared_ptr<Node> node_;
  };

  /// Schedules `fn` to run at absolute time `at` (must be >= now()).
  Handle schedule(Time at, Callback fn);

  /// Schedules `fn` to run `delay` microseconds from now (delay >= 0).
  Handle scheduleAfter(Time delay, Callback fn);

  /// Current simulation time (time of the most recently fired event).
  Time now() const { return now_; }

  /// Number of live (non-cancelled) events still queued.
  std::size_t pendingCount() const { return live_; }

  /// Runs the next live event; returns false when the queue is empty.
  bool runOne();

  /// Runs events until simulation time exceeds `until` (events exactly at
  /// `until` are executed) or the queue drains. Afterwards now() >= `until`
  /// if any events remain. Returns events executed.
  std::size_t runUntil(Time until);

  /// Drains the queue completely (bounded by maxEvents as a runaway guard).
  /// Returns events executed.
  std::size_t runAll(std::size_t maxEvents = SIZE_MAX);

 private:
  struct HeapItem {
    Time at;
    std::uint64_t seq;
    std::shared_ptr<Handle::Node> node;
    friend bool operator>(const HeapItem& a, const HeapItem& b) {
      return a.at > b.at || (a.at == b.at && a.seq > b.seq);
    }
  };

  /// Pops until the heap top is a live event; returns false if drained.
  bool skipDead();

  Time now_ = 0;
  std::uint64_t nextSeq_ = 0;
  std::size_t live_ = 0;
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<HeapItem>>
      heap_;
#if MANET_AUDIT_ENABLED
  audit::SchedulerAudit audit_;
#endif
};

}  // namespace manet::sim
