#include "sim/random.hpp"

#include "util/assert.hpp"

namespace manet::sim {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next() {
  // xoshiro256++
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  MANET_EXPECTS(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniformInt(std::int64_t lo, std::int64_t hi) {
  MANET_EXPECTS(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full range
  // Debiased modulo via rejection sampling.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % span);
  std::uint64_t draw;
  do {
    draw = next();
  } while (draw >= limit);
  return lo + static_cast<std::int64_t>(draw % span);
}

Duration Rng::uniformDuration(Duration lo, Duration hi) {
  // Same draw sequence as the raw uniformInt over ticks.
  return Duration(uniformInt(lo.ticks(), hi.ticks()));  // NOLINT-units(uniform draw over raw ticks is the definition site)
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

Rng Rng::fork(std::uint64_t stream) const {
  // Mix the parent's state with the stream id through splitmix64; distinct
  // stream ids land in distant parts of the sequence space.
  std::uint64_t mix = s_[0] ^ rotl(s_[2], 29) ^ (stream * 0x9e3779b97f4a7c15ULL);
  std::uint64_t seed = splitmix64(mix);
  return Rng(seed ^ stream);
}

}  // namespace manet::sim
