#include "sim/scheduler.hpp"

#include <utility>

#include "obs/metrics.hpp"
#include "util/assert.hpp"

namespace manet::sim {

void Scheduler::Handle::cancel() {
  if (owner_ == nullptr) return;
  owner_->cancelSlot(slot_, gen_);
}

bool Scheduler::Handle::pending() const {
  return owner_ != nullptr && owner_->slotPending(slot_, gen_);
}

EventSlot Scheduler::acquireSlot() {
  if (freeHead_ != kNullSlot) {
    const EventSlot slot = freeHead_;
    Node& n = node(slot);
    freeHead_ = n.nextFree;
    n.nextFree = kNullSlot;
    obs::add(obs::Counter::kEngineAllocEventReused);
    return slot;
  }
  if (slotCount_ % kSlabNodes == 0) {
    slabs_.push_back(std::make_unique<Node[]>(kSlabNodes));
    obs::add(obs::Counter::kEngineAllocEventSlabs);
  }
  return EventSlot{slotCount_++};
}

void Scheduler::releaseSlot(EventSlot slot) {
  Node& n = node(slot);
  ++n.gen;  // invalidate every outstanding handle to this slot
  n.heapIndex = kNullIndex;
  n.nextFree = freeHead_;
  freeHead_ = slot;
}

Scheduler::Handle Scheduler::schedule(TimePoint at, Callback fn) {
  MANET_EXPECTS(at >= now_);
  MANET_EXPECTS(static_cast<bool>(fn));
  const EventSlot slot = acquireSlot();
  Node& n = node(slot);
  n.fn = std::move(fn);
  n.at = at;
  const std::uint64_t seq = nextSeq_++;
  n.seq = seq;
  MANET_AUDIT_HOOK(audit_.onSchedule(at, now_));
  n.heapIndex = static_cast<std::uint32_t>(heap_.size());
  heap_.push_back(HeapEntry{at, seq, slot});
  siftUp(heap_.size() - 1);
  ++live_;
  obs::add(obs::Counter::kSchedulerScheduled);
  obs::gaugeMax(obs::Gauge::kSchedulerQueueDepth, live_);
  return Handle(this, slot, n.gen);
}

Scheduler::Handle Scheduler::scheduleAfter(Duration delay, Callback fn) {
  MANET_EXPECTS(delay >= Duration{});
  return schedule(now_ + delay, std::move(fn));
}

void Scheduler::cancelSlot(EventSlot slot, EventGen gen) {
  if (!slotPending(slot, gen)) return;  // stale handle: fired or cancelled
  Node& n = node(slot);
  MANET_ASSERT(n.heapIndex != kNullIndex);
  MANET_ASSERT(live_ > 0);
  MANET_AUDIT_HOOK(audit_.onCancel(n.at, now_));
  heapRemove(n.heapIndex);
  n.fn.reset();  // release captured state promptly
  releaseSlot(slot);
  --live_;
  obs::add(obs::Counter::kSchedulerCancelled);
  MANET_ASSERT(live_ == heap_.size());
  MANET_AUDIT_HOOK(audit_.onCount(live_, heap_.size(), now_));
}

bool Scheduler::runOne() {
  if (heap_.empty()) return false;
  const EventSlot slot = heap_[0].slot;
  Node& n = node(slot);
  MANET_ASSERT(n.at >= now_);
  MANET_AUDIT_HOOK(audit_.onPop(n.at));
  now_ = n.at;
  Callback fn = std::move(n.fn);
  heapRemove(0);
  releaseSlot(slot);
  MANET_ASSERT(live_ > 0);
  --live_;
  obs::add(obs::Counter::kSchedulerExecuted);
  MANET_ASSERT(live_ == heap_.size());
  MANET_AUDIT_HOOK(audit_.onCount(live_, heap_.size(), now_));
  fn();  // may schedule/cancel freely: the slot is already released
  return true;
}

std::size_t Scheduler::runUntil(TimePoint until) {
  std::size_t executed = 0;
  while (!heap_.empty() && heap_[0].at <= until) {
    runOne();
    ++executed;
  }
  if (now_ < until) now_ = until;
  return executed;
}

std::size_t Scheduler::runAll(std::size_t maxEvents) {
  std::size_t executed = 0;
  while (executed < maxEvents && runOne()) ++executed;
  return executed;
}

// --- indexed 4-ary min-heap ------------------------------------------------
//
// 4-ary rather than binary: one level shallower per 2 bits of queue size,
// and sibling entries are adjacent in the contiguous entry array, so the
// four-way min scan in siftDown stays inside at most two cache lines.
// Every move updates the moved node's heapIndex so cancel() can remove an
// arbitrary entry eagerly.

void Scheduler::siftUp(std::size_t i) {
  const HeapEntry moving = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!before(moving, heap_[parent])) break;
    heap_[i] = heap_[parent];
    node(heap_[i].slot).heapIndex = static_cast<std::uint32_t>(i);
    i = parent;
  }
  heap_[i] = moving;
  node(moving.slot).heapIndex = static_cast<std::uint32_t>(i);
}

void Scheduler::siftDown(std::size_t i) {
  const HeapEntry moving = heap_[i];
  const std::size_t size = heap_.size();
  while (true) {
    const std::size_t first = 4 * i + 1;
    if (first >= size) break;
    std::size_t best = first;
    const std::size_t last = first + 4 < size ? first + 4 : size;
    for (std::size_t c = first + 1; c < last; ++c) {
      if (before(heap_[c], heap_[best])) best = c;
    }
    if (!before(heap_[best], moving)) break;
    heap_[i] = heap_[best];
    node(heap_[i].slot).heapIndex = static_cast<std::uint32_t>(i);
    i = best;
  }
  heap_[i] = moving;
  node(moving.slot).heapIndex = static_cast<std::uint32_t>(i);
}

void Scheduler::heapRemove(std::size_t i) {
  MANET_ASSERT(i < heap_.size());
  node(heap_[i].slot).heapIndex = kNullIndex;
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  if (i == heap_.size()) return;  // removed the tail entry
  heap_[i] = last;
  node(last.slot).heapIndex = static_cast<std::uint32_t>(i);
  siftDown(i);
  siftUp(node(last.slot).heapIndex);
}

}  // namespace manet::sim
