#include "sim/scheduler.hpp"

#include <utility>

#include "obs/metrics.hpp"
#include "util/assert.hpp"

namespace manet::sim {

struct Scheduler::Handle::Node {
  Callback fn;
  bool cancelled = false;
  bool fired = false;
  Scheduler* owner = nullptr;
#if MANET_AUDIT_ENABLED
  Time at = 0;  // scheduled fire time, for cancellation-race checks
#endif
};

void Scheduler::Handle::cancel() {
  if (!node_ || node_->fired || node_->cancelled) return;
  node_->cancelled = true;
  node_->fn = nullptr;  // release captured state promptly
  if (node_->owner != nullptr) {
    MANET_ASSERT(node_->owner->live_ > 0);
    --node_->owner->live_;
    obs::add(obs::Counter::kSchedulerCancelled);
    MANET_AUDIT_HOOK(
        node_->owner->audit_.onCancel(node_->at, node_->owner->now_));
  }
}

bool Scheduler::Handle::pending() const {
  return node_ && !node_->fired && !node_->cancelled;
}

Scheduler::Handle Scheduler::schedule(Time at, Callback fn) {
  MANET_EXPECTS(at >= now_);
  MANET_EXPECTS(fn != nullptr);
  auto node = std::make_shared<Handle::Node>();
  node->fn = std::move(fn);
  node->owner = this;
#if MANET_AUDIT_ENABLED
  node->at = at;
#endif
  MANET_AUDIT_HOOK(audit_.onSchedule(at, now_));
  heap_.push(HeapItem{at, nextSeq_++, node});
  ++live_;
  obs::add(obs::Counter::kSchedulerScheduled);
  obs::gaugeMax(obs::Gauge::kSchedulerQueueDepth, live_);
  return Handle(std::move(node));
}

Scheduler::Handle Scheduler::scheduleAfter(Time delay, Callback fn) {
  MANET_EXPECTS(delay >= 0);
  return schedule(now_ + delay, std::move(fn));
}

bool Scheduler::skipDead() {
  while (!heap_.empty() && heap_.top().node->cancelled) {
    heap_.pop();
  }
  return !heap_.empty();
}

bool Scheduler::runOne() {
  if (!skipDead()) return false;
  HeapItem item = heap_.top();
  heap_.pop();
  MANET_ASSERT(item.at >= now_);
  MANET_AUDIT_HOOK(audit_.onPop(item.at));
  now_ = item.at;
  item.node->fired = true;
  MANET_ASSERT(live_ > 0);
  --live_;
  obs::add(obs::Counter::kSchedulerExecuted);
  Callback fn = std::move(item.node->fn);
  item.node->fn = nullptr;
  fn();
  return true;
}

std::size_t Scheduler::runUntil(Time until) {
  std::size_t executed = 0;
  while (skipDead() && heap_.top().at <= until) {
    runOne();
    ++executed;
  }
  if (now_ < until) now_ = until;
  return executed;
}

std::size_t Scheduler::runAll(std::size_t maxEvents) {
  std::size_t executed = 0;
  while (executed < maxEvents && runOne()) ++executed;
  return executed;
}

}  // namespace manet::sim
