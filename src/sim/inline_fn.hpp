// Small-buffer-optimized callback type for the event engine (DESIGN.md §11).
//
// Every scheduled event used to pay one heap allocation for its
// std::function capture. InlineFn stores callables of up to kInlineCapacity
// bytes directly inside the event node and falls back to the heap only for
// oversized captures; the engine's hot-path callbacks (MAC timers, channel
// completions, HELLO beacons) are audited to fit inline, so a steady-state
// run performs no callback allocations at all. Unlike std::function it is
// move-only, which also lets callbacks own move-only state.
//
// Construction records engine.alloc.callback.{inline,heap} so allocation
// regressions (a capture growing past the buffer) show up in bench reports
// rather than only in profiles.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "obs/metrics.hpp"

namespace manet::sim {

/// Move-only `void()` callable with inline storage for small captures.
class InlineFn {
 public:
  /// Sized for the engine's largest hot-path capture (this + PacketPtr +
  /// a couple of scalars) with headroom; growing a capture past this is a
  /// perf regression the engine.alloc.callback.heap counter makes visible.
  static constexpr std::size_t kInlineCapacity = 48;

  InlineFn() = default;

  template <typename F,
            typename D = std::remove_cvref_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineFn> &&
                                        std::is_invocable_r_v<void, D&>>>
  InlineFn(F&& fn) {  // NOLINT(google-explicit-constructor): callback sink
    if constexpr (fitsInline<D>()) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(fn));
      ops_ = &opsFor<D, /*Heap=*/false>();
      obs::add(obs::Counter::kEngineAllocCallbackInline);
    } else {
      heap_ = new D(std::forward<F>(fn));
      ops_ = &opsFor<D, /*Heap=*/true>();
      obs::add(obs::Counter::kEngineAllocCallbackHeap);
    }
  }

  InlineFn(InlineFn&& other) noexcept { moveFrom(other); }
  InlineFn& operator=(InlineFn&& other) noexcept {
    if (this != &other) {
      reset();
      moveFrom(other);
    }
    return *this;
  }
  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;
  ~InlineFn() { reset(); }

  void operator()() { ops_->invoke(target()); }

  explicit operator bool() const { return ops_ != nullptr; }

  /// True when the callable lives on the heap (capture exceeded the inline
  /// buffer). Exposed for the inline-vs-heap differential tests.
  bool heapAllocated() const { return ops_ != nullptr && ops_->heap; }

  /// Destroys the held callable (no-op when empty).
  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(target());
      ops_ = nullptr;
      heap_ = nullptr;
    }
  }

  /// Compile-time probe: would a callable of type F be stored inline?
  template <typename F>
  static constexpr bool storesInline() {
    return fitsInline<std::remove_cvref_t<F>>();
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    /// Move-constructs the callable into `to` and destroys the source.
    /// Null for heap-held callables (moves just steal the pointer).
    void (*relocate)(void* from, void* to);
    void (*destroy)(void*);
    bool heap;
  };

  template <typename D>
  static constexpr bool fitsInline() {
    return sizeof(D) <= kInlineCapacity &&
           alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  template <typename D, bool Heap>
  static constexpr Ops makeOps() {
    Ops ops{};
    ops.invoke = [](void* p) { (*static_cast<D*>(p))(); };
    if constexpr (Heap) {
      ops.relocate = nullptr;
      ops.destroy = [](void* p) { delete static_cast<D*>(p); };
    } else {
      ops.relocate = [](void* from, void* to) {
        ::new (to) D(std::move(*static_cast<D*>(from)));
        static_cast<D*>(from)->~D();
      };
      ops.destroy = [](void* p) { static_cast<D*>(p)->~D(); };
    }
    ops.heap = Heap;
    return ops;
  }

  template <typename D, bool Heap>
  static const Ops& opsFor() {
    static constexpr Ops ops = makeOps<D, Heap>();
    return ops;
  }

  void* target() { return ops_->heap ? heap_ : static_cast<void*>(storage_); }

  void moveFrom(InlineFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_ == nullptr) return;
    if (ops_->heap) {
      heap_ = other.heap_;
      other.heap_ = nullptr;
    } else {
      ops_->relocate(other.storage_, storage_);
    }
    other.ops_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineCapacity];
  void* heap_ = nullptr;
  const Ops* ops_ = nullptr;
};

}  // namespace manet::sim
