// Simulation time, as two strong types (DESIGN.md §13).
//
// All MAC/PHY constants in IEEE 802.11 DSSS are integral microseconds (slot
// 20 us, SIFS 10 us, DIFS 50 us, PLCP preamble 144 us), so time is signed
// 64-bit microsecond ticks: exact arithmetic, no floating-point drift over a
// multi-hour simulated run.
//
// The tick count is wrapped in two distinct types so the compiler rejects
// unit and role confusion that a bare int64_t accepts silently:
//
//   Duration   a span of simulated time (an interval, a timeout, an airtime)
//   TimePoint  an instant on the simulation clock (microseconds since t=0)
//
// Only the physically meaningful algebra compiles:
//
//   TimePoint - TimePoint -> Duration      TimePoint + Duration -> TimePoint
//   Duration  +/- Duration -> Duration     Duration * int / int -> Duration
//   Duration  / Duration   -> int64 ratio  comparisons within each type
//
// TimePoint + TimePoint, Duration -> int, int -> Duration are all compile
// errors; construction from raw ticks is explicit. The raw tick count leaks
// only through .ticks(), which tools/manet_lint.py confines to sanctioned
// serialization/reporting/audit homes (escape: NOLINT-units(reason)).
//
// Both types are layout-identical to the int64_t they replace: the strong
// layer is zero-cost and every committed bench baseline is byte-identical.
#pragma once

#include <cstdint>

namespace manet::sim {

/// A span of simulated time in integral microsecond ticks. Value-semantic,
/// explicitly constructed, default-zero.
class Duration {
 public:
  constexpr Duration() = default;
  /// Wraps a raw microsecond tick count. Explicit: a bare integer is not a
  /// duration until the caller says which unit it carries.
  constexpr explicit Duration(std::int64_t ticks) : ticks_(ticks) {}

  /// Raw microsecond ticks. Confined by manet_lint to sanctioned homes
  /// (serialization, reports, audit) — prefer the typed algebra elsewhere.
  constexpr std::int64_t ticks() const { return ticks_; }

  // --- named-unit factories ---
  static constexpr Duration microseconds(std::int64_t us) {
    return Duration(us);
  }
  static constexpr Duration milliseconds(std::int64_t ms) {
    return Duration(ms * 1000);
  }
  static constexpr Duration seconds(std::int64_t s) {
    return Duration(s * 1'000'000);
  }

  // --- duration algebra ---
  friend constexpr Duration operator+(Duration a, Duration b) {
    return Duration(a.ticks_ + b.ticks_);
  }
  friend constexpr Duration operator-(Duration a, Duration b) {
    return Duration(a.ticks_ - b.ticks_);
  }
  constexpr Duration operator-() const { return Duration(-ticks_); }
  friend constexpr Duration operator*(Duration d, std::int64_t k) {
    return Duration(d.ticks_ * k);
  }
  friend constexpr Duration operator*(std::int64_t k, Duration d) {
    return Duration(k * d.ticks_);
  }
  friend constexpr Duration operator/(Duration d, std::int64_t k) {
    return Duration(d.ticks_ / k);
  }
  /// How many times `b` fits in `a` (integer ratio — e.g. slots per window).
  friend constexpr std::int64_t operator/(Duration a, Duration b) {
    return a.ticks_ / b.ticks_;
  }
  friend constexpr Duration operator%(Duration a, Duration b) {
    return Duration(a.ticks_ % b.ticks_);
  }
  constexpr Duration& operator+=(Duration o) {
    ticks_ += o.ticks_;
    return *this;
  }
  constexpr Duration& operator-=(Duration o) {
    ticks_ -= o.ticks_;
    return *this;
  }
  constexpr Duration& operator*=(std::int64_t k) {
    ticks_ *= k;
    return *this;
  }

  friend constexpr bool operator==(Duration, Duration) = default;
  friend constexpr bool operator<(Duration a, Duration b) {
    return a.ticks_ < b.ticks_;
  }
  friend constexpr bool operator>(Duration a, Duration b) { return b < a; }
  friend constexpr bool operator<=(Duration a, Duration b) {
    return !(b < a);
  }
  friend constexpr bool operator>=(Duration a, Duration b) {
    return !(a < b);
  }

 private:
  std::int64_t ticks_ = 0;
};

/// An instant on the simulation clock: microseconds since the start of the
/// run. Default-constructed = t0 (the run start).
class TimePoint {
 public:
  constexpr TimePoint() = default;
  /// Wraps a raw microseconds-since-t0 tick count; explicit for the same
  /// reason as Duration(int64_t).
  constexpr explicit TimePoint(std::int64_t ticks) : ticks_(ticks) {}

  /// Raw microsecond ticks since t0. Same lint confinement as
  /// Duration::ticks().
  constexpr std::int64_t ticks() const { return ticks_; }

  /// Span since the run start (t - t0). Unlike ticks() this stays inside
  /// the type system, so it is legal everywhere.
  constexpr Duration sinceStart() const { return Duration(ticks_); }

  // --- point/duration algebra ---
  friend constexpr TimePoint operator+(TimePoint p, Duration d) {
    return TimePoint(p.ticks_ + d.ticks());
  }
  friend constexpr TimePoint operator+(Duration d, TimePoint p) {
    return p + d;
  }
  friend constexpr TimePoint operator-(TimePoint p, Duration d) {
    return TimePoint(p.ticks_ - d.ticks());
  }
  friend constexpr Duration operator-(TimePoint a, TimePoint b) {
    return Duration(a.ticks_ - b.ticks_);
  }
  constexpr TimePoint& operator+=(Duration d) {
    ticks_ += d.ticks();
    return *this;
  }
  constexpr TimePoint& operator-=(Duration d) {
    ticks_ -= d.ticks();
    return *this;
  }

  friend constexpr bool operator==(TimePoint, TimePoint) = default;
  friend constexpr bool operator<(TimePoint a, TimePoint b) {
    return a.ticks_ < b.ticks_;
  }
  friend constexpr bool operator>(TimePoint a, TimePoint b) { return b < a; }
  friend constexpr bool operator<=(TimePoint a, TimePoint b) {
    return !(b < a);
  }
  friend constexpr bool operator>=(TimePoint a, TimePoint b) {
    return !(a < b);
  }

 private:
  std::int64_t ticks_ = 0;
};

inline constexpr Duration kMicrosecond = Duration::microseconds(1);
inline constexpr Duration kMillisecond = Duration::milliseconds(1);
inline constexpr Duration kSecond = Duration::seconds(1);

/// The simulation origin, t = 0.
inline constexpr TimePoint kTimeZero{};

/// "Never happened" sentinel for optional timestamps (one tick before t0;
/// no event can fire there, the scheduler starts at t0).
inline constexpr TimePoint kNever{-1};

/// Converts a floating-point second count to a Duration, rounding to the
/// nearest microsecond.
constexpr Duration fromSeconds(double seconds) {
  return Duration(static_cast<std::int64_t>(
      seconds * 1e6 + (seconds >= 0 ? 0.5 : -0.5)));
}

/// Converts a Duration to floating-point seconds (for reporting only).
constexpr double toSeconds(Duration d) {
  return static_cast<double>(d.ticks()) / 1e6;
}

/// Converts a TimePoint to floating-point seconds since the run start.
constexpr double toSeconds(TimePoint t) { return toSeconds(t.sinceStart()); }

/// Scales a duration by a floating-point factor, truncating toward zero
/// (bit-identical to the historical static_cast<int64>(f * ticks) sites).
constexpr Duration scaleTrunc(Duration d, double factor) {
  return Duration(
      static_cast<std::int64_t>(factor * static_cast<double>(d.ticks())));
}

/// Scales a duration by a floating-point factor, rounding half up.
constexpr Duration scaleRound(Duration d, double factor) {
  return Duration(static_cast<std::int64_t>(
      factor * static_cast<double>(d.ticks()) + 0.5));
}

}  // namespace manet::sim
