// Simulation time. All MAC/PHY constants in IEEE 802.11 DSSS are integral
// microseconds (slot 20 us, SIFS 10 us, DIFS 50 us, PLCP preamble 144 us), so
// we represent time as signed 64-bit microsecond ticks: exact arithmetic, no
// floating-point drift over a multi-hour simulated run.
#pragma once

#include <cstdint>

namespace manet::sim {

/// Simulation time in microseconds since the start of the run.
using Time = std::int64_t;

inline constexpr Time kMicrosecond = 1;
inline constexpr Time kMillisecond = 1000;
inline constexpr Time kSecond = 1'000'000;

/// Converts a floating-point second count to integral simulation time,
/// rounding to the nearest microsecond.
constexpr Time fromSeconds(double seconds) {
  return static_cast<Time>(seconds * static_cast<double>(kSecond) +
                           (seconds >= 0 ? 0.5 : -0.5));
}

/// Converts simulation time to floating-point seconds (for reporting only).
constexpr double toSeconds(Time t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

}  // namespace manet::sim
