// Deterministic random number generation.
//
// Every entity in the simulator (host, MAC, mobility model, traffic source)
// owns an independent stream forked from a master seed, so adding an entity
// or reordering draws in one component never perturbs another — runs are
// reproducible bit-for-bit from a single seed.
//
// Generator: xoshiro256++ seeded via splitmix64 (public-domain algorithms by
// Blackman & Vigna), small, fast, and statistically solid for simulation use.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace manet::ckpt {
struct StateAccess;
}

namespace manet::sim {

/// splitmix64 step; used for seeding and stream derivation.
std::uint64_t splitmix64(std::uint64_t& state);

/// Deterministic PRNG with value semantics; cheap to copy and fork.
class Rng {
 public:
  /// Seeds the generator; any 64-bit value (including 0) is acceptable.
  explicit Rng(std::uint64_t seed);

  /// Next raw 64-bit output.
  std::uint64_t next();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi);

  /// Uniform integer in the inclusive range [lo, hi]. Requires lo <= hi.
  std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

  /// Uniform time span in [lo, hi] (inclusive, microsecond granularity).
  Duration uniformDuration(Duration lo, Duration hi);

  /// True with probability p (clamped to [0, 1]).
  bool bernoulli(double p);

  /// Derives an independent child stream. Streams forked with distinct
  /// `stream` values from the same parent are statistically independent.
  Rng fork(std::uint64_t stream) const;

 private:
  friend struct manet::ckpt::StateAccess;
  std::uint64_t s_[4];
};

}  // namespace manet::sim
