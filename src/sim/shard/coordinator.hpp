// Shard coordinator: conservative-lookahead windows, barrier mailboxes, and
// the shard worker pool (DESIGN.md §15).
//
// One Coordinator serves one World running in sharded mode. It owns
//   * the strip Topology and the lookahead bound L (minimum cross-shard
//     interaction delay: zero propagation in the unit-disk model plus the
//     shortest frame airtime, phy::PhyParams::minInteractionDelay),
//   * the window protocol — the run advances in slices [B, min(B+L, H))
//     closed by a barrier that drains the cross-shard mailbox in
//     (at, seq, from) order and feeds the engine.shard.* counters,
//   * one forked Rng stream per shard (reserved for the parallel-commit
//     stage; nothing draws from them yet, but forking them up front pins
//     the stream layout so enabling parallel commit later cannot shift any
//     existing stream),
//   * a spin-then-park fork/join pool exposed through the RangeExecutor
//     interface, which is where the wall-clock win comes from today: the
//     channel's grid-rebuild position pass and the connectivity BFS fan out
//     across the shard lanes (DESIGN.md §15 explains why the event commit
//     itself stays canonical-serial and byte-identical by construction).
//
// Threading discipline: lanes are explicit function arguments, never thread
// identity; pool workers only ever run RangeFn chunks over lane-owned slots.
// The pool spins briefly before parking because rebuild dispatches arrive
// microseconds apart in dense scenarios — parking between them would cost
// more than the work.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/random.hpp"
#include "sim/shard/mailbox.hpp"
#include "sim/shard/range_executor.hpp"
#include "sim/shard/topology.hpp"
#include "sim/time.hpp"

namespace manet::sim::shard {

/// Monotone totals over the run; mirrored into obs as engine.shard.*.
struct WindowStats {
  std::uint64_t windows = 0;        // windows closed (barriers run)
  std::uint64_t barrierEvents = 0;  // mailbox messages exchanged at barriers
  std::uint64_t crossCopies = 0;    // cross-shard (frame, receiver) copies
};

class Coordinator final : public RangeExecutor {
 public:
  /// `master` should be a stream forked off the scenario seed; the
  /// coordinator forks one child per shard from it.
  Coordinator(const Topology& topology, Duration lookahead, Rng master);
  ~Coordinator() override;
  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  const Topology& topology() const { return topology_; }
  Duration lookahead() const { return lookahead_; }

  // --- window protocol (driven by World::runToEnd) ---
  /// Opens the window starting at `cursor`; returns its end,
  /// min(cursor + lookahead, horizon).
  TimePoint beginWindow(TimePoint cursor, TimePoint horizon);
  /// Barrier: drains the mailbox in (at, seq, from) order into the window
  /// exchange buffer, accumulates stats, and bumps the obs counters.
  void endWindow();

  /// Posts a cross-shard notice (called by the channel's TX classification
  /// during the window, in commit order).
  void postCross(TimePoint at, ShardId from, ShardId to,
                 std::uint32_t copies);

  const WindowStats& stats() const { return stats_; }
  /// Messages exchanged at the most recent barrier, in drain order.
  const std::vector<CrossMsg>& lastExchange() const { return exchange_; }

  /// Shard s's reserved Rng stream (see header comment).
  Rng& shardRng(ShardId s) { return shardRngs_[s.value()]; }

  // --- RangeExecutor ---
  /// Worker lanes: min(shardCount, hardware concurrency), overridable with
  /// MANET_SHARD_LANES. Decoupled from the shard count because lanes are an
  /// execution resource, not simulation semantics: every parallel phase is
  /// lane-count-invariant by construction (disjoint slot writes, exact
  /// folds, atomic set-claims), so a 1-core host runs the same windows and
  /// barriers with zero pool overhead and bit-identical output.
  int lanes() const override { return laneCount_; }
  void run(std::size_t count, const RangeFn& fn) const override;

 private:
  void workerLoop(int lane);

  Topology topology_;
  Duration lookahead_{};
  int laneCount_ = 1;
  TimePoint windowStart_{};
  TimePoint windowEnd_{};
  bool windowOpen_ = false;
  Mailbox mailbox_;
  std::vector<CrossMsg> exchange_;
  WindowStats stats_;
  std::vector<Rng> shardRngs_;

  // --- fork/join pool (mutable: run() is logically const) ---
  struct Job {
    std::size_t count = 0;
    const RangeFn* fn = nullptr;
  };
  mutable std::mutex mutex_;
  mutable std::condition_variable wake_;
  mutable std::atomic<std::uint64_t> epoch_{0};
  mutable std::atomic<int> remaining_{0};
  mutable Job job_;
  std::atomic<bool> stop_{false};
  std::vector<std::thread> workers_;
};

}  // namespace manet::sim::shard
