// Deterministic data-parallel range execution (DESIGN.md §15).
//
// A RangeExecutor splits an index range [0, count) into lanes() contiguous
// chunks and runs them concurrently. The partition is a pure function of
// (count, lanes()), so for a fixed executor every dispatch over the same
// range assigns each index to the same lane — callers that give each lane
// disjoint output slots (and touch per-index state only from its owning
// lane) produce results byte-identical to a serial loop.
//
// The interface is deliberately tiny and header-only so leaf subsystems
// (phy's grid rebuild, stats' connectivity BFS) can accept an executor
// without depending on the coordinator's threading machinery.
#pragma once

#include <cstddef>
#include <functional>

namespace manet::sim::shard {

class RangeExecutor {
 public:
  /// fn(lane, begin, end): process indices [begin, end) on behalf of `lane`.
  /// Lanes run concurrently; fn must confine writes to lane-owned slots.
  using RangeFn =
      std::function<void(int lane, std::size_t begin, std::size_t end)>;

  virtual ~RangeExecutor() = default;

  /// Number of concurrent lanes (>= 1). Fixed for the executor's lifetime.
  virtual int lanes() const = 0;

  /// Runs fn over [0, count) partitioned into lanes() contiguous chunks
  /// (chunk l = [count*l/lanes, count*(l+1)/lanes)). Blocks until every
  /// chunk completed.
  virtual void run(std::size_t count, const RangeFn& fn) const = 0;
};

}  // namespace manet::sim::shard
