// Cross-shard barrier mailbox (DESIGN.md §15).
//
// During a window, every transmission whose frame reaches receivers homed in
// another shard posts one message per (transmission, destination shard)
// pair, carrying the number of receiver copies it covers. Messages are
// exchanged at the window barrier, merged in (at, seq, from) order — `at` is
// the frame's completion time, `seq` the commit-order post index within the
// window — so the drained sequence is a total order that every shard count
// reproduces identically. The commit loop stays canonical-serial in this
// design (DESIGN.md §15 explains why), so the mailbox is the coordination
// spine plus accounting, not an event transport yet.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/shard/topology.hpp"
#include "sim/time.hpp"
#include "util/assert.hpp"

namespace manet::sim::shard {

/// One cross-shard interaction notice: a transmission committed in `from`
/// completing at `at` with `copies` receiver copies homed in `to`.
struct CrossMsg {
  TimePoint at{};
  std::uint64_t seq = 0;  // post index within the window (commit order)
  ShardId from{};
  ShardId to{};
  std::uint32_t copies = 0;
};

/// (at, seq, from)-ordered merge rule. seq is unique within a window, so
/// this is a strict total order; `from` is kept in the key to make the
/// contract explicit for a future multi-queue merge.
inline bool crossMsgBefore(const CrossMsg& a, const CrossMsg& b) {
  if (a.at != b.at) return a.at < b.at;
  if (a.seq != b.seq) return a.seq < b.seq;
  return a.from < b.from;
}

class Mailbox {
 public:
  /// Posts a notice for the current window. Post order is the (serial)
  /// commit order, which seeds `seq`.
  void post(TimePoint at, ShardId from, ShardId to, std::uint32_t copies) {
    MANET_EXPECTS(copies > 0);
    pending_.push_back(CrossMsg{at, nextSeq_++, from, to, copies});
  }

  std::size_t pendingCount() const { return pending_.size(); }

  /// Barrier exchange: moves every pending message into `out` (appending),
  /// sorted by crossMsgBefore. The mailbox is empty afterwards; seq restarts
  /// per window.
  void drain(std::vector<CrossMsg>& out) {
    std::sort(pending_.begin(), pending_.end(), crossMsgBefore);
    out.insert(out.end(), pending_.begin(), pending_.end());
    pending_.clear();
    nextSeq_ = 0;
  }

 private:
  std::vector<CrossMsg> pending_;
  std::uint64_t nextSeq_ = 0;
};

}  // namespace manet::sim::shard
