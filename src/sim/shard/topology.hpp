// Spatial shard topology (DESIGN.md §15).
//
// The map is partitioned into vertical strips along x, reusing the channel
// grid's geometry rule: a strip is never narrower than the radio radius
// (= the grid cell size), so a transmission committed inside strip s can
// reach receivers in strips s-1..s+1 only — cross-shard interaction is
// confined to adjacent strips, which is what makes the conservative window
// bound in the coordinator a per-neighbor property rather than a global one.
//
// A shard-count request wider than the map supports is clamped (a 1x1 map is
// one radius across and always collapses to a single shard); callers read
// shardCount() back rather than assuming their request was honored.
#pragma once

#include <algorithm>
#include <cstdint>

#include "util/assert.hpp"
#include "util/tagged_id.hpp"

namespace manet::sim::shard {

/// Dense shard index, 0..shardCount()-1 in left-to-right strip order.
using ShardId = util::TaggedId<struct ShardIdTag, std::uint32_t>;

class Topology {
 public:
  /// `requestedShards` strips over a map `mapWidthMeters` across, with the
  /// radio radius as the minimum strip width. Requests are clamped to
  /// [1, floor(width / radius)] (at least one strip).
  Topology(int requestedShards, double mapWidthMeters, double radiusMeters)
      : widthMeters_(mapWidthMeters) {
    MANET_EXPECTS(requestedShards >= 1);
    MANET_EXPECTS(mapWidthMeters > 0.0);
    MANET_EXPECTS(radiusMeters > 0.0);
    const int maxStrips =
        std::max(1, static_cast<int>(mapWidthMeters / radiusMeters));
    count_ = std::clamp(requestedShards, 1, maxStrips);
    stripWidth_ = mapWidthMeters / count_;
  }

  int shardCount() const { return count_; }
  double stripWidthMeters() const { return stripWidth_; }
  double mapWidthMeters() const { return widthMeters_; }

  /// Strip containing x. Positions off the map edge (mobility clamps to the
  /// map, but float noise can land exactly on the boundary) clamp to the
  /// nearest strip, so every position classifies.
  ShardId shardOf(double xMeters) const {
    const int s = static_cast<int>(xMeters / stripWidth_);
    return ShardId{
        static_cast<std::uint32_t>(std::clamp(s, 0, count_ - 1))};
  }

  /// True when shards a and b share a strip boundary (or are the same) —
  /// the only pairs a single transmission can couple.
  bool adjacent(ShardId a, ShardId b) const {
    const auto av = static_cast<std::int64_t>(a.value());
    const auto bv = static_cast<std::int64_t>(b.value());
    return av - bv <= 1 && bv - av <= 1;
  }

 private:
  double widthMeters_ = 0.0;
  double stripWidth_ = 0.0;
  int count_ = 1;
};

}  // namespace manet::sim::shard
