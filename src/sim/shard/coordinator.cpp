#include "sim/shard/coordinator.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "util/assert.hpp"
#include "util/env.hpp"

namespace manet::sim::shard {

namespace {

/// Pool lanes for `shardCount` shards: one per shard, but never more than
/// the host has cores (oversubscribed lanes time-slice one core and turn
/// every fork/join into pure overhead). MANET_SHARD_LANES forces the count
/// — tests use it to drive the parallel phases on single-core runners.
int resolveLanes(int shardCount) {
  const int forced = util::envInt("MANET_SHARD_LANES", 0);
  if (forced > 0) return std::min(shardCount, forced);
  const unsigned hardware = std::thread::hardware_concurrency();
  return std::min(shardCount, std::max(1, static_cast<int>(hardware)));
}

/// Yields this many times waiting for a new dispatch before parking on the
/// condition variable. Grid rebuilds arrive every few simulated events in
/// dense scenarios (tens of microseconds of real work apart), so the common
/// case must stay wakeup-free.
constexpr int kSpinIters = 4096;

/// Contiguous chunk of [0, count) owned by `lane` out of `lanes`.
constexpr std::size_t chunkBegin(std::size_t count, int lane, int lanes) {
  return count * static_cast<std::size_t>(lane) /
         static_cast<std::size_t>(lanes);
}

}  // namespace

Coordinator::Coordinator(const Topology& topology, Duration lookahead,
                         Rng master)
    : topology_(topology),
      lookahead_(lookahead),
      laneCount_(resolveLanes(topology.shardCount())) {
  MANET_EXPECTS(lookahead_ > Duration{});
  const int n = topology_.shardCount();
  shardRngs_.reserve(static_cast<std::size_t>(n));
  for (int s = 0; s < n; ++s) {
    shardRngs_.push_back(master.fork(0x5A00 + static_cast<std::uint64_t>(s)));
  }
  workers_.reserve(static_cast<std::size_t>(laneCount_ - 1));
  for (int lane = 1; lane < laneCount_; ++lane) {
    workers_.emplace_back([this, lane] { workerLoop(lane); });
  }
}

Coordinator::~Coordinator() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_.store(true, std::memory_order_relaxed);
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

TimePoint Coordinator::beginWindow(TimePoint cursor, TimePoint horizon) {
  MANET_EXPECTS(!windowOpen_);
  MANET_EXPECTS(cursor < horizon);
  windowStart_ = cursor;
  windowEnd_ = cursor + lookahead_;
  if (horizon < windowEnd_) windowEnd_ = horizon;
  windowOpen_ = true;
  return windowEnd_;
}

void Coordinator::endWindow() {
  MANET_EXPECTS(windowOpen_);
  windowOpen_ = false;
  exchange_.clear();
  const std::size_t drained = mailbox_.pendingCount();
  mailbox_.drain(exchange_);
  std::uint64_t copies = 0;
  for (const CrossMsg& msg : exchange_) {
    // A frame committed in this window completes no earlier than its start;
    // an earlier `at` would mean the classification hook ran outside the
    // window protocol.
    MANET_ASSERT(msg.at >= windowStart_);
    copies += msg.copies;
  }
  stats_.windows += 1;
  stats_.barrierEvents += drained;
  stats_.crossCopies += copies;
  obs::add(obs::Counter::kShardWindows);
  if (drained > 0) {
    obs::add(obs::Counter::kShardBarrierEvents, drained);
    obs::add(obs::Counter::kShardCrossMsgs, copies);
  }
}

void Coordinator::postCross(TimePoint at, ShardId from, ShardId to,
                            std::uint32_t copies) {
  MANET_EXPECTS(windowOpen_);
  MANET_EXPECTS(from != to && topology_.adjacent(from, to));
  mailbox_.post(at, from, to, copies);
}

void Coordinator::run(std::size_t count, const RangeFn& fn) const {
  const int n = lanes();
  if (count == 0) return;
  if (n <= 1 || workers_.empty()) {
    fn(0, 0, count);
    return;
  }
  // Publish the job, then release it via the epoch bump: workers acquire
  // the epoch before touching job_, and the previous dispatch's remaining_
  // handshake guarantees no worker still reads the old job.
  job_.count = count;
  job_.fn = &fn;
  remaining_.store(n - 1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    epoch_.fetch_add(1, std::memory_order_release);
  }
  wake_.notify_all();
  fn(0, chunkBegin(count, 0, n), chunkBegin(count, 1, n));
  while (remaining_.load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
}

void Coordinator::workerLoop(int lane) {
  std::uint64_t seen = 0;
  for (;;) {
    std::uint64_t current = epoch_.load(std::memory_order_acquire);
    if (current == seen && !stop_.load(std::memory_order_relaxed)) {
      for (int spin = 0; spin < kSpinIters; ++spin) {
        current = epoch_.load(std::memory_order_acquire);
        if (current != seen || stop_.load(std::memory_order_relaxed)) break;
        std::this_thread::yield();
      }
      if (current == seen && !stop_.load(std::memory_order_relaxed)) {
        std::unique_lock<std::mutex> lock(mutex_);
        wake_.wait(lock, [&] {
          return epoch_.load(std::memory_order_relaxed) != seen ||
                 stop_.load(std::memory_order_relaxed);
        });
        current = epoch_.load(std::memory_order_acquire);
      }
    }
    if (stop_.load(std::memory_order_relaxed)) return;
    if (current == seen) continue;
    seen = current;
    const std::size_t count = job_.count;
    const RangeFn& fn = *job_.fn;
    const int n = lanes();
    const std::size_t begin = chunkBegin(count, lane, n);
    const std::size_t end = chunkBegin(count, lane + 1, n);
    if (begin < end) fn(lane, begin, end);
    remaining_.fetch_sub(1, std::memory_order_release);
  }
}

}  // namespace manet::sim::shard
