// Scheme playground: a small CLI over the full public API. Pick any scheme,
// any density, any mobility, any neighbor-information source, and get the
// paper's three metrics — useful both for exploring the design space and as
// a template for embedding the library in your own experiments.
//
//   ./build/examples/scheme_playground --scheme=ac --map=7 --speed=50
//       --broadcasts=100 --hosts=100 --seed=3 --hello --dhi
//
// Schemes: flood | prob=<p> | counter=<C> | distance=<D> | location=<A> |
//          ac | al | nc | cluster[=<C>]
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "experiment/runner.hpp"
#include "util/table.hpp"

using namespace manet;

namespace {

bool parseScheme(const std::string& text, experiment::SchemeSpec& out) {
  auto valueOf = [&](const char* prefix) -> std::string {
    return text.substr(std::strlen(prefix));
  };
  if (text == "flood") {
    out = experiment::SchemeSpec::flooding();
  } else if (text.rfind("prob=", 0) == 0) {
    out = experiment::SchemeSpec::probabilistic(std::atof(valueOf("prob=").c_str()));
  } else if (text.rfind("counter=", 0) == 0) {
    out = experiment::SchemeSpec::counter(std::atoi(valueOf("counter=").c_str()));
  } else if (text.rfind("distance=", 0) == 0) {
    out = experiment::SchemeSpec::distance(std::atof(valueOf("distance=").c_str()));
  } else if (text.rfind("location=", 0) == 0) {
    out = experiment::SchemeSpec::location(std::atof(valueOf("location=").c_str()));
  } else if (text == "ac") {
    out = experiment::SchemeSpec::adaptiveCounter();
  } else if (text == "al") {
    out = experiment::SchemeSpec::adaptiveLocation();
  } else if (text == "nc") {
    out = experiment::SchemeSpec::neighborCoverage();
  } else if (text == "cluster") {
    out = experiment::SchemeSpec::clusterBased();
  } else if (text.rfind("cluster=", 0) == 0) {
    out = experiment::SchemeSpec::clusterBased(
        std::atoi(valueOf("cluster=").c_str()));
  } else {
    return false;
  }
  return true;
}

void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " [--scheme=S] [--map=N] [--speed=KMH] [--broadcasts=B]\n"
         "          [--hosts=H] [--seed=SEED] [--hello] [--dhi] "
         "[--no-collisions]\n"
         "schemes: flood prob=<p> counter=<C> distance=<D> location=<A> "
         "ac al nc cluster[=<C>]\n";
}

}  // namespace

int main(int argc, char** argv) {
  experiment::ScenarioConfig config;
  config.mapUnits = 5;
  config.numBroadcasts = 50;
  config.seed = 1;
  config.scheme = experiment::SchemeSpec::adaptiveCounter();
  bool hello = false;
  bool dhi = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto valueOf = [&](const char* prefix) {
      return arg.substr(std::strlen(prefix));
    };
    if (arg.rfind("--scheme=", 0) == 0) {
      if (!parseScheme(valueOf("--scheme="), config.scheme)) {
        usage(argv[0]);
        return 1;
      }
    } else if (arg.rfind("--map=", 0) == 0) {
      config.mapUnits = std::atoi(valueOf("--map=").c_str());
    } else if (arg.rfind("--speed=", 0) == 0) {
      config.maxSpeedKmh = std::atof(valueOf("--speed=").c_str());
    } else if (arg.rfind("--broadcasts=", 0) == 0) {
      config.numBroadcasts = std::atoi(valueOf("--broadcasts=").c_str());
    } else if (arg.rfind("--hosts=", 0) == 0) {
      config.numHosts = std::atoi(valueOf("--hosts=").c_str());
    } else if (arg.rfind("--seed=", 0) == 0) {
      config.seed = static_cast<std::uint64_t>(
          std::atoll(valueOf("--seed=").c_str()));
    } else if (arg == "--hello") {
      hello = true;
    } else if (arg == "--dhi") {
      hello = true;
      dhi = true;
    } else if (arg == "--no-collisions") {
      config.collisions = false;
    } else {
      usage(argv[0]);
      return arg == "--help" ? 0 : 1;
    }
  }

  if (hello || config.scheme.needsTwoHopInfo()) {
    config.neighborSource = experiment::NeighborSource::kHello;
    config.hello.enabled = true;
    config.hello.dynamic = dhi;
  }

  const auto resolved = config.resolved();
  std::cout << "scheme=" << config.scheme.name() << " map=" << config.mapUnits
            << "x" << config.mapUnits << " hosts=" << resolved.numHosts
            << " speed=" << resolved.maxSpeedKmh << "km/h broadcasts="
            << config.numBroadcasts << " neighborInfo="
            << (resolved.neighborSource == experiment::NeighborSource::kHello
                    ? (dhi ? "hello+dhi" : "hello")
                    : "oracle")
            << " collisions=" << (config.collisions ? "on" : "off") << "\n\n";

  const auto r = experiment::runScenario(config);
  util::Table table({"metric", "value"});
  table.addRow({"RE (reachability)", util::fmt(r.re(), 4)});
  table.addRow({"SRB (saved rebroadcasts)", util::fmt(r.srb(), 4)});
  table.addRow({"avg latency (s)", util::fmt(r.latency(), 4)});
  table.addRow({"latency p50 / p95 (s)",
                util::fmt(r.summary.latencyP50Seconds, 4) + " / " +
                    util::fmt(r.summary.latencyP95Seconds, 4)});
  table.addRow({"mean delivery hops", util::fmt(r.summary.meanHops, 2)});
  table.addRow({"data frames sent",
                std::to_string(r.summary.dataFramesSent)});
  table.addRow({"hello frames sent", std::to_string(r.summary.hellosSent)});
  table.addRow({"frames corrupted (collisions)",
                std::to_string(r.framesCorrupted)});
  table.addRow({"simulated seconds", util::fmt(r.simulatedSeconds, 1)});
  table.print(std::cout);
  return 0;
}
