// Rescue scenario: one of the paper's motivating MANET settings ("rescue
// scenes" — infrastructure destroyed, teams spread over a wide area, command
// post periodically broadcasting situation updates).
//
// Models a sparse 9x9 map with fast-moving teams, where every update matters
// (RE is safety-critical) but radio bandwidth is scarce (hello and data
// traffic both cost). Compares the schemes the paper recommends for exactly
// this regime and prints a dashboard of RE / SRB / latency / traffic.
//
//   ./build/examples/rescue_scenario [updates]
#include <cstdlib>
#include <iostream>

#include "experiment/runner.hpp"
#include "util/table.hpp"

using namespace manet;

int main(int argc, char** argv) {
  const int updates = argc > 1 ? std::atoi(argv[1]) : 40;

  std::cout << "Disaster-area broadcast: 100 rescuers on a 4.5 km x 4.5 km "
               "zone,\nteams moving at up to 60 km/h, "
            << updates << " situation updates.\n\n";

  struct Candidate {
    experiment::SchemeSpec scheme;
    experiment::NeighborSource source;
    bool dhi;
    const char* note;
  };
  const Candidate candidates[] = {
      {experiment::SchemeSpec::flooding(), experiment::NeighborSource::kOracle,
       false, "baseline"},
      {experiment::SchemeSpec::adaptiveCounter(),
       experiment::NeighborSource::kHello, false,
       "no GPS needed, 1-hop hellos"},
      {experiment::SchemeSpec::adaptiveLocation(),
       experiment::NeighborSource::kHello, false, "needs GPS"},
      {experiment::SchemeSpec::neighborCoverage(),
       experiment::NeighborSource::kHello, true, "2-hop hellos + DHI"},
  };

  util::Table table({"scheme", "RE", "SRB", "latency(s)", "hello pkts/host/s",
                     "note"});
  for (const auto& cand : candidates) {
    experiment::ScenarioConfig config;
    config.mapUnits = 9;
    config.maxSpeedKmh = 60.0;
    // Rescuers move in teams of five (reference-point group mobility), the
    // structure real search parties have.
    config.mobility = experiment::ScenarioConfig::Mobility::kGroup;
    config.groupSize = 5;
    config.groupSpanMeters = 200.0;
    config.numBroadcasts = updates;
    config.scheme = cand.scheme;
    config.neighborSource = cand.source;
    if (cand.source == experiment::NeighborSource::kHello) {
      config.hello.enabled = true;
      config.hello.dynamic = cand.dhi;
    }
    config.seed = 2026;
    const auto r = experiment::runScenario(config);
    table.addRow({r.schemeName, util::fmt(r.re(), 3), util::fmt(r.srb(), 3),
                  util::fmt(r.latency(), 3),
                  util::fmt(r.hellosPerHostPerSecond, 2), cand.note});
  }
  table.print(std::cout);
  std::cout << "\nIn this sparse, fast-moving regime the paper recommends the "
               "adaptive schemes:\nfixed thresholds would have to be "
               "re-tuned every time team density changes.\n";
  return 0;
}
