// Quickstart: run one scenario per scheme on a 5x5 map and print the three
// metrics the paper reports. This is the smallest end-to-end use of the
// public API:
//
//   ScenarioConfig -> runScenario() -> RunResult {RE, SRB, latency}
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart [mapUnits] [numBroadcasts]
#include <cstdlib>
#include <iostream>
#include <vector>

#include "experiment/runner.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "util/env.hpp"
#include "util/table.hpp"

using namespace manet;

int main(int argc, char** argv) {
  const int mapUnits = argc > 1 ? std::atoi(argv[1]) : 5;
  const int broadcasts = argc > 2 ? std::atoi(argv[2]) : 50;

  // MANET_BENCH_JSON=<dir> turns on metrics collection and writes a run
  // report next to the printed table (the table itself is unchanged).
  const auto jsonDir = util::envString("MANET_BENCH_JSON");
  if (jsonDir) obs::forceCollection(true);
  std::vector<obs::RunSample> samples;

  std::cout << "Broadcast storm suppression on a " << mapUnits << "x"
            << mapUnits << " map (" << broadcasts << " broadcasts, 100 hosts, "
            << "max speed " << 10 * mapUnits << " km/h)\n\n";

  const experiment::SchemeSpec schemes[] = {
      experiment::SchemeSpec::flooding(),
      experiment::SchemeSpec::counter(2),
      experiment::SchemeSpec::counter(4),
      experiment::SchemeSpec::location(0.0134),
      experiment::SchemeSpec::adaptiveCounter(),
      experiment::SchemeSpec::adaptiveLocation(),
      experiment::SchemeSpec::neighborCoverage(),
      experiment::SchemeSpec::clusterBased(),
  };

  util::Table table({"scheme", "RE", "SRB", "latency(s)", "frames"});
  for (const auto& scheme : schemes) {
    experiment::ScenarioConfig config;
    config.mapUnits = mapUnits;
    config.numBroadcasts = broadcasts;
    config.scheme = scheme;
    config.seed = 7;
    // The neighbor-coverage scheme needs (two-hop) HELLO tables; the other
    // adaptive schemes are run with oracle neighbor counts, as in the
    // paper's tuning experiments.
    if (scheme.needsTwoHopInfo()) {
      config.neighborSource = experiment::NeighborSource::kHello;
      config.hello.enabled = true;
      config.hello.dynamic = true;  // the paper's DHI variant
    }
    const experiment::RunResult r = experiment::runScenario(config);
    if (jsonDir) samples.push_back(experiment::toRunSample(r.schemeName, r));
    table.addRow({r.schemeName, util::fmt(r.re(), 3), util::fmt(r.srb(), 3),
                  util::fmt(r.latency(), 3),
                  std::to_string(r.framesTransmitted)});
  }
  table.print(std::cout);
  std::cout << "\nRE = reachability, SRB = saved rebroadcasts (both higher "
               "is better).\n";
  if (jsonDir) {
    obs::writeReportFile(*jsonDir + "/BENCH_quickstart.json", "quickstart",
                         samples);
  }
  return 0;
}
