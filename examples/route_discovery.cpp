// Route discovery: the motivating application from the paper's introduction.
//
// On-demand MANET routing protocols (DSR, AODV, ...) find routes by
// broadcasting a route_request; each relay appends its ID (the paper's
// footnote 1), and the target answers with a route_reply unicast back along
// the collected path. The quality of the broadcast layer IS the quality of
// route discovery: a suppressed relay can mean a missed route, and every
// redundant rebroadcast is wasted bandwidth.
//
// This example runs real DSR-style discoveries (src/routing) over each
// suppression scheme and reports success rate, route latency, hop counts,
// and the bandwidth price.
//
//   ./build/examples/route_discovery [mapUnits] [requests]
#include <cstdlib>
#include <iostream>

#include "experiment/world.hpp"
#include "routing/route_discovery.hpp"
#include "sim/random.hpp"
#include "util/table.hpp"

using namespace manet;

namespace {

struct DiscoveryStats {
  double successRate = 0.0;
  double meanLatencyMs = 0.0;
  double meanHops = 0.0;
  double framesPerRequest = 0.0;
};

DiscoveryStats discoverRoutes(experiment::SchemeSpec scheme, int mapUnits,
                              int requests) {
  experiment::ScenarioConfig config;
  config.mapUnits = mapUnits;
  config.scheme = std::move(scheme);
  config.numBroadcasts = 0;  // the routing layer drives the traffic
  config.seed = 99;
  experiment::World world(config);
  world.startAgents();
  routing::RoutingHarness routing(world);

  sim::Rng pick(1234);
  sim::TimePoint at = sim::kTimeZero + 100 * sim::kMillisecond;
  for (int i = 0; i < requests; ++i) {
    const net::HostId source{
        static_cast<std::uint32_t>(pick.uniformInt(0, config.numHosts - 1))};
    net::HostId target{
        static_cast<std::uint32_t>(pick.uniformInt(0, config.numHosts - 1))};
    if (target == source) {
      target = net::HostId{(target.value() + 1) %
                           static_cast<std::uint32_t>(config.numHosts)};
    }
    world.scheduler().schedule(at, [&routing, source, target] {
      routing.discover(source, target);
    });
    at += pick.uniformDuration(200 * sim::kMillisecond, 1 * sim::kSecond);
  }
  world.scheduler().runUntil(at + 10 * sim::kSecond);

  DiscoveryStats out;
  out.successRate = routing.successRate();
  out.meanLatencyMs = routing.meanLatencySeconds() * 1000.0;
  out.meanHops = routing.meanHops();
  out.framesPerRequest =
      static_cast<double>(world.channel().framesTransmitted()) / requests;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const int mapUnits = argc > 1 ? std::atoi(argv[1]) : 5;
  const int requests = argc > 2 ? std::atoi(argv[2]) : 40;

  std::cout << "DSR-style route discovery on a " << mapUnits << "x"
            << mapUnits << " map, " << requests << " route requests\n\n";

  util::Table table({"scheme", "success", "latency(ms)", "hops",
                     "frames/request"});
  for (auto scheme : {experiment::SchemeSpec::flooding(),
                      experiment::SchemeSpec::counter(2),
                      experiment::SchemeSpec::adaptiveCounter(),
                      experiment::SchemeSpec::adaptiveLocation()}) {
    const DiscoveryStats s = discoverRoutes(scheme, mapUnits, requests);
    table.addRow({scheme.name(), util::fmtPercent(s.successRate, 1),
                  util::fmt(s.meanLatencyMs, 1), util::fmt(s.meanHops, 1),
                  util::fmt(s.framesPerRequest, 1)});
  }
  table.print(std::cout);
  std::cout << "\n'frames/request' counts every transmission (request "
               "relays, replies, ACKs):\nthe bandwidth each scheme pays per "
               "discovered route.\n";
  return 0;
}
