// The "many-to-one" ACK storm (paper §2.1).
//
// The paper justifies unreliable broadcast with: "if all receiving hosts
// send acknowledgments to the sending host, these acknowledgments are very
// likely to collide with each other at the sender's side, making another
// 'many-to-one' broadcast storm." This example makes that argument
// measurable: one host broadcasts to n in-range receivers which all confirm
// reception with a unicast ACK-packet back to the source. We count the MAC
// retries and the time until the last confirmation lands, as n grows.
//
//   ./build/examples/ack_storm [maxReceivers]
#include <cstdlib>
#include <iostream>
#include <memory>
#include <vector>

#include "geom/circle.hpp"
#include "mac/dcf.hpp"
#include "net/packet.hpp"
#include "phy/channel.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "util/table.hpp"

using namespace manet;

namespace {

/// A receiver that answers any broadcast with a unicast confirmation.
class ConfirmingHost : public mac::DcfMac::Upper {
 public:
  ConfirmingHost(sim::Scheduler& scheduler, phy::Channel& channel,
                 net::HostId id, geom::Vec2 pos, std::uint64_t seed)
      : mac_(scheduler, channel, id, [pos] { return pos; }, sim::Rng(seed),
             mac::MacParams{}, this) {}

  void onTxStarted(mac::DcfMac::TxId, const net::Packet&) override {}
  void onTxFinished(mac::DcfMac::TxId, const net::Packet&) override {}
  void onReceive(const phy::Frame& frame) override {
    const net::Packet& p = *frame.packet;
    if (p.type == net::PacketType::kData && p.dest == net::kInvalidHost) {
      // Application-level confirmation: a tiny unicast packet to the source.
      auto confirm = net::makeDataPacket(p.bid, mac_.self());
      mac_.enqueueUnicast(p.sender, std::move(confirm), 32);
    }
  }

  mac::DcfMac& mac() { return mac_; }

 private:
  mac::DcfMac mac_;
};

/// The source counts the confirmations that make it back.
class SourceHost : public mac::DcfMac::Upper {
 public:
  SourceHost(sim::Scheduler& scheduler, phy::Channel& channel,
             geom::Vec2 pos)
      : scheduler_(scheduler),
        mac_(scheduler, channel, net::HostId{0}, [pos] { return pos; }, sim::Rng(99),
             mac::MacParams{}, this) {}

  void onTxStarted(mac::DcfMac::TxId, const net::Packet&) override {}
  void onTxFinished(mac::DcfMac::TxId, const net::Packet&) override {}
  void onReceive(const phy::Frame& frame) override {
    if (frame.packet->dest == mac_.self()) {
      ++confirmations_;
      lastConfirmation_ = scheduler_.now();
    }
  }

  mac::DcfMac& mac() { return mac_; }
  int confirmations() const { return confirmations_; }
  sim::TimePoint lastConfirmation() const { return lastConfirmation_; }

 private:
  sim::Scheduler& scheduler_;
  mac::DcfMac mac_;
  int confirmations_ = 0;
  sim::TimePoint lastConfirmation_{};
};

struct StormResult {
  int receivers;
  int confirmed;
  std::uint64_t retries;
  std::uint64_t drops;
  double completionMs;
};

StormResult runStorm(int receivers) {
  sim::Scheduler scheduler;
  phy::Channel channel(scheduler, phy::PhyParams{});
  sim::Rng rng(static_cast<std::uint64_t>(receivers));

  SourceHost source(scheduler, channel, {0, 0});
  std::vector<std::unique_ptr<ConfirmingHost>> hosts;
  for (int i = 0; i < receivers; ++i) {
    // Uniform in the source's disk.
    const double r = 450.0 * std::sqrt(rng.uniform());
    const double angle = rng.uniform(0.0, 2.0 * geom::kPi);
    hosts.push_back(std::make_unique<ConfirmingHost>(
        scheduler, channel, net::HostId{static_cast<std::uint32_t>(i + 1)},
        geom::Vec2{0, 0} + r * geom::unitVector(angle),
        static_cast<std::uint64_t>(i + 1)));
  }

  scheduler.runUntil(sim::TimePoint{10'000});
  const sim::TimePoint start = scheduler.now();
  source.mac().enqueue(
      net::makeDataPacket({net::HostId{0}, net::BroadcastSeq{0}}, net::HostId{0}),
      280);
  scheduler.runUntil(start + 30 * sim::kSecond);

  StormResult out;
  out.receivers = receivers;
  out.confirmed = source.confirmations();
  out.retries = 0;
  out.drops = 0;
  for (auto& h : hosts) {
    out.retries += h->mac().unicastRetries();
    out.drops += h->mac().unicastDrops();
  }
  out.completionMs =
      sim::toSeconds(source.lastConfirmation() - start) * 1000.0;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const int maxReceivers = argc > 1 ? std::atoi(argv[1]) : 48;

  std::cout
      << "The many-to-one ACK storm (paper, section 2.1): n receivers all\n"
         "confirm one broadcast with a unicast packet back to the source.\n"
         "One 280-byte broadcast takes 2.4 ms of air time; watch what the\n"
         "confirmations cost as n grows.\n\n";

  util::Table table({"receivers", "confirmed", "MAC retries", "drops",
                     "all-confirmed after (ms)"});
  for (int n = 4; n <= maxReceivers; n *= 2) {
    const StormResult r = runStorm(n);
    table.addRow({std::to_string(r.receivers), std::to_string(r.confirmed),
                  std::to_string(r.retries), std::to_string(r.drops),
                  util::fmt(r.completionMs, 1)});
  }
  table.print(std::cout);
  std::cout << "\nEvery confirmation contends with every other one at the "
               "same receiver (the\nsource), so retries grow superlinearly — "
               "the paper's argument for unreliable\nbroadcast with relay "
               "suppression instead of per-receiver acknowledgment.\n";
  return 0;
}
