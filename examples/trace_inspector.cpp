// Trace inspector: record every protocol event of a small run and print a
// per-broadcast timeline — who relayed, who was suppressed and when, where
// collisions hit. The event stream can also be dumped as CSV for plotting.
//
//   ./build/examples/trace_inspector [mapUnits] [broadcasts] [--csv]
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "experiment/world.hpp"
#include "trace/recorder.hpp"
#include "trace/timeline.hpp"
#include "trace/writer.hpp"

using namespace manet;

int main(int argc, char** argv) {
  const int mapUnits = argc > 1 ? std::atoi(argv[1]) : 3;
  const int broadcasts = argc > 2 ? std::atoi(argv[2]) : 3;
  const bool csv =
      argc > 3 && std::strcmp(argv[3], "--csv") == 0;

  experiment::ScenarioConfig config;
  config.mapUnits = mapUnits;
  config.numHosts = 30;
  config.numBroadcasts = broadcasts;
  config.scheme = experiment::SchemeSpec::adaptiveCounter();
  config.seed = 3;

  trace::Recorder recorder;
  experiment::World world(config);
  world.setTraceSink(&recorder);
  world.run();

  if (csv) {
    trace::writeCsv(std::cout, recorder.events());
    return 0;
  }

  std::cout << "Recorded " << recorder.totalSeen() << " events ("
            << recorder.countOf(trace::EventKind::kCollision)
            << " collisions, "
            << recorder.countOf(trace::EventKind::kInhibited)
            << " inhibitions)\n\n";
  for (const net::BroadcastId bid : trace::broadcastsIn(recorder.events())) {
    const auto tl = trace::buildTimeline(recorder.events(), bid);
    if (tl) std::cout << tl->render() << "\n";
  }
  std::cout << "Tip: pass --csv to dump the raw event stream for plotting.\n";
  return 0;
}
