// Trace inspector: record every protocol event of a small run and print a
// per-broadcast timeline — who relayed, who was suppressed and when, where
// frames were lost (tallied per drop reason: collision, half-duplex,
// injected fault loss, host crash). The event stream can also be dumped as
// CSV for plotting. Fault injection responds to the MANET_FAULT_* env knobs,
// e.g. MANET_FAULT_LOSS=ge ./build/examples/trace_inspector
//
//   ./build/examples/trace_inspector [mapUnits] [broadcasts] [--csv]
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "experiment/world.hpp"
#include "trace/recorder.hpp"
#include "trace/timeline.hpp"
#include "trace/writer.hpp"

using namespace manet;

int main(int argc, char** argv) {
  const int mapUnits = argc > 1 ? std::atoi(argv[1]) : 3;
  const int broadcasts = argc > 2 ? std::atoi(argv[2]) : 3;
  const bool csv =
      argc > 3 && std::strcmp(argv[3], "--csv") == 0;

  experiment::ScenarioConfig config;
  config.mapUnits = mapUnits;
  config.numHosts = 30;
  config.numBroadcasts = broadcasts;
  config.scheme = experiment::SchemeSpec::adaptiveCounter();
  config.seed = 3;

  trace::Recorder recorder;
  experiment::World world(config);
  world.setTraceSink(&recorder);
  world.run();

  if (csv) {
    trace::writeCsv(std::cout, recorder.events());
    return 0;
  }

  std::cout << "Recorded " << recorder.totalSeen() << " events ("
            << recorder.countOf(trace::EventKind::kDrop) << " drops, "
            << recorder.countOf(trace::EventKind::kInhibited)
            << " inhibitions)\n";
  std::cout << "Drops by reason:";
  for (const phy::DropReason reason :
       {phy::DropReason::kCollision, phy::DropReason::kHalfDuplex,
        phy::DropReason::kFaultLoss, phy::DropReason::kHostDown}) {
    std::cout << ' ' << phy::dropReasonName(reason) << '='
              << recorder.countOfDrop(reason);
  }
  std::cout << "\n";
  if (recorder.countOf(trace::EventKind::kHostDown) > 0) {
    std::cout << "Churn: " << recorder.countOf(trace::EventKind::kHostDown)
              << " crashes, " << recorder.countOf(trace::EventKind::kHostUp)
              << " recoveries\n";
  }
  std::cout << "\n";
  for (const net::BroadcastId bid : trace::broadcastsIn(recorder.events())) {
    const auto tl = trace::buildTimeline(recorder.events(), bid);
    if (tl) std::cout << tl->render() << "\n";
  }
  std::cout << "Tip: pass --csv to dump the raw event stream for plotting.\n";
  return 0;
}
