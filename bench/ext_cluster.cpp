// Extension bench (Ni et al. [15]'s remaining scheme family): the
// cluster-based scheme against flooding / fixed counter / the adaptive
// schemes. Expected shape from [15]: the cluster backbone saves heavily in
// dense networks (plain members never relay) but costs reachability in
// sparse, mobile ones where the backbone itself is fragile.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "experiment/runner.hpp"
#include "util/table.hpp"

using namespace manet;

int main() {
  const auto scale = experiment::benchScale(40);
  bench::banner("Extension - cluster-based scheme ([15])",
                "big dense-map savings from a relay backbone; fragile when "
                "sparse",
                scale);

  const std::vector<experiment::SchemeSpec> schemes{
      experiment::SchemeSpec::flooding(),
      experiment::SchemeSpec::counter(3),
      experiment::SchemeSpec::clusterBased(3),
      experiment::SchemeSpec::adaptiveCounter(),
  };

  std::vector<std::string> header{"map"};
  for (const auto& s : schemes) {
    header.push_back(s.name() + "_RE");
    header.push_back(s.name() + "_SRB");
  }
  util::Table table(header);
  for (int units : experiment::paperMapSizes()) {
    std::vector<std::string> row{bench::mapLabel(units)};
    for (const auto& scheme : schemes) {
      experiment::ScenarioConfig config;
      config.mapUnits = units;
      config.scheme = scheme;
      experiment::applyScale(config, scale);
      const auto r =
          experiment::runScenarioAveraged(config, scale.repetitions);
      row.push_back(util::fmt(r.re(), 3));
      row.push_back(util::fmt(r.srb(), 3));
    }
    table.addRow(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\n";
  return 0;
}
