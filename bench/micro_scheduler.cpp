// Scheduler memory-layout microbench (DESIGN.md §11): schedule/cancel/fire
// churn at MAC-realistic cancel rates, plus packet-pool churn. Not a paper
// figure — a regression guard for the engine's allocation behaviour.
//
// Every case reports `allocs_per_item`, measured by a global operator
// new/delete override: the pooled scheduler and packet arena should hold it
// near zero in steady state, so a capture outgrowing InlineFn's buffer or a
// pool bypass shows up as a counter jump, not just a throughput dip.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "net/packet.hpp"
#include "net/packet_pool.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"

namespace {

std::atomic<std::uint64_t> gHeapAllocs{0};

}  // namespace

// Count every heap allocation in the process. The bench runs single-threaded
// and the counter is relaxed: we only ever read it quiesced, between phases.
// noinline: keeps GCC from pairing the builtin operator-new semantics with
// the free() inside delete at inlined call sites (-Wmismatched-new-delete).
[[gnu::noinline]] void* operator new(std::size_t bytes) {
  gHeapAllocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(bytes)) return p;
  throw std::bad_alloc();
}

[[gnu::noinline]] void* operator new[](std::size_t bytes) {
  return ::operator new(bytes);
}

[[gnu::noinline]] void operator delete(void* p) noexcept { std::free(p); }
[[gnu::noinline]] void operator delete[](void* p) noexcept { std::free(p); }
[[gnu::noinline]] void operator delete(void* p, std::size_t) noexcept {
  std::free(p);
}
[[gnu::noinline]] void operator delete[](void* p, std::size_t) noexcept {
  std::free(p);
}

using namespace manet;

namespace {

/// Steady-state event churn: a warm scheduler fires batches of MAC-like
/// timers, a fraction of which are cancelled before they fire (the range
/// argument, percent). The capture mimics the MAC's largest hot-path
/// callback — an owner pointer, a refcounted packet, and a size — so this
/// also guards the InlineFn capacity audit. The fig13 run measures ~8%
/// cancels (sim.scheduler.cancelled / scheduled); 50% models
/// suppression-heavy schemes where most rebroadcasts are inhibited.
void BM_SchedulerChurn(benchmark::State& state) {
  const int cancelPct = static_cast<int>(state.range(0));
  constexpr int kBatch = 256;
  constexpr sim::Duration kMaxDelay{977};

  sim::Scheduler s;
  sim::Rng rng(42);
  auto packet = std::make_shared<net::Packet>();  // stand-in captured payload
  std::vector<sim::Scheduler::Handle> handles(kBatch);
  long sink = 0;

  // Warm the node pool so the (bounded) slab carving happens off-clock.
  for (int i = 0; i < kBatch; ++i) {
    handles[static_cast<std::size_t>(i)] =
        s.scheduleAfter(sim::kMicrosecond + rng.uniformDuration(sim::Duration{}, kMaxDelay),
                        [&sink, packet, i] { sink += i; });
  }
  s.runUntil(s.now() + 2 * kMaxDelay);

  const std::uint64_t allocsBefore = gHeapAllocs.load();
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) {
      handles[static_cast<std::size_t>(i)] =
          s.scheduleAfter(sim::kMicrosecond + rng.uniformDuration(sim::Duration{}, kMaxDelay),
                          [&sink, packet, i] { sink += i; });
    }
    for (int i = 0; i < kBatch; ++i) {
      if (rng.uniformInt(0, 99) < cancelPct) {
        handles[static_cast<std::size_t>(i)].cancel();
      }
    }
    s.runUntil(s.now() + 2 * kMaxDelay);
  }
  benchmark::DoNotOptimize(sink);

  const auto items = static_cast<double>(state.iterations()) * kBatch;
  state.SetItemsProcessed(state.iterations() * kBatch);
  state.counters["allocs_per_item"] = benchmark::Counter(
      static_cast<double>(gHeapAllocs.load() - allocsBefore) / items);
}
BENCHMARK(BM_SchedulerChurn)->Arg(8)->Arg(50);

/// Packet churn in the control-frame pattern: allocate, stamp, drop. With
/// the arena (range argument 1) steady-state traffic recycles one block;
/// without it (0) every packet is a fresh make_shared.
void BM_PacketChurn(benchmark::State& state) {
  const bool pooled = state.range(0) != 0;
  net::PacketPool pool;
  net::PacketPool::Scope scope(pooled ? &pool : nullptr);

  // Warm the pool: the first block is the one steady state recycles.
  net::makePacket().reset();

  const std::uint64_t allocsBefore = gHeapAllocs.load();
  for (auto _ : state) {
    auto p = net::makePacket();
    p->type = net::PacketType::kAck;
    p->sender = net::HostId{1};
    p->dest = net::HostId{2};
    benchmark::DoNotOptimize(p);
  }
  const auto items = static_cast<double>(state.iterations());
  state.SetItemsProcessed(state.iterations());
  state.counters["allocs_per_item"] = benchmark::Counter(
      static_cast<double>(gHeapAllocs.load() - allocsBefore) / items);
}
BENCHMARK(BM_PacketChurn)->Arg(0)->Arg(1);

/// Worst-case heap discipline: every event cancelled, none fire. Guards the
/// eager-removal path (heapRemove from arbitrary positions) staying
/// allocation-free and O(log n) rather than degrading to lazy tombstones.
void BM_SchedulerCancelAll(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  sim::Scheduler s;
  sim::Rng rng(7);
  std::vector<sim::Scheduler::Handle> handles(
      static_cast<std::size_t>(batch));
  long sink = 0;
  for (auto _ : state) {
    for (int i = 0; i < batch; ++i) {
      handles[static_cast<std::size_t>(i)] =
          s.scheduleAfter(sim::kMicrosecond + rng.uniformDuration(sim::Duration{}, sim::Duration{997}),
                          [&sink] { ++sink; });
    }
    // Cancel in a shuffled order so removals hit interior heap positions.
    for (int i = batch - 1; i > 0; --i) {
      std::swap(handles[static_cast<std::size_t>(i)],
                handles[static_cast<std::size_t>(
                    rng.uniformInt(0, static_cast<std::uint32_t>(i)))]);
    }
    for (auto& h : handles) h.cancel();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_SchedulerCancelAll)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();
