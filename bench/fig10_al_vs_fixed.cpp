// Fig. 10: adaptive location-based scheme AL(6,12) vs the fixed thresholds
// of Ni et al. [15]: A in {0.1871, 0.0469, 0.0134}.
//   (a) RE and SRB    (b) average broadcast latency.
// Paper's shape: fixed A loses RE on sparse maps (badly for large A); AL
// holds RE high everywhere without giving up SRB.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "experiment/runner.hpp"
#include "util/table.hpp"

using namespace manet;

int main() {
  const auto scale = experiment::benchScale(60);
  bench::banner("Fig. 10 - AL vs fixed location thresholds",
                "fixed A degrades in sparse maps; AL does not", scale);

  const std::vector<experiment::SchemeSpec> schemes{
      experiment::SchemeSpec::location(0.1871),
      experiment::SchemeSpec::location(0.0469),
      experiment::SchemeSpec::location(0.0134),
      experiment::SchemeSpec::adaptiveLocation(),
  };

  std::vector<std::string> header{"map"};
  for (const auto& s : schemes) {
    header.push_back(s.name() + "_RE");
    header.push_back(s.name() + "_SRB");
    header.push_back(s.name() + "_lat(s)");
  }
  util::Table table(header);
  for (int units : experiment::paperMapSizes()) {
    std::vector<std::string> row{bench::mapLabel(units)};
    for (const auto& scheme : schemes) {
      experiment::ScenarioConfig config;
      config.mapUnits = units;
      config.scheme = scheme;
      experiment::applyScale(config, scale);
      const auto r =
          experiment::runScenarioAveraged(config, scale.repetitions);
      row.push_back(util::fmt(r.re(), 3));
      row.push_back(util::fmt(r.srb(), 3));
      row.push_back(util::fmt(r.latency(), 4));
    }
    table.addRow(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\n";
  return 0;
}
