// Ablation (not in the paper): the 0..31-slot pre-MAC jitter of scheme step
// S2. Without it, all receivers of a transmission contend for the medium at
// the same instant and — after a long-idle period — transmit simultaneously,
// so the collision rate explodes and RE drops. This justifies the jitter
// window the paper builds into every scheme.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "experiment/runner.hpp"
#include "util/table.hpp"

using namespace manet;

int main() {
  const auto scale = experiment::benchScale(40);
  bench::banner("Ablation - S2 jitter window",
                "no jitter => synchronized rebroadcasts => collisions",
                scale);

  const std::vector<int> windows{0, 4, 16, 31, 64};
  for (int units : {1, 5}) {
    std::cout << "--- " << bench::mapLabel(units) << " map, flooding ---\n";
    util::Table table(
        {"jitterSlots", "RE", "collision_frac", "latency(s)"});
    for (int w : windows) {
      experiment::ScenarioConfig config;
      config.mapUnits = units;
      config.scheme = experiment::SchemeSpec::flooding();
      config.jitterSlots = w;
      experiment::applyScale(config, scale);
      const auto r = experiment::runScenarioAveraged(config, scale.repetitions);
      const double total = static_cast<double>(r.framesDelivered +
                                               r.framesCorrupted);
      const double collisionFrac =
          total > 0 ? static_cast<double>(r.framesCorrupted) / total : 0.0;
      table.addRow({std::to_string(w), util::fmt(r.re(), 3),
                    util::fmt(collisionFrac, 3), util::fmt(r.latency(), 4)});
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
