// Extension (not a paper figure): broadcast storm schemes under injected
// faults. Three panels on the paper's 5x5 / 100-host setup:
//
//   1. i.i.d. link loss, PER in {0, 0.05, 0.1, 0.2, 0.4}: how fast each
//      scheme's RE degrades as receptions start failing. Flooding's
//      redundancy buys loss tolerance — every extra rebroadcast is another
//      independent delivery attempt — so its RE falls more slowly than the
//      counter-based schemes that deliberately suppress that redundancy.
//   2. Gilbert-Elliott bursty loss vs. i.i.d. at the same long-run average
//      loss rate: burstiness concentrates failures on links, which hurts
//      sparse schemes more than the i.i.d. equivalent.
//   3. Host churn (random crash/recover cycles) at increasing intensity,
//      with HELLO-derived neighborhoods: crashed hosts take their coverage
//      knowledge down with them, and recovered hosts rejoin with cold
//      neighbor tables.
//
// All fault draws come from dedicated RNG streams, so the PER=0 / no-churn
// rows are bit-identical to the fault-free benches.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "experiment/runner.hpp"
#include "experiment/sweep.hpp"
#include "util/table.hpp"

using namespace manet;

namespace {

experiment::ScenarioConfig baseConfig(const experiment::BenchScale& scale) {
  experiment::ScenarioConfig config;
  config.mapUnits = 5;
  experiment::applyScale(config, scale);
  return config;
}

experiment::SweepAxis schemePanel() {
  return experiment::schemeAxis({
      experiment::SchemeSpec::flooding(),
      experiment::SchemeSpec::counter(3),
      experiment::SchemeSpec::adaptiveCounter(),
      experiment::SchemeSpec::adaptiveLocation(),
      experiment::SchemeSpec::neighborCoverage(),
  });
}

experiment::SweepAxis perAxis(const std::vector<double>& pers) {
  experiment::SweepAxis axis;
  axis.name = "PER";
  for (double per : pers) {
    axis.values.push_back({util::fmt(per, 2), [per](
                                                  experiment::ScenarioConfig&
                                                      c) {
                             c.fault.loss =
                                 per > 0.0
                                     ? fault::FaultConfig::Loss::kIid
                                     : fault::FaultConfig::Loss::kNone;
                             c.fault.per = per;
                           }});
  }
  return axis;
}

experiment::SweepAxis burstAxis() {
  experiment::SweepAxis axis;
  axis.name = "loss model";
  axis.values.push_back(
      {"none", [](experiment::ScenarioConfig& c) {
         c.fault.loss = fault::FaultConfig::Loss::kNone;
       }});
  // GE defaults: stationary Bad share 0.085/(0.085+0.25) ~ 0.25, loss 0.75
  // in Bad -> ~19% average loss in bursts of mean length 4.
  axis.values.push_back(
      {"ge(avg~0.19)", [](experiment::ScenarioConfig& c) {
         c.fault.loss = fault::FaultConfig::Loss::kGilbertElliott;
       }});
  axis.values.push_back(
      {"iid(0.19)", [](experiment::ScenarioConfig& c) {
         c.fault.loss = fault::FaultConfig::Loss::kIid;
         c.fault.per = 0.19;
       }});
  return axis;
}

experiment::SweepAxis churnAxis() {
  experiment::SweepAxis axis;
  axis.name = "churn";
  struct Level {
    const char* label;
    double fraction;  // <= 0: churn off
  };
  for (const Level& level : {Level{"off", 0.0}, Level{"mild", 0.2},
                             Level{"heavy", 0.5}}) {
    const double fraction = level.fraction;
    axis.values.push_back({level.label, [fraction](
                                            experiment::ScenarioConfig& c) {
                             c.fault.churn = fraction > 0.0;
                             c.fault.churnFraction = fraction;
                             c.fault.meanUpTime = 15 * sim::kSecond;
                             c.fault.meanDownTime = 5 * sim::kSecond;
                           }});
  }
  return axis;
}

void printPanel(const char* title, const experiment::ScenarioConfig& base,
                const std::vector<experiment::SweepAxis>& axes,
                const experiment::BenchScale& scale, bench::Report& report,
                const std::string& labelPrefix) {
  std::cout << "--- " << title << " ---\n";
  const auto cells =
      experiment::runSweep(base, axes, scale.repetitions, /*threads=*/0);
  for (const auto& cell : cells) {
    std::string label = labelPrefix;
    for (const auto& coordinate : cell.coordinates) label += "/" + coordinate;
    report.add(label, cell.result);
  }
  experiment::sweepTable(axes, cells).print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  bench::Report report(argc, argv, "ext_fault");
  const auto scale = experiment::benchScale(20);
  bench::banner(
      "Extension - fault injection (link loss + host churn)",
      "redundancy tolerates faults: suppression trades robustness for "
      "efficiency",
      scale);
  const experiment::ScenarioConfig base = baseConfig(scale);

  {
    std::vector<experiment::SweepAxis> axes{
        perAxis({0.0, 0.05, 0.1, 0.2, 0.4}), schemePanel()};
    printPanel("i.i.d. link loss", base, axes, scale, report, "iid");
  }
  {
    std::vector<experiment::SweepAxis> axes{burstAxis(), schemePanel()};
    printPanel("bursty (Gilbert-Elliott) vs i.i.d. loss", base, axes, scale,
               report, "burst");
  }
  {
    experiment::ScenarioConfig churnBase = base;
    // Churn studies use HELLO-derived neighborhoods: the oracle would hand
    // recovered hosts perfect knowledge the protocol cannot actually have.
    churnBase.neighborSource = experiment::NeighborSource::kHello;
    churnBase.hello.enabled = true;
    std::vector<experiment::SweepAxis> axes{churnAxis(), schemePanel()};
    printPanel("host churn (HELLO neighborhoods)", churnBase, axes, scale,
               report, "churn");
  }
  return 0;
}
