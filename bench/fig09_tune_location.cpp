// Fig. 8 + Fig. 9: tuning the adaptive location threshold A(n).
//
// Fig. 8 defines the candidate functions: A(n) = 0 up to n1, linear to
// 0.187 at n2, constant after. Fig. 9 compares the (n1, n2) candidates
// across maps; the paper picks (6, 12) after weighing RE against SRB
// ((8,12) and (8,10) have comparable RE but worse SRB in sparse maps).
#include <iostream>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "core/threshold.hpp"
#include "experiment/runner.hpp"
#include "util/table.hpp"

using namespace manet;

int main() {
  const auto scale = experiment::benchScale(60);
  bench::banner("Fig. 9 - tuning A(n) for the adaptive location scheme",
                "(6,12), (8,12), (8,10) all give high RE; (6,12) wins on SRB",
                scale);

  const std::vector<std::pair<int, int>> candidates{
      {2, 8}, {4, 8}, {4, 10}, {6, 10}, {6, 12}, {8, 12}, {8, 10}, {2, 16}};

  // Fig. 8: print the candidate functions.
  std::cout << "--- Fig. 8: A(n) candidates ---\n";
  {
    std::vector<std::string> header{"n"};
    for (auto [n1, n2] : candidates) {
      header.push_back("(" + std::to_string(n1) + "," + std::to_string(n2) +
                       ")");
    }
    util::Table fig8(header);
    for (int n = 0; n <= 16; n += 2) {
      std::vector<std::string> row{std::to_string(n)};
      for (auto [n1, n2] : candidates) {
        row.push_back(util::fmt(core::AreaThreshold::piecewise(n1, n2)(n), 3));
      }
      fig8.addRow(std::move(row));
    }
    fig8.print(std::cout);
  }
  std::cout << "\n--- Fig. 9: RE / SRB per candidate per map ---\n";

  std::vector<std::string> header{"map"};
  for (auto [n1, n2] : candidates) {
    const std::string tag =
        std::to_string(n1) + "," + std::to_string(n2);
    header.push_back("(" + tag + ")RE");
    header.push_back("(" + tag + ")SRB");
  }
  util::Table table(header);
  for (int units : experiment::paperMapSizes()) {
    std::vector<std::string> row{bench::mapLabel(units)};
    for (auto [n1, n2] : candidates) {
      experiment::ScenarioConfig config;
      config.mapUnits = units;
      config.scheme = experiment::SchemeSpec::adaptiveLocation(
          core::AreaThreshold::piecewise(n1, n2),
          "AL(" + std::to_string(n1) + "," + std::to_string(n2) + ")");
      experiment::applyScale(config, scale);
      const auto r =
          experiment::runScenarioAveraged(config, scale.repetitions);
      row.push_back(util::fmt(r.re(), 3));
      row.push_back(util::fmt(r.srb(), 3));
    }
    table.addRow(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\n";
  return 0;
}
