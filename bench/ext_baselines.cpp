// Extension bench: the remaining fixed-threshold baselines of Ni et al.
// [15] that this paper's figures don't re-plot — probabilistic(p) and
// distance-based(D) — next to the counter baseline. Expected shape (from
// [15]): probabilistic trades RE for SRB linearly in p; distance-based
// needs large D to save anything but then loses sparse-map RE, and is
// dominated by the location-based scheme that replaced it.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "experiment/runner.hpp"
#include "util/table.hpp"

using namespace manet;

int main() {
  const auto scale = experiment::benchScale(40);
  bench::banner("Extension - the [15] baseline family",
                "probabilistic and distance-based suppression vs counter",
                scale);

  const std::vector<experiment::SchemeSpec> schemes{
      experiment::SchemeSpec::probabilistic(0.7),
      experiment::SchemeSpec::probabilistic(0.4),
      experiment::SchemeSpec::distance(100.0),
      experiment::SchemeSpec::distance(250.0),
      experiment::SchemeSpec::counter(3),
  };

  std::vector<std::string> header{"map"};
  for (const auto& s : schemes) {
    header.push_back(s.name() + "_RE");
    header.push_back(s.name() + "_SRB");
  }
  util::Table table(header);
  for (int units : experiment::paperMapSizes()) {
    std::vector<std::string> row{bench::mapLabel(units)};
    for (const auto& scheme : schemes) {
      experiment::ScenarioConfig config;
      config.mapUnits = units;
      config.scheme = scheme;
      experiment::applyScale(config, scale);
      const auto r =
          experiment::runScenarioAveraged(config, scale.repetitions);
      row.push_back(util::fmt(r.re(), 3));
      row.push_back(util::fmt(r.srb(), 3));
    }
    table.addRow(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\n";
  return 0;
}
