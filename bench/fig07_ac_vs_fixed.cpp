// Fig. 7: adaptive counter-based scheme (AC) vs fixed-threshold counter
// scheme, C in {2, 4, 6}, across the six maps.
//   (a) RE and SRB    (b) average broadcast latency.
// Paper's shape: C=2 gives high SRB but RE collapses on sparse maps; C=6
// keeps RE but wastes rebroadcasts everywhere; AC keeps RE high at every
// density while saving significantly in dense maps.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "experiment/runner.hpp"
#include "util/table.hpp"

using namespace manet;

int main(int argc, char** argv) {
  bench::Report report(argc, argv, "fig07_ac_vs_fixed");
  const auto scale = experiment::benchScale(60);
  bench::banner("Fig. 7 - AC vs fixed counter thresholds",
                "AC resolves the RE/SRB dilemma of fixed C", scale);

  const std::vector<experiment::SchemeSpec> schemes{
      experiment::SchemeSpec::counter(2),
      experiment::SchemeSpec::counter(4),
      experiment::SchemeSpec::counter(6),
      experiment::SchemeSpec::adaptiveCounter(),
  };

  std::vector<std::string> header{"map"};
  for (const auto& s : schemes) {
    header.push_back(s.name() + "_RE");
    header.push_back(s.name() + "_SRB");
    header.push_back(s.name() + "_lat(s)");
  }
  util::Table table(header);
  for (int units : experiment::paperMapSizes()) {
    std::vector<std::string> row{bench::mapLabel(units)};
    for (const auto& scheme : schemes) {
      experiment::ScenarioConfig config;
      config.mapUnits = units;
      config.scheme = scheme;
      experiment::applyScale(config, scale);
      const auto r =
          experiment::runScenarioAveraged(config, scale.repetitions);
      report.add(bench::mapLabel(units) + "/" + scheme.name(), r);
      row.push_back(util::fmt(r.re(), 3));
      row.push_back(util::fmt(r.srb(), 3));
      row.push_back(util::fmt(r.latency(), 4));
    }
    table.addRow(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\n";
  return 0;
}
