// google-benchmark microbenches for the simulator's hot primitives. Not a
// paper figure — a performance-regression guard for the engine that every
// figure bench depends on.
#include <benchmark/benchmark.h>

#include <vector>

#include "experiment/runner.hpp"
#include "geom/circle.hpp"
#include "geom/coverage.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "stats/connectivity.hpp"

using namespace manet;

namespace {

void BM_SchedulerScheduleRun(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Scheduler s;
    long sink = 0;
    for (int i = 0; i < batch; ++i) {
      s.schedule(sim::TimePoint{i % 977}, [&sink] { ++sink; });
    }
    s.runAll();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_SchedulerScheduleRun)->Arg(1024)->Arg(16384);

void BM_SchedulerCancelHeavy(benchmark::State& state) {
  // Half the events are cancelled before they fire (the common case for
  // inhibited rebroadcasts).
  const int batch = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Scheduler s;
    std::vector<sim::Scheduler::Handle> handles;
    handles.reserve(static_cast<std::size_t>(batch));
    long sink = 0;
    for (int i = 0; i < batch; ++i) {
      handles.push_back(s.schedule(sim::TimePoint{i}, [&sink] { ++sink; }));
    }
    for (int i = 0; i < batch; i += 2) {
      handles[static_cast<std::size_t>(i)].cancel();
    }
    s.runAll();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_SchedulerCancelHeavy)->Arg(8192);

void BM_RngNext(benchmark::State& state) {
  sim::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next());
  }
}
BENCHMARK(BM_RngNext);

void BM_IntersectionArea(benchmark::State& state) {
  double d = 0.0;
  for (auto _ : state) {
    d += 0.37;
    if (d > 1000.0) d = 0.0;
    benchmark::DoNotOptimize(geom::intersectionArea(500.0, d));
  }
}
BENCHMARK(BM_IntersectionArea);

void BM_UncoveredFraction(benchmark::State& state) {
  const int senders = static_cast<int>(state.range(0));
  sim::Rng rng(2);
  std::vector<geom::Vec2> covered;
  for (int i = 0; i < senders; ++i) {
    covered.push_back({rng.uniform(-500.0, 500.0), rng.uniform(-500.0, 500.0)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        geom::uncoveredFraction({0, 0}, covered, 500.0, rng, 512));
  }
}
BENCHMARK(BM_UncoveredFraction)->Arg(1)->Arg(4)->Arg(12);

void BM_ConnectivityBfs(benchmark::State& state) {
  const int hosts = static_cast<int>(state.range(0));
  sim::Rng rng(3);
  std::vector<geom::Vec2> pos;
  for (int i = 0; i < hosts; ++i) {
    pos.push_back({rng.uniform(0.0, 2500.0), rng.uniform(0.0, 2500.0)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::reachableCount(pos, 500.0, 0));
  }
}
BENCHMARK(BM_ConnectivityBfs)->Arg(100)->Arg(400);

void BM_FullScenario(benchmark::State& state) {
  // End-to-end cost of one broadcast on a mid-density map (the unit every
  // figure bench pays thousands of times).
  for (auto _ : state) {
    experiment::ScenarioConfig config;
    config.mapUnits = 5;
    config.numHosts = 100;
    config.numBroadcasts = 5;
    config.scheme = experiment::SchemeSpec::adaptiveCounter();
    config.seed = 3;
    benchmark::DoNotOptimize(experiment::runScenario(config));
  }
  state.SetItemsProcessed(state.iterations() * 5);
}
BENCHMARK(BM_FullScenario)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
