// Extension bench: NACK-based reliable broadcast on top of the suppression
// schemes (the facility the paper's §2.1 says its result can underlie).
// Expected shape: the repair layer closes most of the RE gap that collisions
// and aggressive suppression open, at a small unicast overhead — and the
// better the underlying scheme's RE, the less repair traffic is needed.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "experiment/world.hpp"
#include "relbc/reliable.hpp"
#include "sim/random.hpp"
#include "util/table.hpp"

using namespace manet;

namespace {

struct Row {
  double rePlain;
  double reRepaired;
  std::uint64_t requests;
  std::uint64_t served;
};

Row run(const experiment::SchemeSpec& scheme, int mapUnits, int broadcasts,
        std::uint64_t seed) {
  experiment::ScenarioConfig config;
  config.mapUnits = mapUnits;
  config.scheme = scheme;
  config.numBroadcasts = 0;  // we drive the workload to extend the drain
  config.seed = seed;
  experiment::World world(config);
  world.startAgents();
  relbc::RelbcHarness relbc(world);

  // Reliable dissemination has repeating sources (a command post pushing
  // updates); NACK gap detection needs at least two broadcasts per origin,
  // so the workload concentrates on a few publishers.
  constexpr int kPublishers = 4;
  sim::Rng pick(seed ^ 0xBEEF);
  sim::TimePoint at = sim::kTimeZero + 100 * sim::kMillisecond;
  for (int i = 0; i < broadcasts; ++i) {
    const net::HostId src{
        static_cast<std::uint32_t>(pick.uniformInt(0, kPublishers - 1))};
    world.scheduler().schedule(at, [&world, src] {
      world.host(src).originateBroadcast();
    });
    at += pick.uniformDuration(sim::Duration{}, 2 * sim::kSecond);
  }
  world.scheduler().runUntil(at + 15 * sim::kSecond);

  Row out;
  out.rePlain = world.metrics().summarize().meanRe;
  out.reRepaired = relbc.reachabilityAfterRepair();
  out.requests = relbc.repairRequestsSent();
  out.served = relbc.repairsServed();
  return out;
}

}  // namespace

int main() {
  const auto scale = experiment::benchScale(40);
  bench::banner("Extension - reliable broadcast via NACK repair",
                "repairs close the RE gap; better schemes need fewer repairs",
                scale);

  const std::vector<experiment::SchemeSpec> schemes{
      experiment::SchemeSpec::flooding(),
      experiment::SchemeSpec::counter(2),
      experiment::SchemeSpec::adaptiveCounter(),
  };

  for (int units : {1, 5}) {
    std::cout << "--- " << bench::mapLabel(units) << " map ---\n";
    util::Table table({"scheme", "RE plain", "RE repaired", "repair reqs",
                       "repairs served"});
    for (const auto& scheme : schemes) {
      const Row r = run(scheme, units, scale.broadcasts, scale.seed);
      table.addRow({scheme.name(), util::fmt(r.rePlain, 3),
                    util::fmt(r.reRepaired, 3), std::to_string(r.requests),
                    std::to_string(r.served)});
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
