// Fig. 12: the neighbor-coverage scheme with the dynamic hello interval
// (nv_max = 0.02, hi in [1 s, 10 s]) across maps and host speeds.
//   (a) RE and SRB stay high regardless of speed and density;
//   (b) hello traffic adapts: sparse maps (high variation) pick ~hi_min,
//       the 1x1 map (no variation) sits near hi_max.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "experiment/runner.hpp"
#include "util/table.hpp"

using namespace manet;

int main(int argc, char** argv) {
  bench::Report report(argc, argv, "fig12_nc_dhi");
  const auto scale = experiment::benchScale(40);
  bench::banner("Fig. 12 - NC with dynamic hello interval (DHI)",
                "RE stays high at all speeds/densities; hello rate adapts",
                scale);

  const std::vector<int> maps{1, 3, 5, 9, 11};
  const std::vector<double> speeds{20.0, 40.0, 60.0, 80.0};

  std::cout << "--- Fig. 12a: RE (top) and SRB (bottom) ---\n";
  util::Table re({"speed(km/h)", "1x1", "3x3", "5x5", "9x9", "11x11"});
  util::Table srb({"speed(km/h)", "1x1", "3x3", "5x5", "9x9", "11x11"});
  std::cout << "--- Fig. 12b companion: hello packets per host per second "
               "---\n";
  util::Table rate({"speed(km/h)", "1x1", "3x3", "5x5", "9x9", "11x11"});

  for (double speed : speeds) {
    std::vector<std::string> reRow{util::fmt(speed, 0)};
    std::vector<std::string> srbRow{util::fmt(speed, 0)};
    std::vector<std::string> rateRow{util::fmt(speed, 0)};
    for (int units : maps) {
      experiment::ScenarioConfig config;
      config.mapUnits = units;
      config.maxSpeedKmh = speed;
      config.scheme = experiment::SchemeSpec::neighborCoverage();
      config.neighborSource = experiment::NeighborSource::kHello;
      config.hello.dynamic = true;  // nvMax = 0.02, [1 s, 10 s] defaults
      experiment::applyScale(config, scale);
      const auto r =
          experiment::runScenarioAveraged(config, scale.repetitions);
      report.add(bench::mapLabel(units) + "/" + util::fmt(speed, 0) + "kmh",
                 r);
      reRow.push_back(util::fmt(r.re(), 3));
      srbRow.push_back(util::fmt(r.srb(), 3));
      rateRow.push_back(util::fmt(r.hellosPerHostPerSecond, 3));
    }
    re.addRow(std::move(reRow));
    srb.addRow(std::move(srbRow));
    rate.addRow(std::move(rateRow));
  }
  std::cout << "RE:\n";
  re.print(std::cout);
  std::cout << "\nSRB:\n";
  srb.print(std::cout);
  std::cout << "\nHello rate (pkts/host/s; 1.0 = hi_min, 0.1 = hi_max):\n";
  rate.print(std::cout);
  std::cout << "\n";
  return 0;
}
