// Fig. 1: expected additional coverage EAC(k)/(pi r^2) after a host heard
// the same broadcast packet k times. Paper's shape: ~0.41 at k=1, below 5%
// for k >= 4.
#include <iostream>

#include "bench_common.hpp"
#include "geom/coverage.hpp"
#include "sim/random.hpp"
#include "util/env.hpp"
#include "util/table.hpp"

using namespace manet;

int main() {
  const auto scale = experiment::benchScale();
  bench::banner("Fig. 1 - EAC(k)",
                "EAC(1) ~ 0.41; EAC(k) < 5% once k >= 4", scale);

  const int trials =
      static_cast<int>(util::envInt("REPRO_MC_TRIALS", 4000));
  const int samples =
      static_cast<int>(util::envInt("REPRO_MC_SAMPLES", 1024));
  sim::Rng rng(scale.seed);
  const auto series = geom::eacSeries(10, 500.0, rng, trials, samples);

  util::Table table({"k", "EAC(k)/pi*r^2", "percent"});
  for (std::size_t k = 0; k < series.size(); ++k) {
    table.addRow({std::to_string(k + 1), util::fmt(series[k], 4),
                  util::fmtPercent(series[k], 1)});
  }
  table.print(std::cout);
  std::cout << "\n";
  return 0;
}
