// Fig. 11: the neighbor-coverage scheme's RE under different (fixed) hello
// intervals {1, 5, 10, 20, 30 s} and host speeds {20, 40, 60, 80 km/h} on
// maps 5x5 / 7x7 / 9x9 / 11x11.
// Paper's shape: long intervals degrade RE badly on sparse maps, and worse
// at higher speed; on small maps mobility barely matters.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "experiment/runner.hpp"
#include "util/table.hpp"

using namespace manet;

int main(int argc, char** argv) {
  bench::Report report(argc, argv, "fig11_hello_interval");
  const auto scale = experiment::benchScale(40);
  bench::banner("Fig. 11 - NC scheme vs hello interval and speed",
                "stale tables (long interval x fast hosts) hurt RE on sparse "
                "maps",
                scale);

  const std::vector<sim::Duration> intervals{
      1 * sim::kSecond, 5 * sim::kSecond, 10 * sim::kSecond,
      20 * sim::kSecond, 30 * sim::kSecond};
  const std::vector<double> speeds{20.0, 40.0, 60.0, 80.0};

  for (int units : {5, 7, 9, 11}) {
    std::cout << "--- " << bench::mapLabel(units) << " map: RE ---\n";
    std::vector<std::string> header{"speed(km/h)"};
    for (sim::Duration hi : intervals) {
      header.push_back("hi=" + std::to_string(hi / sim::kSecond) + "s");
    }
    util::Table table(header);
    for (double speed : speeds) {
      std::vector<std::string> row{util::fmt(speed, 0)};
      for (sim::Duration hi : intervals) {
        experiment::ScenarioConfig config;
        config.mapUnits = units;
        config.maxSpeedKmh = speed;
        config.scheme = experiment::SchemeSpec::neighborCoverage();
        config.neighborSource = experiment::NeighborSource::kHello;
        config.hello.interval = hi;
        experiment::applyScale(config, scale);
        const auto r =
            experiment::runScenarioAveraged(config, scale.repetitions);
        report.add(bench::mapLabel(units) + "/hi=" +
                       std::to_string(hi / sim::kSecond) + "s/" +
                       util::fmt(speed, 0) + "kmh",
                   r);
        row.push_back(util::fmt(r.re(), 3));
      }
      table.addRow(std::move(row));
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
