// Microbench (not a paper figure): intra-run sharded execution (DESIGN.md
// §15). One dense scenario — a grid an order of magnitude more populated
// than the paper's 100-host setup, where the channel-grid position pass and
// the per-broadcast reachability BFS dominate wall time — run at 1/2/4/8
// spatial region shards. The simulation output must be byte-identical at
// every shard count (the table's RE / frames columns repeat to show it);
// only wall-clock moves. The "speedup" column is the headline number the
// committed baseline records.
//
// Wall seconds and speedup are host measurements and vary run to run; the
// JSON report strips them from the resume-equivalence comparison, and this
// bench's stdout is not diffed in CI.
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "experiment/runner.hpp"
#include "obs/metrics.hpp"
#include "sim/shard/topology.hpp"
#include "util/table.hpp"

using namespace manet;

namespace {

experiment::ScenarioConfig baseConfig(const experiment::BenchScale& scale) {
  experiment::ScenarioConfig config;
  // 11x11 units: strip width stays >= one radio radius up to 11 shards, so
  // none of the swept shard counts get clamped. Counter-based suppression
  // keeps the dense storm from saturating the channel, which would swamp
  // the parallelizable phases with serial MAC contention.
  config.mapUnits = 11;
  config.scheme = experiment::SchemeSpec::counter(3);
  experiment::applyScale(config, scale);
  return config;
}

std::uint64_t shardCounter(const experiment::RunResult& result,
                           obs::Counter counter) {
  return result.metrics ? result.metrics->counter(counter) : 0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Report report(argc, argv, "micro_shard");
  // Counters feed the printed table even without --json.
  obs::forceCollection(true);
  const auto scale = experiment::benchScale(/*defaultBroadcasts=*/40,
                                            /*defaultReps=*/1,
                                            /*defaultHosts=*/2000);
  bench::banner(
      "Micro - sharded execution speedup",
      "conservative-lookahead region shards; identical output, less wall",
      scale);
  const experiment::ScenarioConfig base = baseConfig(scale);
  std::cout << "host cores: " << std::thread::hardware_concurrency()
            << "  (pool lanes = min(shards, cores); MANET_SHARD_LANES "
               "overrides — speedup needs real cores)\n\n";

  util::Table table({"shards", "resolved", "wall(s)", "speedup", "RE",
                     "frames", "windows", "barrier_ev", "cross_msgs"});
  double serialWall = 0.0;
  for (int requested : {1, 2, 4, 8}) {
    experiment::ScenarioConfig config = base;
    config.shards = requested;
    const sim::shard::Topology topology(requested, config.mapMeters(),
                                        config.phy.radiusMeters);
    const experiment::RunResult result = experiment::runScenario(config);
    if (requested == 1) serialWall = result.wallSeconds;
    const double speedup =
        result.wallSeconds > 0.0 ? serialWall / result.wallSeconds : 0.0;
    table.addRow({
        std::to_string(requested),
        std::to_string(topology.shardCount()),
        util::fmt(result.wallSeconds, 3),
        util::fmt(speedup, 2),
        util::fmt(result.re(), 3),
        std::to_string(result.framesTransmitted),
        std::to_string(shardCounter(result, obs::Counter::kShardWindows)),
        std::to_string(
            shardCounter(result, obs::Counter::kShardBarrierEvents)),
        std::to_string(shardCounter(result, obs::Counter::kShardCrossMsgs)),
    });
    report.add("shards=" + std::to_string(requested), result);
  }
  table.print(std::cout);
  std::cout << "\n(simulation columns must not vary with the shard count; "
               "wall/speedup are host measurements)\n";
  return 0;
}
