// Shared output conventions for the figure-reproduction benches.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>

#include "experiment/bench_util.hpp"

namespace manet::bench {

/// Prints the standard bench banner: which figure, what the paper shows,
/// and the scale this invocation runs at.
inline void banner(const std::string& figure, const std::string& claim,
                   const experiment::BenchScale& scale) {
  std::cout << "=== " << figure << " ===\n"
            << "Paper: " << claim << "\n"
            << "Scale: " << scale.broadcasts << " broadcasts/point x "
            << scale.repetitions << " rep(s), " << scale.numHosts
            << " hosts, seed " << scale.seed
            << "  (env: REPRO_BROADCASTS REPRO_REPS REPRO_SEED REPRO_HOSTS; "
               "paper used 10,000 broadcasts)\n\n";
}

inline std::string mapLabel(int units) {
  return std::to_string(units) + "x" + std::to_string(units);
}

}  // namespace manet::bench
