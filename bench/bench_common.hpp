// Shared output conventions for the figure-reproduction benches.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "experiment/bench_util.hpp"
#include "experiment/runner.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "util/env.hpp"

namespace manet::bench {

/// Prints the standard bench banner: which figure, what the paper shows,
/// and the scale this invocation runs at.
inline void banner(const std::string& figure, const std::string& claim,
                   const experiment::BenchScale& scale) {
  std::cout << "=== " << figure << " ===\n"
            << "Paper: " << claim << "\n"
            << "Scale: " << scale.broadcasts << " broadcasts/point x "
            << scale.repetitions << " rep(s), " << scale.numHosts
            << " hosts, seed " << scale.seed
            << "  (env: REPRO_BROADCASTS REPRO_REPS REPRO_SEED REPRO_HOSTS; "
               "paper used 10,000 broadcasts)\n\n";
}

inline std::string mapLabel(int units) {
  return std::to_string(units) + "x" + std::to_string(units);
}

/// Optional machine-readable run report (DESIGN.md §10). Enabled by
/// `--json <path>` on the command line, or by MANET_BENCH_JSON=<dir> in the
/// environment (the report then lands at <dir>/BENCH_<name>.json). When
/// enabled, metrics collection is forced on for the whole process and the
/// report is written on destruction. Everything goes to the file or stderr,
/// never stdout: the printed tables stay byte-identical either way.
class Report {
 public:
  Report(int argc, char** argv, std::string name) : name_(std::move(name)) {
    for (int i = 1; i + 1 < argc; ++i) {
      if (std::string(argv[i]) == "--json") path_ = argv[i + 1];
    }
    if (path_.empty()) {
      if (const auto dir = util::envString("MANET_BENCH_JSON")) {
        path_ = *dir + "/BENCH_" + name_ + ".json";
      }
    }
    if (enabled()) obs::forceCollection(true);
    // Checkpoint/replay wiring (DESIGN.md §14): --resume-from runs a
    // checkpointed tail and exits; --checkpoint-at (or MANET_CKPT_AT)
    // routes every scenario through a capture/resume cycle whose tables
    // and report are byte-identical to the straight-through run — the CI
    // resume-equivalence gate diffs the two.
    ckpt::configureFromCli(argc, argv, name_);
  }

  Report(const Report&) = delete;
  Report& operator=(const Report&) = delete;

  ~Report() {
    if (!enabled()) return;
    if (obs::writeReportFile(path_, name_, samples_)) {
      std::cerr << "bench: wrote " << path_ << " (" << samples_.size()
                << " rows)\n";
    }
  }

  bool enabled() const { return !path_.empty(); }

  /// Records one table row. `label` must be unique within the report — the
  /// comparison tool joins baseline and candidate rows on it.
  void add(std::string label, const experiment::RunResult& result) {
    if (!enabled()) return;
    samples_.push_back(experiment::toRunSample(std::move(label), result));
  }

 private:
  std::string name_;
  std::string path_;
  std::vector<obs::RunSample> samples_;
};

}  // namespace manet::bench
